package main

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func tinyOpts() experiments.Options {
	return experiments.Options{Instances: 1, Duration: 3 * 86400}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(context.Background(), "9", tinyOpts(), false, "", ""); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunFigure5WithSVG(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "5", tinyOpts(), false, dir, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig5a.svg", "fig5b.svg"} {
		if _, err := filepath.Glob(filepath.Join(dir, name)); err != nil {
			t.Errorf("glob %s: %v", name, err)
		}
	}
}

func TestRunFigureCSV(t *testing.T) {
	if err := run(context.Background(), "4", tinyOpts(), true, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigureFaults(t *testing.T) {
	if err := run(context.Background(), "F", tinyOpts(), true, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunAblations(t *testing.T) {
	if err := run(context.Background(), "ablation", tinyOpts(), false, "", ""); err != nil {
		t.Fatal(err)
	}
}

// TestParseBudget is the regression table for the silently-passing budget
// bug: "-budget typo=30" used to parse fine and then never match a
// recorded span, asserting nothing. Unknown stage names are now a hard
// error naming the known vocabulary.
func TestParseBudget(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		want    map[string]float64
		wantErr string
	}{
		{name: "empty", in: "", want: map[string]float64{}},
		{name: "blank-entries", in: " , ,", want: map[string]float64{}},
		{name: "single", in: "kminmax=30", want: map[string]float64{"kminmax": 30}},
		{name: "multi", in: "kminmax=30,mis=2.5", want: map[string]float64{"kminmax": 30, "mis": 2.5}},
		{name: "nested-spans", in: "mis/select=1,kminmax/mst=4", want: map[string]float64{"mis/select": 1, "kminmax/mst": 4}},
		{name: "spaces", in: " insertion=9 , execute=1 ", want: map[string]float64{"insertion": 9, "execute": 1}},
		{name: "unknown-stage", in: "typo=30", wantErr: `unknown -budget stage "typo"`},
		{name: "unknown-among-known", in: "kminmax=30,msi=2", wantErr: `unknown -budget stage "msi"`},
		{name: "case-sensitive", in: "MIS=2", wantErr: `unknown -budget stage "MIS"`},
		{name: "missing-equals", in: "kminmax", wantErr: "want stage=seconds"},
		{name: "bad-seconds", in: "mis=fast", wantErr: "bad -budget seconds"},
		{name: "zero-seconds", in: "mis=0", wantErr: "bad -budget seconds"},
		{name: "negative-seconds", in: "mis=-3", wantErr: "bad -budget seconds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseBudget(tc.in)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("parseBudget(%q) error = %v, want containing %q", tc.in, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseBudget(%q): %v", tc.in, err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("parseBudget(%q) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}
