package main

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

func tinyOpts() experiments.Options {
	return experiments.Options{Instances: 1, Duration: 3 * 86400}
}

func TestRunUnknownFigure(t *testing.T) {
	if err := run(context.Background(), "9", tinyOpts(), false, "", ""); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunFigure5WithSVG(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), "5", tinyOpts(), false, dir, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig5a.svg", "fig5b.svg"} {
		if _, err := filepath.Glob(filepath.Join(dir, name)); err != nil {
			t.Errorf("glob %s: %v", name, err)
		}
	}
}

func TestRunFigureCSV(t *testing.T) {
	if err := run(context.Background(), "4", tinyOpts(), true, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigureFaults(t *testing.T) {
	if err := run(context.Background(), "F", tinyOpts(), true, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunAblations(t *testing.T) {
	if err := run(context.Background(), "ablation", tinyOpts(), false, "", ""); err != nil {
		t.Fatal(err)
	}
}
