// Command wrsn-bench regenerates the paper's evaluation figures.
//
// Every figure of Section VI is covered: Figure 3 (network size sweep),
// Figure 4 (maximum data rate sweep) and Figure 5 (charger count sweep),
// each with its (a) average-longest-tour-duration panel and (b)
// average-dead-duration panel, plus the design ablations documented in
// DESIGN.md. Two extensions beyond the paper are available on request:
// figure C sweeps deployment clustering and figure F sweeps the MCV
// breakdown probability under the fault-injection subsystem.
//
// Usage:
//
//	wrsn-bench -fig all -instances 10
//	wrsn-bench -fig 3 -instances 30 -csv
//	wrsn-bench -fig F -instances 10 -days 90
//	wrsn-bench -fig ablation
//	wrsn-bench -scaling 1000,10000 -seed 1 -budget kminmax=30
//
// Output is one aligned text table per panel (x column plus one column per
// algorithm), or CSV with -csv.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"repro/internal/chart"

	"repro/internal/experiments"
	"repro/internal/export"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	var (
		fig        = flag.String("fig", "all", `figure to regenerate: "3", "4", "5" (paper), "C" (clustering extension), "F" (MCV breakdown-rate sweep), "all" or "ablation"`)
		scaling    = flag.String("scaling", "", `instead of figures, run the BENCH_scaling.json ladder: comma-separated request counts (e.g. "1000,10000"), one cold Appro plan each on a density-scaled field, with per-stage timings`)
		scalingK   = flag.Int("scaling-k", 4, "chargers per scaling rung")
		scalingR   = flag.Int("scaling-restarts", 0, "2-opt restarts per scaling rung (<=1 = single descent)")
		misRescan  = flag.Bool("mis-rescan", false, "plan the scaling rungs with the retained quadratic MIS reference selection instead of the bucket queue (identical schedules; measures the A/B)")
		budget     = flag.String("budget", "", `per-stage time budgets asserted on every scaling rung, e.g. "kminmax=30,mis=20" (seconds; stage names validated against the tracer vocabulary); a breach exits nonzero`)
		instances  = flag.Int("instances", 10, "random networks per sweep point (paper: 100)")
		days       = flag.Float64("days", 365, "monitored period in days (paper: one year)")
		window     = flag.Float64("window", sim.DefaultBatchWindow/3600, "dispatch batching window in hours")
		seed       = flag.Int64("seed", 0, "base seed for instance generation")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		svgDir     = flag.String("svgdir", "", "also render each figure panel as an SVG line chart into this directory")
		jsonDir    = flag.String("jsondir", "", "also write each figure panel as machine-readable JSON into this directory")
		workers    = flag.Int("workers", 0, "concurrent simulation cells (0 = GOMAXPROCS); figure tables are byte-identical at any value")
		planCache  = flag.Bool("plan-cache", false, "memoize planner outputs by (planner, instance) in a bounded in-memory LRU")
		verify     = flag.Bool("verify", false, "run the feasibility verifier every round")
		quiet      = flag.Bool("quiet", false, "suppress progress lines")
		timeout    = flag.Duration("timeout", 0, "abort after this long, reporting whatever completed (0 = no limit)")
		traceJSON  = flag.String("trace-json", "", `write aggregated stage timings and counters as JSON to this file ("-" for stderr)`)
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
		memProfile = flag.String("memprofile", "", "write a pprof allocation profile of the sweep to this file")
	)
	flag.Parse()

	opt := experiments.Options{
		Instances:   *instances,
		Seed:        *seed,
		Duration:    *days * 86400,
		BatchWindow: *window * 3600,
		Workers:     *workers,
		PlanCache:   *planCache,
		Verify:      *verify,
	}
	if !*quiet {
		opt.Progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}

	// SIGINT cancels the sweep gracefully: completed cells still make it
	// into the (partial) figures. A second SIGINT kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var tracer *obs.Tracer
	if *traceJSON != "" {
		tracer = obs.New()
		ctx = obs.WithTracer(ctx, tracer)
	}

	stopProf, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wrsn-bench:", err)
		os.Exit(1)
	}

	if *scaling != "" {
		err = runScaling(ctx, *scaling, *scalingK, *seed, *scalingR, *misRescan, *budget, *csv)
	} else {
		err = run(ctx, *fig, opt, *csv, *svgDir, *jsonDir)
	}
	if tracer != nil {
		if terr := writeTrace(*traceJSON, tracer); terr != nil && err == nil {
			err = terr
		}
	}
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "wrsn-bench: partial — cancelled:", err)
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "wrsn-bench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, fig string, opt experiments.Options, csv bool, svgDir, jsonDir string) error {
	start := time.Now()
	switch fig {
	case "3", "4", "5", "C", "c", "F", "f":
		if err := runFigure(ctx, fig, opt, csv, svgDir, jsonDir); err != nil {
			return err
		}
	case "all":
		for _, id := range []string{"3", "4", "5", "C"} {
			if err := runFigure(ctx, id, opt, csv, svgDir, jsonDir); err != nil {
				return err
			}
		}
	case "ablation":
		for _, id := range []string{experiments.AblationMIS, experiments.AblationInsertion, experiments.AblationTourBuilder, experiments.AblationDispatch, experiments.AblationPartial, experiments.AblationContender} {
			if err := runAblation(ctx, id, opt, csv); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown -fig %q", fig)
	}
	fmt.Fprintf(os.Stderr, "total %s\n", time.Since(start).Round(time.Second))
	return nil
}

func runFigure(ctx context.Context, id string, opt experiments.Options, csv bool, svgDir, jsonDir string) error {
	a, b, err := experiments.Run(ctx, id, opt)
	if err != nil && a == nil {
		return err
	}
	for _, f := range []*experiments.Figure{a, b} {
		if perr := printFigure(f, opt, csv); perr != nil {
			return perr
		}
		if svgDir != "" {
			if serr := writeSVG(svgDir, f); serr != nil {
				return serr
			}
		}
		if jsonDir != "" {
			if jerr := writeJSON(jsonDir, f); jerr != nil {
				return jerr
			}
		}
	}
	if err != nil {
		return err // cancelled: the printed panels aggregate completed cells only
	}
	if a.Violations > 0 {
		return fmt.Errorf("figure %s: %d feasibility violations", id, a.Violations)
	}
	return nil
}

// writeTrace dumps the tracer's aggregated report as JSON to the path
// ("-" means stderr).
func writeTrace(path string, t *obs.Tracer) error {
	if path == "-" {
		return t.WriteJSON(os.Stderr)
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := t.WriteJSON(out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func printFigure(f *experiments.Figure, opt experiments.Options, csv bool) error {
	title := fmt.Sprintf("Figure %s: %s [%d instances, %.0f days]",
		f.ID, f.Title, opt.Instances, opt.Duration/86400)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Label)
	}
	tb := export.NewTable(title, header...)
	// Integer sweeps (n, K, kbps) print clean; fractional sweeps like
	// figure F's breakdown probabilities need the decimals kept.
	xDec := 0
	for _, x := range f.X {
		if x != math.Trunc(x) {
			xDec = 2
			break
		}
	}
	for xi, x := range f.X {
		row := []string{export.F(x, xDec)}
		for _, s := range f.Series {
			row = append(row, export.F(s.Y[xi], 1))
		}
		tb.AddRow(row...)
	}
	if csv {
		if err := tb.WriteCSV(os.Stdout); err != nil {
			return err
		}
	} else if err := tb.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

func runAblation(ctx context.Context, id string, opt experiments.Options, csv bool) error {
	rows, err := experiments.RunAblation(ctx, id, opt)
	if err != nil && len(rows) == 0 {
		return err
	}
	cancelled := err
	title := fmt.Sprintf("Ablation %q — dense single rounds, K=2 (%d instances)", id, opt.Instances)
	lastCol := "conflict wait (s)"
	if id == experiments.AblationDispatch || id == experiments.AblationPartial {
		title = fmt.Sprintf("Ablation %q — one-year simulations, K=2 (%d instances)", id, opt.Instances)
		lastCol = "dead per sensor (s)"
	}
	tb := export.NewTable(title,
		"variant", "n", "longest (h)", "stops/round", lastCol)
	for _, r := range rows {
		tb.AddRow(r.Variant, export.I(r.N), export.F(r.LongestH, 2), export.F(r.Stops, 1), export.F(r.WaitS, 1))
	}
	if csv {
		if err := tb.WriteCSV(os.Stdout); err != nil {
			return err
		}
	} else if err := tb.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return cancelled
}

// writeSVG renders one figure panel into dir as fig<ID>.svg.
func writeSVG(dir string, f *experiments.Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	line := &chart.Line{
		Title:  fmt.Sprintf("Figure %s: %s", f.ID, f.Title),
		XLabel: f.XLabel,
		YLabel: f.YLabel,
		X:      f.X,
	}
	for _, s := range f.Series {
		line.Series = append(line.Series, chart.Series{Label: s.Label, Y: s.Y})
	}
	path := filepath.Join(dir, "fig"+f.ID+".svg")
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := line.SVG(out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// writeJSON dumps one figure panel into dir as fig<ID>.json.
func writeJSON(dir string, f *experiments.Figure) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "fig"+f.ID+".json")
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}
