package main

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/export"
	"repro/internal/geom"
	"repro/internal/obs"
)

// scalingDensity holds the request density of the scaling ladder at the
// paper's: 0.12 sensors per square meter puts n=1200 exactly on the
// 100x100 field of Section VI, and side = sqrt(n/0.12) for every other
// rung. It mirrors internal/core/scaling_bench_test.go.
const scalingDensity = 0.12

// runScaling executes the BENCH_scaling.json ladder: one cold Appro plan
// per rung of the comma-separated n ladder on a density-scaled field,
// reporting per-stage timings from the obs tracer — including the
// mis/select and mis/update sub-spans that attribute the MIS stage to
// its selection engine, and the kminmax/mst, kminmax/match, kminmax/2opt
// and kminmax/split sub-spans that attribute the K-minMax stage to its
// kernels. rescan routes the degree-ordered MIS through the retained
// quadratic reference selection (identical schedules), so the ladder can
// measure both sides of the swap. budget is a comma-separated list of
// stage=seconds assertions (e.g. "kminmax=30,mis=20") checked against
// every rung; stage names must come from the tracer's canonical
// vocabulary (obs.KnownStages) — unknown names are a hard error, never a
// silently-passing no-op — and a breach fails the run after the table
// prints, so CI can hold stage regressions out.
func runScaling(ctx context.Context, ladder string, k int, seed int64, restarts int, rescan bool, budget string, csv bool) error {
	ns, err := parseLadder(ladder)
	if err != nil {
		return err
	}
	budgets, err := parseBudget(budget)
	if err != nil {
		return err
	}
	stages := []string{
		obs.StageChargingGraph, obs.StageMIS, obs.StageMISSelect, obs.StageMISUpdate, obs.StageKMinMax,
		obs.StageKMinMaxMST, obs.StageKMinMaxMatch, obs.StageKMinMaxTwoOpt, obs.StageKMinMaxSplit,
		obs.StageInsertion,
	}
	tb := export.NewTable(
		fmt.Sprintf("Appro scaling ladder, density %.2f sensors/unit^2, K=%d, seed %d", scalingDensity, k, seed),
		"n", "field", "total (s)", "graph", "mis", "..select", "..update", "kminmax", "..mst", "..match", "..2opt", "..split", "insertion")
	var breaches []string
	for _, n := range ns {
		side := math.Sqrt(float64(n) / scalingDensity)
		in := scalingInstance(n, k, seed, side)
		planner, err := repro.NewPlannerWithOptions("Appro", repro.ApproOptions{TourRestarts: restarts, MISRescan: rescan})
		if err != nil {
			return err
		}
		tracer := obs.New()
		start := time.Now()
		if _, err := planner.Plan(obs.WithTracer(ctx, tracer), in); err != nil {
			return fmt.Errorf("scaling rung n=%d: %w", n, err)
		}
		total := time.Since(start).Seconds()
		row := []string{export.I(n), export.F(side, 2), export.F(total, 3)}
		for _, st := range stages {
			row = append(row, export.F(tracer.StageSeconds(st), 3))
		}
		tb.AddRow(row...)
		for stage, limit := range budgets {
			if got := tracer.StageSeconds(stage); got > limit {
				breaches = append(breaches, fmt.Sprintf("n=%d stage %s took %.3fs, budget %.3fs", n, stage, got, limit))
			}
		}
	}
	if csv {
		if err := tb.WriteCSV(os.Stdout); err != nil {
			return err
		}
	} else if err := tb.WriteText(os.Stdout); err != nil {
		return err
	}
	if len(breaches) > 0 {
		return fmt.Errorf("stage budget exceeded: %s", strings.Join(breaches, "; "))
	}
	return nil
}

// parseLadder parses the comma-separated rung sizes.
func parseLadder(ladder string) ([]int, error) {
	var ns []int
	for _, part := range strings.Split(ladder, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -scaling rung %q (want positive integers, comma-separated)", part)
		}
		ns = append(ns, n)
	}
	if len(ns) == 0 {
		return nil, fmt.Errorf("-scaling given but no rungs parsed from %q", ladder)
	}
	return ns, nil
}

// parseBudget parses "stage=seconds,stage=seconds" into limits. Stage
// names are validated against the tracer's canonical vocabulary: a typo
// like "typo=30" used to parse fine and then never match a recorded
// span, silently asserting nothing — now it is a hard error listing the
// known names.
func parseBudget(budget string) (map[string]float64, error) {
	known := make(map[string]bool)
	for _, s := range obs.KnownStages() {
		known[s] = true
	}
	out := map[string]float64{}
	for _, part := range strings.Split(budget, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		stage, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -budget entry %q (want stage=seconds)", part)
		}
		if !known[stage] {
			return nil, fmt.Errorf("unknown -budget stage %q (known stages: %s)",
				stage, strings.Join(obs.KnownStages(), ", "))
		}
		sec, err := strconv.ParseFloat(val, 64)
		if err != nil || sec <= 0 {
			return nil, fmt.Errorf("bad -budget seconds in %q", part)
		}
		out[stage] = sec
	}
	return out, nil
}

// scalingInstance synthesizes the ladder's request set exactly as
// cmd/wrsn-plan's buildInstance does — same generator, same seed
// stream — so ladder rungs here reproduce the recorded wrsn-plan runs.
func scalingInstance(n, k int, seed int64, side float64) *repro.Instance {
	rng := rand.New(rand.NewSource(seed))
	in := &repro.Instance{
		Depot: geom.Pt(side/2, side/2),
		Gamma: 2.7,
		Speed: 1,
		K:     k,
	}
	for i := 0; i < n; i++ {
		in.Requests = append(in.Requests, repro.Request{
			Pos:      geom.Pt(rng.Float64()*side, rng.Float64()*side),
			Duration: (1.2 + 0.3*rng.Float64()) * 3600,
			Lifetime: (1 + rng.Float64()*6) * 86400,
		})
	}
	return in
}
