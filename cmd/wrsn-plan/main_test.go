package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildInstanceShape(t *testing.T) {
	in := buildInstance(50, 3, 7)
	if len(in.Requests) != 50 || in.K != 3 || in.Gamma != 2.7 {
		t.Fatalf("instance shape wrong: %d requests K=%d", len(in.Requests), in.K)
	}
	for i, r := range in.Requests {
		if r.Duration < 1.2*3600 || r.Duration > 1.5*3600 {
			t.Fatalf("request %d duration %v outside [1.2h, 1.5h]", i, r.Duration)
		}
		if r.Lifetime <= 0 {
			t.Fatalf("request %d without lifetime", i)
		}
	}
	// Deterministic per seed.
	again := buildInstance(50, 3, 7)
	if again.Requests[0].Pos != in.Requests[0].Pos {
		t.Error("buildInstance not deterministic")
	}
}

func TestRunSingleAndCompare(t *testing.T) {
	if err := run(context.Background(), 60, 2, "Appro", 1, "", "", false, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), 40, 2, "", 1, "", "", true, 0, false); err != nil {
		t.Fatal(err)
	}
	// The parallel compare path with the plan cache on must agree too.
	if err := run(context.Background(), 40, 2, "", 1, "", "", true, 4, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesSVG(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tours.svg")
	if err := run(context.Background(), 30, 2, "Appro", 1, path, "", false, 0, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("output is not SVG")
	}
}

func TestRunUnknownPlanner(t *testing.T) {
	if err := run(context.Background(), 10, 1, "bogus", 1, "", "", false, 0, false); err == nil {
		t.Error("unknown planner accepted")
	}
}

func TestRunWritesGantt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gantt.svg")
	if err := run(context.Background(), 30, 2, "Appro", 1, "", path, false, 0, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "charger activity") {
		t.Error("output is not a Gantt chart")
	}
}
