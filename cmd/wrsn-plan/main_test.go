package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro"
	"repro/internal/export"
)

func TestBuildInstanceShape(t *testing.T) {
	in := buildInstance(50, 3, 7, 100)
	if len(in.Requests) != 50 || in.K != 3 || in.Gamma != 2.7 {
		t.Fatalf("instance shape wrong: %d requests K=%d", len(in.Requests), in.K)
	}
	for i, r := range in.Requests {
		if r.Duration < 1.2*3600 || r.Duration > 1.5*3600 {
			t.Fatalf("request %d duration %v outside [1.2h, 1.5h]", i, r.Duration)
		}
		if r.Lifetime <= 0 {
			t.Fatalf("request %d without lifetime", i)
		}
	}
	// Deterministic per seed.
	again := buildInstance(50, 3, 7, 100)
	if again.Requests[0].Pos != in.Requests[0].Pos {
		t.Error("buildInstance not deterministic")
	}
}

func TestRunSingleAndCompare(t *testing.T) {
	if err := run(context.Background(), 60, 2, "Appro", 1, 100, repro.ApproOptions{}, "", "", false, 0, false, false, ""); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), 40, 2, "", 1, 100, repro.ApproOptions{}, "", "", true, 0, false, false, ""); err != nil {
		t.Fatal(err)
	}
	// The parallel compare path with the plan cache on must agree too.
	if err := run(context.Background(), 40, 2, "", 1, 100, repro.ApproOptions{}, "", "", true, 4, true, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesSVG(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tours.svg")
	if err := run(context.Background(), 30, 2, "Appro", 1, 100, repro.ApproOptions{}, path, "", false, 0, false, false, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("output is not SVG")
	}
}

// TestJSONOutputRoundTrip checks the -json / -dump-instance pair: the
// dumped instance decodes back to exactly the generated one, and -json
// prints the canonical schedule encoding for it (what a wrsn-serve
// /v1/plan response body must match byte for byte).
func TestJSONOutputRoundTrip(t *testing.T) {
	instPath := filepath.Join(t.TempDir(), "inst.json")

	// Capture the schedule JSON that run(-json) writes to stdout.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(context.Background(), 40, 2, "Appro", 1, 100, repro.ApproOptions{}, "", "", false, 0, false, true, instPath)
	w.Close()
	os.Stdout = old
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}

	// The dumped instance must decode to exactly what buildInstance made.
	data, err := os.ReadFile(instPath)
	if err != nil {
		t.Fatal(err)
	}
	var decoded repro.Instance
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	want := buildInstance(40, 2, 1, 100)
	if !reflect.DeepEqual(&decoded, want) {
		t.Fatal("dumped instance does not round-trip to the generated one")
	}

	// And the stdout JSON must be the canonical encoding of its plan.
	planner, err := repro.NewPlanner("Appro")
	if err != nil {
		t.Fatal(err)
	}
	s, err := planner.Plan(context.Background(), &decoded)
	if err != nil {
		t.Fatal(err)
	}
	var wantOut bytes.Buffer
	if err := export.WriteSchedule(&wantOut, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantOut.Bytes()) {
		t.Fatalf("-json output is not the canonical schedule encoding\ngot:  %.120s\nwant: %.120s", got, wantOut.Bytes())
	}
}

func TestRunUnknownPlanner(t *testing.T) {
	if err := run(context.Background(), 10, 1, "bogus", 1, 100, repro.ApproOptions{}, "", "", false, 0, false, false, ""); err == nil {
		t.Error("unknown planner accepted")
	}
}

func TestRunWritesGantt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gantt.svg")
	if err := run(context.Background(), 30, 2, "Appro", 1, 100, repro.ApproOptions{}, "", path, false, 0, false, false, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "charger activity") {
		t.Error("output is not a Gantt chart")
	}
}
