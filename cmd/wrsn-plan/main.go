// Command wrsn-plan plans one round of charging tours for a snapshot
// request set, prints the tours with their delays and the feasibility
// report, and optionally renders the schedule to SVG.
//
// Usage:
//
//	wrsn-plan -n 600 -k 3 -planner Appro -svg tours.svg
//	wrsn-plan -n 300 -k 2 -planner K-minMax -compare
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strings"

	"repro"
	"repro/internal/export"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/render"
	"repro/internal/tsp"
)

func main() {
	var (
		n          = flag.Int("n", 400, "number of charging requests in V_s")
		k          = flag.Int("k", 2, "number of mobile chargers")
		name       = flag.String("planner", "Appro", "algorithm: "+strings.Join(repro.PlannerNames(), ", ")+" (case-insensitive, aliases accepted)")
		seed       = flag.Int64("seed", 1, "request set seed")
		field      = flag.Float64("field", 100, "side of the square deployment field in meters (scale ~ sqrt(n) to keep the paper's density at large n)")
		misFlag    = flag.String("mis", "", `MIS strategy for options-capable planners: "max-degree" (default), "min-degree", "lexicographic", "random", "luby"`)
		misSeed    = flag.Int64("mis-seed", 1, `seed for the seeded MIS strategies ("random", "luby")`)
		misRescan  = flag.Bool("mis-rescan", false, "route the degree-ordered MIS strategies through the retained quadratic reference selection instead of the bucket queue (identical output; for byte-identity drills and A/B measurement)")
		restarts   = flag.Int("restarts", 0, "independent 2-opt descents inside the K-minMax tour refinement (<=1 = single sequential descent)")
		sparseMST  = flag.Int("sparse-mst", 0, "K-minMax MST kernel crossover: run the grid-pruned exact-weight MST at tour size >= this (0 = package default, negative = never)")
		sparse2opt = flag.Int("sparse-2opt", 0, "K-minMax 2-opt kernel crossover: run the neighbor-list descent at tour size >= this (0 = package default, negative = never; approximate above the crossover)")
		sparseMtch = flag.Int("sparse-match", 0, "Christofides matching kernel crossover: run the grid-bucketed greedy at odd-vertex count >= this (0 = package default, negative = never; approximate above the crossover)")
		svgPath    = flag.String("svg", "", "write an SVG rendering of the tours to this file")
		gantt      = flag.String("gantt", "", "write an SVG timeline of charger activity to this file")
		compare    = flag.Bool("compare", false, "plan with every registered algorithm and compare objectives")
		workers    = flag.Int("workers", 0, "worker goroutines for -compare planning and planner-internal fan-out (0 = GOMAXPROCS); output is identical at any value")
		planCache  = flag.Bool("plan-cache", false, "memoize planner outputs by (planner, options, instance) in a bounded in-memory LRU")
		jsonOut    = flag.Bool("json", false, "print the schedule as canonical JSON instead of text (byte-identical to a wrsn-serve /v1/plan response)")
		dumpInst   = flag.String("dump-instance", "", `write the generated instance as JSON to this file ("-" for stdout) — the bare-instance body /v1/plan accepts`)
		timeout    = flag.Duration("timeout", 0, "abort planning after this long (0 = no limit)")
		traceJSON  = flag.String("trace-json", "", `write per-stage timings and counters as JSON to this file ("-" for stderr)`)
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof allocation profile of the run to this file")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var tracer *repro.Tracer
	if *traceJSON != "" {
		tracer = repro.NewTracer()
		ctx = repro.WithTracer(ctx, tracer)
	}

	opts, err := plannerOptions(*misFlag, *misSeed, *restarts, *workers,
		tsp.Thresholds{MST: *sparseMST, TwoOpt: *sparse2opt, Match: *sparseMtch})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wrsn-plan:", err)
		os.Exit(1)
	}
	opts.MISRescan = *misRescan

	stopProf, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wrsn-plan:", err)
		os.Exit(1)
	}

	err = run(ctx, *n, *k, *name, *seed, *field, opts, *svgPath, *gantt, *compare, *workers, *planCache, *jsonOut, *dumpInst)
	if tracer != nil {
		if terr := writeTrace(*traceJSON, tracer); terr != nil && err == nil {
			err = terr
		}
	}
	if perr := stopProf(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "wrsn-plan: cancelled:", err)
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "wrsn-plan:", err)
		os.Exit(1)
	}
}

// plannerOptions folds the option flags into core options for the
// options-capable planners. An empty -mis keeps the planner's default
// (max-degree for Appro).
func plannerOptions(mis string, misSeed int64, restarts, workers int, sparse tsp.Thresholds) (repro.ApproOptions, error) {
	opts := repro.ApproOptions{Seed: misSeed, TourRestarts: restarts, Workers: workers, Sparse: sparse}
	switch strings.ToLower(mis) {
	case "":
	case "max-degree":
		opts.MISOrder = graph.MISMaxDegree
	case "min-degree":
		opts.MISOrder = graph.MISMinDegree
	case "lexicographic", "lex":
		opts.MISOrder = graph.MISLexicographic
	case "random":
		opts.MISOrder = graph.MISRandom
	case "luby":
		opts.MISOrder = graph.MISLuby
	default:
		return opts, fmt.Errorf("unknown -mis strategy %q", mis)
	}
	return opts, nil
}

// writeTrace dumps the tracer's aggregated report as JSON to the path
// ("-" means stderr).
func writeTrace(path string, t *repro.Tracer) error {
	if path == "-" {
		return t.WriteJSON(os.Stderr)
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := t.WriteJSON(out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// writeInstance dumps the instance as JSON to path ("-" means stdout).
func writeInstance(path string, in *repro.Instance) error {
	if path == "-" {
		return export.WriteInstance(os.Stdout, in)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := export.WriteInstance(f, in); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// buildInstance synthesizes a request set matching the paper's planning
// regime: sensors uniform in a side x side field with the depot at its
// center, each having requested at ~20% residual capacity, so charge
// durations fall in [1.2 h, 1.5 h]. The paper's field is side = 100; the
// scaling ladder grows side as sqrt(n) to hold the density constant.
func buildInstance(n, k int, seed int64, side float64) *repro.Instance {
	if !(side > 0) {
		side = 100
	}
	rng := rand.New(rand.NewSource(seed))
	in := &repro.Instance{
		Depot: geom.Pt(side/2, side/2),
		Gamma: 2.7,
		Speed: 1,
		K:     k,
	}
	for i := 0; i < n; i++ {
		in.Requests = append(in.Requests, repro.Request{
			Pos:      geom.Pt(rng.Float64()*side, rng.Float64()*side),
			Duration: (1.2 + 0.3*rng.Float64()) * 3600,
			Lifetime: (1 + rng.Float64()*6) * 86400,
		})
	}
	return in
}

func run(ctx context.Context, n, k int, name string, seed int64, field float64, opts repro.ApproOptions, svgPath, ganttPath string, compare bool, workers int, planCache bool, jsonOut bool, dumpInst string) error {
	in := buildInstance(n, k, seed, field)
	if dumpInst != "" {
		if err := writeInstance(dumpInst, in); err != nil {
			return err
		}
	}
	if jsonOut {
		if compare {
			return errors.New("-json is incompatible with -compare")
		}
		planner, err := repro.NewPlannerWithOptions(name, opts)
		if err != nil {
			return err
		}
		s, err := planner.Plan(ctx, in)
		if err != nil {
			return err
		}
		// The one canonical schedule encoding, shared with the planning
		// service: wrsn-serve's /v1/plan response for this instance is
		// byte-identical to this output.
		return export.WriteSchedule(os.Stdout, s)
	}

	var cache *repro.PlanCache
	if planCache {
		cache = repro.NewPlanCache(0)
	}

	if compare {
		ps := repro.Planners()
		if cache != nil {
			for i := range ps {
				ps[i] = repro.CachedPlanner(ps[i], cache)
			}
		}
		// The registered algorithms run concurrently; results come back
		// in planner order so the table is identical at any worker count.
		schedules, err := repro.PlanConcurrently(ctx, in, ps, workers)
		if err != nil {
			return err
		}
		tb := export.NewTable(
			fmt.Sprintf("one planning round, n=%d requests, K=%d", n, k),
			"algorithm", "longest delay (h)", "stops", "total wait (s)", "violations")
		for i, p := range ps {
			s := schedules[i]
			viol := verifyFor(in, s)
			tb.AddRow(p.Name(), export.F(s.Longest/3600, 2), export.I(s.NumStops()),
				export.F(s.WaitTime, 1), export.I(viol))
		}
		return tb.WriteText(os.Stdout)
	}

	planner, err := repro.NewPlannerWithOptions(name, opts)
	if err != nil {
		return err
	}
	if cache != nil {
		planner = repro.CachedPlanner(planner, cache)
	}
	s, err := planner.Plan(ctx, in)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d requests, K=%d -> longest delay %.2f h, %d stops\n",
		planner.Name(), n, k, s.Longest/3600, s.NumStops())
	for ki, tour := range s.Tours {
		fmt.Printf("  charger %d: %d stops, delay %.2f h\n", ki+1, len(tour.Stops), tour.Delay/3600)
	}
	if viol := verifyFor(in, s); viol != 0 {
		return fmt.Errorf("%d feasibility violations", viol)
	}
	fmt.Println("feasibility: OK (coverage, disjointness, timing, no simultaneous charging)")

	// Quality report: a provable lower bound on the optimum and the
	// instance's theoretical approximation guarantee (Theorem 1).
	lb := repro.ComputeLowerBound(in)
	if lb.Value > 0 {
		fmt.Printf("lower bound on optimum:   %.2f h (farthest %.2f, packing %.2f+%.2f over %d packed)\n",
			lb.Value/3600, lb.Farthest/3600, lb.PackingWork/3600, lb.PackingTravel/3600, lb.PackingSize)
		fmt.Printf("empirical approx factor:  <= %.2f\n", s.Longest/lb.Value)
	}
	// Default options deliberately: the guarantee is for the paper's
	// canonical construction. Only the engine-only rescan switch passes
	// through, so -mis-rescan measures every MIS call in the binary.
	if ana, err := repro.Analyze(ctx, in, repro.ApproOptions{MISRescan: opts.MISRescan}); err == nil {
		fmt.Printf("theoretical guarantee:    %.1f (Delta_H=%d <= %d, tau_max/tau_min=%.2f, |S_I|=%d, |V'_H|=%d)\n",
			ana.Ratio, ana.DeltaH, 26, ana.TauMax/ana.TauMin, ana.SI, ana.VH)
	} else if ctx.Err() != nil {
		fmt.Println("theoretical guarantee:    skipped (deadline reached after planning)")
	}

	if svgPath != "" {
		f, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := render.SVG(f, in, s, 800); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", svgPath)
	}
	if ganttPath != "" {
		f, err := os.Create(ganttPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := render.Gantt(f, in, s, 1000); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", ganttPath)
	}
	return nil
}

// verifyFor applies multi-node semantics to multi-node schedules and
// point-charging semantics (no overlap constraint — directional chargers
// cannot interfere) to one-to-one schedules.
func verifyFor(in *repro.Instance, s *repro.Schedule) int {
	oneToOne := true
	for _, tour := range s.Tours {
		for _, stop := range tour.Stops {
			if len(stop.Covers) != 1 || stop.Covers[0] != stop.Node {
				oneToOne = false
			}
		}
	}
	if !oneToOne {
		return len(repro.Verify(in, s))
	}
	checkIn := *in
	checkIn.Gamma = 0
	count := 0
	for _, v := range repro.Verify(&checkIn, s) {
		if v.Kind != "simultaneous-charge" {
			count++
		}
	}
	return count
}
