package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func TestRunWritesLoadableJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "net.json")
	if err := run(context.Background(), 25, 3, 50, 0, path, true); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	nw, err := repro.LoadNetwork(f)
	if err != nil {
		t.Fatalf("generated JSON does not load: %v", err)
	}
	if len(nw.Sensors) != 25 {
		t.Errorf("sensors = %d, want 25", len(nw.Sensors))
	}
}

func TestRunClustered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clustered.json")
	if err := run(context.Background(), 40, 1, 30, 4, path, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"sensors\"") {
		t.Error("JSON missing sensors field")
	}
}

func TestRunRejectsBadOutputPath(t *testing.T) {
	if err := run(context.Background(), 5, 1, 50, 0, filepath.Join(t.TempDir(), "no", "such", "dir.json"), false); err == nil {
		t.Error("unwritable path accepted")
	}
}
