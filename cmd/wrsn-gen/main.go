// Command wrsn-gen generates a WRSN instance with the paper's parameters
// and writes it as JSON, for reuse by external tooling or for inspecting
// the workload the other commands operate on.
//
// Usage:
//
//	wrsn-gen -n 1000 -seed 7 > network.json
//	wrsn-gen -n 400 -clusters 5 -o clustered.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"repro"
)

func main() {
	var (
		n        = flag.Int("n", 1000, "number of sensors")
		seed     = flag.Int64("seed", 1, "generation seed")
		bmax     = flag.Float64("bmax", 50, "maximum data rate in kbps")
		clusters = flag.Int("clusters", 0, "place sensors in this many clusters instead of uniformly")
		out      = flag.String("o", "", "output path (default stdout)")
		summary  = flag.Bool("summary", false, "print a human summary to stderr")
		timeout  = flag.Duration("timeout", 0, "abort after this long (0 = no limit)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if err := run(ctx, *n, *seed, *bmax, *clusters, *out, *summary); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "wrsn-gen: cancelled:", err)
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "wrsn-gen:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, n int, seed int64, bmaxKbps float64, clusters int, out string, summary bool) error {
	params := repro.NewNetworkParams(n)
	params.BMaxBps = bmaxKbps * 1e3
	params.Clusters = clusters
	nw, err := repro.GenerateNetwork(params, seed)
	if err != nil {
		return err
	}
	// Generation is a single fast step; honor cancellation before
	// touching the output so an interrupted run never half-writes a file.
	if err := ctx.Err(); err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(nw); err != nil {
		return err
	}

	if summary {
		st := nw.ComputeStats()
		requests := nw.Requests(0.2)
		fmt.Fprintf(os.Stderr, "n=%d seed=%d: total draw %.2f W, %d sensors already below 20%%\n",
			n, seed, st.TotalDrawW, len(requests))
		fmt.Fprintf(os.Stderr, "routing: mean %.1f hops (max %d), %d direct uplinks\n",
			st.MeanHops, st.MaxHops, st.DirectUplinks)
		fmt.Fprintf(os.Stderr, "lifetime: mean %.1f days, hottest sensor %.1f h; mean %.2f co-chargeable neighbors\n",
			st.MeanLifetimeDays, st.MinLifetimeHours, st.MeanNeighbors)
	}
	return nil
}
