package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func baseOpts() runOpts {
	return runOpts{
		n: 30, k: 2, name: "Appro", days: 10, windowH: 24,
		seed: 1, bmaxKbps: 50, level: 1, verify: true,
	}
}

func TestRunSmoke(t *testing.T) {
	if err := run(context.Background(), baseOpts()); err != nil {
		t.Fatal(err)
	}
}

func TestRunEveryPlanner(t *testing.T) {
	for _, name := range []string{"Appro", "K-EDF", "NETWRAP", "AA", "K-minMax"} {
		o := baseOpts()
		o.name = name
		o.days = 5
		if err := run(context.Background(), o); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunUnknownPlanner(t *testing.T) {
	o := baseOpts()
	o.name = "nope"
	if err := run(context.Background(), o); err == nil {
		t.Error("unknown planner accepted")
	}
}

func TestRunIndependentAndPartial(t *testing.T) {
	o := baseOpts()
	o.independent = true
	o.level = 0.8
	o.printRounds = true
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

func TestRunLoadMissingFile(t *testing.T) {
	o := baseOpts()
	o.load = filepath.Join(t.TempDir(), "missing.json")
	if err := run(context.Background(), o); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunLoadGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	o := baseOpts()
	o.load = path
	if err := run(context.Background(), o); err == nil {
		t.Error("garbage file accepted")
	}
}
