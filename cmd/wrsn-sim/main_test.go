package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func baseOpts() runOpts {
	return runOpts{
		n: 30, k: 2, name: "Appro", days: 10, windowH: 24,
		seed: 1, bmaxKbps: 50, level: 1, verify: true,
	}
}

func TestRunSmoke(t *testing.T) {
	if err := run(context.Background(), baseOpts()); err != nil {
		t.Fatal(err)
	}
}

func TestRunEveryPlanner(t *testing.T) {
	for _, name := range []string{"Appro", "K-EDF", "NETWRAP", "AA", "K-minMax"} {
		o := baseOpts()
		o.name = name
		o.days = 5
		if err := run(context.Background(), o); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunUnknownPlanner(t *testing.T) {
	o := baseOpts()
	o.name = "nope"
	if err := run(context.Background(), o); err == nil {
		t.Error("unknown planner accepted")
	}
}

func TestRunIndependentAndPartial(t *testing.T) {
	o := baseOpts()
	o.independent = true
	o.level = 0.8
	o.printRounds = true
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithFaultSpec(t *testing.T) {
	o := baseOpts()
	o.faults = "mcv=0.2,transient=0.5,travel-noise=0.05,charge-noise=0.05"
	o.faultSeed = 7
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithFaultSpecFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	spec := `{"seed": 3, "mcv_fail_rate": 0.1, "travel_noise": 0.05}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	o := baseOpts()
	o.faultSpec = path
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFaultSpecs(t *testing.T) {
	o := baseOpts()
	o.faults = "mcv=2" // probability out of range
	if err := run(context.Background(), o); err == nil {
		t.Error("invalid fault spec accepted")
	}
	o = baseOpts()
	o.faultSpec = filepath.Join(t.TempDir(), "missing.json")
	if err := run(context.Background(), o); err == nil {
		t.Error("missing fault spec file accepted")
	}
}

func TestFaultPlanSeedResolution(t *testing.T) {
	o := baseOpts()
	o.faults = "mcv=0.1"
	plan, err := o.faultPlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != o.seed {
		t.Errorf("plan seed = %d, want network seed %d", plan.Seed, o.seed)
	}
	o.faultSeed = 42
	plan, err = o.faultPlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Seed != 42 {
		t.Errorf("plan seed = %d, want explicit -fault-seed 42", plan.Seed)
	}
	o.faults = ""
	plan, err = o.faultPlan()
	if err != nil || plan != nil {
		t.Errorf("no fault flags: plan = %v, err = %v, want nil, nil", plan, err)
	}
}

func TestRunLoadMissingFile(t *testing.T) {
	o := baseOpts()
	o.load = filepath.Join(t.TempDir(), "missing.json")
	if err := run(context.Background(), o); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunLoadGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	o := baseOpts()
	o.load = path
	if err := run(context.Background(), o); err == nil {
		t.Error("garbage file accepted")
	}
}
