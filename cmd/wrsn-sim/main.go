// Command wrsn-sim runs one full evaluation simulation: it generates a
// WRSN with the paper's parameters, monitors it for the configured period
// under a chosen scheduling algorithm, and reports per-round and aggregate
// statistics.
//
// Usage:
//
//	wrsn-sim -n 1000 -k 2 -planner Appro -days 365
//	wrsn-sim -n 1200 -k 2 -planner K-minMax -rounds
//	wrsn-sim -n 600 -k 3 -faults mcv=0.1,transient=0.5,travel-noise=0.05 -fault-seed 7
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"

	"repro"
	"repro/internal/export"
)

func main() {
	var (
		n       = flag.Int("n", 1000, "number of sensors (paper: 200..1200)")
		k       = flag.Int("k", 2, "number of mobile chargers (paper: 1..5)")
		name    = flag.String("planner", "Appro", "algorithm: "+strings.Join(repro.PlannerNames(), ", ")+" (case-insensitive, aliases accepted)")
		days    = flag.Float64("days", 365, "monitored period in days")
		window  = flag.Float64("window", repro.DefaultBatchWindow/3600, "dispatch batching window in hours")
		seed    = flag.Int64("seed", 1, "network generation seed")
		bmax    = flag.Float64("bmax", 50, "maximum data rate in kbps")
		verify  = flag.Bool("verify", true, "run the feasibility verifier every round")
		rounds  = flag.Bool("rounds", false, "print the per-round table")
		cluster = flag.Int("clusters", 0, "place sensors in this many clusters instead of uniformly")
		load    = flag.String("load", "", "load the network from this JSON file (as written by wrsn-gen) instead of generating one")
		level   = flag.Float64("level", 1.0, "partial-charging level: top sensors up to this fraction of capacity")
		indep   = flag.Bool("independent", false, "use independent per-charger dispatch instead of synchronized rounds")
		workers = flag.Int("workers", 0, "cap the process's parallelism (GOMAXPROCS) for reproducible timing studies (0 = all cores); results are identical at any value")
		pcache  = flag.Bool("plan-cache", false, "memoize planner outputs by (planner, instance) in a bounded in-memory LRU")
		trace   = flag.String("trace", "", "write a JSONL event trace (dispatch/charge/dead) to this file")
		timeout = flag.Duration("timeout", 0, "abort the simulation after this long, reporting the partial run (0 = no limit)")
		faults  = flag.String("faults", "", "inject faults per this compact spec, e.g. mcv=0.1,transient=0.5,travel-noise=0.05 (see repro.ParseFaultSpec)")
		fseed   = flag.Int64("fault-seed", 0, "fault-injection seed (0 = reuse -seed); equal seeds replay identical faults")
		fspec   = flag.String("fault-spec", "", "load the full fault plan from this JSON file instead of -faults")
	)
	flag.Parse()

	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	// SIGINT cancels gracefully: the statistics of the simulated span so
	// far are still reported. A second SIGINT kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if err := run(ctx, runOpts{
		n: *n, k: *k, name: *name, days: *days, windowH: *window,
		seed: *seed, bmaxKbps: *bmax, clusters: *cluster, load: *load,
		level: *level, independent: *indep, verify: *verify, printRounds: *rounds,
		planCache: *pcache,
		trace:     *trace, faults: *faults, faultSeed: *fseed, faultSpec: *fspec,
	}); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "wrsn-sim: partial — cancelled:", err)
			os.Exit(2)
		}
		if errors.Is(err, repro.ErrFleetLost) {
			fmt.Fprintln(os.Stderr, "wrsn-sim: degraded —", err)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "wrsn-sim:", err)
		os.Exit(1)
	}
}

// runOpts carries the command's flag values.
type runOpts struct {
	n, k, clusters          int
	name, load              string
	days, windowH, bmaxKbps float64
	level                   float64
	seed                    int64
	independent             bool
	verify, printRounds     bool
	planCache               bool
	trace                   string
	faults, faultSpec       string
	faultSeed               int64
}

// faultPlan resolves the three fault flags into a plan (or nil when fault
// injection is off): -fault-spec loads a full JSON plan, -faults parses the
// compact spec, and -fault-seed (defaulting to the network seed) makes the
// injected faults replayable.
func (o runOpts) faultPlan() (*repro.FaultPlan, error) {
	var plan *repro.FaultPlan
	switch {
	case o.faultSpec != "":
		f, err := os.Open(o.faultSpec)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		plan, err = repro.LoadFaultPlan(f)
		if err != nil {
			return nil, fmt.Errorf("fault spec %s: %w", o.faultSpec, err)
		}
	case o.faults != "":
		var err error
		plan, err = repro.ParseFaultSpec(o.faults)
		if err != nil {
			return nil, err
		}
	default:
		return nil, nil
	}
	if o.faultSeed != 0 {
		plan.Seed = o.faultSeed
	} else if plan.Seed == 0 {
		plan.Seed = o.seed
	}
	return plan, nil
}

func run(ctx context.Context, o runOpts) error {
	n, k, name := o.n, o.k, o.name
	days, windowH, seed := o.days, o.windowH, o.seed
	bmaxKbps, clusters, load := o.bmaxKbps, o.clusters, o.load
	verify, printRounds := o.verify, o.printRounds
	planner, err := repro.NewPlanner(name)
	if err != nil {
		return err
	}
	if o.planCache {
		planner = repro.CachedPlanner(planner, repro.NewPlanCache(0))
	}
	var nw *repro.Network
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return err
		}
		nw, err = repro.LoadNetwork(f)
		f.Close()
		if err != nil {
			return err
		}
		n = len(nw.Sensors)
	} else {
		params := repro.NewNetworkParams(n)
		params.BMaxBps = bmaxKbps * 1e3
		params.Clusters = clusters
		nw, err = repro.GenerateNetwork(params, seed)
		if err != nil {
			return err
		}
	}
	fmt.Printf("network: n=%d, field %.0fx%.0f m, total draw %.2f W, K=%d, planner %s\n",
		n, nw.Field.Width(), nw.Field.Height(), nw.TotalDraw(), k, planner.Name())

	dispatch := repro.DispatchSynchronized
	if o.independent {
		dispatch = repro.DispatchIndependent
	}
	plan, err := o.faultPlan()
	if err != nil {
		return err
	}
	cfg := repro.SimConfig{
		Duration:    days * 86400,
		BatchWindow: windowH * 3600,
		ChargeLevel: o.level,
		Dispatch:    dispatch,
		Verify:      verify,
		Faults:      plan,
	}
	if o.trace != "" {
		tf, err := os.Create(o.trace)
		if err != nil {
			return err
		}
		defer tf.Close()
		cfg.Trace = tf
	}
	res, simErr := repro.Simulate(ctx, nw, k, planner, cfg)
	if simErr != nil && res == nil {
		return simErr
	}
	if simErr != nil {
		if errors.Is(simErr, repro.ErrFleetLost) {
			fmt.Printf("fleet lost — statistics up to the %.1f-day horizon:\n", res.End/86400)
		} else {
			fmt.Printf("cancelled after %.1f simulated days — partial statistics:\n", res.End/86400)
		}
	}

	if printRounds {
		tb := export.NewTable("per-round log",
			"round", "start (d)", "batch", "stops", "longest (h)", "wait (s)")
		for i, r := range res.Rounds {
			tb.AddRow(export.I(i+1), export.F(r.Start/86400, 2), export.I(r.Batch),
				export.I(r.Stops), export.F(r.Longest/3600, 2), export.F(r.Wait, 1))
		}
		if err := tb.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	fmt.Printf("rounds:                  %d (mean batch %.1f, mean stops %.1f, consolidation %.2fx)\n",
		len(res.Rounds), res.MeanBatch(), res.MeanStops(), res.ConsolidationFactor())
	fmt.Printf("avg longest tour:        %.2f h\n", res.AvgLongest/3600)
	fmt.Printf("max longest tour:        %.2f h\n", res.MaxLongest/3600)
	fmt.Printf("avg dead per sensor:     %.1f min\n", res.AvgDeadPerSensor/60)
	fmt.Printf("sensors that ever died:  %d / %d\n", res.DeadSensors, n)
	fmt.Printf("charges delivered:       %d (%.1f kJ)\n", res.Charges, res.EnergyDelivered/1000)
	if fs := res.Faults; fs != nil {
		fmt.Printf("mcv breakdowns:          %d (%d transient, %d permanent; %d repair attempts, %.1f h in repair)\n",
			fs.MCVFailures, fs.Transient, fs.Permanent, fs.Retries, fs.RepairSeconds/3600)
		fmt.Printf("surviving chargers:      %d / %d\n", fs.SurvivingMCVs, k)
		fmt.Printf("stops redistributed:     %d (%d left unserved)\n", fs.Redistributed, fs.Unserved)
		if fs.SensorFailures > 0 || fs.Bursts > 0 {
			fmt.Printf("world events:            %d sensor failures, %d request bursts\n", fs.SensorFailures, fs.Bursts)
		}
		fmt.Printf("delay inflation:         %.3fx (realized vs planned)\n", fs.DelayInflation())
	}
	if verify {
		fmt.Printf("feasibility violations:  %d\n", res.Violations)
		if res.Violations > 0 {
			return fmt.Errorf("%d feasibility violations (first: %s)", res.Violations, res.FirstViolation)
		}
	}
	return simErr
}
