// Command wrsn-serve runs the planning engine as an HTTP/JSON service:
// POST /v1/plan plans charging tours for an instance (byte-identical to
// `wrsn-plan -json`), POST /v1/simulate runs the evaluation protocol,
// and /livez, /readyz, /metrics and /debug/pprof expose operational
// state. SIGTERM or SIGINT triggers a graceful drain: in-flight
// requests finish, new ones get 503, then the listener closes.
//
// Usage:
//
//	wrsn-serve -addr :8080 -workers 4 -queue 64
//	wrsn-plan -n 400 -dump-instance inst.json
//	curl -s -d @inst.json localhost:8080/v1/plan
//
// With -shards the process becomes a router: /v1/plan requests are
// consistent-hashed across the named backends with retries, per-backend
// circuit breakers, optional hedging, and fallback to local planning
// (X-Plan-Degraded: local) when no backend can answer:
//
//	wrsn-serve -addr :8080 -shards host1:8081,host2:8081
//
// The -loadgen mode benchmarks the service against itself: it starts an
// in-process server (or router, with -shards), drives it from
// concurrent clients recording an HDR-style latency histogram, then
// triggers a drain with requests still in flight and verifies none are
// dropped. Adding -chaos runs the HTTP fault drill on top: a
// deterministic fault-replay phase (same -chaos-seed, same injected
// fault sequence, byte for byte) and a kill/revive phase that hard-kills
// one of two backends mid-run and requires availability >= 99% with
// every schedule byte-identical to single-process planning. Results go
// to BENCH_serve.json.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/geom"
	"repro/internal/resilience"
	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "concurrent planning workers (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", serve.DefaultQueueDepth, "admission queue depth; requests beyond workers+queue get 429 (negative = no queue)")
		cacheCap     = flag.Int("cache-cap", 0, "plan cache capacity in entries (0 = default, negative = disabled)")
		defTimeout   = flag.Duration("default-timeout", 30*time.Second, "planning deadline for requests that name none")
		maxTimeout   = flag.Duration("max-timeout", 5*time.Minute, "upper bound on client-requested deadlines")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a graceful drain waits for in-flight requests")
		shards       = flag.String("shards", "", "comma-separated backend addresses; route /v1/plan across them with consistent hashing, retries and circuit breakers")
		hedge        = flag.Float64("hedge-quantile", 0, "router: launch a hedged second request after this latency quantile (0 = off, e.g. 0.99)")

		loadgen     = flag.Bool("loadgen", false, "run the self-benchmark instead of serving, writing results to -bench-out")
		n           = flag.Int("n", 200, "loadgen: requests per planning instance")
		k           = flag.Int("k", 2, "loadgen: chargers per planning instance")
		reqs        = flag.Int("requests", 200, "loadgen: total /v1/plan requests in the sustained phase")
		concurrency = flag.Int("concurrency", 8, "loadgen: concurrent client connections")
		variants    = flag.Int("variants", 4, "loadgen: distinct instances cycled through (1 = pure cache-hit load)")
		benchOut    = flag.String("bench-out", "BENCH_serve.json", "loadgen: output file")
		chaos       = flag.Bool("chaos", false, "loadgen: run the HTTP chaos drill (deterministic fault replay + backend kill/revive)")
		chaosSeed   = flag.Int64("chaos-seed", 7, "loadgen: chaos fault-plan seed; same seed, same injected fault sequence")
	)
	flag.Parse()

	cfg := serve.Config{
		Addr:           *addr,
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheCapacity:  *cacheCap,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		DrainTimeout:   *drainTimeout,
		HedgeQuantile:  *hedge,
	}
	if *shards != "" {
		for _, sh := range strings.Split(*shards, ",") {
			if sh = strings.TrimSpace(sh); sh != "" {
				cfg.Shards = append(cfg.Shards, sh)
			}
		}
	}
	if *loadgen {
		if err := runLoadgen(cfg, *n, *k, *reqs, *concurrency, *variants, *benchOut, *chaos, *chaosSeed); err != nil {
			fmt.Fprintln(os.Stderr, "wrsn-serve:", err)
			os.Exit(1)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	s := serve.New(cfg)
	go func() {
		for s.Addr() == "" {
			time.Sleep(time.Millisecond)
			if ctx.Err() != nil {
				return
			}
		}
		if len(cfg.Shards) > 0 {
			log.Printf("wrsn-serve: routing on %s across %d shards", s.Addr(), len(cfg.Shards))
		} else {
			log.Printf("wrsn-serve: listening on %s (workers=%d queue=%d)", s.Addr(), *workers, *queue)
		}
	}()
	if err := s.ListenAndServe(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "wrsn-serve:", err)
		os.Exit(1)
	}
	log.Print("wrsn-serve: drained cleanly")
}

// loadgenInstance mirrors the wrsn-plan/serve test planning regime.
func loadgenInstance(n, k int, seed int64) *core.Instance {
	rng := rand.New(rand.NewSource(seed))
	in := &core.Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: k}
	for i := 0; i < n; i++ {
		in.Requests = append(in.Requests, core.Request{
			Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
			Duration: (1.2 + 0.3*rng.Float64()) * 3600,
			Lifetime: (1 + rng.Float64()*6) * 86400,
		})
	}
	return in
}

// benchReport is the BENCH_serve.json shape.
type benchReport struct {
	Description string           `json:"description"`
	Hardware    map[string]any   `json:"hardware"`
	Config      map[string]any   `json:"config"`
	Sustained   sustainedResults `json:"sustained"`
	Drain       drainResults     `json:"drain"`
	Chaos       *chaosResults    `json:"chaos,omitempty"`
	GeneratedAt string           `json:"generated_at"`
}

type sustainedResults struct {
	Requests       int     `json:"requests"`
	OK             int64   `json:"ok"`
	Rejected       int64   `json:"rejected_429"`
	Errors         int64   `json:"errors"`
	Seconds        float64 `json:"seconds"`
	ReqPerSec      float64 `json:"req_per_s"`
	Availability   float64 `json:"availability"`
	AvailabilityOK bool    `json:"availability_ok"` // availability >= 0.99
	LatencyP50MS   float64 `json:"latency_p50_ms"`
	LatencyP99MS   float64 `json:"latency_p99_ms"`
	LatencyP999MS  float64 `json:"latency_p999_ms"`
	LatencyMaxMS   float64 `json:"latency_max_ms"`
	CacheState     string  `json:"cache"`
}

type drainResults struct {
	InFlightAtDrain int   `json:"in_flight_at_drain"`
	CompletedOK     int64 `json:"completed_ok"`
	DroppedInFlight int64 `json:"dropped_in_flight"`
	NewRefused      bool  `json:"new_requests_refused"`
	CleanShutdown   bool  `json:"clean_shutdown"`
}

// chaosResults records the two chaos-drill phases: deterministic fault
// replay and backend kill/revive.
type chaosResults struct {
	Seed            int64             `json:"seed"`
	ReplayIdentical bool              `json:"replay_identical"`
	EventsDigest    string            `json:"events_digest"`
	Events          int               `json:"events"`
	Faults          map[string]int64  `json:"faults"`
	Retries         int64             `json:"retries"`
	Failovers       int64             `json:"failovers"`
	DegradedLocal   int64             `json:"degraded_local"`
	Hedges          int64             `json:"hedges"`
	BreakerOpens    int64             `json:"breaker_opens"`
	KillRevive      killReviveResults `json:"kill_revive"`
}

type killReviveResults struct {
	Requests        int     `json:"requests"`
	OK              int64   `json:"ok"`
	DroppedInFlight int64   `json:"dropped_in_flight"`
	Availability    float64 `json:"availability"`
	AvailabilityOK  bool    `json:"availability_ok"`
	DegradedLocal   int64   `json:"degraded_local"`
	Retries         int64   `json:"retries"`
	Failovers       int64   `json:"failovers"`
	BreakerOpens    int64   `json:"breaker_opens"`
	ByteIdentical   bool    `json:"schedules_byte_identical"`
}

// runLoadgen starts an in-process server (router when cfg.Shards is
// set), measures sustained /v1/plan throughput with a latency
// histogram, then repeats the acceptance drill: trigger a drain with
// requests in flight and verify every one of them completes. With
// chaosOn it appends the chaos drill.
func runLoadgen(cfg serve.Config, n, k, reqs, concurrency, variants int, out string, chaosOn bool, chaosSeed int64) error {
	if variants < 1 {
		variants = 1
	}
	cfg.Addr = "127.0.0.1:0"
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := serve.New(cfg)
	defer s.Close()
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.ListenAndServe(ctx) }()
	for s.Addr() == "" {
		time.Sleep(time.Millisecond)
	}
	url := "http://" + s.Addr() + "/v1/plan"

	bodies := make([][]byte, variants)
	for i := range bodies {
		b, err := json.Marshal(loadgenInstance(n, k, int64(i+1)))
		if err != nil {
			return err
		}
		bodies[i] = b
	}

	// Phase 1: sustained closed-loop load from `concurrency` clients,
	// each request timed into an HDR-style histogram.
	var ok, rejected, errs atomic.Int64
	var next atomic.Int64
	hist := &resilience.Histogram{}
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= reqs {
					return
				}
				t0 := time.Now()
				code, err := post(url, bodies[i%len(bodies)])
				hist.Observe(time.Since(t0))
				switch {
				case err != nil:
					errs.Add(1)
				case code == http.StatusOK:
					ok.Add(1)
				case code == http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	availability := float64(ok.Load()) / float64(reqs)
	fmt.Printf("sustained: %d requests in %.2fs (%.1f req/s, %d ok, %d rejected, %d errors, p50=%.1fms p99=%.1fms p999=%.1fms)\n",
		reqs, elapsed.Seconds(), float64(reqs)/elapsed.Seconds(), ok.Load(), rejected.Load(), errs.Load(),
		hist.Quantile(0.50).Seconds()*1e3, hist.Quantile(0.99).Seconds()*1e3, hist.Quantile(0.999).Seconds()*1e3)

	// Phase 2: the graceful-drain drill. Pin `concurrency` slow plans
	// (fresh instances, so each pays a full plan), drain mid-flight, and
	// require every admitted request to come back 200.
	inFlight := concurrency
	var drainOK, dropped atomic.Int64
	var dwg sync.WaitGroup
	for c := 0; c < inFlight; c++ {
		body, err := json.Marshal(loadgenInstance(4*n, k, int64(1000+c)))
		if err != nil {
			return err
		}
		dwg.Add(1)
		go func(b []byte) {
			defer dwg.Done()
			code, err := post(url, b)
			if err == nil && code == http.StatusOK {
				drainOK.Add(1)
			} else {
				dropped.Add(1)
			}
		}(body)
	}
	// Give the requests time to be admitted, then drain.
	time.Sleep(100 * time.Millisecond)
	cancel()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	newRefused := false
	if code, err := post(url, bodies[0]); err != nil || code == http.StatusServiceUnavailable {
		newRefused = true
	}
	dwg.Wait()
	shutdownErr := <-serveDone
	fmt.Printf("drain: %d in flight at SIGTERM, %d completed, %d dropped, clean shutdown: %v\n",
		inFlight, drainOK.Load(), dropped.Load(), shutdownErr == nil)

	var chaosRep *chaosResults
	if chaosOn {
		var err error
		if chaosRep, err = runChaosDrill(chaosSeed, k); err != nil {
			return err
		}
	}

	rep := benchReport{
		Description: fmt.Sprintf("wrsn-serve self-benchmark (wrsn-serve -loadgen -n %d -k %d -requests %d -concurrency %d -variants %d)",
			n, k, reqs, concurrency, variants),
		Hardware: map[string]any{
			"cpu":        cpuModel(),
			"cores":      runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"go":         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		},
		Config: map[string]any{
			"workers": cfg.Workers, "queue_depth": cfg.QueueDepth,
			"cache_capacity": cfg.CacheCapacity, "instance_n": n, "instance_k": k,
			"shards": len(cfg.Shards),
		},
		Sustained: sustainedResults{
			Requests:       reqs,
			OK:             ok.Load(),
			Rejected:       rejected.Load(),
			Errors:         errs.Load(),
			Seconds:        elapsed.Seconds(),
			ReqPerSec:      float64(reqs) / elapsed.Seconds(),
			Availability:   availability,
			AvailabilityOK: availability >= 0.99,
			LatencyP50MS:   hist.Quantile(0.50).Seconds() * 1e3,
			LatencyP99MS:   hist.Quantile(0.99).Seconds() * 1e3,
			LatencyP999MS:  hist.Quantile(0.999).Seconds() * 1e3,
			LatencyMaxMS:   hist.Max().Seconds() * 1e3,
			CacheState:     fmt.Sprintf("%d variants over a shared plan cache", variants),
		},
		Drain: drainResults{
			InFlightAtDrain: inFlight,
			CompletedOK:     drainOK.Load(),
			DroppedInFlight: dropped.Load(),
			NewRefused:      newRefused,
			CleanShutdown:   shutdownErr == nil,
		},
		Chaos:       chaosRep,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	if dropped.Load() > 0 || shutdownErr != nil {
		return fmt.Errorf("drain dropped %d in-flight requests (shutdown err: %v)", dropped.Load(), shutdownErr)
	}
	if errs.Load() > 0 {
		return fmt.Errorf("sustained phase had %d transport/server errors", errs.Load())
	}
	return nil
}

// chaosTopo is one two-backend router topology for the chaos drill.
type chaosTopo struct {
	backends []*serve.Server
	cancels  []context.CancelFunc
	dones    []chan error
	router   *serve.Server
	tripper  *resilience.ChaosTripper
	rCancel  context.CancelFunc
	rDone    chan error
}

func startInProc(cfg serve.Config) (*serve.Server, context.CancelFunc, chan error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := serve.New(cfg)
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(ctx) }()
	for s.Addr() == "" {
		time.Sleep(time.Millisecond)
	}
	return s, cancel, done
}

// startChaosTopo brings up two backends and a chaos-wrapped router over
// them, waiting until the router's health loop sees both.
func startChaosTopo(seed int64, routerCfg serve.Config) (*chaosTopo, error) {
	topo := &chaosTopo{}
	for i := 0; i < 2; i++ {
		b, cancel, done := startInProc(serve.Config{})
		topo.backends = append(topo.backends, b)
		topo.cancels = append(topo.cancels, cancel)
		topo.dones = append(topo.dones, done)
	}
	topo.tripper = resilience.NewChaosTripper(nil, resilience.ChaosPlan{
		Seed:        seed,
		LatencyRate: 0.15,
		LatencyBase: 2 * time.Millisecond,
		ResetRate:   0.12,
		Err5xxRate:  0.12,
	})
	routerCfg.Shards = []string{topo.backends[0].Addr(), topo.backends[1].Addr()}
	routerCfg.Transport = topo.tripper
	routerCfg.HealthInterval = 50 * time.Millisecond
	topo.router, topo.rCancel, topo.rDone = startInProc(routerCfg)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st, _ := topo.router.RouterStats(); st.HealthyBackends == 2 {
			return topo, nil
		}
		if time.Now().After(deadline) {
			topo.stop()
			return nil, fmt.Errorf("chaos drill: router never saw both backends healthy")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (t *chaosTopo) stop() {
	t.rCancel()
	<-t.rDone
	t.router.Close()
	for i, cancel := range t.cancels {
		cancel()
		<-t.dones[i]
	}
}

// chaosReplayRun drives one deterministic replay pass: sequential
// requests over fresh instances, breakers effectively disabled (huge
// threshold) and hedging off, so the only stochastic inputs are the
// hash-keyed chaos draws. Returns the canonical event digest and the
// router counters.
func chaosReplayRun(seed int64, k, reqs int) (digest string, events int, faults map[string]int64, stats serve.RouterStats, err error) {
	topo, err := startChaosTopo(seed, serve.Config{
		BreakerThreshold: 1 << 20, // never trip: open/half-open timing is wall clock, not seed-keyed
		BreakerCooldown:  time.Hour,
	})
	if err != nil {
		return "", 0, nil, serve.RouterStats{}, err
	}
	defer topo.stop()
	url := "http://" + topo.router.Addr() + "/v1/plan"
	for i := 0; i < reqs; i++ {
		body, err := json.Marshal(loadgenInstance(60, k, int64(i+1)))
		if err != nil {
			return "", 0, nil, serve.RouterStats{}, err
		}
		code, err := post(url, body)
		if err != nil || code != http.StatusOK {
			return "", 0, nil, serve.RouterStats{}, fmt.Errorf("chaos replay request %d: code=%d err=%v", i, code, err)
		}
	}
	// Digest the injected-fault sequence in its canonical order. Hosts
	// are excluded: backend ports are ephemeral, while (key, attempt,
	// kind) is the seed-determined part of the sequence.
	evs := topo.tripper.Events()
	h := sha256.New()
	for _, e := range evs {
		fmt.Fprintf(h, "%016x|%d|%s\n", e.Key, e.Attempt, e.Kind)
	}
	st, _ := topo.router.RouterStats()
	return hex.EncodeToString(h.Sum(nil)), len(evs), topo.tripper.Counts(), st, nil
}

// runChaosDrill is the -chaos acceptance drill. Phase A proves replay
// determinism: two fresh topologies with the same seed must inject the
// identical fault sequence and drive identical retry/breaker/hedge
// counters. Phase B hard-kills one of two backends mid-run (transport
// blackhole + listener teardown), revives it, and requires availability
// >= 99% with every schedule byte-identical to single-process planning.
func runChaosDrill(seed int64, k int) (*chaosResults, error) {
	const replayReqs = 48
	fmt.Printf("chaos: replay phase (seed %d, %d sequential requests, twice)\n", seed, replayReqs)
	d1, n1, f1, s1, err := chaosReplayRun(seed, k, replayReqs)
	if err != nil {
		return nil, err
	}
	d2, n2, f2, s2, err := chaosReplayRun(seed, k, replayReqs)
	if err != nil {
		return nil, err
	}
	identical := d1 == d2 && n1 == n2 &&
		s1.Retries == s2.Retries && s1.Failovers == s2.Failovers &&
		s1.DegradedLocal == s2.DegradedLocal && s1.Hedges == s2.Hedges &&
		s1.BreakerOpens == s2.BreakerOpens &&
		fmt.Sprint(f1) == fmt.Sprint(f2)
	fmt.Printf("chaos: replay identical=%v (%d events, %d retries, %d failovers, %d degraded)\n",
		identical, n1, s1.Retries, s1.Failovers, s1.DegradedLocal)

	kr, err := chaosKillRevive(seed, k)
	if err != nil {
		return nil, err
	}

	rep := &chaosResults{
		Seed:            seed,
		ReplayIdentical: identical,
		EventsDigest:    d1,
		Events:          n1,
		Faults:          f1,
		Retries:         s1.Retries,
		Failovers:       s1.Failovers,
		DegradedLocal:   s1.DegradedLocal,
		Hedges:          s1.Hedges,
		BreakerOpens:    s1.BreakerOpens,
		KillRevive:      *kr,
	}
	if !identical {
		return rep, fmt.Errorf("chaos replay diverged: run1 %s (%d events), run2 %s (%d events)", d1, n1, d2, n2)
	}
	if !kr.AvailabilityOK || kr.DroppedInFlight > 0 {
		return rep, fmt.Errorf("chaos kill/revive: availability %.4f, %d dropped", kr.Availability, kr.DroppedInFlight)
	}
	if !kr.ByteIdentical {
		return rep, fmt.Errorf("chaos kill/revive: routed schedules diverged from single-process planning")
	}
	return rep, nil
}

// chaosKillRevive runs concurrent clients against the chaos router,
// hard-kills one backend a third of the way through (administrative
// blackhole plus listener teardown — the HTTP analogue of kill -9),
// revives it at two thirds, and scores availability and byte-identity.
func chaosKillRevive(seed int64, k int) (*killReviveResults, error) {
	const (
		reqs        = 120
		concurrency = 6
		nVariants   = 6
		instN       = 60
	)
	topo, err := startChaosTopo(seed, serve.Config{
		BreakerThreshold: 3,
		BreakerCooldown:  300 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer topo.stop()
	url := "http://" + topo.router.Addr() + "/v1/plan"

	// Reference bytes: what wrsn-plan -json (single-process serving)
	// writes for each variant.
	bodies := make([][]byte, nVariants)
	want := make([][]byte, nVariants)
	planner, err := serve.DefaultPlanner("", nil)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nVariants; i++ {
		in := loadgenInstance(instN, k, int64(i+1))
		if bodies[i], err = json.Marshal(in); err != nil {
			return nil, err
		}
		sched, err := planner.Plan(context.Background(), in)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := export.WriteSchedule(&buf, sched); err != nil {
			return nil, err
		}
		want[i] = buf.Bytes()
	}

	victim := topo.backends[0].Addr()
	var done atomic.Int64
	var okCount atomic.Int64
	var mismatches atomic.Int64
	killed := make(chan struct{})
	revived := make(chan error, 1)
	go func() {
		for done.Load() < reqs/3 {
			time.Sleep(2 * time.Millisecond)
		}
		topo.tripper.Blackhole(victim, true)
		topo.cancels[0]()
		<-topo.dones[0]
		close(killed)
		for done.Load() < 2*reqs/3 {
			time.Sleep(2 * time.Millisecond)
		}
		// Revive: rebind the same address, then lift the blackhole.
		b, cancel, bdone := startInProc(serve.Config{Addr: victim})
		topo.backends[0] = b
		topo.cancels[0] = cancel
		topo.dones[0] = bdone
		topo.tripper.Blackhole(victim, false)
		revived <- nil
	}()

	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			for {
				i := int(next.Add(1)) - 1
				if i >= reqs {
					return
				}
				v := i % nVariants
				resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[v]))
				if err == nil {
					body, rerr := io.ReadAll(resp.Body)
					resp.Body.Close()
					if rerr == nil && resp.StatusCode == http.StatusOK {
						okCount.Add(1)
						if !bytes.Equal(body, want[v]) {
							mismatches.Add(1)
						}
					}
				}
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	<-killed
	if err := <-revived; err != nil {
		return nil, err
	}

	st, _ := topo.router.RouterStats()
	avail := float64(okCount.Load()) / float64(reqs)
	kr := &killReviveResults{
		Requests:        reqs,
		OK:              okCount.Load(),
		DroppedInFlight: int64(reqs) - okCount.Load(),
		Availability:    avail,
		AvailabilityOK:  avail >= 0.99,
		DegradedLocal:   st.DegradedLocal,
		Retries:         st.Retries,
		Failovers:       st.Failovers,
		BreakerOpens:    st.BreakerOpens,
		ByteIdentical:   mismatches.Load() == 0,
	}
	fmt.Printf("chaos: kill/revive availability=%.4f (%d/%d ok, %d degraded-local, %d retries, %d breaker opens, byte-identical=%v)\n",
		avail, kr.OK, reqs, kr.DegradedLocal, kr.Retries, kr.BreakerOpens, kr.ByteIdentical)
	return kr, nil
}

// post issues one JSON POST and returns the status code, draining the
// body so connections are reused.
func post(url string, body []byte) (int, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// cpuModel reads the CPU model name from /proc/cpuinfo, best effort.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}
