// Command wrsn-serve runs the planning engine as an HTTP/JSON service:
// POST /v1/plan plans charging tours for an instance (byte-identical to
// `wrsn-plan -json`), POST /v1/simulate runs the evaluation protocol,
// and /healthz, /metrics and /debug/pprof expose operational state.
// SIGTERM or SIGINT triggers a graceful drain: in-flight requests
// finish, new ones get 503, then the listener closes.
//
// Usage:
//
//	wrsn-serve -addr :8080 -workers 4 -queue 64
//	wrsn-plan -n 400 -dump-instance inst.json
//	curl -s -d @inst.json localhost:8080/v1/plan
//
// The -loadgen mode benchmarks the service against itself: it starts an
// in-process server, drives it from concurrent clients, then triggers a
// drain with requests still in flight and verifies none are dropped.
// Results go to BENCH_serve.json.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "concurrent planning workers (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", serve.DefaultQueueDepth, "admission queue depth; requests beyond workers+queue get 429 (negative = no queue)")
		cacheCap     = flag.Int("cache-cap", 0, "plan cache capacity in entries (0 = default, negative = disabled)")
		defTimeout   = flag.Duration("default-timeout", 30*time.Second, "planning deadline for requests that name none")
		maxTimeout   = flag.Duration("max-timeout", 5*time.Minute, "upper bound on client-requested deadlines")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long a graceful drain waits for in-flight requests")

		loadgen     = flag.Bool("loadgen", false, "run the self-benchmark instead of serving, writing results to -bench-out")
		n           = flag.Int("n", 200, "loadgen: requests per planning instance")
		k           = flag.Int("k", 2, "loadgen: chargers per planning instance")
		reqs        = flag.Int("requests", 200, "loadgen: total /v1/plan requests in the sustained phase")
		concurrency = flag.Int("concurrency", 8, "loadgen: concurrent client connections")
		variants    = flag.Int("variants", 4, "loadgen: distinct instances cycled through (1 = pure cache-hit load)")
		benchOut    = flag.String("bench-out", "BENCH_serve.json", "loadgen: output file")
	)
	flag.Parse()

	cfg := serve.Config{
		Addr:           *addr,
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheCapacity:  *cacheCap,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		DrainTimeout:   *drainTimeout,
	}
	if *loadgen {
		if err := runLoadgen(cfg, *n, *k, *reqs, *concurrency, *variants, *benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "wrsn-serve:", err)
			os.Exit(1)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	s := serve.New(cfg)
	go func() {
		for s.Addr() == "" {
			time.Sleep(time.Millisecond)
			if ctx.Err() != nil {
				return
			}
		}
		log.Printf("wrsn-serve: listening on %s (workers=%d queue=%d)", s.Addr(), *workers, *queue)
	}()
	if err := s.ListenAndServe(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "wrsn-serve:", err)
		os.Exit(1)
	}
	log.Print("wrsn-serve: drained cleanly")
}

// loadgenInstance mirrors the wrsn-plan/serve test planning regime.
func loadgenInstance(n, k int, seed int64) *core.Instance {
	rng := rand.New(rand.NewSource(seed))
	in := &core.Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: k}
	for i := 0; i < n; i++ {
		in.Requests = append(in.Requests, core.Request{
			Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
			Duration: (1.2 + 0.3*rng.Float64()) * 3600,
			Lifetime: (1 + rng.Float64()*6) * 86400,
		})
	}
	return in
}

// benchReport is the BENCH_serve.json shape.
type benchReport struct {
	Description string            `json:"description"`
	Hardware    map[string]any    `json:"hardware"`
	Config      map[string]any    `json:"config"`
	Sustained   sustainedResults  `json:"sustained"`
	Drain       drainResults      `json:"drain"`
	GeneratedAt string            `json:"generated_at"`
}

type sustainedResults struct {
	Requests   int     `json:"requests"`
	OK         int64   `json:"ok"`
	Rejected   int64   `json:"rejected_429"`
	Errors     int64   `json:"errors"`
	Seconds    float64 `json:"seconds"`
	ReqPerSec  float64 `json:"req_per_s"`
	CacheState string  `json:"cache"`
}

type drainResults struct {
	InFlightAtDrain int   `json:"in_flight_at_drain"`
	CompletedOK     int64 `json:"completed_ok"`
	DroppedInFlight int64 `json:"dropped_in_flight"`
	NewRefused      bool  `json:"new_requests_refused"`
	CleanShutdown   bool  `json:"clean_shutdown"`
}

// runLoadgen starts an in-process server, measures sustained /v1/plan
// throughput, then repeats the acceptance drill: trigger a drain with
// requests in flight and verify every one of them completes.
func runLoadgen(cfg serve.Config, n, k, reqs, concurrency, variants int, out string) error {
	if variants < 1 {
		variants = 1
	}
	cfg.Addr = "127.0.0.1:0"
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := serve.New(cfg)
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.ListenAndServe(ctx) }()
	for s.Addr() == "" {
		time.Sleep(time.Millisecond)
	}
	url := "http://" + s.Addr() + "/v1/plan"

	bodies := make([][]byte, variants)
	for i := range bodies {
		b, err := json.Marshal(loadgenInstance(n, k, int64(i+1)))
		if err != nil {
			return err
		}
		bodies[i] = b
	}

	// Phase 1: sustained closed-loop load from `concurrency` clients.
	var ok, rejected, errs atomic.Int64
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= reqs {
					return
				}
				code, err := post(url, bodies[i%len(bodies)])
				switch {
				case err != nil:
					errs.Add(1)
				case code == http.StatusOK:
					ok.Add(1)
				case code == http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("sustained: %d requests in %.2fs (%.1f req/s, %d ok, %d rejected, %d errors)\n",
		reqs, elapsed.Seconds(), float64(reqs)/elapsed.Seconds(), ok.Load(), rejected.Load(), errs.Load())

	// Phase 2: the graceful-drain drill. Pin `concurrency` slow plans
	// (fresh instances, so each pays a full plan), drain mid-flight, and
	// require every admitted request to come back 200.
	inFlight := concurrency
	var drainOK, dropped atomic.Int64
	var dwg sync.WaitGroup
	for c := 0; c < inFlight; c++ {
		body, err := json.Marshal(loadgenInstance(4*n, k, int64(1000+c)))
		if err != nil {
			return err
		}
		dwg.Add(1)
		go func(b []byte) {
			defer dwg.Done()
			code, err := post(url, b)
			if err == nil && code == http.StatusOK {
				drainOK.Add(1)
			} else {
				dropped.Add(1)
			}
		}(body)
	}
	// Give the requests time to be admitted, then drain.
	time.Sleep(100 * time.Millisecond)
	cancel()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	newRefused := false
	if code, err := post(url, bodies[0]); err != nil || code == http.StatusServiceUnavailable {
		newRefused = true
	}
	dwg.Wait()
	shutdownErr := <-serveDone
	fmt.Printf("drain: %d in flight at SIGTERM, %d completed, %d dropped, clean shutdown: %v\n",
		inFlight, drainOK.Load(), dropped.Load(), shutdownErr == nil)

	rep := benchReport{
		Description: fmt.Sprintf("wrsn-serve self-benchmark (wrsn-serve -loadgen -n %d -k %d -requests %d -concurrency %d -variants %d)",
			n, k, reqs, concurrency, variants),
		Hardware: map[string]any{
			"cpu":        cpuModel(),
			"cores":      runtime.NumCPU(),
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"go":         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
		},
		Config: map[string]any{
			"workers": cfg.Workers, "queue_depth": cfg.QueueDepth,
			"cache_capacity": cfg.CacheCapacity, "instance_n": n, "instance_k": k,
		},
		Sustained: sustainedResults{
			Requests:   reqs,
			OK:         ok.Load(),
			Rejected:   rejected.Load(),
			Errors:     errs.Load(),
			Seconds:    elapsed.Seconds(),
			ReqPerSec:  float64(reqs) / elapsed.Seconds(),
			CacheState: fmt.Sprintf("%d variants over a shared plan cache", variants),
		},
		Drain: drainResults{
			InFlightAtDrain: inFlight,
			CompletedOK:     drainOK.Load(),
			DroppedInFlight: dropped.Load(),
			NewRefused:      newRefused,
			CleanShutdown:   shutdownErr == nil,
		},
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	if dropped.Load() > 0 || shutdownErr != nil {
		return fmt.Errorf("drain dropped %d in-flight requests (shutdown err: %v)", dropped.Load(), shutdownErr)
	}
	if errs.Load() > 0 {
		return fmt.Errorf("sustained phase had %d transport/server errors", errs.Load())
	}
	return nil
}

// post issues one JSON POST and returns the status code, draining the
// body so connections are reused.
func post(url string, body []byte) (int, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// cpuModel reads the CPU model name from /proc/cpuinfo, best effort.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}
