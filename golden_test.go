package repro_test

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro"
	"repro/internal/geom"
)

// TestGoldenObjectives pins the exact objective values every algorithm
// produces on one fixed instance. The numbers carry no meaning beyond
// "this is what the current implementation computes" — the test exists to
// catch unintended behavioral drift during refactors. If a deliberate
// algorithmic change shifts them, re-derive the constants (they are
// printed on failure) and update EXPERIMENTS.md.
func TestGoldenObjectives(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	in := &repro.Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: 2}
	for i := 0; i < 250; i++ {
		in.Requests = append(in.Requests, repro.Request{
			Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
			Duration: (1.2 + 0.3*rng.Float64()) * 3600,
			Lifetime: (1 + rng.Float64()*6) * 86400,
		})
	}
	for _, p := range repro.Planners() {
		s, err := p.Plan(context.Background(), in)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		got := s.Longest / 3600
		w, ok := goldenObjectives[p.Name()]
		if !ok {
			t.Fatalf("%s has no golden objective: add it to goldenObjectives (got %.4f h)", p.Name(), got)
		}
		if math.Abs(got-w) > 5e-4 {
			t.Errorf("%s golden objective drifted: got %.4f h, recorded %.4f h", p.Name(), got, w)
		}
	}
}

// goldenObjectives pins the golden values in hours, recorded from the
// pinned implementation. Appro's value was re-derived when it switched
// to canonical request ordering (permutation-invariant planning; see
// internal/core/canon.go). TestRegistryCoverageGuard fails the build of
// any planner registered without an entry here, so the table always
// covers the full registry.
var goldenObjectives = map[string]float64{
	"Appro":    131.5245,
	"K-EDF":    171.1694,
	"NETWRAP":  170.8549,
	"AA":       173.6608,
	"K-minMax": 169.1649,
	"BiLevel":  129.3351,
}
