// Farmfield: a precision-agriculture deployment — soil-moisture sensors
// clustered around irrigation pivots rather than uniformly scattered —
// monitored for a season, asking how many mobile chargers the farm needs.
//
// The example exercises the workload generator's clustered mode, a custom
// (lower-power) radio profile, and the one-year simulator across K = 1..4,
// reproducing the paper's Figure-5-style diminishing-returns curve on a
// non-uniform deployment.
//
// Run with:
//
//	go run ./examples/farmfield
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// 500 sensors in 8 clusters (one per irrigation pivot) on a larger
	// 200 x 200 m plot, with a lower-duty radio than the paper default:
	// field sensors report slowly.
	params := repro.NewNetworkParams(500)
	params.FieldSide = 200
	params.Clusters = 8
	params.ClusterStd = 15
	params.TxRange = 35 // sparser field needs longer radio hops
	params.Radio.DutyCycle = 0.35

	nw, err := repro.GenerateNetwork(params, 2026)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("farm: %d sensors in %d clusters, %.0fx%.0f m, aggregate draw %.2f W\n\n",
		len(nw.Sensors), params.Clusters, params.FieldSide, params.FieldSide, nw.TotalDraw())

	appro, err := repro.NewPlanner("Appro")
	if err != nil {
		log.Fatal(err)
	}

	// One growing season (180 days) per charger-fleet size.
	const season = 180 * 86400
	fmt.Println("chargers  avg longest tour (h)  max tour (h)  dead/sensor (min)  sensors died")
	for k := 1; k <= 4; k++ {
		res, err := repro.Simulate(context.Background(), nw, k, appro, repro.SimConfig{
			Duration:    season,
			BatchWindow: 6 * 3600, // eager dispatch: relay-heavy hubs have little slack
			Verify:      true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.Violations != 0 {
			log.Fatalf("K=%d: %d feasibility violations", k, res.Violations)
		}
		fmt.Printf("%8d  %20.2f  %12.2f  %17.1f  %12d\n",
			k, res.AvgLongest/3600, res.MaxLongest/3600,
			res.AvgDeadPerSensor/60, res.DeadSensors)
	}
	fmt.Println("\nthe K=1 -> K=2 drop is steep and flattens after — match the fleet to the knee")

	// Would a heavier planning search buy the farm anything? Re-run the
	// K=2 season with the BiLevel metaheuristic contender (registry name
	// resolution is case-insensitive, so "bilevel" works too).
	bl, err := repro.NewPlanner("bilevel")
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.Simulate(context.Background(), nw, 2, bl, repro.SimConfig{
		Duration:    season,
		BatchWindow: 6 * 3600,
		Verify:      true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Violations != 0 {
		log.Fatalf("%s: %d feasibility violations", bl.Name(), res.Violations)
	}
	fmt.Printf("\n%s, K=2: avg longest tour %.2f h (max %.2f h), %d sensors died — verifier clean\n",
		bl.Name(), res.AvgLongest/3600, res.MaxLongest/3600, res.DeadSensors)
}
