// Capacitated: drop the paper's "charger has sufficient energy per tour"
// assumption. Plan a dense round with Appro, then split each tour into
// battery-feasible depot-returning trips for chargers with a 2 MJ battery,
// and compare against provable lower bounds on the uncapacitated optimum.
//
// Run with:
//
//	go run ./examples/capacitated
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/geom"
)

func main() {
	// 350 requesting sensors with the paper's parameters.
	rng := rand.New(rand.NewSource(11))
	in := &repro.Instance{
		Depot: geom.Pt(50, 50),
		Gamma: 2.7,
		Speed: 1,
		K:     3,
	}
	for i := 0; i < 350; i++ {
		in.Requests = append(in.Requests, repro.Request{
			Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
			Duration: (1.2 + 0.3*rng.Float64()) * 3600,
		})
	}

	sched, err := repro.PlanAppro(context.Background(), in, repro.ApproOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if v := repro.Verify(in, sched); len(v) > 0 {
		log.Fatalf("infeasible: %v", v[0])
	}
	fmt.Printf("uncapacitated plan: %d stops, longest delay %.2f h\n",
		sched.NumStops(), sched.Longest/3600)

	// How good is the plan? Compare against the provable lower bound.
	lb := repro.ComputeLowerBound(in)
	fmt.Printf("lower bound on optimum: %.2f h -> approximation factor <= %.2f\n",
		lb.Value/3600, sched.Longest/lb.Value)

	// Now give every charger a finite battery. eta = 2 W as in the paper;
	// the charger drives at ~30 J/m and transfers at 50%% efficiency.
	params := repro.ChargerParams{
		CapacityJ:          2e6,
		MoveJPerM:          30,
		TransferEfficiency: 0.5,
		TurnaroundS:        1800, // 30 min battery swap at the depot
	}
	plan, err := repro.SplitCapacitated(context.Background(), in, sched, 2, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncapacitated (%.1f MJ battery, %.0f%% transfer efficiency):\n",
		params.CapacityJ/1e6, params.TransferEfficiency*100)
	for k, trips := range plan.Chargers {
		fmt.Printf("  charger %d: %d trips\n", k+1, len(trips))
		for i, trip := range trips {
			fmt.Printf("    trip %d: %2d stops, %.2f h, %.2f MJ\n",
				i+1, len(trip.Tour.Stops), trip.Tour.Delay/3600, trip.EnergyJ/1e6)
		}
	}
	fmt.Printf("completion time: %.2f h (vs %.2f h uncapacitated, +%.0f%%)\n",
		plan.Longest/3600, sched.Longest/3600,
		100*(plan.Longest-sched.Longest)/sched.Longest)
	fmt.Printf("total charger energy: %.1f MJ across %d trips\n",
		plan.TotalEnergyJ/1e6, plan.Trips)
}
