// Citygrid: a smart-city air-quality deployment — sensors on a regular
// street-grid lattice — comparing every registered scheduling algorithm on a
// single dense charging round and then over a three-month simulation.
//
// The example shows (1) building an Instance by hand from an existing
// network snapshot, (2) the one-to-one baselines against multi-node Appro
// on the same request set, and (3) that the verifier holds every algorithm
// to the problem's constraints.
//
// Run with:
//
//	go run ./examples/citygrid
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/geom"
)

func main() {
	// A 20x20 lattice of intersections, 2.5 m apart (dense enough that one
	// charger stop covers several sensors with gamma = 2.7 m). Every
	// sensor has requested charging; durations vary with how depleted
	// each battery is.
	in := &repro.Instance{
		Depot: geom.Pt(23.75, 23.75),
		Gamma: 2.7,
		Speed: 1,
		K:     2,
	}
	for row := 0; row < 20; row++ {
		for col := 0; col < 20; col++ {
			depletion := 0.8 + 0.2*float64((row*20+col)%5)/5 // 80-100% depleted
			in.Requests = append(in.Requests, repro.Request{
				Pos:      geom.Pt(float64(col)*2.5, float64(row)*2.5),
				Duration: depletion * 10800 / 2, // t_v = depleted J / 2 W
				Lifetime: float64(1+(row+col)%7) * 86400,
			})
		}
	}

	fmt.Printf("city grid: %d requesting sensors, K=%d chargers\n\n", len(in.Requests), in.K)
	fmt.Println("algorithm  longest delay (h)  stops  verified")
	for _, p := range repro.Planners() {
		s, err := p.Plan(context.Background(), in)
		if err != nil {
			log.Fatalf("%s: %v", p.Name(), err)
		}
		// One-to-one baselines are held to point-charging semantics; the
		// multi-node Appro schedule must additionally satisfy the
		// no-simultaneous-charging constraint.
		check := *in
		if oneToOne(s) {
			check.Gamma = 0
		}
		verdict := "OK"
		if vs := repro.Verify(&check, s); len(vs) > 0 {
			verdict = vs[0].String()
		}
		fmt.Printf("%-9s  %17.2f  %5d  %s\n", p.Name(), s.Longest/3600, s.NumStops(), verdict)
	}

	// Long-run behavior on the same lattice as a routed network.
	params := repro.NewNetworkParams(400)
	params.Clusters = 0
	nw, err := repro.GenerateNetwork(params, 7)
	if err != nil {
		log.Fatal(err)
	}
	// Overwrite the generator's uniform positions with the lattice.
	for i := range nw.Sensors {
		nw.Sensors[i].Pos = geom.Pt(float64(i%20)*2.5, float64(i/20)*2.5)
	}
	nw.BuildRouting() // recompute routes and draws for the new geometry

	fmt.Println("\n90-day simulation on the lattice:")
	fmt.Println("algorithm  avg longest tour (h)  dead/sensor (min)")
	for _, p := range repro.Planners() {
		res, err := repro.Simulate(context.Background(), nw, 2, p, repro.SimConfig{
			Duration:    90 * 86400,
			BatchWindow: repro.DefaultBatchWindow,
			Verify:      true,
		})
		if err != nil {
			log.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Violations != 0 {
			log.Fatalf("%s: %d feasibility violations", p.Name(), res.Violations)
		}
		fmt.Printf("%-9s  %20.2f  %17.1f\n", p.Name(), res.AvgLongest/3600, res.AvgDeadPerSensor/60)
	}
}

func oneToOne(s *repro.Schedule) bool {
	for _, tour := range s.Tours {
		for _, stop := range tour.Stops {
			if len(stop.Covers) != 1 || stop.Covers[0] != stop.Node {
				return false
			}
		}
	}
	return true
}
