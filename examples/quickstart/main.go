// Quickstart: plan charging tours for a batch of lifetime-critical sensors
// with the paper's Algorithm Appro, verify the schedule, and print it.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/geom"
)

func main() {
	// A request set V_s: 120 sensors that asked to be charged, scattered
	// over the paper's 100 x 100 m field. Each needs 1.2-1.5 h of
	// charging (they requested at ~20% residual capacity, eta = 2 W).
	rng := rand.New(rand.NewSource(42))
	in := &repro.Instance{
		Depot: geom.Pt(50, 50), // MCV depot at the field center
		Gamma: 2.7,             // multi-node charging radius (m)
		Speed: 1,               // charger travel speed (m/s)
		K:     3,               // three mobile chargers
	}
	for i := 0; i < 120; i++ {
		in.Requests = append(in.Requests, repro.Request{
			Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
			Duration: (1.2 + 0.3*rng.Float64()) * 3600,
		})
	}

	// Plan with Algorithm Appro. PlanAppro also executes the plan, so the
	// returned times respect the hard constraint that no sensor is ever
	// charged by two chargers at once.
	sched, err := repro.PlanAppro(context.Background(), in, repro.ApproOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("planned %d requests with %d stops across %d chargers\n",
		len(in.Requests), sched.NumStops(), in.K)
	for k, tour := range sched.Tours {
		fmt.Printf("charger %d: %2d stops, tour delay %.2f h\n",
			k+1, len(tour.Stops), tour.Delay/3600)
	}
	fmt.Printf("longest charge delay (objective): %.2f h\n", sched.Longest/3600)

	// Independently verify coverage, tour disjointness, travel-time
	// consistency and the no-simultaneous-charging constraint.
	if violations := repro.Verify(in, sched); len(violations) > 0 {
		log.Fatalf("infeasible schedule: %v", violations[0])
	}
	fmt.Println("schedule verified: feasible")
}
