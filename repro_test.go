package repro_test

import (
	"context"
	"math/rand"
	"testing"

	"repro"
	"repro/internal/geom"
)

func demoInstance(rng *rand.Rand, n, k int) *repro.Instance {
	in := &repro.Instance{
		Depot: geom.Pt(50, 50),
		Gamma: 2.7,
		Speed: 1,
		K:     k,
	}
	for i := 0; i < n; i++ {
		in.Requests = append(in.Requests, repro.Request{
			Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
			Duration: (1.2 + 0.3*rng.Float64()) * 3600,
		})
	}
	return in
}

func TestPublicPlanAndVerifyRoundTrip(t *testing.T) {
	in := demoInstance(rand.New(rand.NewSource(1)), 80, 2)
	s, err := repro.PlanAppro(context.Background(), in, repro.ApproOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if vs := repro.Verify(in, s); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
	if s.Longest <= 0 {
		t.Error("empty objective")
	}
}

func TestPublicApproThenExecute(t *testing.T) {
	in := demoInstance(rand.New(rand.NewSource(2)), 50, 3)
	planned, err := repro.Appro(context.Background(), in, repro.ApproOptions{})
	if err != nil {
		t.Fatal(err)
	}
	executed := repro.Execute(context.Background(), in, planned)
	if vs := repro.Verify(in, executed); len(vs) != 0 {
		t.Fatalf("executed violations: %v", vs)
	}
}

func TestNewPlannerNames(t *testing.T) {
	for _, name := range []string{"Appro", "K-EDF", "NETWRAP", "AA", "K-minMax", "appro", "kminmax"} {
		if _, err := repro.NewPlanner(name); err != nil {
			t.Errorf("NewPlanner(%q): %v", name, err)
		}
	}
	if _, err := repro.NewPlanner("bogus"); err == nil {
		t.Error("bogus planner accepted")
	}
}

func TestPlannersOrder(t *testing.T) {
	ps := repro.Planners()
	if len(ps) != 5 || ps[0].Name() != "Appro" {
		t.Fatalf("Planners() = %v", ps)
	}
}

func TestPublicSimulate(t *testing.T) {
	nw, err := repro.GenerateNetwork(repro.NewNetworkParams(50), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range repro.Planners() {
		res, err := repro.Simulate(context.Background(), nw, 2, p, repro.SimConfig{
			Duration:    20 * 86400,
			BatchWindow: repro.DefaultBatchWindow,
			Verify:      true,
		})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Violations != 0 {
			t.Errorf("%s: violations %d", p.Name(), res.Violations)
		}
		if res.Charges == 0 {
			t.Errorf("%s: nothing charged", p.Name())
		}
	}
}

func TestPublicRunFigureTiny(t *testing.T) {
	a, b, err := repro.RunFigure(context.Background(), "5", repro.ExperimentOptions{
		Instances: 1,
		Duration:  5 * 86400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "5a" || b.ID != "5b" || len(a.Series) != 5 {
		t.Errorf("figure shape wrong: %s %s %d series", a.ID, b.ID, len(a.Series))
	}
}
