package repro_test

import (
	"context"
	"math/rand"
	"testing"

	"repro"
	"repro/internal/geom"
)

func demoInstance(rng *rand.Rand, n, k int) *repro.Instance {
	in := &repro.Instance{
		Depot: geom.Pt(50, 50),
		Gamma: 2.7,
		Speed: 1,
		K:     k,
	}
	for i := 0; i < n; i++ {
		in.Requests = append(in.Requests, repro.Request{
			Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
			Duration: (1.2 + 0.3*rng.Float64()) * 3600,
		})
	}
	return in
}

func TestPublicPlanAndVerifyRoundTrip(t *testing.T) {
	in := demoInstance(rand.New(rand.NewSource(1)), 80, 2)
	s, err := repro.PlanAppro(context.Background(), in, repro.ApproOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if vs := repro.Verify(in, s); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
	if s.Longest <= 0 {
		t.Error("empty objective")
	}
}

func TestPublicApproThenExecute(t *testing.T) {
	in := demoInstance(rand.New(rand.NewSource(2)), 50, 3)
	planned, err := repro.Appro(context.Background(), in, repro.ApproOptions{})
	if err != nil {
		t.Fatal(err)
	}
	executed := repro.Execute(context.Background(), in, planned)
	if vs := repro.Verify(in, executed); len(vs) != 0 {
		t.Fatalf("executed violations: %v", vs)
	}
}

func TestNewPlannerNames(t *testing.T) {
	for _, name := range []string{"Appro", "K-EDF", "NETWRAP", "AA", "K-minMax", "BiLevel", "appro", "kedf", "kminmax", "bilevel", "bi-level", "BLM"} {
		if _, err := repro.NewPlanner(name); err != nil {
			t.Errorf("NewPlanner(%q): %v", name, err)
		}
	}
	if _, err := repro.NewPlanner("bogus"); err == nil {
		t.Error("bogus planner accepted")
	}
}

func TestPlannersOrder(t *testing.T) {
	ps := repro.Planners()
	if len(ps) != 6 || ps[0].Name() != "Appro" || ps[5].Name() != "BiLevel" {
		names := make([]string, len(ps))
		for i, p := range ps {
			names[i] = p.Name()
		}
		t.Fatalf("Planners() = %v", names)
	}
}

// TestRegistryCoverageGuard keeps the comparison surfaces honest: every
// registered planner must be exercised by the golden objective table
// (and therefore by the -compare path and BenchmarkPlanners, which both
// range over repro.Planners()). Registering a planner without extending
// goldenObjectives fails here, not silently.
func TestRegistryCoverageGuard(t *testing.T) {
	names := repro.PlannerNames()
	if len(names) != len(goldenObjectives) {
		t.Errorf("registry has %d planners, goldenObjectives has %d entries", len(names), len(goldenObjectives))
	}
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		seen[name] = true
		if _, ok := goldenObjectives[name]; !ok {
			t.Errorf("registered planner %q has no golden objective", name)
		}
	}
	for name := range goldenObjectives {
		if !seen[name] {
			t.Errorf("goldenObjectives entry %q is not a registered planner", name)
		}
	}
	ps := repro.Planners()
	if len(ps) != len(names) {
		t.Fatalf("Planners() returns %d planners, registry names %d", len(ps), len(names))
	}
	for i, p := range ps {
		if p.Name() != names[i] {
			t.Errorf("Planners()[%d].Name() = %q, registry order says %q", i, p.Name(), names[i])
		}
	}
}

func TestPublicSimulate(t *testing.T) {
	nw, err := repro.GenerateNetwork(repro.NewNetworkParams(50), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range repro.Planners() {
		res, err := repro.Simulate(context.Background(), nw, 2, p, repro.SimConfig{
			Duration:    20 * 86400,
			BatchWindow: repro.DefaultBatchWindow,
			Verify:      true,
		})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Violations != 0 {
			t.Errorf("%s: violations %d", p.Name(), res.Violations)
		}
		if res.Charges == 0 {
			t.Errorf("%s: nothing charged", p.Name())
		}
	}
}

func TestPublicRunFigureTiny(t *testing.T) {
	a, b, err := repro.RunFigure(context.Background(), "5", repro.ExperimentOptions{
		Instances: 1,
		Duration:  5 * 86400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "5a" || b.ID != "5b" || len(a.Series) != 5 {
		t.Errorf("figure shape wrong: %s %s %d series", a.ID, b.ID, len(a.Series))
	}
}
