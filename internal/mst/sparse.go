package mst

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/unionfind"
)

// EuclideanSparse computes the MST of the complete Euclidean graph over
// pts, rooted at root, without ever materializing the O(n^2) edge set. It
// returns a tree whose total weight equals Euclidean's exactly (when edge
// weights are distinct the tree itself is identical); only the kernel's
// complexity changes, so the K-minMax approximation argument is untouched.
//
// The construction has two phases:
//
//  1. Heap-driven Prim restarts over a grid-pruned candidate graph — all
//     pairs within a density-derived radius r (expected O(1) neighbors per
//     vertex) — yield a minimum spanning forest of the candidate graph.
//     Every forest edge is safe: a complete-graph cycle witnessing its
//     redundancy would consist of strictly shorter edges, all of length
//     <= r and therefore candidates themselves.
//
//  2. While the forest has multiple components, Boruvka rounds bridge
//     them: each component finds its minimum outgoing edge by per-vertex
//     ring expansion (geom.Grid.NearestWhere), bounded by the component's
//     best edge so far, so later vertices abandon the search as soon as
//     the remaining rings provably cannot beat it. A minimum outgoing
//     edge crosses the cut (component, rest) minimally, so it belongs to
//     a minimum spanning tree by the cut property; at least half the
//     components merge per round, giving O(log n) rounds. With a
//     connected candidate graph — the common case at planning densities —
//     phase 2 never runs.
//
// Expected time is O(n log n) for points at bounded density; the
// adversarial worst case (e.g. one tight cluster, where the candidate
// graph degenerates to complete) falls back to the dense bound.
func EuclideanSparse(pts []geom.Point, root int) *Tree {
	n := len(pts)
	if n == 0 || root < 0 || root >= n {
		return nil
	}
	if n <= 3 {
		// Too small for pruning to buy anything; the dense kernel is exact
		// and allocation-free at this size.
		return Euclidean(pts, root)
	}
	grid, off, adj := candidateGraph(pts)
	neighbors := func(v int) []int32 { return adj[off[v]:off[v+1]] }
	parent, total, _ := primForest(pts, neighbors, root, true)
	if countComponents(parent) == 1 {
		// The candidate graph was connected: the forest is the MST.
		return buildTree(root, parent, total)
	}

	// Ring-expansion fallback: the candidate graph is disconnected (e.g.
	// two far clusters). Bridge the forest's components with exact minimum
	// outgoing edges until one remains.
	dsu := unionfind.New(n)
	for v, p := range parent {
		if p >= 0 {
			dsu.Union(v, p)
		}
	}
	var bridges []Edge
	comp := make([]int32, n)
	for dsu.Sets() > 1 {
		for i := range comp {
			comp[i] = int32(dsu.Find(i))
		}
		best := make(map[int32]Edge)
		for u := 0; u < n; u++ {
			cu := comp[u]
			bound := math.Inf(1)
			cur, ok := best[cu]
			if ok {
				bound = cur.W
			}
			j, d := grid.NearestWhere(pts[u], bound, func(i int) bool { return comp[i] != cu })
			if j < 0 {
				continue
			}
			e := Edge{U: u, V: j, W: d}
			if !ok || edgeLess(e, cur) {
				best[cu] = e
			}
		}
		roots := make([]int32, 0, len(best))
		for cr := range best {
			roots = append(roots, cr)
		}
		sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
		merged := false
		for _, cr := range roots {
			e := best[cr]
			if dsu.Union(e.U, e.V) {
				bridges = append(bridges, e)
				total += e.W
				merged = true
			}
		}
		if !merged {
			// Only possible with degenerate (NaN) coordinates that the
			// grid cannot key; give up rather than loop forever.
			break
		}
	}

	// Re-orient the forest edges plus the bridges as one tree rooted at
	// root. The edge set is fixed, so orientation is a plain DFS.
	deg := make([]int32, n+1)
	for v, p := range parent {
		if p >= 0 {
			deg[v]++
			deg[p]++
		}
	}
	for _, e := range bridges {
		deg[e.U]++
		deg[e.V]++
	}
	offT := make([]int32, n+1)
	for v := 0; v < n; v++ {
		offT[v+1] = offT[v] + deg[v]
	}
	adjT := make([]int32, offT[n])
	cur := deg[:n]
	copy(cur, offT[:n])
	put := func(u, v int) {
		adjT[cur[u]] = int32(v)
		cur[u]++
		adjT[cur[v]] = int32(u)
		cur[v]++
	}
	for v, p := range parent {
		if p >= 0 {
			put(v, p)
		}
	}
	for _, e := range bridges {
		put(e.U, e.V)
	}
	oriented := make([]int, n)
	for i := range oriented {
		oriented[i] = -1
	}
	visited := make([]bool, n)
	visited[root] = true
	stack := append(make([]int, 0, n), root)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, wv := range adjT[offT[v]:offT[v+1]] {
			w := int(wv)
			if !visited[w] {
				visited[w] = true
				oriented[w] = v
				stack = append(stack, w)
			}
		}
	}
	return buildTree(root, oriented, total)
}

// candidateGraph builds the grid and the CSR adjacency of the pruned
// candidate edge set: all pairs within a radius chosen so a vertex sees a
// small constant number of neighbors at the point set's average density
// (r = 2*sqrt(area/n) covers ~12 expected neighbors for uniform points,
// enough for connectivity at planning densities while keeping the edge
// count linear).
func candidateGraph(pts []geom.Point) (*geom.Grid, []int32, []int32) {
	n := len(pts)
	b := geom.Bounds(pts)
	ex, ey := b.Max.X-b.Min.X, b.Max.Y-b.Min.Y
	r := 2 * math.Sqrt(ex*ey/float64(n))
	if !(r > 0) {
		// Degenerate extents: collinear sets have zero area, coincident
		// sets zero extent. Fall back to a spacing-derived, then a unit,
		// radius; correctness never depends on r, only edge count does.
		r = 2 * (ex + ey) / float64(n)
	}
	if !(r > 0) {
		r = 1
	}
	grid := geom.NewGrid(pts, r)
	off := make([]int32, n+1)
	var buf []int
	for u := 0; u < n; u++ {
		buf = grid.NeighborsOf(u, r, buf)
		off[u+1] = off[u] + int32(len(buf))
	}
	adj := make([]int32, off[n])
	for u := 0; u < n; u++ {
		buf = grid.NeighborsOf(u, r, buf)
		at := off[u]
		for i, v := range buf {
			adj[at+int32(i)] = int32(v)
		}
	}
	return grid, off, adj
}

// countComponents counts the trees in a parent forest: the vertices with
// parent -1 are the roots.
func countComponents(parent []int) int {
	c := 0
	for _, p := range parent {
		if p < 0 {
			c++
		}
	}
	return c
}

// edgeLess is the deterministic total order on candidate bridge edges:
// weight, then the unordered endpoint pair. Boruvka's per-component
// minima are unique under it, so rounds are reproducible.
func edgeLess(a, b Edge) bool {
	if a.W != b.W {
		return a.W < b.W
	}
	au, av := a.U, a.V
	if au > av {
		au, av = av, au
	}
	bu, bv := b.U, b.V
	if bu > bv {
		bu, bv = bv, bu
	}
	if au != bu {
		return au < bu
	}
	return av < bv
}
