package mst

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestEuclideanSmall(t *testing.T) {
	// Unit square: MST weight 3.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)}
	tr := Euclidean(pts, 0)
	if tr == nil {
		t.Fatal("nil tree")
	}
	if math.Abs(tr.Weight-3) > 1e-9 {
		t.Errorf("Weight = %v, want 3", tr.Weight)
	}
	if tr.Parent[tr.Root] != -1 {
		t.Error("root parent should be -1")
	}
	order := tr.PreorderDFS()
	if len(order) != 4 || order[0] != 0 {
		t.Errorf("PreorderDFS = %v", order)
	}
}

func TestEuclideanEdgeCases(t *testing.T) {
	if Euclidean(nil, 0) != nil {
		t.Error("empty pts should give nil")
	}
	if Euclidean([]geom.Point{geom.Pt(0, 0)}, 1) != nil {
		t.Error("root out of range should give nil")
	}
	tr := Euclidean([]geom.Point{geom.Pt(3, 3)}, 0)
	if tr == nil || tr.Weight != 0 || tr.Len() != 1 {
		t.Errorf("single point tree wrong: %+v", tr)
	}
}

func TestEuclideanMatchesKruskal(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(80)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		var edges []Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				edges = append(edges, Edge{U: u, V: v, W: geom.Dist(pts[u], pts[v])})
			}
		}
		prim := Euclidean(pts, 0)
		kruskal := FromEdges(n, edges, 0)
		if math.Abs(prim.Weight-kruskal.Weight) > 1e-6 {
			t.Fatalf("trial %d: prim=%v kruskal=%v", trial, prim.Weight, kruskal.Weight)
		}
	}
}

func TestEuclideanMatchesHeapPrim(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(60)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*50, rng.Float64()*50)
		}
		// Complete graph as neighbor function.
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
		}
		neighbors := func(v int) []int32 {
			out := make([]int32, 0, n-1)
			for _, w := range all {
				if int(w) != v {
					out = append(out, w)
				}
			}
			return out
		}
		dense := Euclidean(pts, 0)
		sparse, spanning := EuclideanPrimHeap(pts, neighbors, 0)
		if !spanning {
			t.Fatalf("trial %d: complete graph reported non-spanning", trial)
		}
		if math.Abs(dense.Weight-sparse.Weight) > 1e-6 {
			t.Fatalf("trial %d: dense=%v heap=%v", trial, dense.Weight, sparse.Weight)
		}
	}
}

func TestFromEdgesDisconnected(t *testing.T) {
	// Two components: {0,1} and {2,3}; root 0 spans only its component.
	edges := []Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 2}}
	tr := FromEdges(4, edges, 0)
	if tr.Parent[1] != 0 {
		t.Errorf("Parent[1] = %d, want 0", tr.Parent[1])
	}
	if tr.Parent[2] != -1 || tr.Parent[3] != -1 {
		t.Error("other component should be unreached")
	}
	if math.Abs(tr.Weight-1) > 1e-9 {
		t.Errorf("component weight = %v, want 1", tr.Weight)
	}
}

func TestFromEdgesIgnoresBadEdges(t *testing.T) {
	edges := []Edge{
		{U: 0, V: 0, W: 1},  // self loop
		{U: -1, V: 2, W: 1}, // out of range
		{U: 0, V: 9, W: 1},  // out of range
		{U: 0, V: 1, W: 5},
	}
	tr := FromEdges(2, edges, 0)
	if math.Abs(tr.Weight-5) > 1e-9 {
		t.Errorf("Weight = %v, want 5", tr.Weight)
	}
}

func TestPreorderCoversAllVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 50
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	tr := Euclidean(pts, 7)
	order := tr.PreorderDFS()
	if len(order) != n {
		t.Fatalf("preorder visited %d of %d", len(order), n)
	}
	seen := make(map[int]bool, n)
	for _, v := range order {
		if seen[v] {
			t.Fatalf("vertex %d visited twice", v)
		}
		seen[v] = true
	}
	if order[0] != 7 {
		t.Errorf("preorder must start at root, got %d", order[0])
	}
}

// TestMSTWeightIsMinimal cross-checks against brute force on tiny inputs:
// every spanning tree enumerated via Cayley-style edge subsets.
func TestMSTWeightIsMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(4) // up to 5 vertices
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
		}
		var edges []Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				edges = append(edges, Edge{U: u, V: v, W: geom.Dist(pts[u], pts[v])})
			}
		}
		best := math.Inf(1)
		m := len(edges)
		for mask := 0; mask < 1<<m; mask++ {
			if popcount(mask) != n-1 {
				continue
			}
			// Check spanning via DSU-lite.
			parent := make([]int, n)
			for i := range parent {
				parent[i] = i
			}
			var find func(int) int
			find = func(x int) int {
				for parent[x] != x {
					x = parent[x]
				}
				return x
			}
			w, comps := 0.0, n
			for i, e := range edges {
				if mask&(1<<i) == 0 {
					continue
				}
				w += e.W
				ru, rv := find(e.U), find(e.V)
				if ru != rv {
					parent[ru] = rv
					comps--
				}
			}
			if comps == 1 && w < best {
				best = w
			}
		}
		got := Euclidean(pts, 0).Weight
		if math.Abs(got-best) > 1e-6 {
			t.Fatalf("trial %d: MST weight %v, brute force %v", trial, got, best)
		}
	}
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
