// Package mst computes minimum spanning trees over complete Euclidean
// graphs and explicit edge lists. MSTs are the backbone of the TSP
// approximations used by the K-minMax closed-tour subroutine (step 5 of
// Algorithm Appro) and the one-to-one K-minMax baseline.
package mst

import (
	"container/heap"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/unionfind"
)

// Edge is a weighted undirected edge.
type Edge struct {
	U, V int
	W    float64
}

// Tree is a spanning tree (or forest) given as a parent array rooted at
// Root: Parent[Root] == -1 and Parent[v] is v's parent. Adj holds the
// children lists for traversal. Weight is the total edge weight.
type Tree struct {
	Root   int
	Parent []int
	Adj    [][]int
	Weight float64
}

// Len returns the number of vertices in the tree.
func (t *Tree) Len() int { return len(t.Parent) }

// PreorderDFS returns the vertices of t in depth-first preorder starting at
// the root, visiting children in ascending index order. This is the walk
// used by the MST-doubling TSP approximation.
func (t *Tree) PreorderDFS() []int {
	if t.Len() == 0 {
		return nil
	}
	order := make([]int, 0, t.Len())
	// Iterative DFS; push children in reverse so lowest index pops first.
	stack := []int{t.Root}
	seen := make([]bool, t.Len())
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		order = append(order, v)
		children := t.Adj[v]
		for i := len(children) - 1; i >= 0; i-- {
			if !seen[children[i]] {
				stack = append(stack, children[i])
			}
		}
	}
	return order
}

// Euclidean computes the MST of the complete graph over pts with Euclidean
// edge weights, rooted at root, using Prim's algorithm in O(n^2) time —
// optimal for complete geometric graphs. It returns nil when pts is empty
// or root is out of range.
func Euclidean(pts []geom.Point, root int) *Tree {
	n := len(pts)
	if n == 0 || root < 0 || root >= n {
		return nil
	}
	const unseen = -1
	parent := make([]int, n)
	dist := make([]float64, n)
	inTree := make([]bool, n)
	for i := range parent {
		parent[i] = unseen
		dist[i] = math.Inf(1)
	}
	dist[root] = 0
	total := 0.0
	for iter := 0; iter < n; iter++ {
		best := -1
		for v := 0; v < n; v++ {
			if !inTree[v] && (best < 0 || dist[v] < dist[best]) {
				best = v
			}
		}
		inTree[best] = true
		total += dist[best]
		for v := 0; v < n; v++ {
			if inTree[v] {
				continue
			}
			if d := geom.Dist(pts[best], pts[v]); d < dist[v] {
				dist[v] = d
				parent[v] = best
			}
		}
	}
	return buildTree(root, parent, total)
}

// FromEdges computes an MST (or minimum spanning forest, if disconnected)
// of the n-vertex graph with the given edge list using Kruskal's algorithm.
// For a disconnected input only the component containing root becomes the
// returned tree; other components are absent from Adj and keep Parent -1.
func FromEdges(n int, edges []Edge, root int) *Tree {
	if n == 0 || root < 0 || root >= n {
		return nil
	}
	sorted := make([]Edge, len(edges))
	copy(sorted, edges)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].W < sorted[j].W })
	dsu := unionfind.New(n)
	adj := make([][]Edge, n)
	total := 0.0
	for _, e := range sorted {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n || e.U == e.V {
			continue
		}
		if dsu.Union(e.U, e.V) {
			adj[e.U] = append(adj[e.U], e)
			adj[e.V] = append(adj[e.V], Edge{U: e.V, V: e.U, W: e.W})
			total += e.W
		}
	}
	// Orient the component containing root.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	visited := make([]bool, n)
	stack := []int{root}
	visited[root] = true
	compWeight := 0.0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range adj[v] {
			if !visited[e.V] {
				visited[e.V] = true
				parent[e.V] = v
				compWeight += e.W
				stack = append(stack, e.V)
			}
		}
	}
	return buildTree(root, parent, compWeight)
}

// EuclideanPrimHeap is a heap-based Prim over an explicit neighbor graph:
// pts gives coordinates and neighbors the candidate edges (e.g. a unit-disk
// graph). It runs in O(m log n).
//
// The second result is the connectivity contract: true means the tree
// spans every vertex. When the neighbor graph is disconnected it is
// false and the result covers only root's reachable component — vertices
// outside it keep Parent -1 and do not appear in Adj, and Weight counts
// only the component's edges. Callers that need a spanning tree must
// check it rather than assume one (EuclideanSparse bridges the remaining
// components by ring expansion; see its fallback).
func EuclideanPrimHeap(pts []geom.Point, neighbors func(v int) []int32, root int) (*Tree, bool) {
	n := len(pts)
	if n == 0 || root < 0 || root >= n {
		return nil, false
	}
	parent, total, reached := primForest(pts, neighbors, root, false)
	return buildTree(root, parent, total), reached == n
}

// primForest is the heap-Prim engine shared by EuclideanPrimHeap and
// EuclideanSparse. It grows a tree from root over the neighbor graph;
// with restart true it then re-seeds at the lowest-index unreached vertex
// until every vertex is reached, producing a minimum spanning forest of
// the neighbor graph (parent -1 marks the component roots). It returns
// the parent forest, the total weight of its edges, and the number of
// vertices reached.
func primForest(pts []geom.Point, neighbors func(v int) []int32, root int, restart bool) ([]int, float64, int) {
	n := len(pts)
	parent := make([]int, n)
	dist := make([]float64, n)
	inTree := make([]bool, n)
	for i := range parent {
		parent[i] = -1
		dist[i] = math.Inf(1)
	}
	dist[root] = 0
	pq := &primHeap{items: []primItem{{v: root, d: 0}}}
	total := 0.0
	reached := 0
	next := 0 // monotone scan cursor for restart seeds
	for {
		for pq.Len() > 0 {
			it := heap.Pop(pq).(primItem)
			if inTree[it.v] {
				continue
			}
			inTree[it.v] = true
			reached++
			total += it.d
			for _, w := range neighbors(it.v) {
				wv := int(w)
				if inTree[wv] {
					continue
				}
				if d := geom.Dist(pts[it.v], pts[wv]); d < dist[wv] {
					dist[wv] = d
					parent[wv] = it.v
					heap.Push(pq, primItem{v: wv, d: d})
				}
			}
		}
		if !restart || reached == n {
			break
		}
		for next < n && inTree[next] {
			next++
		}
		dist[next] = 0
		heap.Push(pq, primItem{v: next, d: 0})
	}
	return parent, total, reached
}

func buildTree(root int, parent []int, weight float64) *Tree {
	adj := make([][]int, len(parent))
	for v, p := range parent {
		if p >= 0 {
			adj[p] = append(adj[p], v)
		}
	}
	for _, children := range adj {
		sort.Ints(children)
	}
	return &Tree{Root: root, Parent: parent, Adj: adj, Weight: weight}
}

type primItem struct {
	v int
	d float64
}

type primHeap struct{ items []primItem }

func (h *primHeap) Len() int           { return len(h.items) }
func (h *primHeap) Less(i, j int) bool { return h.items[i].d < h.items[j].d }
func (h *primHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *primHeap) Push(x interface{}) { h.items = append(h.items, x.(primItem)) }
func (h *primHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
