package mst

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// assertSpanningTree fails the test unless tr is a valid spanning tree of
// n vertices rooted at root: Parent[root] == -1, every other vertex has an
// in-range parent, and every vertex reaches the root (no cycles, no
// forests).
func assertSpanningTree(t *testing.T, tr *Tree, n, root int) {
	t.Helper()
	if tr == nil {
		t.Fatal("nil tree")
	}
	if len(tr.Parent) != n {
		t.Fatalf("tree has %d vertices, want %d", len(tr.Parent), n)
	}
	if tr.Parent[root] != -1 {
		t.Fatalf("Parent[root=%d] = %d, want -1", root, tr.Parent[root])
	}
	for v := 0; v < n; v++ {
		if v == root {
			continue
		}
		if p := tr.Parent[v]; p < 0 || p >= n {
			t.Fatalf("Parent[%d] = %d out of range", v, p)
		}
		// Walk to the root; more than n hops means a cycle.
		u := v
		for hops := 0; u != root; hops++ {
			if hops > n {
				t.Fatalf("vertex %d does not reach the root (cycle or forest)", v)
			}
			u = tr.Parent[u]
		}
	}
}

// assertWeightEqual asserts the two MST weights agree up to summation
// round-off: both kernels add the exact same n-1 edge weights when the
// MST is unique (and equal-total edge sets otherwise), so any difference
// is float addition order.
func assertWeightEqual(t *testing.T, dense, sparse float64) {
	t.Helper()
	tol := 1e-9 * math.Max(1, math.Abs(dense))
	if math.Abs(dense-sparse) > tol {
		t.Fatalf("weight mismatch: dense=%.17g sparse=%.17g (diff %g)", dense, sparse, dense-sparse)
	}
}

// TestEuclideanSparseOracleRandom is the oracle property test of the
// grid-pruned MST: on random uniform sets its weight must equal the dense
// Prim kernel's exactly (it is the same MST by the cycle/cut-property
// argument in sparse.go), and the result must be a valid spanning tree.
func TestEuclideanSparseOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(400)
		side := 1 + rng.Float64()*1000
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
		}
		root := rng.Intn(n)
		dense := Euclidean(pts, root)
		sparse := EuclideanSparse(pts, root)
		assertSpanningTree(t, sparse, n, root)
		assertWeightEqual(t, dense.Weight, sparse.Weight)
	}
}

// TestEuclideanSparseOracleAdversarial pins the degenerate geometries the
// grid heuristics have to survive: collinear sets (zero-height bounding
// box), duplicate coordinates (zero-length edges), a tight cluster at
// float scale, and far-apart clusters whose candidate graphs are
// disconnected, forcing the Boruvka bridging rounds.
func TestEuclideanSparseOracleAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	cases := map[string]func() []geom.Point{
		"collinear": func() []geom.Point {
			pts := make([]geom.Point, 60)
			for i := range pts {
				pts[i] = geom.Pt(rng.Float64()*500, 0)
			}
			return pts
		},
		"collinear-vertical": func() []geom.Point {
			pts := make([]geom.Point, 40)
			for i := range pts {
				pts[i] = geom.Pt(3, rng.Float64()*90)
			}
			return pts
		},
		"duplicates": func() []geom.Point {
			pts := make([]geom.Point, 0, 50)
			for i := 0; i < 10; i++ {
				p := geom.Pt(rng.Float64()*10, rng.Float64()*10)
				for j := 0; j < 5; j++ {
					pts = append(pts, p)
				}
			}
			return pts
		},
		"all-identical": func() []geom.Point {
			pts := make([]geom.Point, 25)
			for i := range pts {
				pts[i] = geom.Pt(7, -3)
			}
			return pts
		},
		"tight-cluster": func() []geom.Point {
			pts := make([]geom.Point, 80)
			for i := range pts {
				pts[i] = geom.Pt(1e6+rng.Float64()*1e-6, 1e6+rng.Float64()*1e-6)
			}
			return pts
		},
		"two-far-clusters": func() []geom.Point {
			// Bounding box is huge relative to the intra-cluster spacing,
			// so the candidate radius ~ sqrt(area/n) exceeds nothing
			// useful within a cluster yet the clusters sit far beyond it:
			// the Boruvka bridge search must connect them.
			pts := make([]geom.Point, 0, 100)
			for i := 0; i < 50; i++ {
				pts = append(pts, geom.Pt(rng.Float64(), rng.Float64()))
			}
			for i := 0; i < 50; i++ {
				pts = append(pts, geom.Pt(1e5+rng.Float64(), 1e5+rng.Float64()))
			}
			return pts
		},
		"many-far-clusters": func() []geom.Point {
			var pts []geom.Point
			for c := 0; c < 8; c++ {
				cx, cy := float64(c)*1e4, float64(c%3)*2e4
				for i := 0; i < 12; i++ {
					pts = append(pts, geom.Pt(cx+rng.Float64(), cy+rng.Float64()))
				}
			}
			return pts
		},
	}
	for name, gen := range cases {
		t.Run(name, func(t *testing.T) {
			pts := gen()
			dense := Euclidean(pts, 0)
			sparse := EuclideanSparse(pts, 0)
			assertSpanningTree(t, sparse, len(pts), 0)
			assertWeightEqual(t, dense.Weight, sparse.Weight)
		})
	}
}

// TestEuclideanSparseEdgeCases mirrors the dense kernel's degenerate-input
// contract.
func TestEuclideanSparseEdgeCases(t *testing.T) {
	if EuclideanSparse(nil, 0) != nil {
		t.Error("empty pts should give nil")
	}
	if EuclideanSparse([]geom.Point{geom.Pt(0, 0)}, 1) != nil {
		t.Error("root out of range should give nil")
	}
	if EuclideanSparse([]geom.Point{geom.Pt(0, 0)}, -1) != nil {
		t.Error("negative root should give nil")
	}
	tr := EuclideanSparse([]geom.Point{geom.Pt(3, 3)}, 0)
	if tr == nil || tr.Weight != 0 || tr.Len() != 1 {
		t.Errorf("single point tree wrong: %+v", tr)
	}
}

// TestEuclideanSparseNonzeroRoot checks the DFS re-orientation after the
// Boruvka rounds honors an arbitrary root.
func TestEuclideanSparseNonzeroRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pts := make([]geom.Point, 40)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*4, rng.Float64()*4)
	}
	// Split into two far groups so the bridging path runs.
	for i := 20; i < 40; i++ {
		pts[i] = geom.Pt(pts[i].X+1e4, pts[i].Y)
	}
	for _, root := range []int{0, 7, 25, 39} {
		dense := Euclidean(pts, root)
		sparse := EuclideanSparse(pts, root)
		assertSpanningTree(t, sparse, len(pts), root)
		assertWeightEqual(t, dense.Weight, sparse.Weight)
		order := sparse.PreorderDFS()
		if len(order) != len(pts) || order[0] != root {
			t.Fatalf("root %d: preorder covers %d starting at %d", root, len(order), order[0])
		}
	}
}

// TestEuclideanPrimHeapDisconnected is the regression test for the silent
// forest the heap kernel used to return: on a disconnected candidate
// graph it must report spanning=false and leave the other component
// unreached, never silently hand back a partial tree as if it spanned.
func TestEuclideanPrimHeapDisconnected(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(100, 0), geom.Pt(101, 0)}
	// Candidate edges only within {0,1} and {2,3}.
	adj := [][]int32{{1}, {0}, {3}, {2}}
	neighbors := func(v int) []int32 { return adj[v] }
	tr, spanning := EuclideanPrimHeap(pts, neighbors, 0)
	if spanning {
		t.Fatal("disconnected candidate graph reported spanning=true")
	}
	if tr == nil {
		t.Fatal("nil tree for reachable component")
	}
	if tr.Parent[1] != 0 {
		t.Errorf("Parent[1] = %d, want 0", tr.Parent[1])
	}
	if tr.Parent[2] != -1 || tr.Parent[3] != -1 {
		t.Error("unreachable component must stay unreached (-1 parents)")
	}
	if math.Abs(tr.Weight-1) > 1e-9 {
		t.Errorf("component weight = %v, want 1", tr.Weight)
	}

	// The connected complement of the same point set must span.
	full := [][]int32{{1, 2, 3}, {0, 2, 3}, {0, 1, 3}, {0, 1, 2}}
	tr2, spanning2 := EuclideanPrimHeap(pts, func(v int) []int32 { return full[v] }, 0)
	if !spanning2 {
		t.Fatal("connected graph reported spanning=false")
	}
	assertSpanningTree(t, tr2, 4, 0)
}
