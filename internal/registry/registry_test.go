package registry_test

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/plancache"
	"repro/internal/registry"
)

// testInstance builds a dense planning instance: enough requests inside
// shared charging range that option changes have room to change plans
// and multi-node planners actually group sensors.
func testInstance(seed int64, n int) *core.Instance {
	rng := rand.New(rand.NewSource(seed))
	in := &core.Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: 2}
	for i := 0; i < n; i++ {
		in.Requests = append(in.Requests, core.Request{
			Pos:      geom.Pt(rng.Float64()*25, rng.Float64()*25),
			Duration: (1.2 + 0.3*rng.Float64()) * 3600,
			Lifetime: (1 + rng.Float64()*6) * 86400,
		})
	}
	return in
}

func TestNamesOrder(t *testing.T) {
	want := []string{"Appro", "K-EDF", "NETWRAP", "AA", "K-minMax", "BiLevel"}
	if got := registry.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	wantPaper := want[:5]
	if got := registry.PaperNames(); !reflect.DeepEqual(got, wantPaper) {
		t.Fatalf("PaperNames() = %v, want %v", got, wantPaper)
	}
	ps := registry.Planners()
	if len(ps) != len(want) {
		t.Fatalf("Planners() returned %d planners, want %d", len(ps), len(want))
	}
	for i, p := range ps {
		if p.Name() != want[i] {
			t.Errorf("Planners()[%d].Name() = %q, want %q", i, p.Name(), want[i])
		}
	}
}

// TestRoundTrip resolves every canonical name, every alias, and shouty
// and lowercase variants of each, and requires them all to construct a
// planner whose Name() is the entry's canonical name.
func TestRoundTrip(t *testing.T) {
	for _, e := range registry.All() {
		spellings := []string{e.Name, strings.ToLower(e.Name), strings.ToUpper(e.Name)}
		for _, a := range e.Aliases {
			spellings = append(spellings, a, strings.ToLower(a), strings.ToUpper(a))
		}
		for _, s := range spellings {
			got, ok := registry.Lookup(s)
			if !ok {
				t.Errorf("Lookup(%q) failed", s)
				continue
			}
			if got.Name != e.Name {
				t.Errorf("Lookup(%q) resolved to %q, want %q", s, got.Name, e.Name)
			}
			p, err := registry.New(s, nil)
			if err != nil {
				t.Errorf("New(%q): %v", s, err)
				continue
			}
			if p.Name() != e.Name {
				t.Errorf("New(%q).Name() = %q, want %q", s, p.Name(), e.Name)
			}
		}
	}
}

func TestDefaultAndUnknown(t *testing.T) {
	e, ok := registry.Lookup("")
	if !ok || e.Name != "Appro" {
		t.Fatalf(`Lookup("") = %+v, %v; want the Appro default`, e, ok)
	}
	p, err := registry.New("", nil)
	if err != nil || p.Name() != "Appro" {
		t.Fatalf(`New("") = %v, %v; want Appro`, p, err)
	}
	_, err = registry.New("Dijkstra", nil)
	if err == nil {
		t.Fatal("unknown planner accepted")
	}
	// The error is the CLI's and the HTTP 400's body: it must name every
	// valid planner so the caller can self-serve.
	for _, name := range registry.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-planner error %q does not mention %q", err, name)
		}
	}
}

// TestRegisterCollisionsPanic exercises the init-time guard on fresh
// registries: duplicate canonical names (any case), aliases shadowing
// names, duplicate aliases, and malformed entries must all panic —
// plan-cache keys embed the canonical name, so a collision would alias
// two algorithms' cached schedules.
func TestRegisterCollisionsPanic(t *testing.T) {
	newP := func(core.Options) core.Planner { return core.ApproPlanner{} }
	base := registry.Entry{Name: "Alpha", Aliases: []string{"al"}, New: newP}
	cases := []struct {
		name string
		dup  registry.Entry
	}{
		{"duplicate name", registry.Entry{Name: "Alpha", New: newP}},
		{"duplicate name case-insensitive", registry.Entry{Name: "ALPHA", New: newP}},
		{"alias shadows name", registry.Entry{Name: "Beta", Aliases: []string{"alpha"}, New: newP}},
		{"name shadows alias", registry.Entry{Name: "AL", New: newP}},
		{"duplicate alias", registry.Entry{Name: "Beta", Aliases: []string{"AL"}, New: newP}},
		{"self-repeated key", registry.Entry{Name: "Beta", Aliases: []string{"beta"}, New: newP}},
		{"empty name", registry.Entry{New: newP}},
		{"nil constructor", registry.Entry{Name: "Beta"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var r registry.Registry
			r.Register(base)
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%+v) did not panic", tc.dup)
				}
			}()
			r.Register(tc.dup)
		})
	}
}

// TestCapabilityFlagsHonest checks the flags against planner behavior.
//
//   - Context: a pre-cancelled context aborts the plan with an error.
//   - Options: the planner exposes its options via plancache.Optioned,
//     and a known plan-shaping option pair produces different schedules.
//   - Seeded/TourRestarts structurally imply Options (a seed or restart
//     count that shaped plans without joining the cache key would poison
//     the cache).
//   - MultiNode: on a dense instance some stop covers several sensors;
//     one-to-one planners must only emit self-covering stops.
func TestCapabilityFlagsHonest(t *testing.T) {
	in := testInstance(7, 60)
	ctx := context.Background()
	cancelled, cancel := context.WithCancel(ctx)
	cancel()

	// A plan-shaping option pair per Options-capable planner.
	optionPairs := map[string][2]core.Options{
		"Appro":   {{MISOrder: graph.MISMaxDegree}, {MISOrder: graph.MISLexicographic}},
		"BiLevel": {{Seed: 1}, {Seed: 2}},
	}
	// Wild options that must NOT change a no-tunables planner's output.
	wild := core.Options{MISOrder: graph.MISRandom, Seed: 99, NoSortByFinishTime: true, TourRestarts: 7}

	for _, e := range registry.All() {
		t.Run(e.Name, func(t *testing.T) {
			if (e.Caps.Seeded || e.Caps.TourRestarts) && !e.Caps.Options {
				t.Errorf("%s: Seeded/TourRestarts flagged without Options — such options would not join the cache key", e.Name)
			}
			if e.Caps.ParallelMIS {
				if !e.Caps.Options || !e.Caps.Seeded {
					t.Errorf("%s: ParallelMIS flagged without Options+Seeded — the Luby seed must join the cache key", e.Name)
				}
				// The parallel MIS must be worker-count-independent for a
				// fixed seed: that is the determinism the flag advertises.
				o := core.Options{MISOrder: graph.MISLuby, Seed: 5}
				a := mustPlan(t, e.New(o), in)
				o.Workers = 8
				b := mustPlan(t, e.New(o), in)
				if !reflect.DeepEqual(a, b) {
					t.Errorf("%s: flagged ParallelMIS but the Luby plan depends on the worker count", e.Name)
				}
			}
			if e.Caps.Context {
				if _, err := e.New(core.Options{}).Plan(cancelled, in); err == nil {
					t.Errorf("%s: flagged Context but planned under a cancelled context", e.Name)
				}
			}
			if e.Caps.Options {
				if _, ok := e.New(core.Options{}).(plancache.Optioned); !ok {
					t.Errorf("%s: flagged Options but does not implement plancache.Optioned", e.Name)
				}
				pair, ok := optionPairs[e.Name]
				if !ok {
					t.Fatalf("%s: flagged Options but no option pair in this test — add one", e.Name)
				}
				a := mustPlan(t, e.New(pair[0]), in)
				b := mustPlan(t, e.New(pair[1]), in)
				if reflect.DeepEqual(a, b) {
					t.Errorf("%s: flagged Options but %+v and %+v plan identically", e.Name, pair[0], pair[1])
				}
			} else {
				a := mustPlan(t, e.New(core.Options{}), in)
				b := mustPlan(t, e.New(wild), in)
				if !reflect.DeepEqual(a, b) {
					t.Errorf("%s: not flagged Options but options changed the plan", e.Name)
				}
			}
			s := mustPlan(t, e.New(core.Options{}), in)
			multi := false
			for _, tour := range s.Tours {
				for _, stop := range tour.Stops {
					if len(stop.Covers) > 1 {
						multi = true
					} else if !e.Caps.MultiNode && (len(stop.Covers) != 1 || stop.Covers[0] != stop.Node) {
						t.Errorf("%s: not flagged MultiNode but emitted a non-self-covering stop", e.Name)
					}
				}
			}
			if e.Caps.MultiNode && !multi {
				t.Errorf("%s: flagged MultiNode but no stop covers more than one sensor on a dense instance", e.Name)
			}
		})
	}
}

func mustPlan(t *testing.T, p core.Planner, in *core.Instance) *core.Schedule {
	t.Helper()
	s, err := p.Plan(context.Background(), in)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return s
}

// TestIdentityCanonicalizes pins the plan-cache identity contract:
// aliased and lowercased spellings resolve to one canonical cache name,
// and differently-seeded BiLevel planners expose different options (and
// therefore different cache keys).
func TestIdentityCanonicalizes(t *testing.T) {
	for _, spelling := range []string{"BiLevel", "bilevel", "bi-level", "BLM"} {
		p := registry.MustNew(spelling, &core.Options{Seed: 1})
		name, opts := plancache.Identity(p)
		if name != "BiLevel" {
			t.Errorf("Identity(New(%q)) name = %q, want BiLevel", spelling, name)
		}
		if opts == nil || opts.Seed != 1 {
			t.Errorf("Identity(New(%q)) opts = %+v, want Seed 1 preserved", spelling, opts)
		}
	}
	in := testInstance(3, 20)
	k1 := plancacheKey(t, registry.MustNew("BiLevel", &core.Options{Seed: 1}), in)
	k2 := plancacheKey(t, registry.MustNew("BiLevel", &core.Options{Seed: 2}), in)
	if k1 == k2 {
		t.Error("BiLevel Seed 1 and Seed 2 share a cache key — seeds would alias")
	}
}

func plancacheKey(t *testing.T, p core.Planner, in *core.Instance) plancache.Key {
	t.Helper()
	name, opts := plancache.Identity(p)
	return plancache.KeyOf(name, opts, in)
}

func TestListAndMarkdownTable(t *testing.T) {
	infos := registry.List()
	if len(infos) != len(registry.Names()) {
		t.Fatalf("List() has %d entries, registry %d", len(infos), len(registry.Names()))
	}
	for i, info := range infos {
		if info.Default != (i == 0) {
			t.Errorf("List()[%d].Default = %v", i, info.Default)
		}
		if info.Summary == "" {
			t.Errorf("List()[%d] (%s) has no summary", i, info.Name)
		}
	}
	table := registry.MarkdownTable()
	for _, name := range registry.Names() {
		if !strings.Contains(table, "`"+name+"`") {
			t.Errorf("MarkdownTable() missing %q", name)
		}
	}
	if !strings.Contains(table, "(default)") {
		t.Error("MarkdownTable() does not mark the default planner")
	}
}
