// Package registry is the single naming authority for planning
// algorithms: every planner registers exactly once, with a canonical
// name, its accepted aliases, a constructor taking core.Options, and
// honest capability flags. Every consumer — the public repro facade,
// wrsn-plan/-sim/-bench, the serving layer's ?planner= resolution and
// /v1/planners listing, and plan-cache key derivation — resolves planner
// names here instead of keeping its own switch statement, so adding an
// algorithm is one package plus one Register call.
//
// Name resolution is case-insensitive over canonical names and aliases.
// Register panics on any collision (two planners under one canonical
// name, or an alias shadowing an existing name or alias): plan-cache
// keys embed the canonical name, so a name collision would silently
// alias two different algorithms' cached schedules. Failing loudly at
// init is the guard.
package registry

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
)

// Capabilities are a planner's honest feature flags. "Honest" is
// enforced by tests (see registry_test.go): a planner flagged Options
// must actually fold core.Options into its plans, and one not flagged
// must plan identically under any options.
type Capabilities struct {
	// Context: Plan honors ctx cancellation and deadlines mid-plan.
	Context bool `json:"context"`
	// Options: plan-shaping core.Options fields change the schedule
	// (and therefore join the plan-cache key via plancache.Optioned).
	Options bool `json:"options"`
	// TourRestarts: Options.TourRestarts selects multi-restart tour
	// improvement (tsp.TwoOptRestarts) inside the planner.
	TourRestarts bool `json:"tour_restarts"`
	// Seeded: Options.Seed shapes the plan (randomized MIS orders or
	// seeded perturbation); the planner stays deterministic per seed.
	Seeded bool `json:"seeded"`
	// MultiNode: stops charge several sensors at once (the paper's
	// one-to-many scheme) rather than one-to-one point charging.
	MultiNode bool `json:"multi_node"`
	// ParallelMIS: Options.MISOrder = graph.MISLuby engages the
	// goroutine-parallel Luby MIS for the large-n regime; the plan stays
	// byte-identical for a fixed Options.Seed at any worker count.
	ParallelMIS bool `json:"parallel_mis"`
}

// list returns the set flags as short labels, for tables and listings.
func (c Capabilities) list() []string {
	var out []string
	add := func(on bool, label string) {
		if on {
			out = append(out, label)
		}
	}
	add(c.Context, "ctx")
	add(c.Options, "options")
	add(c.TourRestarts, "restarts")
	add(c.Seeded, "seeded")
	add(c.MultiNode, "multi-node")
	add(c.ParallelMIS, "parallel-mis")
	return out
}

// String renders the set flags as a comma-separated list.
func (c Capabilities) String() string { return strings.Join(c.list(), ", ") }

// Entry is one registered planner.
type Entry struct {
	// Name is the canonical display name ("Appro", "K-minMax", ...);
	// it is what Planner.Name() returns and what plan-cache keys embed.
	Name string
	// Aliases resolve to this entry too. Matching is case-insensitive
	// for both the name and the aliases, so aliases only need to cover
	// genuinely different spellings ("kedf" for "K-EDF").
	Aliases []string
	// Summary is a one-line description for listings.
	Summary string
	// Paper marks the five algorithms of the paper's evaluation; the
	// figure harness sweeps exactly these, in registration order.
	Paper bool
	// Caps are the planner's capability flags.
	Caps Capabilities
	// New constructs the planner under the given options. Planners
	// without tunables ignore them.
	New func(opts core.Options) core.Planner
}

// Info is the serializable view of an Entry (Entry itself carries a
// constructor), used by the /v1/planners listing.
type Info struct {
	Name         string       `json:"name"`
	Aliases      []string     `json:"aliases,omitempty"`
	Summary      string       `json:"summary"`
	Paper        bool         `json:"paper"`
	Capabilities Capabilities `json:"capabilities"`
	Default      bool         `json:"default,omitempty"`
}

// Registry is an ordered, collision-checked planner catalog. The zero
// value is empty and ready to use; the package-level functions operate
// on the default registry populated by builtin.go. Registration happens
// at init time only, so lookups need no locking.
type Registry struct {
	entries []Entry
	index   map[string]int // lowercased name or alias -> entries index
}

// Register adds e to the registry. It panics — at init time, by design —
// when the entry is malformed or any name or alias (case-insensitively)
// collides with an already-registered name or alias: plan-cache keys
// embed the canonical planner name, so a collision would let two
// different algorithms alias to one cached schedule.
func (r *Registry) Register(e Entry) {
	if e.Name == "" {
		panic("registry: entry with empty canonical name")
	}
	if e.New == nil {
		panic(fmt.Sprintf("registry: planner %q has no constructor", e.Name))
	}
	if r.index == nil {
		r.index = make(map[string]int)
	}
	keys := append([]string{e.Name}, e.Aliases...)
	seen := make(map[string]bool, len(keys))
	for _, k := range keys {
		lk := strings.ToLower(k)
		if prev, ok := r.index[lk]; ok {
			panic(fmt.Sprintf("registry: %q of planner %q collides with already-registered planner %q — cache keys would alias",
				k, e.Name, r.entries[prev].Name))
		}
		if seen[lk] {
			panic(fmt.Sprintf("registry: planner %q repeats name/alias %q", e.Name, k))
		}
		seen[lk] = true
	}
	idx := len(r.entries)
	r.entries = append(r.entries, e)
	for lk := range seen {
		r.index[lk] = idx
	}
}

// Lookup resolves a name or alias, case-insensitively. The empty string
// resolves to the default planner (the first registered entry).
func (r *Registry) Lookup(name string) (Entry, bool) {
	if name == "" {
		if len(r.entries) == 0 {
			return Entry{}, false
		}
		return r.entries[0], true
	}
	i, ok := r.index[strings.ToLower(name)]
	if !ok {
		return Entry{}, false
	}
	return r.entries[i], true
}

// New resolves the named planner and constructs it under opts (nil means
// the zero, paper-default options). The empty name selects the default
// planner. Unknown names return an error listing every valid name, so
// callers (the HTTP 400 body, CLI stderr) need no list of their own.
func (r *Registry) New(name string, opts *core.Options) (core.Planner, error) {
	e, ok := r.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("unknown planner %q (valid: %s; names and aliases are case-insensitive)",
			name, strings.Join(r.Names(), ", "))
	}
	var o core.Options
	if opts != nil {
		o = *opts
	}
	return e.New(o), nil
}

// MustNew is New for names known at compile time; it panics on error.
func (r *Registry) MustNew(name string, opts *core.Options) core.Planner {
	p, err := r.New(name, opts)
	if err != nil {
		panic(err)
	}
	return p
}

// All returns every entry in registration order (the paper's
// presentation order first, extensions after).
func (r *Registry) All() []Entry {
	return append([]Entry(nil), r.entries...)
}

// Names returns the canonical names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.Name
	}
	return out
}

// Planners constructs every registered planner under its zero options,
// in registration order.
func (r *Registry) Planners() []core.Planner {
	out := make([]core.Planner, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.New(core.Options{})
	}
	return out
}

// PaperEntries returns the entries flagged Paper, in registration order.
func (r *Registry) PaperEntries() []Entry {
	var out []Entry
	for _, e := range r.entries {
		if e.Paper {
			out = append(out, e)
		}
	}
	return out
}

// PaperPlanners constructs the paper's algorithms under zero options, in
// the paper's presentation order — the set the figure harness sweeps.
func (r *Registry) PaperPlanners() []core.Planner {
	entries := r.PaperEntries()
	out := make([]core.Planner, len(entries))
	for i, e := range entries {
		out[i] = e.New(core.Options{})
	}
	return out
}

// PaperNames returns the paper algorithms' canonical names in
// presentation order.
func (r *Registry) PaperNames() []string {
	entries := r.PaperEntries()
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	return out
}

// List returns the serializable planner listing, in registration order,
// with sorted aliases and the default planner marked.
func (r *Registry) List() []Info {
	out := make([]Info, len(r.entries))
	for i, e := range r.entries {
		aliases := append([]string(nil), e.Aliases...)
		sort.Strings(aliases)
		out[i] = Info{
			Name:         e.Name,
			Aliases:      aliases,
			Summary:      e.Summary,
			Paper:        e.Paper,
			Capabilities: e.Caps,
			Default:      i == 0,
		}
	}
	return out
}

// MarkdownTable renders the registered planners as a GitHub-flavored
// markdown table. README.md embeds it between planner-table markers and
// a test regenerates and compares, so the documented table cannot drift
// from the code.
func (r *Registry) MarkdownTable() string {
	var b strings.Builder
	b.WriteString("| Planner | Aliases | Origin | Capabilities | What it does |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for i, e := range r.entries {
		aliases := "—"
		if len(e.Aliases) > 0 {
			sorted := append([]string(nil), e.Aliases...)
			sort.Strings(sorted)
			aliases = "`" + strings.Join(sorted, "`, `") + "`"
		}
		origin := "extension"
		if e.Paper {
			origin = "paper"
		}
		name := "`" + e.Name + "`"
		if i == 0 {
			name += " (default)"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s |\n",
			name, aliases, origin, e.Caps.String(), e.Summary)
	}
	return b.String()
}

// std is the default registry, populated by builtin.go at init.
var std Registry

// Register adds a planner to the default registry; see Registry.Register
// for the collision panics.
func Register(e Entry) { std.Register(e) }

// Lookup resolves a name or alias in the default registry.
func Lookup(name string) (Entry, bool) { return std.Lookup(name) }

// New resolves and constructs a planner from the default registry.
func New(name string, opts *core.Options) (core.Planner, error) { return std.New(name, opts) }

// MustNew is New panicking on unknown names.
func MustNew(name string, opts *core.Options) core.Planner { return std.MustNew(name, opts) }

// All returns every registered entry in registration order.
func All() []Entry { return std.All() }

// Names returns the canonical planner names in registration order.
func Names() []string { return std.Names() }

// Planners constructs every registered planner under zero options.
func Planners() []core.Planner { return std.Planners() }

// PaperEntries returns the paper's five algorithms' entries.
func PaperEntries() []Entry { return std.PaperEntries() }

// PaperPlanners constructs the paper's five algorithms, paper order.
func PaperPlanners() []core.Planner { return std.PaperPlanners() }

// PaperNames returns the paper algorithms' names, paper order.
func PaperNames() []string { return std.PaperNames() }

// List returns the serializable listing of the default registry.
func List() []Info { return std.List() }

// MarkdownTable renders the default registry's planner table.
func MarkdownTable() string { return std.MarkdownTable() }
