package registry

import (
	"repro/internal/baselines"
	"repro/internal/bilevel"
	"repro/internal/core"
)

// The built-in planner catalog: the paper's five algorithms in its
// presentation order (Appro first — it is also the default planner —
// then the four baselines of Section VI-A), followed by this
// reproduction's extensions. Each planner has exactly this one
// registration site; adding an algorithm is its own package plus one
// Register call here.
func init() {
	Register(Entry{
		Name:    "Appro",
		Summary: "the paper's Algorithm 1: MIS sojourn selection, K-minMax tours, finish-time-sorted insertion",
		Paper:   true,
		Caps: Capabilities{
			Context:      true,
			Options:      true,
			TourRestarts: true,
			Seeded:       true,
			MultiNode:    true,
			ParallelMIS:  true,
		},
		New: func(o core.Options) core.Planner { return core.ApproPlanner{Opts: o} },
	})
	Register(Entry{
		Name:    "K-EDF",
		Aliases: []string{"kedf"},
		Summary: "earliest-deadline-first dispatch in groups of K with Hungarian travel assignment",
		Paper:   true,
		Caps:    Capabilities{Context: true},
		New:     func(core.Options) core.Planner { return baselines.KEDF{} },
	})
	Register(Entry{
		Name:    "NETWRAP",
		Summary: "greedy on-demand baseline: each free charger picks the best travel/lifetime tradeoff",
		Paper:   true,
		Caps:    Capabilities{Context: true},
		New:     func(core.Options) core.Planner { return baselines.NETWRAP{} },
	})
	Register(Entry{
		Name:    "AA",
		Summary: "k-means partition baseline: one charger tours each spatial cluster",
		Paper:   true,
		Caps:    Capabilities{Context: true},
		New:     func(core.Options) core.Planner { return baselines.AA{} },
	})
	Register(Entry{
		Name:    "K-minMax",
		Aliases: []string{"kminmax"},
		Summary: "strongest one-to-one baseline: K node-disjoint min-max closed tours over all sensors",
		Paper:   true,
		Caps:    Capabilities{Context: true},
		New:     func(core.Options) core.Planner { return baselines.KMinMax{} },
	})
	Register(Entry{
		Name:    "BiLevel",
		Aliases: []string{"bi-level", "blm"},
		Summary: "bi-level metaheuristic: seeded MIS stop-subset perturbation outside, multi-restart min-max tours inside",
		Caps: Capabilities{
			Context:      true,
			Options:      true,
			TourRestarts: true,
			Seeded:       true,
			MultiNode:    true,
		},
		New: func(o core.Options) core.Planner { return bilevel.Planner{Opts: o} },
	})
}
