package geom

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// bruteNeighbors is the quadratic reference implementation used as an oracle.
func bruteNeighbors(pts []Point, q Point, r float64) []int {
	var out []int
	for i, p := range pts {
		if Within(q, p, r) {
			out = append(out, i)
		}
	}
	return out
}

func sortedCopy(xs []int) []int {
	c := append([]int(nil), xs...)
	sort.Ints(c)
	return c
}

func TestGridEmpty(t *testing.T) {
	g := NewGrid(nil, 1)
	if g.Len() != 0 {
		t.Fatalf("Len = %d", g.Len())
	}
	if got := g.Neighbors(Pt(0, 0), 10, nil); len(got) != 0 {
		t.Errorf("Neighbors on empty grid = %v", got)
	}
	if i, d := g.Nearest(Pt(0, 0)); i != -1 || !math.IsInf(d, 1) {
		t.Errorf("Nearest on empty grid = %d, %v", i, d)
	}
}

func TestGridNeighborsMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(300)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		cell := 0.5 + rng.Float64()*5
		g := NewGrid(pts, cell)
		for q := 0; q < 20; q++ {
			query := Pt(rng.Float64()*120-10, rng.Float64()*120-10)
			r := rng.Float64() * 15
			got := sortedCopy(g.Neighbors(query, r, nil))
			want := sortedCopy(bruteNeighbors(pts, query, r))
			if len(got) != len(want) {
				t.Fatalf("trial %d: got %d neighbors, want %d (r=%v)", trial, len(got), len(want), r)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: neighbors mismatch: got %v want %v", trial, got, want)
				}
			}
		}
	}
}

func TestGridNeighborsOfExcludesSelf(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 0), Pt(0, 1), Pt(10, 10)}
	g := NewGrid(pts, 2.7)
	got := sortedCopy(g.NeighborsOf(0, 1.5, nil))
	want := []int{1, 2}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("NeighborsOf(0) = %v, want %v", got, want)
	}
}

func TestGridNearestMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		g := NewGrid(pts, 2.7)
		for q := 0; q < 20; q++ {
			// Include queries far outside the indexed bounds.
			query := Pt(rng.Float64()*400-150, rng.Float64()*400-150)
			gotIdx, gotD := g.Nearest(query)
			wantIdx, wantD := -1, math.Inf(1)
			for i, p := range pts {
				if d := Dist(query, p); d < wantD {
					wantIdx, wantD = i, d
				}
			}
			if math.Abs(gotD-wantD) > 1e-9 {
				t.Fatalf("trial %d: Nearest(%v) dist = %v (idx %d), want %v (idx %d)",
					trial, query, gotD, gotIdx, wantD, wantIdx)
			}
		}
	}
}

func TestGridCoincidentPoints(t *testing.T) {
	pts := []Point{Pt(5, 5), Pt(5, 5), Pt(5, 5)}
	g := NewGrid(pts, 1)
	got := g.Neighbors(Pt(5, 5), 0, nil)
	if len(got) != 3 {
		t.Errorf("coincident points: got %d neighbors, want 3", len(got))
	}
}

func TestGridReusesBuffer(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 1)}
	g := NewGrid(pts, 1)
	buf := make([]int, 0, 8)
	out := g.Neighbors(Pt(0, 0), 5, buf)
	if len(out) != 2 {
		t.Fatalf("got %d", len(out))
	}
	out2 := g.Neighbors(Pt(100, 100), 1, out)
	if len(out2) != 0 {
		t.Errorf("buffer reuse: got %v, want empty", out2)
	}
}

func BenchmarkGridNeighbors(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, 1200)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
	}
	g := NewGrid(pts, 2.7)
	var buf []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Neighbors(pts[i%len(pts)], 2.7, buf)
	}
}

// TestGridExtremeExtentsNoOverflow is the regression test for the cell-key
// integer overflow: with coordinate extents of ±1e12 and a tiny cell size,
// cols and rows used to be ~1e15 each, so cy*cols+cx wrapped int64 and
// distinct cells could collide on one bucket key (and the scan-window
// arithmetic could overflow outright). The guarded grid coarsens its cell
// size until cols*rows fits maxGridCells and must answer every query
// exactly like the brute-force oracle.
func TestGridExtremeExtentsNoOverflow(t *testing.T) {
	// Four distant clusters at the corners of a ±1e12 square plus one at
	// the origin, with intra-cluster spacing matched to the query radius.
	var pts []Point
	centers := []Point{
		Pt(-1e12, -1e12), Pt(1e12, -1e12), Pt(-1e12, 1e12), Pt(1e12, 1e12), Pt(0, 0),
	}
	rng := rand.New(rand.NewSource(7))
	for _, c := range centers {
		for i := 0; i < 8; i++ {
			pts = append(pts, Pt(c.X+rng.Float64()*4-2, c.Y+rng.Float64()*4-2))
		}
	}
	for _, cell := range []float64{1e-3, 1, 2.7} {
		g := NewGrid(pts, cell)
		if g.cols <= 0 || g.rows <= 0 {
			t.Fatalf("cell %g: non-positive grid dims %dx%d", cell, g.cols, g.rows)
		}
		if float64(g.cols)*float64(g.rows) > maxGridCells {
			t.Fatalf("cell %g: cols*rows = %d*%d exceeds maxGridCells", cell, g.cols, g.rows)
		}
		for _, q := range append(append([]Point{}, centers...), Pt(1e12-3, 1e12+1), Pt(5e11, 5e11)) {
			for _, r := range []float64{3, 10} {
				got := sortedCopy(g.Neighbors(q, r, nil))
				want := sortedCopy(bruteNeighbors(pts, q, r))
				if !equalInts(got, want) {
					t.Fatalf("cell %g: Neighbors(%v, %g) = %v, want %v", cell, q, r, got, want)
				}
			}
			bi, bd := -1, math.Inf(1)
			for i, p := range pts {
				if d := Dist(q, p); d < bd || (d == bd && i < bi) {
					bi, bd = i, d
				}
			}
			gi, gd := g.Nearest(q)
			if gi != bi || math.Abs(gd-bd) > 1e-6*(1+bd) {
				t.Fatalf("cell %g: Nearest(%v) = %d,%g, want %d,%g", cell, q, gi, gd, bi, bd)
			}
		}
	}
	// A radius spanning the whole field must return every point — this is
	// the scan-window clamp at work (one full-grid scan, no overflow).
	g := NewGrid(pts, 1)
	if got := g.Neighbors(Pt(0, 0), 5e12, nil); len(got) != len(pts) {
		t.Fatalf("field-spanning radius returned %d of %d points", len(got), len(pts))
	}
	// A query point far outside even these bounds must terminate and find
	// the closest cluster.
	if i, _ := g.Nearest(Pt(1e15, 1e15)); i < 0 {
		t.Fatal("Nearest from 1e15 away found nothing")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
