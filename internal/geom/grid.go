package geom

import "math"

// Grid is a spatial hash over a fixed point set that answers fixed-radius
// neighbor queries in expected O(1 + k) time, where k is the number of
// results. It is the workhorse behind unit-disk graph construction: building
// the charging graph G_c over n sensors costs O(n + m) instead of O(n^2).
//
// The grid is immutable after construction; rebuild it if the point set
// changes. A zero Grid is not usable — construct one with NewGrid.
type Grid struct {
	cell   float64
	pts    []Point
	minX   float64
	minY   float64
	cols   int
	rows   int
	bucket map[int][]int32
}

// NewGrid indexes pts with square cells of the given size. The cell size
// should match the dominant query radius (e.g. the charging radius gamma);
// queries with other radii remain correct but scan more cells. A
// non-positive cell size is replaced by 1.
func NewGrid(pts []Point, cell float64) *Grid {
	if cell <= 0 {
		cell = 1
	}
	g := &Grid{
		cell:   cell,
		pts:    pts,
		bucket: make(map[int][]int32, len(pts)),
	}
	if len(pts) == 0 {
		g.cols, g.rows = 1, 1
		return g
	}
	b := Bounds(pts)
	g.minX, g.minY = b.Min.X, b.Min.Y
	g.cols = int(math.Floor((b.Max.X-b.Min.X)/cell)) + 1
	g.rows = int(math.Floor((b.Max.Y-b.Min.Y)/cell)) + 1
	for i, p := range pts {
		key := g.key(p)
		g.bucket[key] = append(g.bucket[key], int32(i))
	}
	return g
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.pts) }

// Point returns the i-th indexed point.
func (g *Grid) Point(i int) Point { return g.pts[i] }

func (g *Grid) key(p Point) int {
	cx := int(math.Floor((p.X - g.minX) / g.cell))
	cy := int(math.Floor((p.Y - g.minY) / g.cell))
	return cy*g.cols + cx
}

// Neighbors returns the indices of all indexed points within radius r of q,
// including any indexed point coincident with q. The result order is
// unspecified. The caller may pass a reusable buffer via dst to avoid
// allocation; pass nil otherwise.
func (g *Grid) Neighbors(q Point, r float64, dst []int) []int {
	dst = dst[:0]
	if r < 0 || len(g.pts) == 0 {
		return dst
	}
	r2 := r * r
	span := int(math.Ceil(r/g.cell)) + 1
	cx := int(math.Floor((q.X - g.minX) / g.cell))
	cy := int(math.Floor((q.Y - g.minY) / g.cell))
	for dy := -span; dy <= span; dy++ {
		y := cy + dy
		if y < 0 || y >= g.rows {
			continue
		}
		for dx := -span; dx <= span; dx++ {
			x := cx + dx
			if x < 0 || x >= g.cols {
				continue
			}
			for _, idx := range g.bucket[y*g.cols+x] {
				if DistSq(q, g.pts[idx]) <= r2 {
					dst = append(dst, int(idx))
				}
			}
		}
	}
	return dst
}

// NeighborsOf returns the indices of all indexed points within radius r of
// the i-th indexed point, excluding i itself.
func (g *Grid) NeighborsOf(i int, r float64, dst []int) []int {
	dst = g.Neighbors(g.pts[i], r, dst)
	for j, idx := range dst {
		if idx == i {
			dst[j] = dst[len(dst)-1]
			dst = dst[:len(dst)-1]
			break
		}
	}
	return dst
}

// Nearest returns the index of the indexed point closest to q and its
// distance. It returns (-1, +Inf) when the grid is empty. Ties are broken
// by the lowest index.
func (g *Grid) Nearest(q Point) (int, float64) {
	best, bestD2 := -1, math.Inf(1)
	if len(g.pts) == 0 {
		return best, bestD2
	}
	// Expand ring by ring around q's cell until a hit is found, then one
	// extra ring to guarantee correctness (a closer point can live in the
	// next ring out).
	cx := int(math.Floor((q.X - g.minX) / g.cell))
	cy := int(math.Floor((q.Y - g.minY) / g.cell))
	maxSpan := g.cols
	if g.rows > maxSpan {
		maxSpan = g.rows
	}
	// Also cover a query point far outside the indexed bounds.
	ox := 0
	if cx < 0 {
		ox = -cx
	} else if cx >= g.cols {
		ox = cx - g.cols + 1
	}
	oy := 0
	if cy < 0 {
		oy = -cy
	} else if cy >= g.rows {
		oy = cy - g.rows + 1
	}
	off := ox
	if oy > off {
		off = oy
	}
	maxSpan += off
	for span := 0; span <= maxSpan; span++ {
		// A point in a ring at cell-distance span is at least
		// (span-1)*cell away from q, so once that lower bound exceeds
		// the current best the search is complete.
		if best >= 0 && float64(span-1)*g.cell > math.Sqrt(bestD2) {
			break
		}
		for dy := -span; dy <= span; dy++ {
			y := cy + dy
			if y < 0 || y >= g.rows {
				continue
			}
			for dx := -span; dx <= span; dx++ {
				// Ring only: skip interior cells already scanned.
				if dx > -span && dx < span && dy > -span && dy < span {
					continue
				}
				x := cx + dx
				if x < 0 || x >= g.cols {
					continue
				}
				for _, idx := range g.bucket[y*g.cols+x] {
					d2 := DistSq(q, g.pts[idx])
					if d2 < bestD2 || (d2 == bestD2 && int(idx) < best) {
						best, bestD2 = int(idx), d2
					}
				}
			}
		}
	}
	return best, math.Sqrt(bestD2)
}
