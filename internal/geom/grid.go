package geom

import "math"

// Grid is a spatial hash over a fixed point set that answers fixed-radius
// neighbor queries in expected O(1 + k) time, where k is the number of
// results. It is the workhorse behind unit-disk graph construction: building
// the charging graph G_c over n sensors costs O(n + m) instead of O(n^2).
//
// The grid is immutable after construction; rebuild it if the point set
// changes. A zero Grid is not usable — construct one with NewGrid.
type Grid struct {
	cell float64
	pts  []Point
	minX float64
	minY float64
	cols int
	rows int
	// Buckets live in one flat arena rather than a slice per cell: slot
	// maps an occupied cell's key to a slot s, and the point indices of
	// that cell are idx[off[s]:off[s+1]], ascending. Empty cells have no
	// slot. This keeps NewGrid at O(1) allocations instead of one per
	// occupied cell.
	slot map[int]int32
	off  []int32
	idx  []int32
}

// maxGridCells bounds cols*rows. Beyond it the cell-key arithmetic
// cy*cols+cx could overflow int (extreme coordinate extents with a tiny
// cell size make cols and rows each ~1e15, whose product wraps int64 and
// lands distinct cells on one key), and the bucket map would be
// pathologically sparse anyway. NewGrid coarsens the cell size until the
// grid fits; queries stay correct — cells just hold more candidates.
const maxGridCells = 1 << 26

// NewGrid indexes pts with square cells of the given size. The cell size
// should match the dominant query radius (e.g. the charging radius gamma);
// queries with other radii remain correct but scan more cells. A
// non-positive (or NaN) cell size is replaced by 1. When the point
// extents divided by the cell size would exceed maxGridCells cells, the
// cell size is doubled until the grid fits, which keys extreme
// coordinates (±1e12 and beyond) without integer overflow.
func NewGrid(pts []Point, cell float64) *Grid {
	if !(cell > 0) {
		cell = 1
	}
	g := &Grid{
		cell: cell,
		pts:  pts,
		slot: make(map[int]int32, len(pts)),
	}
	if len(pts) == 0 {
		g.cols, g.rows = 1, 1
		return g
	}
	b := Bounds(pts)
	g.minX, g.minY = b.Min.X, b.Min.Y
	// Size the grid in floats first: the integer conversion below is only
	// safe once cols*rows is known to fit.
	ex, ey := b.Max.X-b.Min.X, b.Max.Y-b.Min.Y
	fc := math.Floor(ex/g.cell) + 1
	fr := math.Floor(ey/g.cell) + 1
	for !(fc*fr <= maxGridCells) { // also catches NaN/Inf extents
		g.cell *= 2
		if math.IsInf(g.cell, 0) {
			// Degenerate extents (NaN/Inf coordinates): collapse to a
			// single cell; queries fall back to scanning it.
			fc, fr = 1, 1
			break
		}
		fc = math.Floor(ex/g.cell) + 1
		fr = math.Floor(ey/g.cell) + 1
	}
	g.cols = int(fc)
	g.rows = int(fr)
	// Two passes: assign slots and count, then fill the arena with a
	// cursor per slot. Filling in ascending point order reproduces the
	// within-bucket order incremental appends would give, which query
	// iteration (and therefore downstream deterministic tiebreaks)
	// observes.
	slots := make([]int32, len(pts))
	counts := make([]int32, 0, 64)
	for i, p := range pts {
		key := g.key(p)
		s, ok := g.slot[key]
		if !ok {
			s = int32(len(counts))
			g.slot[key] = s
			counts = append(counts, 0)
		}
		slots[i] = s
		counts[s]++
	}
	g.off = make([]int32, len(counts)+1)
	for s, c := range counts {
		g.off[s+1] = g.off[s] + c
	}
	g.idx = make([]int32, len(pts))
	cur := counts[:0] // reuse as cursors; counts is dead after the prefix sum
	cur = append(cur, g.off[:len(counts)]...)
	for i := range pts {
		s := slots[i]
		g.idx[cur[s]] = int32(i)
		cur[s]++
	}
	return g
}

// cellPoints returns the indices bucketed in the cell with the given key,
// ascending, or nil for an empty cell.
func (g *Grid) cellPoints(key int) []int32 {
	s, ok := g.slot[key]
	if !ok {
		return nil
	}
	return g.idx[g.off[s]:g.off[s+1]]
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.pts) }

// Point returns the i-th indexed point.
func (g *Grid) Point(i int) Point { return g.pts[i] }

// cellIndex maps a coordinate to its cell index along one axis, clamping
// the float before the int conversion: a query point arbitrarily far from
// the indexed bounds (or a NaN coordinate) must not trip Go's
// implementation-defined out-of-range float-to-int conversion. Clamped
// indices lie outside [0, cols) x [0, rows), so queries treat them like
// any other out-of-grid cell.
func cellIndex(v, min, cell float64) int {
	f := math.Floor((v - min) / cell)
	switch {
	case f > maxGridCells:
		return maxGridCells
	case f < -maxGridCells:
		return -maxGridCells
	case math.IsNaN(f):
		return -1
	}
	return int(f)
}

// key computes the bucket key of p's cell. With cols*rows bounded by
// maxGridCells and the per-axis indices clamped, cy*cols+cx stays far
// inside the int range.
func (g *Grid) key(p Point) int {
	cx := cellIndex(p.X, g.minX, g.cell)
	cy := cellIndex(p.Y, g.minY, g.cell)
	return cy*g.cols + cx
}

// Neighbors returns the indices of all indexed points within radius r of q,
// including any indexed point coincident with q. The result order is
// unspecified. The caller may pass a reusable buffer via dst to avoid
// allocation; pass nil otherwise.
func (g *Grid) Neighbors(q Point, r float64, dst []int) []int {
	dst = dst[:0]
	if r < 0 || len(g.pts) == 0 {
		return dst
	}
	r2 := r * r
	// The scan window [c-span, c+span] is computed in float space and
	// clamped to the grid per axis, so a huge radius/cell ratio or a query
	// point far outside the indexed bounds can neither overflow the index
	// arithmetic nor widen the loop beyond the grid itself.
	span := math.Ceil(r/g.cell) + 1
	cx := cellIndex(q.X, g.minX, g.cell)
	cy := cellIndex(q.Y, g.minY, g.cell)
	y0, y1 := cellScanRange(cy, span, g.rows)
	x0, x1 := cellScanRange(cx, span, g.cols)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			for _, idx := range g.cellPoints(y*g.cols + x) {
				if DistSq(q, g.pts[idx]) <= r2 {
					dst = append(dst, int(idx))
				}
			}
		}
	}
	return dst
}

// cellScanRange clamps the inclusive cell window [c-span, c+span] to
// [0, n), returning an empty range (1, 0) when they do not intersect.
// span is kept in float space until after clamping so extreme values
// never reach an int conversion.
func cellScanRange(c int, span float64, n int) (int, int) {
	lo, hi := float64(c)-span, float64(c)+span
	if hi < 0 || lo > float64(n-1) || math.IsNaN(span) {
		return 1, 0
	}
	if lo < 0 {
		lo = 0
	}
	if hi > float64(n-1) {
		hi = float64(n - 1)
	}
	return int(lo), int(hi)
}

// NeighborsOf returns the indices of all indexed points within radius r of
// the i-th indexed point, excluding i itself.
func (g *Grid) NeighborsOf(i int, r float64, dst []int) []int {
	dst = g.Neighbors(g.pts[i], r, dst)
	for j, idx := range dst {
		if idx == i {
			dst[j] = dst[len(dst)-1]
			dst = dst[:len(dst)-1]
			break
		}
	}
	return dst
}

// Nearest returns the index of the indexed point closest to q and its
// distance. It returns (-1, +Inf) when the grid is empty. Ties are broken
// by the lowest index.
func (g *Grid) Nearest(q Point) (int, float64) {
	return g.NearestWhere(q, math.Inf(1), nil)
}

// NearestWhere returns the index of the indexed point closest to q among
// those with accept(i) true (a nil accept admits every point) and at
// distance at most maxDist (inclusive), together with its distance. It
// returns (-1, +Inf) when no indexed point qualifies. Ties are broken by
// the lowest index.
//
// maxDist is also a search bound: the ring expansion stops as soon as the
// remaining rings provably lie beyond min(maxDist, best-so-far), so a
// caller that already holds a candidate (e.g. a component's best outgoing
// edge in a Boruvka phase) pays only for the rings that could beat it.
func (g *Grid) NearestWhere(q Point, maxDist float64, accept func(i int) bool) (int, float64) {
	best, bestD2 := -1, math.Inf(1)
	if len(g.pts) == 0 || math.IsNaN(maxDist) || maxDist < 0 {
		return best, bestD2
	}
	maxD2 := maxDist * maxDist
	// Expand ring by ring around q's cell until a hit is found, then one
	// extra ring to guarantee correctness (a closer point can live in the
	// next ring out). The start cell is clamped into the grid: for a query
	// point outside the indexed bounds the rings then grow from the
	// nearest grid cell, which keeps the ring count bounded by the grid
	// size however far away q is, and the (span-1)*cell distance bound
	// below stays valid because q is at least as far from every ring cell
	// as the clamped cell's boundary is.
	cx := clampInt(cellIndex(q.X, g.minX, g.cell), 0, g.cols-1)
	cy := clampInt(cellIndex(q.Y, g.minY, g.cell), 0, g.rows-1)
	maxSpan := g.cols
	if g.rows > maxSpan {
		maxSpan = g.rows
	}
	for span := 0; span <= maxSpan; span++ {
		// A point in a ring at cell-distance span is at least
		// (span-1)*cell away from q, so once that lower bound exceeds
		// the current best (or the caller's cap) the search is complete.
		bound := maxDist
		if best >= 0 {
			if d := math.Sqrt(bestD2); d < bound {
				bound = d
			}
		}
		if float64(span-1)*g.cell > bound {
			break
		}
		for dy := -span; dy <= span; dy++ {
			y := cy + dy
			if y < 0 || y >= g.rows {
				continue
			}
			// Ring only: on interior rows step straight from the left
			// edge to the right edge instead of iterating (and skipping)
			// every interior cell — rings must cost their perimeter, not
			// their area, or a faraway query degrades quadratically.
			step := 1
			if span > 0 && dy > -span && dy < span {
				step = 2 * span
			}
			for dx := -span; dx <= span; dx += step {
				x := cx + dx
				if x < 0 || x >= g.cols {
					continue
				}
				for _, idx := range g.cellPoints(y*g.cols + x) {
					if accept != nil && !accept(int(idx)) {
						continue
					}
					d2 := DistSq(q, g.pts[idx])
					if d2 > maxD2 {
						continue
					}
					if d2 < bestD2 || (d2 == bestD2 && int(idx) < best) {
						best, bestD2 = int(idx), d2
					}
				}
			}
		}
	}
	return best, math.Sqrt(bestD2)
}

// clampInt clamps v into [lo, hi].
func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
