package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2),
		Pt(1, 1), Pt(0.5, 1.5), // interior
		Pt(1, 0), // collinear boundary, dropped
	}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull = %v, want the 4 corners", hull)
	}
	if p := HullPerimeter(pts); math.Abs(p-8) > 1e-9 {
		t.Errorf("perimeter = %v, want 8", p)
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); h != nil {
		t.Errorf("empty hull = %v", h)
	}
	one := ConvexHull([]Point{Pt(3, 3), Pt(3, 3)})
	if len(one) != 1 {
		t.Errorf("coincident points hull = %v", one)
	}
	two := ConvexHull([]Point{Pt(0, 0), Pt(5, 0)})
	if len(two) != 2 {
		t.Errorf("segment hull = %v", two)
	}
	if p := HullPerimeter([]Point{Pt(0, 0), Pt(5, 0)}); math.Abs(p-10) > 1e-9 {
		t.Errorf("segment perimeter = %v, want 10 (out and back)", p)
	}
	collinear := ConvexHull([]Point{Pt(0, 0), Pt(1, 0), Pt(2, 0), Pt(3, 0)})
	if len(collinear) != 2 {
		t.Errorf("collinear hull = %v, want endpoints", collinear)
	}
}

func TestConvexHullContainsAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(200)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			t.Fatalf("trial %d: hull too small: %v", trial, hull)
		}
		// Every point is inside or on the hull: all cross products with
		// consecutive hull edges are >= 0 (CCW orientation).
		for _, p := range pts {
			for i := range hull {
				a, b := hull[i], hull[(i+1)%len(hull)]
				cr := (b.X-a.X)*(p.Y-a.Y) - (b.Y-a.Y)*(p.X-a.X)
				if cr < -1e-7 {
					t.Fatalf("trial %d: point %v outside hull edge %v-%v", trial, p, a, b)
				}
			}
		}
	}
}

func TestHullPerimeterIsTourLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*50, rng.Float64()*50)
		}
		perim := HullPerimeter(pts)
		// Any tour over all points (identity order here) is >= perimeter.
		if tour := ClosedTourLength(pts); tour < perim-1e-9 {
			t.Fatalf("trial %d: tour %v below hull perimeter %v", trial, tour, perim)
		}
	}
}
