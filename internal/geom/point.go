// Package geom provides the 2-D geometric primitives used throughout the
// charger-scheduling library: points, distance metrics, disks, bounding
// boxes, and a spatial hash grid for fast fixed-radius neighbor queries.
//
// All coordinates are in meters, matching the paper's 100 x 100 m^2
// monitoring field.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the 2-D monitoring field, in meters.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Pt is a convenience constructor for Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist returns the Euclidean distance between p and q.
func Dist(p, q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// DistSq returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred primitive for radius comparisons.
func DistSq(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Within reports whether q lies within (or exactly on) radius r of p.
func Within(p, q Point, r float64) bool {
	if r < 0 {
		return false
	}
	return DistSq(p, q) <= r*r
}

// Add returns the component-wise sum p + q.
func (p Point) Add(q Point) Point { return Point{X: p.X + q.X, Y: p.Y + q.Y} }

// Sub returns the component-wise difference p - q.
func (p Point) Sub(q Point) Point { return Point{X: p.X - q.X, Y: p.Y - q.Y} }

// Scale returns p scaled by factor f.
func (p Point) Scale(f float64) Point { return Point{X: p.X * f, Y: p.Y * f} }

// Norm returns the Euclidean length of the vector p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Midpoint returns the midpoint of segment pq.
func Midpoint(p, q Point) Point {
	return Point{X: (p.X + q.X) / 2, Y: (p.Y + q.Y) / 2}
}

// Centroid returns the arithmetic mean of pts. It returns the origin when
// pts is empty.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	n := float64(len(pts))
	return Point{X: c.X / n, Y: c.Y / n}
}

// PathLength returns the total length of the open polyline through pts.
func PathLength(pts []Point) float64 {
	var total float64
	for i := 1; i < len(pts); i++ {
		total += Dist(pts[i-1], pts[i])
	}
	return total
}

// ClosedTourLength returns the length of the closed polyline through pts,
// i.e. PathLength plus the closing edge from the last point back to the
// first. A tour with fewer than two points has length zero.
func ClosedTourLength(pts []Point) float64 {
	if len(pts) < 2 {
		return 0
	}
	return PathLength(pts) + Dist(pts[len(pts)-1], pts[0])
}
