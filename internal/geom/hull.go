package geom

import "sort"

// ConvexHull returns the convex hull of pts in counter-clockwise order
// (Andrew's monotone chain, O(n log n)). Collinear boundary points are
// dropped. Degenerate inputs return what they can: fewer than three
// distinct points return those points.
func ConvexHull(pts []Point) []Point {
	n := len(pts)
	if n == 0 {
		return nil
	}
	sorted := append([]Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	// Dedupe.
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) < 3 {
		return uniq
	}
	cross := func(o, a, b Point) float64 {
		return (a.X-o.X)*(b.Y-o.Y) - (a.Y-o.Y)*(b.X-o.X)
	}
	var lower, upper []Point
	for _, p := range uniq {
		for len(lower) >= 2 && cross(lower[len(lower)-2], lower[len(lower)-1], p) <= 0 {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(uniq) - 1; i >= 0; i-- {
		p := uniq[i]
		for len(upper) >= 2 && cross(upper[len(upper)-2], upper[len(upper)-1], p) <= 0 {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	return hull
}

// HullPerimeter returns the perimeter of the convex hull of pts. Any
// closed tour visiting all of pts is at least this long (the hull is the
// shortest closed curve enclosing the set), which makes it a TSP travel
// lower bound.
func HullPerimeter(pts []Point) float64 {
	hull := ConvexHull(pts)
	if len(hull) < 2 {
		return 0
	}
	if len(hull) == 2 {
		return 2 * Dist(hull[0], hull[1]) // out and back
	}
	return ClosedTourLength(hull)
}
