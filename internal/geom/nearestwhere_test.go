package geom

import (
	"math"
	"math/rand"
	"testing"
)

// bruteNearestWhere is the linear-scan oracle for NearestWhere's contract:
// nearest accepted point within maxDist (inclusive), ties to the lowest
// index.
func bruteNearestWhere(pts []Point, q Point, maxDist float64, accept func(int) bool) (int, float64) {
	best, bestD2 := -1, math.Inf(1)
	maxD2 := maxDist * maxDist
	for i, p := range pts {
		if accept != nil && !accept(i) {
			continue
		}
		d2 := DistSq(q, p)
		if d2 > maxD2 {
			continue
		}
		if d2 < bestD2 {
			best, bestD2 = i, d2
		}
	}
	return best, math.Sqrt(bestD2)
}

// TestNearestWhereMatchesBrute sweeps random grids, query points (inside
// and far outside the indexed bounds), radii and random predicates
// against the linear-scan oracle.
func TestNearestWhereMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(120)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		g := NewGrid(pts, 0.5+rng.Float64()*20)
		// Random predicate over a random acceptance rate; sometimes nil.
		var accept func(int) bool
		if rng.Intn(4) > 0 {
			keep := make([]bool, n)
			rate := rng.Float64()
			for i := range keep {
				keep[i] = rng.Float64() < rate
			}
			accept = func(i int) bool { return keep[i] }
		}
		q := Pt(rng.Float64()*300-100, rng.Float64()*300-100)
		if trial%5 == 0 {
			q = Pt(rng.Float64()*1e6, -rng.Float64()*1e6) // far outside the bounds
		}
		maxDist := math.Inf(1)
		if rng.Intn(2) == 0 {
			maxDist = rng.Float64() * 150
		}
		wantI, wantD := bruteNearestWhere(pts, q, maxDist, accept)
		gotI, gotD := g.NearestWhere(q, maxDist, accept)
		if gotI != wantI {
			t.Fatalf("trial %d: NearestWhere index = %d, brute = %d (q=%v maxDist=%v)", trial, gotI, wantI, q, maxDist)
		}
		if wantI >= 0 && math.Abs(gotD-wantD) > 1e-12 {
			t.Fatalf("trial %d: distance %v, brute %v", trial, gotD, wantD)
		}
		if wantI < 0 && !math.IsInf(gotD, 1) {
			t.Fatalf("trial %d: no-hit distance should be +Inf, got %v", trial, gotD)
		}
	}
}

// TestNearestWhereBounds pins the maxDist contract: inclusive at the
// boundary, (-1, +Inf) when nothing qualifies, and NaN/negative caps
// rejected.
func TestNearestWhereBounds(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(3, 4)} // distance 5 from origin neighbor
	g := NewGrid(pts, 1)
	if i, d := g.NearestWhere(Pt(3, 0), 4, func(i int) bool { return i == 1 }); i != 1 || d != 4 {
		t.Errorf("inclusive boundary: got (%d, %v), want (1, 4)", i, d)
	}
	if i, _ := g.NearestWhere(Pt(3, 0), 3.999, func(i int) bool { return i == 1 }); i != -1 {
		t.Errorf("beyond cap matched: %d", i)
	}
	if i, d := g.NearestWhere(Pt(0, 0), math.Inf(1), func(int) bool { return false }); i != -1 || !math.IsInf(d, 1) {
		t.Errorf("all-rejecting predicate: got (%d, %v)", i, d)
	}
	if i, _ := g.NearestWhere(Pt(0, 0), math.NaN(), nil); i != -1 {
		t.Errorf("NaN maxDist matched %d", i)
	}
	if i, _ := g.NearestWhere(Pt(0, 0), -1, nil); i != -1 {
		t.Errorf("negative maxDist matched %d", i)
	}
}

// TestNearestWhereTiesLowestIndex: equidistant candidates — even across
// different grid cells — must resolve to the lowest index. The sparse
// matching kernel's determinism (and its brute-force fuzz oracle) depend
// on this.
func TestNearestWhereTiesLowestIndex(t *testing.T) {
	// Four points on a circle around the query, listed in scrambled cell
	// order; small cells force them into distinct cells.
	pts := []Point{Pt(10, 15), Pt(15, 10), Pt(10, 5), Pt(5, 10)}
	g := NewGrid(pts, 0.9)
	if i, d := g.NearestWhere(Pt(10, 10), math.Inf(1), nil); i != 0 || math.Abs(d-5) > 1e-12 {
		t.Errorf("tie resolved to %d (d=%v), want 0", i, d)
	}
	// Excluding index 0 moves the winner to the next-lowest.
	if i, _ := g.NearestWhere(Pt(10, 10), math.Inf(1), func(i int) bool { return i != 0 }); i != 1 {
		t.Errorf("tie with 0 excluded resolved to %d, want 1", i)
	}
	// Coincident duplicates tie at distance zero.
	dup := []Point{Pt(2, 2), Pt(2, 2), Pt(2, 2)}
	gd := NewGrid(dup, 1)
	if i, d := gd.NearestWhere(Pt(2, 2), 0, nil); i != 0 || d != 0 {
		t.Errorf("coincident tie: got (%d, %v), want (0, 0)", i, d)
	}
}

// TestNearestDelegates: Nearest must remain exactly NearestWhere with no
// cap and no predicate.
func TestNearestDelegates(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := make([]Point, 64)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*50, rng.Float64()*50)
	}
	g := NewGrid(pts, 3)
	for trial := 0; trial < 20; trial++ {
		q := Pt(rng.Float64()*70-10, rng.Float64()*70-10)
		i1, d1 := g.Nearest(q)
		i2, d2 := g.NearestWhere(q, math.Inf(1), nil)
		if i1 != i2 || d1 != d2 {
			t.Fatalf("Nearest (%d, %v) != NearestWhere (%d, %v)", i1, d1, i2, d2)
		}
	}
}
