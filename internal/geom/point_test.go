package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Pt(1, 1), Pt(1, 1), 0},
		{"unit x", Pt(0, 0), Pt(1, 0), 1},
		{"unit y", Pt(0, 0), Pt(0, 1), 1},
		{"3-4-5", Pt(0, 0), Pt(3, 4), 5},
		{"negative coords", Pt(-3, -4), Pt(0, 0), 5},
		{"diagonal", Pt(1, 2), Pt(4, 6), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dist(tt.p, tt.q); !almostEq(got, tt.want) {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
		})
	}
}

func TestDistSqConsistent(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		// Clamp to a sane range to avoid overflow artifacts in Hypot vs
		// the squared form.
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		p := Pt(clamp(ax), clamp(ay))
		q := Pt(clamp(bx), clamp(by))
		d := Dist(p, q)
		return math.Abs(d*d-DistSq(p, q)) <= 1e-6*(1+d*d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistSymmetryAndTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		clamp := func(v float64) float64 { return math.Mod(v, 1e4) }
		a := Pt(clamp(ax), clamp(ay))
		b := Pt(clamp(bx), clamp(by))
		c := Pt(clamp(cx), clamp(cy))
		if !almostEq(Dist(a, b), Dist(b, a)) {
			return false
		}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWithin(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		r    float64
		want bool
	}{
		{"inside", Pt(0, 0), Pt(1, 1), 2, true},
		{"on boundary", Pt(0, 0), Pt(3, 4), 5, true},
		{"outside", Pt(0, 0), Pt(3, 4), 4.9, false},
		{"zero radius same point", Pt(2, 2), Pt(2, 2), 0, true},
		{"negative radius", Pt(0, 0), Pt(0, 0), -1, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Within(tt.p, tt.q, tt.r); got != tt.want {
				t.Errorf("Within(%v, %v, %v) = %v, want %v", tt.p, tt.q, tt.r, got, tt.want)
			}
		})
	}
}

func TestVectorOps(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, 5)
	if got := p.Add(q); got != Pt(4, 7) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); got != Pt(2, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := Pt(3, 4).Norm(); !almostEq(got, 5) {
		t.Errorf("Norm = %v", got)
	}
	if got := Midpoint(p, q); got != Pt(2, 3.5) {
		t.Errorf("Midpoint = %v", got)
	}
}

func TestCentroid(t *testing.T) {
	if got := Centroid(nil); got != (Point{}) {
		t.Errorf("Centroid(nil) = %v, want origin", got)
	}
	pts := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if got := Centroid(pts); got != Pt(1, 1) {
		t.Errorf("Centroid = %v, want (1,1)", got)
	}
}

func TestPathAndTourLength(t *testing.T) {
	square := []Point{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}
	if got := PathLength(square); !almostEq(got, 3) {
		t.Errorf("PathLength = %v, want 3", got)
	}
	if got := ClosedTourLength(square); !almostEq(got, 4) {
		t.Errorf("ClosedTourLength = %v, want 4", got)
	}
	if got := ClosedTourLength(nil); got != 0 {
		t.Errorf("ClosedTourLength(nil) = %v, want 0", got)
	}
	if got := ClosedTourLength([]Point{Pt(5, 5)}); got != 0 {
		t.Errorf("ClosedTourLength(single) = %v, want 0", got)
	}
}

func TestRect(t *testing.T) {
	r := Square(100)
	if r.Width() != 100 || r.Height() != 100 || r.Area() != 10000 {
		t.Fatalf("Square(100) dims wrong: %v", r)
	}
	if c := r.Center(); c != Pt(50, 50) {
		t.Errorf("Center = %v, want (50,50)", c)
	}
	if !r.Contains(Pt(0, 0)) || !r.Contains(Pt(100, 100)) || r.Contains(Pt(100.01, 50)) {
		t.Error("Contains boundary behavior wrong")
	}
	if got := r.Clamp(Pt(-5, 120)); got != Pt(0, 100) {
		t.Errorf("Clamp = %v, want (0,100)", got)
	}
}

func TestBounds(t *testing.T) {
	if got := Bounds(nil); got != (Rect{}) {
		t.Errorf("Bounds(nil) = %v", got)
	}
	pts := []Point{Pt(3, 7), Pt(-1, 2), Pt(5, -4)}
	got := Bounds(pts)
	want := Rect{Min: Pt(-1, -4), Max: Pt(5, 7)}
	if got != want {
		t.Errorf("Bounds = %v, want %v", got, want)
	}
	for _, p := range pts {
		if !got.Contains(p) {
			t.Errorf("Bounds does not contain %v", p)
		}
	}
}
