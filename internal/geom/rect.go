package geom

import "fmt"

// Rect is an axis-aligned rectangle, used to describe monitoring fields and
// bounding boxes. Min is the lower-left corner and Max the upper-right.
type Rect struct {
	Min Point `json:"min"`
	Max Point `json:"max"`
}

// Square returns the side x side rectangle anchored at the origin, e.g.
// Square(100) is the paper's 100 x 100 m^2 monitoring field.
func Square(side float64) Rect {
	return Rect{Min: Point{}, Max: Point{X: side, Y: side}}
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the center point of r. The paper co-locates the base
// station and the MCV depot at the field center.
func (r Rect) Center() Point {
	return Point{X: (r.Min.X + r.Max.X) / 2, Y: (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside r (inclusive of the boundary).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Point) Point {
	if p.X < r.Min.X {
		p.X = r.Min.X
	}
	if p.X > r.Max.X {
		p.X = r.Max.X
	}
	if p.Y < r.Min.Y {
		p.Y = r.Min.Y
	}
	if p.Y > r.Max.Y {
		p.Y = r.Max.Y
	}
	return p
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%s - %s]", r.Min, r.Max)
}

// Bounds returns the tightest rectangle containing all pts. It returns the
// zero rectangle when pts is empty.
func Bounds(pts []Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		if p.X < r.Min.X {
			r.Min.X = p.X
		}
		if p.Y < r.Min.Y {
			r.Min.Y = p.Y
		}
		if p.X > r.Max.X {
			r.Max.X = p.X
		}
		if p.Y > r.Max.Y {
			r.Max.Y = p.Y
		}
	}
	return r
}
