package render

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
)

// Gantt writes an SVG timeline of a schedule: one lane per charger, with
// travel legs drawn as thin gray bars and charging intervals as colored
// blocks (annotated with the stop's covered-sensor count). Waits inserted
// by the conflict-aware executor appear as gaps between a travel leg and
// its charging block. width is the image width in pixels (min 300).
func Gantt(w io.Writer, in *core.Instance, s *core.Schedule, width int) error {
	if width < 300 {
		width = 300
	}
	const (
		laneH   = 46
		barH    = 18
		marginL = 70
		marginR = 20
		marginT = 30
	)
	horizon := s.Longest
	if horizon <= 0 {
		horizon = 1
	}
	plotW := float64(width - marginL - marginR)
	px := func(t float64) float64 { return marginL + t/horizon*plotW }
	height := marginT + laneH*len(s.Tours) + 40

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n",
		width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="13" font-weight="bold">charger activity (longest delay %.2f h)</text>`+"\n",
		marginL, s.Longest/3600)

	for k, tour := range s.Tours {
		laneY := float64(marginT + k*laneH)
		barY := laneY + (laneH-barH)/2
		color := palette[k%len(palette)]
		fmt.Fprintf(&b, `<text x="8" y="%.1f" font-size="11">MCV %d</text>`+"\n", barY+barH-5, k+1)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#eee"/>`+"\n",
			marginL, barY+barH/2, px(horizon), barY+barH/2)
		pos := in.Depot
		depart := 0.0
		for _, stop := range tour.Stops {
			stopPos := in.Requests[stop.Node].Pos
			travel := in.Travel(pos, stopPos)
			// Travel bar from departure; the charger may then wait until
			// stop.Arrive (conflict avoidance) — that gap stays empty.
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.2f" height="%d" fill="#bbb"/>`+"\n",
				px(depart), barY+5, maxf(px(depart+travel)-px(depart), 0.5), barH-10)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.2f" height="%d" fill="%s"><title>node %d: %d sensors, %.0f s</title></rect>`+"\n",
				px(stop.Arrive), barY, maxf(px(stop.Finish())-px(stop.Arrive), 0.8), barH, color,
				stop.Node, len(stop.Covers), stop.Duration)
			pos = stopPos
			depart = stop.Finish()
		}
		if len(tour.Stops) > 0 {
			back := in.Travel(pos, in.Depot)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.2f" height="%d" fill="#bbb"/>`+"\n",
				px(depart), barY+5, maxf(px(depart+back)-px(depart), 0.5), barH-10)
		}
	}
	// Time axis in hours.
	axisY := float64(marginT + laneH*len(s.Tours) + 12)
	fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginL, axisY, px(horizon), axisY)
	for i := 0; i <= 6; i++ {
		t := horizon * float64(i) / 6
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
			px(t), axisY, px(t), axisY+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle">%.1f h</text>`+"\n",
			px(t), axisY+16, t/3600)
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
