package render

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

func TestSVGBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := &core.Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: 2}
	for i := 0; i < 30; i++ {
		in.Requests = append(in.Requests, core.Request{
			Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
			Duration: 3600,
		})
	}
	s, err := core.ApproPlanner{}.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := SVG(&sb, in, s, 600); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"<svg", "</svg>", "depot", "<path", "<circle"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestSVGEmptySchedule(t *testing.T) {
	in := &core.Instance{Depot: geom.Pt(0, 0), Gamma: 2.7, Speed: 1, K: 1}
	s := &core.Schedule{Tours: []core.Tour{{}}}
	var sb strings.Builder
	if err := SVG(&sb, in, s, 50); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<svg") {
		t.Error("no SVG emitted for empty schedule")
	}
}

func TestGantt(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := &core.Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: 2}
	for i := 0; i < 40; i++ {
		in.Requests = append(in.Requests, core.Request{
			Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
			Duration: 1800,
		})
	}
	s, err := core.ApproPlanner{}.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Gantt(&sb, in, s, 900); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"<svg", "</svg>", "MCV 1", "MCV 2", "charger activity", "<title>"} {
		if !strings.Contains(out, want) {
			t.Errorf("Gantt missing %q", want)
		}
	}
}

func TestGanttEmpty(t *testing.T) {
	in := &core.Instance{Depot: geom.Pt(0, 0), Gamma: 2.7, Speed: 1, K: 1}
	s := &core.Schedule{Tours: []core.Tour{{}}}
	var sb strings.Builder
	if err := Gantt(&sb, in, s, 100); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<svg") {
		t.Error("no SVG for empty schedule")
	}
}
