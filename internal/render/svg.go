// Package render draws planned charging schedules as standalone SVG
// images: sensors as dots, sojourn stops as circles with their charging
// coverage disks, and each charger's closed tour as a colored polyline
// through the depot. Used by cmd/wrsn-plan for visual inspection.
package render

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/geom"
)

// palette holds visually distinct tour colors; tours beyond its length
// cycle.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#e377c2", "#17becf",
}

// SVG writes an SVG rendering of the schedule over the instance to w.
// size is the output image's width/height in pixels (min 100).
func SVG(w io.Writer, in *core.Instance, s *core.Schedule, size int) error {
	if size < 100 {
		size = 100
	}
	pts := in.Positions()
	bounds := geom.Bounds(append(append([]geom.Point{}, pts...), in.Depot))
	// Pad 5% plus the charging radius so coverage disks fit.
	pad := 0.05*maxf(bounds.Width(), bounds.Height()) + in.Gamma
	bounds.Min.X -= pad
	bounds.Min.Y -= pad
	bounds.Max.X += pad
	bounds.Max.Y += pad
	span := maxf(bounds.Width(), bounds.Height())
	if span <= 0 {
		span = 1
	}
	scale := float64(size) / span
	// SVG y grows downward; flip.
	px := func(p geom.Point) (float64, float64) {
		return (p.X - bounds.Min.X) * scale, float64(size) - (p.Y-bounds.Min.Y)*scale
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		size, size, size, size)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")

	// Sensors.
	for _, p := range pts {
		x, y := px(p)
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="1.5" fill="#999"/>`+"\n", x, y)
	}
	// Tours: coverage disks, polyline, stops.
	for k, tour := range s.Tours {
		if len(tour.Stops) == 0 {
			continue
		}
		color := palette[k%len(palette)]
		var path strings.Builder
		dx, dy := px(in.Depot)
		fmt.Fprintf(&path, "M %.1f %.1f", dx, dy)
		for _, stop := range tour.Stops {
			x, y := px(in.Requests[stop.Node].Pos)
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" fill-opacity="0.12" stroke="%s" stroke-opacity="0.4"/>`+"\n",
				x, y, in.Gamma*scale, color, color)
			fmt.Fprintf(&path, " L %.1f %.1f", x, y)
		}
		fmt.Fprintf(&path, " L %.1f %.1f", dx, dy)
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n", path.String(), color)
		for si, stop := range tour.Stops {
			x, y := px(in.Requests[stop.Node].Pos)
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", x, y, color)
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="8" fill="%s">%d.%d</text>`+"\n",
				x+4, y-4, color, k+1, si+1)
		}
	}
	// Depot marker.
	dx, dy := px(in.Depot)
	fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="8" height="8" fill="black"/>`+"\n", dx-4, dy-4)
	fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10">depot</text>`+"\n", dx+6, dy+4)
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
