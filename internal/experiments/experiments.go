// Package experiments regenerates every figure of the paper's evaluation
// (Section VI): Figures 3, 4 and 5, each with an (a) panel — average
// longest tour duration — and a (b) panel — average dead duration per
// sensor over the one-year monitoring period. It also defines the
// ablation experiments called out in DESIGN.md.
//
// Each experiment sweeps one parameter, simulates `Instances` independent
// networks per sweep point for every algorithm (the paper uses 100; the
// default here is smaller for tractability and configurable), and reports
// the mean across instances, exactly like the paper's figures.
package experiments

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/ktour"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/plancache"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Instances is the number of random networks per sweep point
	// (paper: 100). 0 means 10.
	Instances int
	// Seed offsets the per-instance generator seeds, for variance
	// studies. Runs with equal seeds are fully reproducible.
	Seed int64
	// Duration is the simulated monitoring period; 0 means one year.
	Duration float64
	// BatchWindow is the dispatch batching window; 0 means the
	// harness default (24 h).
	BatchWindow float64
	// Workers bounds the number of concurrent simulations; 0 means
	// GOMAXPROCS. The figure tables are byte-identical at any worker
	// count: cells are seeded by their grid position and merged by index
	// (see internal/par), never by completion order.
	Workers int
	// PlanCache, when true, memoizes planner outputs by (planner,
	// instance) across the sweep's simulation cells, so replans of an
	// identical request set are served from a bounded LRU instead of
	// re-running the planner. Results are unchanged — a hit returns a deep
	// copy of exactly what the planner produced cold.
	PlanCache bool
	// Verify runs the feasibility verifier inside every simulation
	// round and records violations.
	Verify bool
	// Progress, when non-nil, receives a line per completed cell. The
	// harness serializes the calls (through an obs.Progress sink), so
	// the function may be a plain closure over unshared state even
	// though cells complete on concurrent workers.
	Progress func(msg string)
	// Faults, when non-nil, is the fault-plan template applied to every
	// simulation cell. A zero template Seed is replaced by the cell's
	// instance seed, so instances see independent fault trajectories
	// while remaining reproducible. Figure "F" supplies its own per-point
	// plans and ignores this field.
	Faults *fault.Plan
}

func (o Options) withDefaults() Options {
	if o.Instances <= 0 {
		o.Instances = 10
	}
	if o.Duration <= 0 {
		o.Duration = sim.Year
	}
	if o.BatchWindow <= 0 {
		o.BatchWindow = sim.DefaultBatchWindow
	}
	o.Workers = par.Size(o.Workers)
	return o
}

// Series is one algorithm's curve over the sweep.
type Series struct {
	// Label is the algorithm name.
	Label string `json:"label"`
	// Y has one mean value per sweep point (same order as Figure.X).
	Y []float64 `json:"y"`
	// Std has the matching standard deviations across instances.
	Std []float64 `json:"std"`
}

// Figure is a regenerated evaluation figure.
type Figure struct {
	// ID is the experiment id, e.g. "3a".
	ID string `json:"id"`
	// Title describes the experiment.
	Title string `json:"title"`
	// XLabel and YLabel name the axes, with units.
	XLabel string `json:"x_label"`
	YLabel string `json:"y_label"`
	// X holds the sweep points.
	X []float64 `json:"x"`
	// Series holds one curve per algorithm, paper order.
	Series []Series `json:"series"`
	// Violations accumulates feasibility violations when verification is
	// on; it must be zero.
	Violations int `json:"violations"`
}

// point identifies one simulation cell of the sweep grid.
type point struct {
	xi, pi, inst int
}

type cellResult struct {
	point
	longestH  float64 // hours
	deadMin   float64 // minutes
	violation int
}

// sweepSpec describes a parameter sweep.
type sweepSpec struct {
	id, title, xlabel string
	xs                []float64
	// setup returns the workload parameters and charger count for a
	// sweep value.
	setup func(x float64) (workload.Params, int)
	// faults, when non-nil, returns the fault plan for a sweep value and
	// cell seed (overriding Options.Faults). Figure "F" sweeps the MCV
	// breakdown rate through it.
	faults func(x float64, seed int64) *fault.Plan
}

// planners returns the paper's five algorithms in its presentation
// order, resolved through the planner registry. The figure harness
// sweeps exactly this set — registered extensions (BiLevel) enter the
// evaluation through the "contender" ablation instead, keeping the
// regenerated figures faithful to the paper's five curves.
func planners() []core.Planner {
	return registry.PaperPlanners()
}

// PlannerNames returns the algorithm names in the paper's order.
func PlannerNames() []string {
	return registry.PaperNames()
}

func figure3() sweepSpec {
	return sweepSpec{
		id:     "3",
		title:  "varying the network size n (K = 2)",
		xlabel: "network size n",
		xs:     []float64{200, 400, 600, 800, 1000, 1200},
		setup: func(x float64) (workload.Params, int) {
			return workload.NewParams(int(x)), 2
		},
	}
}

func figure4() sweepSpec {
	return sweepSpec{
		id:     "4",
		title:  "varying the maximum data rate b_max (n = 1000, K = 2)",
		xlabel: "b_max (kbps)",
		xs:     []float64{10, 20, 30, 40, 50},
		setup: func(x float64) (workload.Params, int) {
			p := workload.NewParams(1000)
			p.BMaxBps = x * 1e3
			return p, 2
		},
	}
}

func figure5() sweepSpec {
	return sweepSpec{
		id:     "5",
		title:  "varying the number of chargers K (n = 1000)",
		xlabel: "number of mobile chargers K",
		xs:     []float64{1, 2, 3, 4, 5},
		setup: func(x float64) (workload.Params, int) {
			return workload.NewParams(1000), int(x)
		},
	}
}

// figureClustered is not in the paper: it sweeps the deployment's cluster
// count at n = 1000, K = 2 to show that multi-node charging's advantage
// grows with spatial density (clustered deployments are where a single
// sojourn location covers many sensors).
func figureClustered() sweepSpec {
	return sweepSpec{
		id:     "C",
		title:  "varying deployment clustering (n = 1000, K = 2; 0 = uniform)",
		xlabel: "number of deployment clusters",
		xs:     []float64{0, 32, 16, 8, 4},
		setup: func(x float64) (workload.Params, int) {
			p := workload.NewParams(1000)
			p.Clusters = int(x)
			p.ClusterStd = 6
			return p, 2
		},
	}
}

// figureFaults is not in the paper: it sweeps the per-tour MCV breakdown
// probability at n = 600, K = 3 under mild delay noise, measuring how
// gracefully each algorithm's schedules degrade when the online recovery
// engine redistributes broken chargers' tours. At high rates the fleet
// can be lost mid-year; such cells contribute their partial (degraded)
// metrics, exactly what the figure is about.
func figureFaults() sweepSpec {
	return sweepSpec{
		id:     "F",
		title:  "varying the MCV breakdown probability (n = 600, K = 3)",
		xlabel: "MCV breakdown probability per tour",
		xs:     []float64{0, 0.05, 0.1, 0.2},
		setup: func(x float64) (workload.Params, int) {
			return workload.NewParams(600), 3
		},
		faults: func(x float64, seed int64) *fault.Plan {
			return &fault.Plan{
				Seed:          seed,
				MCVFailRate:   x,
				TransientFrac: 0.5,
				RepairTime:    1800,
				TravelNoise:   0.05,
				ChargeNoise:   0.05,
			}
		},
	}
}

// Run executes the sweep behind the given figure pair and returns both
// panels: (a) average longest tour duration in hours and (b) average dead
// duration per sensor in minutes. id must be "3", "4" or "5" (the paper's
// figures), "C" (this reproduction's clustering extension) or "F" (the
// MCV breakdown-rate sweep).
//
// Run honors ctx: cancellation stops dispatching new cells, interrupts
// in-flight simulations, and returns the panels aggregated over the cells
// that did complete, together with an error wrapping ctx.Err() — so a
// deadline yields partial figures rather than nothing. Progress calls are
// serialized, and when ctx carries an obs.Tracer the per-cell planner and
// verifier stages accumulate on it along with an experiments.cells
// counter.
func Run(ctx context.Context, id string, opt Options) (a, b *Figure, err error) {
	var spec sweepSpec
	switch id {
	case "3":
		spec = figure3()
	case "4":
		spec = figure4()
	case "5":
		spec = figure5()
	case "C", "c":
		spec = figureClustered()
	case "F", "f":
		spec = figureFaults()
	default:
		return nil, nil, fmt.Errorf("experiments: unknown figure %q (want 3, 4, 5, C or F)", id)
	}
	return runSweep(ctx, spec, opt)
}

func runSweep(ctx context.Context, spec sweepSpec, opt Options) (a, b *Figure, err error) {
	opt = opt.withDefaults()
	ps := planners()
	if opt.PlanCache {
		// One cache for the whole sweep. Keys include the planner name, so
		// the five algorithms never cross-contaminate; hits arise when the
		// same planner replans an identical request set.
		cache := plancache.New(0)
		for i := range ps {
			ps[i] = plancache.Wrap(ps[i], cache)
		}
	}
	tr := obs.FromContext(ctx)
	progress := obs.NewProgress(opt.Progress)

	var cells []point
	for xi := range spec.xs {
		for pi := range ps {
			for inst := 0; inst < opt.Instances; inst++ {
				cells = append(cells, point{xi: xi, pi: pi, inst: inst})
			}
		}
	}
	// Cell results land in slots indexed by grid position and each cell's
	// seed depends only on that position, so the aggregation below — and
	// hence the figure tables — is byte-identical at any worker count.
	// done[ci] marks the cells whose results may enter the aggregation
	// (all of them on a clean run, the completed subset on a cancelled
	// one); it is written by exactly one worker and read only after
	// par.Do returns.
	results := make([]cellResult, len(cells))
	done := make([]bool, len(cells))
	doErr := par.Do(ctx, len(cells), opt.Workers, func(ctx context.Context, ci int) error {
		c := cells[ci]
		res, cerr := runCell(ctx, spec, opt, ps[c.pi], c)
		if cerr != nil {
			return cerr
		}
		results[ci] = *res
		done[ci] = true
		tr.Add("experiments.cells", 1)
		progress.Emit("fig%s %s=%v %s instance %d: longest %.1f h, dead %.1f min",
			spec.id, spec.xlabel, spec.xs[c.xi], ps[c.pi].Name(), c.inst,
			res.longestH, res.deadMin)
		return nil
	})
	if doErr != nil && ctx.Err() == nil {
		return nil, nil, doErr
	}

	// Aggregate into the two panels.
	a = &Figure{
		ID:     spec.id + "a",
		Title:  "Average longest tour duration, " + spec.title,
		XLabel: spec.xlabel,
		YLabel: "avg longest tour duration (h)",
		X:      spec.xs,
	}
	b = &Figure{
		ID:     spec.id + "b",
		Title:  "Average dead duration per sensor during T_M, " + spec.title,
		XLabel: spec.xlabel,
		YLabel: "avg dead duration per sensor (min)",
		X:      spec.xs,
	}
	for pi, p := range ps {
		sa := Series{Label: p.Name()}
		sb := Series{Label: p.Name()}
		for xi := range spec.xs {
			var accA, accB stats.Accumulator
			for ci, r := range results {
				if !done[ci] {
					continue // skipped by cancellation; keep it out of the means
				}
				if r.xi == xi && r.pi == pi {
					accA.Add(r.longestH)
					accB.Add(r.deadMin)
					a.Violations += r.violation
				}
			}
			sa.Y = append(sa.Y, accA.Mean())
			sa.Std = append(sa.Std, accA.StdDev())
			sb.Y = append(sb.Y, accB.Mean())
			sb.Std = append(sb.Std, accB.StdDev())
		}
		a.Series = append(a.Series, sa)
		b.Series = append(b.Series, sb)
	}
	b.Violations = a.Violations
	if cerr := ctx.Err(); cerr != nil {
		return a, b, fmt.Errorf("experiments: fig%s cancelled: %w", spec.id, cerr)
	}
	return a, b, nil
}

func runCell(ctx context.Context, spec sweepSpec, opt Options, planner core.Planner, c point) (*cellResult, error) {
	params, k := spec.setup(spec.xs[c.xi])
	// Instance seeds depend only on the sweep point and instance index,
	// so every algorithm sees the same 100 (or Instances) networks —
	// exactly the paper's protocol.
	seed := opt.Seed + int64(c.xi)*1009 + int64(c.inst) + 1
	nw, err := workload.Generate(params, seed)
	if err != nil {
		return nil, err
	}
	cfg := sim.Config{
		Duration:    opt.Duration,
		BatchWindow: opt.BatchWindow,
		Verify:      opt.Verify,
	}
	switch {
	case spec.faults != nil:
		cfg.Faults = spec.faults(spec.xs[c.xi], seed)
	case opt.Faults != nil:
		fp := *opt.Faults
		if fp.Seed == 0 {
			fp.Seed = seed
		}
		cfg.Faults = &fp
	}
	res, err := sim.Run(ctx, nw, k, planner, cfg)
	if err != nil {
		// A fleet lost to injected breakdowns is a valid (maximally
		// degraded) outcome, not a cell failure: its partial metrics —
		// with dead time accrued to the horizon — enter the figure.
		if !(errors.Is(err, fault.ErrFleetLost) && res != nil) {
			return nil, fmt.Errorf("experiments: fig%s x=%v %s: %w", spec.id, spec.xs[c.xi], planner.Name(), err)
		}
	}
	return &cellResult{
		point:     c,
		longestH:  res.AvgLongest / 3600,
		deadMin:   res.AvgDeadPerSensor / 60,
		violation: res.Violations,
	}, nil
}

// Ablation identifiers. See RunAblation.
const (
	// AblationMIS compares MIS selection strategies inside Appro.
	AblationMIS = "mis"
	// AblationInsertion compares the paper's latest-finish-time-sorted
	// insertion order against arbitrary order.
	AblationInsertion = "insertion"
	// AblationTourBuilder compares grand-tour constructions inside the
	// K-minMax subroutine.
	AblationTourBuilder = "tourbuilder"
	// AblationDispatch compares the paper's synchronized round-based
	// dispatch against independent per-charger dispatch over a full
	// simulated year (unlike the other ablations, which plan single
	// rounds).
	AblationDispatch = "dispatch"
	// AblationPartial sweeps the partial-charging level (the model of the
	// paper's reference [15]) over year-long simulations.
	AblationPartial = "partial"
	// AblationContender pits Algorithm Appro against the registered
	// bi-level metaheuristic contender (and its seed/restart variants)
	// on dense single rounds — the judge for extensions that are not
	// part of the paper's five figure curves.
	AblationContender = "contender"
)

// AblationResult is one variant's aggregate outcome for a single dense
// planning round at a fixed request-set size.
type AblationResult struct {
	// Variant names the configuration.
	Variant string
	// N is the request-set size the round plans for.
	N int
	// LongestH is the mean longest tour delay in hours.
	LongestH float64
	// Stops is the mean number of sojourn stops across the K tours.
	Stops float64
	// WaitS is the mean total conflict-avoidance wait in seconds.
	WaitS float64
}

// ablationSizes are the request densities the ablations plan at. Multi-node
// consolidation — and hence the MIS/insertion design choices — only binds
// on dense request sets, so ablations plan single rounds at these sizes
// rather than running the (sparser-batch) year-long simulation.
var ablationSizes = []int{300, 600, 1200}

// RunAblation plans dense single rounds (K = 2, paper field parameters)
// under every variant of the named ablation and returns one row per
// (variant, request-set size) pair. The "dispatch" ablation instead runs
// year-long simulations (one per network size in ablationSizes) comparing
// the two dispatch protocols; its LongestH column is then the mean
// longest tour duration and WaitS the mean dead time per sensor in
// seconds.
//
// RunAblation honors ctx like Run does: on cancellation it returns the
// rows accumulated so far together with an error wrapping ctx.Err().
func RunAblation(ctx context.Context, id string, opt Options) ([]AblationResult, error) {
	opt = opt.withDefaults()
	switch id {
	case AblationDispatch:
		return runDispatchAblation(ctx, opt)
	case AblationPartial:
		return runPartialAblation(ctx, opt)
	}
	type variant struct {
		name    string
		planner core.Planner
	}
	// Every variant resolves through the planner registry, like the
	// figure harness and the serving layer.
	appro := func(opts core.Options) core.Planner { return registry.MustNew("Appro", &opts) }
	var variants []variant
	switch id {
	case AblationMIS:
		for _, ord := range []graph.MISOrder{
			graph.MISMaxDegree, graph.MISMinDegree, graph.MISLexicographic, graph.MISRandom,
		} {
			variants = append(variants, variant{name: "mis-" + ord.String(), planner: appro(core.Options{MISOrder: ord})})
		}
	case AblationInsertion:
		variants = append(variants,
			variant{name: "sorted-by-finish-time", planner: appro(core.Options{})},
			variant{name: "arbitrary-order", planner: appro(core.Options{NoSortByFinishTime: true})},
		)
	case AblationTourBuilder:
		for _, b := range []ktour.Builder{
			ktour.BuilderChristofides, ktour.BuilderMST, ktour.BuilderNearestNeighbor,
		} {
			variants = append(variants, variant{name: "tour-" + b.String(), planner: appro(core.Options{TourBuilder: b})})
		}
	case AblationContender:
		variants = append(variants,
			variant{name: "appro", planner: appro(core.Options{})},
			variant{name: "bilevel-seed-1", planner: registry.MustNew("BiLevel", &core.Options{Seed: 1})},
			variant{name: "bilevel-seed-2", planner: registry.MustNew("BiLevel", &core.Options{Seed: 2})},
			variant{name: "bilevel-restarts-8", planner: registry.MustNew("BiLevel", &core.Options{Seed: 1, TourRestarts: 8})},
		)
	default:
		return nil, fmt.Errorf("experiments: unknown ablation %q", id)
	}

	progress := obs.NewProgress(opt.Progress)
	var out []AblationResult
	for _, v := range variants {
		for _, n := range ablationSizes {
			var accL, accS, accW stats.Accumulator
			for inst := 0; inst < opt.Instances; inst++ {
				if err := ctx.Err(); err != nil {
					return out, fmt.Errorf("experiments: ablation %s: %w", id, err)
				}
				in := denseRound(n, opt.Seed+int64(inst)+1)
				s, err := v.planner.Plan(ctx, in)
				if err != nil {
					if cerr := ctx.Err(); cerr != nil {
						return out, fmt.Errorf("experiments: ablation %s: %w", id, cerr)
					}
					return nil, fmt.Errorf("experiments: ablation %s: %w", v.name, err)
				}
				if opt.Verify {
					if vs := core.Verify(in, s); len(vs) > 0 {
						return nil, fmt.Errorf("experiments: ablation %s n=%d: infeasible: %v", v.name, n, vs[0])
					}
				}
				accL.Add(s.Longest / 3600)
				accS.Add(float64(s.NumStops()))
				accW.Add(s.WaitTime)
			}
			out = append(out, AblationResult{
				Variant:  v.name,
				N:        n,
				LongestH: accL.Mean(),
				Stops:    accS.Mean(),
				WaitS:    accW.Mean(),
			})
		}
		progress.Emit("ablation %s: %s done", id, v.name)
	}
	return out, nil
}

// runDispatchAblation simulates a year under both dispatch protocols with
// Appro, per network size.
func runDispatchAblation(ctx context.Context, opt Options) ([]AblationResult, error) {
	modes := []sim.DispatchMode{sim.DispatchSynchronized, sim.DispatchIndependent}
	progress := obs.NewProgress(opt.Progress)
	var out []AblationResult
	for _, mode := range modes {
		for _, n := range ablationSizes {
			var accL, accD, accS stats.Accumulator
			for inst := 0; inst < opt.Instances; inst++ {
				if err := ctx.Err(); err != nil {
					return out, fmt.Errorf("experiments: ablation dispatch: %w", err)
				}
				nw, err := workload.Generate(workload.NewParams(n), opt.Seed+int64(inst)+1)
				if err != nil {
					return nil, err
				}
				res, err := sim.Run(ctx, nw, 2, core.ApproPlanner{}, sim.Config{
					Duration:    opt.Duration,
					BatchWindow: opt.BatchWindow,
					Dispatch:    mode,
					Verify:      opt.Verify,
				})
				if err != nil {
					if cerr := ctx.Err(); cerr != nil {
						return out, fmt.Errorf("experiments: ablation dispatch: %w", cerr)
					}
					return nil, fmt.Errorf("experiments: dispatch ablation %v n=%d: %w", mode, n, err)
				}
				if opt.Verify && res.Violations > 0 {
					return nil, fmt.Errorf("experiments: dispatch ablation %v n=%d: %d violations", mode, n, res.Violations)
				}
				accL.Add(res.AvgLongest / 3600)
				accD.Add(res.AvgDeadPerSensor)
				totalStops := 0
				for _, r := range res.Rounds {
					totalStops += r.Stops
				}
				if len(res.Rounds) > 0 {
					accS.Add(float64(totalStops) / float64(len(res.Rounds)))
				}
			}
			out = append(out, AblationResult{
				Variant:  "dispatch-" + mode.String(),
				N:        n,
				LongestH: accL.Mean(),
				Stops:    accS.Mean(),
				WaitS:    accD.Mean(),
			})
		}
		progress.Emit("ablation dispatch: %v done", mode)
	}
	return out, nil
}

// runPartialAblation simulates a year under Appro at n = 1000, K = 2 for
// several partial-charging levels. LongestH is the mean longest tour
// duration, WaitS the mean dead time per sensor in seconds, and N encodes
// the charging level in percent.
func runPartialAblation(ctx context.Context, opt Options) ([]AblationResult, error) {
	levels := []float64{1.0, 0.9, 0.8, 0.7, 0.6, 0.5}
	progress := obs.NewProgress(opt.Progress)
	var out []AblationResult
	for _, level := range levels {
		var accL, accD, accS stats.Accumulator
		for inst := 0; inst < opt.Instances; inst++ {
			if err := ctx.Err(); err != nil {
				return out, fmt.Errorf("experiments: ablation partial: %w", err)
			}
			nw, err := workload.Generate(workload.NewParams(1000), opt.Seed+int64(inst)+1)
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(ctx, nw, 2, core.ApproPlanner{}, sim.Config{
				Duration:    opt.Duration,
				BatchWindow: opt.BatchWindow,
				ChargeLevel: level,
				Verify:      opt.Verify,
			})
			if err != nil {
				if cerr := ctx.Err(); cerr != nil {
					return out, fmt.Errorf("experiments: ablation partial: %w", cerr)
				}
				return nil, fmt.Errorf("experiments: partial ablation level=%v: %w", level, err)
			}
			accL.Add(res.AvgLongest / 3600)
			accD.Add(res.AvgDeadPerSensor)
			totalStops := 0
			for _, r := range res.Rounds {
				totalStops += r.Stops
			}
			if len(res.Rounds) > 0 {
				accS.Add(float64(totalStops) / float64(len(res.Rounds)))
			}
		}
		out = append(out, AblationResult{
			Variant:  fmt.Sprintf("charge-to-%d%%", int(level*100)),
			N:        int(level * 100),
			LongestH: accL.Mean(),
			Stops:    accS.Mean(),
			WaitS:    accD.Mean(),
		})
		progress.Emit("ablation partial: level %.0f%% done", level*100)
	}
	return out, nil
}

// denseRound synthesizes a dense request set with the paper's planning
// parameters: uniform positions in the 100 x 100 m field, charge durations
// in [1.2 h, 1.5 h] (sensors requested at ~20% residual capacity).
func denseRound(n int, seed int64) *core.Instance {
	nw, err := workload.Generate(workload.NewParams(n), seed)
	if err != nil {
		// NewParams(n) with n >= 0 always validates.
		panic(err)
	}
	in := &core.Instance{Depot: nw.Depot, Gamma: nw.Gamma, Speed: nw.Speed, K: 2}
	for i := range nw.Sensors {
		frac := 0.05 + 0.15*float64(i%4)/4 // 5-20% residual
		in.Requests = append(in.Requests, core.Request{
			Pos:      nw.Sensors[i].Pos,
			Duration: (1 - frac) * nw.Sensors[i].Battery.Capacity / nw.ChargeRate,
			Lifetime: float64(1+i%7) * 86400,
		})
	}
	return in
}
