package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The headline guarantee of the parallelism layer: identical seeds produce
// byte-identical figure tables at any worker count, with the plan cache
// cold, warm, or disabled. These tests run the real sweep machinery on a
// miniature figure-3 grid so they stay fast enough for every CI run.

// miniFig3 is figure 3 (network-size sweep) shrunk to test scale.
func miniFig3() sweepSpec {
	return sweepSpec{
		id:     "3",
		title:  "varying the network size n (K = 2), mini",
		xlabel: "network size n",
		xs:     []float64{40, 80},
		setup: func(x float64) (workload.Params, int) {
			return workload.NewParams(int(x)), 2
		},
	}
}

func miniOptions(workers int, cache bool) Options {
	return Options{
		Instances: 2,
		Duration:  5 * 86400, // five simulated days
		Workers:   workers,
		PlanCache: cache,
		Verify:    true,
	}
}

// figureJSON renders both panels the way wrsn-bench writes them, so the
// comparison is over the exact bytes a user would diff.
func figureJSON(t *testing.T, a, b *Figure) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, f := range []*Figure{a, b} {
		if err := enc.Encode(f); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestSweepByteIdenticalAcrossWorkerCounts(t *testing.T) {
	spec := miniFig3()
	var ref []byte
	for _, w := range []int{1, 2, 8} {
		a, b, err := runSweep(context.Background(), spec, miniOptions(w, false))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if a.Violations != 0 {
			t.Fatalf("workers=%d: %d feasibility violations", w, a.Violations)
		}
		got := figureJSON(t, a, b)
		if ref == nil {
			ref = got
			continue
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("workers=%d: figure tables diverged from workers=1", w)
		}
	}
}

func TestSweepPlanCacheDoesNotChangeResults(t *testing.T) {
	spec := miniFig3()
	aOff, bOff, err := runSweep(context.Background(), spec, miniOptions(2, false))
	if err != nil {
		t.Fatal(err)
	}
	aOn, bOn, err := runSweep(context.Background(), spec, miniOptions(2, true))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(aOff, aOn) || !reflect.DeepEqual(bOff, bOn) {
		t.Fatal("enabling the plan cache changed the figure tables")
	}
}

// TestSimTraceByteIdenticalAcrossPlannerWorkers drives the simulator's
// JSONL trace — the full ordered event stream — with the planner's internal
// parallelism (tour-improvement restarts) at several worker counts. The
// trace is keyed by simulation time only, so any divergence in event
// ordering or content is a determinism bug in the parallel layer.
func TestSimTraceByteIdenticalAcrossPlannerWorkers(t *testing.T) {
	nw, err := workload.Generate(workload.NewParams(60), 7)
	if err != nil {
		t.Fatal(err)
	}
	var ref []byte
	for _, w := range []int{1, 2, 8} {
		var buf bytes.Buffer
		planner := core.ApproPlanner{Opts: core.Options{TourRestarts: 3, Workers: w}}
		if _, err := sim.Run(context.Background(), nw, 2, planner, sim.Config{
			Duration: 5 * 86400,
			Trace:    &buf,
		}); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("workers=%d: empty trace", w)
		}
		if ref == nil {
			ref = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), ref) {
			t.Fatalf("workers=%d: JSONL trace diverged from workers=1", w)
		}
	}
}

// TestSweepCacheWarmRerunMatchesCold reruns an identical sweep against a
// process-fresh cache and against nothing at all; all three tables must
// match, confirming a warm rerun serves copies rather than aliases.
func TestSweepCacheWarmRerunMatchesCold(t *testing.T) {
	spec := miniFig3()
	opt := miniOptions(2, true)
	a1, b1, err := runSweep(context.Background(), spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, err := runSweep(context.Background(), spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(figureJSON(t, a1, b1), figureJSON(t, a2, b2)) {
		t.Fatal("rerunning the cached sweep changed the figure tables")
	}
}
