package experiments

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunHonorsContext is the table-driven cancellation contract for the
// figure harness: a cancelled sweep returns promptly with an error wrapping
// the context sentinel, plus partial panels aggregating only the cells
// that completed.
func TestRunHonorsContext(t *testing.T) {
	tests := []struct {
		name   string
		preRun bool // cancel before Run instead of mid-run
		want   error
	}{
		{"pre-cancelled", true, context.Canceled},
		{"mid-run", false, context.Canceled},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			opt := fastOpts()
			opt.Workers = 2
			var cells atomic.Int32
			if tt.preRun {
				cancel()
			} else {
				// Cancel as soon as the first cell completes; the
				// remaining ~24 cells must then be skipped.
				opt.Progress = func(string) {
					if cells.Add(1) == 1 {
						cancel()
					}
				}
			}
			start := time.Now()
			a, b, err := Run(ctx, "5", opt)
			if !errors.Is(err, tt.want) {
				t.Fatalf("err = %v, want errors.Is(..., %v)", err, tt.want)
			}
			if a == nil || b == nil {
				t.Fatal("cancelled sweep returned nil panels")
			}
			if len(a.Series) != 5 {
				t.Fatalf("series = %d, want all 5 algorithms present (empty where skipped)", len(a.Series))
			}
			if tt.preRun {
				for _, s := range a.Series {
					for i, y := range s.Y {
						if y != 0 {
							t.Fatalf("pre-cancelled sweep has data: series %s point %d = %v", s.Label, i, y)
						}
					}
				}
			}
			// Promptness: a full figure-5 sweep at these settings takes
			// far longer than the post-cancellation drain should.
			if el := time.Since(start); el > 2*time.Minute {
				t.Fatalf("cancelled sweep took %v", el)
			}
		})
	}
}

// TestRunDeadlinePartial drives the harness with a deadline that expires
// mid-sweep and checks the partial panels stay usable.
func TestRunDeadlinePartial(t *testing.T) {
	opt := fastOpts()
	opt.Workers = 2
	// Size the sweep so it cannot finish inside the deadline (a full run
	// at these settings takes tens of seconds), guaranteeing the deadline
	// genuinely interrupts it.
	opt.Instances = 4
	opt.Duration = 180 * 86400
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	a, _, err := Run(ctx, "5", opt)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if a == nil || len(a.X) != 5 {
		t.Fatalf("partial panel malformed: %+v", a)
	}
}

// TestRunAblationHonorsContext covers the ablation paths.
func TestRunAblationHonorsContext(t *testing.T) {
	for _, id := range []string{AblationInsertion, AblationDispatch, AblationPartial} {
		t.Run(id, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			rows, err := RunAblation(ctx, id, fastOpts())
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if len(rows) != 0 {
				t.Fatalf("pre-cancelled ablation produced %d rows", len(rows))
			}
		})
	}
}

// TestProgressSerialized exercises the Progress callback from concurrent
// workers with a deliberately unsynchronized closure; `go test -race`
// fails this test if the harness ever invokes Progress concurrently.
func TestProgressSerialized(t *testing.T) {
	opt := fastOpts()
	opt.Workers = 4
	var lines []string // no mutex on purpose: serialization is the contract
	opt.Progress = func(msg string) { lines = append(lines, msg) }
	a, _, err := Run(context.Background(), "5", opt)
	if err != nil {
		t.Fatal(err)
	}
	want := len(a.X) * len(a.Series) * opt.Instances
	if len(lines) != want {
		t.Fatalf("progress lines = %d, want %d", len(lines), want)
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "fig5 ") {
			t.Fatalf("unexpected progress line %q", l)
		}
	}
}
