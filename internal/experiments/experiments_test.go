package experiments

import (
	"context"
	"strings"
	"testing"
)

// fastOpts keeps experiment tests quick: tiny horizon, one instance.
func fastOpts() Options {
	return Options{
		Instances: 1,
		Duration:  10 * 86400,
		Verify:    true,
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, _, err := Run(context.Background(), "7", fastOpts()); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunFigure3Small(t *testing.T) {
	// Shrink the sweep by running figure 5 (K sweep) at 10 days — still
	// exercises every planner and the aggregation path. Figure 3's full
	// sweep is covered by the bench harness.
	a, b, err := Run(context.Background(), "5", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "5a" || b.ID != "5b" {
		t.Errorf("IDs = %s, %s", a.ID, b.ID)
	}
	if len(a.X) != 5 || len(b.X) != 5 {
		t.Fatalf("sweep points = %d, %d", len(a.X), len(b.X))
	}
	if len(a.Series) != 5 {
		t.Fatalf("series = %d, want 5 algorithms", len(a.Series))
	}
	names := map[string]bool{}
	for _, s := range a.Series {
		names[s.Label] = true
		if len(s.Y) != len(a.X) || len(s.Std) != len(a.X) {
			t.Fatalf("series %s has %d points for %d xs", s.Label, len(s.Y), len(a.X))
		}
		for i, y := range s.Y {
			if y <= 0 {
				t.Errorf("series %s point %d: non-positive longest %v", s.Label, i, y)
			}
		}
	}
	for _, want := range PlannerNames() {
		if !names[want] {
			t.Errorf("missing series %q", want)
		}
	}
	if a.Violations != 0 {
		t.Errorf("feasibility violations: %d", a.Violations)
	}
}

func TestRunFigureFaultsSmall(t *testing.T) {
	opt := fastOpts()
	opt.Duration = 5 * 86400
	a, b, err := Run(context.Background(), "F", opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "Fa" || b.ID != "Fb" {
		t.Errorf("IDs = %s, %s", a.ID, b.ID)
	}
	if len(a.X) != 4 {
		t.Fatalf("sweep points = %d, want 4", len(a.X))
	}
	if a.X[0] != 0 {
		t.Fatalf("first x = %v, want fault-free baseline 0", a.X[0])
	}
	if a.Violations != 0 {
		t.Errorf("feasibility violations under faults: %d", a.Violations)
	}
	for _, s := range a.Series {
		for i, y := range s.Y {
			if y <= 0 {
				t.Errorf("series %s point %d: non-positive longest %v", s.Label, i, y)
			}
		}
	}
	// Reproducibility: the fault draws are keyed off the cell seed, so a
	// second run must agree exactly.
	a2, _, err := Run(context.Background(), "F", opt)
	if err != nil {
		t.Fatal(err)
	}
	for si := range a.Series {
		for xi := range a.Series[si].Y {
			if a.Series[si].Y[xi] != a2.Series[si].Y[xi] {
				t.Fatalf("figure F not reproducible at series %d point %d", si, xi)
			}
		}
	}
}

func TestRunDeterministicAcrossCalls(t *testing.T) {
	opt := fastOpts()
	opt.Duration = 5 * 86400
	a1, _, err := Run(context.Background(), "4", opt)
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := Run(context.Background(), "4", opt)
	if err != nil {
		t.Fatal(err)
	}
	for si := range a1.Series {
		for xi := range a1.Series[si].Y {
			if a1.Series[si].Y[xi] != a2.Series[si].Y[xi] {
				t.Fatalf("figure 4 not reproducible at series %d point %d", si, xi)
			}
		}
	}
}

func TestPlannersSeeSameNetworks(t *testing.T) {
	// The K=1..5 sweep of figure 5 uses the same per-instance seed for
	// every planner by construction; indirectly verified by determinism
	// above. Here check the planner list covers the paper's five.
	names := PlannerNames()
	want := []string{"Appro", "K-EDF", "NETWRAP", "AA", "K-minMax"}
	if len(names) != len(want) {
		t.Fatalf("planners = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("planner %d = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestRunAblations(t *testing.T) {
	for _, id := range []string{AblationMIS, AblationInsertion, AblationTourBuilder} {
		rows, err := RunAblation(context.Background(), id, fastOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(rows) < 2*len(ablationSizes) {
			t.Fatalf("%s: %d rows", id, len(rows))
		}
		for _, r := range rows {
			if r.LongestH <= 0 || r.Stops <= 0 || r.N <= 0 {
				t.Errorf("%s variant %s: empty result %+v", id, r.Variant, r)
			}
			if !strings.Contains(r.Variant, "-") {
				t.Errorf("%s: suspicious variant name %q", id, r.Variant)
			}
		}
	}
	if _, err := RunAblation(context.Background(), "nope", fastOpts()); err == nil {
		t.Error("unknown ablation accepted")
	}
}
