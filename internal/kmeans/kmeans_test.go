package kmeans

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestClusterValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := []geom.Point{geom.Pt(0, 0)}
	if _, err := Cluster(pts, 0, rng, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := Cluster(nil, 2, rng, 0); err == nil {
		t.Error("no points should error")
	}
	if _, err := Cluster(pts, 1, nil, 0); err == nil {
		t.Error("nil rng should error")
	}
}

func TestClusterSeparatesObviousClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var pts []geom.Point
	centers := []geom.Point{geom.Pt(10, 10), geom.Pt(90, 90), geom.Pt(10, 90)}
	for _, c := range centers {
		for i := 0; i < 30; i++ {
			pts = append(pts, geom.Pt(c.X+rng.NormFloat64(), c.Y+rng.NormFloat64()))
		}
	}
	res, err := Cluster(pts, 3, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	// All points of an original cluster must share an assignment.
	for g := 0; g < 3; g++ {
		first := res.Assign[g*30]
		for i := 1; i < 30; i++ {
			if res.Assign[g*30+i] != first {
				t.Fatalf("original cluster %d split: %v vs %v", g, first, res.Assign[g*30+i])
			}
		}
	}
	// And distinct clusters get distinct assignments.
	if res.Assign[0] == res.Assign[30] || res.Assign[30] == res.Assign[60] || res.Assign[0] == res.Assign[60] {
		t.Error("distinct clusters merged")
	}
}

func TestClusterKLargerThanN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}
	res, err := Cluster(pts, 10, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 2 {
		t.Errorf("centers = %d, want clamped to 2", len(res.Centers))
	}
}

func TestClusterCoincidentPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]geom.Point, 10)
	for i := range pts {
		pts[i] = geom.Pt(5, 5)
	}
	res, err := Cluster(pts, 3, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Errorf("Inertia = %v, want 0 for coincident points", res.Inertia)
	}
}

func TestGroupsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := make([]geom.Point, 50)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	res, err := Cluster(pts, 4, rng, 0)
	if err != nil {
		t.Fatal(err)
	}
	groups := res.Groups()
	if len(groups) != 4 {
		t.Fatalf("groups = %d", len(groups))
	}
	seen := make([]bool, len(pts))
	for _, g := range groups {
		for _, i := range g {
			if seen[i] {
				t.Fatalf("point %d in two groups", i)
			}
			seen[i] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("point %d unassigned", i)
		}
	}
}

func TestClusterDeterministicWithSeed(t *testing.T) {
	pts := make([]geom.Point, 40)
	src := rand.New(rand.NewSource(11))
	for i := range pts {
		pts[i] = geom.Pt(src.Float64()*100, src.Float64()*100)
	}
	a, err := Cluster(pts, 3, rand.New(rand.NewSource(42)), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(pts, 3, rand.New(rand.NewSource(42)), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}
