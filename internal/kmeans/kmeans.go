// Package kmeans implements Lloyd's algorithm with k-means++ seeding over
// 2-D points. The AA baseline (Wang et al., IEEE TC 2016) partitions the
// to-be-charged sensors into K groups with it, one group per mobile charger.
package kmeans

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Result is a clustering of points into K groups.
type Result struct {
	// Centers are the final cluster centroids, length K.
	Centers []geom.Point
	// Assign maps each input point index to its cluster in [0, K).
	Assign []int
	// Inertia is the total squared distance of points to their centers.
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// Cluster partitions pts into k clusters. rng drives the k-means++ seeding
// and must be non-nil. maxIter caps Lloyd iterations (<= 0 means 100).
// It returns an error when k < 1 or there are no points.
func Cluster(pts []geom.Point, k int, rng *rand.Rand, maxIter int) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("kmeans: k = %d, want >= 1", k)
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("kmeans: no points")
	}
	if rng == nil {
		return nil, fmt.Errorf("kmeans: nil rng")
	}
	if k > len(pts) {
		k = len(pts)
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	centers := seedPlusPlus(pts, k, rng)
	assign := make([]int, len(pts))
	res := &Result{}
	for iter := 0; iter < maxIter; iter++ {
		changed := assignPoints(pts, centers, assign)
		res.Iterations = iter + 1
		// Recompute centroids; re-seed empty clusters at the farthest point.
		sums := make([]geom.Point, len(centers))
		counts := make([]int, len(centers))
		for i, c := range assign {
			sums[c] = sums[c].Add(pts[i])
			counts[c]++
		}
		for c := range centers {
			if counts[c] == 0 {
				centers[c] = farthestPoint(pts, centers, assign)
				continue
			}
			centers[c] = sums[c].Scale(1 / float64(counts[c]))
		}
		if !changed && iter > 0 {
			break
		}
	}
	assignPoints(pts, centers, assign)
	res.Centers = centers
	res.Assign = assign
	for i, c := range assign {
		res.Inertia += geom.DistSq(pts[i], centers[c])
	}
	return res, nil
}

// Groups explodes the assignment into k slices of point indices.
func (r *Result) Groups() [][]int {
	out := make([][]int, len(r.Centers))
	for i := range out {
		out[i] = []int{}
	}
	for i, c := range r.Assign {
		out[c] = append(out[c], i)
	}
	return out
}

// seedPlusPlus picks k initial centers with k-means++: the first uniformly,
// each subsequent with probability proportional to squared distance from
// the nearest chosen center.
func seedPlusPlus(pts []geom.Point, k int, rng *rand.Rand) []geom.Point {
	centers := make([]geom.Point, 0, k)
	centers = append(centers, pts[rng.Intn(len(pts))])
	d2 := make([]float64, len(pts))
	for len(centers) < k {
		total := 0.0
		last := centers[len(centers)-1]
		for i, p := range pts {
			d := geom.DistSq(p, last)
			if len(centers) == 1 || d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
		if total == 0 {
			// All points coincide with chosen centers; duplicate one.
			centers = append(centers, pts[rng.Intn(len(pts))])
			continue
		}
		target := rng.Float64() * total
		acc := 0.0
		pick := len(pts) - 1
		for i := range pts {
			acc += d2[i]
			if acc >= target {
				pick = i
				break
			}
		}
		centers = append(centers, pts[pick])
	}
	return centers
}

// assignPoints sets assign[i] to the nearest center and reports whether any
// assignment changed.
func assignPoints(pts []geom.Point, centers []geom.Point, assign []int) bool {
	changed := false
	for i, p := range pts {
		best, bestD := 0, math.Inf(1)
		for c, ctr := range centers {
			if d := geom.DistSq(p, ctr); d < bestD {
				best, bestD = c, d
			}
		}
		if assign[i] != best {
			assign[i] = best
			changed = true
		}
	}
	return changed
}

// farthestPoint returns the input point with maximum distance to its
// assigned center, used to re-seed empty clusters.
func farthestPoint(pts []geom.Point, centers []geom.Point, assign []int) geom.Point {
	best, bestD := 0, -1.0
	for i, p := range pts {
		if d := geom.DistSq(p, centers[assign[i]]); d > bestD {
			best, bestD = i, d
		}
	}
	return pts[best]
}
