// Package bilevel implements a bi-level metaheuristic contender for the
// longest-charge-delay problem, in the spirit of the bi-level charging
// schemes surveyed in PAPERS.md: an outer level perturbs the stop
// subset, an inner level optimizes the tours over it.
//
//   - Outer level: OuterRounds candidate stop sets, each a maximal
//     independent set of the charging graph G_c. Round 0 is the
//     deterministic max-degree MIS (Appro's hub heuristic); every later
//     round greedily scans vertices by degree jittered with noise seeded
//     purely by (Options.Seed, round) — the seeded stop-subset
//     perturbation over the MIS candidate pool, keeping max-degree's
//     hub bias while exploring nearby candidate sets.
//   - Inner level: K min-max closed tours over each candidate set via
//     ktour.MinMax, whose grand-tour refinement runs
//     tsp.TwoOptRestarts with Options.TourRestarts independent descents
//     (default DefaultTourRestarts, a stronger inner search than
//     Appro's single descent).
//
// Each candidate schedule is finalized and executed (conflict-free by
// core.Execute); the winner is the one with the smallest executed
// longest delay, ties broken by the lowest round index. Because every
// MIS is maximal, each candidate set covers all of V_s, and because its
// members are pairwise more than gamma apart, each stop's coverage
// attribution is a partition — the schedules are verifier-clean by
// construction.
//
// Determinism: rounds are seeded by index and merged by index
// (par.Map), and the winner tiebreak is index-stable, so equal
// (instance, Options.Seed) inputs produce byte-identical schedules at
// any Options.Workers value — the same contract as the rest of the
// engine.
package bilevel

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/ktour"
	"repro/internal/par"
)

// OuterRounds is the number of candidate stop sets the outer level
// explores: the deterministic max-degree MIS plus OuterRounds-1 seeded
// perturbations.
const OuterRounds = 8

// DefaultTourRestarts is the inner level's 2-opt restart count when
// Options.TourRestarts is unset (<= 0).
const DefaultTourRestarts = 4

// Planner is the bi-level metaheuristic as a core.Planner.
type Planner struct {
	// Opts tunes the search. Seed drives the outer perturbation;
	// TourRestarts (default DefaultTourRestarts) the inner descents;
	// TourBuilder the grand-tour construction; Workers the outer
	// fan-out (speed only). MISOrder and NoSortByFinishTime are
	// ignored: the stop-set strategy is the algorithm itself.
	Opts core.Options
}

// Name implements core.Planner.
func (Planner) Name() string { return "BiLevel" }

// PlanOptions exposes the options shaping the plans, normalized to the
// representative the planner actually runs under, for plan-cache keys
// (plancache.Optioned). MISOrder is reported as graph.MISRandom — the
// search is inherently seeded — which also keeps Seed inside the cache
// key (plancache drops Seed for deterministic MIS orders), so two
// differently-seeded BiLevel planners never alias to one cached entry.
func (p Planner) PlanOptions() core.Options {
	o := p.Opts
	o.MISOrder = graph.MISRandom
	o.NoSortByFinishTime = false
	if o.TourRestarts <= 0 {
		o.TourRestarts = DefaultTourRestarts
	}
	o.Workers = 0
	return o
}

// Plan implements core.Planner. It honors ctx between and inside rounds
// (via ktour and the executor's caller) and returns an error wrapping
// ctx.Err() on cancellation.
func (p Planner) Plan(ctx context.Context, in *core.Instance) (*core.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("bilevel: %w", err)
	}
	if len(in.Requests) == 0 {
		s := &core.Schedule{Tours: make([]core.Tour, in.K)}
		core.Finalize(in, s)
		return s, nil
	}
	pts := in.Positions()
	gc := graph.UnitDisk(pts, in.Gamma)
	grid := geom.NewGrid(pts, cellSize(in.Gamma))

	// Outer level: one candidate schedule per round, fanned across
	// Workers but indexed by round, so the scan below is deterministic.
	cands, err := par.Map(ctx, OuterRounds, p.Opts.Workers, func(ctx context.Context, r int) (*core.Schedule, error) {
		return p.planRound(ctx, in, pts, grid, candidateSet(gc, p.Opts.Seed, r))
	})
	if err != nil {
		return nil, fmt.Errorf("bilevel: %w", err)
	}
	best := -1
	for r, s := range cands {
		if s == nil {
			continue
		}
		if best < 0 || s.Longest < cands[best].Longest {
			best = r
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("bilevel: no round completed: %w", ctx.Err())
	}
	return cands[best], nil
}

// candidateSet returns round r's stop set: a maximal independent set of
// the charging graph, deterministic max-degree for round 0 and a seeded
// jittered-degree perturbation for every later round.
func candidateSet(gc *graph.Undirected, seed int64, r int) []int {
	if r == 0 {
		return graph.MaximalIndependentSet(gc, graph.MISMaxDegree, nil)
	}
	rng := rand.New(rand.NewSource(mix(seed, int64(r))))
	return perturbedMIS(gc, rng)
}

// degreeJitter is the noise amplitude added to vertex degrees by the
// perturbation rounds: a few degree units, enough to reorder near-ties
// in the hub ranking without degenerating into a uniform random scan
// (which loses the few-large-stops structure that makes max-degree
// candidate sets strong).
const degreeJitter = 1.0

// perturbedMIS repeatedly selects the remaining vertex of maximum
// jittered residual degree — the same residual-degree greedy as the
// deterministic max-degree MIS, with per-vertex seeded noise — and
// returns the resulting maximal independent set, ascending. Equal rng
// states yield identical sets: selection tie-breaks by vertex index.
func perturbedMIS(gc *graph.Undirected, rng *rand.Rand) []int {
	n := gc.Len()
	deg := make([]float64, n)
	for v := 0; v < n; v++ {
		deg[v] = float64(gc.Degree(v)) + degreeJitter*rng.Float64()
	}
	removed := make([]bool, n)
	var out []int
	for remaining := n; remaining > 0; {
		best := -1
		for v := 0; v < n; v++ {
			if !removed[v] && (best < 0 || deg[v] > deg[best]) {
				best = v
			}
		}
		out = append(out, best)
		rm := []int{best}
		removed[best] = true
		for _, u := range gc.Neighbors(best) {
			if !removed[u] {
				removed[u] = true
				rm = append(rm, int(u))
			}
		}
		remaining -= len(rm)
		for _, w := range rm {
			for _, x := range gc.Neighbors(w) {
				if !removed[x] {
					deg[x]--
				}
			}
		}
	}
	sort.Ints(out)
	return out
}

// planRound builds, finalizes and executes the schedule for one
// candidate stop set.
func (p Planner) planRound(ctx context.Context, in *core.Instance, pts []geom.Point, grid *geom.Grid, si []int) (*core.Schedule, error) {
	// Coverage attribution in ascending candidate order: each request
	// goes to the first candidate within gamma. Maximality of the MIS
	// guarantees every request is within gamma of some candidate, and
	// independence guarantees each candidate at least covers itself
	// (no earlier candidate is within gamma of it), so no stop is empty.
	covered := make([]bool, len(pts))
	covers := make([][]int, len(si))
	service := make([]float64, len(si))
	nodes := make([]geom.Point, len(si))
	var buf []int
	for i, v := range si {
		nodes[i] = pts[v]
		buf = grid.Neighbors(pts[v], in.Gamma, buf)
		cs := append([]int(nil), buf...)
		sort.Ints(cs)
		for _, u := range cs {
			if covered[u] {
				continue
			}
			covered[u] = true
			covers[i] = append(covers[i], u)
			if d := in.Requests[u].Duration; d > service[i] {
				service[i] = d
			}
		}
	}

	// Inner level: K min-max closed tours over the stop set, with the
	// multi-restart grand-tour refinement. The inner solver runs on one
	// worker: the outer level already fans the rounds.
	restarts := p.Opts.TourRestarts
	if restarts <= 0 {
		restarts = DefaultTourRestarts
	}
	sol, err := ktour.MinMax(ctx, ktour.Input{
		Depot:    in.Depot,
		Nodes:    nodes,
		Service:  service,
		Speed:    in.Speed,
		K:        in.K,
		Builder:  p.Opts.TourBuilder,
		Restarts: restarts,
		Workers:  1,
	})
	if err != nil {
		return nil, fmt.Errorf("k-minmax inner level: %w", err)
	}
	s := &core.Schedule{Tours: make([]core.Tour, in.K)}
	for k, tour := range sol.Tours {
		for _, i := range tour {
			s.Tours[k].Stops = append(s.Tours[k].Stops, core.Stop{
				Node:     si[i],
				Duration: service[i],
				Covers:   covers[i],
			})
		}
	}
	core.Finalize(in, s)
	return core.Execute(ctx, in, s), nil
}

// cellSize clamps grid cell sizes away from zero for degenerate gammas.
func cellSize(gamma float64) float64 {
	if gamma <= 0 {
		return 1
	}
	return gamma
}

// mix decorrelates (seed, round) into an rng seed (splitmix64 finalizer)
// so consecutive rounds draw unrelated scan orders even for small seeds.
func mix(seed, r int64) int64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(r) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
