package bilevel

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

// testInstance packs n requests into a 30x30 field so the gamma=2.7
// unit-disk graph is dense enough that MIS order — and therefore the
// seeded outer rounds — actually changes candidate sets.
func testInstance(seed int64, n, k int) *core.Instance {
	rng := rand.New(rand.NewSource(seed))
	in := &core.Instance{Depot: geom.Pt(15, 15), Gamma: 2.7, Speed: 1, K: k}
	for i := 0; i < n; i++ {
		in.Requests = append(in.Requests, core.Request{
			Pos:      geom.Pt(rng.Float64()*30, rng.Float64()*30),
			Duration: (1.2 + 0.3*rng.Float64()) * 3600,
			Lifetime: (1 + rng.Float64()*6) * 86400,
		})
	}
	return in
}

func TestPlanVerifierClean(t *testing.T) {
	in := testInstance(1, 120, 3)
	s, err := Planner{}.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if vs := core.Verify(in, s); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
	if s.Longest <= 0 {
		t.Error("empty objective")
	}
	if len(s.Tours) != in.K {
		t.Errorf("got %d tours, want %d", len(s.Tours), in.K)
	}
}

// TestDeterminism requires byte-identical schedules across repeated runs
// and across worker counts at a fixed seed: the outer rounds are seeded
// by round index, merged by index, and tie-broken by lowest round, so
// parallelism can never change the winner.
func TestDeterminism(t *testing.T) {
	in := testInstance(2, 100, 2)
	var ref *core.Schedule
	for _, workers := range []int{1, 1, 4, 4, 3} {
		p := Planner{Opts: core.Options{Seed: 5, Workers: workers}}
		s, err := p.Plan(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = s
			continue
		}
		if !reflect.DeepEqual(ref, s) {
			t.Fatalf("schedule differs at workers=%d", workers)
		}
	}
}

func TestSeedShapesPlan(t *testing.T) {
	in := testInstance(1, 100, 2)
	a, err := Planner{Opts: core.Options{Seed: 1}}.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Planner{Opts: core.Options{Seed: 2}}.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Error("seeds 1 and 2 produced identical schedules — Seed is not shaping the search")
	}
}

func TestPlanOptionsCacheIdentity(t *testing.T) {
	o := Planner{Opts: core.Options{Seed: 9, Workers: 8}}.PlanOptions()
	if o.Seed != 9 {
		t.Errorf("PlanOptions dropped the seed: %+v", o)
	}
	if o.Workers != 0 {
		t.Errorf("PlanOptions kept Workers (speed-only, must not split cache keys): %+v", o)
	}
	if o.TourRestarts != DefaultTourRestarts {
		t.Errorf("PlanOptions() TourRestarts = %d, want the %d default", o.TourRestarts, DefaultTourRestarts)
	}
}

func TestEmptyInstance(t *testing.T) {
	in := &core.Instance{Depot: geom.Pt(0, 0), Gamma: 1, Speed: 1, K: 2}
	s, err := Planner{}.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tours) != 2 || s.Longest != 0 {
		t.Fatalf("empty instance: %+v", s)
	}
}

func TestCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (Planner{}).Plan(ctx, testInstance(4, 50, 2)); err == nil {
		t.Fatal("planned under a cancelled context")
	}
}
