package core

import (
	"context"
	"math/rand"
	"testing"
)

// TestPlannedScheduleOverlapRate measures how often the raw Algorithm 1
// plan — before the conflict-aware executor — already satisfies the
// no-simultaneous-charging constraint. The paper argues the latest-finish
// insertion rule suffices, but later insertions shift downstream stops,
// which can in principle re-introduce cross-tour overlaps; this test
// quantifies how often that actually happens and asserts that Execute
// always repairs it.
func TestPlannedScheduleOverlapRate(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	const trials = 40
	planViolations := 0
	for trial := 0; trial < trials; trial++ {
		n := 100 + rng.Intn(500)
		k := 2 + rng.Intn(3)
		in := paperInstance(rng, n, k)
		planned, err := Appro(context.Background(), in, Options{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if hasOverlap(Verify(in, planned)) {
			planViolations++
		}
		if vs := Verify(in, Execute(context.Background(), in, planned)); hasOverlap(vs) {
			t.Fatalf("trial %d: executor failed to repair an overlap", trial)
		}
	}
	t.Logf("planned-schedule overlap rate: %d/%d instances (executor repaired all)",
		planViolations, trials)
}

func hasOverlap(vs []Violation) bool {
	for _, v := range vs {
		if v.Kind == "simultaneous-charge" {
			return true
		}
	}
	return false
}
