package core

import (
	"sort"

	"repro/internal/geom"
)

// Canonical request ordering.
//
// Algorithm Appro's tie-breaks — MIS vertex selection, coverage
// attribution, the insertion scan — all fall back to request *indices*,
// which are an artifact of input order, not of the problem: V_s is a set
// of sensors. Planning on a canonically ordered copy of the instance and
// mapping the resulting stop/cover indices back makes Appro a function of
// the sensor set itself, which is what the metamorphic test suite proves:
//
//   - permuting the requests yields the bit-identical schedule (modulo the
//     index relabeling), because the canonical order erases input order;
//   - translating or rotating the whole field preserves the canonical
//     order (the primary key is the rigid-motion-invariant depot
//     distance), so the tour structure survives and delays move only by
//     floating-point noise.
//
// The key orders by distance to the depot, then charge duration, then
// lifetime, then raw coordinates as a final tiebreak for the measure-zero
// case of sensors equidistant from the depot with identical demands.

// canonicalOrder returns the request indices sorted by the canonical key,
// i.e. perm[rank] = original index.
func canonicalOrder(in *Instance) []int {
	n := len(in.Requests)
	dist := make([]float64, n)
	for i := range in.Requests {
		dist[i] = geom.Dist(in.Depot, in.Requests[i].Pos)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		ra, rb := &in.Requests[perm[a]], &in.Requests[perm[b]]
		if dist[perm[a]] != dist[perm[b]] {
			return dist[perm[a]] < dist[perm[b]]
		}
		if ra.Duration != rb.Duration {
			return ra.Duration < rb.Duration
		}
		if ra.Lifetime != rb.Lifetime {
			return ra.Lifetime < rb.Lifetime
		}
		if ra.Pos.X != rb.Pos.X {
			return ra.Pos.X < rb.Pos.X
		}
		return ra.Pos.Y < rb.Pos.Y
	})
	return perm
}

// canonicalize returns the instance with requests in canonical order plus
// the perm mapping canonical rank -> original index. When the input is
// already canonical it is returned as-is with a nil perm, so the common
// steady path allocates nothing.
func canonicalize(in *Instance) (*Instance, []int) {
	perm := canonicalOrder(in)
	identity := true
	for i, p := range perm {
		if p != i {
			identity = false
			break
		}
	}
	if identity {
		return in, nil
	}
	canon := *in
	canon.Requests = make([]Request, len(in.Requests))
	for rank, orig := range perm {
		canon.Requests[rank] = in.Requests[orig]
	}
	return &canon, perm
}

// remapSchedule rewrites a schedule planned in canonical index space back
// to the caller's original request indices. Times and delays are untouched
// — only Stop.Node and Stop.Covers are relabeled (Covers re-sorted so they
// stay ascending). A nil perm is the identity.
func remapSchedule(s *Schedule, perm []int) {
	if perm == nil {
		return
	}
	for k := range s.Tours {
		stops := s.Tours[k].Stops
		for i := range stops {
			stops[i].Node = perm[stops[i].Node]
			for j, u := range stops[i].Covers {
				stops[i].Covers[j] = perm[u]
			}
			sort.Ints(stops[i].Covers)
		}
	}
}
