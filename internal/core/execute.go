package core

import (
	"context"
	"sort"

	"repro/internal/geom"
	"repro/internal/obs"
)

// Execute simulates the K chargers driving the planned schedule and
// enforces the paper's hard constraint that no sensor is ever inside two
// active charging ranges at once: before starting to charge at a stop, a
// charger waits until every conflicting charging interval of another
// charger has finished. Two stops conflict when a common sensor lies
// within gamma of both sojourn locations.
//
// The returned schedule has the actual (possibly delayed) stop times, the
// actual tour delays T'(k), and WaitTime aggregating all conflict waits.
// Appro's insertion rule makes waits rare; one-to-one baselines never wait
// because their charging is directional (Covers are singletons and the
// conflict test is skipped when gamma is zero in the instance they plan
// against).
//
// Execute runs to completion regardless of ctx's cancellation state — a
// half-executed schedule would be unusable — but records its runtime
// under the execute span when ctx carries an obs.Tracer.
func Execute(ctx context.Context, in *Instance, planned *Schedule) *Schedule {
	defer obs.FromContext(ctx).Start(obs.StageExecute).End()
	out := &Schedule{Tours: make([]Tour, len(planned.Tours))}
	type cursor struct {
		tour    int
		idx     int     // next stop index
		arrive  float64 // physical arrival time at next stop
		pos     geom.Point
		done    bool
		elapsed float64 // time of last committed action
	}
	curs := make([]*cursor, len(planned.Tours))
	for k := range planned.Tours {
		c := &cursor{tour: k, pos: in.Depot}
		if len(planned.Tours[k].Stops) == 0 {
			c.done = true
		} else {
			first := planned.Tours[k].Stops[0]
			c.arrive = in.Travel(in.Depot, in.Requests[first.Node].Pos)
		}
		curs[k] = c
		out.Tours[k].Stops = make([]Stop, 0, len(planned.Tours[k].Stops))
	}

	// committed charging intervals, for conflict lookups.
	type interval struct {
		node       int
		start, end float64
	}
	var committed []interval

	// Stops conflict when some sensor is within gamma of both sojourn
	// locations, i.e. N_c+(a) and N_c+(b) intersect. Coverage sets are
	// computed on demand via a spatial grid and cached per node.
	grid := geom.NewGrid(in.Positions(), maxCell(in.Gamma))
	coverCache := make(map[int][]int)
	coverOf := func(node int) []int {
		if cs, ok := coverCache[node]; ok {
			return cs
		}
		found := grid.Neighbors(in.Requests[node].Pos, in.Gamma, nil)
		cs := append([]int(nil), found...)
		sort.Ints(cs)
		coverCache[node] = cs
		return cs
	}
	conflicts := func(a, b int) bool {
		if geom.Dist(in.Requests[a].Pos, in.Requests[b].Pos) > 2*in.Gamma {
			return false
		}
		ca, cb := coverOf(a), coverOf(b)
		i, j := 0, 0
		for i < len(ca) && j < len(cb) {
			switch {
			case ca[i] == cb[j]:
				return true
			case ca[i] < cb[j]:
				i++
			default:
				j++
			}
		}
		return false
	}

	for {
		// Pick the charger whose next charging can start earliest.
		pick := -1
		var pickStart float64
		for k, c := range curs {
			if c.done {
				continue
			}
			st := planned.Tours[c.tour].Stops[c.idx]
			start := c.arrive
			for _, iv := range committed {
				if iv.end > start && conflicts(iv.node, st.Node) {
					start = iv.end
				}
			}
			if pick < 0 || start < pickStart {
				pick, pickStart = k, start
			}
		}
		if pick < 0 {
			break
		}
		c := curs[pick]
		plan := planned.Tours[c.tour].Stops[c.idx]
		out.WaitTime += pickStart - c.arrive
		committed = append(committed, interval{node: plan.Node, start: pickStart, end: pickStart + plan.Duration})
		out.Tours[c.tour].Stops = append(out.Tours[c.tour].Stops, Stop{
			Node:     plan.Node,
			Arrive:   pickStart,
			Duration: plan.Duration,
			Covers:   append([]int(nil), plan.Covers...),
		})
		// Advance the cursor.
		c.pos = in.Requests[plan.Node].Pos
		c.elapsed = pickStart + plan.Duration
		c.idx++
		if c.idx >= len(planned.Tours[c.tour].Stops) {
			c.done = true
			out.Tours[c.tour].Delay = c.elapsed + in.Travel(c.pos, in.Depot)
		} else {
			next := planned.Tours[c.tour].Stops[c.idx]
			c.arrive = c.elapsed + in.Travel(c.pos, in.Requests[next.Node].Pos)
		}
		// Drop committed intervals that can no longer overlap anything:
		// all chargers' current arrival lower bounds exceed their end.
		if len(committed) > 64 {
			minArrive := pickStart
			for _, cc := range curs {
				if !cc.done && cc.arrive < minArrive {
					minArrive = cc.arrive
				}
			}
			kept := committed[:0]
			for _, iv := range committed {
				if iv.end > minArrive {
					kept = append(kept, iv)
				}
			}
			committed = kept
		}
	}
	out.refreshLongest()
	// Sort stops of each tour by arrival for stable downstream reporting
	// (they are already in arrival order by construction).
	for k := range out.Tours {
		stops := out.Tours[k].Stops
		sort.SliceStable(stops, func(i, j int) bool { return stops[i].Arrive < stops[j].Arrive })
	}
	return out
}
