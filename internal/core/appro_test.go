package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
)

// paperInstance builds a random instance with the paper's parameters:
// 100x100 field, depot at center, gamma 2.7 m, speed 1 m/s, charge
// durations for sensors that requested at ~20% residual capacity
// (t_v between 1.2 h and 1.5 h at eta = 2 W).
func paperInstance(rng *rand.Rand, n, k int) *Instance {
	in := &Instance{
		Depot: geom.Pt(50, 50),
		Gamma: 2.7,
		Speed: 1,
		K:     k,
	}
	for i := 0; i < n; i++ {
		in.Requests = append(in.Requests, Request{
			Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
			Duration: (1.2 + 0.3*rng.Float64()) * 3600,
		})
	}
	return in
}

func TestApproValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name   string
		mutate func(*Instance)
	}{
		{"zero K", func(in *Instance) { in.K = 0 }},
		{"zero speed", func(in *Instance) { in.Speed = 0 }},
		{"negative gamma", func(in *Instance) { in.Gamma = -1 }},
		{"NaN duration", func(in *Instance) { in.Requests[0].Duration = math.NaN() }},
		{"negative duration", func(in *Instance) { in.Requests[0].Duration = -5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := paperInstance(rng, 5, 2)
			tt.mutate(in)
			if _, err := Appro(context.Background(), in, Options{}); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestApproEmpty(t *testing.T) {
	in := &Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: 3}
	s, err := Appro(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tours) != 3 || s.Longest != 0 || s.NumStops() != 0 {
		t.Errorf("empty instance: %+v", s)
	}
	if vs := Verify(in, s); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
}

func TestApproSingleRequest(t *testing.T) {
	in := &Instance{
		Depot:    geom.Pt(0, 0),
		Requests: []Request{{Pos: geom.Pt(30, 40), Duration: 100}},
		Gamma:    2.7,
		Speed:    1,
		K:        2,
	}
	s, err := Appro(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if vs := Verify(in, s); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
	// One charger does a 50+100+50 round trip; the other stays home.
	if math.Abs(s.Longest-200) > 1e-6 {
		t.Errorf("Longest = %v, want 200", s.Longest)
	}
}

func TestApproPlannedScheduleFeasibleOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		n := 10 + rng.Intn(150)
		k := 1 + rng.Intn(4)
		in := paperInstance(rng, n, k)
		s, err := Appro(context.Background(), in, Options{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		exec := Execute(context.Background(), in, s)
		if vs := Verify(in, exec); len(vs) != 0 {
			t.Fatalf("trial %d (n=%d k=%d): executed schedule infeasible: %v", trial, n, k, vs[0])
		}
		if exec.Longest+1e-6 < s.Longest && exec.WaitTime == 0 {
			t.Fatalf("trial %d: executed delay %v below planned %v without waits", trial, exec.Longest, s.Longest)
		}
	}
}

func TestApproCoversDenseCluster(t *testing.T) {
	// 30 sensors inside one gamma-disk: a single stop should cover many
	// of them, so stops << sensors.
	rng := rand.New(rand.NewSource(7))
	in := &Instance{Depot: geom.Pt(0, 0), Gamma: 2.7, Speed: 1, K: 1}
	for i := 0; i < 30; i++ {
		in.Requests = append(in.Requests, Request{
			Pos:      geom.Pt(50+rng.Float64()*2, 50+rng.Float64()*2),
			Duration: 3600,
		})
	}
	s, err := Appro(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if vs := Verify(in, Execute(context.Background(), in, s)); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
	if got := s.NumStops(); got > 6 {
		t.Errorf("dense cluster used %d stops, want few", got)
	}
}

func TestApproMISOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	in := paperInstance(rng, 120, 2)
	for _, ord := range []graph.MISOrder{
		graph.MISLexicographic, graph.MISMinDegree, graph.MISMaxDegree, graph.MISRandom,
	} {
		s, err := Appro(context.Background(), in, Options{MISOrder: ord, Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", ord, err)
		}
		if vs := Verify(in, Execute(context.Background(), in, s)); len(vs) != 0 {
			t.Fatalf("%v: violations: %v", ord, vs[0])
		}
	}
}

func TestApproDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	in := paperInstance(rng, 80, 3)
	a, err := Appro(context.Background(), in, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Appro(context.Background(), in, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Longest != b.Longest || a.NumStops() != b.NumStops() {
		t.Error("Appro is not deterministic for a fixed seed")
	}
}

func TestApproMoreChargersHelps(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	in := paperInstance(rng, 150, 1)
	in1 := *in
	in1.K = 1
	s1, err := Appro(context.Background(), &in1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in4 := *in
	in4.K = 4
	s4, err := Appro(context.Background(), &in4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s4.Longest > s1.Longest {
		t.Errorf("K=4 longest %v worse than K=1 %v", s4.Longest, s1.Longest)
	}
}

func TestApproZeroGamma(t *testing.T) {
	// gamma = 0 degenerates to one-to-one charging: every sensor is its
	// own stop.
	rng := rand.New(rand.NewSource(41))
	in := paperInstance(rng, 25, 2)
	in.Gamma = 0
	s, err := Appro(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.NumStops(); got != 25 {
		t.Errorf("gamma=0: stops = %d, want 25", got)
	}
	if vs := Verify(in, Execute(context.Background(), in, s)); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestApproAllCoincident(t *testing.T) {
	in := &Instance{Depot: geom.Pt(0, 0), Gamma: 2.7, Speed: 1, K: 2}
	for i := 0; i < 10; i++ {
		in.Requests = append(in.Requests, Request{Pos: geom.Pt(10, 0), Duration: 60})
	}
	s, err := Appro(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumStops() != 1 {
		t.Errorf("coincident sensors: stops = %d, want 1", s.NumStops())
	}
	if math.Abs(s.Longest-(10+60+10)) > 1e-6 {
		t.Errorf("Longest = %v, want 80", s.Longest)
	}
	if vs := Verify(in, s); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestApproStopsAreFewerThanOneToOne(t *testing.T) {
	// On a dense instance, multi-node stops should be far fewer than
	// sensors — the quantitative heart of the paper's 65% improvement.
	rng := rand.New(rand.NewSource(55))
	in := paperInstance(rng, 600, 2)
	s, err := Appro(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.NumStops(); got > 450 {
		t.Errorf("600 dense sensors used %d stops; expected meaningful multi-node consolidation", got)
	}
}

func BenchmarkAppro(b *testing.B) {
	for _, n := range []int{100, 400, 1200} {
		rng := rand.New(rand.NewSource(1))
		in := paperInstance(rng, n, 2)
		b.Run(fmtInt(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Appro(context.Background(), in, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func fmtInt(n int) string {
	switch {
	case n >= 1000:
		return "n1200"
	case n >= 400:
		return "n400"
	default:
		return "n100"
	}
}
