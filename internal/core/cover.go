package core

import (
	"sort"

	"repro/internal/geom"
)

// coverGrid answers N_c+(v) queries — the request indices within gamma of
// a request's position — with per-node caching.
type coverGrid struct {
	in    *Instance
	grid  *geom.Grid
	cache map[int][]int
}

func newCoverGrid(in *Instance) *coverGrid {
	return &coverGrid{
		in:    in,
		grid:  geom.NewGrid(in.Positions(), maxCell(in.Gamma)),
		cache: make(map[int][]int),
	}
}

// cover returns the ascending request indices within gamma of request
// node's position, including node itself. The returned slice is cached and
// must not be modified.
func (c *coverGrid) cover(node int) []int {
	if cs, ok := c.cache[node]; ok {
		return cs
	}
	found := c.grid.Neighbors(c.in.Requests[node].Pos, c.in.Gamma, nil)
	cs := append([]int(nil), found...)
	sort.Ints(cs)
	c.cache[node] = cs
	return cs
}
