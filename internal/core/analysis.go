package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/obs"
)

// Analysis reports the quantities the paper's approximation-ratio proof
// (Section V) is built from, computed for a concrete instance. It lets
// callers check Theorem 1's guarantee numerically: the delay of the
// schedule Appro returns is at most Ratio times the optimum.
type Analysis struct {
	// SI is |S_I|, the size of the maximal independent set of the
	// charging graph G_c (the candidate sojourn locations).
	SI int
	// VH is |V'_H|, the size of the maximal independent set of the
	// auxiliary graph H (the initial non-overlapping stops).
	VH int
	// DeltaH is the maximum degree of H. Lemma 2 proves DeltaH <= ceil(8*pi)
	// = 26 for any instance, which is what makes the ratio constant.
	DeltaH int
	// TauMax and TauMin are the longest and shortest per-stop charging
	// durations tau(v) over the candidate sojourn locations (Eq. (2));
	// their ratio enters the bound.
	TauMax, TauMin float64
	// Ratio is the instance's concrete approximation guarantee
	// (1 + DeltaH * TauMax/TauMin) * 5 from Inequality (19); Theorem 1's
	// worst case over all instances is 40*pi*TauMax/TauMin + 1.
	Ratio float64
}

// LemmaTwoBound is the paper's universal upper bound ceil(8*pi) on the
// maximum degree of the auxiliary graph H (Lemma 2).
const LemmaTwoBound = 26 // ceil(8 * pi)

// Analyze computes the approximation-ratio ingredients for the instance
// under the given options (the same MIS strategy Appro itself would use).
// It is read-only: no schedule is produced. Analyze honors ctx between
// its graph stages and records charging-graph/mis spans when ctx carries
// an obs.Tracer. Like Appro it analyzes the canonically ordered request
// set, so its report is invariant under request permutation.
func Analyze(ctx context.Context, in *Instance, opts Options) (*Analysis, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	in, _ = canonicalize(in)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: analyze: %w", err)
	}
	if opts.MISOrder == 0 {
		opts.MISOrder = graph.MISMaxDegree
	}
	out := &Analysis{TauMin: math.Inf(1)}
	if len(in.Requests) == 0 {
		out.TauMin = 0
		out.Ratio = 1
		return out, nil
	}
	tr := obs.FromContext(ctx)
	pts := in.Positions()
	rng := rand.New(rand.NewSource(opts.Seed))
	sp := tr.Start(obs.StageChargingGraph)
	gc := graph.UnitDisk(pts, in.Gamma)
	sp.End()
	misCfg := graph.MISConfig{Rng: rng, Rescan: opts.MISRescan, Tracer: tr}
	sp = tr.Start(obs.StageMIS)
	si := graph.MaximalIndependentSetWith(gc, opts.MISOrder, misCfg)
	sp.End()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: analyze: %w", err)
	}
	sp = tr.Start(obs.StageChargingGraph)
	h := graph.IntersectionGraph(pts, si, in.Gamma)
	sp.End()
	sp = tr.Start(obs.StageMIS)
	vh := graph.MaximalIndependentSetWith(h, opts.MISOrder, misCfg)
	sp.End()
	out.SI = len(si)
	out.VH = len(vh)
	out.DeltaH = h.MaxDegree()

	grid := newCoverGrid(in)
	for _, node := range si {
		tau := 0.0
		for _, u := range grid.cover(node) {
			if d := in.Requests[u].Duration; d > tau {
				tau = d
			}
		}
		if tau > out.TauMax {
			out.TauMax = tau
		}
		if tau < out.TauMin {
			out.TauMin = tau
		}
	}
	if out.TauMin <= 0 || math.IsInf(out.TauMin, 1) {
		// Zero-duration stops make the paper's tau_max/tau_min ratio
		// degenerate; report the ratio as +Inf in that case, matching
		// the theorem's requirement that the ratio be bounded only when
		// tau_min > 0.
		if out.TauMax == 0 {
			out.Ratio = 5 // pure travel: the K-minMax bound applies
			out.TauMin = 0
			return out, nil
		}
		out.Ratio = math.Inf(1)
		if math.IsInf(out.TauMin, 1) {
			out.TauMin = 0
		}
		return out, nil
	}
	out.Ratio = (1 + float64(out.DeltaH)*out.TauMax/out.TauMin) * 5
	return out, nil
}
