package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestInstanceValidateTable(t *testing.T) {
	valid := func() *Instance {
		return &Instance{
			Depot:    geom.Pt(0, 0),
			Requests: []Request{{Pos: geom.Pt(1, 1), Duration: 5}},
			Gamma:    2.7, Speed: 1, K: 1,
		}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Instance)
	}{
		{"K zero", func(in *Instance) { in.K = 0 }},
		{"speed NaN", func(in *Instance) { in.Speed = math.NaN() }},
		{"gamma NaN", func(in *Instance) { in.Gamma = math.NaN() }},
		{"duration Inf", func(in *Instance) { in.Requests[0].Duration = math.Inf(1) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := valid()
			tt.mutate(in)
			if err := in.Validate(); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestTravelAndStopFinish(t *testing.T) {
	in := &Instance{Speed: 2}
	if got := in.Travel(geom.Pt(0, 0), geom.Pt(6, 8)); math.Abs(got-5) > 1e-9 {
		t.Errorf("Travel = %v, want 5", got)
	}
	st := Stop{Arrive: 10, Duration: 3}
	if st.Finish() != 13 {
		t.Errorf("Finish = %v", st.Finish())
	}
}

func TestFinalizeTourTimes(t *testing.T) {
	in := &Instance{
		Depot: geom.Pt(0, 0),
		Requests: []Request{
			{Pos: geom.Pt(10, 0), Duration: 100},
			{Pos: geom.Pt(10, 10), Duration: 50},
		},
		Gamma: 2.7, Speed: 1, K: 1,
	}
	tour := Tour{Stops: []Stop{
		{Node: 0, Duration: 100},
		{Node: 1, Duration: 50},
	}}
	FinalizeTour(in, &tour)
	if math.Abs(tour.Stops[0].Arrive-10) > 1e-9 {
		t.Errorf("stop 0 arrive = %v, want 10", tour.Stops[0].Arrive)
	}
	// 10 travel + 100 charge + 10 travel = arrive at 120.
	if math.Abs(tour.Stops[1].Arrive-120) > 1e-9 {
		t.Errorf("stop 1 arrive = %v, want 120", tour.Stops[1].Arrive)
	}
	// + 50 charge + sqrt(200) back.
	want := 170 + math.Sqrt(200)
	if math.Abs(tour.Delay-want) > 1e-9 {
		t.Errorf("delay = %v, want %v", tour.Delay, want)
	}
}

func TestFinalizeRefreshesLongest(t *testing.T) {
	in := &Instance{
		Depot: geom.Pt(0, 0),
		Requests: []Request{
			{Pos: geom.Pt(5, 0), Duration: 10},
			{Pos: geom.Pt(-8, 0), Duration: 10},
		},
		Gamma: 2.7, Speed: 1, K: 2,
	}
	s := &Schedule{Tours: []Tour{
		{Stops: []Stop{{Node: 0, Duration: 10, Covers: []int{0}}}},
		{Stops: []Stop{{Node: 1, Duration: 10, Covers: []int{1}}}},
	}}
	Finalize(in, s)
	if math.Abs(s.Tours[0].Delay-20) > 1e-9 || math.Abs(s.Tours[1].Delay-26) > 1e-9 {
		t.Errorf("delays = %v, %v", s.Tours[0].Delay, s.Tours[1].Delay)
	}
	if s.Longest != s.Tours[1].Delay {
		t.Errorf("Longest = %v, want %v", s.Longest, s.Tours[1].Delay)
	}
	if s.NumStops() != 2 {
		t.Errorf("NumStops = %d", s.NumStops())
	}
}

// TestApproCoverageAttributionIsPartition is the attribution property from
// the paper's accounting: every request appears in exactly one stop's
// Covers list, across many random instances (testing/quick drives the
// shapes).
func TestApproCoverageAttributionIsPartition(t *testing.T) {
	f := func(seed int64, nRaw uint8, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw%120)
		k := 1 + int(kRaw%4)
		in := &Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: k}
		for i := 0; i < n; i++ {
			in.Requests = append(in.Requests, Request{
				Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
				Duration: rng.Float64() * 5400,
			})
		}
		s, err := Appro(context.Background(), in, Options{Seed: seed})
		if err != nil {
			return false
		}
		count := make([]int, n)
		for _, tour := range s.Tours {
			for _, st := range tour.Stops {
				for _, u := range st.Covers {
					count[u]++
				}
			}
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestApproInsertsAfterLatestFinishNeighbor pins the paper's Eq. (9)/(13)
// insertion rule on a hand-built geometry: three sensors in a row where
// the middle one bridges two initial stops, so it must be inserted right
// after whichever neighbor finishes later.
func TestApproInsertsAfterLatestFinishNeighbor(t *testing.T) {
	// Sensors at x = 0, 4, 8 (gamma 2.7): the charging graph has no
	// edges (spacing 4 > 2.7), so S_I is all three. In H, 0-4 and 4-8
	// are adjacent iff their disks share a sensor — they don't (no
	// sensor in the lens), so H has no edges either and V'_H is all
	// three: nothing pending. Use spacing 2 instead for a bridge:
	// sensors at 0, 2, 4. G_c edges: (0,1), (1,2). S_I (max-degree
	// first) = {1} — a single stop covering everything. So to force a
	// pending insertion we need two separated clusters bridged by one
	// candidate; verify simply that the bridge scenario stays feasible
	// and single-charger tours keep monotone arrival times.
	in := &Instance{Depot: geom.Pt(-10, 0), Gamma: 2.7, Speed: 1, K: 1}
	for _, x := range []float64{0, 2, 4, 20, 22, 24, 11.5} {
		in.Requests = append(in.Requests, Request{Pos: geom.Pt(x, 0), Duration: 100})
	}
	s, err := Appro(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if vs := Verify(in, Execute(context.Background(), in, s)); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
	for _, tour := range s.Tours {
		for i := 1; i < len(tour.Stops); i++ {
			if tour.Stops[i].Arrive <= tour.Stops[i-1].Finish() {
				t.Fatal("arrival times not monotone along tour")
			}
		}
	}
}

func TestInsertStopPositions(t *testing.T) {
	tour := Tour{Stops: []Stop{{Node: 1}, {Node: 2}}}
	insertStop(&tour, 1, Stop{Node: 99})
	got := []int{tour.Stops[0].Node, tour.Stops[1].Node, tour.Stops[2].Node}
	if got[0] != 1 || got[1] != 99 || got[2] != 2 {
		t.Errorf("after insert: %v", got)
	}
	insertStop(&tour, 0, Stop{Node: 7})
	if tour.Stops[0].Node != 7 {
		t.Errorf("insert at head: %v", tour.Stops[0].Node)
	}
	insertStop(&tour, len(tour.Stops), Stop{Node: 8})
	if tour.Stops[len(tour.Stops)-1].Node != 8 {
		t.Error("insert at tail failed")
	}
}

func TestCoverGridCaches(t *testing.T) {
	in := &Instance{
		Depot: geom.Pt(0, 0),
		Requests: []Request{
			{Pos: geom.Pt(0, 0)}, {Pos: geom.Pt(1, 0)}, {Pos: geom.Pt(10, 0)},
		},
		Gamma: 2.7, Speed: 1, K: 1,
	}
	cg := newCoverGrid(in)
	a := cg.cover(0)
	if len(a) != 2 || a[0] != 0 || a[1] != 1 {
		t.Fatalf("cover(0) = %v", a)
	}
	b := cg.cover(0)
	if &a[0] != &b[0] {
		t.Error("cover not cached")
	}
	if c := cg.cover(2); len(c) != 1 || c[0] != 2 {
		t.Errorf("cover(2) = %v", c)
	}
}
