package core

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// Violation describes one way a schedule breaks the problem's constraints.
type Violation struct {
	// Kind is a short machine-readable category.
	Kind string
	// Detail is a human-readable description.
	Detail string
}

func (v Violation) String() string { return v.Kind + ": " + v.Detail }

// Verify checks a schedule against the problem definition independently of
// how it was produced:
//
//  1. coverage — every request is attributed to exactly one stop, and lies
//     within gamma of that stop's sojourn location;
//  2. node-disjointness — no sojourn location is used by two tours;
//  3. time consistency — within each tour, stop times respect travel at
//     the instance speed and charging durations, and each stop's duration
//     is at least the longest remaining charge among the sensors it covers;
//  4. no simultaneous overlap — for any two stops in different tours whose
//     coverage disks share a sensor, the charging intervals are disjoint.
//
// It returns all violations found (empty means the schedule is feasible).
func Verify(in *Instance, s *Schedule) []Violation {
	var out []Violation
	if len(s.Tours) != in.K {
		out = append(out, Violation{
			Kind:   "tour-count",
			Detail: fmt.Sprintf("schedule has %d tours, instance has K=%d", len(s.Tours), in.K),
		})
	}

	// 1. Coverage partition and radius. A request's attribution is the
	// FIRST stop that lists it: each extra covering stop is reported as
	// its own double-cover violation (naming both the attributed stop and
	// the extra one), and the radius check runs against the attributing
	// stop only — an extra stop's distance is irrelevant to the partition
	// the schedule actually charges under, and checking it would blame
	// the wrong stop.
	attributed := make([]int, len(in.Requests))
	for i := range attributed {
		attributed[i] = -1
	}
	for k, tour := range s.Tours {
		for si, stop := range tour.Stops {
			if stop.Node < 0 || stop.Node >= len(in.Requests) {
				out = append(out, Violation{
					Kind:   "bad-node",
					Detail: fmt.Sprintf("tour %d stop %d references node %d", k, si, stop.Node),
				})
				continue
			}
			pos := in.Requests[stop.Node].Pos
			for _, u := range stop.Covers {
				if u < 0 || u >= len(in.Requests) {
					out = append(out, Violation{
						Kind:   "bad-cover",
						Detail: fmt.Sprintf("tour %d stop %d covers invalid request %d", k, si, u),
					})
					continue
				}
				if attributed[u] >= 0 {
					out = append(out, Violation{
						Kind: "double-cover",
						Detail: fmt.Sprintf("request %d is attributed to stop %d but also covered by tour %d stop %d (node %d)",
							u, attributed[u], k, si, stop.Node),
					})
					continue
				}
				attributed[u] = stop.Node
				if !geom.Within(pos, in.Requests[u].Pos, in.Gamma) {
					out = append(out, Violation{
						Kind: "out-of-range",
						Detail: fmt.Sprintf("request %d at %s is %.3f m from stop %d (gamma %.3f)",
							u, in.Requests[u].Pos, geom.Dist(pos, in.Requests[u].Pos), stop.Node, in.Gamma),
					})
				}
			}
		}
	}
	for u, a := range attributed {
		if a < 0 {
			out = append(out, Violation{
				Kind:   "uncovered",
				Detail: fmt.Sprintf("request %d is not charged by any stop", u),
			})
		}
	}

	// 2. Node-disjoint tours.
	owner := make(map[int]int)
	for k, tour := range s.Tours {
		for _, stop := range tour.Stops {
			if prev, ok := owner[stop.Node]; ok && prev != k {
				out = append(out, Violation{
					Kind:   "shared-sojourn",
					Detail: fmt.Sprintf("sojourn location %d appears in tours %d and %d", stop.Node, prev, k),
				})
			}
			owner[stop.Node] = k
		}
	}

	// 3. Time consistency per tour.
	const eps = 1e-6
	for k, tour := range s.Tours {
		cur := in.Depot
		now := 0.0
		for si, stop := range tour.Stops {
			if stop.Node < 0 || stop.Node >= len(in.Requests) {
				continue
			}
			pos := in.Requests[stop.Node].Pos
			now += in.Travel(cur, pos)
			if stop.Arrive < now-eps {
				out = append(out, Violation{
					Kind: "time-travel",
					Detail: fmt.Sprintf("tour %d stop %d arrives at %.3f s, earliest physical arrival %.3f s",
						k, si, stop.Arrive, now),
				})
			}
			now = stop.Arrive + stop.Duration
			cur = pos
			// Duration must cover the longest charge among attributed
			// sensors.
			for _, u := range stop.Covers {
				if u < 0 || u >= len(in.Requests) {
					continue
				}
				if in.Requests[u].Duration > stop.Duration+eps {
					out = append(out, Violation{
						Kind: "undercharge",
						Detail: fmt.Sprintf("tour %d stop %d duration %.3f s < request %d charge %.3f s",
							k, si, stop.Duration, u, in.Requests[u].Duration),
					})
				}
			}
		}
		if len(tour.Stops) > 0 {
			now += in.Travel(cur, in.Depot)
			if tour.Delay < now-eps {
				out = append(out, Violation{
					Kind: "delay-understated",
					Detail: fmt.Sprintf("tour %d reports delay %.3f s, physical minimum %.3f s",
						k, tour.Delay, now),
				})
			}
		}
	}

	// 4. No simultaneous charging of a shared sensor by two chargers.
	out = append(out, overlapViolations(in, s)...)
	return out
}

// overlapViolations returns a violation for every pair of stops in
// different tours whose coverage disks share at least one sensor and whose
// charging intervals overlap in time.
func overlapViolations(in *Instance, s *Schedule) []Violation {
	var out []Violation
	type flatStop struct {
		tour  int
		stop  Stop
		cover []int
	}
	grid := geom.NewGrid(in.Positions(), maxCell(in.Gamma))
	var flat []flatStop
	for k, tour := range s.Tours {
		for _, stop := range tour.Stops {
			if stop.Node < 0 || stop.Node >= len(in.Requests) {
				continue
			}
			cs := grid.Neighbors(in.Requests[stop.Node].Pos, in.Gamma, nil)
			sorted := append([]int(nil), cs...)
			sort.Ints(sorted)
			flat = append(flat, flatStop{tour: k, stop: stop, cover: sorted})
		}
	}
	const eps = 1e-9
	for i := 0; i < len(flat); i++ {
		for j := i + 1; j < len(flat); j++ {
			a, b := flat[i], flat[j]
			if a.tour == b.tour {
				continue // a single charger cannot overlap itself
			}
			if a.stop.Arrive >= b.stop.Finish()-eps || b.stop.Arrive >= a.stop.Finish()-eps {
				continue // disjoint time intervals
			}
			if !intersectsSorted(a.cover, b.cover) {
				continue
			}
			out = append(out, Violation{
				Kind: "simultaneous-charge",
				Detail: fmt.Sprintf("tours %d and %d charge a shared sensor simultaneously: stops at nodes %d [%.2f,%.2f] and %d [%.2f,%.2f]",
					a.tour, b.tour, a.stop.Node, a.stop.Arrive, a.stop.Finish(), b.stop.Node, b.stop.Arrive, b.stop.Finish()),
			})
		}
	}
	return out
}

func intersectsSorted(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}
