package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geom"
)

// handSchedule builds a minimal feasible schedule by hand for a two-sensor
// instance with disjoint coverage.
func handInstance() *Instance {
	return &Instance{
		Depot: geom.Pt(0, 0),
		Requests: []Request{
			{Pos: geom.Pt(10, 0), Duration: 100},
			{Pos: geom.Pt(-10, 0), Duration: 50},
		},
		Gamma: 2.7,
		Speed: 1,
		K:     2,
	}
}

func handSchedule() *Schedule {
	return &Schedule{
		Tours: []Tour{
			{Stops: []Stop{{Node: 0, Arrive: 10, Duration: 100, Covers: []int{0}}}, Delay: 120},
			{Stops: []Stop{{Node: 1, Arrive: 10, Duration: 50, Covers: []int{1}}}, Delay: 70},
		},
		Longest: 120,
	}
}

func hasKind(vs []Violation, kind string) bool {
	for _, v := range vs {
		if v.Kind == kind {
			return true
		}
	}
	return false
}

func TestVerifyAcceptsFeasible(t *testing.T) {
	in := handInstance()
	if vs := Verify(in, handSchedule()); len(vs) != 0 {
		t.Fatalf("violations on feasible schedule: %v", vs)
	}
}

func TestVerifyCatchesEachViolation(t *testing.T) {
	in := handInstance()
	tests := []struct {
		name   string
		mutate func(*Schedule)
		kind   string
	}{
		{"uncovered", func(s *Schedule) { s.Tours[1].Stops[0].Covers = nil }, "uncovered"},
		{"double cover", func(s *Schedule) { s.Tours[1].Stops[0].Covers = []int{0, 1} }, "double-cover"},
		{"out of range cover", func(s *Schedule) {
			s.Tours[0].Stops[0].Covers = []int{0, 1} // sensor 1 is 20 m away
			s.Tours[1].Stops[0].Covers = nil
		}, "out-of-range"},
		{"bad node", func(s *Schedule) { s.Tours[0].Stops[0].Node = 99 }, "bad-node"},
		{"bad cover index", func(s *Schedule) { s.Tours[0].Stops[0].Covers = []int{0, 42} }, "bad-cover"},
		{"arrives too early", func(s *Schedule) { s.Tours[0].Stops[0].Arrive = 3 }, "time-travel"},
		{"undercharge", func(s *Schedule) { s.Tours[0].Stops[0].Duration = 1 }, "undercharge"},
		{"delay understated", func(s *Schedule) { s.Tours[0].Delay = 50 }, "delay-understated"},
		{"wrong tour count", func(s *Schedule) { s.Tours = s.Tours[:1] }, "tour-count"},
		{"shared sojourn", func(s *Schedule) {
			s.Tours[1].Stops = append(s.Tours[1].Stops, Stop{Node: 0, Arrive: 200, Duration: 0})
		}, "shared-sojourn"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := handSchedule()
			tt.mutate(s)
			vs := Verify(in, s)
			if !hasKind(vs, tt.kind) {
				t.Errorf("want violation %q, got %v", tt.kind, vs)
			}
		})
	}
}

func TestVerifyCatchesSimultaneousCharge(t *testing.T) {
	// Two sojourn locations 3 m apart with a sensor in the shared lens:
	// charging both at the same time must be flagged.
	in := &Instance{
		Depot: geom.Pt(0, 0),
		Requests: []Request{
			{Pos: geom.Pt(10, 0), Duration: 100},  // stop A
			{Pos: geom.Pt(13, 0), Duration: 100},  // stop B
			{Pos: geom.Pt(11.5, 0), Duration: 50}, // shared sensor
		},
		Gamma: 2.7,
		Speed: 1,
		K:     2,
	}
	s := &Schedule{
		Tours: []Tour{
			{Stops: []Stop{{Node: 0, Arrive: 10, Duration: 100, Covers: []int{0, 2}}}, Delay: 120},
			{Stops: []Stop{{Node: 1, Arrive: 13, Duration: 100, Covers: []int{1}}}, Delay: 126},
		},
	}
	vs := Verify(in, s)
	if !hasKind(vs, "simultaneous-charge") {
		t.Fatalf("overlapping intervals with shared sensor not flagged: %v", vs)
	}
	// Shift tour 2 after tour 1 finishes: no more overlap.
	s.Tours[1].Stops[0].Arrive = 111
	s.Tours[1].Delay = 224
	if vs := Verify(in, s); hasKind(vs, "simultaneous-charge") {
		t.Fatalf("disjoint intervals flagged: %v", vs)
	}
}

func TestExecuteResolvesConflicts(t *testing.T) {
	// Same shared-lens geometry; hand the executor a deliberately
	// conflicting plan and check it serializes the two stops.
	in := &Instance{
		Depot: geom.Pt(0, 0),
		Requests: []Request{
			{Pos: geom.Pt(10, 0), Duration: 100},
			{Pos: geom.Pt(13, 0), Duration: 100},
			{Pos: geom.Pt(11.5, 0), Duration: 50},
		},
		Gamma: 2.7,
		Speed: 1,
		K:     2,
	}
	planned := &Schedule{
		Tours: []Tour{
			{Stops: []Stop{{Node: 0, Duration: 100, Covers: []int{0, 2}}}},
			{Stops: []Stop{{Node: 1, Duration: 100, Covers: []int{1}}}},
		},
	}
	recomputeTourTimes(in, &planned.Tours[0])
	recomputeTourTimes(in, &planned.Tours[1])
	exec := Execute(context.Background(), in, planned)
	if vs := Verify(in, exec); len(vs) != 0 {
		t.Fatalf("executed schedule infeasible: %v", vs)
	}
	if exec.WaitTime <= 0 {
		t.Error("expected a conflict wait")
	}
}

func TestExecuteNoConflictNoWait(t *testing.T) {
	in := handInstance()
	planned := handSchedule()
	exec := Execute(context.Background(), in, planned)
	if exec.WaitTime != 0 {
		t.Errorf("WaitTime = %v, want 0", exec.WaitTime)
	}
	if exec.Longest != planned.Longest {
		t.Errorf("Longest = %v, want %v", exec.Longest, planned.Longest)
	}
}

func TestExecutePreservesTourOrderAndCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	in := paperInstance(rng, 100, 3)
	s, err := Appro(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exec := Execute(context.Background(), in, s)
	for k := range s.Tours {
		if len(exec.Tours[k].Stops) != len(s.Tours[k].Stops) {
			t.Fatalf("tour %d: stop count changed", k)
		}
		for i := range s.Tours[k].Stops {
			if exec.Tours[k].Stops[i].Node != s.Tours[k].Stops[i].Node {
				t.Fatalf("tour %d: stop order changed", k)
			}
			if exec.Tours[k].Stops[i].Arrive+1e-9 < s.Tours[k].Stops[i].Arrive {
				t.Fatalf("tour %d stop %d: executed arrival earlier than planned", k, i)
			}
		}
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Kind: "uncovered", Detail: "request 3"}
	if got := v.String(); !strings.Contains(got, "uncovered") || !strings.Contains(got, "request 3") {
		t.Errorf("String = %q", got)
	}
}
