package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geom"
)

// handSchedule builds a minimal feasible schedule by hand for a two-sensor
// instance with disjoint coverage.
func handInstance() *Instance {
	return &Instance{
		Depot: geom.Pt(0, 0),
		Requests: []Request{
			{Pos: geom.Pt(10, 0), Duration: 100},
			{Pos: geom.Pt(-10, 0), Duration: 50},
		},
		Gamma: 2.7,
		Speed: 1,
		K:     2,
	}
}

func handSchedule() *Schedule {
	return &Schedule{
		Tours: []Tour{
			{Stops: []Stop{{Node: 0, Arrive: 10, Duration: 100, Covers: []int{0}}}, Delay: 120},
			{Stops: []Stop{{Node: 1, Arrive: 10, Duration: 50, Covers: []int{1}}}, Delay: 70},
		},
		Longest: 120,
	}
}

func hasKind(vs []Violation, kind string) bool {
	for _, v := range vs {
		if v.Kind == kind {
			return true
		}
	}
	return false
}

func TestVerifyAcceptsFeasible(t *testing.T) {
	in := handInstance()
	if vs := Verify(in, handSchedule()); len(vs) != 0 {
		t.Fatalf("violations on feasible schedule: %v", vs)
	}
}

func TestVerifyCatchesEachViolation(t *testing.T) {
	in := handInstance()
	tests := []struct {
		name   string
		mutate func(*Schedule)
		kind   string
	}{
		{"uncovered", func(s *Schedule) { s.Tours[1].Stops[0].Covers = nil }, "uncovered"},
		{"double cover", func(s *Schedule) { s.Tours[1].Stops[0].Covers = []int{0, 1} }, "double-cover"},
		{"out of range cover", func(s *Schedule) {
			s.Tours[0].Stops[0].Covers = []int{0, 1} // sensor 1 is 20 m away
			s.Tours[1].Stops[0].Covers = nil
		}, "out-of-range"},
		{"bad node", func(s *Schedule) { s.Tours[0].Stops[0].Node = 99 }, "bad-node"},
		{"bad cover index", func(s *Schedule) { s.Tours[0].Stops[0].Covers = []int{0, 42} }, "bad-cover"},
		{"arrives too early", func(s *Schedule) { s.Tours[0].Stops[0].Arrive = 3 }, "time-travel"},
		{"undercharge", func(s *Schedule) { s.Tours[0].Stops[0].Duration = 1 }, "undercharge"},
		{"delay understated", func(s *Schedule) { s.Tours[0].Delay = 50 }, "delay-understated"},
		{"wrong tour count", func(s *Schedule) { s.Tours = s.Tours[:1] }, "tour-count"},
		{"shared sojourn", func(s *Schedule) {
			s.Tours[1].Stops = append(s.Tours[1].Stops, Stop{Node: 0, Arrive: 200, Duration: 0})
		}, "shared-sojourn"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := handSchedule()
			tt.mutate(s)
			vs := Verify(in, s)
			if !hasKind(vs, tt.kind) {
				t.Errorf("want violation %q, got %v", tt.kind, vs)
			}
		})
	}
}

// TestVerifyDoubleCoverAttribution is the regression test for the
// double-cover misattribution bug: Verify used to overwrite attributed[u]
// with each later covering stop, so the radius check and the uncovered
// accounting ran against the LAST covering stop instead of the one the
// request is actually attributed to (the first). The fixed verifier keeps
// the first attribution, reports every extra covering stop as its own
// double-cover violation, and range-checks only the attributing stop.
func TestVerifyDoubleCoverAttribution(t *testing.T) {
	// Geometry: stops at nodes 0 (x=10) and 1 (x=13), gamma 2.7. The
	// contested request 2 moves per case; request 3 (x=16) hosts a third
	// stop for the triple-cover case. Charging intervals are disjoint so
	// no simultaneous-charge noise mixes into the counts.
	build := func(contestedX float64, covers0, covers1, covers2 []int) (*Instance, *Schedule) {
		in := &Instance{
			Depot: geom.Pt(0, 0),
			Requests: []Request{
				{Pos: geom.Pt(10, 0), Duration: 100},
				{Pos: geom.Pt(13, 0), Duration: 100},
				{Pos: geom.Pt(contestedX, 0), Duration: 50},
			},
			Gamma: 2.7,
			Speed: 1,
			K:     2,
		}
		t1 := Tour{Stops: []Stop{{Node: 0, Arrive: 10, Duration: 100, Covers: covers0}}, Delay: 120}
		t2 := Tour{Stops: []Stop{{Node: 1, Arrive: 115, Duration: 100, Covers: covers1}}, Delay: 228}
		if covers2 != nil {
			// A third stop needs a third sojourn sensor; it rides in
			// tour 2 after the node-1 stop.
			in.Requests = append(in.Requests, Request{Pos: geom.Pt(16, 0), Duration: 100})
			t2.Stops = append(t2.Stops, Stop{Node: 3, Arrive: 220, Duration: 100, Covers: covers2})
			t2.Delay = 336
		}
		s := &Schedule{Tours: []Tour{t1, t2}, Longest: t2.Delay}
		return in, s
	}
	count := func(vs []Violation, kind string) int {
		n := 0
		for _, v := range vs {
			if v.Kind == kind {
				n++
			}
		}
		return n
	}
	tests := []struct {
		name                string
		contestedX          float64
		covers0, covers1    []int
		covers2             []int
		wantDouble          int
		wantOutOfRange      int
		wantDetailFragments []string
	}{
		{
			// Both stops can reach request 2: one extra cover, no range
			// violation anywhere.
			name:       "both stops in range",
			contestedX: 11.5,
			covers0:    []int{0, 2}, covers1: []int{1, 2},
			wantDouble: 1, wantOutOfRange: 0,
			wantDetailFragments: []string{"request 2 is attributed to stop 0", "tour 1 stop 0 (node 1)"},
		},
		{
			// The extra (second) stop cannot reach request 2. The old
			// verifier blamed stop 1 with a bogus out-of-range; the
			// attribution to stop 0 is in range, so only the double-cover
			// remains.
			name:       "extra stop out of range",
			contestedX: 9,
			covers0:    []int{0, 2}, covers1: []int{1, 2},
			wantDouble: 1, wantOutOfRange: 0,
			wantDetailFragments: []string{"request 2 is attributed to stop 0"},
		},
		{
			// The attributing (first) stop cannot reach request 2: the
			// range violation must blame stop 0, alongside the extra
			// cover by stop 1.
			name:       "attributing stop out of range",
			contestedX: 15,
			covers0:    []int{0, 2}, covers1: []int{1, 2},
			wantDouble: 1, wantOutOfRange: 1,
			wantDetailFragments: []string{"from stop 0", "request 2 is attributed to stop 0"},
		},
		{
			// Three stops cover request 2: every extra stop is reported,
			// not just "two stops".
			name:       "triple cover",
			contestedX: 11.5,
			covers0:    []int{0, 2}, covers1: []int{1, 2}, covers2: []int{3, 2},
			wantDouble: 2, wantOutOfRange: 0,
			wantDetailFragments: []string{"tour 1 stop 0 (node 1)", "tour 1 stop 1 (node 3)"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in, s := build(tt.contestedX, tt.covers0, tt.covers1, tt.covers2)
			vs := Verify(in, s)
			if got := count(vs, "double-cover"); got != tt.wantDouble {
				t.Errorf("double-cover count = %d, want %d (%v)", got, tt.wantDouble, vs)
			}
			if got := count(vs, "out-of-range"); got != tt.wantOutOfRange {
				t.Errorf("out-of-range count = %d, want %d (%v)", got, tt.wantOutOfRange, vs)
			}
			if count(vs, "uncovered") != 0 {
				t.Errorf("attributed request reported uncovered: %v", vs)
			}
			all := ""
			for _, v := range vs {
				all += v.String() + "\n"
			}
			for _, frag := range tt.wantDetailFragments {
				if !strings.Contains(all, frag) {
					t.Errorf("violations missing %q:\n%s", frag, all)
				}
			}
		})
	}
}

func TestVerifyCatchesSimultaneousCharge(t *testing.T) {
	// Two sojourn locations 3 m apart with a sensor in the shared lens:
	// charging both at the same time must be flagged.
	in := &Instance{
		Depot: geom.Pt(0, 0),
		Requests: []Request{
			{Pos: geom.Pt(10, 0), Duration: 100},  // stop A
			{Pos: geom.Pt(13, 0), Duration: 100},  // stop B
			{Pos: geom.Pt(11.5, 0), Duration: 50}, // shared sensor
		},
		Gamma: 2.7,
		Speed: 1,
		K:     2,
	}
	s := &Schedule{
		Tours: []Tour{
			{Stops: []Stop{{Node: 0, Arrive: 10, Duration: 100, Covers: []int{0, 2}}}, Delay: 120},
			{Stops: []Stop{{Node: 1, Arrive: 13, Duration: 100, Covers: []int{1}}}, Delay: 126},
		},
	}
	vs := Verify(in, s)
	if !hasKind(vs, "simultaneous-charge") {
		t.Fatalf("overlapping intervals with shared sensor not flagged: %v", vs)
	}
	// Shift tour 2 after tour 1 finishes: no more overlap.
	s.Tours[1].Stops[0].Arrive = 111
	s.Tours[1].Delay = 224
	if vs := Verify(in, s); hasKind(vs, "simultaneous-charge") {
		t.Fatalf("disjoint intervals flagged: %v", vs)
	}
}

func TestExecuteResolvesConflicts(t *testing.T) {
	// Same shared-lens geometry; hand the executor a deliberately
	// conflicting plan and check it serializes the two stops.
	in := &Instance{
		Depot: geom.Pt(0, 0),
		Requests: []Request{
			{Pos: geom.Pt(10, 0), Duration: 100},
			{Pos: geom.Pt(13, 0), Duration: 100},
			{Pos: geom.Pt(11.5, 0), Duration: 50},
		},
		Gamma: 2.7,
		Speed: 1,
		K:     2,
	}
	planned := &Schedule{
		Tours: []Tour{
			{Stops: []Stop{{Node: 0, Duration: 100, Covers: []int{0, 2}}}},
			{Stops: []Stop{{Node: 1, Duration: 100, Covers: []int{1}}}},
		},
	}
	recomputeTourTimes(in, &planned.Tours[0])
	recomputeTourTimes(in, &planned.Tours[1])
	exec := Execute(context.Background(), in, planned)
	if vs := Verify(in, exec); len(vs) != 0 {
		t.Fatalf("executed schedule infeasible: %v", vs)
	}
	if exec.WaitTime <= 0 {
		t.Error("expected a conflict wait")
	}
}

func TestExecuteNoConflictNoWait(t *testing.T) {
	in := handInstance()
	planned := handSchedule()
	exec := Execute(context.Background(), in, planned)
	if exec.WaitTime != 0 {
		t.Errorf("WaitTime = %v, want 0", exec.WaitTime)
	}
	if exec.Longest != planned.Longest {
		t.Errorf("Longest = %v, want %v", exec.Longest, planned.Longest)
	}
}

func TestExecutePreservesTourOrderAndCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	in := paperInstance(rng, 100, 3)
	s, err := Appro(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exec := Execute(context.Background(), in, s)
	for k := range s.Tours {
		if len(exec.Tours[k].Stops) != len(s.Tours[k].Stops) {
			t.Fatalf("tour %d: stop count changed", k)
		}
		for i := range s.Tours[k].Stops {
			if exec.Tours[k].Stops[i].Node != s.Tours[k].Stops[i].Node {
				t.Fatalf("tour %d: stop order changed", k)
			}
			if exec.Tours[k].Stops[i].Arrive+1e-9 < s.Tours[k].Stops[i].Arrive {
				t.Fatalf("tour %d stop %d: executed arrival earlier than planned", k, i)
			}
		}
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Kind: "uncovered", Detail: "request 3"}
	if got := v.String(); !strings.Contains(got, "uncovered") || !strings.Contains(got, "request 3") {
		t.Errorf("String = %q", got)
	}
}
