package core

import (
	"context"
	"fmt"
	"math"
	"testing"
)

// scalingDensity is the request density (sensors per square meter) of the
// scaling ladder: at 0.12 the n=1200 rung lands exactly on the paper's
// 100m x 100m field, and every other rung keeps the same unit-disk degree
// by growing the field side as sqrt(n).
const scalingDensity = 0.12

// scalingInstance builds the density-scaled instance for one ladder rung.
func scalingInstance(n int) *Instance {
	side := math.Sqrt(float64(n) / scalingDensity)
	return equivInstance(n, 4, 1, side)
}

// BenchmarkApproScaling runs the full planning pipeline on density-scaled
// instances — the regime where the CSR graphs, the lazy-heap insertion and
// the chunked tour-time maintenance set the asymptotics. Allocations per
// plan are part of the contract: cmd/wrsn-bench's scaling mode and CI's
// bench-smoke step track this benchmark.
func BenchmarkApproScaling(b *testing.B) {
	for _, n := range []int{400, 800, 1200} {
		in := scalingInstance(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Appro(context.Background(), in, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
