package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestPlanHonorsContext is the table-driven cancellation contract test for
// the core planning entry points: a pre-cancelled or deadline-expired
// context must surface promptly as an error satisfying errors.Is against
// the matching context sentinel, and a healthy context must not.
func TestPlanHonorsContext(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	in := paperInstance(rng, 80, 2)

	tests := []struct {
		name string
		ctx  func() (context.Context, context.CancelFunc)
		want error
	}{
		{
			name: "pre-cancelled",
			ctx: func() (context.Context, context.CancelFunc) {
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				return ctx, func() {}
			},
			want: context.Canceled,
		},
		{
			name: "expired deadline",
			ctx: func() (context.Context, context.CancelFunc) {
				return context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
			},
			want: context.DeadlineExceeded,
		},
		{
			name: "healthy",
			ctx: func() (context.Context, context.CancelFunc) {
				return context.Background(), func() {}
			},
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ctx, cancel := tt.ctx()
			defer cancel()

			s, err := Appro(ctx, in, Options{})
			checkCtxResult(t, "Appro", s == nil, err, tt.want)

			s, err = ApproPlanner{}.Plan(ctx, in)
			checkCtxResult(t, "ApproPlanner.Plan", s == nil, err, tt.want)

			a, err := Analyze(ctx, in, Options{})
			checkCtxResult(t, "Analyze", a == nil, err, tt.want)
		})
	}
}

func checkCtxResult(t *testing.T, fn string, resultNil bool, err, want error) {
	t.Helper()
	if want == nil {
		if err != nil {
			t.Fatalf("%s: unexpected error: %v", fn, err)
		}
		if resultNil {
			t.Fatalf("%s: nil result without error", fn)
		}
		return
	}
	if !errors.Is(err, want) {
		t.Fatalf("%s: err = %v, want errors.Is(..., %v)", fn, err, want)
	}
	if !resultNil {
		t.Fatalf("%s: non-nil result alongside %v", fn, want)
	}
}

// TestApproMidRunCancellation cancels while planning is in flight and
// checks Appro returns promptly. A fast machine may finish the plan before
// the cancel lands, so both a clean schedule and a context.Canceled error
// are acceptable — what is not acceptable is any other error, a partial
// schedule alongside an error, or failing to return at all.
func TestApproMidRunCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	in := paperInstance(rng, 1200, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type outcome struct {
		s   *Schedule
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		s, err := Appro(ctx, in, Options{})
		ch <- outcome{s, err}
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case o := <-ch:
		if o.err != nil {
			if !errors.Is(o.err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", o.err)
			}
			if o.s != nil {
				t.Fatal("partial schedule returned alongside cancellation error")
			}
		} else if o.s == nil {
			t.Fatal("nil schedule without error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Appro did not return within 30s of cancellation")
	}
}
