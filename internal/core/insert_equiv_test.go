package core

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/ktour"
)

// approOrderedReference is the seed implementation of approOrdered, kept
// verbatim (per-candidate cover slices, full pending rescans, slice
// splices, full recomputeTourTimes per insert, map bookkeeping). The fast
// engine in insert.go must reproduce its schedules byte for byte; this
// copy is the oracle TestInsertionMatchesReference checks against.
func approOrderedReference(ctx context.Context, in *Instance, opts Options) (*Schedule, error) {
	if opts.MISOrder == 0 {
		opts.MISOrder = graph.MISMaxDegree
	}
	n := len(in.Requests)
	sched := &Schedule{Tours: make([]Tour, in.K)}
	if n == 0 {
		return sched, nil
	}
	pts := in.Positions()
	rng := rand.New(rand.NewSource(opts.Seed))

	gc := graph.UnitDisk(pts, in.Gamma)
	si := graph.MaximalIndependentSet(gc, opts.MISOrder, rng)
	h := graph.IntersectionGraph(pts, si, in.Gamma)
	vh := graph.MaximalIndependentSet(h, opts.MISOrder, rng)

	grid := geom.NewGrid(pts, maxCell(in.Gamma))
	cover := make([][]int, len(si))
	var buf []int
	for i, node := range si {
		buf = grid.Neighbors(pts[node], in.Gamma, buf)
		cs := make([]int, len(buf))
		copy(cs, buf)
		sort.Ints(cs)
		cover[i] = cs
	}

	service := make([]float64, len(vh))
	vhPts := make([]geom.Point, len(vh))
	for i, hIdx := range vh {
		vhPts[i] = pts[si[hIdx]]
		for _, u := range cover[hIdx] {
			if d := in.Requests[u].Duration; d > service[i] {
				service[i] = d
			}
		}
	}

	kt, err := ktour.MinMax(ctx, ktour.Input{
		Depot:    in.Depot,
		Nodes:    vhPts,
		Service:  service,
		Speed:    in.Speed,
		K:        in.K,
		Builder:  opts.TourBuilder,
		Restarts: opts.TourRestarts,
		Workers:  opts.Workers,
	})
	if err != nil {
		return nil, err
	}

	covered := make([]bool, n)
	inTour := make([]int, len(si))
	for i := range inTour {
		inTour[i] = -1
	}
	for k, tour := range kt.Tours {
		for _, vi := range tour {
			hIdx := vh[vi]
			stop := Stop{Node: si[hIdx], Duration: service[vi]}
			for _, u := range cover[hIdx] {
				if !covered[u] {
					covered[u] = true
					stop.Covers = append(stop.Covers, u)
				}
			}
			sched.Tours[k].Stops = append(sched.Tours[k].Stops, stop)
			inTour[hIdx] = k
		}
		recomputeTourTimes(in, &sched.Tours[k])
	}

	pending := make([]int, 0, len(si)-len(vh))
	inVH := make(map[int]bool, len(vh))
	for _, hIdx := range vh {
		inVH[hIdx] = true
	}
	for i := range si {
		if !inVH[i] {
			pending = append(pending, i)
		}
	}

	siIndexByNode := make([]int, n)
	for i := range siIndexByNode {
		siIndexByNode[i] = -1
	}
	for i, node := range si {
		siIndexByNode[node] = i
	}
	stopPos := make(map[int][2]int, len(si))
	for k := range sched.Tours {
		for p, st := range sched.Tours[k].Stops {
			stopPos[siIndexByNode[st.Node]] = [2]int{k, p}
		}
	}
	finishOf := func(hIdx int) float64 {
		tp := stopPos[hIdx]
		return sched.Tours[tp[0]].Stops[tp[1]].Finish()
	}
	latestNeighborFinish := func(hIdx int) (fn float64, best int, ok bool) {
		fn, best = math.Inf(-1), -1
		for _, w := range h.Neighbors(hIdx) {
			if inTour[w] < 0 {
				continue
			}
			if f := finishOf(int(w)); f > fn {
				fn, best = f, int(w)
			}
		}
		return fn, best, best >= 0
	}

	for len(pending) > 0 {
		pick := -1
		var pickFN float64
		var pickAfter int
		for pi, hIdx := range pending {
			fn, after, ok := latestNeighborFinish(hIdx)
			if !ok {
				continue
			}
			if pick < 0 || fn < pickFN || opts.NoSortByFinishTime {
				pick, pickFN, pickAfter = pi, fn, after
				if opts.NoSortByFinishTime {
					break
				}
			}
		}
		if pick < 0 {
			pick, pickAfter = 0, -1
		}
		hIdx := pending[pick]
		pending = append(pending[:pick], pending[pick+1:]...)

		var newCovers []int
		for _, u := range cover[hIdx] {
			if !covered[u] {
				newCovers = append(newCovers, u)
			}
		}
		if len(newCovers) == 0 {
			continue
		}
		dur := 0.0
		for _, u := range newCovers {
			if d := in.Requests[u].Duration; d > dur {
				dur = d
			}
		}
		stop := Stop{Node: si[hIdx], Duration: dur, Covers: newCovers}
		for _, u := range newCovers {
			covered[u] = true
		}

		var k, pos int
		if pickAfter >= 0 {
			tp := stopPos[pickAfter]
			k, pos = tp[0], tp[1]+1
		} else {
			k = 0
			for ki := range sched.Tours {
				if sched.Tours[ki].Delay < sched.Tours[k].Delay {
					k = ki
				}
			}
			pos = len(sched.Tours[k].Stops)
		}
		insertStop(&sched.Tours[k], pos, stop)
		recomputeTourTimes(in, &sched.Tours[k])
		inTour[hIdx] = k
		stopPos[hIdx] = [2]int{k, pos}
		stops := sched.Tours[k].Stops
		for p := pos + 1; p < len(stops); p++ {
			stopPos[siIndexByNode[stops[p].Node]] = [2]int{k, p}
		}
	}

	sched.refreshLongest()
	return sched, nil
}

// equivInstance builds a uniform random instance in the paper's regime.
func equivInstance(n, k int, seed int64, side float64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	in := &Instance{Depot: geom.Pt(side/2, side/2), Gamma: 2.7, Speed: 1, K: k}
	for i := 0; i < n; i++ {
		in.Requests = append(in.Requests, Request{
			Pos:      geom.Pt(rng.Float64()*side, rng.Float64()*side),
			Duration: (1.2 + 0.3*rng.Float64()) * 3600,
		})
	}
	return in
}

// TestInsertionMatchesReference checks the heap/chunk insertion engine
// against the retired reference implementation: the schedules must be
// byte-identical (reflect.DeepEqual over every stop, cover list, arrival
// and delay) across sizes up to n=1200, charger counts, MIS strategies,
// and the NoSortByFinishTime ablation.
func TestInsertionMatchesReference(t *testing.T) {
	type cfg struct {
		name string
		n, k int
		seed int64
		side float64
		opts Options
	}
	cfgs := []cfg{
		{"tiny", 12, 1, 1, 20, Options{}},
		{"small", 80, 2, 2, 60, Options{}},
		{"mid", 250, 2, 3, 100, Options{}},
		{"mid-k5", 250, 5, 4, 100, Options{}},
		{"dense", 400, 3, 5, 60, Options{}},
		{"lex", 250, 2, 6, 100, Options{MISOrder: graph.MISLexicographic}},
		{"mindeg", 250, 2, 7, 100, Options{MISOrder: graph.MISMinDegree}},
		{"random", 250, 2, 8, 100, Options{MISOrder: graph.MISRandom, Seed: 11}},
		{"luby", 250, 2, 9, 100, Options{MISOrder: graph.MISLuby, Seed: 5}},
		{"nosort", 250, 2, 10, 100, Options{NoSortByFinishTime: true}},
		{"restarts", 200, 2, 11, 100, Options{TourRestarts: 4}},
	}
	if !testing.Short() {
		cfgs = append(cfgs,
			cfg{"n800", 800, 3, 12, 100, Options{}},
			cfg{"n1200", 1200, 4, 13, 100, Options{}},
			cfg{"n1200-nosort", 1200, 4, 14, 100, Options{NoSortByFinishTime: true}},
		)
	}
	for _, tc := range cfgs {
		t.Run(tc.name, func(t *testing.T) {
			in := equivInstance(tc.n, tc.k, tc.seed, tc.side)
			want, err := approOrderedReference(context.Background(), in, tc.opts)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			got, err := approOrdered(context.Background(), in, tc.opts)
			if err != nil {
				t.Fatalf("engine: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				for k := range want.Tours {
					if !reflect.DeepEqual(got.Tours[k], want.Tours[k]) {
						t.Logf("tour %d diverges: got %d stops delay %v, want %d stops delay %v",
							k, len(got.Tours[k].Stops), got.Tours[k].Delay,
							len(want.Tours[k].Stops), want.Tours[k].Delay)
					}
				}
				t.Fatalf("schedule diverged from reference (longest got %v want %v)",
					got.Longest, want.Longest)
			}
		})
	}
}

// TestInsertionMatchesReferenceCoincident exercises the degenerate
// geometries the random configs cannot hit: coincident points (zero
// travel deltas, finish-time ties) and collinear chains.
func TestInsertionMatchesReferenceCoincident(t *testing.T) {
	in := &Instance{Depot: geom.Pt(0, 0), Gamma: 1, Speed: 1, K: 2}
	// Three co-located clusters plus a chain at gamma spacing.
	for i := 0; i < 6; i++ {
		in.Requests = append(in.Requests, Request{Pos: geom.Pt(5, 5), Duration: 3600})
		in.Requests = append(in.Requests, Request{Pos: geom.Pt(8, 5), Duration: 1800})
		in.Requests = append(in.Requests, Request{Pos: geom.Pt(5, 8), Duration: 2700})
	}
	for i := 0; i < 12; i++ {
		in.Requests = append(in.Requests, Request{Pos: geom.Pt(float64(i), 0.5), Duration: 600})
	}
	for _, opts := range []Options{{}, {NoSortByFinishTime: true}, {MISOrder: graph.MISLexicographic}} {
		want, err := approOrderedReference(context.Background(), in, opts)
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		got, err := approOrdered(context.Background(), in, opts)
		if err != nil {
			t.Fatalf("engine: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("opts %+v: schedule diverged from reference", opts)
		}
	}
}
