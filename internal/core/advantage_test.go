package core

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/ktour"
)

// oneToOneDelay plans the same request set one-to-one (K-minMax style) for
// comparison without importing the baselines package (which would create
// an import cycle with this package's tests).
func oneToOneDelay(t *testing.T, in *Instance) float64 {
	t.Helper()
	service := make([]float64, len(in.Requests))
	for i, r := range in.Requests {
		service[i] = r.Duration
	}
	sol, err := ktour.MinMax(context.Background(), ktour.Input{
		Depot:   in.Depot,
		Nodes:   in.Positions(),
		Service: service,
		Speed:   in.Speed,
		K:       in.K,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sol.Longest
}

// TestMultiNodeAdvantageGrowsWithDensity quantifies the paper's thesis on
// single rounds: Appro's delay relative to the best one-to-one schedule
// must shrink as the request density rises.
func TestMultiNodeAdvantageGrowsWithDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	ratioAt := func(n int) float64 {
		in := &Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: 2}
		for i := 0; i < n; i++ {
			in.Requests = append(in.Requests, Request{
				Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
				Duration: (1.2 + 0.3*rng.Float64()) * 3600,
			})
		}
		s, err := ApproPlanner{}.Plan(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		return s.Longest / oneToOneDelay(t, in)
	}
	sparse := ratioAt(60)
	dense := ratioAt(900)
	if dense >= sparse {
		t.Errorf("advantage did not grow with density: ratio %0.3f at n=60, %0.3f at n=900", sparse, dense)
	}
	if dense > 0.9 {
		t.Errorf("dense-instance ratio %.3f; expected a clear multi-node win (< 0.9)", dense)
	}
	t.Logf("Appro/one-to-one delay ratio: %.3f at n=60, %.3f at n=900", sparse, dense)
}

// TestApproNeverWorseThanOneToOneWhenDense pins the headline direction on
// several dense instances.
func TestApproNeverWorseThanOneToOneWhenDense(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 5; trial++ {
		in := &Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: 2}
		for i := 0; i < 500; i++ {
			in.Requests = append(in.Requests, Request{
				Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
				Duration: (1.2 + 0.3*rng.Float64()) * 3600,
			})
		}
		s, err := ApproPlanner{}.Plan(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if one := oneToOneDelay(t, in); s.Longest > one {
			t.Errorf("trial %d: Appro %v worse than one-to-one %v on a dense instance", trial, s.Longest, one)
		}
	}
}

// TestScheduleJSONRoundTrip ensures the schedule types serialize cleanly —
// downstream users persist plans.
func TestScheduleJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	in := paperInstance(rng, 60, 2)
	s, err := ApproPlanner{}.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Longest != s.Longest || back.NumStops() != s.NumStops() {
		t.Error("schedule changed across JSON round trip")
	}
	if vs := Verify(in, &back); len(vs) != 0 {
		t.Fatalf("deserialized schedule infeasible: %v", vs[0])
	}
	// Instances round-trip too.
	idata, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var inBack Instance
	if err := json.Unmarshal(idata, &inBack); err != nil {
		t.Fatal(err)
	}
	if err := inBack.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(inBack.Requests) != len(in.Requests) || inBack.K != in.K {
		t.Error("instance changed across JSON round trip")
	}
}

// TestApproHugeGammaSingleStop: when one disk covers the whole field, the
// plan must collapse to a single stop at some sensor.
func TestApproHugeGammaSingleStop(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	in := &Instance{Depot: geom.Pt(50, 50), Gamma: 1000, Speed: 1, K: 3}
	for i := 0; i < 40; i++ {
		in.Requests = append(in.Requests, Request{
			Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
			Duration: 1000,
		})
	}
	s, err := ApproPlanner{}.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumStops() != 1 {
		t.Errorf("stops = %d, want 1 (everything in one charging range)", s.NumStops())
	}
	if vs := Verify(in, s); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

// TestApproTwoIslands: requests split into two far-apart clusters with
// K = 2 — the schedule must stay feasible and cover both islands.
func TestApproTwoIslands(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	in := &Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: 2}
	for i := 0; i < 30; i++ {
		in.Requests = append(in.Requests, Request{
			Pos:      geom.Pt(rng.Float64()*10, rng.Float64()*10),
			Duration: 3600,
		})
	}
	for i := 0; i < 30; i++ {
		in.Requests = append(in.Requests, Request{
			Pos:      geom.Pt(90+rng.Float64()*10, 90+rng.Float64()*10),
			Duration: 3600,
		})
	}
	s, err := ApproPlanner{}.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if vs := Verify(in, s); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}
