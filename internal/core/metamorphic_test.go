package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
)

// Metamorphic properties of Algorithm Appro. The longest-charge-delay
// problem is defined on a *set* of sensors in the Euclidean plane, so its
// solution must not care how the input is written down:
//
//   - rigid motions (translation, rotation about the depot's frame) leave
//     every pairwise distance unchanged, so the tour structure must
//     survive and the longest delay may move only by float noise;
//   - permuting the request slice relabels indices and nothing else;
//   - gamma = 0 collapses multi-node charging to one-to-one charging, so
//     every sensor must get its own dedicated stop.
//
// These tests run in CI under -race (they exercise the parallel restart
// path too via TourRestarts).

func metaInstance(n int, seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	in := &Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: 2}
	for i := 0; i < n; i++ {
		in.Requests = append(in.Requests, Request{
			Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
			Duration: (1.2 + 0.3*rng.Float64()) * 3600,
			Lifetime: (1 + rng.Float64()*6) * 86400,
		})
	}
	return in
}

// structure reduces a schedule to its per-tour stop-count shape — the
// rigid-motion-invariant part of the plan (node labels stay fixed under
// translation/rotation because positions keep their indices).
func structure(s *Schedule) [][]int {
	out := make([][]int, len(s.Tours))
	for k, tr := range s.Tours {
		for _, st := range tr.Stops {
			out[k] = append(out[k], st.Node)
		}
		if out[k] == nil {
			out[k] = []int{}
		}
	}
	return out
}

func planMeta(t *testing.T, in *Instance) *Schedule {
	t.Helper()
	s, err := Appro(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// relTol compares within 1e-9 relative to the magnitude of the delays —
// rigid motions perturb every coordinate in the last ulp, and those errors
// accumulate linearly through the tour-time bookkeeping.
func relTol(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-9*scale
}

func TestMetamorphicTranslationInvariance(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			in := metaInstance(200, seed)
			base := planMeta(t, in)

			for _, d := range []geom.Point{geom.Pt(1000, -250), geom.Pt(-3.5, 17.25)} {
				moved := *in
				moved.Depot = geom.Pt(in.Depot.X+d.X, in.Depot.Y+d.Y)
				moved.Requests = append([]Request(nil), in.Requests...)
				for i := range moved.Requests {
					moved.Requests[i].Pos = geom.Pt(in.Requests[i].Pos.X+d.X, in.Requests[i].Pos.Y+d.Y)
				}
				got := planMeta(t, &moved)
				if !reflect.DeepEqual(structure(got), structure(base)) {
					t.Fatalf("translation by (%v,%v) changed the tour structure", d.X, d.Y)
				}
				if !relTol(got.Longest, base.Longest) {
					t.Fatalf("translation by (%v,%v): longest %.12f vs %.12f", d.X, d.Y, got.Longest, base.Longest)
				}
			}
		})
	}
}

func TestMetamorphicRotationInvariance(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			in := metaInstance(200, seed)
			base := planMeta(t, in)

			for _, theta := range []float64{math.Pi / 7, 1.234, math.Pi / 2} {
				sin, cos := math.Sincos(theta)
				rot := func(p geom.Point) geom.Point {
					return geom.Pt(p.X*cos-p.Y*sin, p.X*sin+p.Y*cos)
				}
				turned := *in
				turned.Depot = rot(in.Depot)
				turned.Requests = append([]Request(nil), in.Requests...)
				for i := range turned.Requests {
					turned.Requests[i].Pos = rot(in.Requests[i].Pos)
				}
				got := planMeta(t, &turned)
				if !reflect.DeepEqual(structure(got), structure(base)) {
					t.Fatalf("rotation by %.4f changed the tour structure", theta)
				}
				if !relTol(got.Longest, base.Longest) {
					t.Fatalf("rotation by %.4f: longest %.12f vs %.12f", theta, got.Longest, base.Longest)
				}
			}
		})
	}
}

// TestMetamorphicPermutationInvariance: relabeling the request slice must
// relabel the schedule and nothing else — the longest delay is *exactly*
// equal (same floats, same arithmetic), and the whole schedule matches
// once mapped through the permutation.
func TestMetamorphicPermutationInvariance(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			in := metaInstance(150, seed)
			base := planMeta(t, in)

			rng := rand.New(rand.NewSource(seed + 1000))
			for trial := 0; trial < 3; trial++ {
				perm := rng.Perm(len(in.Requests)) // perm[new] = old
				shuffled := *in
				shuffled.Requests = make([]Request, len(in.Requests))
				inv := make([]int, len(perm)) // inv[old] = new
				for newIdx, oldIdx := range perm {
					shuffled.Requests[newIdx] = in.Requests[oldIdx]
					inv[oldIdx] = newIdx
				}
				got := planMeta(t, &shuffled)
				if got.Longest != base.Longest {
					t.Fatalf("trial %d: permutation changed the longest delay: %v vs %v",
						trial, got.Longest, base.Longest)
				}
				// Map the baseline into the shuffled index space; the two
				// schedules must then be deeply equal.
				want := remapForTest(base, inv)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d: permuted schedule is not the relabeled original", trial)
				}
			}
		})
	}
}

// remapForTest relabels a schedule's request indices through inv[old]=new.
func remapForTest(s *Schedule, inv []int) *Schedule {
	out := &Schedule{Tours: make([]Tour, len(s.Tours)), Longest: s.Longest, WaitTime: s.WaitTime}
	for k, tr := range s.Tours {
		ct := Tour{Delay: tr.Delay}
		for _, st := range tr.Stops {
			cs := Stop{Node: inv[st.Node], Arrive: st.Arrive, Duration: st.Duration}
			for _, u := range st.Covers {
				cs.Covers = append(cs.Covers, inv[u])
			}
			sort.Ints(cs.Covers)
			ct.Stops = append(ct.Stops, cs)
		}
		out.Tours[k] = ct
	}
	return out
}

// TestMetamorphicGammaZeroDegenerates: with a zero charging radius no stop
// can serve a neighbor, so Appro must place exactly one stop per sensor,
// each covering only itself, with the sensor's full charge duration.
func TestMetamorphicGammaZeroDegenerates(t *testing.T) {
	in := metaInstance(120, 5)
	in.Gamma = 0
	s := planMeta(t, in)

	if got := s.NumStops(); got != len(in.Requests) {
		t.Fatalf("gamma=0: %d stops for %d sensors", got, len(in.Requests))
	}
	seen := make([]bool, len(in.Requests))
	for _, tour := range s.Tours {
		for _, st := range tour.Stops {
			if len(st.Covers) != 1 || st.Covers[0] != st.Node {
				t.Fatalf("gamma=0: stop at %d covers %v, want itself only", st.Node, st.Covers)
			}
			if seen[st.Node] {
				t.Fatalf("gamma=0: sensor %d served twice", st.Node)
			}
			seen[st.Node] = true
			if st.Duration != in.Requests[st.Node].Duration {
				t.Fatalf("gamma=0: stop at %d charges %.1f s, want %.1f s",
					st.Node, st.Duration, in.Requests[st.Node].Duration)
			}
		}
	}
	if vs := Verify(in, s); len(vs) != 0 {
		t.Fatalf("gamma=0 schedule infeasible: %v", vs[0])
	}
}

// TestMetamorphicPropertiesWithRestarts re-checks permutation invariance
// on the parallel-restart configuration, tying the metamorphic suite to
// the new concurrency layer.
func TestMetamorphicPropertiesWithRestarts(t *testing.T) {
	in := metaInstance(100, 9)
	opts := Options{TourRestarts: 4, Workers: 8}
	base, err := Appro(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	perm := rand.New(rand.NewSource(99)).Perm(len(in.Requests))
	shuffled := *in
	shuffled.Requests = make([]Request, len(in.Requests))
	for newIdx, oldIdx := range perm {
		shuffled.Requests[newIdx] = in.Requests[oldIdx]
	}
	got, err := Appro(context.Background(), &shuffled, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Longest != base.Longest {
		t.Fatalf("restarts: permutation changed longest delay: %v vs %v", got.Longest, base.Longest)
	}
}

// TestMetamorphicPropertiesWithLubyMIS extends the suite to the
// goroutine-parallel MIS strategy: for a fixed seed the plan must be
// byte-identical at any worker count (Luby's rounds are internally
// parallel but seed-deterministic), and permuting the requests must only
// relabel the schedule, exactly like the greedy orders.
func TestMetamorphicPropertiesWithLubyMIS(t *testing.T) {
	in := metaInstance(150, 3)
	opts := Options{MISOrder: graph.MISLuby, Seed: 7, TourRestarts: 4, Workers: 1}
	base, err := Appro(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range []int{1, 2, 8} {
		o := opts
		o.Workers = w
		got, err := Appro(context.Background(), in, o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d: Luby-MIS plan differs from the workers=1 plan", w)
		}
	}

	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 2; trial++ {
		perm := rng.Perm(len(in.Requests)) // perm[new] = old
		shuffled := *in
		shuffled.Requests = make([]Request, len(in.Requests))
		inv := make([]int, len(perm)) // inv[old] = new
		for newIdx, oldIdx := range perm {
			shuffled.Requests[newIdx] = in.Requests[oldIdx]
			inv[oldIdx] = newIdx
		}
		got, err := Appro(context.Background(), &shuffled, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Longest != base.Longest {
			t.Fatalf("trial %d: permutation changed longest delay under Luby MIS: %v vs %v",
				trial, got.Longest, base.Longest)
		}
		if want := remapForTest(base, inv); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: permuted Luby-MIS schedule is not the relabeled original", trial)
		}
	}

	// Translation must keep the tour structure, like the default order.
	moved := *in
	moved.Depot = geom.Pt(in.Depot.X+512, in.Depot.Y-64)
	moved.Requests = append([]Request(nil), in.Requests...)
	for i := range moved.Requests {
		moved.Requests[i].Pos = geom.Pt(in.Requests[i].Pos.X+512, in.Requests[i].Pos.Y-64)
	}
	got, err := Appro(context.Background(), &moved, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(structure(got), structure(base)) {
		t.Fatal("translation changed the tour structure under Luby MIS")
	}
	if !relTol(got.Longest, base.Longest) {
		t.Fatalf("translation under Luby MIS: longest %.12f vs %.12f", got.Longest, base.Longest)
	}
}
