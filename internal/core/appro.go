package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/ktour"
	"repro/internal/obs"
	"repro/internal/tsp"
)

// Options tunes Algorithm Appro. The zero value gives the paper's behavior
// with deterministic maximal independent sets.
type Options struct {
	// MISOrder selects the maximal-independent-set strategy for both the
	// charging graph G_c (step 2) and the auxiliary graph H (step 4).
	// Zero means graph.MISMaxDegree, which greedily picks hub sensors
	// whose charging disks cover the most neighbors — the ablation in
	// EXPERIMENTS.md shows it yields ~20% fewer stops and shorter tours
	// than min-degree or lexicographic selection on dense request sets.
	MISOrder graph.MISOrder
	// MISRescan forces the degree-ordered MIS strategies through the
	// retained quadratic reference selection loop instead of the
	// incremental bucket queue. The two engines pick the identical
	// vertex sequence on every graph, so this is a measurement and
	// verification knob, never a plan-shaping one: the plan cache drops
	// it from its key (plancache.canonOptions) and CI diffs the n=10k
	// plan bytes across both settings.
	MISRescan bool
	// Seed drives graph.MISRandom; ignored for deterministic orders.
	Seed int64
	// NoSortByFinishTime disables the paper's processing of pending
	// sojourn locations in increasing latest-neighbor-finish-time order
	// (Algorithm 1, line 9) and processes them in index order instead.
	// Used only by ablation studies.
	NoSortByFinishTime bool
	// TourBuilder selects the grand-tour construction inside the
	// K-minMax subroutine (step 5); zero means Christofides + 2-opt.
	// Used by ablation studies.
	TourBuilder ktour.Builder
	// TourRestarts is the number of independent 2-opt descents the
	// K-minMax grand-tour refinement runs; <= 1 means the single
	// sequential descent. Restarts pick their winner by a stable (length,
	// lexicographic) tiebreak, so any value stays deterministic at any
	// worker count.
	TourRestarts int
	// Workers bounds the goroutines those restarts fan across; <= 0 means
	// GOMAXPROCS. Affects speed only, never the schedule.
	Workers int
	// Sparse tunes the input sizes at which the K-minMax tour kernels
	// (MST, Christofides matching, 2-opt) abandon their exact quadratic
	// implementations for the subquadratic ones (tsp.Thresholds; the zero
	// value keeps the package defaults). Under the defaults every
	// paper-scale instance (n <= 1200) runs the exact kernels, so
	// schedules there are byte-identical to the seed. The MST kernel is
	// weight-exact at any setting; the 2-opt and matching kernels are
	// approximate above their crossovers, which is why these fields are
	// part of the plan-cache key.
	Sparse tsp.Thresholds
}

// Appro runs Algorithm 1 of the paper and returns a planned schedule for
// the K chargers. The schedule covers every request, uses node-disjoint
// closed tours through the depot, and its per-stop times follow the
// paper's finish-time bookkeeping. Use Execute to turn the plan into a
// conflict-free executed schedule (the plan itself already avoids charger
// overlap by construction of the insertion rule; Execute additionally
// enforces it against the rare residual conflicts caused by downstream
// time shifts, by making a charger wait).
//
// The algorithm runs in O(|V_s|^2) time plus the K-minMax subroutine.
//
// Appro honors ctx: it checks for cancellation between stages and
// periodically inside the insertion loop, returning an error wrapping
// ctx.Err() when the context is cancelled or its deadline passes. When
// ctx carries an obs.Tracer, the stages charging-graph, mis, kminmax and
// insertion are recorded on it.
//
// Appro treats V_s as a set: it plans on a canonically ordered copy of
// the requests (see canon.go) and maps the stop indices back, so
// permuting the input requests permutes Stop.Node/Stop.Covers labels but
// changes nothing else about the schedule.
func Appro(ctx context.Context, in *Instance, opts Options) (*Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	canon, perm := canonicalize(in)
	s, err := approOrdered(ctx, canon, opts)
	if err != nil {
		return nil, err
	}
	remapSchedule(s, perm)
	return s, nil
}

// approOrdered is Algorithm 1 proper, assuming the instance is already in
// canonical request order (or that the caller accepts index-order
// sensitivity). It is the sequential planning core; all returned indices
// are in the instance's own index space.
func approOrdered(ctx context.Context, in *Instance, opts Options) (*Schedule, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: appro: %w", err)
	}
	if opts.MISOrder == 0 {
		opts.MISOrder = graph.MISMaxDegree
	}
	n := len(in.Requests)
	sched := &Schedule{Tours: make([]Tour, in.K)}
	if n == 0 {
		return sched, nil
	}
	tr := obs.FromContext(ctx)
	tr.Add("appro.plans", 1)
	tr.Add("appro.requests", int64(n))
	pts := in.Positions()
	rng := rand.New(rand.NewSource(opts.Seed))

	// Step 1-2: charging graph G_c and its MIS S_I (candidate sojourns).
	sp := tr.Start(obs.StageChargingGraph)
	gc := graph.UnitDisk(pts, in.Gamma)
	sp.End()
	misCfg := graph.MISConfig{Rng: rng, Rescan: opts.MISRescan, Tracer: tr}
	sp = tr.Start(obs.StageMIS)
	si := graph.MaximalIndependentSetWith(gc, opts.MISOrder, misCfg)
	sp.End()

	// Step 3-4: auxiliary graph H over S_I and its MIS V'_H.
	sp = tr.Start(obs.StageChargingGraph)
	h := graph.IntersectionGraph(pts, si, in.Gamma)
	sp.End()
	sp = tr.Start(obs.StageMIS)
	vh := graph.MaximalIndependentSetWith(h, opts.MISOrder, misCfg)
	sp.End()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: appro: %w", err)
	}

	// Coverage sets N_c+(v) for each candidate sojourn, over request
	// indices. The sets live in one flat arena — covArena[covOff[i]:
	// covOff[i+1]], each segment ascending — instead of len(si) separate
	// allocations.
	sp = tr.Start(obs.StageChargingGraph)
	grid := geom.NewGrid(pts, maxCell(in.Gamma))
	covOff := make([]int32, len(si)+1)
	covArena := make([]int32, 0, 4*len(si))
	var buf []int
	for i, node := range si {
		buf = grid.Neighbors(pts[node], in.Gamma, buf)
		sort.Ints(buf)
		for _, u := range buf {
			covArena = append(covArena, int32(u))
		}
		covOff[i+1] = int32(len(covArena))
	}
	sp.End()

	// tau(v) upper bounds for the initial V'_H stops (Eq. (2)). Because
	// V'_H is independent in H, no two initial stops share a sensor, so
	// tau'(v) == tau(v) for all of them.
	service := make([]float64, len(vh))
	vhPts := make([]geom.Point, len(vh))
	for i, hIdx := range vh {
		vhPts[i] = pts[si[hIdx]]
		for _, u := range covArena[covOff[hIdx]:covOff[hIdx+1]] {
			if d := in.Requests[u].Duration; d > service[i] {
				service[i] = d
			}
		}
	}

	// Step 5: K node-disjoint closed tours over V'_H via the K-minMax
	// closed tour approximation.
	kt, err := ktour.MinMax(ctx, ktour.Input{
		Depot:    in.Depot,
		Nodes:    vhPts,
		Service:  service,
		Speed:    in.Speed,
		K:        in.K,
		Builder:  opts.TourBuilder,
		Restarts: opts.TourRestarts,
		Workers:  opts.Workers,
		Sparse:   opts.Sparse,
	})
	if err != nil {
		return nil, fmt.Errorf("core: k-minmax subroutine: %w", err)
	}

	// Initial placement of V'_H per the K-minMax tours, then step 6-24:
	// insert the pending candidates U = S_I \ V'_H one by one, each after
	// its H-neighbor with the latest charging finish time (Eqs. (8), (9),
	// (13)), skipping candidates whose coverage area is already fully
	// charged. The engine (insert.go) drives the selection with a lazy
	// min-heap on f_N and keeps tour times incrementally, producing
	// byte-identical schedules to the straightforward rescan-everything
	// loop (see TestInsertionMatchesReference).
	eng := newInsEngine(in, si, h, covOff, covArena, vh, service, kt.Tours, in.K, opts.NoSortByFinishTime)

	sp = tr.Start(obs.StageInsertion)
	defer sp.End()
	if err := eng.run(ctx, opts.NoSortByFinishTime); err != nil {
		return nil, err
	}
	eng.materialize(sched)
	sched.refreshLongest()
	return sched, nil
}

// maxCell clamps grid cell sizes away from zero for degenerate gammas.
func maxCell(gamma float64) float64 {
	if gamma <= 0 {
		return 1
	}
	return gamma
}

// insertStop inserts st at position pos in the tour's stop list.
func insertStop(t *Tour, pos int, st Stop) {
	t.Stops = append(t.Stops, Stop{})
	copy(t.Stops[pos+1:], t.Stops[pos:])
	t.Stops[pos] = st
}
