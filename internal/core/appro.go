package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/ktour"
)

// Options tunes Algorithm Appro. The zero value gives the paper's behavior
// with deterministic maximal independent sets.
type Options struct {
	// MISOrder selects the maximal-independent-set strategy for both the
	// charging graph G_c (step 2) and the auxiliary graph H (step 4).
	// Zero means graph.MISMaxDegree, which greedily picks hub sensors
	// whose charging disks cover the most neighbors — the ablation in
	// EXPERIMENTS.md shows it yields ~20% fewer stops and shorter tours
	// than min-degree or lexicographic selection on dense request sets.
	MISOrder graph.MISOrder
	// Seed drives graph.MISRandom; ignored for deterministic orders.
	Seed int64
	// NoSortByFinishTime disables the paper's processing of pending
	// sojourn locations in increasing latest-neighbor-finish-time order
	// (Algorithm 1, line 9) and processes them in index order instead.
	// Used only by ablation studies.
	NoSortByFinishTime bool
	// TourBuilder selects the grand-tour construction inside the
	// K-minMax subroutine (step 5); zero means Christofides + 2-opt.
	// Used by ablation studies.
	TourBuilder ktour.Builder
}

// Appro runs Algorithm 1 of the paper and returns a planned schedule for
// the K chargers. The schedule covers every request, uses node-disjoint
// closed tours through the depot, and its per-stop times follow the
// paper's finish-time bookkeeping. Use Execute to turn the plan into a
// conflict-free executed schedule (the plan itself already avoids charger
// overlap by construction of the insertion rule; Execute additionally
// enforces it against the rare residual conflicts caused by downstream
// time shifts, by making a charger wait).
//
// The algorithm runs in O(|V_s|^2) time plus the K-minMax subroutine.
func Appro(in *Instance, opts Options) (*Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if opts.MISOrder == 0 {
		opts.MISOrder = graph.MISMaxDegree
	}
	n := len(in.Requests)
	sched := &Schedule{Tours: make([]Tour, in.K)}
	if n == 0 {
		return sched, nil
	}
	pts := in.Positions()
	rng := rand.New(rand.NewSource(opts.Seed))

	// Step 1-2: charging graph G_c and its MIS S_I (candidate sojourns).
	gc := graph.UnitDisk(pts, in.Gamma)
	si := graph.MaximalIndependentSet(gc, opts.MISOrder, rng)

	// Step 3-4: auxiliary graph H over S_I and its MIS V'_H.
	h := graph.IntersectionGraph(pts, si, in.Gamma)
	vh := graph.MaximalIndependentSet(h, opts.MISOrder, rng)

	// Coverage sets N_c+(v) for each candidate sojourn, over request
	// indices.
	grid := geom.NewGrid(pts, maxCell(in.Gamma))
	cover := make([][]int, len(si))
	var buf []int
	for i, node := range si {
		buf = grid.Neighbors(pts[node], in.Gamma, buf)
		cs := make([]int, len(buf))
		copy(cs, buf)
		sort.Ints(cs)
		cover[i] = cs
	}

	// tau(v) upper bounds for the initial V'_H stops (Eq. (2)). Because
	// V'_H is independent in H, no two initial stops share a sensor, so
	// tau'(v) == tau(v) for all of them.
	service := make([]float64, len(vh))
	vhPts := make([]geom.Point, len(vh))
	for i, hIdx := range vh {
		vhPts[i] = pts[si[hIdx]]
		for _, u := range cover[hIdx] {
			if d := in.Requests[u].Duration; d > service[i] {
				service[i] = d
			}
		}
	}

	// Step 5: K node-disjoint closed tours over V'_H via the K-minMax
	// closed tour approximation.
	kt, err := ktour.MinMax(ktour.Input{
		Depot:   in.Depot,
		Nodes:   vhPts,
		Service: service,
		Speed:   in.Speed,
		K:       in.K,
		Builder: opts.TourBuilder,
	})
	if err != nil {
		return nil, fmt.Errorf("core: k-minmax subroutine: %w", err)
	}

	// Build the working state. covered[u] marks requests attributed to a
	// stop; inTour[i] the S_I candidates already placed (index into si).
	covered := make([]bool, n)
	inTour := make([]int, len(si)) // -1 or tour index
	for i := range inTour {
		inTour[i] = -1
	}
	for k, tour := range kt.Tours {
		for _, vi := range tour {
			hIdx := vh[vi]
			stop := Stop{Node: si[hIdx], Duration: service[vi]}
			for _, u := range cover[hIdx] {
				if !covered[u] {
					covered[u] = true
					stop.Covers = append(stop.Covers, u)
				}
			}
			sched.Tours[k].Stops = append(sched.Tours[k].Stops, stop)
			inTour[hIdx] = k
		}
		recomputeTourTimes(in, &sched.Tours[k])
	}

	// Step 6-24: insert the pending candidates U = S_I \ V'_H one by one,
	// each after its H-neighbor with the latest charging finish time
	// (Eqs. (8), (9), (13)), skipping candidates whose coverage area is
	// already fully charged.
	pending := make([]int, 0, len(si)-len(vh))
	inVH := make(map[int]bool, len(vh))
	for _, hIdx := range vh {
		inVH[hIdx] = true
	}
	for i := range si {
		if !inVH[i] {
			pending = append(pending, i)
		}
	}

	// finishOf returns f(v) for a placed candidate (index into si).
	stopPos := make(map[int][2]int, len(si)) // si index -> (tour, position)
	for k := range sched.Tours {
		for p, st := range sched.Tours[k].Stops {
			stopPos[siIndexOf(si, st.Node)] = [2]int{k, p}
		}
	}
	finishOf := func(hIdx int) float64 {
		tp := stopPos[hIdx]
		return sched.Tours[tp[0]].Stops[tp[1]].Finish()
	}
	// latestNeighborFinish computes f_N(u) (Eq. (8)) and the placed
	// neighbor attaining it; ok is false when u has no placed H-neighbor.
	latestNeighborFinish := func(hIdx int) (fn float64, best int, ok bool) {
		fn, best = math.Inf(-1), -1
		for _, w := range h.Neighbors(hIdx) {
			if inTour[w] < 0 {
				continue
			}
			if f := finishOf(int(w)); f > fn {
				fn, best = f, int(w)
			}
		}
		return fn, best, best >= 0
	}

	for len(pending) > 0 {
		// Pick the pending candidate with the smallest f_N(u)
		// (Algorithm 1, line 9). Candidates without placed neighbors are
		// deferred; the paper proves at least one candidate always has
		// one (maximality of V'_H in H), and placing candidates only
		// creates more placed neighbors.
		pick := -1
		var pickFN float64
		var pickAfter int
		for pi, hIdx := range pending {
			fn, after, ok := latestNeighborFinish(hIdx)
			if !ok {
				continue
			}
			if pick < 0 || fn < pickFN || opts.NoSortByFinishTime {
				pick, pickFN, pickAfter = pi, fn, after
				if opts.NoSortByFinishTime {
					break
				}
			}
		}
		if pick < 0 {
			// No pending candidate touches a placed one. This cannot
			// happen when V'_H is maximal, but guard against it by
			// placing the first pending candidate into the shortest
			// tour directly.
			pick, pickAfter = 0, -1
		}
		hIdx := pending[pick]
		pending = append(pending[:pick], pending[pick+1:]...)

		// Skip if all sensors in N_c+(u) are already attributed
		// (Algorithm 1, line 10).
		newCovers := newCoverage(cover[hIdx], covered)
		if len(newCovers) == 0 {
			continue
		}
		// tau'(u) per Eq. (10): longest duration among newly covered.
		dur := 0.0
		for _, u := range newCovers {
			if d := in.Requests[u].Duration; d > dur {
				dur = d
			}
		}
		stop := Stop{Node: si[hIdx], Duration: dur, Covers: newCovers}
		for _, u := range newCovers {
			covered[u] = true
		}

		var k, pos int
		if pickAfter >= 0 {
			tp := stopPos[pickAfter]
			k, pos = tp[0], tp[1]+1
		} else {
			// Fallback: append to the tour with the smallest delay.
			k = shortestTour(sched)
			pos = len(sched.Tours[k].Stops)
		}
		insertStop(&sched.Tours[k], pos, stop)
		recomputeTourTimes(in, &sched.Tours[k])
		inTour[hIdx] = k
		// Re-index stop positions for the modified tour.
		for p, st := range sched.Tours[k].Stops {
			stopPos[siIndexOf(si, st.Node)] = [2]int{k, p}
		}
	}

	sched.refreshLongest()
	return sched, nil
}

// maxCell clamps grid cell sizes away from zero for degenerate gammas.
func maxCell(gamma float64) float64 {
	if gamma <= 0 {
		return 1
	}
	return gamma
}

// newCoverage returns the members of cover not yet marked covered, in
// ascending order.
func newCoverage(cover []int, covered []bool) []int {
	var out []int
	for _, u := range cover {
		if !covered[u] {
			out = append(out, u)
		}
	}
	return out
}

// insertStop inserts st at position pos in the tour's stop list.
func insertStop(t *Tour, pos int, st Stop) {
	t.Stops = append(t.Stops, Stop{})
	copy(t.Stops[pos+1:], t.Stops[pos:])
	t.Stops[pos] = st
}

// shortestTour returns the index of the tour with the smallest delay.
func shortestTour(s *Schedule) int {
	best := 0
	for k := range s.Tours {
		if s.Tours[k].Delay < s.Tours[best].Delay {
			best = k
		}
	}
	return best
}

// siIndexOf maps a request index back to its position in the sorted S_I
// slice; si is ascending so binary search applies.
func siIndexOf(si []int, node int) int {
	lo, hi := 0, len(si)
	for lo < hi {
		mid := (lo + hi) / 2
		if si[mid] < node {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
