package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/ktour"
	"repro/internal/obs"
)

// Options tunes Algorithm Appro. The zero value gives the paper's behavior
// with deterministic maximal independent sets.
type Options struct {
	// MISOrder selects the maximal-independent-set strategy for both the
	// charging graph G_c (step 2) and the auxiliary graph H (step 4).
	// Zero means graph.MISMaxDegree, which greedily picks hub sensors
	// whose charging disks cover the most neighbors — the ablation in
	// EXPERIMENTS.md shows it yields ~20% fewer stops and shorter tours
	// than min-degree or lexicographic selection on dense request sets.
	MISOrder graph.MISOrder
	// Seed drives graph.MISRandom; ignored for deterministic orders.
	Seed int64
	// NoSortByFinishTime disables the paper's processing of pending
	// sojourn locations in increasing latest-neighbor-finish-time order
	// (Algorithm 1, line 9) and processes them in index order instead.
	// Used only by ablation studies.
	NoSortByFinishTime bool
	// TourBuilder selects the grand-tour construction inside the
	// K-minMax subroutine (step 5); zero means Christofides + 2-opt.
	// Used by ablation studies.
	TourBuilder ktour.Builder
	// TourRestarts is the number of independent 2-opt descents the
	// K-minMax grand-tour refinement runs; <= 1 means the single
	// sequential descent. Restarts pick their winner by a stable (length,
	// lexicographic) tiebreak, so any value stays deterministic at any
	// worker count.
	TourRestarts int
	// Workers bounds the goroutines those restarts fan across; <= 0 means
	// GOMAXPROCS. Affects speed only, never the schedule.
	Workers int
}

// Appro runs Algorithm 1 of the paper and returns a planned schedule for
// the K chargers. The schedule covers every request, uses node-disjoint
// closed tours through the depot, and its per-stop times follow the
// paper's finish-time bookkeeping. Use Execute to turn the plan into a
// conflict-free executed schedule (the plan itself already avoids charger
// overlap by construction of the insertion rule; Execute additionally
// enforces it against the rare residual conflicts caused by downstream
// time shifts, by making a charger wait).
//
// The algorithm runs in O(|V_s|^2) time plus the K-minMax subroutine.
//
// Appro honors ctx: it checks for cancellation between stages and
// periodically inside the insertion loop, returning an error wrapping
// ctx.Err() when the context is cancelled or its deadline passes. When
// ctx carries an obs.Tracer, the stages charging-graph, mis, kminmax and
// insertion are recorded on it.
//
// Appro treats V_s as a set: it plans on a canonically ordered copy of
// the requests (see canon.go) and maps the stop indices back, so
// permuting the input requests permutes Stop.Node/Stop.Covers labels but
// changes nothing else about the schedule.
func Appro(ctx context.Context, in *Instance, opts Options) (*Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	canon, perm := canonicalize(in)
	s, err := approOrdered(ctx, canon, opts)
	if err != nil {
		return nil, err
	}
	remapSchedule(s, perm)
	return s, nil
}

// approOrdered is Algorithm 1 proper, assuming the instance is already in
// canonical request order (or that the caller accepts index-order
// sensitivity). It is the sequential planning core; all returned indices
// are in the instance's own index space.
func approOrdered(ctx context.Context, in *Instance, opts Options) (*Schedule, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: appro: %w", err)
	}
	if opts.MISOrder == 0 {
		opts.MISOrder = graph.MISMaxDegree
	}
	n := len(in.Requests)
	sched := &Schedule{Tours: make([]Tour, in.K)}
	if n == 0 {
		return sched, nil
	}
	tr := obs.FromContext(ctx)
	tr.Add("appro.plans", 1)
	tr.Add("appro.requests", int64(n))
	pts := in.Positions()
	rng := rand.New(rand.NewSource(opts.Seed))

	// Step 1-2: charging graph G_c and its MIS S_I (candidate sojourns).
	sp := tr.Start(obs.StageChargingGraph)
	gc := graph.UnitDisk(pts, in.Gamma)
	sp.End()
	sp = tr.Start(obs.StageMIS)
	si := graph.MaximalIndependentSet(gc, opts.MISOrder, rng)
	sp.End()

	// Step 3-4: auxiliary graph H over S_I and its MIS V'_H.
	sp = tr.Start(obs.StageChargingGraph)
	h := graph.IntersectionGraph(pts, si, in.Gamma)
	sp.End()
	sp = tr.Start(obs.StageMIS)
	vh := graph.MaximalIndependentSet(h, opts.MISOrder, rng)
	sp.End()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: appro: %w", err)
	}

	// Coverage sets N_c+(v) for each candidate sojourn, over request
	// indices.
	sp = tr.Start(obs.StageChargingGraph)
	grid := geom.NewGrid(pts, maxCell(in.Gamma))
	cover := make([][]int, len(si))
	var buf []int
	for i, node := range si {
		buf = grid.Neighbors(pts[node], in.Gamma, buf)
		cs := make([]int, len(buf))
		copy(cs, buf)
		sort.Ints(cs)
		cover[i] = cs
	}
	sp.End()

	// tau(v) upper bounds for the initial V'_H stops (Eq. (2)). Because
	// V'_H is independent in H, no two initial stops share a sensor, so
	// tau'(v) == tau(v) for all of them.
	service := make([]float64, len(vh))
	vhPts := make([]geom.Point, len(vh))
	for i, hIdx := range vh {
		vhPts[i] = pts[si[hIdx]]
		for _, u := range cover[hIdx] {
			if d := in.Requests[u].Duration; d > service[i] {
				service[i] = d
			}
		}
	}

	// Step 5: K node-disjoint closed tours over V'_H via the K-minMax
	// closed tour approximation.
	kt, err := ktour.MinMax(ctx, ktour.Input{
		Depot:    in.Depot,
		Nodes:    vhPts,
		Service:  service,
		Speed:    in.Speed,
		K:        in.K,
		Builder:  opts.TourBuilder,
		Restarts: opts.TourRestarts,
		Workers:  opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("core: k-minmax subroutine: %w", err)
	}

	// Build the working state. covered[u] marks requests attributed to a
	// stop; inTour[i] the S_I candidates already placed (index into si).
	covered := make([]bool, n)
	inTour := make([]int, len(si)) // -1 or tour index
	for i := range inTour {
		inTour[i] = -1
	}
	for k, tour := range kt.Tours {
		for _, vi := range tour {
			hIdx := vh[vi]
			stop := Stop{Node: si[hIdx], Duration: service[vi]}
			for _, u := range cover[hIdx] {
				if !covered[u] {
					covered[u] = true
					stop.Covers = append(stop.Covers, u)
				}
			}
			sched.Tours[k].Stops = append(sched.Tours[k].Stops, stop)
			inTour[hIdx] = k
		}
		recomputeTourTimes(in, &sched.Tours[k])
	}

	// Step 6-24: insert the pending candidates U = S_I \ V'_H one by one,
	// each after its H-neighbor with the latest charging finish time
	// (Eqs. (8), (9), (13)), skipping candidates whose coverage area is
	// already fully charged.
	pending := make([]int, 0, len(si)-len(vh))
	inVH := make(map[int]bool, len(vh))
	for _, hIdx := range vh {
		inVH[hIdx] = true
	}
	for i := range si {
		if !inVH[i] {
			pending = append(pending, i)
		}
	}

	// siIndexByNode inverts si (request index -> position in si) so stop
	// re-indexing after an insert is O(1) per shifted stop instead of a
	// binary search per stop of the whole tour.
	siIndexByNode := make([]int, n)
	for i := range siIndexByNode {
		siIndexByNode[i] = -1
	}
	for i, node := range si {
		siIndexByNode[node] = i
	}
	// finishOf returns f(v) for a placed candidate (index into si).
	stopPos := make(map[int][2]int, len(si)) // si index -> (tour, position)
	for k := range sched.Tours {
		for p, st := range sched.Tours[k].Stops {
			stopPos[siIndexByNode[st.Node]] = [2]int{k, p}
		}
	}
	finishOf := func(hIdx int) float64 {
		tp := stopPos[hIdx]
		return sched.Tours[tp[0]].Stops[tp[1]].Finish()
	}
	// latestNeighborFinish computes f_N(u) (Eq. (8)) and the placed
	// neighbor attaining it; ok is false when u has no placed H-neighbor.
	latestNeighborFinish := func(hIdx int) (fn float64, best int, ok bool) {
		fn, best = math.Inf(-1), -1
		for _, w := range h.Neighbors(hIdx) {
			if inTour[w] < 0 {
				continue
			}
			if f := finishOf(int(w)); f > fn {
				fn, best = f, int(w)
			}
		}
		return fn, best, best >= 0
	}

	sp = tr.Start(obs.StageInsertion)
	defer sp.End()
	for iter := 0; len(pending) > 0; iter++ {
		// The insertion loop dominates dense instances; poll for
		// cancellation every few iterations so a deadline aborts the
		// plan promptly without a per-iteration atomic load.
		if iter%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: appro: insertion: %w", err)
			}
		}
		// Pick the pending candidate with the smallest f_N(u)
		// (Algorithm 1, line 9). Candidates without placed neighbors are
		// deferred; the paper proves at least one candidate always has
		// one (maximality of V'_H in H), and placing candidates only
		// creates more placed neighbors.
		pick := -1
		var pickFN float64
		var pickAfter int
		for pi, hIdx := range pending {
			fn, after, ok := latestNeighborFinish(hIdx)
			if !ok {
				continue
			}
			if pick < 0 || fn < pickFN || opts.NoSortByFinishTime {
				pick, pickFN, pickAfter = pi, fn, after
				if opts.NoSortByFinishTime {
					break
				}
			}
		}
		if pick < 0 {
			// No pending candidate touches a placed one. This cannot
			// happen when V'_H is maximal, but guard against it by
			// placing the first pending candidate into the shortest
			// tour directly.
			pick, pickAfter = 0, -1
		}
		hIdx := pending[pick]
		pending = append(pending[:pick], pending[pick+1:]...)

		// Skip if all sensors in N_c+(u) are already attributed
		// (Algorithm 1, line 10).
		newCovers := newCoverage(cover[hIdx], covered)
		if len(newCovers) == 0 {
			continue
		}
		// tau'(u) per Eq. (10): longest duration among newly covered.
		dur := 0.0
		for _, u := range newCovers {
			if d := in.Requests[u].Duration; d > dur {
				dur = d
			}
		}
		stop := Stop{Node: si[hIdx], Duration: dur, Covers: newCovers}
		for _, u := range newCovers {
			covered[u] = true
		}

		var k, pos int
		if pickAfter >= 0 {
			tp := stopPos[pickAfter]
			k, pos = tp[0], tp[1]+1
		} else {
			// Fallback: append to the tour with the smallest delay.
			k = shortestTour(sched)
			pos = len(sched.Tours[k].Stops)
		}
		insertStop(&sched.Tours[k], pos, stop)
		recomputeTourTimes(in, &sched.Tours[k])
		inTour[hIdx] = k
		// Re-index incrementally: only the new stop and the stops it
		// shifted (positions > pos in this tour) moved.
		stopPos[hIdx] = [2]int{k, pos}
		stops := sched.Tours[k].Stops
		for p := pos + 1; p < len(stops); p++ {
			stopPos[siIndexByNode[stops[p].Node]] = [2]int{k, p}
		}
	}

	sched.refreshLongest()
	return sched, nil
}

// maxCell clamps grid cell sizes away from zero for degenerate gammas.
func maxCell(gamma float64) float64 {
	if gamma <= 0 {
		return 1
	}
	return gamma
}

// newCoverage returns the members of cover not yet marked covered, in
// ascending order.
func newCoverage(cover []int, covered []bool) []int {
	var out []int
	for _, u := range cover {
		if !covered[u] {
			out = append(out, u)
		}
	}
	return out
}

// insertStop inserts st at position pos in the tour's stop list.
func insertStop(t *Tour, pos int, st Stop) {
	t.Stops = append(t.Stops, Stop{})
	copy(t.Stops[pos+1:], t.Stops[pos:])
	t.Stops[pos] = st
}

// shortestTour returns the index of the tour with the smallest delay.
func shortestTour(s *Schedule) int {
	best := 0
	for k := range s.Tours {
		if s.Tours[k].Delay < s.Tours[best].Delay {
			best = k
		}
	}
	return best
}
