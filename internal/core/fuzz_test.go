package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// FuzzApproPipeline drives the whole plan -> execute -> verify pipeline
// from fuzzed instance shapes: arbitrary sizes, charger counts, radii,
// field scales and duration spreads. The invariant under test is total:
// for every valid instance, Appro must produce a schedule and the executed
// schedule must verify clean.
//
// Run the seed corpus with `go test`; explore with
// `go test -fuzz FuzzApproPipeline ./internal/core`.
func FuzzApproPipeline(f *testing.F) {
	f.Add(int64(1), uint16(10), uint8(2), 2.7, 100.0)
	f.Add(int64(2), uint16(0), uint8(1), 2.7, 100.0)
	f.Add(int64(3), uint16(200), uint8(5), 0.1, 10.0)
	f.Add(int64(4), uint16(50), uint8(3), 25.0, 30.0)
	f.Add(int64(5), uint16(1), uint8(4), 0.0, 1.0)
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint16, kRaw uint8, gamma, side float64) {
		n := int(nRaw % 300)
		k := 1 + int(kRaw%6)
		if math.IsNaN(gamma) || math.IsInf(gamma, 0) || gamma < 0 || gamma > 1e4 {
			t.Skip()
		}
		if math.IsNaN(side) || math.IsInf(side, 0) || side <= 0 || side > 1e5 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		in := &Instance{
			Depot: geom.Pt(side/2, side/2),
			Gamma: gamma,
			Speed: 1,
			K:     k,
		}
		for i := 0; i < n; i++ {
			in.Requests = append(in.Requests, Request{
				Pos:      geom.Pt(rng.Float64()*side, rng.Float64()*side),
				Duration: rng.Float64() * 7200,
			})
		}
		planned, err := Appro(context.Background(), in, Options{Seed: seed})
		if err != nil {
			t.Fatalf("Appro failed on valid instance: %v", err)
		}
		exec := Execute(context.Background(), in, planned)
		if vs := Verify(in, exec); len(vs) != 0 {
			t.Fatalf("executed schedule infeasible (n=%d k=%d gamma=%v side=%v): %v",
				n, k, gamma, side, vs[0])
		}
	})
}

// FuzzVerifyNeverPanics feeds Verify structurally hostile schedules —
// out-of-range nodes, negative times, covers pointing anywhere — and
// requires it to report violations instead of panicking.
func FuzzVerifyNeverPanics(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(2))
	f.Add(int64(9), uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, stopsRaw uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 20)
		in := &Instance{Depot: geom.Pt(0, 0), Gamma: 2.7, Speed: 1, K: 2}
		for i := 0; i < n; i++ {
			in.Requests = append(in.Requests, Request{
				Pos:      geom.Pt(rng.Float64()*50, rng.Float64()*50),
				Duration: rng.Float64() * 100,
			})
		}
		s := &Schedule{Tours: make([]Tour, 2)}
		for si := 0; si < int(stopsRaw%8); si++ {
			k := rng.Intn(2)
			s.Tours[k].Stops = append(s.Tours[k].Stops, Stop{
				Node:     rng.Intn(25) - 3, // may be out of range
				Arrive:   rng.Float64()*1000 - 100,
				Duration: rng.Float64()*200 - 50,
				Covers:   []int{rng.Intn(25) - 3},
			})
		}
		_ = Verify(in, s) // must not panic
	})
}
