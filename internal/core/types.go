// Package core implements the paper's primary contribution: Algorithm
// Appro, the first approximation algorithm for the longest charge delay
// minimization problem with K mobile chargers under the multi-node
// ("one-to-many") wireless charging scheme, subject to the constraint that
// no sensor may be charged by two chargers simultaneously.
//
// The package also provides the shared scheduling vocabulary used by the
// baseline algorithms (package baselines) and the simulator (package sim):
// instances, stops, tours, schedules, a conflict-aware executor, and an
// independent feasibility verifier.
package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/geom"
)

// Request is one to-be-charged sensor in V_s.
type Request struct {
	// Pos is the sensor's location.
	Pos geom.Point `json:"pos"`
	// Duration is t_v = (C_v - RE_v) / eta, the time in seconds a charger
	// must spend to bring the sensor to full capacity.
	Duration float64 `json:"duration"`
	// Lifetime is the sensor's residual lifetime in seconds at request
	// time — how long until its battery empties at the current draw.
	// Deadline-driven baselines (K-EDF, NETWRAP) order sensors by it.
	// A value <= 0 means unknown; planners then fall back to treating
	// the most-depleted sensors (largest Duration) as the most urgent.
	Lifetime float64 `json:"lifetime,omitempty"`
}

// Instance is one longest-charge-delay-minimization problem: a depot, the
// set V_s of charging requests, the charging radius gamma, the charger
// travel speed, and the number of chargers K.
type Instance struct {
	// Depot is where all K chargers start and end their closed tours.
	Depot geom.Point `json:"depot"`
	// Requests is the to-be-charged sensor set V_s.
	Requests []Request `json:"requests"`
	// Gamma is the wireless charging radius in meters (paper: 2.7 m).
	Gamma float64 `json:"gamma"`
	// Speed is the charger travel speed in m/s (paper: 1 m/s).
	Speed float64 `json:"speed"`
	// K is the number of mobile charging vehicles (paper: 1..5).
	K int `json:"k"`
}

// Validate reports the first structural problem with the instance, or nil.
func (in *Instance) Validate() error {
	if in.K < 1 {
		return fmt.Errorf("core: K = %d, want >= 1", in.K)
	}
	if in.Speed <= 0 || math.IsNaN(in.Speed) {
		return fmt.Errorf("core: speed = %v, want > 0", in.Speed)
	}
	if in.Gamma < 0 || math.IsNaN(in.Gamma) {
		return fmt.Errorf("core: gamma = %v, want >= 0", in.Gamma)
	}
	for i, r := range in.Requests {
		if r.Duration < 0 || math.IsNaN(r.Duration) || math.IsInf(r.Duration, 0) {
			return fmt.Errorf("core: request %d duration = %v, want finite >= 0", i, r.Duration)
		}
	}
	return nil
}

// Positions returns the request locations as a slice, in request order.
func (in *Instance) Positions() []geom.Point {
	pts := make([]geom.Point, len(in.Requests))
	for i, r := range in.Requests {
		pts[i] = r.Pos
	}
	return pts
}

// Travel returns the travel time between two points at the instance speed.
func (in *Instance) Travel(a, b geom.Point) float64 {
	return geom.Dist(a, b) / in.Speed
}

// Stop is one sojourn of a charger in a tour. All times are seconds
// relative to the dispatch of the K chargers from the depot (t = 0).
type Stop struct {
	// Node is the index into Instance.Requests of the sensor the charger
	// parks at (sojourn locations are co-located with sensors).
	Node int `json:"node"`
	// Arrive is when the charger begins charging at this stop.
	Arrive float64 `json:"arrive"`
	// Duration is tau'(v): the planned charging time at this stop, i.e.
	// the longest remaining charge duration among the sensors newly
	// served here (Eq. (3)/(10) of the paper).
	Duration float64 `json:"duration"`
	// Covers lists the request indices attributed to this stop: sensors
	// within gamma of the stop that were not attributed to any earlier
	// stop. Every request appears in exactly one stop's Covers.
	Covers []int `json:"covers"`
}

// Finish returns the charging finish time f(v) of the stop.
func (s Stop) Finish() float64 { return s.Arrive + s.Duration }

// Tour is the closed charging tour of one charger: depot -> stops -> depot.
type Tour struct {
	// Stops in visit order. Empty means the charger never leaves the depot.
	Stops []Stop `json:"stops"`
	// Delay is the total tour delay T'(k): travel plus charging, from
	// leaving the depot to returning to it.
	Delay float64 `json:"delay"`
}

// Schedule is a complete solution: one tour per charger.
type Schedule struct {
	// Tours has exactly Instance.K entries.
	Tours []Tour `json:"tours"`
	// Longest is max over tours of Tour.Delay — the objective value.
	Longest float64 `json:"longest"`
	// WaitTime is the total time chargers spent waiting at stops to avoid
	// charging a sensor simultaneously with another charger. It is zero
	// for planned (un-executed) schedules and for one-to-one baselines.
	WaitTime float64 `json:"wait_time,omitempty"`
}

// NumStops returns the total number of stops across all tours.
func (s *Schedule) NumStops() int {
	n := 0
	for _, t := range s.Tours {
		n += len(t.Stops)
	}
	return n
}

// Planner is anything that can plan charging tours for an instance: the
// paper's Appro (see ApproPlanner) and the baseline heuristics in package
// baselines all satisfy it, which is what lets the simulator and the
// benchmark harness treat them uniformly.
type Planner interface {
	// Name returns the algorithm's display name (e.g. "Appro", "K-EDF").
	Name() string
	// Plan produces a schedule for the instance. Implementations must
	// cover every request and return node-disjoint tours.
	//
	// Plan honors ctx: when the context is cancelled or its deadline
	// passes, implementations return promptly with an error wrapping
	// ctx.Err() (check with errors.Is against context.Canceled or
	// context.DeadlineExceeded). When ctx carries an obs.Tracer,
	// implementations record their stage spans on it.
	Plan(ctx context.Context, in *Instance) (*Schedule, error)
}

// ApproPlanner adapts Appro to the Planner interface.
type ApproPlanner struct {
	// Opts tunes the algorithm; the zero value is the paper's default.
	Opts Options
}

// Name implements Planner.
func (p ApproPlanner) Name() string { return "Appro" }

// PlanOptions exposes the options the planner plans under. Consumers that
// memoize schedules (internal/plancache) fold these into their keys, so
// two ApproPlanners differing in a plan-changing option (TourRestarts,
// MISOrder, ...) never alias to one cached entry.
func (p ApproPlanner) PlanOptions() Options { return p.Opts }

// Plan implements Planner by running Algorithm Appro and then executing the
// plan so the returned schedule is conflict-free.
func (p ApproPlanner) Plan(ctx context.Context, in *Instance) (*Schedule, error) {
	s, err := Appro(ctx, in, p.Opts)
	if err != nil {
		return nil, err
	}
	return Execute(ctx, in, s), nil
}

// FinalizeTour rewrites the Arrive times of every stop in the tour from the
// stop sequence and durations and refreshes the tour delay. Baseline
// planners use it after arranging their stop sequences.
func FinalizeTour(in *Instance, t *Tour) { recomputeTourTimes(in, t) }

// Finalize recomputes all tour times and the schedule's Longest delay.
func Finalize(in *Instance, s *Schedule) {
	for k := range s.Tours {
		recomputeTourTimes(in, &s.Tours[k])
	}
	s.refreshLongest()
}

// recomputeTourTimes rewrites the Arrive times of every stop in the tour
// from the stop sequence and durations, and refreshes the tour delay:
// arrive(i) = finish(i-1) + travel, with the first stop reached from the
// depot and the delay including the return leg. This is the closed form of
// the paper's Eqs. (6), (11) and (12).
func recomputeTourTimes(in *Instance, t *Tour) {
	cur := in.Depot
	now := 0.0
	for i := range t.Stops {
		pos := in.Requests[t.Stops[i].Node].Pos
		now += in.Travel(cur, pos)
		t.Stops[i].Arrive = now
		now += t.Stops[i].Duration
		cur = pos
	}
	if len(t.Stops) > 0 {
		now += in.Travel(cur, in.Depot)
	}
	t.Delay = now
}

// refreshLongest recomputes Schedule.Longest from the tour delays.
func (s *Schedule) refreshLongest() {
	s.Longest = 0
	for _, t := range s.Tours {
		if t.Delay > s.Longest {
			s.Longest = t.Delay
		}
	}
}
