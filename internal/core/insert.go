package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/graph"
)

// This file implements the step-6 insertion phase of Algorithm Appro
// (appro.go) with sub-quadratic data structures. The engine produces
// schedules byte-identical to the straightforward implementation — rescan
// every pending candidate, splice a slice, recompute the whole tour — by
// three observations:
//
//  1. f_N(u), the latest finish time among u's placed H-neighbors, never
//     decreases: finishes only grow (inserting a stop shifts downstream
//     arrivals later, never earlier) and the placed set only grows. A
//     min-heap over (f_N(u), u) with lazy re-keying therefore pops the
//     exact argmin the reference scan finds: stored keys are lower bounds,
//     so a popped entry whose recomputed key is unchanged is the true
//     lexicographic minimum. The reference breaks f_N ties by first
//     position in the pending list, which is ascending si order — the
//     heap's secondary key.
//
//  2. Tours are stored as chunks of consecutive stops with a lazy "clean
//     frontier": chunks left of the frontier hold arrival times bit-equal
//     to what a full depot-onward recomputation would produce. The
//     reference recomputation satisfies now == Arrive[i]+Duration[i] after
//     every stop, so a chunk can be recomputed exactly from its
//     predecessor's last (arrive + duration) — the same two floats added
//     in the same order. An insert invalidates only the suffix of one
//     tour (frontier moves back to the insertion chunk) instead of paying
//     an O(L) full-tour walk per insert.
//
//  3. Cover sets live in one flat arena ([]int32 + offsets), and the
//     inVH/stopPos maps of the reference become flat slices indexed by si
//     position, eliminating per-candidate allocations and map traffic.
//
// The equivalence is enforced by TestInsertionMatchesReference, which runs
// the retired reference implementation side by side with this engine.

const (
	chunkMax   = 128 // chunk size that triggers a split
	chunkSplit = 64  // size of the left half after a split
)

// wchunk is one block of consecutive stops of a working tour. Parallel
// arrays rather than a []Stop keep the hot arrival recomputation loop on
// contiguous float64s, and covers live in the engine's arena.
type wchunk struct {
	t      *wtour
	cidx   int // index of this chunk within t.chunks
	node   []int32
	hidx   []int32 // si index of each stop (dense inverse of node)
	dur    []float64
	arr    []float64
	covOff []int32
	covLen []int32
}

// wtour is the working representation of one charger tour: a sequence of
// non-empty chunks plus the clean frontier. chunks[:clean] hold arrival
// times bit-identical to a full recomputeTourTimes walk.
type wtour struct {
	chunks []*wchunk
	clean  int
	n      int // total stops
}

// ensureClean advances the frontier until chunks[:ci+1] are exact.
func (t *wtour) ensureClean(ci int, in *Instance) {
	for t.clean <= ci {
		c := t.chunks[t.clean]
		cur, now := in.Depot, 0.0
		if t.clean > 0 {
			p := t.chunks[t.clean-1]
			last := len(p.node) - 1
			cur = in.Requests[p.node[last]].Pos
			// The reference walk leaves now == arrive+duration after each
			// stop, so this is the exact entry state of chunk t.clean.
			now = p.arr[last] + p.dur[last]
		}
		for i := range c.node {
			pos := in.Requests[c.node[i]].Pos
			now += in.Travel(cur, pos)
			c.arr[i] = now
			now += c.dur[i]
			cur = pos
		}
		t.clean++
	}
}

// delay returns the tour's closed-tour delay, exactly as recomputeTourTimes
// would set it.
func (t *wtour) delay(in *Instance) float64 {
	if t.n == 0 {
		return 0
	}
	t.ensureClean(len(t.chunks)-1, in)
	c := t.chunks[len(t.chunks)-1]
	last := len(c.node) - 1
	return c.arr[last] + c.dur[last] + in.Travel(in.Requests[c.node[last]].Pos, in.Depot)
}

// finEnt is one lazy heap entry: key is a lower bound on f_N(h).
type finEnt struct {
	key float64
	h   int32
}

// insEngine carries the insertion phase's working state.
type insEngine struct {
	in       *Instance
	si       []int
	h        *graph.Undirected
	covOff   []int32 // cover-set arena offsets, len(si)+1
	covArena []int32
	covered  []bool
	tours    []*wtour
	posChunk []*wchunk // si index -> chunk holding its stop
	posIdx   []int32   // si index -> position within that chunk
	placed   []bool    // si index -> stop exists for it
	pend     []bool    // si index -> still awaiting processing
	keyed    []bool    // si index -> has entered the heap
	fheap    []finEnt  // min-heap on (f_N, si index)
	iheap    []int32   // min-heap on si index (NoSortByFinishTime)
	stopCov  []int32   // arena of per-stop attributed covers
	remain   int
	minPend  int // monotone cursor for the no-placed-neighbor fallback
}

// newInsEngine seeds the engine with the initial V'_H placement from the
// K-minMax tours, attributing coverage in the same k-then-tour-order walk
// as the reference.
func newInsEngine(in *Instance, si []int, h *graph.Undirected, covOff, covArena []int32,
	vh []int, service []float64, ktTours [][]int, K int, noSort bool) *insEngine {
	e := &insEngine{
		in:       in,
		si:       si,
		h:        h,
		covOff:   covOff,
		covArena: covArena,
		covered:  make([]bool, len(in.Requests)),
		tours:    make([]*wtour, K),
		posChunk: make([]*wchunk, len(si)),
		posIdx:   make([]int32, len(si)),
		placed:   make([]bool, len(si)),
		pend:     make([]bool, len(si)),
		keyed:    make([]bool, len(si)),
		// Every request is attributed to at most one stop, so the cover
		// arena never outgrows the request count.
		stopCov: make([]int32, 0, len(in.Requests)),
	}
	for k := range e.tours {
		e.tours[k] = &wtour{}
	}
	for k, tour := range ktTours {
		for _, vi := range tour {
			hIdx := vh[vi]
			off := int32(len(e.stopCov))
			cnt := int32(0)
			for _, u := range e.cover(hIdx) {
				if !e.covered[u] {
					e.covered[u] = true
					e.stopCov = append(e.stopCov, u)
					cnt++
				}
			}
			e.rawAppend(e.tours[k], int32(si[hIdx]), int32(hIdx), service[vi], off, cnt)
			e.placed[hIdx] = true
		}
	}
	for i := range si {
		if !e.placed[i] {
			e.pend[i] = true
			e.remain++
		}
	}
	// Key every pending candidate that already touches a placed one.
	for i := range si {
		if !e.pend[i] {
			continue
		}
		if fn, _, ok := e.latestNeighborFinish(i); ok {
			e.keyed[i] = true
			if noSort {
				e.pushIdx(int32(i))
			} else {
				e.pushFin(fn, int32(i))
			}
		}
	}
	return e
}

// cover returns candidate hIdx's coverage set N_c+(v), sorted ascending.
func (e *insEngine) cover(hIdx int) []int32 {
	return e.covArena[e.covOff[hIdx]:e.covOff[hIdx+1]]
}

// newChunk allocates a chunk with its six parallel arrays at full capacity
// up front: a chunk lives at up to chunkMax stops plus the one insert that
// triggers a split, so sizing for that eliminates all append regrowth.
func newChunk(t *wtour, cidx int) *wchunk {
	return &wchunk{
		t: t, cidx: cidx,
		node:   make([]int32, 0, chunkMax+1),
		hidx:   make([]int32, 0, chunkMax+1),
		dur:    make([]float64, 0, chunkMax+1),
		arr:    make([]float64, 0, chunkMax+1),
		covOff: make([]int32, 0, chunkMax+1),
		covLen: make([]int32, 0, chunkMax+1),
	}
}

// rawAppend pushes a stop onto the end of a tour without touching arrival
// state (used for the initial placement, which starts fully stale).
func (e *insEngine) rawAppend(t *wtour, node, hid int32, dur float64, covOff, covLen int32) {
	var c *wchunk
	if len(t.chunks) == 0 || len(t.chunks[len(t.chunks)-1].node) >= chunkMax {
		c = newChunk(t, len(t.chunks))
		t.chunks = append(t.chunks, c)
	} else {
		c = t.chunks[len(t.chunks)-1]
	}
	c.node = append(c.node, node)
	c.hidx = append(c.hidx, hid)
	c.dur = append(c.dur, dur)
	c.arr = append(c.arr, 0)
	c.covOff = append(c.covOff, covOff)
	c.covLen = append(c.covLen, covLen)
	e.posChunk[hid] = c
	e.posIdx[hid] = int32(len(c.node) - 1)
	t.n++
}

// finish returns f(v) for a placed candidate, bit-equal to
// Stop.Finish() after a full recompute.
func (e *insEngine) finish(hIdx int) float64 {
	c := e.posChunk[hIdx]
	c.t.ensureClean(c.cidx, e.in)
	i := e.posIdx[hIdx]
	return c.arr[i] + c.dur[i]
}

// latestNeighborFinish computes f_N(u) (Eq. (8)) and the placed neighbor
// attaining it; ok is false when u has no placed H-neighbor. Ties keep the
// first neighbor in H adjacency order, like the reference.
func (e *insEngine) latestNeighborFinish(hIdx int) (fn float64, best int, ok bool) {
	fn, best = math.Inf(-1), -1
	for _, w := range e.h.Neighbors(hIdx) {
		if !e.placed[w] {
			continue
		}
		if f := e.finish(int(w)); f > fn {
			fn, best = f, int(w)
		}
	}
	return fn, best, best >= 0
}

// pushFin / popFin: hand-rolled binary min-heap on (key, h) lexicographic.
func (e *insEngine) pushFin(key float64, h int32) {
	e.fheap = append(e.fheap, finEnt{key, h})
	i := len(e.fheap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !finLess(e.fheap[i], e.fheap[p]) {
			break
		}
		e.fheap[i], e.fheap[p] = e.fheap[p], e.fheap[i]
		i = p
	}
}

func finLess(a, b finEnt) bool {
	return a.key < b.key || (a.key == b.key && a.h < b.h)
}

func (e *insEngine) popFin() finEnt {
	top := e.fheap[0]
	last := len(e.fheap) - 1
	e.fheap[0] = e.fheap[last]
	e.fheap = e.fheap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && finLess(e.fheap[l], e.fheap[m]) {
			m = l
		}
		if r < last && finLess(e.fheap[r], e.fheap[m]) {
			m = r
		}
		if m == i {
			break
		}
		e.fheap[i], e.fheap[m] = e.fheap[m], e.fheap[i]
		i = m
	}
	return top
}

// pushIdx / popIdx: min-heap on si index, for the NoSortByFinishTime
// ablation (the reference then picks the first pending candidate with a
// placed neighbor, i.e. the smallest keyed si index).
func (e *insEngine) pushIdx(h int32) {
	e.iheap = append(e.iheap, h)
	i := len(e.iheap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if e.iheap[i] >= e.iheap[p] {
			break
		}
		e.iheap[i], e.iheap[p] = e.iheap[p], e.iheap[i]
		i = p
	}
}

func (e *insEngine) popIdx() int32 {
	top := e.iheap[0]
	last := len(e.iheap) - 1
	e.iheap[0] = e.iheap[last]
	e.iheap = e.iheap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && e.iheap[l] < e.iheap[m] {
			m = l
		}
		if r < last && e.iheap[r] < e.iheap[m] {
			m = r
		}
		if m == i {
			break
		}
		e.iheap[i], e.iheap[m] = e.iheap[m], e.iheap[i]
		i = m
	}
	return top
}

// pick selects the next candidate and the placed neighbor to insert after
// (-1 for the no-placed-neighbor fallback), reproducing the reference
// scan's choice exactly.
func (e *insEngine) pick(noSort bool) (hIdx, after int) {
	if noSort {
		for len(e.iheap) > 0 {
			h := e.popIdx()
			if !e.pend[h] {
				continue
			}
			_, best, _ := e.latestNeighborFinish(int(h))
			return int(h), best
		}
	} else {
		for len(e.fheap) > 0 {
			ent := e.popFin()
			if !e.pend[ent.h] {
				continue
			}
			fn, best, _ := e.latestNeighborFinish(int(ent.h))
			if fn > ent.key {
				// The key was a stale lower bound; re-key and retry. f_N
				// is monotone non-decreasing, so keys never overshoot.
				e.pushFin(fn, ent.h)
				continue
			}
			return int(ent.h), best
		}
	}
	// No pending candidate touches a placed one. This cannot happen when
	// V'_H is maximal, but guard against it like the reference: take the
	// earliest pending candidate and append it to the shortest tour.
	for !e.pend[e.minPend] {
		e.minPend++
	}
	return e.minPend, -1
}

// shortestTour returns the tour with the smallest delay (first wins ties).
func (e *insEngine) shortestTour() *wtour {
	best, bestDelay := 0, e.tours[0].delay(e.in)
	for k := 1; k < len(e.tours); k++ {
		if d := e.tours[k].delay(e.in); d < bestDelay {
			best, bestDelay = k, d
		}
	}
	return e.tours[best]
}

// insertAt splices a stop into chunk c at local index li, recomputes the
// chunk's arrivals exactly, and marks the tour's suffix stale.
func (e *insEngine) insertAt(t *wtour, c *wchunk, li int, node, hid int32, dur float64, covOff, covLen int32) {
	t.ensureClean(c.cidx, e.in)
	c.node = append(c.node, 0)
	copy(c.node[li+1:], c.node[li:])
	c.node[li] = node
	c.hidx = append(c.hidx, 0)
	copy(c.hidx[li+1:], c.hidx[li:])
	c.hidx[li] = hid
	c.dur = append(c.dur, 0)
	copy(c.dur[li+1:], c.dur[li:])
	c.dur[li] = dur
	c.arr = append(c.arr, 0)
	c.covOff = append(c.covOff, 0)
	copy(c.covOff[li+1:], c.covOff[li:])
	c.covOff[li] = covOff
	c.covLen = append(c.covLen, 0)
	copy(c.covLen[li+1:], c.covLen[li:])
	c.covLen[li] = covLen
	e.posChunk[hid] = c
	for i := li; i < len(c.node); i++ {
		e.posIdx[c.hidx[i]] = int32(i)
	}
	t.n++
	// Only this chunk's arrivals are recomputed now; everything after it
	// shifts and goes stale until someone looks at it.
	t.clean = c.cidx
	t.ensureClean(c.cidx, e.in)
	if len(c.node) >= chunkMax {
		e.split(t, c)
	}
}

// split halves an oversized chunk, keeping both halves' arrival state.
func (e *insEngine) split(t *wtour, c *wchunk) {
	nc := newChunk(t, c.cidx+1)
	nc.node = append(nc.node, c.node[chunkSplit:]...)
	nc.hidx = append(nc.hidx, c.hidx[chunkSplit:]...)
	nc.dur = append(nc.dur, c.dur[chunkSplit:]...)
	nc.arr = append(nc.arr, c.arr[chunkSplit:]...)
	nc.covOff = append(nc.covOff, c.covOff[chunkSplit:]...)
	nc.covLen = append(nc.covLen, c.covLen[chunkSplit:]...)
	c.node = c.node[:chunkSplit]
	c.hidx = c.hidx[:chunkSplit]
	c.dur = c.dur[:chunkSplit]
	c.arr = c.arr[:chunkSplit]
	c.covOff = c.covOff[:chunkSplit]
	c.covLen = c.covLen[:chunkSplit]
	t.chunks = append(t.chunks, nil)
	copy(t.chunks[c.cidx+2:], t.chunks[c.cidx+1:])
	t.chunks[c.cidx+1] = nc
	for i := c.cidx + 1; i < len(t.chunks); i++ {
		t.chunks[i].cidx = i
	}
	for i, hid := range nc.hidx {
		e.posChunk[hid] = nc
		e.posIdx[hid] = int32(i)
	}
	if t.clean > c.cidx {
		t.clean++ // both halves stay exact
	}
}

// run executes the insertion loop until no candidate is pending.
func (e *insEngine) run(ctx context.Context, noSort bool) error {
	for iter := 0; e.remain > 0; iter++ {
		// The insertion loop dominates dense instances; poll for
		// cancellation every few iterations so a deadline aborts the
		// plan promptly without a per-iteration atomic load.
		if iter%64 == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("core: appro: insertion: %w", err)
			}
		}
		hIdx, after := e.pick(noSort)
		e.pend[hIdx] = false
		e.remain--

		// Skip if all sensors in N_c+(u) are already attributed
		// (Algorithm 1, line 10); otherwise tau'(u) per Eq. (10) is the
		// longest duration among the newly covered.
		cov := e.cover(hIdx)
		cnt := int32(0)
		dur := 0.0
		for _, u := range cov {
			if !e.covered[u] {
				cnt++
				if d := e.in.Requests[u].Duration; d > dur {
					dur = d
				}
			}
		}
		if cnt == 0 {
			continue
		}
		off := int32(len(e.stopCov))
		for _, u := range cov {
			if !e.covered[u] {
				e.covered[u] = true
				e.stopCov = append(e.stopCov, u)
			}
		}

		var t *wtour
		var c *wchunk
		var li int
		if after >= 0 {
			c = e.posChunk[after]
			t = c.t
			li = int(e.posIdx[after]) + 1
		} else {
			t = e.shortestTour()
			if len(t.chunks) == 0 {
				t.chunks = append(t.chunks, newChunk(t, 0))
			}
			c = t.chunks[len(t.chunks)-1]
			li = len(c.node)
		}
		e.insertAt(t, c, li, int32(e.si[hIdx]), int32(hIdx), dur, off, cnt)
		e.placed[hIdx] = true

		// Newly reachable candidates enter the heap; already-keyed ones
		// are re-keyed lazily on pop.
		for _, w := range e.h.Neighbors(hIdx) {
			if e.pend[w] && !e.keyed[w] {
				e.keyed[w] = true
				if noSort {
					e.pushIdx(w)
				} else {
					fn, _, _ := e.latestNeighborFinish(int(w))
					e.pushFin(fn, w)
				}
			}
		}
	}
	return nil
}

// materialize writes the engine's tours into sched and recomputes all
// times from scratch — the reference's final state is exactly a full
// recomputeTourTimes of the final stop sequences.
func (e *insEngine) materialize(sched *Schedule) {
	covers := make([]int, len(e.stopCov))
	for i, u := range e.stopCov {
		covers[i] = int(u)
	}
	for k := range sched.Tours {
		t := e.tours[k]
		if t.n == 0 {
			continue
		}
		stops := make([]Stop, 0, t.n)
		for _, c := range t.chunks {
			for i := range c.node {
				var cv []int
				if c.covLen[i] > 0 {
					lo, hi := c.covOff[i], c.covOff[i]+c.covLen[i]
					cv = covers[lo:hi:hi]
				}
				stops = append(stops, Stop{Node: int(c.node[i]), Duration: c.dur[i], Covers: cv})
			}
		}
		sched.Tours[k].Stops = stops
		recomputeTourTimes(e.in, &sched.Tours[k])
	}
}
