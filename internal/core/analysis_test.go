package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
)

func TestAnalyzeEmpty(t *testing.T) {
	in := &Instance{Depot: geom.Pt(0, 0), Gamma: 2.7, Speed: 1, K: 1}
	a, err := Analyze(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.SI != 0 || a.VH != 0 || a.Ratio != 1 {
		t.Errorf("empty analysis: %+v", a)
	}
}

func TestAnalyzeRejectsInvalid(t *testing.T) {
	in := &Instance{Depot: geom.Pt(0, 0), Gamma: 2.7, Speed: 0, K: 1}
	if _, err := Analyze(context.Background(), in, Options{}); err == nil {
		t.Error("invalid instance accepted")
	}
}

// TestLemmaTwoDegreeBound is the paper's Lemma 2 as a property test: for
// any instance, the auxiliary graph H over an MIS of the charging graph
// has maximum degree at most ceil(8*pi) = 26.
func TestLemmaTwoDegreeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	orders := []graph.MISOrder{graph.MISMaxDegree, graph.MISMinDegree, graph.MISLexicographic}
	for trial := 0; trial < 25; trial++ {
		n := 50 + rng.Intn(1000)
		// Vary density: fields from 20x20 (very dense) to 150x150.
		side := 20 + rng.Float64()*130
		in := &Instance{Depot: geom.Pt(side/2, side/2), Gamma: 2.7, Speed: 1, K: 2}
		for i := 0; i < n; i++ {
			in.Requests = append(in.Requests, Request{
				Pos:      geom.Pt(rng.Float64()*side, rng.Float64()*side),
				Duration: 3600,
			})
		}
		a, err := Analyze(context.Background(), in, Options{MISOrder: orders[trial%len(orders)]})
		if err != nil {
			t.Fatal(err)
		}
		if a.DeltaH > LemmaTwoBound {
			t.Fatalf("trial %d (n=%d side=%.0f): Delta_H = %d exceeds Lemma 2 bound %d",
				trial, n, side, a.DeltaH, LemmaTwoBound)
		}
	}
}

func TestAnalyzeRatioFormula(t *testing.T) {
	// Paper's example: sensors request at <=20% residual, so
	// tau_max/tau_min <= 1.25 and the instance ratio is
	// (1 + DeltaH * 1.25) * 5.
	rng := rand.New(rand.NewSource(3))
	in := &Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: 2}
	for i := 0; i < 400; i++ {
		in.Requests = append(in.Requests, Request{
			Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
			Duration: (1.2 + 0.3*rng.Float64()) * 3600,
		})
	}
	a, err := Analyze(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.TauMax/a.TauMin > 1.25+1e-9 {
		t.Errorf("tau ratio %v exceeds the 20%%-threshold bound 1.25", a.TauMax/a.TauMin)
	}
	want := (1 + float64(a.DeltaH)*a.TauMax/a.TauMin) * 5
	if math.Abs(a.Ratio-want) > 1e-9 {
		t.Errorf("Ratio = %v, want %v", a.Ratio, want)
	}
	// The instance bound is far below the universal worst case.
	worst := 40*math.Pi*a.TauMax/a.TauMin + 1
	if a.Ratio > worst {
		t.Errorf("instance ratio %v above Theorem 1 worst case %v", a.Ratio, worst)
	}
	if a.SI < a.VH || a.VH < 1 {
		t.Errorf("set sizes inconsistent: |S_I|=%d |V'_H|=%d", a.SI, a.VH)
	}
}

func TestAnalyzeZeroDurations(t *testing.T) {
	in := &Instance{
		Depot: geom.Pt(0, 0),
		Requests: []Request{
			{Pos: geom.Pt(10, 0), Duration: 0},
			{Pos: geom.Pt(-10, 0), Duration: 0},
		},
		Gamma: 2.7, Speed: 1, K: 1,
	}
	a, err := Analyze(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Ratio != 5 {
		t.Errorf("pure-travel ratio = %v, want 5", a.Ratio)
	}
	// Mixed zero and positive durations degenerate the tau ratio.
	in.Requests[0].Duration = 100
	a, err = Analyze(context.Background(), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(a.Ratio, 1) {
		t.Errorf("degenerate tau ratio should be +Inf, got %v", a.Ratio)
	}
}
