package plancache

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

// FuzzPlanCacheKey checks the cache key's two contractual properties on
// randomized instances: (1) equal instances hash equal (a replan of the
// same network hits), and (2) an instance mutated in any single field — a
// coordinate, a duration, a lifetime, gamma, speed, K or the depot —
// hashes differently (no false hits between distinct problems).
func FuzzPlanCacheKey(f *testing.F) {
	f.Add(int64(1), uint8(0), 1.0)
	f.Add(int64(2), uint8(3), -0.5)
	f.Add(int64(3), uint8(6), 1e-9)
	f.Add(int64(42), uint8(5), 123.456)
	f.Fuzz(func(t *testing.T, seed int64, field uint8, delta float64) {
		if math.IsNaN(delta) || math.IsInf(delta, 0) || delta == 0 {
			t.Skip("delta must be a usable perturbation")
		}
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		build := func() *core.Instance {
			r := rand.New(rand.NewSource(seed))
			r.Intn(31) // keep the stream aligned with the n draw above
			in := &core.Instance{
				Depot: geom.Pt(r.Float64()*100, r.Float64()*100),
				Gamma: r.Float64() * 5,
				Speed: 0.5 + r.Float64(),
				K:     1 + r.Intn(4),
			}
			for i := 0; i < n; i++ {
				in.Requests = append(in.Requests, core.Request{
					Pos:      geom.Pt(r.Float64()*100, r.Float64()*100),
					Duration: r.Float64() * 5400,
					Lifetime: r.Float64() * 7 * 86400,
				})
			}
			return in
		}
		base, same, mutated := build(), build(), build()

		if KeyOf("Appro", base) != KeyOf("Appro", same) {
			t.Fatal("identically built instances hashed differently")
		}

		// Mutate exactly one field, verifying the perturbation actually
		// changed the stored float (tiny deltas can round away).
		ri := rng.Intn(n)
		changed := true
		bump := func(v *float64) {
			old := *v
			*v += delta
			changed = *v != old
		}
		switch field % 7 {
		case 0:
			bump(&mutated.Requests[ri].Pos.X)
		case 1:
			bump(&mutated.Requests[ri].Pos.Y)
		case 2:
			bump(&mutated.Requests[ri].Duration)
		case 3:
			bump(&mutated.Requests[ri].Lifetime)
		case 4:
			bump(&mutated.Gamma)
		case 5:
			bump(&mutated.Speed)
		case 6:
			mutated.K++
		}
		if !changed {
			t.Skip("perturbation rounded away")
		}
		if KeyOf("Appro", mutated) == KeyOf("Appro", base) {
			t.Fatalf("instances differing in field %d hashed equal", field%7)
		}

		// A warm cache must hit the equal instance and miss the mutated one.
		c := New(4)
		c.Put(t.Context(), "Appro", base, &core.Schedule{})
		if _, ok := c.Get(t.Context(), "Appro", same); !ok {
			t.Fatal("equal instance missed the cache")
		}
		if _, ok := c.Get(t.Context(), "Appro", mutated); ok {
			t.Fatal("mutated instance hit the cache")
		}
	})
}
