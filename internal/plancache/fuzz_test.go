package plancache

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/ktour"
)

// FuzzPlanCacheKey checks the cache key's contractual properties on
// randomized instances: (1) equal instances hash equal (a replan of the
// same network hits), (2) an instance mutated in any single field — a
// coordinate, a duration, a lifetime, gamma, speed, K or the depot —
// hashes differently (no false hits between distinct problems), and
// (3) perturbing any plan-changing core.Options field (TourRestarts,
// MISOrder, NoSortByFinishTime, TourBuilder, the seed under MISRandom)
// changes the key, while the speed-only Workers field and the
// engine-only MISRescan field never do.
func FuzzPlanCacheKey(f *testing.F) {
	f.Add(int64(1), uint8(0), 1.0)
	f.Add(int64(2), uint8(3), -0.5)
	f.Add(int64(3), uint8(6), 1e-9)
	f.Add(int64(42), uint8(5), 123.456)
	f.Add(int64(7), uint8(7), 2.0)
	f.Add(int64(8), uint8(9), 1.0)
	f.Add(int64(9), uint8(11), 3.0)
	f.Add(int64(10), uint8(12), 4.0)
	f.Fuzz(func(t *testing.T, seed int64, field uint8, delta float64) {
		if math.IsNaN(delta) || math.IsInf(delta, 0) || delta == 0 {
			t.Skip("delta must be a usable perturbation")
		}
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		build := func() *core.Instance {
			r := rand.New(rand.NewSource(seed))
			r.Intn(31) // keep the stream aligned with the n draw above
			in := &core.Instance{
				Depot: geom.Pt(r.Float64()*100, r.Float64()*100),
				Gamma: r.Float64() * 5,
				Speed: 0.5 + r.Float64(),
				K:     1 + r.Intn(4),
			}
			for i := 0; i < n; i++ {
				in.Requests = append(in.Requests, core.Request{
					Pos:      geom.Pt(r.Float64()*100, r.Float64()*100),
					Duration: r.Float64() * 5400,
					Lifetime: r.Float64() * 7 * 86400,
				})
			}
			return in
		}
		base, same, mutated := build(), build(), build()

		if KeyOf("Appro", nil, base) != KeyOf("Appro", nil, same) {
			t.Fatal("identically built instances hashed differently")
		}

		// Mutate exactly one instance or options field, verifying float
		// perturbations actually changed the stored value (tiny deltas can
		// round away). Fields 0-6 perturb the instance, 7-11 the options;
		// fields 12-13 perturb Workers and MISRescan, which must NOT
		// change the key (speed-only and engine-only respectively).
		var mutOpts *core.Options
		wantEqual := false
		ri := rng.Intn(n)
		changed := true
		bump := func(v *float64) {
			old := *v
			*v += delta
			changed = *v != old
		}
		switch field % 14 {
		case 0:
			bump(&mutated.Requests[ri].Pos.X)
		case 1:
			bump(&mutated.Requests[ri].Pos.Y)
		case 2:
			bump(&mutated.Requests[ri].Duration)
		case 3:
			bump(&mutated.Requests[ri].Lifetime)
		case 4:
			bump(&mutated.Gamma)
		case 5:
			bump(&mutated.Speed)
		case 6:
			mutated.K++
		case 7:
			mutOpts = &core.Options{TourRestarts: 2 + rng.Intn(16)}
		case 8:
			mutOpts = &core.Options{NoSortByFinishTime: true}
		case 9:
			mutOpts = &core.Options{MISOrder: graph.MISMinDegree}
		case 10:
			mutOpts = &core.Options{TourBuilder: ktour.BuilderMST}
		case 11:
			mutOpts = &core.Options{MISOrder: graph.MISRandom, Seed: 1 + rng.Int63n(1 << 30)}
		case 12:
			mutOpts = &core.Options{Workers: 1 + rng.Intn(16)}
			wantEqual = true
		case 13:
			mutOpts = &core.Options{MISRescan: true}
			wantEqual = true
		}
		if !changed {
			t.Skip("perturbation rounded away")
		}
		mutKey, baseKey := KeyOf("Appro", mutOpts, mutated), KeyOf("Appro", nil, base)
		if wantEqual {
			if mutKey != baseKey {
				t.Fatal("Workers is speed-only and must not change the key")
			}
		} else if mutKey == baseKey {
			t.Fatalf("inputs differing in field %d hashed equal", field%14)
		}

		// A warm cache must hit the equal input and behave per the
		// equivalence class on the mutated one.
		c := New(4)
		c.Put(t.Context(), "Appro", nil, base, &core.Schedule{})
		if _, ok := c.Get(t.Context(), "Appro", nil, same); !ok {
			t.Fatal("equal instance missed the cache")
		}
		_, ok := c.Get(t.Context(), "Appro", mutOpts, mutated)
		if ok != wantEqual {
			t.Fatalf("mutated input: cache hit = %v, want %v", ok, wantEqual)
		}
	})
}
