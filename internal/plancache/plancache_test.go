package plancache

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/ktour"
	"repro/internal/obs"
	"repro/internal/tsp"
)

func testInstance(n int, seed int64) *core.Instance {
	rng := rand.New(rand.NewSource(seed))
	in := &core.Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: 2}
	for i := 0; i < n; i++ {
		in.Requests = append(in.Requests, core.Request{
			Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
			Duration: (1.2 + 0.3*rng.Float64()) * 3600,
			Lifetime: (1 + rng.Float64()*6) * 86400,
		})
	}
	return in
}

func TestKeyOfSensitivity(t *testing.T) {
	base := testInstance(40, 1)
	baseKey := KeyOf("Appro", nil, base)
	if baseKey != KeyOf("Appro", nil, testInstance(40, 1)) {
		t.Fatal("equal instances must produce equal keys")
	}
	mutate := map[string]func(*core.Instance){
		"depot":     func(in *core.Instance) { in.Depot.X += 1e-9 },
		"gamma":     func(in *core.Instance) { in.Gamma += 1e-9 },
		"speed":     func(in *core.Instance) { in.Speed *= 1.0000001 },
		"k":         func(in *core.Instance) { in.K++ },
		"coord":     func(in *core.Instance) { in.Requests[17].Pos.Y -= 1e-9 },
		"duration":  func(in *core.Instance) { in.Requests[3].Duration += 1 },
		"lifetime":  func(in *core.Instance) { in.Requests[0].Lifetime += 1 },
		"truncated": func(in *core.Instance) { in.Requests = in.Requests[:39] },
		"swapped":   func(in *core.Instance) { r := in.Requests; r[0], r[1] = r[1], r[0] },
	}
	for name, fn := range mutate {
		in := testInstance(40, 1)
		fn(in)
		if KeyOf("Appro", nil, in) == baseKey {
			t.Errorf("%s: mutated instance hashed equal to the original", name)
		}
	}
	if KeyOf("K-EDF", nil, base) == baseKey {
		t.Error("different planner names must produce different keys")
	}
}

// TestOptionsNoLongerAlias is the regression test for the option-aliasing
// bug: the cache used to key on planner name + instance only, so two
// ApproPlanners sharing the name "Appro" but planning under different
// core.Options (e.g. TourRestarts) aliased to one entry, and the second
// planner was served the first one's stale schedule.
func TestOptionsNoLongerAlias(t *testing.T) {
	in := testInstance(30, 9)

	// Any plan-changing option field must change the key.
	planChanging := map[string]*core.Options{
		"restarts":     {TourRestarts: 8},
		"mis-order":    {MISOrder: graph.MISMinDegree},
		"no-sort":      {NoSortByFinishTime: true},
		"builder":      {TourBuilder: ktour.BuilderMST},
		"mis-random":   {MISOrder: graph.MISRandom, Seed: 1},
		"mis-luby":     {MISOrder: graph.MISLuby, Seed: 1},
		"sparse-mst":   {Sparse: tsp.Thresholds{MST: 10}},
		"sparse-2opt":  {Sparse: tsp.Thresholds{TwoOpt: 10}},
		"sparse-match": {Sparse: tsp.Thresholds{Match: 10}},
		"sparse-never": {Sparse: tsp.Thresholds{MST: -1, TwoOpt: -1, Match: -1}},
	}
	base := KeyOf("Appro", nil, in)
	for name, o := range planChanging {
		if KeyOf("Appro", o, in) == base {
			t.Errorf("%s: option set %+v aliases to the default-options key", name, *o)
		}
	}
	r1 := &core.Options{MISOrder: graph.MISRandom, Seed: 1}
	r2 := &core.Options{MISOrder: graph.MISRandom, Seed: 2}
	if KeyOf("Appro", r1, in) == KeyOf("Appro", r2, in) {
		t.Error("under MISRandom the seed changes the plan, so it must change the key")
	}
	l1 := &core.Options{MISOrder: graph.MISLuby, Seed: 1}
	l2 := &core.Options{MISOrder: graph.MISLuby, Seed: 2}
	if KeyOf("Appro", l1, in) == KeyOf("Appro", l2, in) {
		t.Error("under MISLuby the seed changes the plan, so it must change the key")
	}
	s1 := &core.Options{Sparse: tsp.Thresholds{MST: -1, TwoOpt: -2, Match: -3}}
	s2 := &core.Options{Sparse: tsp.Thresholds{MST: -9, TwoOpt: -1, Match: -1}}
	if KeyOf("Appro", s1, in) != KeyOf("Appro", s2, in) {
		t.Error(`every "never" spelling of a threshold is plan-equivalent and must share a key`)
	}

	// Options inside one plan-equivalence class must keep sharing an
	// entry: defaults spelled explicitly, restart counts <= 1, the
	// speed-only Workers field, and Seed under a deterministic MIS order.
	equivalent := map[string]*core.Options{
		"zero":             {},
		"explicit-mis":     {MISOrder: graph.MISMaxDegree},
		"explicit-builder": {TourBuilder: ktour.BuilderChristofides},
		"restarts-one":     {TourRestarts: 1},
		"restarts-neg":     {TourRestarts: -3},
		"workers":          {Workers: 7},
		"unused-seed":      {Seed: 42},
		"mis-rescan":       {MISRescan: true},
		"sparse-defaults-explicit": {Sparse: tsp.Thresholds{
			MST: tsp.DefaultMSTThreshold, TwoOpt: tsp.DefaultTwoOptThreshold, Match: tsp.DefaultMatchThreshold}},
	}
	for name, o := range equivalent {
		if KeyOf("Appro", o, in) != base {
			t.Errorf("%s: plan-equivalent option set %+v does not share the default key", name, *o)
		}
	}

	// End to end through Wrap: each planner gets its own entry and its
	// warm plan equals its own cold plan, not the other planner's.
	c := New(8)
	fast := Wrap(core.ApproPlanner{}, c)
	tuned := Wrap(core.ApproPlanner{Opts: core.Options{TourRestarts: 6}}, c)
	ctx := context.Background()
	coldFast, err := fast.Plan(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	coldTuned, err := tuned.Plan(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 2 || st.Size != 2 {
		t.Fatalf("two differently-optioned planners should occupy two entries: %+v", st)
	}
	warmFast, err := fast.Plan(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	warmTuned, err := tuned.Plan(ctx, in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coldFast, warmFast) {
		t.Error("default-options planner served a schedule it did not produce")
	}
	if !reflect.DeepEqual(coldTuned, warmTuned) {
		t.Error("tuned planner served a schedule it did not produce")
	}
	if st := c.Stats(); st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("warm replans should both hit their own entries: %+v", st)
	}
}

func TestCacheRoundTripDeepCopies(t *testing.T) {
	c := New(8)
	in := testInstance(10, 2)
	s, err := core.ApproPlanner{}.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(context.Background(), "Appro", nil, in, s)
	// Mutating the original after Put must not corrupt the cached copy.
	s.Longest = -1
	s.Tours[0].Stops[0].Covers[0] = -7

	got, ok := c.Get(context.Background(), "Appro", nil, in)
	if !ok {
		t.Fatal("expected a hit")
	}
	if got.Longest == -1 || got.Tours[0].Stops[0].Covers[0] == -7 {
		t.Fatal("cache returned memory shared with the Put schedule")
	}
	// Two Gets must not share memory with each other either.
	again, _ := c.Get(context.Background(), "Appro", nil, in)
	got.Tours[0].Stops[0].Covers[0] = -9
	if again.Tours[0].Stops[0].Covers[0] == -9 {
		t.Fatal("two Gets share memory")
	}
	if _, ok := c.Get(context.Background(), "K-EDF", nil, in); ok {
		t.Fatal("hit across planner names")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(3)
	ctx := context.Background()
	sched := &core.Schedule{Tours: []core.Tour{{}}}
	ins := make([]*core.Instance, 5)
	for i := range ins {
		ins[i] = testInstance(5, int64(100+i))
	}
	for i := 0; i < 3; i++ {
		c.Put(ctx, "p", nil, ins[i], sched)
	}
	// Touch 0 so 1 becomes the LRU victim.
	if _, ok := c.Get(ctx, "p", nil, ins[0]); !ok {
		t.Fatal("expected hit on 0")
	}
	c.Put(ctx, "p", nil, ins[3], sched)
	if _, ok := c.Get(ctx, "p", nil, ins[1]); ok {
		t.Fatal("LRU entry 1 should have been evicted")
	}
	for _, i := range []int{0, 2, 3} {
		if _, ok := c.Get(ctx, "p", nil, ins[i]); !ok {
			t.Fatalf("entry %d missing", i)
		}
	}
	st := c.Stats()
	if st.Size != 3 || st.Capacity != 3 || st.Evictions != 1 || st.Puts != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheCounters(t *testing.T) {
	tr := obs.New()
	ctx := obs.WithTracer(context.Background(), tr)
	c := New(4)
	in := testInstance(5, 3)
	if _, ok := c.Get(ctx, "p", nil, in); ok {
		t.Fatal("unexpected hit")
	}
	c.Put(ctx, "p", nil, in, &core.Schedule{})
	if _, ok := c.Get(ctx, "p", nil, in); !ok {
		t.Fatal("expected hit")
	}
	got := tr.Report().Counters
	if got["cache.hits"] != 1 || got["cache.misses"] != 1 || got["cache.puts"] != 1 {
		t.Fatalf("tracer counters = %v", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNilCacheIsNoOp(t *testing.T) {
	var c *Cache
	in := testInstance(3, 4)
	if _, ok := c.Get(context.Background(), "p", nil, in); ok {
		t.Fatal("nil cache hit")
	}
	c.Put(context.Background(), "p", nil, in, &core.Schedule{})
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Fatal("nil cache not empty")
	}
	p := core.ApproPlanner{}
	if got := Wrap(p, nil); got != core.Planner(p) {
		t.Fatal("Wrap(nil cache) should return the planner unchanged")
	}
}

// TestWrapByteIdentical is the cache's determinism guarantee: a warm hit
// returns exactly what the underlying planner produced cold.
func TestWrapByteIdentical(t *testing.T) {
	c := New(8)
	p := Wrap(core.ApproPlanner{}, c)
	if p.Name() != "Appro" {
		t.Fatalf("wrapped name = %q", p.Name())
	}
	in := testInstance(60, 5)
	cold, err := p.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := p.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm plan differs from cold plan")
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

type failingPlanner struct{}

func (failingPlanner) Name() string { return "failing" }
func (failingPlanner) Plan(context.Context, *core.Instance) (*core.Schedule, error) {
	return nil, errors.New("planner broke")
}

func TestWrapDoesNotCacheErrors(t *testing.T) {
	c := New(4)
	p := Wrap(failingPlanner{}, c)
	in := testInstance(3, 6)
	if _, err := p.Plan(context.Background(), in); err == nil {
		t.Fatal("want error")
	}
	if c.Len() != 0 {
		t.Fatal("error result was cached")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				in := testInstance(4, int64(i%20))
				name := fmt.Sprintf("p%d", g%3)
				if s, ok := c.Get(context.Background(), name, nil, in); ok {
					if len(s.Tours) != 1 {
						t.Error("corrupt cached schedule")
						return
					}
				} else {
					c.Put(context.Background(), name, nil, in, &core.Schedule{Tours: []core.Tour{{}}})
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}

func TestCloneNil(t *testing.T) {
	if Clone(nil) != nil {
		t.Fatal("Clone(nil) != nil")
	}
}
