// Package plancache memoizes planner outputs by problem instance, so
// repeated plans of the same network — the common case in figure sweeps,
// benchmark iterations and the simulator's replan path — cost a hash and a
// deep copy instead of a full planning round.
//
// A Cache maps an instance key to a stored *core.Schedule. The key is the
// FNV-1a (128-bit) hash of a canonical binary encoding of everything the
// planners read: the planner's canonical registry name (see Identity —
// internal/registry panics at init when two planners register one name
// or an alias shadows one, so keys can never alias across algorithms),
// a canonical encoding of the
// plan-shaping core.Options fields (see KeyOf), the depot, gamma, the
// travel speed, K and every request's position, duration and lifetime, in
// request order. Any single difference that can change the plan — one
// coordinate nudged, a different gamma, one more charger, a different
// TourRestarts — therefore changes the key (see FuzzPlanCacheKey).
// Fields that affect only speed, never the schedule (Options.Workers),
// are deliberately excluded so equivalent requests still share an entry.
//
// Schedules cross the cache boundary by deep copy in both directions:
// callers may freely mutate what Get returns (the simulator's executor
// does), and a schedule mutated after Put does not corrupt the cached
// value. Eviction is LRU with a bounded entry count.
//
// Cache methods are safe for concurrent use and record cache.hits,
// cache.misses, cache.puts and cache.evictions on any obs.Tracer carried
// by the context, alongside the cache's own Stats.
package plancache

import (
	"container/list"
	"context"
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ktour"
	"repro/internal/obs"
	"repro/internal/registry"
)

// DefaultCapacity is the entry bound used when New is given a
// non-positive capacity. At paper scale (1200 requests) one cached
// schedule is a few hundred kilobytes, so the default keeps the cache
// under ~100 MB worst case.
const DefaultCapacity = 256

// Key identifies a (planner, options, instance) triple: the 128-bit
// FNV-1a hash of the canonical encoding.
type Key [16]byte

// Hash64 folds the key to 64 bits, the shape consistent hashing wants:
// the serve router scores backends with mix(Hash64 ^ backend) so every
// replica of a fleet agrees on which shard owns a given plan request
// without any coordination. Folding by XOR of the two halves keeps all
// 128 input bits influential.
func (k Key) Hash64() uint64 {
	return binary.LittleEndian.Uint64(k[:8]) ^ binary.LittleEndian.Uint64(k[8:])
}

// Optioned is the optional interface a core.Planner implements to expose
// the core.Options shaping its plans. Identity consults it so two
// planners that share a Name but differ in plan-changing options (e.g.
// two ApproPlanners with different TourRestarts) never alias to one
// cache entry.
type Optioned interface {
	// PlanOptions returns the options the planner plans under.
	PlanOptions() core.Options
}

// Identity resolves the pair a cache keys p under: the planner's
// canonical registry name — Lookup collapses aliases, case variants and
// wrappers that preserve Name to one spelling — and its plan-shaping
// options when it exposes them via Optioned (nil otherwise, the zero
// options). Keys derived this way can never alias across algorithms:
// the registry panics at init when two planners register one canonical
// name or an alias shadows an existing name.
func Identity(p core.Planner) (name string, opts *core.Options) {
	name = p.Name()
	if e, ok := registry.Lookup(name); ok {
		name = e.Name
	}
	if o, ok := p.(Optioned); ok {
		v := o.PlanOptions()
		opts = &v
	}
	return name, opts
}

// canonOptions maps opts to the canonical representative of its
// plan-equivalence class: two option values that provably produce the
// same schedule encode identically, and any field that can change the
// plan survives. nil means the zero (paper-default) options.
//
//   - MISOrder zero means graph.MISMaxDegree (Appro's documented default).
//   - Seed only matters under the seeded orders graph.MISRandom and
//     graph.MISLuby; it is zeroed under the deterministic ones.
//   - TourBuilder zero means ktour.BuilderChristofides.
//   - TourRestarts <= 1 all mean the single sequential descent.
//   - Workers affects speed only, never the schedule, and is dropped.
//   - MISRescan routes the degree-ordered MIS selection through the
//     reference rescan engine, which picks the identical vertex sequence
//     as the bucket queue; it never changes the schedule and is dropped.
//   - Sparse canonicalizes per tsp.Thresholds.Canon: zero fields mean the
//     package-default crossovers and every negative value pins that
//     kernel dense. The thresholds can change the schedule above the
//     crossovers (the 2-opt and matching kernels are approximate there),
//     so the canonical values are keyed.
func canonOptions(opts *core.Options) core.Options {
	var o core.Options
	if opts != nil {
		o = *opts
	}
	if o.MISOrder == 0 {
		o.MISOrder = graph.MISMaxDegree
	}
	if o.MISOrder != graph.MISRandom && o.MISOrder != graph.MISLuby {
		o.Seed = 0
	}
	if o.TourBuilder == 0 {
		o.TourBuilder = ktour.BuilderChristofides
	}
	if o.TourRestarts < 1 {
		o.TourRestarts = 1
	}
	o.Workers = 0
	o.MISRescan = false
	o.Sparse = o.Sparse.Canon()
	return o
}

// KeyOf hashes everything the named planner reads from the options and
// the instance. Instances that differ in any field (a coordinate, a
// duration, gamma, speed, K, the depot, the request count or order)
// produce different keys, as do options that differ in any plan-changing
// field; byte-equal inputs — and options inside the same plan-equivalence
// class, see canonOptions — produce equal keys.
func KeyOf(planner string, opts *core.Options, in *core.Instance) Key {
	h := fnv.New128a()
	var buf [8]byte
	f := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	u := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(planner))
	h.Write([]byte{0}) // terminate the name so "AB"+depot can't alias "A"+...
	o := canonOptions(opts)
	u(uint64(o.MISOrder))
	u(uint64(o.Seed))
	if o.NoSortByFinishTime {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	u(uint64(o.TourBuilder))
	u(uint64(o.TourRestarts))
	u(uint64(int64(o.Sparse.MST)))
	u(uint64(int64(o.Sparse.TwoOpt)))
	u(uint64(int64(o.Sparse.Match)))
	f(in.Depot.X)
	f(in.Depot.Y)
	f(in.Gamma)
	f(in.Speed)
	u(uint64(in.K))
	u(uint64(len(in.Requests)))
	for _, r := range in.Requests {
		f(r.Pos.X)
		f(r.Pos.Y)
		f(r.Duration)
		f(r.Lifetime)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Stats is a cache snapshot.
type Stats struct {
	// Hits and Misses count Get outcomes; Puts counts insertions and
	// Evictions the LRU entries displaced by them.
	Hits, Misses, Puts, Evictions int64
	// Size is the current entry count, bounded by Capacity.
	Size, Capacity int
}

type entry struct {
	key   Key
	sched *core.Schedule
}

// Cache is a bounded LRU of planned schedules. The zero value is not
// usable; call New. All methods are safe for concurrent use and no-ops on
// a nil receiver, so optional caching costs callers a single nil check.
type Cache struct {
	mu                            sync.Mutex
	capacity                      int
	ll                            *list.List // front = most recently used
	byKey                         map[Key]*list.Element
	hits, misses, puts, evictions int64
}

// New returns an empty cache bounded to capacity entries (non-positive
// means DefaultCapacity).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		byKey:    make(map[Key]*list.Element, capacity),
	}
}

// Get returns a deep copy of the schedule cached for the
// planner/options/instance triple, or (nil, false). nil opts means the
// planner's zero (paper-default) options. It records cache.hits or
// cache.misses on any tracer in ctx.
func (c *Cache) Get(ctx context.Context, planner string, opts *core.Options, in *core.Instance) (*core.Schedule, bool) {
	if c == nil {
		return nil, false
	}
	key := KeyOf(planner, opts, in)
	c.mu.Lock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		c.mu.Unlock()
		obs.FromContext(ctx).Add("cache.misses", 1)
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	s := Clone(el.Value.(*entry).sched)
	c.mu.Unlock()
	obs.FromContext(ctx).Add("cache.hits", 1)
	return s, true
}

// Put stores a deep copy of the schedule under the
// planner/options/instance key, evicting the least recently used entry
// when the cache is full. nil opts means the planner's zero
// (paper-default) options. It records cache.puts (and cache.evictions)
// on any tracer in ctx.
func (c *Cache) Put(ctx context.Context, planner string, opts *core.Options, in *core.Instance, s *core.Schedule) {
	if c == nil || s == nil {
		return
	}
	key := KeyOf(planner, opts, in)
	cp := Clone(s)
	evicted := false
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*entry).sched = cp
		c.ll.MoveToFront(el)
	} else {
		c.byKey[key] = c.ll.PushFront(&entry{key: key, sched: cp})
		if c.ll.Len() > c.capacity {
			last := c.ll.Back()
			c.ll.Remove(last)
			delete(c.byKey, last.Value.(*entry).key)
			c.evictions++
			evicted = true
		}
	}
	c.puts++
	c.mu.Unlock()
	tr := obs.FromContext(ctx)
	tr.Add("cache.puts", 1)
	if evicted {
		tr.Add("cache.evictions", 1)
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Puts: c.puts, Evictions: c.evictions,
		Size: c.ll.Len(), Capacity: c.capacity,
	}
}

// Clone returns a deep copy of the schedule: no slice is shared with the
// original, so either side may mutate freely.
func Clone(s *core.Schedule) *core.Schedule {
	if s == nil {
		return nil
	}
	out := &core.Schedule{
		Tours:    make([]core.Tour, len(s.Tours)),
		Longest:  s.Longest,
		WaitTime: s.WaitTime,
	}
	for k, t := range s.Tours {
		ct := core.Tour{Delay: t.Delay}
		if t.Stops != nil {
			ct.Stops = make([]core.Stop, len(t.Stops))
			for i, st := range t.Stops {
				cs := st
				if st.Covers != nil {
					cs.Covers = append([]int(nil), st.Covers...)
				}
				ct.Stops[i] = cs
			}
		}
		out.Tours[k] = ct
	}
	return out
}

// cachedPlanner adapts a Planner with read-through caching.
type cachedPlanner struct {
	p    core.Planner
	name string // canonical key name, resolved once by Identity
	opts *core.Options
	c    *Cache
}

// Wrap returns a Planner that consults the cache before delegating to p
// and stores p's successful results. A nil cache returns p unchanged. The
// wrapped planner keeps p's Name, so caching is invisible to result
// tables, and byte-identical to p's output: a hit returns a deep copy of
// exactly what p produced for the equal instance. Keys use Identity:
// the canonical registry name plus p's plan-shaping options when it
// implements Optioned, so planners sharing a name but planning under
// different options never serve each other's entries.
func Wrap(p core.Planner, c *Cache) core.Planner {
	if c == nil {
		return p
	}
	cp := cachedPlanner{p: p, c: c}
	cp.name, cp.opts = Identity(p)
	return cp
}

// Name implements core.Planner.
func (cp cachedPlanner) Name() string { return cp.p.Name() }

// Plan implements core.Planner with read-through memoization.
func (cp cachedPlanner) Plan(ctx context.Context, in *core.Instance) (*core.Schedule, error) {
	if s, ok := cp.c.Get(ctx, cp.name, cp.opts, in); ok {
		return s, nil
	}
	s, err := cp.p.Plan(ctx, in)
	if err != nil {
		return nil, err
	}
	cp.c.Put(ctx, cp.name, cp.opts, in, s)
	return s, nil
}
