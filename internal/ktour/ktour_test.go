package ktour

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func randInput(rng *rand.Rand, n, k int) Input {
	in := Input{
		Depot:   geom.Pt(50, 50),
		Nodes:   make([]geom.Point, n),
		Service: make([]float64, n),
		Speed:   1,
		K:       k,
	}
	for i := range in.Nodes {
		in.Nodes[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		in.Service[i] = rng.Float64() * 3600
	}
	return in
}

// checkPartition verifies that the K tours are node-disjoint and cover all
// nodes, and that reported delays match TourDelay.
func checkPartition(t *testing.T, in Input, sol *Solution) {
	t.Helper()
	if len(sol.Tours) != in.K || len(sol.Delays) != in.K {
		t.Fatalf("got %d tours, %d delays, want %d", len(sol.Tours), len(sol.Delays), in.K)
	}
	var all []int
	for k, tour := range sol.Tours {
		all = append(all, tour...)
		want := TourDelay(in, tour)
		if math.Abs(sol.Delays[k]-want) > 1e-6 {
			t.Errorf("tour %d delay = %v, recompute = %v", k, sol.Delays[k], want)
		}
		if sol.Delays[k] > sol.Longest+1e-9 {
			t.Errorf("tour %d delay %v exceeds Longest %v", k, sol.Delays[k], sol.Longest)
		}
	}
	sort.Ints(all)
	if len(all) != len(in.Nodes) {
		t.Fatalf("tours cover %d nodes, want %d", len(all), len(in.Nodes))
	}
	for i, v := range all {
		if v != i {
			t.Fatalf("coverage is not a partition: sorted nodes %v", all)
		}
	}
}

func TestMinMaxValidation(t *testing.T) {
	base := randInput(rand.New(rand.NewSource(1)), 5, 2)
	tests := []struct {
		name   string
		mutate func(*Input)
	}{
		{"zero K", func(in *Input) { in.K = 0 }},
		{"negative K", func(in *Input) { in.K = -1 }},
		{"zero speed", func(in *Input) { in.Speed = 0 }},
		{"negative speed", func(in *Input) { in.Speed = -2 }},
		{"service length mismatch", func(in *Input) { in.Service = in.Service[:2] }},
		{"negative service", func(in *Input) { in.Service[0] = -1 }},
		{"NaN service", func(in *Input) { in.Service[0] = math.NaN() }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := base
			in.Service = append([]float64(nil), base.Service...)
			tt.mutate(&in)
			if _, err := MinMax(context.Background(), in); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestMinMaxEmpty(t *testing.T) {
	in := Input{Depot: geom.Pt(0, 0), Speed: 1, K: 3}
	sol, err := MinMax(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Longest != 0 {
		t.Errorf("Longest = %v, want 0", sol.Longest)
	}
	for k, tour := range sol.Tours {
		if len(tour) != 0 {
			t.Errorf("tour %d = %v, want empty", k, tour)
		}
	}
}

func TestMinMaxSingleNode(t *testing.T) {
	in := Input{
		Depot:   geom.Pt(0, 0),
		Nodes:   []geom.Point{geom.Pt(3, 4)},
		Service: []float64{7},
		Speed:   1,
		K:       2,
	}
	sol, err := MinMax(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, in, sol)
	if math.Abs(sol.Longest-(5+7+5)) > 1e-9 {
		t.Errorf("Longest = %v, want 17", sol.Longest)
	}
}

func TestMinMaxPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(60)
		k := 1 + rng.Intn(5)
		in := randInput(rng, n, k)
		sol, err := MinMax(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		checkPartition(t, in, sol)
	}
}

func TestMinMaxMoreVehiclesNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randInput(rng, 40, 1)
	prev := math.Inf(1)
	for k := 1; k <= 5; k++ {
		in.K = k
		sol, err := MinMax(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		// Allow tiny slack: the grand tour is identical, so splitting into
		// more parts can only reduce the max segment.
		if sol.Longest > prev+1e-6 {
			t.Errorf("K=%d: longest %v > K=%d longest %v", k, sol.Longest, k-1, prev)
		}
		prev = sol.Longest
	}
}

func TestMinMaxSymmetricSplit(t *testing.T) {
	// Two clusters symmetric about the depot: with K=2 each vehicle should
	// take one side, roughly halving the K=1 delay.
	in := Input{
		Depot: geom.Pt(0, 0),
		Nodes: []geom.Point{
			geom.Pt(10, 0), geom.Pt(11, 0), geom.Pt(10, 1),
			geom.Pt(-10, 0), geom.Pt(-11, 0), geom.Pt(-10, 1),
		},
		Service: make([]float64, 6),
		Speed:   1,
		K:       2,
	}
	one := in
	one.K = 1
	sol1, err := MinMax(context.Background(), one)
	if err != nil {
		t.Fatal(err)
	}
	sol2, err := MinMax(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Longest > 0.75*sol1.Longest {
		t.Errorf("K=2 longest %v not much below K=1 longest %v", sol2.Longest, sol1.Longest)
	}
}

func TestTourDelayHandComputed(t *testing.T) {
	in := Input{
		Depot:   geom.Pt(0, 0),
		Nodes:   []geom.Point{geom.Pt(0, 10), geom.Pt(10, 10)},
		Service: []float64{100, 200},
		Speed:   2,
	}
	// depot->n0: 10/2=5, service 100, n0->n1: 10/2=5, service 200,
	// n1->depot: sqrt(200)/2.
	want := 5.0 + 100 + 5 + 200 + math.Sqrt(200)/2
	if got := TourDelay(in, []int{0, 1}); math.Abs(got-want) > 1e-9 {
		t.Errorf("TourDelay = %v, want %v", got, want)
	}
	if got := TourDelay(in, nil); got != 0 {
		t.Errorf("empty tour delay = %v", got)
	}
}

func TestSplitAtTargetMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	in := randInput(rng, 30, 1)
	order := GrandTourOrder(context.Background(), in)
	full := TourDelay(in, order)
	prevParts := len(splitAtTarget(in, order, full/16))
	for _, f := range []float64{8, 4, 2, 1} {
		parts := len(splitAtTarget(in, order, full/f))
		if parts > prevParts {
			t.Errorf("target up, parts went %d -> %d", prevParts, parts)
		}
		prevParts = parts
	}
	if got := len(splitAtTarget(in, order, full+1)); got != 1 {
		t.Errorf("full-delay target should need 1 part, got %d", got)
	}
}

func TestMinMaxNearOptimalOnLine(t *testing.T) {
	// 4 equidistant nodes on a line through the depot, no service time.
	// Optimal for K=2 is one vehicle per side: delay 2*20=40.
	in := Input{
		Depot: geom.Pt(0, 0),
		Nodes: []geom.Point{
			geom.Pt(10, 0), geom.Pt(20, 0), geom.Pt(-10, 0), geom.Pt(-20, 0),
		},
		Speed: 1,
		K:     2,
	}
	sol, err := MinMax(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, in, sol)
	if sol.Longest > 40*1.5+1e-9 {
		t.Errorf("Longest = %v, optimal is 40", sol.Longest)
	}
}

func BenchmarkMinMax500(b *testing.B) {
	in := randInput(rand.New(rand.NewSource(1)), 500, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinMax(context.Background(), in); err != nil {
			b.Fatal(err)
		}
	}
}
