package ktour

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// TestMinMaxQuickPartition drives the partition invariant through
// testing/quick-shaped inputs: every node in exactly one tour, reported
// delays consistent, for arbitrary sizes, K and service scales.
func TestMinMaxQuickPartition(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8, scale uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 50)
		k := 1 + int(kRaw%6)
		in := Input{
			Depot: geom.Pt(50, 50),
			Speed: 1,
			K:     k,
		}
		for i := 0; i < n; i++ {
			in.Nodes = append(in.Nodes, geom.Pt(rng.Float64()*100, rng.Float64()*100))
			in.Service = append(in.Service, rng.Float64()*float64(scale))
		}
		sol, err := MinMax(context.Background(), in)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		longest := 0.0
		for _, tour := range sol.Tours {
			for _, v := range tour {
				if v < 0 || v >= n || seen[v] {
					return false
				}
				seen[v] = true
			}
			if d := TourDelay(in, tour); d > longest {
				longest = d
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return absDiff(longest, sol.Longest) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMinMaxServiceMonotonicity: inflating every service time cannot
// shorten the optimal-split delay (the same grand tour gets heavier).
func TestMinMaxServiceMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(40)
		in := randInput(rng, n, 1+rng.Intn(4))
		base, err := MinMax(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		heavier := in
		heavier.Service = make([]float64, n)
		for i := range heavier.Service {
			heavier.Service[i] = in.Service[i] + 100
		}
		heavy, err := MinMax(context.Background(), heavier)
		if err != nil {
			t.Fatal(err)
		}
		if heavy.Longest < base.Longest-1e-6 {
			t.Fatalf("trial %d: heavier services produced shorter delay (%v < %v)",
				trial, heavy.Longest, base.Longest)
		}
	}
}

// TestBuildersAllValid runs every grand-tour builder through the solver.
func TestBuildersAllValid(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	in := randInput(rng, 60, 3)
	for _, b := range []Builder{BuilderChristofides, BuilderMST, BuilderNearestNeighbor, Builder(0)} {
		in.Builder = b
		sol, err := MinMax(context.Background(), in)
		if err != nil {
			t.Fatalf("builder %v: %v", b, err)
		}
		checkPartition(t, in, sol)
	}
}

func TestBuilderString(t *testing.T) {
	for b, want := range map[Builder]string{
		BuilderChristofides:    "christofides+2opt",
		BuilderMST:             "mst-doubling",
		BuilderNearestNeighbor: "nearest-neighbor+2opt",
		Builder(99):            "unknown",
	} {
		if got := b.String(); got != want {
			t.Errorf("Builder(%d).String() = %q, want %q", b, got, want)
		}
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
