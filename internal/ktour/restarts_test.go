package ktour

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
)

func restartInput(n, k, restarts, workers int) Input {
	rng := rand.New(rand.NewSource(21))
	nodes := make([]geom.Point, n)
	service := make([]float64, n)
	for i := range nodes {
		nodes[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		service[i] = rng.Float64() * 3600
	}
	return Input{
		Depot: geom.Pt(50, 50), Nodes: nodes, Service: service,
		Speed: 1, K: k, Restarts: restarts, Workers: workers,
	}
}

// TestMinMaxRestartsDeterministicAcrossWorkers: the full K-minMax pipeline
// with parallel grand-tour restarts is byte-identical at any worker count.
func TestMinMaxRestartsDeterministicAcrossWorkers(t *testing.T) {
	solve := func(workers int) *Solution {
		sol, err := MinMax(context.Background(), restartInput(50, 3, 6, workers))
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	want := solve(1)
	for _, workers := range []int{2, 8} {
		if got := solve(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestMinMaxZeroRestartsMatchesSeed: Restarts 0 and 1 are both the single
// sequential descent, so they must agree exactly.
func TestMinMaxZeroRestartsMatchesSeed(t *testing.T) {
	a, err := MinMax(context.Background(), restartInput(40, 2, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinMax(context.Background(), restartInput(40, 2, 1, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Restarts=0 and Restarts=1 diverged")
	}
}

// TestMinMaxRestartsStillFeasible: restarts change tour quality, never
// feasibility — every node appears in exactly one tour.
func TestMinMaxRestartsStillFeasible(t *testing.T) {
	in := restartInput(60, 3, 5, 4)
	sol, err := MinMax(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]int, len(in.Nodes))
	for _, tour := range sol.Tours {
		for _, v := range tour {
			seen[v]++
		}
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("node %d visited %d times", v, c)
		}
	}
}
