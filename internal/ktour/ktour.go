// Package ktour solves the K-optimal closed tour problem from the paper's
// Definition 2 (after Liang et al., ACM TOSN 2016): given a depot, a set of
// nodes each carrying a service (charging) duration, a travel speed and K
// vehicles, find K node-disjoint closed tours through the depot whose union
// covers all nodes, minimizing the longest tour delay, where a tour's delay
// is its travel time plus the service times of its nodes.
//
// The implementation follows the classic tour-splitting recipe behind the
// published 5-approximation: construct a single near-optimal TSP tour over
// depot + nodes (Christofides-style construction refined by 2-opt), then
// split it into at most K consecutive segments via binary search on the
// target delay with a greedy packing feasibility test (Frederickson-style
// k-SPLITOUR generalized to node service times).
package ktour

import (
	"context"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/tsp"
)

// Input describes an instance of the K-optimal closed tour problem.
type Input struct {
	// Depot is the common start/end location of all vehicles.
	Depot geom.Point
	// Nodes are the locations that must each be visited by exactly one
	// vehicle.
	Nodes []geom.Point
	// Service[i] is the time a vehicle must spend at Nodes[i] (e.g. the
	// charging duration tau(v)). Must have len(Nodes) entries; nil means
	// all zero.
	Service []float64
	// Speed is the constant vehicle travel speed in m/s. Must be > 0.
	Speed float64
	// K is the number of vehicles. Must be >= 1.
	K int
	// Builder selects the grand-tour construction the splitter works on;
	// zero means BuilderChristofides. Exposed for ablation studies.
	Builder Builder
	// Restarts is the number of independent 2-opt descents the grand-tour
	// refinement runs (tsp.TwoOptRestarts); values <= 1 mean the single
	// deterministic descent the sequential seed used. The winner is chosen
	// by a stable (length, lexicographic) tiebreak, so any value is
	// deterministic at any worker count. Ignored by BuilderMST, which by
	// design runs no local search.
	Restarts int
	// Workers bounds the goroutines the restarts fan across; <= 0 means
	// GOMAXPROCS. It affects speed only, never the result.
	Workers int
	// Sparse tunes the input sizes at which the grand-tour kernels (MST,
	// odd-vertex matching, 2-opt) switch from their exact quadratic
	// implementations to the subquadratic ones; the zero value keeps the
	// tsp package defaults, under which every paper-scale instance
	// (n <= 1200) runs the exact kernels. See tsp.Thresholds.
	Sparse tsp.Thresholds
}

// Builder names a grand-tour construction heuristic.
type Builder int

const (
	// BuilderChristofides is the Christofides-style construction refined
	// by 2-opt — the default and the strongest of the three.
	BuilderChristofides Builder = iota + 1
	// BuilderMST is the plain MST-doubling 2-approximation, no local
	// search: the construction the published 5-approximation analysis
	// assumes.
	BuilderMST
	// BuilderNearestNeighbor is the greedy nearest-neighbor tour refined
	// by 2-opt.
	BuilderNearestNeighbor
)

// String implements fmt.Stringer.
func (b Builder) String() string {
	switch b {
	case BuilderChristofides:
		return "christofides+2opt"
	case BuilderMST:
		return "mst-doubling"
	case BuilderNearestNeighbor:
		return "nearest-neighbor+2opt"
	default:
		return "unknown"
	}
}

func (in Input) validate() error {
	if in.K < 1 {
		return fmt.Errorf("ktour: K = %d, want >= 1", in.K)
	}
	if in.Speed <= 0 {
		return fmt.Errorf("ktour: speed = %v, want > 0", in.Speed)
	}
	if in.Service != nil && len(in.Service) != len(in.Nodes) {
		return fmt.Errorf("ktour: %d service times for %d nodes", len(in.Service), len(in.Nodes))
	}
	for i, s := range in.Service {
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("ktour: service[%d] = %v, want finite >= 0", i, s)
		}
	}
	return nil
}

func (in Input) service(i int) float64 {
	if in.Service == nil {
		return 0
	}
	return in.Service[i]
}

// Solution holds K closed tours. Tours[k] lists node indices in visit
// order, excluding the depot (every tour implicitly starts and ends there);
// an empty slice means vehicle k stays at the depot. Delays[k] is the total
// delay of tour k and Longest is max over k.
type Solution struct {
	Tours   [][]int
	Delays  []float64
	Longest float64
}

// TourDelay returns the delay of visiting the given nodes in order as one
// closed tour from the depot: travel time along depot -> nodes... -> depot
// plus the service times of the visited nodes.
func TourDelay(in Input, tour []int) float64 {
	if len(tour) == 0 {
		return 0
	}
	t := geom.Dist(in.Depot, in.Nodes[tour[0]]) / in.Speed
	t += in.service(tour[0])
	for i := 1; i < len(tour); i++ {
		t += geom.Dist(in.Nodes[tour[i-1]], in.Nodes[tour[i]]) / in.Speed
		t += in.service(tour[i])
	}
	t += geom.Dist(in.Nodes[tour[len(tour)-1]], in.Depot) / in.Speed
	return t
}

// MinMax computes K node-disjoint closed tours covering all nodes with
// near-minimal longest delay. It runs in O(n^2) time dominated by the TSP
// construction.
//
// MinMax honors ctx between its phases (grand-tour construction, the
// binary search, the balance pass) and returns an error wrapping
// ctx.Err() on cancellation. Its total runtime is recorded under the
// kminmax span when ctx carries an obs.Tracer.
func MinMax(ctx context.Context, in Input) (*Solution, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("ktour: %w", err)
	}
	defer obs.FromContext(ctx).Start(obs.StageKMinMax).End()
	n := len(in.Nodes)
	sol := &Solution{
		Tours:  make([][]int, in.K),
		Delays: make([]float64, in.K),
	}
	for k := range sol.Tours {
		sol.Tours[k] = []int{}
	}
	if n == 0 {
		return sol, nil
	}

	order := GrandTourOrder(ctx, in)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("ktour: %w", err)
	}

	// Binary search the smallest target delay T for which greedy packing
	// of the tour order needs at most K tours. lo is a per-node lower
	// bound (some vehicle must serve the worst single node); hi is the
	// delay of the whole grand tour done by one vehicle.
	splitSpan := obs.FromContext(ctx).Start(obs.StageKMinMaxSplit)
	lo := 0.0
	for i := 0; i < n; i++ {
		if t := TourDelay(in, []int{i}); t > lo {
			lo = t
		}
	}
	hi := TourDelay(in, order)
	if splitCountAtTarget(in, order, hi) > in.K {
		// Cannot happen (one tour always fits at hi), but guard anyway.
		hi *= 2
	}
	for iter := 0; iter < 60 && hi-lo > 1e-9*(1+hi); iter++ {
		if iter%8 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("ktour: %w", err)
			}
		}
		mid := (lo + hi) / 2
		if splitCountAtTarget(in, order, mid) <= in.K {
			hi = mid
		} else {
			lo = mid
		}
	}
	parts := splitAtTarget(in, order, hi)
	for k, part := range parts {
		sol.Tours[k] = part
	}
	// Balance pass: locally improve each tour with 2-opt on its own nodes
	// (cannot increase any delay, so the max cannot increase).
	for k := range sol.Tours {
		if err := ctx.Err(); err != nil {
			splitSpan.End()
			return nil, fmt.Errorf("ktour: %w", err)
		}
		improveTour(in, sol.Tours[k])
	}
	splitSpan.End()
	for k := range sol.Tours {
		sol.Delays[k] = TourDelay(in, sol.Tours[k])
		if sol.Delays[k] > sol.Longest {
			sol.Longest = sol.Delays[k]
		}
	}
	return sol, nil
}

// GrandTourOrder builds the single TSP tour over depot + nodes used as the
// splitting backbone, returning node indices (0..len(Nodes)-1) in visit
// order starting from the depot's successor. Exposed for ablation studies.
//
// With Input.Restarts > 1 the 2-opt refinement runs that many independent
// seeded descents across Input.Workers goroutines and keeps the best by
// the stable (length, lexicographic) tiebreak; ctx then bounds the fan-out
// (cancellation falls back to the weakest completed descent). Restarts <= 1
// is the sequential seed behavior and never spawns a goroutine.
func GrandTourOrder(ctx context.Context, in Input) []int {
	n := len(in.Nodes)
	if n == 0 {
		return nil
	}
	pts := make([]geom.Point, 0, n+1)
	pts = append(pts, in.Depot)
	pts = append(pts, in.Nodes...)
	var tour tsp.Tour
	switch in.Builder {
	case BuilderMST:
		tour = tsp.MSTApproxWith(ctx, pts, 0, in.Sparse)
	case BuilderNearestNeighbor:
		tour = tsp.NearestNeighbor(pts, 0)
		tsp.TwoOptRestartsWith(ctx, &tour, pts, in.Restarts, in.Workers, in.Sparse)
	default: // BuilderChristofides and the zero value
		tour = tsp.ChristofidesWith(ctx, pts, 0, in.Sparse)
		tsp.TwoOptRestartsWith(ctx, &tour, pts, in.Restarts, in.Workers, in.Sparse)
	}
	tour.RotateToStart(0)
	order := make([]int, 0, n)
	for _, v := range tour.Order {
		if v != 0 {
			order = append(order, v-1)
		}
	}
	return order
}

// splitAtTarget greedily packs the ordered nodes into consecutive closed
// tours each of delay at most target (a tour whose single node already
// exceeds target still gets its own tour, so the result is always a
// partition). The number of returned parts is non-increasing in target.
func splitAtTarget(in Input, order []int, target float64) [][]int {
	var parts [][]int
	i := 0
	for i < len(order) {
		// Grow the segment [i..j) while its closed-tour delay fits.
		j := i + 1
		cost := TourDelay(in, order[i:j])
		for j < len(order) {
			next := cost -
				geom.Dist(in.Nodes[order[j-1]], in.Depot)/in.Speed +
				geom.Dist(in.Nodes[order[j-1]], in.Nodes[order[j]])/in.Speed +
				in.service(order[j]) +
				geom.Dist(in.Nodes[order[j]], in.Depot)/in.Speed
			if next > target+1e-12 {
				break
			}
			cost = next
			j++
		}
		part := append([]int(nil), order[i:j]...)
		parts = append(parts, part)
		i = j
	}
	return parts
}

// splitCountAtTarget is splitAtTarget without materializing the parts: the
// same greedy packing loop, float for float, returning only how many tours
// it needs. The binary search in MinMax probes ~60 targets and cares only
// about the count, so this keeps the search allocation-free.
func splitCountAtTarget(in Input, order []int, target float64) int {
	parts := 0
	i := 0
	for i < len(order) {
		j := i + 1
		cost := TourDelay(in, order[i:j])
		for j < len(order) {
			next := cost -
				geom.Dist(in.Nodes[order[j-1]], in.Depot)/in.Speed +
				geom.Dist(in.Nodes[order[j-1]], in.Nodes[order[j]])/in.Speed +
				in.service(order[j]) +
				geom.Dist(in.Nodes[order[j]], in.Depot)/in.Speed
			if next > target+1e-12 {
				break
			}
			cost = next
			j++
		}
		parts++
		i = j
	}
	return parts
}

// improveTour runs 2-opt on a single tour's nodes (with the depot pinned)
// in place.
func improveTour(in Input, tour []int) {
	if len(tour) < 3 {
		return
	}
	pts := make([]geom.Point, 0, len(tour)+1)
	pts = append(pts, in.Depot)
	for _, v := range tour {
		pts = append(pts, in.Nodes[v])
	}
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	t := tsp.Tour{Order: order}
	tsp.TwoOptWith(&t, pts, 0, in.Sparse)
	t.RotateToStart(0)
	orig := append([]int(nil), tour...)
	for i := 1; i < len(t.Order); i++ {
		tour[i-1] = orig[t.Order[i]-1]
	}
}
