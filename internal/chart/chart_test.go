package chart

import (
	"math"
	"strings"
	"testing"
)

func demo() *Line {
	return &Line{
		Title:  "Average longest tour duration",
		XLabel: "network size n",
		YLabel: "hours",
		X:      []float64{200, 400, 600},
		Series: []Series{
			{Label: "Appro", Y: []float64{4.7, 9.0, 12.7}},
			{Label: "K-EDF", Y: []float64{4.8, 9.4, 13.5}},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := demo().Validate(); err != nil {
		t.Fatalf("valid chart rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Line)
	}{
		{"no xs", func(l *Line) { l.X = nil }},
		{"no series", func(l *Line) { l.Series = nil }},
		{"length mismatch", func(l *Line) { l.Series[0].Y = l.Series[0].Y[:1] }},
		{"NaN", func(l *Line) { l.Series[0].Y[0] = math.NaN() }},
		{"Inf", func(l *Line) { l.Series[1].Y[2] = math.Inf(1) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			l := demo()
			tt.mutate(l)
			if err := l.Validate(); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestSVGContainsEverything(t *testing.T) {
	var sb strings.Builder
	if err := demo().SVG(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<svg", "</svg>", "Average longest tour duration",
		"network size n", "hours", "Appro", "K-EDF",
		"<path", "<circle", "<rect",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two curves -> at least two path elements (curves) plus markers.
	if strings.Count(out, "<path") < 2 {
		t.Error("missing series paths")
	}
}

func TestSVGRejectsInvalid(t *testing.T) {
	l := demo()
	l.Series = nil
	var sb strings.Builder
	if err := l.SVG(&sb); err == nil {
		t.Error("invalid chart rendered")
	}
}

func TestSVGEscapesLabels(t *testing.T) {
	l := demo()
	l.Title = "a < b & c"
	var sb strings.Builder
	if err := l.SVG(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "a < b & c") {
		t.Error("labels not escaped")
	}
	if !strings.Contains(sb.String(), "a &lt; b &amp; c") {
		t.Error("escaped title missing")
	}
}

func TestSVGDegenerateRanges(t *testing.T) {
	l := &Line{
		Title: "flat", XLabel: "x", YLabel: "y",
		X:      []float64{5},
		Series: []Series{{Label: "s", Y: []float64{3}}},
	}
	var sb strings.Builder
	if err := l.SVG(&sb); err != nil {
		t.Fatalf("single-point chart failed: %v", err)
	}
	if strings.Contains(sb.String(), "NaN") {
		t.Error("NaN coordinates in degenerate chart")
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(200) != "200" || trimFloat(2.5) != "2.5" {
		t.Errorf("trimFloat: %q %q", trimFloat(200), trimFloat(2.5))
	}
}
