// Package chart renders the experiment harness's figures as standalone SVG
// line charts — axes, ticks, legend, one polyline per algorithm — so
// cmd/wrsn-bench can emit graphical counterparts of the paper's Figures
// 3-5 next to its text tables.
package chart

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one labeled curve.
type Series struct {
	Label string
	Y     []float64
}

// Line describes one line chart.
type Line struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
	// Width and Height are the image size in pixels; zero means 720x480.
	Width, Height int
}

// seriesColors are the per-series stroke colors; curves beyond the
// palette's length cycle.
var seriesColors = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
}

// markers are per-series point markers: circle, square, diamond, triangle.
var markers = []string{"circle", "square", "diamond", "triangle"}

// Validate reports the first structural problem with the chart, or nil.
func (l *Line) Validate() error {
	if len(l.X) < 1 {
		return fmt.Errorf("chart: no x values")
	}
	if len(l.Series) == 0 {
		return fmt.Errorf("chart: no series")
	}
	for _, s := range l.Series {
		if len(s.Y) != len(l.X) {
			return fmt.Errorf("chart: series %q has %d points for %d xs", s.Label, len(s.Y), len(l.X))
		}
		for _, y := range s.Y {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				return fmt.Errorf("chart: series %q has non-finite value", s.Label)
			}
		}
	}
	return nil
}

// SVG writes the chart as an SVG document.
func (l *Line) SVG(w io.Writer) error {
	if err := l.Validate(); err != nil {
		return err
	}
	width, height := l.Width, l.Height
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 480
	}
	const (
		marginL = 70
		marginR = 150
		marginT = 40
		marginB = 55
	)
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)

	xmin, xmax := minMax(l.X)
	var ys []float64
	for _, s := range l.Series {
		ys = append(ys, s.Y...)
	}
	ymin, ymax := minMax(ys)
	if ymin > 0 {
		ymin = 0 // anchor the y axis at zero like the paper's figures
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	px := func(x float64) float64 { return marginL + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return marginT + plotH - (y-ymin)/(ymax-ymin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" font-weight="bold">%s</text>`+"\n", marginL, escape(l.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	// X ticks at the data points.
	for _, x := range l.X {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
			px(x), marginT+plotH, px(x), marginT+plotH+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px(x), marginT+plotH+18, trimFloat(x))
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-12, escape(l.XLabel))
	// Y ticks: 5 round intervals.
	for i := 0; i <= 5; i++ {
		y := ymin + (ymax-ymin)*float64(i)/5
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginL-5, py(y), marginL, py(y))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, py(y), marginL+plotW, py(y))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-8, py(y)+4, trimFloat(y))
	}
	fmt.Fprintf(&b, `<text x="16" y="%.1f" font-size="12" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, escape(l.YLabel))

	// Curves with markers.
	for si, s := range l.Series {
		color := seriesColors[si%len(seriesColors)]
		var path strings.Builder
		for i, x := range l.X {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s %.1f %.1f ", cmd, px(x), py(s.Y[i]))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.TrimSpace(path.String()), color)
		for i, x := range l.X {
			writeMarker(&b, markers[si%len(markers)], px(x), py(s.Y[i]), color)
		}
		// Legend entry.
		ly := float64(marginT + 10 + si*22)
		lx := float64(width - marginR + 14)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			lx, ly, lx+24, ly, color)
		writeMarker(&b, markers[si%len(markers)], lx+12, ly, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="12">%s</text>`+"\n",
			lx+30, ly+4, escape(s.Label))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeMarker(b *strings.Builder, kind string, x, y float64, color string) {
	const r = 4.0
	switch kind {
	case "square":
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
			x-r, y-r, 2*r, 2*r, color)
	case "diamond":
		fmt.Fprintf(b, `<path d="M %.1f %.1f L %.1f %.1f L %.1f %.1f L %.1f %.1f Z" fill="%s"/>`+"\n",
			x, y-r-1, x+r+1, y, x, y+r+1, x-r-1, y, color)
	case "triangle":
		fmt.Fprintf(b, `<path d="M %.1f %.1f L %.1f %.1f L %.1f %.1f Z" fill="%s"/>`+"\n",
			x, y-r-1, x+r+1, y+r, x-r-1, y+r, color)
	default: // circle
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, color)
	}
}

func minMax(xs []float64) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// trimFloat formats a tick value compactly.
func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.1f", v)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
