package tsp

import "repro/internal/geom"

// TwoOpt improves the tour in place with 2-opt moves until no improving
// move exists or maxRounds passes complete (maxRounds <= 0 means no cap).
// It never lengthens the tour, and returns the number of improving moves
// applied.
func TwoOpt(t *Tour, pts []geom.Point, maxRounds int) int {
	n := len(t.Order)
	if n < 4 {
		return 0
	}
	moves := 0
	for round := 0; maxRounds <= 0 || round < maxRounds; round++ {
		improved := false
		for i := 0; i < n-1; i++ {
			a, b := t.Order[i], t.Order[i+1]
			for j := i + 2; j < n; j++ {
				// Skip the move that would touch the closing edge twice.
				if i == 0 && j == n-1 {
					continue
				}
				c := t.Order[j]
				d := t.Order[(j+1)%n]
				delta := geom.Dist(pts[a], pts[c]) + geom.Dist(pts[b], pts[d]) -
					geom.Dist(pts[a], pts[b]) - geom.Dist(pts[c], pts[d])
				if delta < -1e-12 {
					reverse(t.Order, i+1, j)
					b = t.Order[i+1]
					improved = true
					moves++
				}
			}
		}
		if !improved {
			break
		}
	}
	return moves
}

// OrOpt improves the tour in place by relocating chains of 1..3 consecutive
// vertices to better positions (Or-opt moves). It complements 2-opt, which
// cannot perform segment relocation. Returns the number of improving moves.
func OrOpt(t *Tour, pts []geom.Point, maxRounds int) int {
	n := len(t.Order)
	if n < 5 {
		return 0
	}
	dist := func(i, j int) float64 { return geom.Dist(pts[t.Order[i]], pts[t.Order[j]]) }
	moves := 0
	for round := 0; maxRounds <= 0 || round < maxRounds; round++ {
		improved := false
		for segLen := 1; segLen <= 3; segLen++ {
			for i := 1; i+segLen <= n; i++ { // keep Order[0] (depot) fixed
				j := i + segLen - 1 // segment [i..j]
				prev := i - 1
				next := (j + 1) % n
				removeGain := dist(prev, i) + dist(j, next) - dist(prev, next)
				if removeGain <= 1e-12 {
					continue
				}
				// Try inserting between every other consecutive pair.
				for p := 0; p < n; p++ {
					q := (p + 1) % n
					if p >= prev && p <= j { // overlapping positions
						continue
					}
					insertCost := dist(p, i) + dist(j, q) - dist(p, q)
					if insertCost < removeGain-1e-12 {
						relocate(t.Order, i, j, p)
						improved = true
						moves++
						// Indices shifted; restart this segment length.
						i = 0
						break
					}
				}
				if improved {
					break
				}
			}
			if improved {
				break
			}
		}
		if !improved {
			break
		}
	}
	return moves
}

// reverse reverses order[i..j] inclusive.
func reverse(order []int, i, j int) {
	for i < j {
		order[i], order[j] = order[j], order[i]
		i++
		j--
	}
}

// relocate moves the segment order[i..j] (inclusive) to just after position
// p, where p is outside [i-1, j].
func relocate(order []int, i, j, p int) {
	seg := append([]int(nil), order[i:j+1]...)
	rest := append([]int(nil), order[:i]...)
	rest = append(rest, order[j+1:]...)
	// Position of the element originally at p within rest.
	var pos int
	if p < i {
		pos = p
	} else {
		pos = p - (j - i + 1)
	}
	out := make([]int, 0, len(order))
	out = append(out, rest[:pos+1]...)
	out = append(out, seg...)
	out = append(out, rest[pos+1:]...)
	copy(order, out)
}
