package tsp

import (
	"context"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/par"
)

// TwoOpt improves the tour in place with 2-opt moves until no improving
// move exists or maxRounds passes complete (maxRounds <= 0 means no cap).
// It never lengthens the tour, and returns the number of improving moves
// applied.
//
// Below Thresholds' TwoOpt crossover (default DefaultTwoOptThreshold)
// this is the exact quadratic descent TwoOptFull; at or above it the
// neighbor-list descent TwoOptNeighborList runs instead. Small tours —
// everything the paper's figures plan — therefore keep the seed's exact
// kernel and byte-identical results.
func TwoOpt(t *Tour, pts []geom.Point, maxRounds int) int {
	return twoOptDispatch(t, pts, maxRounds, Thresholds{})
}

// TwoOptWith is TwoOpt with explicit kernel thresholds: the exact
// quadratic descent below th's TwoOpt crossover, the neighbor-list
// descent at or above it.
func TwoOptWith(t *Tour, pts []geom.Point, maxRounds int, th Thresholds) int {
	return twoOptDispatch(t, pts, maxRounds, th)
}

// twoOptDispatch routes a descent to the exact or the neighbor-list
// kernel per th.
func twoOptDispatch(t *Tour, pts []geom.Point, maxRounds int, th Thresholds) int {
	if th.SparseTwoOpt(len(t.Order)) {
		return TwoOptNeighborList(t, pts, DefaultNeighborK, maxRounds)
	}
	return TwoOptFull(t, pts, maxRounds)
}

// TwoOptFull is the exact quadratic 2-opt descent: every vertex pair is a
// candidate exchange. It is the kernel TwoOpt runs below the sparse
// threshold, exported for oracle tests and ablations.
func TwoOptFull(t *Tour, pts []geom.Point, maxRounds int) int {
	n := len(t.Order)
	if n < 4 {
		return 0
	}
	moves := 0
	for round := 0; maxRounds <= 0 || round < maxRounds; round++ {
		improved := false
		for i := 0; i < n-1; i++ {
			a, b := t.Order[i], t.Order[i+1]
			for j := i + 2; j < n; j++ {
				// Skip the move that would touch the closing edge twice.
				if i == 0 && j == n-1 {
					continue
				}
				c := t.Order[j]
				d := t.Order[(j+1)%n]
				delta := geom.Dist(pts[a], pts[c]) + geom.Dist(pts[b], pts[d]) -
					geom.Dist(pts[a], pts[b]) - geom.Dist(pts[c], pts[d])
				if delta < -1e-12 {
					reverse(t.Order, i+1, j)
					b = t.Order[i+1]
					improved = true
					moves++
				}
			}
		}
		if !improved {
			break
		}
	}
	return moves
}

// TwoOptRestarts runs restarts independent 2-opt descents — the first
// from the tour as given, each subsequent one from a double-bridge
// perturbation of it seeded by the restart index — across at most
// par.Size(workers) goroutines, and installs the best resulting tour in t.
//
// The winner is chosen by tour length with ties broken by lexicographically
// smallest vertex order, so the result is a pure function of (t, pts,
// restarts): byte-identical at any worker count, and never longer than a
// plain TwoOpt descent (restart 0 is exactly that descent). restarts <= 1
// degenerates to TwoOpt itself, goroutine-free. Order[0] is kept as the
// start vertex of every candidate.
//
// Returns the number of improving moves the winning descent applied.
// Cancelling ctx stops undispatched restarts; the best among the descents
// that did run (always including none-yet = the input tour) still wins, so
// TwoOptRestarts degrades to a weaker optimizer rather than failing.
func TwoOptRestarts(ctx context.Context, t *Tour, pts []geom.Point, restarts, workers int) int {
	return TwoOptRestartsWith(ctx, t, pts, restarts, workers, Thresholds{})
}

// TwoOptRestartsWith is TwoOptRestarts with explicit kernel thresholds:
// each descent runs the exact quadratic kernel below th's TwoOpt
// crossover and the neighbor-list kernel at or above it. The whole
// refinement is recorded under the obs kminmax/2opt span with a
// tsp.2opt.full or tsp.2opt.neighbor counter tick, when ctx carries a
// tracer.
func TwoOptRestartsWith(ctx context.Context, t *Tour, pts []geom.Point, restarts, workers int, th Thresholds) int {
	tr := obs.FromContext(ctx)
	if n := len(t.Order); n >= 4 {
		defer tr.Start(obs.StageKMinMaxTwoOpt).End()
		if th.SparseTwoOpt(n) {
			tr.Add("tsp.2opt.neighbor", 1)
		} else {
			tr.Add("tsp.2opt.full", 1)
		}
	}
	if restarts <= 1 {
		return twoOptDispatch(t, pts, 0, th)
	}
	type candidate struct {
		order []int
		len   float64
		moves int
		ran   bool
	}
	cands, _ := par.Map(ctx, restarts, workers, func(_ context.Context, r int) (candidate, error) {
		c := t.Clone()
		if r > 0 {
			doubleBridge(c.Order, rand.New(rand.NewSource(int64(r))))
		}
		moves := twoOptDispatch(&c, pts, 0, th)
		return candidate{order: c.Order, len: c.Length(pts), moves: moves, ran: true}, nil
	})
	best := candidate{order: t.Order, len: t.Length(pts)}
	for _, c := range cands {
		if !c.ran {
			continue // skipped by cancellation
		}
		if c.len < best.len || (c.len == best.len && lexLess(c.order, best.order)) {
			best = c
		}
	}
	copy(t.Order, best.order)
	return best.moves
}

// doubleBridge applies the classic 4-opt double-bridge perturbation to
// order in place, keeping order[0] fixed: the tour A|B|C|D (cuts drawn
// from rng) is reassembled as A|C|B|D. It is the standard 2-opt escape
// move: no sequence of 2-opt steps can undo it in one round.
func doubleBridge(order []int, rng *rand.Rand) {
	n := len(order)
	if n < 8 {
		return // too short for three interior cuts to matter
	}
	// Three distinct interior cut points 1 <= p1 < p2 < p3 < n.
	p1 := 1 + rng.Intn(n-3)
	p2 := p1 + 1 + rng.Intn(n-p1-2)
	p3 := p2 + 1 + rng.Intn(n-p2-1)
	out := make([]int, 0, n)
	out = append(out, order[:p1]...)
	out = append(out, order[p2:p3]...)
	out = append(out, order[p1:p2]...)
	out = append(out, order[p3:]...)
	copy(order, out)
}

// lexLess reports whether a is lexicographically smaller than b — the
// deterministic tiebreak for equal-length tours.
func lexLess(a, b []int) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// OrOpt improves the tour in place by relocating chains of 1..3 consecutive
// vertices to better positions (Or-opt moves). It complements 2-opt, which
// cannot perform segment relocation. Returns the number of improving moves.
func OrOpt(t *Tour, pts []geom.Point, maxRounds int) int {
	n := len(t.Order)
	if n < 5 {
		return 0
	}
	dist := func(i, j int) float64 { return geom.Dist(pts[t.Order[i]], pts[t.Order[j]]) }
	moves := 0
	for round := 0; maxRounds <= 0 || round < maxRounds; round++ {
		improved := false
		for segLen := 1; segLen <= 3; segLen++ {
			for i := 1; i+segLen <= n; i++ { // keep Order[0] (depot) fixed
				j := i + segLen - 1 // segment [i..j]
				prev := i - 1
				next := (j + 1) % n
				removeGain := dist(prev, i) + dist(j, next) - dist(prev, next)
				if removeGain <= 1e-12 {
					continue
				}
				// Try inserting between every other consecutive pair.
				for p := 0; p < n; p++ {
					q := (p + 1) % n
					if p >= prev && p <= j { // overlapping positions
						continue
					}
					insertCost := dist(p, i) + dist(j, q) - dist(p, q)
					if insertCost < removeGain-1e-12 {
						relocate(t.Order, i, j, p)
						improved = true
						moves++
						// Indices shifted; restart this segment length.
						i = 0
						break
					}
				}
				if improved {
					break
				}
			}
			if improved {
				break
			}
		}
		if !improved {
			break
		}
	}
	return moves
}

// reverse reverses order[i..j] inclusive.
func reverse(order []int, i, j int) {
	for i < j {
		order[i], order[j] = order[j], order[i]
		i++
		j--
	}
}

// relocate moves the segment order[i..j] (inclusive) to just after position
// p, where p is outside [i-1, j].
func relocate(order []int, i, j, p int) {
	seg := append([]int(nil), order[i:j+1]...)
	rest := append([]int(nil), order[:i]...)
	rest = append(rest, order[j+1:]...)
	// Position of the element originally at p within rest.
	var pos int
	if p < i {
		pos = p
	} else {
		pos = p - (j - i + 1)
	}
	out := make([]int, 0, len(order))
	out = append(out, rest[:pos+1]...)
	out = append(out, seg...)
	out = append(out, rest[pos+1:]...)
	copy(order, out)
}
