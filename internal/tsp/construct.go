package tsp

import (
	"context"
	"math"
	"slices"
	"sort"

	"repro/internal/geom"
	"repro/internal/mst"
	"repro/internal/obs"
)

// NearestNeighbor builds a tour by repeatedly moving to the closest
// unvisited point, starting at start. O(n^2).
func NearestNeighbor(pts []geom.Point, start int) Tour {
	n := len(pts)
	if n == 0 || start < 0 || start >= n {
		return Tour{}
	}
	order := make([]int, 0, n)
	visited := make([]bool, n)
	cur := start
	visited[cur] = true
	order = append(order, cur)
	for len(order) < n {
		best, bestD := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if visited[v] {
				continue
			}
			if d := geom.Dist(pts[cur], pts[v]); d < bestD {
				best, bestD = v, d
			}
		}
		visited[best] = true
		order = append(order, best)
		cur = best
	}
	return Tour{Order: order}
}

// MSTApprox builds a tour by the classic MST-doubling construction: compute
// the Euclidean MST rooted at start and shortcut its preorder walk. The
// resulting tour is at most twice the optimal TSP tour length (triangle
// inequality).
func MSTApprox(pts []geom.Point, start int) Tour {
	return MSTApproxWith(context.Background(), pts, start, Thresholds{})
}

// MSTApproxWith is MSTApprox with explicit kernel thresholds and per-kernel
// observability: the MST construction is recorded under the kminmax/mst
// span with a tsp.mst.dense or tsp.mst.sparse counter tick when ctx
// carries a tracer. Above th's MST crossover the grid-pruned
// mst.EuclideanSparse runs; it is weight-exact, so the 2-approximation
// bound is unchanged at every size.
func MSTApproxWith(ctx context.Context, pts []geom.Point, start int, th Thresholds) Tour {
	tree := buildMST(ctx, pts, start, th)
	if tree == nil {
		return Tour{}
	}
	return Tour{Order: tree.PreorderDFS()}
}

// buildMST runs the dense or the grid-pruned exact MST kernel per th,
// recording the choice on any tracer in ctx.
func buildMST(ctx context.Context, pts []geom.Point, start int, th Thresholds) *mst.Tree {
	tr := obs.FromContext(ctx)
	defer tr.Start(obs.StageKMinMaxMST).End()
	if th.SparseMST(len(pts)) {
		tr.Add("tsp.mst.sparse", 1)
		return mst.EuclideanSparse(pts, start)
	}
	tr.Add("tsp.mst.dense", 1)
	return mst.Euclidean(pts, start)
}

// CheapestInsertion builds a tour by starting from the start vertex and
// its nearest neighbor and repeatedly inserting the unvisited point whose
// best insertion position increases the tour length the least. O(n^2 log n)
// in spirit, implemented as O(n^3 / something) simple scans — fine for the
// sizes this library plans. For metric instances the construction is a
// 2-approximation.
func CheapestInsertion(pts []geom.Point, start int) Tour {
	n := len(pts)
	if n == 0 || start < 0 || start >= n {
		return Tour{}
	}
	if n <= 2 {
		order := make([]int, n)
		for i := range order {
			order[i] = (start + i) % n
		}
		return Tour{Order: order}
	}
	visited := make([]bool, n)
	visited[start] = true
	// Seed with the nearest neighbor of start.
	second, bestD := -1, math.Inf(1)
	for v := 0; v < n; v++ {
		if v == start {
			continue
		}
		if d := geom.Dist(pts[start], pts[v]); d < bestD {
			second, bestD = v, d
		}
	}
	visited[second] = true
	order := []int{start, second}
	for len(order) < n {
		bestV, bestPos, bestCost := -1, 0, math.Inf(1)
		for v := 0; v < n; v++ {
			if visited[v] {
				continue
			}
			for i := range order {
				a := order[i]
				b := order[(i+1)%len(order)]
				cost := geom.Dist(pts[a], pts[v]) + geom.Dist(pts[v], pts[b]) -
					geom.Dist(pts[a], pts[b])
				if cost < bestCost {
					bestV, bestPos, bestCost = v, i+1, cost
				}
			}
		}
		visited[bestV] = true
		order = append(order, 0)
		copy(order[bestPos+1:], order[bestPos:])
		order[bestPos] = bestV
	}
	t := Tour{Order: order}
	t.RotateToStart(start)
	return t
}

// Christofides builds a tour in the style of Christofides' algorithm: MST,
// then a matching on the odd-degree MST vertices, then an Euler circuit of
// the union, shortcut to a Hamiltonian tour. The odd-vertex matching here
// is the greedy shortest-edge-first matching rather than an exact
// minimum-weight perfect matching, so the guarantee is the MST-doubling
// bound of 2 rather than 1.5; in practice it produces noticeably shorter
// tours than MSTApprox.
func Christofides(pts []geom.Point, start int) Tour {
	return ChristofidesWith(context.Background(), pts, start, Thresholds{})
}

// ChristofidesWith is Christofides with explicit kernel thresholds and
// per-kernel observability: the MST and the odd-vertex matching are
// recorded under the kminmax/mst and kminmax/match spans, each with a
// dense/sparse counter tick, when ctx carries a tracer. Above th's MST
// crossover the (weight-exact) grid-pruned MST runs; above th's Match
// crossover the odd vertices are paired by the grid-bucketed
// nearest-available greedy instead of the sorted-pair greedy — a
// different (but still valid) matching, so tours can differ there.
func ChristofidesWith(ctx context.Context, pts []geom.Point, start int, th Thresholds) Tour {
	n := len(pts)
	if n == 0 || start < 0 || start >= n {
		return Tour{}
	}
	if n <= 2 {
		order := make([]int, n)
		for i := range order {
			order[i] = (start + i) % n
		}
		return Tour{Order: order}
	}
	tree := buildMST(ctx, pts, start, th)
	// Multigraph edge list: MST edges plus matching edges.
	edges := make([][2]int, 0, n+n/2)
	degree := make([]int, n)
	addEdge := func(u, v int) {
		edges = append(edges, [2]int{u, v})
		degree[u]++
		degree[v]++
	}
	for v, p := range tree.Parent {
		if p >= 0 {
			addEdge(v, p)
		}
	}
	// Odd-degree vertices; there is always an even number of them.
	var odd []int
	for v := 0; v < n; v++ {
		if degree[v]%2 == 1 {
			odd = append(odd, v)
		}
	}
	tr := obs.FromContext(ctx)
	msp := tr.Start(obs.StageKMinMaxMatch)
	var match [][2]int
	if th.SparseMatch(len(odd)) {
		tr.Add("tsp.match.sparse", 1)
		match = greedyMatchingSparse(pts, odd)
	} else {
		tr.Add("tsp.match.dense", 1)
		match = greedyMatching(pts, odd)
	}
	msp.End()
	for _, e := range match {
		addEdge(e[0], e[1])
	}
	circuit := eulerCircuit(n, degree, edges, start)
	// Shortcut repeated vertices.
	order := make([]int, 0, n)
	seen := make([]bool, n)
	for _, v := range circuit {
		if !seen[v] {
			seen[v] = true
			order = append(order, v)
		}
	}
	return Tour{Order: order}
}

// greedyMatching pairs up the given vertices by repeatedly taking the
// shortest remaining edge between two unmatched vertices. len(odd) must be
// even (always true for odd-degree vertices of a graph).
func greedyMatching(pts []geom.Point, odd []int) [][2]int {
	type cand struct {
		i, j int // indices into odd
		d    float64
	}
	var cands []cand
	for i := 0; i < len(odd); i++ {
		for j := i + 1; j < len(odd); j++ {
			cands = append(cands, cand{i, j, geom.Dist(pts[odd[i]], pts[odd[j]])})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	matched := make([]bool, len(odd))
	var out [][2]int
	for _, c := range cands {
		if matched[c.i] || matched[c.j] {
			continue
		}
		matched[c.i], matched[c.j] = true, true
		out = append(out, [2]int{odd[c.i], odd[c.j]})
	}
	return out
}

// greedyMatchingSparse pairs up the given vertices by scanning them in
// ascending order and matching each still-unmatched vertex to its nearest
// still-unmatched partner, found by grid ring expansion — O(o) bounded
// searches instead of the O(o^2 log o) candidate-pair slab the sorted
// greedy builds. len(odd) must be even. The pairing is deterministic
// (ascending scan, lowest-index distance ties) but generally different
// from greedyMatching's; both are valid perfect matchings, so Christofides
// stays within its construction bound either way.
func greedyMatchingSparse(pts []geom.Point, odd []int) [][2]int {
	if len(odd) < 2 {
		return nil
	}
	oddPts := make([]geom.Point, len(odd))
	for i, v := range odd {
		oddPts[i] = pts[v]
	}
	b := geom.Bounds(oddPts)
	cell := 2 * math.Sqrt((b.Max.X-b.Min.X)*(b.Max.Y-b.Min.Y)/float64(len(odd)))
	if !(cell > 0) {
		cell = 1
	}
	grid := geom.NewGrid(oddPts, cell)
	matched := make([]bool, len(odd))
	unmatched := func(i int) bool { return !matched[i] }
	out := make([][2]int, 0, len(odd)/2)
	for i := range odd {
		if matched[i] {
			continue
		}
		matched[i] = true // exclude i itself from its own search
		j, _ := grid.NearestWhere(oddPts[i], math.Inf(1), unmatched)
		if j < 0 {
			// Unreachable for even inputs with finite coordinates; leave i
			// unmatched rather than loop.
			matched[i] = false
			break
		}
		matched[j] = true
		out = append(out, [2]int{odd[i], odd[j]})
	}
	return out
}

// eulerCircuit returns an Eulerian circuit of the connected multigraph
// given by its edge list (each edge once; degree is the resulting degree
// array) starting at start, using Hierholzer's algorithm. Every vertex
// must have even degree.
//
// Half-edges live in a CSR arena: each edge contributes an arc to both
// endpoints, packed as partner<<32|edgeID. Sorting every vertex's arc
// segment makes "first arc whose edge is unused" equal to "lowest pending
// partner" — the deterministic pick the earlier per-vertex multiset
// implementation made — while a monotone head pointer per vertex keeps the
// whole walk O(m log m) with O(1) allocations. (Skipped arcs stay used
// forever, so heads never need to back up.)
func eulerCircuit(n int, degree []int, edges [][2]int, start int) []int {
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + int32(degree[v])
	}
	arcs := make([]int64, off[n])
	cur := append(make([]int32, 0, n), off[:n]...)
	for id, e := range edges {
		u, v := e[0], e[1]
		arcs[cur[u]] = int64(v)<<32 | int64(id)
		cur[u]++
		arcs[cur[v]] = int64(u)<<32 | int64(id)
		cur[v]++
	}
	for v := 0; v < n; v++ {
		slices.Sort(arcs[off[v]:off[v+1]])
	}
	used := make([]bool, len(edges))
	head := cur[:0] // reuse as head pointers; cur is dead after the fill
	head = append(head, off[:n]...)
	circuit := make([]int, 0, len(arcs)/2+1)
	stack := make([]int, 0, len(arcs)/2+1)
	stack = append(stack, start)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		h := head[v]
		for h < off[v+1] && used[arcs[h]&0xffffffff] {
			h++
		}
		head[v] = h
		if h == off[v+1] {
			circuit = append(circuit, v)
			stack = stack[:len(stack)-1]
			continue
		}
		a := arcs[h]
		used[a&0xffffffff] = true
		stack = append(stack, int(a>>32))
	}
	// Reverse so the circuit starts at start.
	for i, j := 0, len(circuit)-1; i < j; i, j = i+1, j-1 {
		circuit[i], circuit[j] = circuit[j], circuit[i]
	}
	return circuit
}
