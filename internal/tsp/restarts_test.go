package tsp

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/geom"
)

func randomPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	return pts
}

// TestTwoOptRestartsDeterministicAcrossWorkers pins the stable-tiebreak
// guarantee: the winning tour is byte-identical at any worker count.
func TestTwoOptRestartsDeterministicAcrossWorkers(t *testing.T) {
	pts := randomPoints(60, 11)
	run := func(workers int) Tour {
		tour := NearestNeighbor(pts, 0)
		TwoOptRestarts(context.Background(), &tour, pts, 8, workers)
		return tour
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(got.Order, want.Order) {
			t.Fatalf("workers=%d produced a different tour:\n got %v\nwant %v",
				workers, got.Order, want.Order)
		}
	}
}

// TestTwoOptRestartsNeverWorse: restart 0 is the plain descent, so the
// winner can only match or beat it; and more restarts never hurt.
func TestTwoOptRestartsNeverWorse(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		pts := randomPoints(80, seed)
		plain := NearestNeighbor(pts, 0)
		TwoOpt(&plain, pts, 0)

		restarted := NearestNeighbor(pts, 0)
		TwoOptRestarts(context.Background(), &restarted, pts, 6, 4)

		if restarted.Length(pts) > plain.Length(pts) {
			t.Fatalf("seed %d: restarts %.6f worse than plain 2-opt %.6f",
				seed, restarted.Length(pts), plain.Length(pts))
		}
		if err := restarted.Validate(len(pts)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if restarted.Order[0] != 0 {
			t.Fatalf("seed %d: start vertex moved to %d", seed, restarted.Order[0])
		}
	}
}

// TestTwoOptRestartsSingleEqualsTwoOpt: restarts <= 1 must be bit-for-bit
// the sequential seed behavior.
func TestTwoOptRestartsSingleEqualsTwoOpt(t *testing.T) {
	pts := randomPoints(50, 3)
	a := NearestNeighbor(pts, 0)
	b := a.Clone()
	movesA := TwoOpt(&a, pts, 0)
	movesB := TwoOptRestarts(context.Background(), &b, pts, 1, 8)
	if movesA != movesB || !reflect.DeepEqual(a.Order, b.Order) {
		t.Fatalf("restarts=1 diverged from TwoOpt: moves %d vs %d", movesA, movesB)
	}
}

func TestTwoOptRestartsCancelled(t *testing.T) {
	pts := randomPoints(40, 4)
	tour := NearestNeighbor(pts, 0)
	want := tour.Clone()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	TwoOptRestarts(ctx, &tour, pts, 8, 2)
	// With every restart skipped the input tour stands; it must at least
	// remain a valid permutation (and in fact be unchanged).
	if err := tour.Validate(len(pts)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tour.Order, want.Order) {
		t.Fatal("cancelled restarts mutated the tour")
	}
}

func TestDoubleBridgePermutes(t *testing.T) {
	for n := 4; n <= 20; n++ {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		doubleBridge(order, rand.New(rand.NewSource(int64(n))))
		tour := Tour{Order: order}
		if err := tour.Validate(n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if order[0] != 0 {
			t.Fatalf("n=%d: start vertex moved", n)
		}
	}
}

func TestLexLess(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{1, 2}, []int{1, 3}, true},
		{[]int{1, 3}, []int{1, 2}, false},
		{[]int{1, 2}, []int{1, 2}, false},
		{[]int{1}, []int{1, 0}, true},
		{[]int{1, 0}, []int{1}, false},
	}
	for _, c := range cases {
		if got := lexLess(c.a, c.b); got != c.want {
			t.Errorf("lexLess(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func BenchmarkTwoOptRestarts(b *testing.B) {
	pts := randomPoints(200, 9)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("restarts=8/workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tour := NearestNeighbor(pts, 0)
				TwoOptRestarts(context.Background(), &tour, pts, 8, workers)
			}
		})
	}
}
