package tsp

import (
	"math"
	"slices"

	"repro/internal/geom"
)

// TwoOptNeighborList improves the tour in place with 2-opt moves, like
// TwoOptFull, but only attempts exchanges whose new edge connects a vertex
// to one of its k nearest neighbors (symmetrized: a candidate pair is kept
// if either endpoint ranks the other). Together with don't-look bits and
// first-improvement sweeps this makes a descent O(n·k) per sweep instead
// of O(n^2), at the cost of possibly missing long-range exchanges — the
// never-worsens invariant still holds because every applied move strictly
// shortens the tour. k <= 0 means DefaultNeighborK; maxRounds <= 0 means
// no sweep cap. Returns the number of improving moves applied.
//
// The descent is sequential and deterministic: vertices are scanned in
// ascending index order, candidate neighbors in ascending (distance,
// index) order, and the first improving move is taken.
func TwoOptNeighborList(t *Tour, pts []geom.Point, k, maxRounds int) int {
	n := len(t.Order)
	if n < 4 {
		return 0
	}
	if k <= 0 {
		k = DefaultNeighborK
	}
	off, adj := neighborLists(pts, k)
	pos := make([]int, len(pts))
	for i, v := range t.Order {
		pos[v] = i
	}
	dontlook := make([]bool, len(pts))
	moves := 0
	for round := 0; maxRounds <= 0 || round < maxRounds; round++ {
		improved := false
		for v := 0; v < n; v++ {
			w := t.Order[v] // scan by tour position for locality; id order within a position is fixed anyway
			if dontlook[w] {
				continue
			}
			if tryNeighborMoves(t, pts, pos, dontlook, off, adj, w) {
				improved = true
				moves++
			} else {
				dontlook[w] = true
			}
		}
		if !improved {
			break
		}
	}
	return moves
}

// tryNeighborMoves attempts the 2-opt exchanges around vertex a whose new
// edge (a, c) pairs a with a list neighbor c, in both tour orientations
// (successor and predecessor edge of a). Candidates are pruned once
// d(a, c) reaches the removed edge's length — a standard neighbor-list
// bound: any improving move has its shorter new edge discovered from one
// of its four endpoints, all of which are scanned. It applies the first
// improving move, clears the don't-look bits of the four endpoints, and
// reports whether a move was applied.
func tryNeighborMoves(t *Tour, pts []geom.Point, pos []int, dontlook []bool, off, adj []int32, a int) bool {
	n := len(t.Order)
	i := pos[a]
	b := t.Order[(i+1)%n]   // successor edge (a, b)
	p := t.Order[(i-1+n)%n] // predecessor edge (p, a)
	dab := geom.Dist(pts[a], pts[b])
	dpa := geom.Dist(pts[p], pts[a])
	for _, cv := range adj[off[a]:off[a+1]] {
		c := int(cv)
		dac := geom.Dist(pts[a], pts[c])
		if dac >= dab && dac >= dpa {
			break // rows are distance-sorted: no later candidate can improve
		}
		j := pos[c]
		// Orientation 1: remove (a, b) and (c, d), add (a, c) and (b, d).
		if dac < dab && c != b {
			d := t.Order[(j+1)%n]
			if d != a {
				delta := dac + geom.Dist(pts[b], pts[d]) - dab - geom.Dist(pts[c], pts[d])
				if delta < -1e-12 {
					apply2opt(t, pos, i, j)
					dontlook[a], dontlook[b], dontlook[c], dontlook[d] = false, false, false, false
					return true
				}
			}
		}
		// Orientation 2: remove (p, a) and (e, c), add (p, e) and (a, c).
		if dac < dpa && c != p {
			e := t.Order[(j-1+n)%n]
			if e != a {
				delta := dac + geom.Dist(pts[p], pts[e]) - dpa - geom.Dist(pts[e], pts[c])
				if delta < -1e-12 {
					apply2opt(t, pos, (j-1+n)%n, (i-1+n)%n)
					dontlook[a], dontlook[p], dontlook[c], dontlook[e] = false, false, false, false
					return true
				}
			}
		}
	}
	return false
}

// apply2opt removes the tour edges leaving positions i and j — the edges
// (Order[i], Order[i+1]) and (Order[j], Order[j+1]) — and reconnects by
// reversing the cyclic segment between them, keeping pos in sync. The
// shorter of the two complementary segments is reversed (both yield the
// same undirected tour), so a move costs O(min(|segment|, n-|segment|)).
func apply2opt(t *Tour, pos []int, i, j int) {
	n := len(t.Order)
	inner := (j - i + n) % n // length of segment Order[i+1..j]
	if inner == 0 || inner == n {
		return
	}
	if inner <= n-inner {
		reverseCyclic(t.Order, pos, (i+1)%n, inner)
	} else {
		reverseCyclic(t.Order, pos, (j+1)%n, n-inner)
	}
}

// reverseCyclic reverses the cyclic segment of count elements starting at
// index from, updating pos.
func reverseCyclic(order []int, pos []int, from, count int) {
	n := len(order)
	i, j := from, (from+count-1)%n
	for s := 0; s < count/2; s++ {
		order[i], order[j] = order[j], order[i]
		pos[order[i]] = i
		pos[order[j]] = j
		i++
		if i == n {
			i = 0
		}
		j--
		if j < 0 {
			j = n - 1
		}
	}
}

// neighborLists builds the symmetrized k-nearest-neighbor candidate CSR
// over pts: row v holds the union of v's k nearest and every vertex that
// ranks v among its own k nearest, sorted by (distance from v, index).
// Neighbors are found by grid ring expansion, so construction is
// O(n·k log k) at bounded density.
func neighborLists(pts []geom.Point, k int) ([]int32, []int32) {
	n := len(pts)
	b := geom.Bounds(pts)
	ex, ey := b.Max.X-b.Min.X, b.Max.Y-b.Min.Y
	r := 2 * math.Sqrt(ex*ey/float64(n))
	if !(r > 0) {
		r = 2 * (ex + ey) / float64(n)
	}
	if !(r > 0) {
		r = 1
	}
	grid := geom.NewGrid(pts, r)
	maxR := math.Hypot(ex, ey)
	type cand struct {
		d2 float64
		v  int32
	}
	pairs := make([][2]int32, 0, n*k)
	var buf []int
	cands := make([]cand, 0, 4*k)
	for u := 0; u < n; u++ {
		radius := r
		for {
			buf = grid.NeighborsOf(u, radius, buf)
			if len(buf) >= k || radius > maxR {
				break
			}
			radius *= 2
		}
		cands = cands[:0]
		for _, v := range buf {
			cands = append(cands, cand{geom.DistSq(pts[u], pts[v]), int32(v)})
		}
		slices.SortFunc(cands, func(a, b cand) int {
			switch {
			case a.d2 < b.d2:
				return -1
			case a.d2 > b.d2:
				return 1
			case a.v < b.v:
				return -1
			case a.v > b.v:
				return 1
			}
			return 0
		})
		m := min(k, len(cands))
		for _, c := range cands[:m] {
			lo, hi := int32(u), c.v
			if lo > hi {
				lo, hi = hi, lo
			}
			pairs = append(pairs, [2]int32{lo, hi})
		}
	}
	slices.SortFunc(pairs, func(a, b [2]int32) int {
		if a[0] != b[0] {
			return int(a[0] - b[0])
		}
		return int(a[1] - b[1])
	})
	pairs = slices.Compact(pairs)
	deg := make([]int32, n+1)
	for _, p := range pairs {
		deg[p[0]]++
		deg[p[1]]++
	}
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	adj := make([]int32, off[n])
	cur := deg[:n]
	copy(cur, off[:n])
	for _, p := range pairs {
		adj[cur[p[0]]] = p[1]
		cur[p[0]]++
		adj[cur[p[1]]] = p[0]
		cur[p[1]]++
	}
	for v := 0; v < n; v++ {
		row := adj[off[v]:off[v+1]]
		pv := pts[v]
		slices.SortFunc(row, func(a, b int32) int {
			da, db := geom.DistSq(pv, pts[a]), geom.DistSq(pv, pts[b])
			switch {
			case da < db:
				return -1
			case da > db:
				return 1
			case a < b:
				return -1
			case a > b:
				return 1
			}
			return 0
		})
	}
	return off, adj
}
