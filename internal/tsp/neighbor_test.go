package tsp

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/obs"
)

func rngPoints(rng *rand.Rand, n int, side float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
	}
	return pts
}

func identityTour(n int) Tour {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return Tour{Order: order}
}

// TestTwoOptNeighborListNeverWorsens: every applied move strictly shortens
// the tour, so the descent can never return a longer tour than it was
// given — on any input, any neighbor count.
func TestTwoOptNeighborListNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(200)
		pts := rngPoints(rng, n, 100)
		tour := identityTour(n)
		rng.Shuffle(n-1, func(i, j int) { tour.Order[i+1], tour.Order[j+1] = tour.Order[j+1], tour.Order[i+1] })
		before := tour.Length(pts)
		k := 3 + rng.Intn(12)
		moves := TwoOptNeighborList(&tour, pts, k, 0)
		after := tour.Length(pts)
		if after > before+1e-9 {
			t.Fatalf("trial %d (n=%d, k=%d): length worsened %v -> %v", trial, n, k, before, after)
		}
		if moves > 0 && after >= before-1e-12 {
			t.Fatalf("trial %d: %d moves reported but no improvement (%v -> %v)", trial, moves, before, after)
		}
		if err := tour.Validate(n); err != nil {
			t.Fatalf("trial %d: invalid tour after descent: %v", trial, err)
		}
	}
}

// TestTwoOptNeighborListFixesPlantedCrossing plants edge crossings the
// candidate lists are guaranteed to see and checks the descent removes
// them, reaching the known-optimal tour.
func TestTwoOptNeighborListFixesPlantedCrossing(t *testing.T) {
	// Square visited in diagonal (crossing) order; optimal is the
	// perimeter 4, the crossing order costs 2+2*sqrt(2).
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)}
	tour := Tour{Order: []int{0, 2, 1, 3}}
	TwoOptNeighborList(&tour, pts, 3, 0)
	if got := tour.Length(pts); math.Abs(got-4) > 1e-9 {
		t.Fatalf("square crossing not fixed: length %v, want 4", got)
	}

	// Points on a circle with a reversed interior segment: the two
	// crossings connect tour-adjacent vertices that are also spatial
	// neighbors, so the neighbor lists contain the repairing moves. The
	// unique optimum is the polygon perimeter.
	n := 48
	pts = make([]geom.Point, n)
	for i := range pts {
		a := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = geom.Pt(math.Cos(a), math.Sin(a))
	}
	perimeter := identityTour(n).Length(pts)
	tour = identityTour(n)
	reverse(tour.Order, 10, 20) // plant two crossings
	if tour.Length(pts) <= perimeter {
		t.Fatal("planting failed to lengthen the tour")
	}
	TwoOptNeighborList(&tour, pts, 8, 0)
	if got := tour.Length(pts); math.Abs(got-perimeter) > 1e-9 {
		t.Fatalf("circle crossing not fixed: length %v, want perimeter %v", got, perimeter)
	}
}

// TestTwoOptNeighborListTinyTours: fewer than four vertices admit no
// 2-opt move; the descent must be a no-op, not a panic.
func TestTwoOptNeighborListTinyTours(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for n := 0; n < 4; n++ {
		pts := rngPoints(rng, n, 10)
		tour := identityTour(n)
		orig := append([]int(nil), tour.Order...)
		if moves := TwoOptNeighborList(&tour, pts, 5, 0); moves != 0 {
			t.Fatalf("n=%d: %d moves on a tiny tour", n, moves)
		}
		for i := range orig {
			if tour.Order[i] != orig[i] {
				t.Fatalf("n=%d: order mutated", n)
			}
		}
	}
}

// TestTwoOptRestartsWithWorkerInvariance: with the neighbor-list kernel
// forced on, the restart winner must be byte-identical at any worker
// count — the (length, lexicographic) tiebreak is worker-order free.
func TestTwoOptRestartsWithWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	pts := rngPoints(rng, 150, 100)
	th := Thresholds{TwoOpt: 50} // force the neighbor-list kernel
	var want []int
	for _, workers := range []int{1, 2, 8} {
		tour := identityTour(len(pts))
		TwoOptRestartsWith(context.Background(), &tour, pts, 6, workers, th)
		if want == nil {
			want = append([]int(nil), tour.Order...)
			continue
		}
		for i := range want {
			if tour.Order[i] != want[i] {
				t.Fatalf("workers=%d: order diverges at %d: %d vs %d", workers, i, tour.Order[i], want[i])
			}
		}
	}
}

// TestTwoOptNeighborListQualityVsFull pins the quality gap between the
// neighbor-list descent (k = DefaultNeighborK) and the exact quadratic
// descent on random instances up to n=300: starting both from the same
// nearest-neighbor tour, the sparse result must stay within 5% of the
// full descent's length. The seeds are fixed, so a kernel regression
// shows up as a deterministic failure, not flakiness.
func TestTwoOptNeighborListQualityVsFull(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(seed))
		n := 80 + rng.Intn(221) // 80..300
		pts := rngPoints(rng, n, 1000)
		start := NearestNeighbor(pts, 0)

		full := start.Clone()
		TwoOptFull(&full, pts, 0)
		sparse := start.Clone()
		TwoOptNeighborList(&sparse, pts, DefaultNeighborK, 0)

		lf, ls := full.Length(pts), sparse.Length(pts)
		if ls > lf*1.05 {
			t.Fatalf("seed %d (n=%d): neighbor-list %.3f vs full %.3f exceeds 1.05 ratio (%.4f)",
				seed, n, ls, lf, ls/lf)
		}
		if err := sparse.Validate(n); err != nil {
			t.Fatalf("seed %d: invalid tour: %v", seed, err)
		}
	}
}

// TestTwoOptDispatchThresholds checks the crossover routing via the
// kernel counters: thresholds at or below the tour size pick the
// neighbor-list kernel, negative thresholds pin the exact kernel, and
// the zero value keeps paper-scale tours exact.
func TestTwoOptDispatchThresholds(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	pts := rngPoints(rng, 40, 50)
	cases := []struct {
		th   Thresholds
		want string
	}{
		{Thresholds{TwoOpt: 10}, "tsp.2opt.neighbor"},
		{Thresholds{TwoOpt: -1}, "tsp.2opt.full"},
		{Thresholds{}, "tsp.2opt.full"}, // default crossover is 3000 > 40
	}
	for _, c := range cases {
		tr := obs.New()
		ctx := obs.WithTracer(context.Background(), tr)
		tour := identityTour(len(pts))
		TwoOptRestartsWith(ctx, &tour, pts, 0, 1, c.th)
		if got := tr.Report().Counters[c.want]; got != 1 {
			t.Errorf("th=%+v: counter %s = %d, want 1 (counters: %v)", c.th, c.want, got, tr.Report().Counters)
		}
	}
}

// TestThresholdsCanon pins the equivalence-class canonicalization the
// plan-cache key relies on: zero means the package default, every
// negative value means "never".
func TestThresholdsCanon(t *testing.T) {
	got := Thresholds{}.Canon()
	want := Thresholds{MST: DefaultMSTThreshold, TwoOpt: DefaultTwoOptThreshold, Match: DefaultMatchThreshold}
	if got != want {
		t.Errorf("zero Canon = %+v, want %+v", got, want)
	}
	got = Thresholds{MST: -7, TwoOpt: -1, Match: -100}.Canon()
	want = Thresholds{MST: -1, TwoOpt: -1, Match: -1}
	if got != want {
		t.Errorf("negative Canon = %+v, want %+v", got, want)
	}
	if th := (Thresholds{MST: 42, TwoOpt: 7, Match: 9}); th.Canon() != th {
		t.Errorf("positive Canon must be identity, got %+v", th.Canon())
	}
	if !(Thresholds{TwoOpt: 5}).SparseTwoOpt(5) || (Thresholds{TwoOpt: 5}).SparseTwoOpt(4) {
		t.Error("SparseTwoOpt crossover is >=")
	}
	if (Thresholds{MST: -1}).SparseMST(1 << 20) {
		t.Error("negative threshold must never go sparse")
	}
	if !(Thresholds{}).SparseMatch(DefaultMatchThreshold) {
		t.Error("zero threshold must use the package default")
	}
}
