package tsp

// Default dense->sparse crossover sizes for the three K-minMax kernels.
// Below the crossover the exact quadratic kernels run (and the planner's
// n<=1200 schedules stay byte-identical to the seed); at or above it the
// subquadratic kernels take over. The MST crossover is conservative
// because the sparse kernel is weight-exact anyway — it exists only so
// small inputs skip the grid setup.
const (
	// DefaultMSTThreshold is the point count at which MSTApprox and
	// Christofides switch from the dense O(n^2) Prim to the grid-pruned
	// mst.EuclideanSparse.
	DefaultMSTThreshold = 3000
	// DefaultTwoOptThreshold is the tour size at which TwoOpt switches
	// from the exact quadratic descent to the neighbor-list descent.
	DefaultTwoOptThreshold = 3000
	// DefaultMatchThreshold is the odd-vertex count at which the
	// Christofides matching switches from the sorted-pair greedy to the
	// grid-bucketed nearest-available greedy.
	DefaultMatchThreshold = 3000
	// DefaultNeighborK is the neighbor-list size of the sparse 2-opt:
	// exchanges are only attempted between a stop and its k nearest (or
	// their) neighbors.
	DefaultNeighborK = 10
)

// Thresholds selects, per kernel, the input size at which the K-minMax
// tour machinery abandons its exact quadratic implementation for the
// sparse one. The zero value means the package defaults above; a negative
// field pins that kernel dense at every size (the ablation/oracle
// setting); a positive field v makes the kernel sparse for sizes >= v
// (v = 1 forces sparse always — the CI byte-identity job runs the MST
// kernel this way to prove it is a drop-in).
//
// The MST kernel is exact (same tree weight, same tree when edge weights
// are distinct), so its threshold is a pure speed knob. The 2-opt and
// matching kernels are approximate: moving their thresholds can change
// tours, which is why the thresholds travel through ktour.Input and
// core.Options into the plan-cache key.
type Thresholds struct {
	MST    int
	TwoOpt int
	Match  int
}

// Canon maps th to the canonical representative of its behavior class:
// zero fields become the package defaults and all negative values
// collapse to -1. Two Thresholds values that canonicalize equally behave
// identically at every input size (the plan cache keys the canonical
// form).
func (th Thresholds) Canon() Thresholds {
	c := func(v, def int) int {
		switch {
		case v == 0:
			return def
		case v < 0:
			return -1
		}
		return v
	}
	return Thresholds{
		MST:    c(th.MST, DefaultMSTThreshold),
		TwoOpt: c(th.TwoOpt, DefaultTwoOptThreshold),
		Match:  c(th.Match, DefaultMatchThreshold),
	}
}

// sparseAt reports whether a kernel with crossover v (in canonical form
// semantics: 0 = default def, negative = never) goes sparse at size n.
func sparseAt(v, def, n int) bool {
	if v == 0 {
		v = def
	}
	return v > 0 && n >= v
}

// SparseMST reports whether the MST kernel runs grid-pruned at n points.
func (th Thresholds) SparseMST(n int) bool { return sparseAt(th.MST, DefaultMSTThreshold, n) }

// SparseTwoOpt reports whether 2-opt runs the neighbor-list descent on an
// n-vertex tour.
func (th Thresholds) SparseTwoOpt(n int) bool { return sparseAt(th.TwoOpt, DefaultTwoOptThreshold, n) }

// SparseMatch reports whether the Christofides matching runs grid-bucketed
// over n odd vertices.
func (th Thresholds) SparseMatch(n int) bool { return sparseAt(th.Match, DefaultMatchThreshold, n) }
