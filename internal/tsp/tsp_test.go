package tsp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randPts(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	return pts
}

func TestTourLength(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)}
	tour := Tour{Order: []int{0, 1, 2, 3}}
	if got := tour.Length(pts); math.Abs(got-4) > 1e-9 {
		t.Errorf("Length = %v, want 4", got)
	}
	if got := (Tour{}).Length(pts); got != 0 {
		t.Errorf("empty tour length = %v", got)
	}
	if got := (Tour{Order: []int{2}}).Length(pts); got != 0 {
		t.Errorf("singleton tour length = %v", got)
	}
}

func TestTourValidate(t *testing.T) {
	tests := []struct {
		name    string
		order   []int
		n       int
		wantErr bool
	}{
		{"valid", []int{2, 0, 1}, 3, false},
		{"short", []int{0, 1}, 3, true},
		{"repeat", []int{0, 1, 1}, 3, true},
		{"out of range", []int{0, 1, 5}, 3, true},
		{"negative", []int{0, -1, 2}, 3, true},
		{"empty ok", nil, 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := Tour{Order: tt.order}.Validate(tt.n)
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestRotateToStart(t *testing.T) {
	tour := Tour{Order: []int{3, 1, 4, 0, 2}}
	tour.RotateToStart(0)
	want := []int{0, 2, 3, 1, 4}
	for i := range want {
		if tour.Order[i] != want[i] {
			t.Fatalf("rotated = %v, want %v", tour.Order, want)
		}
	}
	before := append([]int(nil), tour.Order...)
	tour.RotateToStart(99) // absent: no-op
	for i := range before {
		if tour.Order[i] != before[i] {
			t.Fatal("RotateToStart(absent) modified tour")
		}
	}
}

func TestConstructorsProduceValidTours(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	builders := map[string]func([]geom.Point, int) Tour{
		"nearest-neighbor":   NearestNeighbor,
		"mst-approx":         MSTApprox,
		"christofides":       Christofides,
		"cheapest-insertion": CheapestInsertion,
	}
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(120)
		pts := randPts(rng, n)
		start := rng.Intn(n)
		for name, build := range builders {
			tour := build(pts, start)
			if err := tour.Validate(n); err != nil {
				t.Fatalf("%s trial %d: %v", name, trial, err)
			}
			if tour.Order[0] != start {
				t.Fatalf("%s trial %d: starts at %d, want %d", name, trial, tour.Order[0], start)
			}
		}
	}
}

func TestConstructorsEdgeCases(t *testing.T) {
	for name, build := range map[string]func([]geom.Point, int) Tour{
		"nearest-neighbor":   NearestNeighbor,
		"mst-approx":         MSTApprox,
		"christofides":       Christofides,
		"cheapest-insertion": CheapestInsertion,
	} {
		if tour := build(nil, 0); len(tour.Order) != 0 {
			t.Errorf("%s: empty pts should give empty tour", name)
		}
		if tour := build(randPts(rand.New(rand.NewSource(1)), 5), -1); len(tour.Order) != 0 {
			t.Errorf("%s: bad start should give empty tour", name)
		}
		one := build([]geom.Point{geom.Pt(5, 5)}, 0)
		if len(one.Order) != 1 || one.Order[0] != 0 {
			t.Errorf("%s: single point tour = %v", name, one.Order)
		}
		two := build([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}, 1)
		if err := two.Validate(2); err != nil || two.Order[0] != 1 {
			t.Errorf("%s: two point tour = %v (%v)", name, two.Order, err)
		}
	}
}

// TestMSTApproxWithinTwiceOptimal verifies the 2-approximation bound against
// a brute-force optimum on small instances.
func TestMSTApproxWithinTwiceOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(4) // 4..7
		pts := randPts(rng, n)
		opt := bruteForceOptimal(pts)
		for name, build := range map[string]func([]geom.Point, int) Tour{
			"mst-approx":         MSTApprox,
			"christofides":       Christofides,
			"cheapest-insertion": CheapestInsertion,
		} {
			got := build(pts, 0).Length(pts)
			if got > 2*opt+1e-9 {
				t.Errorf("trial %d: %s length %v > 2*opt %v", trial, name, got, 2*opt)
			}
		}
	}
}

func bruteForceOptimal(pts []geom.Point) float64 {
	n := len(pts)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			if l := (Tour{Order: perm}).Length(pts); l < best {
				best = l
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(1) // fix start at 0
	return best
}

func TestTwoOptNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(100)
		pts := randPts(rng, n)
		tour := NearestNeighbor(pts, 0)
		before := tour.Length(pts)
		TwoOpt(&tour, pts, 0)
		after := tour.Length(pts)
		if after > before+1e-9 {
			t.Fatalf("trial %d: 2-opt worsened %v -> %v", trial, before, after)
		}
		if err := tour.Validate(n); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestTwoOptFixesCrossing(t *testing.T) {
	// A deliberately crossed square tour: 0-2-1-3 crosses; 2-opt must undo it.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)}
	tour := Tour{Order: []int{0, 2, 1, 3}}
	if moves := TwoOpt(&tour, pts, 0); moves == 0 {
		t.Fatal("expected at least one improving move")
	}
	if got := tour.Length(pts); math.Abs(got-4) > 1e-9 {
		t.Errorf("after 2-opt length = %v, want 4", got)
	}
}

func TestTwoOptTinyTours(t *testing.T) {
	pts := randPts(rand.New(rand.NewSource(2)), 3)
	tour := Tour{Order: []int{0, 1, 2}}
	if moves := TwoOpt(&tour, pts, 0); moves != 0 {
		t.Errorf("3-vertex tour cannot be improved, moves = %d", moves)
	}
}

func TestOrOptNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(80)
		pts := randPts(rng, n)
		tour := NearestNeighbor(pts, 0)
		before := tour.Length(pts)
		OrOpt(&tour, pts, 50)
		after := tour.Length(pts)
		if after > before+1e-9 {
			t.Fatalf("trial %d: Or-opt worsened %v -> %v", trial, before, after)
		}
		if err := tour.Validate(n); err != nil {
			t.Fatalf("trial %d: invalid after Or-opt: %v", trial, err)
		}
		if tour.Order[0] != 0 {
			t.Fatalf("trial %d: Or-opt moved the depot", trial)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := Tour{Order: []int{0, 1, 2}}
	b := a.Clone()
	b.Order[0] = 9
	if a.Order[0] != 0 {
		t.Error("Clone shares backing array")
	}
}

func BenchmarkChristofides1000(b *testing.B) {
	pts := randPts(rand.New(rand.NewSource(1)), 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Christofides(pts, 0)
	}
}

func BenchmarkTwoOpt200(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randPts(rng, 200)
	base := NearestNeighbor(pts, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tour := base.Clone()
		TwoOpt(&tour, pts, 0)
	}
}
