package tsp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// checkPerfectMatching fails unless match pairs every vertex of odd
// exactly once, with no self-pairs and no vertex repeated.
func checkPerfectMatching(t *testing.T, odd []int, match [][2]int) {
	t.Helper()
	if len(match) != len(odd)/2 {
		t.Fatalf("matching has %d pairs for %d vertices", len(match), len(odd))
	}
	inOdd := map[int]bool{}
	for _, v := range odd {
		inOdd[v] = true
	}
	used := map[int]bool{}
	for _, e := range match {
		if e[0] == e[1] {
			t.Fatalf("self pair %v", e)
		}
		for _, v := range e {
			if !inOdd[v] {
				t.Fatalf("pair %v includes vertex %d not in odd set", e, v)
			}
			if used[v] {
				t.Fatalf("vertex %d matched twice", v)
			}
			used[v] = true
		}
	}
}

func matchingWeight(pts []geom.Point, match [][2]int) float64 {
	w := 0.0
	for _, e := range match {
		w += geom.Dist(pts[e[0]], pts[e[1]])
	}
	return w
}

// bruteMinMatching returns the minimum-weight perfect matching over idx
// (indices into pts, len <= 10) by exhaustive pairing recursion.
func bruteMinMatching(pts []geom.Point, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	first := idx[0]
	best := math.Inf(1)
	for j := 1; j < len(idx); j++ {
		rest := make([]int, 0, len(idx)-2)
		rest = append(rest, idx[1:j]...)
		rest = append(rest, idx[j+1:]...)
		w := geom.Dist(pts[first], pts[idx[j]]) + bruteMinMatching(pts, rest)
		if w < best {
			best = w
		}
	}
	return best
}

// TestGreedyMatchingSparseTable pins the sparse matching's validity on
// the geometries the grid bucketing has to survive.
func TestGreedyMatchingSparseTable(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	cases := map[string]func() ([]geom.Point, []int){
		"random": func() ([]geom.Point, []int) {
			pts := rngPoints(rng, 60, 100)
			odd := make([]int, 0, 30)
			for i := 0; i < 60; i += 2 {
				odd = append(odd, i)
			}
			return pts, odd
		},
		"two-points": func() ([]geom.Point, []int) {
			return []geom.Point{geom.Pt(0, 0), geom.Pt(5, 5)}, []int{0, 1}
		},
		"collinear": func() ([]geom.Point, []int) {
			pts := make([]geom.Point, 20)
			odd := make([]int, 20)
			for i := range pts {
				pts[i] = geom.Pt(float64(i*i), 0)
				odd[i] = i
			}
			return pts, odd
		},
		"duplicates": func() ([]geom.Point, []int) {
			pts := make([]geom.Point, 16)
			odd := make([]int, 16)
			for i := range pts {
				pts[i] = geom.Pt(float64(i/4), float64(i/4)) // 4 coincident groups
				odd[i] = i
			}
			return pts, odd
		},
		"far-clusters": func() ([]geom.Point, []int) {
			pts := make([]geom.Point, 0, 20)
			for i := 0; i < 10; i++ {
				pts = append(pts, geom.Pt(rng.Float64(), rng.Float64()))
			}
			for i := 0; i < 10; i++ {
				pts = append(pts, geom.Pt(1e6+rng.Float64(), rng.Float64()))
			}
			odd := make([]int, 20)
			for i := range odd {
				odd[i] = i
			}
			return pts, odd
		},
		"odd-subset-of-larger-set": func() ([]geom.Point, []int) {
			pts := rngPoints(rng, 100, 50)
			return pts, []int{3, 17, 41, 42, 77, 99}
		},
	}
	for name, gen := range cases {
		t.Run(name, func(t *testing.T) {
			pts, odd := gen()
			match := greedyMatchingSparse(pts, odd)
			checkPerfectMatching(t, odd, match)
			dense := greedyMatching(pts, odd)
			checkPerfectMatching(t, odd, dense)
		})
	}
}

// TestGreedyMatchingSparseNearOptimal compares both greedy matchings
// against the exact minimum on brute-forceable odd sets (<= 10
// vertices). The pinned factor is loose — nearest-available greedy has
// no constant-factor guarantee — but seeds are fixed, so any kernel
// regression trips it deterministically.
func TestGreedyMatchingSparseNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		o := 2 * (1 + rng.Intn(5)) // 2..10 odd vertices
		pts := rngPoints(rng, o, 100)
		odd := make([]int, o)
		for i := range odd {
			odd[i] = i
		}
		opt := bruteMinMatching(pts, odd)
		sparse := matchingWeight(pts, greedyMatchingSparse(pts, odd))
		dense := matchingWeight(pts, greedyMatching(pts, odd))
		const factor = 2.5
		if sparse > opt*factor+1e-9 {
			t.Fatalf("trial %d (o=%d): sparse matching %.3f exceeds %.1fx optimum %.3f", trial, o, sparse, factor, opt)
		}
		if dense > opt*factor+1e-9 {
			t.Fatalf("trial %d (o=%d): dense matching %.3f exceeds %.1fx optimum %.3f", trial, o, dense, factor, opt)
		}
	}
}

// TestChristofidesWithSparseMatchValid: with the sparse matching forced
// on, Christofides must still emit a valid Hamiltonian tour within its
// construction bound's ballpark of the dense variant.
func TestChristofidesWithSparseMatchValid(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(180)
		pts := rngPoints(rng, n, 300)
		sparse := ChristofidesWith(t.Context(), pts, 0, Thresholds{Match: 1})
		if err := sparse.Validate(n); err != nil {
			t.Fatalf("trial %d: invalid sparse-match tour: %v", trial, err)
		}
		dense := Christofides(pts, 0)
		ls, ld := sparse.Length(pts), dense.Length(pts)
		if ls > ld*1.25 {
			t.Fatalf("trial %d (n=%d): sparse-match tour %.3f vs dense %.3f exceeds 1.25 ratio", trial, n, ls, ld)
		}
	}
}

// refMatchingNearestAvailable is the brute-force O(o^2) reference for
// greedyMatchingSparse's rule: scan ascending, pair each unmatched vertex
// with its nearest unmatched partner, ties to the lowest index. The grid
// kernel must reproduce it pair for pair — NearestWhere's ring pruning
// and index tiebreak are exactly this search.
func refMatchingNearestAvailable(pts []geom.Point, odd []int) [][2]int {
	matched := make([]bool, len(odd))
	var out [][2]int
	for i := range odd {
		if matched[i] {
			continue
		}
		matched[i] = true
		best, bestD2 := -1, math.Inf(1)
		for j := range odd {
			if matched[j] {
				continue
			}
			if d2 := geom.DistSq(pts[odd[i]], pts[odd[j]]); d2 < bestD2 {
				best, bestD2 = j, d2
			}
		}
		if best < 0 {
			matched[i] = false
			break
		}
		matched[best] = true
		out = append(out, [2]int{odd[i], odd[best]})
	}
	return out
}

// FuzzSparseMatching drives greedyMatchingSparse with fuzzer-chosen
// point sets: whatever the geometry (duplicates, collinear runs, huge
// spreads), the result must be a perfect matching on the odd set and
// must agree pair for pair with the brute-force nearest-available
// reference — the grid search is a pure accelerator, never a different
// matching rule.
func FuzzSparseMatching(f *testing.F) {
	f.Add(int64(1), uint8(6), false)
	f.Add(int64(42), uint8(10), true)
	f.Add(int64(7), uint8(40), false)
	f.Fuzz(func(t *testing.T, seed int64, count uint8, clustered bool) {
		o := int(count)%48 + 2
		o -= o % 2 // even, 2..48
		rng := rand.New(rand.NewSource(seed))
		pts := make([]geom.Point, o)
		for i := range pts {
			switch {
			case clustered && i%2 == 0:
				pts[i] = geom.Pt(1e5+rng.Float64(), 1e5+rng.Float64())
			case i%7 == 3:
				pts[i] = pts[rng.Intn(i+1)] // planted duplicate
			default:
				pts[i] = geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
			}
		}
		odd := make([]int, o)
		for i := range odd {
			odd[i] = i
		}
		match := greedyMatchingSparse(pts, odd)
		checkPerfectMatching(t, odd, match)
		want := refMatchingNearestAvailable(pts, odd)
		if len(match) != len(want) {
			t.Fatalf("grid kernel made %d pairs, reference %d", len(match), len(want))
		}
		for p := range want {
			if match[p] != want[p] {
				t.Fatalf("pair %d diverges: grid %v, reference %v", p, match[p], want[p])
			}
		}
	})
}
