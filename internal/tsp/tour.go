// Package tsp provides traveling-salesman tour construction and improvement
// heuristics over Euclidean point sets: nearest-neighbor, MST-doubling
// (2-approximation), a Christofides-style construction with greedy
// odd-vertex matching, and 2-opt / Or-opt local search. These tours are the
// input to min-max tour splitting in package ktour.
package tsp

import (
	"fmt"

	"repro/internal/geom"
)

// Tour is a cyclic permutation of point indices; Order[0] is conventionally
// the depot/start vertex. The closing edge from the last vertex back to
// Order[0] is implicit.
type Tour struct {
	Order []int
}

// Length returns the total Euclidean length of the closed tour over pts.
func (t Tour) Length(pts []geom.Point) float64 {
	if len(t.Order) < 2 {
		return 0
	}
	total := 0.0
	for i := 1; i < len(t.Order); i++ {
		total += geom.Dist(pts[t.Order[i-1]], pts[t.Order[i]])
	}
	total += geom.Dist(pts[t.Order[len(t.Order)-1]], pts[t.Order[0]])
	return total
}

// Validate checks that t is a permutation of 0..n-1. It returns a
// descriptive error otherwise.
func (t Tour) Validate(n int) error {
	if len(t.Order) != n {
		return fmt.Errorf("tsp: tour has %d vertices, want %d", len(t.Order), n)
	}
	seen := make([]bool, n)
	for _, v := range t.Order {
		if v < 0 || v >= n {
			return fmt.Errorf("tsp: vertex %d out of range [0,%d)", v, n)
		}
		if seen[v] {
			return fmt.Errorf("tsp: vertex %d repeated", v)
		}
		seen[v] = true
	}
	return nil
}

// RotateToStart rotates the tour in place so that it begins at vertex start.
// It is a no-op if start is not in the tour.
func (t *Tour) RotateToStart(start int) {
	pos := -1
	for i, v := range t.Order {
		if v == start {
			pos = i
			break
		}
	}
	if pos <= 0 {
		return
	}
	rotated := make([]int, 0, len(t.Order))
	rotated = append(rotated, t.Order[pos:]...)
	rotated = append(rotated, t.Order[:pos]...)
	t.Order = rotated
}

// Clone returns a deep copy of the tour.
func (t Tour) Clone() Tour {
	return Tour{Order: append([]int(nil), t.Order...)}
}
