package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBatteryBasics(t *testing.T) {
	b := NewBattery(10800)
	if b.Residual != 10800 || b.Fraction() != 1 || b.IsEmpty() {
		t.Fatalf("new battery wrong: %+v", b)
	}
	b = b.Deplete(800)
	if b.Residual != 10000 {
		t.Errorf("Residual = %v, want 10000", b.Residual)
	}
	b = b.Deplete(20000) // clamp at zero
	if !b.IsEmpty() || b.Residual != 0 {
		t.Errorf("over-deplete: %+v", b)
	}
	b = b.Charge(5000)
	if b.Residual != 5000 {
		t.Errorf("Charge: %v", b.Residual)
	}
	b = b.Charge(1e9) // clamp at capacity
	if b.Residual != b.Capacity {
		t.Errorf("over-charge: %+v", b)
	}
	// Negative amounts ignored.
	if got := b.Deplete(-5); got != b {
		t.Error("negative deplete changed battery")
	}
	if got := b.Charge(-5); got != b {
		t.Error("negative charge changed battery")
	}
}

func TestBatteryValidate(t *testing.T) {
	tests := []struct {
		name    string
		b       Battery
		wantErr bool
	}{
		{"valid", Battery{Capacity: 10, Residual: 5}, false},
		{"full", Battery{Capacity: 10, Residual: 10}, false},
		{"empty", Battery{Capacity: 10, Residual: 0}, false},
		{"zero capacity", Battery{}, true},
		{"negative residual", Battery{Capacity: 10, Residual: -1}, true},
		{"residual above capacity", Battery{Capacity: 10, Residual: 11}, true},
		{"NaN residual", Battery{Capacity: 10, Residual: math.NaN()}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.b.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestChargeDurationMatchesPaper(t *testing.T) {
	// The paper: a 10.8 kJ battery at eta = 2 W charges from empty in
	// 1.5 hours.
	b := Battery{Capacity: 10800, Residual: 0}
	if got := b.ChargeDuration(2); math.Abs(got-5400) > 1e-9 {
		t.Errorf("ChargeDuration = %v s, want 5400 s (1.5 h)", got)
	}
	// At 20% residual: 1.2 hours.
	b.Residual = 0.2 * 10800
	if got := b.ChargeDuration(2); math.Abs(got-4320) > 1e-9 {
		t.Errorf("ChargeDuration = %v s, want 4320 s (1.2 h)", got)
	}
	if got := b.ChargeDuration(0); got != 0 {
		t.Errorf("zero rate: %v", got)
	}
}

func TestTimeToFraction(t *testing.T) {
	b := NewBattery(1000)
	if got := b.TimeToFraction(0.2, 2); math.Abs(got-400) > 1e-9 {
		t.Errorf("TimeToFraction = %v, want 400", got)
	}
	if got := b.TimeToFraction(0.2, 0); !math.IsInf(got, 1) {
		t.Errorf("zero draw: %v", got)
	}
	low := Battery{Capacity: 1000, Residual: 100}
	if got := low.TimeToFraction(0.2, 5); got != 0 {
		t.Errorf("already below threshold: %v", got)
	}
}

func TestBatteryInvariants(t *testing.T) {
	f := func(capSeed, opSeed uint32) bool {
		capacity := 1 + float64(capSeed%100000)
		b := NewBattery(capacity)
		ops := opSeed
		for i := 0; i < 20; i++ {
			amt := float64(ops % 997)
			if ops%2 == 0 {
				b = b.Deplete(amt)
			} else {
				b = b.Charge(amt)
			}
			ops = ops*1664525 + 1013904223
			if b.Residual < 0 || b.Residual > b.Capacity {
				return false
			}
		}
		return b.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRadioModelValidate(t *testing.T) {
	if err := DefaultRadio().Validate(); err != nil {
		t.Fatalf("default radio invalid: %v", err)
	}
	bad := DefaultRadio()
	bad.DutyCycle = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero duty cycle should be invalid")
	}
	bad = DefaultRadio()
	bad.PathLoss = 9
	if err := bad.Validate(); err == nil {
		t.Error("path loss 9 should be invalid")
	}
	bad = DefaultRadio()
	bad.ElecJPerBit = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Error("NaN elec should be invalid")
	}
}

func TestRadioDraw(t *testing.T) {
	m := RadioModel{ElecJPerBit: 50e-9, AmpJPerBitPow: 100e-12, SenseJPerBit: 5e-9, PathLoss: 2, DutyCycle: 1}
	// 50 kbps own, no relay, 10 m: sense 0.25 mW + tx (50n+10n)*50k = 3 mW.
	got := m.Draw(50e3, 0, 10)
	want := 5e-9*50e3 + (50e-9+100e-12*100)*50e3
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Draw = %v, want %v", got, want)
	}
	// Relayed traffic adds tx and rx costs.
	withRelay := m.Draw(50e3, 100e3, 10)
	if withRelay <= got {
		t.Error("relaying should increase draw")
	}
	// Draw grows with distance.
	if m.Draw(50e3, 0, 40) <= m.Draw(50e3, 0, 10) {
		t.Error("draw should grow with parent distance")
	}
	// Negative inputs clamp to zero.
	if m.Draw(-1, -1, -1) != 0 {
		t.Error("all-negative draw should be 0")
	}
}

func TestRadioDrawMonotonicity(t *testing.T) {
	m := DefaultRadio()
	f := func(own, relay, d uint16) bool {
		o, r, dd := float64(own), float64(relay), float64(d%200)
		base := m.Draw(o, r, dd)
		return m.Draw(o+1000, r, dd) >= base &&
			m.Draw(o, r+1000, dd) >= base &&
			m.Draw(o, r, dd+5) >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLifetimeScale(t *testing.T) {
	// Sanity-check the calibration: a mid-range sensor (25 kbps own, a
	// little relaying, 15 m hop) should live days-to-weeks on 10.8 kJ so
	// that a 1000-sensor network generates tens of requests per day.
	m := DefaultRadio()
	draw := m.Draw(25e3, 25e3, 15)
	life := Lifetime(10800, draw)
	days := life / 86400
	if days < 2 || days > 120 {
		t.Errorf("mid-range sensor lifetime = %.1f days; calibration regression", days)
	}
	if !math.IsInf(Lifetime(10800, 0), 1) {
		t.Error("zero draw should give infinite lifetime")
	}
}
