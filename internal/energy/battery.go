// Package energy models sensor batteries and the sensor energy consumption
// profile the paper adopts: a first-order radio model whose per-sensor load
// includes the traffic the sensor relays toward the base station, so that
// sensors near the base station deplete faster (the energy-hole profile of
// Li & Mohapatra, the paper's reference [12]).
package energy

import (
	"fmt"
	"math"
)

// Battery is a rechargeable sensor battery. All energies are in joules.
type Battery struct {
	// Capacity is C_v, the full energy capacity (paper: 10.8 kJ).
	Capacity float64 `json:"capacity"`
	// Residual is RE_v, the remaining energy, in [0, Capacity].
	Residual float64 `json:"residual"`
}

// NewBattery returns a full battery of the given capacity.
func NewBattery(capacity float64) Battery {
	return Battery{Capacity: capacity, Residual: capacity}
}

// Validate reports a problem with the battery fields, or nil.
func (b Battery) Validate() error {
	if b.Capacity <= 0 || math.IsNaN(b.Capacity) || math.IsInf(b.Capacity, 0) {
		return fmt.Errorf("energy: capacity = %v, want finite > 0", b.Capacity)
	}
	if b.Residual < 0 || b.Residual > b.Capacity || math.IsNaN(b.Residual) {
		return fmt.Errorf("energy: residual = %v, want in [0, %v]", b.Residual, b.Capacity)
	}
	return nil
}

// Fraction returns Residual / Capacity.
func (b Battery) Fraction() float64 {
	if b.Capacity <= 0 {
		return 0
	}
	return b.Residual / b.Capacity
}

// IsEmpty reports whether the battery is fully depleted.
func (b Battery) IsEmpty() bool { return b.Residual <= 0 }

// Deplete drains j joules, clamping at zero, and returns the updated
// battery. Negative j is ignored.
func (b Battery) Deplete(j float64) Battery {
	if j <= 0 {
		return b
	}
	b.Residual -= j
	if b.Residual < 0 {
		b.Residual = 0
	}
	return b
}

// Charge adds j joules, clamping at capacity, and returns the updated
// battery. Negative j is ignored.
func (b Battery) Charge(j float64) Battery {
	if j <= 0 {
		return b
	}
	b.Residual += j
	if b.Residual > b.Capacity {
		b.Residual = b.Capacity
	}
	return b
}

// ChargeDuration returns t_v = (Capacity - Residual) / rate, the seconds a
// charger with the given charging rate (watts) needs to fill the battery
// (the paper's Eq. (1)). It returns 0 for a non-positive rate.
func (b Battery) ChargeDuration(rate float64) float64 {
	if rate <= 0 {
		return 0
	}
	return (b.Capacity - b.Residual) / rate
}

// TimeToFraction returns how long the battery lasts until its residual
// falls to the given fraction of capacity under constant draw (watts).
// It returns +Inf for non-positive draw and 0 if already at or below the
// fraction.
func (b Battery) TimeToFraction(frac, draw float64) float64 {
	if draw <= 0 {
		return math.Inf(1)
	}
	target := frac * b.Capacity
	if b.Residual <= target {
		return 0
	}
	return (b.Residual - target) / draw
}
