package energy

import (
	"fmt"
	"math"
)

// RadioModel is a first-order sensor radio energy model. A sensor that
// generates own bits/s and relays relayed bits/s to a parent at distance d
// meters draws
//
//	P = DutyCycle * [ Sense*own + (Elec + Amp*d^PathLoss)*(own+relayed) + Elec*relayed ]
//
// watts: sensing its own data, transmitting everything it forwards, and
// receiving what it relays. The relayed term makes sensors near the base
// station the hottest, reproducing the energy-hole profile of the paper's
// consumption reference [12].
type RadioModel struct {
	// ElecJPerBit is the electronics energy per bit for TX and RX
	// (typical: 50 nJ/bit).
	ElecJPerBit float64 `json:"elec_j_per_bit"`
	// AmpJPerBitPow is the amplifier energy per bit per meter^PathLoss
	// (typical: 100 pJ/bit/m^2).
	AmpJPerBitPow float64 `json:"amp_j_per_bit_pow"`
	// SenseJPerBit is the sensing energy per own bit (typical: 5 nJ/bit).
	SenseJPerBit float64 `json:"sense_j_per_bit"`
	// PathLoss is the path-loss exponent (typical: 2).
	PathLoss float64 `json:"path_loss"`
	// DutyCycle scales the whole draw for sleep scheduling, in (0, 1].
	DutyCycle float64 `json:"duty_cycle"`
}

// DefaultRadio returns the model parameters used throughout the
// reproduction: the classic first-order constants with a 50% duty cycle,
// calibrated so that a WRSN with the paper's battery (10.8 kJ), data rates
// (1-50 kbps) and size (around 1000 sensors) presents a charging demand
// that K=2 chargers at 2 W can barely sustain under one-to-one charging —
// the regime the paper's evaluation operates in (per-algorithm utilization
// around 0.8-1.0 for the one-to-one baselines, comfortable for multi-node
// charging).
func DefaultRadio() RadioModel {
	return RadioModel{
		ElecJPerBit:   50e-9,
		AmpJPerBitPow: 100e-12,
		SenseJPerBit:  5e-9,
		PathLoss:      2,
		DutyCycle:     0.5,
	}
}

// Validate reports a problem with the model parameters, or nil.
func (m RadioModel) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"ElecJPerBit", m.ElecJPerBit},
		{"AmpJPerBitPow", m.AmpJPerBitPow},
		{"SenseJPerBit", m.SenseJPerBit},
	} {
		if f.v < 0 || math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("energy: %s = %v, want finite >= 0", f.name, f.v)
		}
	}
	if m.PathLoss < 1 || m.PathLoss > 6 || math.IsNaN(m.PathLoss) {
		return fmt.Errorf("energy: PathLoss = %v, want in [1, 6]", m.PathLoss)
	}
	if m.DutyCycle <= 0 || m.DutyCycle > 1 || math.IsNaN(m.DutyCycle) {
		return fmt.Errorf("energy: DutyCycle = %v, want in (0, 1]", m.DutyCycle)
	}
	return nil
}

// Draw returns the sensor's power draw in watts given its own data rate
// (bits/s), the rate it relays for descendants (bits/s), and the distance
// to its routing parent (meters). Negative inputs are clamped to zero.
func (m RadioModel) Draw(ownBps, relayedBps, parentDist float64) float64 {
	if ownBps < 0 {
		ownBps = 0
	}
	if relayedBps < 0 {
		relayedBps = 0
	}
	if parentDist < 0 {
		parentDist = 0
	}
	txPerBit := m.ElecJPerBit + m.AmpJPerBitPow*math.Pow(parentDist, m.PathLoss)
	p := m.SenseJPerBit*ownBps +
		txPerBit*(ownBps+relayedBps) +
		m.ElecJPerBit*relayedBps
	return m.DutyCycle * p
}

// Lifetime returns how long a full battery of the given capacity lasts at
// the given draw, in seconds (+Inf for non-positive draw).
func Lifetime(capacity, draw float64) float64 {
	if draw <= 0 {
		return math.Inf(1)
	}
	return capacity / draw
}
