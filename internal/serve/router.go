package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/plancache"
	"repro/internal/resilience"
)

// errNoBackends reports that no healthy backend with a closed (or
// probing) breaker was available for any attempt; the caller degrades to
// planning locally.
var errNoBackends = errors.New("serve: no eligible backend")

// backend is one shard worker as the router sees it: an address, a
// liveness verdict from the health loop, and a circuit breaker fed by
// request outcomes.
type backend struct {
	url     string // normalized base URL, e.g. "http://127.0.0.1:9001"
	host    string // host:port, the metrics label and chaos blackhole key
	score   uint64 // fnv64(host), mixed with plan keys for rendezvous
	healthy atomic.Bool
	breaker *resilience.Breaker
}

// proxyResult is a routed /v1/plan response held for replay to the
// client (and shared across singleflight duplicates).
type proxyResult struct {
	status  int
	header  http.Header
	body    []byte
	backend string // host that answered
}

// router fans /v1/plan requests across shard backends: consistent
// (rendezvous) hashing on the 128-bit plancache key for cache locality,
// a health-check loop, per-backend circuit breakers, retry with
// backed-off deterministic jitter, Retry-After honoring, optional
// hedging, and singleflight collapsing — all in front of a
// degraded-local fallback owned by the handler.
type router struct {
	backends      []*backend
	client        *http.Client // request path; cfg.Transport (chaos) aware
	healthClient  *http.Client // health loop; always a plain transport
	backoff       resilience.Backoff
	maxAttempts   int
	attemptTO     time.Duration
	retryAfterCap time.Duration
	hedgeQuantile float64
	interval      time.Duration

	hist  *resilience.Histogram // routed-attempt latencies; feeds hedging
	group resilience.Group[plancache.Key, *proxyResult]
	// sleep pauses between retries; injectable so tests can observe the
	// schedule without waiting it out.
	sleep func(ctx context.Context, d time.Duration) error

	retries    atomic.Int64 // attempts beyond the first, per request
	failovers  atomic.Int64 // attempts that switched backends
	hedges     atomic.Int64 // hedged second requests launched
	hedgeWins  atomic.Int64 // hedges whose response was used
	degraded   atomic.Int64 // requests that fell back to local planning
	routedOK   atomic.Int64 // requests answered by a backend
	collapsed  atomic.Int64 // singleflight duplicate deliveries
	hedgeFloor time.Duration

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// hedgeMinSamples is how many routed attempts the latency histogram must
// hold before a p99-derived hedge delay is trusted.
const hedgeMinSamples = 32

// newRouter builds the router for cfg.Shards and starts its health loop.
func newRouter(cfg Config) *router {
	transport := cfg.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	r := &router{
		client:        &http.Client{Transport: transport},
		healthClient:  &http.Client{Timeout: cfg.HealthInterval},
		backoff:       cfg.RouterBackoff,
		maxAttempts:   cfg.RouterMaxAttempts,
		attemptTO:     cfg.RouterAttemptTimeout,
		retryAfterCap: cfg.RetryAfterCap,
		hedgeQuantile: cfg.HedgeQuantile,
		interval:      cfg.HealthInterval,
		hist:          &resilience.Histogram{},
		hedgeFloor:    time.Millisecond,
		stop:          make(chan struct{}),
	}
	r.sleep = func(ctx context.Context, d time.Duration) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	for _, s := range cfg.Shards {
		u := strings.TrimRight(s, "/")
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		h := fnv.New64a()
		io.WriteString(h, u)
		r.backends = append(r.backends, &backend{
			url:     u,
			host:    strings.TrimPrefix(strings.TrimPrefix(u, "http://"), "https://"),
			score:   h.Sum64(),
			breaker: resilience.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		})
	}
	r.wg.Add(1)
	go r.healthLoop()
	return r
}

// close stops the health loop. Idempotent.
func (r *router) close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// healthLoop probes every backend's /readyz on a fixed cadence, starting
// immediately. It uses a plain transport on purpose: chaos injection on
// the request path must not flap health verdicts, and the drill's
// injected-fault ledger stays exactly the request-path faults.
func (r *router) healthLoop() {
	defer r.wg.Done()
	for {
		for _, b := range r.backends {
			b.healthy.Store(r.probe(b))
		}
		select {
		case <-r.stop:
			return
		case <-time.After(r.interval):
		}
	}
}

// probe reports whether one backend answers /readyz with 200.
func (r *router) probe(b *backend) bool {
	resp, err := r.healthClient.Get(b.url + "/readyz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// healthyCount returns how many backends last probed healthy.
func (r *router) healthyCount() int {
	n := 0
	for _, b := range r.backends {
		if b.healthy.Load() {
			n++
		}
	}
	return n
}

// rank orders backends by rendezvous (highest-random-weight) score for
// the key: every router replica agrees on the owner of a key and on the
// failover order behind it, so a fleet shares plan-cache locality
// without coordination.
func (r *router) rank(key plancache.Key) []*backend {
	kh := key.Hash64()
	out := append([]*backend(nil), r.backends...)
	sort.Slice(out, func(i, j int) bool {
		si, sj := fault.Mix64(kh^out[i].score), fault.Mix64(kh^out[j].score)
		if si != sj {
			return si > sj
		}
		return out[i].url < out[j].url // total order even on mix collisions
	})
	return out
}

// pick returns the first eligible backend in prefs starting at offset,
// acquiring its breaker admission. A returned backend MUST receive a
// breaker Report from the caller. nil means nothing is eligible now.
func (r *router) pick(prefs []*backend, offset int) *backend {
	for i := 0; i < len(prefs); i++ {
		b := prefs[(offset+i)%len(prefs)]
		if !b.healthy.Load() {
			continue
		}
		if !b.breaker.Allow() {
			continue
		}
		return b
	}
	return nil
}

// attemptOutcome classifies one proxied attempt.
type attemptOutcome struct {
	res        *proxyResult  // non-nil when the response is final (2xx/4xx)
	retryAfter time.Duration // backend's 429 Retry-After hint, if any
	err        error         // transport or retryable-status failure
	backend    *backend
}

// attempt proxies the plan request once to b. It reports the outcome to
// b's breaker: transport errors and 5xx count against it, 2xx/4xx/429
// count for it (a shedding backend is an alive backend).
func (r *router) attempt(ctx context.Context, b *backend, keyHash uint64, rawQuery string, body []byte) attemptOutcome {
	actx, cancel := context.WithTimeout(ctx, r.attemptTO)
	defer cancel()
	u := b.url + "/v1/plan"
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return attemptOutcome{err: err, backend: b}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(resilience.ChaosKeyHeader, strconv.FormatUint(keyHash, 16))
	start := time.Now()
	resp, err := r.client.Do(req)
	if err != nil {
		b.breaker.Report(false)
		return attemptOutcome{err: err, backend: b}
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		b.breaker.Report(false)
		return attemptOutcome{err: err, backend: b}
	}
	r.hist.Observe(time.Since(start))
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		b.breaker.Report(true)
		hint := r.retryAfterHint(resp)
		return attemptOutcome{retryAfter: hint, backend: b,
			err: fmt.Errorf("serve: backend %s shedding (429, retry after %v)", b.host, hint)}
	case resp.StatusCode >= 500:
		b.breaker.Report(false)
		return attemptOutcome{err: fmt.Errorf("serve: backend %s answered %d", b.host, resp.StatusCode), backend: b}
	default: // 2xx and non-retryable 4xx are final
		b.breaker.Report(true)
		return attemptOutcome{res: &proxyResult{
			status:  resp.StatusCode,
			header:  resp.Header,
			body:    out,
			backend: b.host,
		}, backend: b}
	}
}

// retryAfterHint parses a 429's Retry-After (delta-seconds form) and
// caps it: the backend's own estimate of when capacity frees replaces
// the router's blind backoff, but a confused backend cannot stall the
// router for minutes.
func (r *router) retryAfterHint(resp *http.Response) time.Duration {
	s := resp.Header.Get("Retry-After")
	if s == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || secs < 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > r.retryAfterCap {
		d = r.retryAfterCap
	}
	return d
}

// fetch routes one plan request: rendezvous-ranked backends, retry with
// deterministic backoff (or the backend's Retry-After hint), failover
// around open breakers and unhealthy shards, and an optional hedged
// second request on the first attempt once the latency histogram has
// enough samples. It returns errNoBackends (or the last failure) when
// every path is exhausted — the caller's cue to plan locally.
func (r *router) fetch(ctx context.Context, key plancache.Key, rawQuery string, body []byte) (*proxyResult, error) {
	prefs := r.rank(key)
	keyHash := key.Hash64()
	lastErr := errNoBackends
	var prev *backend
	var hint time.Duration
	for attempt := 0; attempt < r.maxAttempts; attempt++ {
		b := r.pick(prefs, attempt)
		if b == nil {
			break
		}
		if attempt > 0 {
			r.retries.Add(1)
			if b != prev {
				r.failovers.Add(1)
			}
			d := hint
			if d <= 0 {
				d = r.backoff.Delay(keyHash, attempt-1)
			}
			if err := r.sleep(ctx, d); err != nil {
				b.breaker.Report(true) // admission unused; not the backend's fault
				return nil, err
			}
			hint = 0
		}
		var out attemptOutcome
		if attempt == 0 && r.hedgeDelay() > 0 {
			out = r.hedgedAttempt(ctx, prefs, b, keyHash, rawQuery, body)
		} else {
			out = r.attempt(ctx, b, keyHash, rawQuery, body)
		}
		prev = out.backend
		if out.res != nil {
			if out.res.status < 500 {
				r.routedOK.Add(1)
				return out.res, nil
			}
		}
		hint = out.retryAfter
		if out.err != nil {
			lastErr = out.err
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

// hedgeDelay returns the delay after which a second request is hedged,
// or 0 when hedging is off or the histogram is still too empty to trust.
func (r *router) hedgeDelay() time.Duration {
	if r.hedgeQuantile <= 0 || r.hist.Count() < hedgeMinSamples {
		return 0
	}
	d := r.hist.Quantile(r.hedgeQuantile)
	if d < r.hedgeFloor {
		d = r.hedgeFloor
	}
	return d
}

// hedgedAttempt races the primary attempt against a second one launched
// after the quantile-derived delay on the next-ranked eligible backend.
// The first final response wins; a losing in-flight attempt still
// reports to its breaker from its own goroutine.
func (r *router) hedgedAttempt(ctx context.Context, prefs []*backend, primary *backend, keyHash uint64, rawQuery string, body []byte) attemptOutcome {
	ch := make(chan attemptOutcome, 2)
	go func() { ch <- r.attempt(ctx, primary, keyHash, rawQuery, body) }()
	var timer = time.NewTimer(r.hedgeDelay())
	defer timer.Stop()
	hedged := false
	var second *backend
	select {
	case out := <-ch:
		return out
	case <-timer.C:
		// Primary is slow: hedge to the best other eligible backend.
		for i := 1; i < len(prefs) && second == nil; i++ {
			c := prefs[i%len(prefs)]
			if c != primary && c.healthy.Load() && c.breaker.Allow() {
				second = c
			}
		}
		if second == nil {
			return <-ch
		}
		hedged = true
		r.hedges.Add(1)
		go func() { ch <- r.attempt(ctx, second, keyHash, rawQuery, body) }()
	}
	first := <-ch
	if first.res != nil && first.res.status < 500 {
		if hedged && first.backend == second {
			r.hedgeWins.Add(1)
		}
		return first
	}
	// First arrival failed; the other attempt is still the request's
	// best hope.
	outcome := <-ch
	if outcome.res != nil && outcome.res.status < 500 {
		if outcome.backend == second {
			r.hedgeWins.Add(1)
		}
		return outcome
	}
	if outcome.err == nil {
		return first
	}
	return outcome
}

// RouterStats is a point-in-time snapshot of the shard router's
// resilience counters, for the loadgen/chaos drill and operators who
// prefer one JSON blob over scraping /metrics.
type RouterStats struct {
	Routed          int64 // requests answered by a backend
	DegradedLocal   int64 // requests that fell back to local planning
	Retries         int64 // proxy attempts beyond the first
	Failovers       int64 // retries that switched backends
	Hedges          int64 // hedged second requests launched
	HedgeWins       int64 // hedges whose response was used
	Collapsed       int64 // singleflight duplicate deliveries
	BreakerOpens    int64 // breaker trips summed across backends
	HealthyBackends int   // backends currently probing healthy
}

// RouterStats snapshots the router's counters; ok is false when the
// server is not in router mode.
func (s *Server) RouterStats() (RouterStats, bool) {
	if s.router == nil {
		return RouterStats{}, false
	}
	r := s.router
	st := RouterStats{
		Routed:          r.routedOK.Load(),
		DegradedLocal:   r.degraded.Load(),
		Retries:         r.retries.Load(),
		Failovers:       r.failovers.Load(),
		Hedges:          r.hedges.Load(),
		HedgeWins:       r.hedgeWins.Load(),
		Collapsed:       r.collapsed.Load(),
		HealthyBackends: r.healthyCount(),
	}
	for _, b := range r.backends {
		st.BreakerOpens += b.breaker.Opens()
	}
	return st, true
}
