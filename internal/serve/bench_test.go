package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// BenchmarkServePlan measures sustained /v1/plan throughput over real
// HTTP (httptest server + default transport). The warm variant replans
// one instance and serves from the shared plan cache — the hot replan
// path; the cold variant disables the cache so every request pays a full
// Appro plan. cmd/wrsn-serve -loadgen drives the same handler from N
// concurrent clients and records the req/s into BENCH_serve.json.
func BenchmarkServePlan(b *testing.B) {
	body, err := json.Marshal(testInstance(200, 2, 1))
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, cfg Config) {
		s := New(cfg)
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	}
	b.Run("warm-cache", func(b *testing.B) { run(b, Config{}) })
	b.Run("cold-no-cache", func(b *testing.B) { run(b, Config{CacheCapacity: -1}) })
}
