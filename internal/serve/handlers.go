package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/plancache"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/wrsn"
)

// PlanRequest is the /v1/plan request envelope. A request body may also
// be a bare core.Instance (exactly what `wrsn-plan -dump-instance`
// writes), which plans with the default planner and options.
type PlanRequest struct {
	// Planner names the algorithm ("" means Appro); the ?planner= query
	// parameter overrides it.
	Planner string `json:"planner,omitempty"`
	// Instance is the problem to plan.
	Instance *core.Instance `json:"instance"`
	// Options tunes Appro (field names as in core.Options: MISOrder,
	// Seed, NoSortByFinishTime, TourBuilder, TourRestarts, Workers,
	// Sparse).
	Options *core.Options `json:"options,omitempty"`
	// TimeoutMS is the per-request planning deadline in milliseconds,
	// clamped to the server's MaxTimeout; 0 means the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SimulateRequest is the /v1/simulate request body. Provide either an
// inline Network (the wrsn-gen JSON shape) or N (+Seed) to generate the
// paper's standard deployment.
type SimulateRequest struct {
	// Network is an inline network; nil means generate one from N and
	// Seed with the paper's parameters.
	Network *wrsn.Network `json:"network,omitempty"`
	// N is the sensor count for the generated network.
	N int `json:"n,omitempty"`
	// Seed seeds the generated network.
	Seed int64 `json:"seed,omitempty"`
	// K is the charger count; 0 means 2.
	K int `json:"k,omitempty"`
	// Planner names the algorithm ("" means Appro).
	Planner string `json:"planner,omitempty"`
	// Options tunes Appro.
	Options *core.Options `json:"options,omitempty"`
	// DurationDays is the monitored period; 0 means 30 days (the full
	// paper year is available but rarely what an API caller wants to
	// wait for).
	DurationDays float64 `json:"duration_days,omitempty"`
	// MaxRounds caps the charging rounds; 0 means no cap.
	MaxRounds int `json:"max_rounds,omitempty"`
	// Verify runs the feasibility verifier on every round.
	Verify bool `json:"verify,omitempty"`
	// TimeoutMS is the per-request deadline in milliseconds, clamped to
	// the server's MaxTimeout; 0 means the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SimulateResponse summarizes a simulation run (sim.Result without the
// per-round records, with the headline metrics converted to the units
// the paper's figures use).
type SimulateResponse struct {
	Planner               string  `json:"planner"`
	Rounds                int     `json:"rounds"`
	AvgLongestHours       float64 `json:"avg_longest_hours"`
	MaxLongestHours       float64 `json:"max_longest_hours"`
	AvgDeadPerSensorHours float64 `json:"avg_dead_per_sensor_hours"`
	DeadSensors           int     `json:"dead_sensors"`
	Charges               int     `json:"charges"`
	EnergyDeliveredJ      float64 `json:"energy_delivered_j"`
	Violations            int     `json:"violations"`
	FirstViolation        string  `json:"first_violation,omitempty"`
	EndDays               float64 `json:"end_days"`
}

// errorResponse is the JSON body of every non-2xx /v1 response.
type errorResponse struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// decodePlanRequest reads the body as either the envelope or a bare
// instance, returning the raw bytes alongside (router mode forwards them
// verbatim to the owning shard). Unknown fields are rejected in both
// shapes, so a typoed envelope cannot silently plan a zero-value
// instance.
func decodePlanRequest(r *http.Request, maxBytes int64) ([]byte, *PlanRequest, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBytes+1))
	if err != nil {
		return nil, nil, fmt.Errorf("read body: %w", err)
	}
	if int64(len(body)) > maxBytes {
		return nil, nil, fmt.Errorf("body exceeds %d bytes", maxBytes)
	}
	var req PlanRequest
	envErr := decodeStrict(body, &req)
	if envErr == nil && req.Instance != nil {
		return body, &req, nil
	}
	// Fall back to a bare instance: its fields (depot, requests, ...) are
	// unknown to the envelope, so exactly one of the two decodes accepts
	// any given body.
	var in core.Instance
	if bareErr := decodeStrict(body, &in); bareErr != nil {
		if envErr != nil {
			return nil, nil, fmt.Errorf("body is neither a plan envelope (%v) nor a bare instance (%v)", envErr, bareErr)
		}
		return nil, nil, errors.New(`envelope has no "instance"`)
	}
	return body, &PlanRequest{Instance: &in}, nil
}

// decodeStrict unmarshals JSON rejecting unknown fields and trailing
// garbage.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON value")
	}
	return nil
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	finish, ok := s.begin(w, "plan")
	if !ok {
		return
	}
	defer finish()

	raw, req, err := decodePlanRequest(r, s.cfg.MaxBodyBytes)
	if err != nil {
		s.writeError(w, "plan", http.StatusBadRequest, err.Error())
		return
	}
	if q := r.URL.Query().Get("planner"); q != "" {
		req.Planner = q
	}
	if err := req.Instance.Validate(); err != nil {
		s.writeError(w, "plan", http.StatusBadRequest, err.Error())
		return
	}
	planner, err := s.cfg.NewPlanner(req.Planner, req.Options)
	if err != nil {
		s.writeError(w, "plan", http.StatusBadRequest, err.Error())
		return
	}

	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	// Router mode: forward the raw body to the shard that owns this
	// plan's canonical cache key, collapsing concurrent identical
	// requests into one upstream fetch. Only when every eligible path is
	// exhausted does the request degrade to the local planning path
	// below, marked X-Plan-Degraded: local.
	if s.router != nil {
		if s.routePlan(ctx, w, r, req, planner, raw) {
			return
		}
		s.router.degraded.Add(1)
		w.Header().Set("X-Plan-Degraded", "local")
	}

	// Cache lookup runs outside the admission pool: a hit is a hash plus
	// a deep copy and should not queue behind a worker slot. Misses plan
	// under admission control and publish the result for the next caller.
	// The key identity (canonical registry name + plan-shaping options)
	// comes from plancache.Identity, so an aliased or lowercased
	// ?planner= spelling hits the same entries as the canonical one.
	cacheName, opts := plancache.Identity(planner)
	cacheState := "off"
	var sched *core.Schedule
	if s.cache != nil {
		cacheState = "miss"
		if hit, ok := s.cache.Get(ctx, cacheName, opts, req.Instance); ok {
			sched, cacheState = hit, "hit"
		}
	}
	start := time.Now()
	if sched == nil {
		admitted := s.admit(ctx, w, "plan", func(ctx context.Context) error {
			out, err := planner.Plan(ctx, req.Instance)
			if err != nil {
				return err
			}
			if s.cache != nil {
				s.cache.Put(ctx, cacheName, opts, req.Instance, out)
			}
			sched = out
			return nil
		})
		if !admitted {
			return
		}
	}

	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("X-Planner", planner.Name())
	w.Header().Set("X-Plan-Cache", cacheState)
	w.Header().Set("X-Plan-Seconds", strconv.FormatFloat(time.Since(start).Seconds(), 'f', 6, 64))
	s.count("plan", http.StatusOK)
	// The body is the canonical schedule encoding and nothing else —
	// byte-identical to `wrsn-plan -json` on the same instance.
	_ = export.WriteSchedule(w, sched)
}

// routePlan tries to answer a plan request through the shard router and
// reports whether a response was written. false means no backend could
// answer (all down, breakers open, or attempts exhausted) and the caller
// should plan locally; a context expiry is final and never falls back —
// a deadline-blown request gains nothing from a local plan it cannot
// wait for.
func (s *Server) routePlan(ctx context.Context, w http.ResponseWriter, r *http.Request, req *PlanRequest, planner core.Planner, raw []byte) bool {
	cacheName, opts := plancache.Identity(planner)
	key := plancache.KeyOf(cacheName, opts, req.Instance)
	res, err, shared := s.router.group.Do(key, func() (*proxyResult, error) {
		return s.router.fetch(ctx, key, r.URL.RawQuery, raw)
	})
	if shared {
		s.router.collapsed.Add(1)
	}
	switch {
	case err == nil && res != nil:
		for _, h := range []string{"Content-Type", "X-Planner", "X-Plan-Cache", "X-Plan-Seconds"} {
			if v := res.header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.Header().Set("X-Plan-Backend", res.backend)
		w.WriteHeader(res.status)
		_, _ = w.Write(res.body)
		s.count("plan", res.status)
		return true
	case errors.Is(err, context.DeadlineExceeded):
		s.writeError(w, "plan", http.StatusGatewayTimeout, "deadline exceeded while routing: "+err.Error())
		return true
	case errors.Is(err, context.Canceled):
		s.count("plan", 499)
		return true
	}
	return false
}

// handlePlanners serves GET /v1/planners: the registry's listing of
// every planner the ?planner= parameter resolves — canonical names,
// aliases, capability flags and the default marker.
func (s *Server) handlePlanners(w http.ResponseWriter, _ *http.Request) {
	finish, ok := s.begin(w, "planners")
	if !ok {
		return
	}
	defer finish()
	s.writeJSON(w, "planners", http.StatusOK, registry.List())
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	finish, ok := s.begin(w, "simulate")
	if !ok {
		return
	}
	defer finish()

	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil || int64(len(body)) > s.cfg.MaxBodyBytes {
		s.writeError(w, "simulate", http.StatusBadRequest, "unreadable or oversized body")
		return
	}
	var req SimulateRequest
	if err := decodeStrict(body, &req); err != nil {
		s.writeError(w, "simulate", http.StatusBadRequest, err.Error())
		return
	}
	nw := req.Network
	if nw == nil {
		if req.N <= 0 {
			s.writeError(w, "simulate", http.StatusBadRequest, `provide "network" or a positive "n"`)
			return
		}
		if nw, err = workload.Generate(workload.NewParams(req.N), req.Seed); err != nil {
			s.writeError(w, "simulate", http.StatusBadRequest, err.Error())
			return
		}
	} else {
		if err := nw.Validate(); err != nil {
			s.writeError(w, "simulate", http.StatusBadRequest, err.Error())
			return
		}
		nw.BuildRouting()
	}
	k := req.K
	if k == 0 {
		k = 2
	}
	planner, err := s.cfg.NewPlanner(req.Planner, req.Options)
	if err != nil {
		s.writeError(w, "simulate", http.StatusBadRequest, err.Error())
		return
	}
	if s.cache != nil {
		planner = plancache.Wrap(planner, s.cache)
	}
	days := req.DurationDays
	if days <= 0 {
		days = 30
	}
	cfg := sim.Config{
		Duration:  days * 86400,
		MaxRounds: req.MaxRounds,
		Verify:    req.Verify,
	}

	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	var res *sim.Result
	admitted := s.admit(ctx, w, "simulate", func(ctx context.Context) error {
		out, err := sim.Run(ctx, nw, k, planner, cfg)
		if err != nil {
			return err
		}
		res = out
		return nil
	})
	if !admitted {
		return
	}
	s.writeJSON(w, "simulate", http.StatusOK, SimulateResponse{
		Planner:               res.Planner,
		Rounds:                len(res.Rounds),
		AvgLongestHours:       res.AvgLongest / 3600,
		MaxLongestHours:       res.MaxLongest / 3600,
		AvgDeadPerSensorHours: res.AvgDeadPerSensor / 3600,
		DeadSensors:           res.DeadSensors,
		Charges:               res.Charges,
		EnergyDeliveredJ:      res.EnergyDelivered,
		Violations:            res.Violations,
		FirstViolation:        res.FirstViolation,
		EndDays:               res.End / 86400,
	})
}

// writeJSON writes v as an indented JSON response with the given status
// and records the outcome.
func (s *Server) writeJSON(w http.ResponseWriter, route string, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	s.count(route, status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes a JSON error body with the given status and records
// the outcome.
func (s *Server) writeError(w http.ResponseWriter, route string, status int, msg string) {
	s.writeJSON(w, route, status, errorResponse{Error: msg, Status: status})
}

// count records one finished request for /metrics.
func (s *Server) count(route string, status int) {
	key := route + "|" + strconv.Itoa(status)
	s.mu.Lock()
	s.outcomes[key]++
	s.mu.Unlock()
}
