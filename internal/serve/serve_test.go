package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/geom"
	"repro/internal/registry"
)

// testInstance builds the same planning regime wrsn-plan synthesizes:
// sensors uniform in a 100x100 field with charge durations in
// [1.2 h, 1.5 h].
func testInstance(n, k int, seed int64) *core.Instance {
	rng := rand.New(rand.NewSource(seed))
	in := &core.Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: k}
	for i := 0; i < n; i++ {
		in.Requests = append(in.Requests, core.Request{
			Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
			Duration: (1.2 + 0.3*rng.Float64()) * 3600,
			Lifetime: (1 + rng.Float64()*6) * 86400,
		})
	}
	return in
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestPlanGoldenByteIdentity is the tentpole acceptance test: the
// /v1/plan response body must be byte-for-byte the canonical schedule
// encoding the offline path (wrsn-plan -json) produces for the same
// instance — cold through the planner and warm through the cache.
func TestPlanGoldenByteIdentity(t *testing.T) {
	in := testInstance(60, 2, 1)

	// Offline reference: the default planner through the shared encoder.
	planner, err := DefaultPlanner("", nil)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := planner.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := export.WriteSchedule(&want, sched); err != nil {
		t.Fatal(err)
	}

	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for round, wantCache := range []string{"miss", "hit"} {
		resp, got := postJSON(t, ts.URL+"/v1/plan", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", round, resp.StatusCode, got)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("round %d: response is not byte-identical to the offline encoding\nserve: %q\noffline: %q",
				round, truncate(got), truncate(want.Bytes()))
		}
		if c := resp.Header.Get("X-Plan-Cache"); c != wantCache {
			t.Errorf("round %d: X-Plan-Cache = %q, want %q", round, c, wantCache)
		}
		if p := resp.Header.Get("X-Planner"); p != "Appro" {
			t.Errorf("round %d: X-Planner = %q", round, p)
		}
	}
}

func truncate(b []byte) string {
	if len(b) > 200 {
		return string(b[:200]) + "..."
	}
	return string(b)
}

// TestPlanEnvelope exercises the envelope form: named planner, Appro
// options, per-request timeout, and the ?planner= override.
func TestPlanEnvelope(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	in := testInstance(40, 2, 2)
	env := PlanRequest{Planner: "K-EDF", Instance: in, TimeoutMS: 30000}
	body, _ := json.Marshal(env)
	resp, out := postJSON(t, ts.URL+"/v1/plan", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if p := resp.Header.Get("X-Planner"); p != "K-EDF" {
		t.Errorf("X-Planner = %q, want K-EDF", p)
	}
	var sched core.Schedule
	if err := json.Unmarshal(out, &sched); err != nil {
		t.Fatalf("response is not a schedule: %v", err)
	}
	if len(sched.Tours) != in.K {
		t.Errorf("got %d tours, want %d", len(sched.Tours), in.K)
	}

	// Appro options shape the plan: restarts request must still verify.
	env = PlanRequest{Instance: in, Options: &core.Options{TourRestarts: 4}}
	body, _ = json.Marshal(env)
	if resp, out = postJSON(t, ts.URL+"/v1/plan", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("options plan: status %d: %s", resp.StatusCode, out)
	}

	// Query override beats the envelope.
	env = PlanRequest{Planner: "Appro", Instance: in}
	body, _ = json.Marshal(env)
	resp, _ = postJSON(t, ts.URL+"/v1/plan?planner=NETWRAP", body)
	if p := resp.Header.Get("X-Planner"); p != "NETWRAP" {
		t.Errorf("X-Planner = %q, want NETWRAP (query override)", p)
	}
}

func TestPlanBadRequests(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
	}{
		{"garbage", `{"nope": 1}`},
		{"empty object", `{}`},
		{"zero K", `{"depot":{"x":0,"y":0},"gamma":2.7,"speed":1,"k":0}`},
		{"unknown planner", `{"planner":"Dijkstra","instance":{"depot":{"x":0,"y":0},"gamma":2.7,"speed":1,"k":1}}`},
		{"trailing garbage", `{"depot":{"x":0,"y":0},"gamma":2.7,"speed":1,"k":1} tail`},
	}
	for _, tc := range cases {
		resp, out := postJSON(t, ts.URL+"/v1/plan", []byte(tc.body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, out)
		}
		var e errorResponse
		if err := json.Unmarshal(out, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q is not an errorResponse", tc.name, out)
		}
		if tc.name == "unknown planner" {
			// The 400 body must name every valid planner (satellite of the
			// registry contract): the client can self-serve the fix.
			for _, name := range registry.Names() {
				if !strings.Contains(e.Error, name) {
					t.Errorf("unknown-planner 400 body %q does not list %q", e.Error, name)
				}
			}
		}
	}
}

// TestPlannerAliasResolution plans through aliased and lowercased
// ?planner= spellings and checks the canonical planner answers (the
// X-Planner header) — the registry's case-insensitive resolution as seen
// over HTTP.
func TestPlannerAliasResolution(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, err := json.Marshal(testInstance(20, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	for spelling, want := range map[string]string{
		"bilevel": "BiLevel", "BLM": "BiLevel", "kedf": "K-EDF", "k-minmax": "K-minMax", "APPRO": "Appro",
	} {
		resp, out := postJSON(t, ts.URL+"/v1/plan?planner="+spelling, body)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("?planner=%s: status %d (%s)", spelling, resp.StatusCode, out)
			continue
		}
		if got := resp.Header.Get("X-Planner"); got != want {
			t.Errorf("?planner=%s: X-Planner %q, want %q", spelling, got, want)
		}
	}
}

// TestPlannersEndpoint checks GET /v1/planners serves the registry
// listing: every registered planner, registration order, default marked.
func TestPlannersEndpoint(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/planners")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, out)
	}
	var infos []registry.Info
	if err := json.Unmarshal(out, &infos); err != nil {
		t.Fatalf("body %q: %v", out, err)
	}
	want := registry.Names()
	if len(infos) != len(want) {
		t.Fatalf("listing has %d planners, registry %d", len(infos), len(want))
	}
	for i, info := range infos {
		if info.Name != want[i] {
			t.Errorf("listing[%d] = %q, want %q", i, info.Name, want[i])
		}
		if info.Default != (i == 0) {
			t.Errorf("listing[%d].Default = %v", i, info.Default)
		}
	}
}

// blockingPlanner signals when a plan starts and holds it until released,
// then delegates to the real default planner. It lets tests pin a request
// in flight deterministically.
type blockingPlanner struct {
	started chan struct{}
	release chan struct{}
}

func (p blockingPlanner) Name() string { return "slow" }

func (p blockingPlanner) Plan(ctx context.Context, in *core.Instance) (*core.Schedule, error) {
	select {
	case p.started <- struct{}{}:
	default:
	}
	select {
	case <-p.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return core.ApproPlanner{}.Plan(ctx, in)
}

// TestPlanSaturation429 drives the admission pool past workers+queue and
// checks the overflow request is shed with 429 and a Retry-After hint.
func TestPlanSaturation429(t *testing.T) {
	bp := blockingPlanner{started: make(chan struct{}, 4), release: make(chan struct{})}
	s := New(Config{
		Workers:    1,
		QueueDepth: -1, // no queue: overflow rejects as soon as the worker is busy
		RetryAfter: 2 * time.Second,
		NewPlanner: func(string, *core.Options) (core.Planner, error) { return bp, nil },
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(testInstance(20, 2, 3))
	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(body))
		if err != nil {
			firstDone <- -1
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		firstDone <- resp.StatusCode
	}()
	select {
	case <-bp.started:
	case <-time.After(5 * time.Second):
		t.Fatal("first plan never started")
	}

	// Use a distinct instance so the overflow request cannot be served
	// from the cache fast path.
	body2, _ := json.Marshal(testInstance(21, 2, 4))
	resp, out := postJSON(t, ts.URL+"/v1/plan", body2)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429 (%s)", resp.StatusCode, out)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}

	close(bp.release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", code)
	}
}

// TestPlanDeadline504 maps an expired per-request deadline to 504. The
// planner blocks until the deadline fires (never released), so the test
// is deterministic at any machine speed.
func TestPlanDeadline504(t *testing.T) {
	bp := blockingPlanner{started: make(chan struct{}, 1), release: make(chan struct{})}
	s := New(Config{
		CacheCapacity: -1,
		NewPlanner:    func(string, *core.Options) (core.Planner, error) { return bp, nil },
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	env := PlanRequest{Instance: testInstance(400, 2, 5), TimeoutMS: 1}
	body, _ := json.Marshal(env)
	resp, out := postJSON(t, ts.URL+"/v1/plan", body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (%s)", resp.StatusCode, out)
	}
}

// TestGracefulDrainSIGTERM is the drain acceptance test: with a request
// pinned in flight, SIGTERM must flip /readyz (and its /healthz alias)
// and new /v1 requests to 503 — while /livez stays 200, since the
// process is still alive — the in-flight request runs to a normal 200,
// and ListenAndServe must return nil: zero dropped in-flight requests.
func TestGracefulDrainSIGTERM(t *testing.T) {
	bp := blockingPlanner{started: make(chan struct{}, 1), release: make(chan struct{})}
	s := New(Config{
		Addr:         "127.0.0.1:0",
		Workers:      2,
		DrainTimeout: 20 * time.Second,
		NewPlanner:   func(string, *core.Options) (core.Planner, error) { return bp, nil },
	})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.ListenAndServe(ctx) }()
	waitFor(t, func() bool { return s.Addr() != "" })
	base := "http://" + s.Addr()

	// Pin one request in flight.
	body, _ := json.Marshal(testInstance(30, 2, 6))
	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/plan", "application/json", bytes.NewReader(body))
		if err != nil {
			inflight <- -1
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		inflight <- resp.StatusCode
	}()
	select {
	case <-bp.started:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight plan never started")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitFor(t, s.Draining)

	// New work is refused while the in-flight request still runs:
	// readiness (and its legacy /healthz alias) reports 503, but the
	// process is still live for the orchestrator.
	for route, want := range map[string]int{
		"/readyz":  http.StatusServiceUnavailable,
		"/healthz": http.StatusServiceUnavailable,
		"/livez":   http.StatusOK,
	} {
		resp, err := http.Get(base + route)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("draining %s = %d, want %d", route, resp.StatusCode, want)
		}
	}
	resp, out := postJSON(t, base+"/v1/plan", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /v1/plan = %d, want 503 (%s)", resp.StatusCode, out)
	}

	// Release the pinned request: it must finish with a clean 200.
	close(bp.release)
	select {
	case code := <-inflight:
		if code != http.StatusOK {
			t.Fatalf("in-flight request finished with %d, want 200", code)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("in-flight request never finished")
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("ListenAndServe returned %v after drain, want nil", err)
		}
	case <-time.After(25 * time.Second):
		t.Fatal("server never finished draining")
	}
}

func TestSimulateEndpoint(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := SimulateRequest{N: 40, Seed: 1, K: 2, DurationDays: 20, MaxRounds: 3, Verify: true}
	body, _ := json.Marshal(req)
	resp, out := postJSON(t, ts.URL+"/v1/simulate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(out, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Planner != "Appro" || sr.Rounds < 1 || sr.Charges < 1 {
		t.Errorf("implausible summary: %+v", sr)
	}
	if sr.Violations != 0 {
		t.Errorf("%d violations: %s", sr.Violations, sr.FirstViolation)
	}
}

// TestMetricsEndpoint checks that a served plan surfaces in every metric
// family: HTTP outcomes, pool, cache, and the engine's obs stage spans.
func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(testInstance(30, 2, 7))
	if resp, out := postJSON(t, ts.URL+"/v1/plan", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: %d %s", resp.StatusCode, out)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	for _, want := range []string{
		`wrsn_serve_http_requests_total{route="plan",code="200"} 1`,
		`wrsn_serve_pool_completed_total 1`,
		`wrsn_serve_plancache_misses_total 1`,
		`wrsn_serve_plancache_size 1`,
		`wrsn_serve_stage_seconds_total{stage="charging-graph"}`,
		`wrsn_serve_stage_spans_total{stage="insertion"} 1`,
		`wrsn_serve_engine_counter_total{name="cache.misses"}`,
		"wrsn_serve_uptime_seconds",
		"wrsn_serve_draining 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestPprofMounted(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline = %d", resp.StatusCode)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
