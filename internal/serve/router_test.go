package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/plancache"
	"repro/internal/resilience"
)

// startBackend runs a real backend server on a loopback port and tears
// it down with the test.
func startBackend(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	ctx, cancel := context.WithCancel(context.Background())
	s := New(cfg)
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(ctx) }()
	waitFor(t, func() bool { return s.Addr() != "" })
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return s
}

// startRouter builds a router server over the given backend addresses
// and waits until its health loop has found them (or not, when
// expectReady is false).
func startRouter(t *testing.T, cfg Config, expectReady bool) (*Server, *httptest.Server) {
	t.Helper()
	cfg.HealthInterval = 20 * time.Millisecond
	s := New(cfg)
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if expectReady {
		waitFor(t, func() bool { return s.router.healthyCount() == len(cfg.Shards) })
	}
	return s, ts
}

// wantBytes is the single-process reference encoding for an instance:
// exactly what wrsn-plan -json writes.
func wantBytes(t *testing.T, in *core.Instance) []byte {
	t.Helper()
	planner, err := DefaultPlanner("", nil)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := planner.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := export.WriteSchedule(&buf, sched); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRouterFailoverBlackholedBackend is the satellite acceptance test:
// two backends, one blackholed at the transport layer, yet every request
// succeeds via retry/failover, with every schedule byte-identical to
// single-process serving.
func TestRouterFailoverBlackholedBackend(t *testing.T) {
	b1 := startBackend(t, Config{})
	b2 := startBackend(t, Config{})
	chaos := resilience.NewChaosTripper(nil, resilience.ChaosPlan{Seed: 1, LatencyBase: time.Millisecond})
	s, ts := startRouter(t, Config{
		Shards:    []string{b1.Addr(), b2.Addr()},
		Transport: chaos,
	}, true)

	chaos.Blackhole(b1.Addr(), true)

	for i := 0; i < 8; i++ {
		in := testInstance(30+i, 2, int64(100+i))
		want := wantBytes(t, in)
		body, _ := json.Marshal(in)
		resp, got := postJSON(t, ts.URL+"/v1/plan", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("request %d: routed schedule differs from single-process encoding", i)
		}
		if d := resp.Header.Get("X-Plan-Degraded"); d != "" {
			t.Fatalf("request %d: degraded to local (%q) despite a live backend", i, d)
		}
		if be := resp.Header.Get("X-Plan-Backend"); be != b2.Addr() {
			t.Fatalf("request %d: answered by %q, want blackhole survivor %q", i, be, b2.Addr())
		}
	}
	if s.router.retries.Load() == 0 {
		t.Error("no retries recorded despite a blackholed backend")
	}
	if s.router.failovers.Load() == 0 {
		t.Error("no failovers recorded despite a blackholed backend")
	}
	if n := chaos.Counts()["blackhole"]; n == 0 {
		t.Error("chaos transport recorded no blackhole hits")
	}
}

// TestRouterDegradedLocalFallback points the router at two dead
// backends: every request must still answer 200 with the byte-identical
// schedule, marked X-Plan-Degraded: local.
func TestRouterDegradedLocalFallback(t *testing.T) {
	s, ts := startRouter(t, Config{
		Shards:            []string{"127.0.0.1:1", "127.0.0.1:2"}, // nothing listens there
		RouterMaxAttempts: 2,
	}, false)

	in := testInstance(30, 2, 42)
	want := wantBytes(t, in)
	body, _ := json.Marshal(in)
	resp, got := postJSON(t, ts.URL+"/v1/plan", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, got)
	}
	if resp.Header.Get("X-Plan-Degraded") != "local" {
		t.Fatalf("X-Plan-Degraded = %q, want \"local\"", resp.Header.Get("X-Plan-Degraded"))
	}
	if !bytes.Equal(got, want) {
		t.Fatal("degraded-local schedule differs from single-process encoding")
	}
	if s.router.degraded.Load() != 1 {
		t.Fatalf("degraded counter = %d, want 1", s.router.degraded.Load())
	}
}

// TestRouterHonorsRetryAfter checks the satellite contract: a backend's
// 429 Retry-After hint replaces the router's own backoff delay for the
// next attempt, capped by RetryAfterCap.
func TestRouterHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/readyz":
			io.WriteString(w, "ok")
		case "/v1/plan":
			switch calls.Add(1) {
			case 1:
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusTooManyRequests)
			case 2:
				w.Header().Set("Retry-After", "60") // confused backend: must be capped
				w.WriteHeader(http.StatusTooManyRequests)
			default:
				io.WriteString(w, "schedule-bytes")
			}
		default:
			http.NotFound(w, r)
		}
	}))
	defer backend.Close()

	s, ts := startRouter(t, Config{
		Shards:        []string{backend.Listener.Addr().String()},
		RetryAfterCap: 2 * time.Second,
		RouterBackoff: resilience.Backoff{Base: 50 * time.Millisecond, Max: 50 * time.Millisecond},
	}, true)

	var mu sync.Mutex
	var slept []time.Duration
	s.router.sleep = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
		return nil
	}

	body, _ := json.Marshal(testInstance(20, 2, 9))
	resp, out := postJSON(t, ts.URL+"/v1/plan", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if string(out) != "schedule-bytes" {
		t.Fatalf("body %q not proxied from the backend", out)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(slept) != 2 {
		t.Fatalf("recorded %d retry sleeps (%v), want 2", len(slept), slept)
	}
	if slept[0] != time.Second {
		t.Errorf("first retry slept %v, want the backend's 1s Retry-After hint", slept[0])
	}
	if slept[1] != 2*time.Second {
		t.Errorf("second retry slept %v, want the 2s RetryAfterCap, not the raw 60s hint", slept[1])
	}
}

// TestRetryAfterHintParsing unit-tests the header parsing and capping.
func TestRetryAfterHintParsing(t *testing.T) {
	r := &router{retryAfterCap: 2 * time.Second}
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 0},
		{"1", time.Second},
		{" 2 ", 2 * time.Second},
		{"60", 2 * time.Second}, // capped
		{"-1", 0},
		{"soon", 0},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0}, // HTTP-date form: ignored, fall back to backoff
	}
	for _, tc := range cases {
		resp := &http.Response{Header: http.Header{}}
		if tc.header != "" {
			resp.Header.Set("Retry-After", tc.header)
		}
		if got := r.retryAfterHint(resp); got != tc.want {
			t.Errorf("Retry-After %q: hint = %v, want %v", tc.header, got, tc.want)
		}
	}
}

// TestRouterSingleflightCollapse pins the backend's planner and fires
// concurrent identical requests at the router: they must collapse into
// one upstream plan, all answering identical bytes.
func TestRouterSingleflightCollapse(t *testing.T) {
	bp := blockingPlanner{started: make(chan struct{}, 1), release: make(chan struct{})}
	b1 := startBackend(t, Config{
		NewPlanner: func(string, *core.Options) (core.Planner, error) { return bp, nil },
	})
	s, ts := startRouter(t, Config{Shards: []string{b1.Addr()}}, true)

	in := testInstance(25, 2, 77)
	body, _ := json.Marshal(in)

	const dup = 6
	var wg sync.WaitGroup
	codes := make([]int, dup)
	bodies := make([][]byte, dup)
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, out := postJSON(t, ts.URL+"/v1/plan", body)
			codes[i], bodies[i] = resp.StatusCode, out
		}(i)
	}
	<-bp.started
	// Wait until the duplicates have joined the flight, then release.
	waitFor(t, func() bool { return s.inflight.Load() >= dup })
	time.Sleep(20 * time.Millisecond)
	close(bp.release)
	wg.Wait()

	for i := 0; i < dup; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("caller %d: status %d", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("caller %d: body differs from caller 0", i)
		}
	}
	if s.router.collapsed.Load() == 0 {
		t.Error("no singleflight collapses recorded for identical concurrent requests")
	}
	// The backend must have planned exactly once.
	resp, err := http.Get("http://" + b1.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(metrics), `wrsn_serve_http_requests_total{route="plan",code="200"} 1`) {
		t.Error("backend served more than one plan for a collapsed herd")
	}
}

// TestRouterHedgedRequest makes the key's owning backend slow and checks
// the router hedges to the other backend after the p99-derived delay and
// uses its answer.
func TestRouterHedgedRequest(t *testing.T) {
	mkSlow := func(slow *atomic.Bool) func(string, *core.Options) (core.Planner, error) {
		return func(name string, opts *core.Options) (core.Planner, error) {
			p, err := DefaultPlanner(name, opts)
			if err != nil {
				return nil, err
			}
			return slowPlanner{p: p, slow: slow}, nil
		}
	}
	var slow1, slow2 atomic.Bool
	b1 := startBackend(t, Config{NewPlanner: mkSlow(&slow1)})
	b2 := startBackend(t, Config{NewPlanner: mkSlow(&slow2)})
	s, ts := startRouter(t, Config{
		Shards:        []string{b1.Addr(), b2.Addr()},
		HedgeQuantile: 0.99,
	}, true)

	// Warm the latency histogram past hedgeMinSamples with fast probes.
	for i := 0; i < 40; i++ {
		s.router.hist.Observe(2 * time.Millisecond)
	}

	// Find which backend owns this instance's key, and make it slow.
	in := testInstance(30, 2, 5)
	planner, _ := DefaultPlanner("", nil)
	name, opts := plancache.Identity(planner)
	key := plancache.KeyOf(name, opts, in)
	owner := s.router.rank(key)[0].host
	if owner == b1.Addr() {
		slow1.Store(true)
	} else {
		slow2.Store(true)
	}

	body, _ := json.Marshal(in)
	resp, out := postJSON(t, ts.URL+"/v1/plan", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if !bytes.Equal(out, wantBytes(t, in)) {
		t.Fatal("hedged response differs from single-process encoding")
	}
	if got := resp.Header.Get("X-Plan-Backend"); got == owner {
		t.Errorf("answered by the slow owner %q; hedge should have won", got)
	}
	if s.router.hedges.Load() == 0 {
		t.Error("no hedge launched despite a slow primary")
	}
	if s.router.hedgeWins.Load() == 0 {
		t.Error("hedge launched but its win was not recorded")
	}
}

// slowPlanner delays planning while its flag is set.
type slowPlanner struct {
	p    core.Planner
	slow *atomic.Bool
}

func (s slowPlanner) Name() string { return s.p.Name() }

func (s slowPlanner) Plan(ctx context.Context, in *core.Instance) (*core.Schedule, error) {
	if s.slow.Load() {
		select {
		case <-time.After(2 * time.Second):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s.p.Plan(ctx, in)
}

// TestLivezReadyzSplit covers the health-endpoint satellite: /livez is
// process liveness (200 even while draining), /readyz is
// traffic-worthiness (503 while draining, 503 in router mode with zero
// healthy backends), and /healthz aliases /readyz.
func TestLivezReadyzSplit(t *testing.T) {
	get := func(t *testing.T, url string) int {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	t.Run("serving", func(t *testing.T) {
		s := New(Config{})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		for _, route := range []string{"/livez", "/readyz", "/healthz"} {
			if code := get(t, ts.URL+route); code != http.StatusOK {
				t.Errorf("%s = %d, want 200", route, code)
			}
		}
	})

	t.Run("draining", func(t *testing.T) {
		s := New(Config{})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		s.draining.Store(true)
		if code := get(t, ts.URL+"/livez"); code != http.StatusOK {
			t.Errorf("/livez = %d while draining, want 200 (liveness is not readiness)", code)
		}
		for _, route := range []string{"/readyz", "/healthz"} {
			if code := get(t, ts.URL+route); code != http.StatusServiceUnavailable {
				t.Errorf("%s = %d while draining, want 503", route, code)
			}
		}
	})

	t.Run("router with zero healthy backends", func(t *testing.T) {
		_, ts := startRouter(t, Config{Shards: []string{"127.0.0.1:1"}}, false)
		if code := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
			t.Errorf("/readyz = %d with all backends down, want 503", code)
		}
		if code := get(t, ts.URL+"/livez"); code != http.StatusOK {
			t.Errorf("/livez = %d with all backends down, want 200", code)
		}
	})

	t.Run("router becomes ready when a backend appears", func(t *testing.T) {
		b1 := startBackend(t, Config{})
		s, ts := startRouter(t, Config{Shards: []string{b1.Addr()}}, true)
		if code := get(t, ts.URL+"/readyz"); code != http.StatusOK {
			t.Errorf("/readyz = %d with a healthy backend, want 200", code)
		}
		_ = s
	})
}

// TestRouterMetricsExposed checks the router metric families surface.
func TestRouterMetricsExposed(t *testing.T) {
	b1 := startBackend(t, Config{})
	_, ts := startRouter(t, Config{Shards: []string{b1.Addr()}}, true)
	body, _ := json.Marshal(testInstance(20, 2, 11))
	if resp, out := postJSON(t, ts.URL+"/v1/plan", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: %d %s", resp.StatusCode, out)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	for _, want := range []string{
		"wrsn_serve_router_routed_total 1",
		"wrsn_serve_router_degraded_local_total 0",
		"wrsn_serve_router_retries_total",
		"wrsn_serve_router_hedges_total",
		"wrsn_serve_router_collapsed_total",
		fmt.Sprintf("wrsn_serve_router_backend_healthy{backend=%q} 1", b1.Addr()),
		fmt.Sprintf("wrsn_serve_router_breaker_state{backend=%q} 0", b1.Addr()),
		"wrsn_serve_router_latency_p99_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
