// Package serve is the online face of the planning engine: an HTTP/JSON
// service that plans charging tours (and runs evaluation simulations) per
// request, with the admission control, deadlines and observability that
// serving traffic demands and a batch CLI does not.
//
// Endpoints:
//
//	POST /v1/plan      plan one instance; body is an instance or a
//	                   {planner, instance, options, timeout_ms} envelope.
//	                   The response body is the schedule encoded exactly
//	                   as `wrsn-plan -json` writes it — byte-identical
//	                   for equal instances — with request metadata in
//	                   X-Planner / X-Plan-Cache / X-Plan-Seconds headers.
//	POST /v1/simulate  run the paper's evaluation protocol on a network
//	                   (either an inline network JSON or {n, seed}
//	                   generator parameters) and return summary metrics.
//	GET  /v1/planners  list the registered planners: canonical names,
//	                   aliases, capability flags, and which is the
//	                   default — straight from the planner registry, so
//	                   the listing can never drift from what ?planner=
//	                   accepts.
//	GET  /livez        200 "ok" from startup to process exit — pure
//	                   process liveness, draining included.
//	GET  /readyz       200 "ok" while traffic-worthy; 503 "draining"
//	                   during shutdown, and 503 "no healthy backends"
//	                   in router mode while every shard is down — flip
//	                   load balancers away before the listener closes.
//	GET  /healthz      compatibility alias for /readyz.
//	GET  /metrics      Prometheus-style text: obs stage timings and
//	                   counters, plan-cache stats, pool admission stats,
//	                   and per-route HTTP outcome counts.
//	GET  /debug/pprof  the standard net/http/pprof handlers.
//
// Concurrency and admission: planning runs through a bounded par.Pool
// with Workers slots and an explicit QueueDepth. A request that finds
// every worker busy and the queue full is rejected immediately with
// 429 Too Many Requests and a Retry-After hint — overload sheds instead
// of stacking latency. Each request plans under a deadline (its
// timeout_ms, clamped to MaxTimeout, else DefaultTimeout) mapped onto the
// engine's context plumbing, so a deadline that expires mid-plan aborts
// the plan, frees the worker, and returns 504.
//
// All requests share one plan cache keyed on planner name, plan-shaping
// options and canonical instance encoding, so a replan of an identical
// network is a hash plus a deep copy. Responses are byte-identical with
// and without the cache.
//
// Router mode (Config.Shards): instead of planning locally, /v1/plan
// consistent-hashes the canonical plancache key across backend workers
// so a fleet shares cache locality, with health-checked routing, circuit
// breakers, deterministic-jitter retries honoring backend Retry-After
// hints, optional quantile-hedged second requests, and singleflight
// collapsing of concurrent identical requests. When every owner of a key
// is unreachable the router plans locally and marks the response
// X-Plan-Degraded: local — schedules stay byte-identical either way.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/plancache"
	"repro/internal/registry"
	"repro/internal/resilience"
)

// Config tunes a Server. The zero value serves on :8080 with GOMAXPROCS
// planning workers, a queue of DefaultQueueDepth, a DefaultCapacity plan
// cache and a 30 s default / 5 min maximum per-request deadline.
type Config struct {
	// Addr is the listen address for ListenAndServe (":8080" default;
	// use "127.0.0.1:0" to let the kernel pick a test port).
	Addr string
	// Workers bounds concurrently planning requests; <= 0 means
	// GOMAXPROCS.
	Workers int
	// QueueDepth bounds requests waiting for a planning worker; beyond
	// it requests are rejected with 429. 0 means DefaultQueueDepth;
	// negative means no queue (reject as soon as all workers are busy).
	QueueDepth int
	// CacheCapacity sizes the shared plan cache: 0 means the plancache
	// default, negative disables caching.
	CacheCapacity int
	// DefaultTimeout is the per-request planning deadline when the
	// request names none; 0 means 30 s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines; 0 means 5 min.
	MaxTimeout time.Duration
	// DrainTimeout bounds how long Drain waits for in-flight requests;
	// 0 means 30 s.
	DrainTimeout time.Duration
	// MaxBodyBytes caps request bodies; 0 means 32 MiB.
	MaxBodyBytes int64
	// RetryAfter is the Retry-After hint attached to 429 responses;
	// 0 means 1 s.
	RetryAfter time.Duration
	// NewPlanner resolves a planner name and optional plan-shaping
	// options. nil means DefaultPlanner (the planner registry).
	NewPlanner func(name string, opts *core.Options) (core.Planner, error)
	// Tracer, when non-nil, replaces the server's own tracer; stage
	// timings and counters from every request aggregate into it and
	// surface at /metrics.
	Tracer *obs.Tracer

	// Shards, when non-empty, turns the server into a shard router:
	// /v1/plan requests are consistent-hashed on their plancache key
	// across these backend workers (host:port or full URLs), with
	// health-aware routing, per-backend circuit breakers, retry with
	// deterministic backed-off jitter, optional hedging, singleflight
	// collapsing, and a degraded-local planning fallback when every
	// owner of a key is down. Other routes keep serving locally.
	Shards []string
	// HealthInterval is the backend /readyz probing cadence in router
	// mode; 0 means 500 ms.
	HealthInterval time.Duration
	// RouterMaxAttempts bounds proxy attempts (first try + retries +
	// failovers) per plan request; 0 means 2*len(Shards)+2.
	RouterMaxAttempts int
	// RouterAttemptTimeout bounds one proxied attempt, so a blackholed
	// backend costs one bounded slice of the request deadline, not all
	// of it; 0 means 10 s.
	RouterAttemptTimeout time.Duration
	// RouterBackoff shapes the retry schedule (zero value: 50 ms base,
	// 2 s cap, seed 0). A backend's 429 Retry-After hint overrides the
	// computed delay for the next attempt.
	RouterBackoff resilience.Backoff
	// RetryAfterCap bounds how long a backend's Retry-After hint can
	// defer a retry; 0 means 2 s.
	RetryAfterCap time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// backend's circuit breaker; 0 means 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses before
	// half-open probing; 0 means 2 s.
	BreakerCooldown time.Duration
	// HedgeQuantile, when > 0 (e.g. 0.99), hedges a second request to
	// the next-ranked backend once the first attempt has outlived that
	// latency quantile. 0 disables hedging (the chaos drill's
	// deterministic mode requires it off).
	HedgeQuantile float64
	// Transport overrides the router's backend transport — the chaos
	// drill injects resilience.NewChaosTripper here. nil means
	// http.DefaultTransport. Health probes always use a plain
	// transport so injected faults cannot flap health verdicts.
	Transport http.RoundTripper
}

// DefaultQueueDepth is the admission queue bound used when
// Config.QueueDepth is 0.
const DefaultQueueDepth = 64

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	switch {
	case c.QueueDepth == 0:
		c.QueueDepth = DefaultQueueDepth
	case c.QueueDepth < 0:
		c.QueueDepth = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.NewPlanner == nil {
		c.NewPlanner = DefaultPlanner
	}
	if c.Tracer == nil {
		c.Tracer = obs.New()
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.RouterMaxAttempts <= 0 {
		c.RouterMaxAttempts = 2*len(c.Shards) + 2
	}
	if c.RouterAttemptTimeout <= 0 {
		c.RouterAttemptTimeout = 10 * time.Second
	}
	if c.RetryAfterCap <= 0 {
		c.RetryAfterCap = 2 * time.Second
	}
	return c
}

// DefaultPlanner resolves planner names through the planner registry
// (internal/registry): the same names, aliases and case-insensitive
// matching wrsn-plan accepts. The empty name selects the registry's
// default planner (Appro). Options apply to planners that fold them into
// plans and are ignored by the one-to-one baselines, which have no
// tunables. Unknown names return an error listing every valid name —
// the body of the resulting 400.
func DefaultPlanner(name string, opts *core.Options) (core.Planner, error) {
	return registry.New(name, opts)
}

// Server is a planning service instance. Create one with New; it is
// immutable configuration plus shared mutable serving state (pool, cache,
// tracer, counters), all safe for concurrent use.
type Server struct {
	cfg    Config
	pool   *par.Pool
	cache  *plancache.Cache
	tracer *obs.Tracer
	router *router // nil unless cfg.Shards is set

	draining atomic.Bool
	inflight atomic.Int64 // /v1/* requests past admission checks
	started  time.Time

	mu       sync.Mutex
	outcomes map[string]int64 // "route|status" -> count

	addr atomic.Value // string; set once listening

	mux *http.ServeMux
}

// New builds a Server from cfg (zero value fine).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		pool:     par.NewPool(cfg.Workers, cfg.QueueDepth),
		tracer:   cfg.Tracer,
		started:  time.Now(),
		outcomes: make(map[string]int64),
	}
	if cfg.CacheCapacity >= 0 {
		s.cache = plancache.New(cfg.CacheCapacity)
	}
	if len(cfg.Shards) > 0 {
		s.router = newRouter(cfg)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/plan", s.handlePlan)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("GET /v1/planners", s.handlePlanners)
	s.mux.HandleFunc("GET /livez", s.handleLivez)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /healthz", s.handleReadyz) // compatibility alias
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the service's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Addr returns the bound listen address once ListenAndServe is
// listening, else "".
func (s *Server) Addr() string {
	a, _ := s.addr.Load().(string)
	return a
}

// Draining reports whether the server has begun a graceful drain.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close releases background resources (the router's health loop).
// Idempotent and safe on a non-router server; ListenAndServe calls it
// after draining, so only embedders using Handler directly need it.
func (s *Server) Close() {
	if s.router != nil {
		s.router.close()
	}
}

// ListenAndServe binds cfg.Addr and serves until ctx is cancelled, then
// drains gracefully: the health check and all /v1 routes flip to 503
// immediately, in-flight requests run to completion (bounded by
// DrainTimeout), and only then does the listener close. It returns nil
// after a clean drain.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.addr.Store(ln.Addr().String())
	hs := &http.Server{Handler: s.mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	return s.drain(hs)
}

// drain performs the graceful shutdown sequence against hs.
func (s *Server) drain(hs *http.Server) error {
	s.draining.Store(true)
	defer s.Close()
	// Keep the listener open while in-flight work completes so late
	// requests receive an explicit 503 (not a connection error), then
	// close it. Bounded by DrainTimeout.
	deadline := time.Now().Add(s.cfg.DrainTimeout)
	for s.inflight.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	shCtx, cancel := context.WithDeadline(context.Background(), deadline.Add(time.Second))
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	if n := s.inflight.Load(); n > 0 {
		return fmt.Errorf("serve: drain: %d requests still in flight after %v", n, s.cfg.DrainTimeout)
	}
	return nil
}

// requestContext maps the request's deadline wish onto the context
// plumbing: timeoutMS clamped to MaxTimeout, else DefaultTimeout, layered
// over the HTTP request context (client disconnects cancel too) with the
// server's tracer attached.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	ctx := obs.WithTracer(r.Context(), s.tracer)
	return context.WithTimeout(ctx, d)
}

// admit runs fn through the admission pool, translating pool and context
// failures to HTTP status codes. It returns false if the response has
// already been written (rejection path).
func (s *Server) admit(ctx context.Context, w http.ResponseWriter, route string, fn func(context.Context) error) bool {
	err := s.pool.Run(ctx, fn)
	switch {
	case err == nil:
		return true
	case errors.Is(err, par.ErrSaturated):
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		s.writeError(w, route, http.StatusTooManyRequests, "server saturated: all planning workers busy and queue full")
	case errors.Is(err, context.DeadlineExceeded):
		s.writeError(w, route, http.StatusGatewayTimeout, "deadline exceeded: "+err.Error())
	case errors.Is(err, context.Canceled):
		// Client went away; the status is for our own books.
		s.count(route, 499)
	default:
		s.writeError(w, route, http.StatusInternalServerError, err.Error())
	}
	return false
}

// begin performs the shared /v1 route preamble: drain check and in-flight
// accounting. It reports whether the request may proceed; the caller must
// defer the returned func when it does.
func (s *Server) begin(w http.ResponseWriter, route string) (func(), bool) {
	if s.draining.Load() {
		w.Header().Set("Connection", "close")
		s.writeError(w, route, http.StatusServiceUnavailable, "draining")
		return nil, false
	}
	s.inflight.Add(1)
	return func() { s.inflight.Add(-1) }, true
}

// handleLivez is pure process liveness: 200 from the first request the
// mux sees until the process exits, draining included — restarting a
// deliberately draining process would defeat the drain.
func (s *Server) handleLivez(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is traffic-worthiness, the signal load balancers and the
// shard router's health loop act on: 503 while draining, and — in
// router mode — 503 while zero backends are healthy, because routed
// requests would all be degrading to local planning. /healthz is an
// alias of this route for pre-split compatibility.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if s.router != nil && s.router.healthyCount() == 0 {
		http.Error(w, "no healthy backends", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
