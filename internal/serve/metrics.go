package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// handleMetrics renders the server's state as Prometheus text exposition:
// the obs tracer's stage timings and counters (the same data wrsn-plan
// -trace-json reports, aggregated across every request this process has
// served), the shared plan cache, the admission pool, and per-route HTTP
// outcome counts. Series are emitted in sorted order so consecutive
// scrapes diff cleanly.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder

	writeMetric := func(help, typ, name string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
	}

	writeMetric("Seconds since the server started.", "counter",
		"wrsn_serve_uptime_seconds", time.Since(s.started).Seconds())
	drain := 0.0
	if s.draining.Load() {
		drain = 1
	}
	writeMetric("1 while the server is draining, else 0.", "gauge", "wrsn_serve_draining", drain)
	writeMetric("Requests currently past admission checks.", "gauge",
		"wrsn_serve_inflight_requests", float64(s.inflight.Load()))

	// Planning-stage spans and engine counters from the shared tracer.
	rep := s.tracer.Report()
	stages := make([]string, 0, len(rep.Stages))
	byName := map[string]int{}
	for i, st := range rep.Stages {
		byName[st.Name] = i
		stages = append(stages, st.Name)
	}
	sort.Strings(stages)
	fmt.Fprintf(&b, "# HELP wrsn_serve_stage_seconds_total Total seconds recorded per planning stage.\n# TYPE wrsn_serve_stage_seconds_total counter\n")
	for _, name := range stages {
		fmt.Fprintf(&b, "wrsn_serve_stage_seconds_total{stage=%q} %g\n", name, rep.Stages[byName[name]].Seconds)
	}
	fmt.Fprintf(&b, "# HELP wrsn_serve_stage_spans_total Spans recorded per planning stage.\n# TYPE wrsn_serve_stage_spans_total counter\n")
	for _, name := range stages {
		fmt.Fprintf(&b, "wrsn_serve_stage_spans_total{stage=%q} %d\n", name, rep.Stages[byName[name]].Count)
	}
	counters := make([]string, 0, len(rep.Counters))
	for name := range rep.Counters {
		counters = append(counters, name)
	}
	sort.Strings(counters)
	fmt.Fprintf(&b, "# HELP wrsn_serve_engine_counter_total Engine counters (obs tracer).\n# TYPE wrsn_serve_engine_counter_total counter\n")
	for _, name := range counters {
		fmt.Fprintf(&b, "wrsn_serve_engine_counter_total{name=%q} %d\n", name, rep.Counters[name])
	}

	// Plan cache.
	if s.cache != nil {
		cs := s.cache.Stats()
		writeMetric("Plan cache hits.", "counter", "wrsn_serve_plancache_hits_total", float64(cs.Hits))
		writeMetric("Plan cache misses.", "counter", "wrsn_serve_plancache_misses_total", float64(cs.Misses))
		writeMetric("Plan cache insertions.", "counter", "wrsn_serve_plancache_puts_total", float64(cs.Puts))
		writeMetric("Plan cache LRU evictions.", "counter", "wrsn_serve_plancache_evictions_total", float64(cs.Evictions))
		writeMetric("Plan cache entries.", "gauge", "wrsn_serve_plancache_size", float64(cs.Size))
		writeMetric("Plan cache capacity.", "gauge", "wrsn_serve_plancache_capacity", float64(cs.Capacity))
	}

	// Admission pool.
	ps := s.pool.Stats()
	writeMetric("Configured planning workers.", "gauge", "wrsn_serve_pool_workers", float64(ps.Workers))
	writeMetric("Configured admission queue depth.", "gauge", "wrsn_serve_pool_queue_depth", float64(ps.QueueDepth))
	writeMetric("Worker slots currently held.", "gauge", "wrsn_serve_pool_active", float64(ps.Active))
	writeMetric("Callers currently queued for a slot.", "gauge", "wrsn_serve_pool_queued", float64(ps.Queued))
	writeMetric("Tasks submitted to the pool.", "counter", "wrsn_serve_pool_submitted_total", float64(ps.Submitted))
	writeMetric("Tasks rejected with ErrSaturated.", "counter", "wrsn_serve_pool_rejected_total", float64(ps.Rejected))
	writeMetric("Tasks run to completion.", "counter", "wrsn_serve_pool_completed_total", float64(ps.Completed))

	// HTTP outcomes.
	s.mu.Lock()
	keys := make([]string, 0, len(s.outcomes))
	for k := range s.outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(&b, "# HELP wrsn_serve_http_requests_total Finished requests by route and status.\n# TYPE wrsn_serve_http_requests_total counter\n")
	for _, k := range keys {
		route, status, _ := strings.Cut(k, "|")
		fmt.Fprintf(&b, "wrsn_serve_http_requests_total{route=%q,code=%q} %d\n", route, status, s.outcomes[k])
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
