package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
)

// handleMetrics renders the server's state as Prometheus text exposition:
// the obs tracer's stage timings and counters (the same data wrsn-plan
// -trace-json reports, aggregated across every request this process has
// served), the shared plan cache, the admission pool, and per-route HTTP
// outcome counts. Series are emitted in sorted order so consecutive
// scrapes diff cleanly.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder

	writeMetric := func(help, typ, name string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
	}

	writeMetric("Seconds since the server started.", "counter",
		"wrsn_serve_uptime_seconds", time.Since(s.started).Seconds())
	drain := 0.0
	if s.draining.Load() {
		drain = 1
	}
	writeMetric("1 while the server is draining, else 0.", "gauge", "wrsn_serve_draining", drain)
	writeMetric("Requests currently past admission checks.", "gauge",
		"wrsn_serve_inflight_requests", float64(s.inflight.Load()))

	// Planning-stage spans and engine counters from the shared tracer.
	rep := s.tracer.Report()
	stages := make([]string, 0, len(rep.Stages))
	byName := map[string]int{}
	for i, st := range rep.Stages {
		byName[st.Name] = i
		stages = append(stages, st.Name)
	}
	sort.Strings(stages)
	fmt.Fprintf(&b, "# HELP wrsn_serve_stage_seconds_total Total seconds recorded per planning stage.\n# TYPE wrsn_serve_stage_seconds_total counter\n")
	for _, name := range stages {
		fmt.Fprintf(&b, "wrsn_serve_stage_seconds_total{stage=%q} %g\n", name, rep.Stages[byName[name]].Seconds)
	}
	fmt.Fprintf(&b, "# HELP wrsn_serve_stage_spans_total Spans recorded per planning stage.\n# TYPE wrsn_serve_stage_spans_total counter\n")
	for _, name := range stages {
		fmt.Fprintf(&b, "wrsn_serve_stage_spans_total{stage=%q} %d\n", name, rep.Stages[byName[name]].Count)
	}
	counters := make([]string, 0, len(rep.Counters))
	for name := range rep.Counters {
		counters = append(counters, name)
	}
	sort.Strings(counters)
	fmt.Fprintf(&b, "# HELP wrsn_serve_engine_counter_total Engine counters (obs tracer).\n# TYPE wrsn_serve_engine_counter_total counter\n")
	for _, name := range counters {
		fmt.Fprintf(&b, "wrsn_serve_engine_counter_total{name=%q} %d\n", name, rep.Counters[name])
	}

	// Plan cache.
	if s.cache != nil {
		cs := s.cache.Stats()
		writeMetric("Plan cache hits.", "counter", "wrsn_serve_plancache_hits_total", float64(cs.Hits))
		writeMetric("Plan cache misses.", "counter", "wrsn_serve_plancache_misses_total", float64(cs.Misses))
		writeMetric("Plan cache insertions.", "counter", "wrsn_serve_plancache_puts_total", float64(cs.Puts))
		writeMetric("Plan cache LRU evictions.", "counter", "wrsn_serve_plancache_evictions_total", float64(cs.Evictions))
		writeMetric("Plan cache entries.", "gauge", "wrsn_serve_plancache_size", float64(cs.Size))
		writeMetric("Plan cache capacity.", "gauge", "wrsn_serve_plancache_capacity", float64(cs.Capacity))
	}

	// Shard router: resilience counters and per-backend health/breaker
	// state, labeled by backend host so a dashboard can watch one shard
	// fail and recover.
	if s.router != nil {
		rt := s.router
		writeMetric("Routed plan requests answered by a backend.", "counter",
			"wrsn_serve_router_routed_total", float64(rt.routedOK.Load()))
		writeMetric("Plan requests that fell back to local planning (X-Plan-Degraded).", "counter",
			"wrsn_serve_router_degraded_local_total", float64(rt.degraded.Load()))
		writeMetric("Proxy attempts beyond the first per request.", "counter",
			"wrsn_serve_router_retries_total", float64(rt.retries.Load()))
		writeMetric("Retries that switched to a different backend.", "counter",
			"wrsn_serve_router_failovers_total", float64(rt.failovers.Load()))
		writeMetric("Hedged second requests launched.", "counter",
			"wrsn_serve_router_hedges_total", float64(rt.hedges.Load()))
		writeMetric("Hedged requests whose response won.", "counter",
			"wrsn_serve_router_hedge_wins_total", float64(rt.hedgeWins.Load()))
		writeMetric("Singleflight duplicate deliveries (collapsed identical requests).", "counter",
			"wrsn_serve_router_collapsed_total", float64(rt.collapsed.Load()))
		writeMetric("Backends currently probing healthy.", "gauge",
			"wrsn_serve_router_healthy_backends", float64(rt.healthyCount()))
		fmt.Fprintf(&b, "# HELP wrsn_serve_router_backend_healthy 1 while the backend's /readyz probes 200.\n# TYPE wrsn_serve_router_backend_healthy gauge\n")
		for _, be := range rt.backends {
			h := 0.0
			if be.healthy.Load() {
				h = 1
			}
			fmt.Fprintf(&b, "wrsn_serve_router_backend_healthy{backend=%q} %g\n", be.host, h)
		}
		fmt.Fprintf(&b, "# HELP wrsn_serve_router_breaker_state Circuit breaker position (0 closed, 1 open, 2 half-open).\n# TYPE wrsn_serve_router_breaker_state gauge\n")
		for _, be := range rt.backends {
			fmt.Fprintf(&b, "wrsn_serve_router_breaker_state{backend=%q} %d\n", be.host, be.breaker.State())
		}
		fmt.Fprintf(&b, "# HELP wrsn_serve_router_breaker_opens_total Transitions to open per backend breaker.\n# TYPE wrsn_serve_router_breaker_opens_total counter\n")
		for _, be := range rt.backends {
			fmt.Fprintf(&b, "wrsn_serve_router_breaker_opens_total{backend=%q} %d\n", be.host, be.breaker.Opens())
		}
		if n := rt.hist.Count(); n > 0 {
			writeMetric("Routed attempt latency p50 seconds.", "gauge",
				"wrsn_serve_router_latency_p50_seconds", rt.hist.Quantile(0.50).Seconds())
			writeMetric("Routed attempt latency p99 seconds.", "gauge",
				"wrsn_serve_router_latency_p99_seconds", rt.hist.Quantile(0.99).Seconds())
			writeMetric("Routed attempt latency p999 seconds.", "gauge",
				"wrsn_serve_router_latency_p999_seconds", rt.hist.Quantile(0.999).Seconds())
		}
	}

	// Admission pool.
	ps := s.pool.Stats()
	writeMetric("Configured planning workers.", "gauge", "wrsn_serve_pool_workers", float64(ps.Workers))
	writeMetric("Configured admission queue depth.", "gauge", "wrsn_serve_pool_queue_depth", float64(ps.QueueDepth))
	writeMetric("Worker slots currently held.", "gauge", "wrsn_serve_pool_active", float64(ps.Active))
	writeMetric("Callers currently queued for a slot.", "gauge", "wrsn_serve_pool_queued", float64(ps.Queued))
	writeMetric("Tasks submitted to the pool.", "counter", "wrsn_serve_pool_submitted_total", float64(ps.Submitted))
	writeMetric("Tasks rejected with ErrSaturated.", "counter", "wrsn_serve_pool_rejected_total", float64(ps.Rejected))
	writeMetric("Tasks run to completion.", "counter", "wrsn_serve_pool_completed_total", float64(ps.Completed))

	// HTTP outcomes.
	s.mu.Lock()
	keys := make([]string, 0, len(s.outcomes))
	for k := range s.outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(&b, "# HELP wrsn_serve_http_requests_total Finished requests by route and status.\n# TYPE wrsn_serve_http_requests_total counter\n")
	for _, k := range keys {
		route, status, _ := strings.Cut(k, "|")
		fmt.Fprintf(&b, "wrsn_serve_http_requests_total{route=%q,code=%q} %d\n", route, status, s.outcomes[k])
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
