// Package unionfind implements a disjoint-set forest with union by rank and
// path compression, used by Kruskal's MST and by clustering utilities.
package unionfind

// DSU is a disjoint-set union structure over elements 0..n-1.
type DSU struct {
	parent []int32
	rank   []int8
	sets   int
}

// New returns a DSU with n singleton sets.
func New(n int) *DSU {
	if n < 0 {
		n = 0
	}
	d := &DSU{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		sets:   n,
	}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

// Len returns the number of elements.
func (d *DSU) Len() int { return len(d.parent) }

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// Find returns the representative of x's set, compressing paths as it goes.
func (d *DSU) Find(x int) int {
	root := x
	for int(d.parent[root]) != root {
		root = int(d.parent[root])
	}
	for int(d.parent[x]) != root {
		x, d.parent[x] = int(d.parent[x]), int32(root)
	}
	return root
}

// Union merges the sets containing x and y. It reports whether a merge
// happened (false if they were already in the same set).
func (d *DSU) Union(x, y int) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	if d.rank[rx] < d.rank[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = int32(rx)
	if d.rank[rx] == d.rank[ry] {
		d.rank[rx]++
	}
	d.sets--
	return true
}

// Same reports whether x and y are in the same set.
func (d *DSU) Same(x, y int) bool { return d.Find(x) == d.Find(y) }
