package unionfind

import (
	"math/rand"
	"testing"
)

func TestBasics(t *testing.T) {
	d := New(5)
	if d.Len() != 5 || d.Sets() != 5 {
		t.Fatalf("new: Len=%d Sets=%d", d.Len(), d.Sets())
	}
	if !d.Union(0, 1) {
		t.Error("first union should merge")
	}
	if d.Union(1, 0) {
		t.Error("repeat union should not merge")
	}
	if !d.Same(0, 1) || d.Same(0, 2) {
		t.Error("Same wrong after union")
	}
	d.Union(2, 3)
	d.Union(0, 3)
	if d.Sets() != 2 {
		t.Errorf("Sets = %d, want 2", d.Sets())
	}
	if !d.Same(1, 2) {
		t.Error("1 and 2 should be connected transitively")
	}
	if d.Same(4, 0) {
		t.Error("4 should be singleton")
	}
}

func TestZeroAndNegative(t *testing.T) {
	if d := New(0); d.Len() != 0 || d.Sets() != 0 {
		t.Error("New(0) should be empty")
	}
	if d := New(-3); d.Len() != 0 {
		t.Error("New(-3) should be empty")
	}
}

// TestAgainstBruteForce compares connectivity with a reference reachability
// matrix under random unions.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 40
	d := New(n)
	conn := make([][]bool, n)
	for i := range conn {
		conn[i] = make([]bool, n)
		conn[i][i] = true
	}
	merge := func(a, b int) {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if conn[i][a] && conn[b][j] {
					conn[i][j] = true
					conn[j][i] = true
				}
			}
		}
	}
	for step := 0; step < 200; step++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		d.Union(a, b)
		merge(a, b)
		// Spot-check a few pairs.
		for probe := 0; probe < 10; probe++ {
			x, y := rng.Intn(n), rng.Intn(n)
			if d.Same(x, y) != conn[x][y] {
				t.Fatalf("step %d: Same(%d,%d)=%v, brute=%v", step, x, y, d.Same(x, y), conn[x][y])
			}
		}
	}
}

func TestSetsCountsComponents(t *testing.T) {
	d := New(10)
	for i := 0; i < 9; i++ {
		d.Union(i, i+1)
	}
	if d.Sets() != 1 {
		t.Errorf("chain union: Sets = %d, want 1", d.Sets())
	}
}
