// Package fault provides deterministic, seed-driven fault injection and
// online recovery for the WRSN simulator: mobile charger (MCV) breakdowns
// (permanent, and transient with bounded retry-with-backoff repair),
// multiplicative travel- and charging-time delay noise, sensor hardware
// churn, and charge-request bursts.
//
// Every stochastic draw is a pure hash of (plan seed, event kind, event
// coordinates), never of call order or wall clock, so a run with an
// identical Plan is byte-for-byte reproducible no matter how the simulator
// interleaves its queries. The recovery half of the package (Truncate,
// Redistribute) repairs a schedule after a permanent breakdown by moving
// the broken charger's unserved stops into the surviving tours with the
// insertion rules of the paper's Algorithm 1, preserving the
// no-simultaneous-charging invariant.
package fault

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// year is one year in seconds; churn and burst rates are "per year".
const year = 365 * 24 * 3600.0

// ErrFleetLost reports that every MCV has broken down permanently and no
// further charging rounds can run. Simulations wrap it around a partial
// result; test with errors.Is.
var ErrFleetLost = errors.New("fault: entire MCV fleet lost")

// ErrInvalidPlan tags every Plan validation failure; test with errors.Is.
var ErrInvalidPlan = errors.New("fault: invalid plan")

// Plan configures deterministic fault injection for one simulation run.
// The zero value injects nothing. All probabilities are in [0, 1]; rates
// suffixed "per year" scale with the simulated horizon.
type Plan struct {
	// Seed drives every stochastic draw. Runs with identical plans are
	// identical; changing only Seed resamples every fault.
	Seed int64 `json:"seed"`

	// MCVFailRate is the per-tour probability that the charger driving it
	// breaks down somewhere along the tour.
	MCVFailRate float64 `json:"mcv_fail_rate,omitempty"`
	// TransientFrac is the fraction of breakdowns that are transient
	// (repairable in the field). The rest are permanent: the MCV is lost
	// for the remainder of the run and its unserved stops are
	// redistributed among the survivors.
	TransientFrac float64 `json:"transient_frac,omitempty"`
	// RepairTime is the base duration of one field-repair attempt in
	// seconds; attempt i takes RepairTime * 2^(i-1) (exponential
	// backoff). 0 means 1800 s.
	RepairTime float64 `json:"repair_time,omitempty"`
	// RepairSuccess is the per-attempt probability that a field repair
	// succeeds. 0 means 0.7.
	RepairSuccess float64 `json:"repair_success,omitempty"`
	// MaxRetries bounds the repair attempts of a transient breakdown
	// before it escalates to a permanent loss. 0 means 3.
	MaxRetries int `json:"max_retries,omitempty"`

	// TravelNoise is the mean multiplicative excess on every travel leg:
	// a leg takes dist/speed * (1 + TravelNoise*E) with E a unit
	// exponential draw, modeling detours, terrain and congestion. 0
	// disables travel noise.
	TravelNoise float64 `json:"travel_noise,omitempty"`
	// ChargeNoise is the analogous mean multiplicative excess on every
	// charging sojourn (coupling losses, contention). 0 disables it.
	ChargeNoise float64 `json:"charge_noise,omitempty"`

	// SensorFailRate is the expected number of permanent hardware deaths
	// per sensor per year (sensor churn). A failed sensor stops sensing
	// and never requests charging again.
	SensorFailRate float64 `json:"sensor_fail_rate,omitempty"`

	// BurstRate is the expected number of charge-request bursts per year:
	// an external event (storm, reconfiguration, query flood) that drains
	// BurstSize random sensors by BurstDrain of their capacity at once,
	// producing a synchronized spike of charging requests.
	BurstRate float64 `json:"burst_rate,omitempty"`
	// BurstSize is the number of sensors hit per burst. 0 means 10.
	BurstSize int `json:"burst_size,omitempty"`
	// BurstDrain is the capacity fraction each victim loses. 0 means 0.5.
	BurstDrain float64 `json:"burst_drain,omitempty"`

	// Scripted lists exact breakdowns to inject in addition to the random
	// ones — the deterministic backbone for tests and demos.
	Scripted []ScriptedFailure `json:"scripted,omitempty"`

	// DisableRecovery drops a permanently failed MCV's unserved stops
	// instead of redistributing them among the survivors. It exists as
	// the no-recovery baseline for degradation studies.
	DisableRecovery bool `json:"disable_recovery,omitempty"`
}

// ScriptedFailure is one exactly specified MCV breakdown.
type ScriptedFailure struct {
	// Round is the charging round (0-based) the failure strikes in.
	Round int `json:"round"`
	// Tour is the tour index within that round's schedule.
	Tour int `json:"tour"`
	// Transient makes the breakdown repairable: the MCV pauses for one
	// RepairTime and resumes. Otherwise the MCV is lost permanently.
	Transient bool `json:"transient,omitempty"`
	// Frac positions the failure along the tour as a fraction of its
	// planned delay, in [0, 1].
	Frac float64 `json:"frac"`
}

// Enabled reports whether the plan can inject any fault at all.
func (p *Plan) Enabled() bool {
	if p == nil {
		return false
	}
	return p.MCVFailRate > 0 || p.TravelNoise > 0 || p.ChargeNoise > 0 ||
		p.SensorFailRate > 0 || p.BurstRate > 0 || len(p.Scripted) > 0
}

// withDefaults fills the documented zero-value defaults.
func (p Plan) withDefaults() Plan {
	if p.RepairTime <= 0 {
		p.RepairTime = 1800
	}
	if p.RepairSuccess <= 0 {
		p.RepairSuccess = 0.7
	}
	if p.MaxRetries <= 0 {
		p.MaxRetries = 3
	}
	if p.BurstSize <= 0 {
		p.BurstSize = 10
	}
	if p.BurstDrain <= 0 {
		p.BurstDrain = 0.5
	}
	return p
}

// Validate reports the first structural problem with the plan, or nil.
func (p *Plan) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidPlan, fmt.Sprintf(format, args...))
	}
	probs := []struct {
		name string
		v    float64
	}{
		{"mcv_fail_rate", p.MCVFailRate},
		{"transient_frac", p.TransientFrac},
		{"repair_success", p.RepairSuccess},
		{"burst_drain", p.BurstDrain},
	}
	for _, pr := range probs {
		if pr.v < 0 || pr.v > 1 || math.IsNaN(pr.v) {
			return bad("%s = %v, want in [0, 1]", pr.name, pr.v)
		}
	}
	nonneg := []struct {
		name string
		v    float64
	}{
		{"repair_time", p.RepairTime},
		{"travel_noise", p.TravelNoise},
		{"charge_noise", p.ChargeNoise},
		{"sensor_fail_rate", p.SensorFailRate},
		{"burst_rate", p.BurstRate},
	}
	for _, nn := range nonneg {
		if nn.v < 0 || math.IsNaN(nn.v) || math.IsInf(nn.v, 0) {
			return bad("%s = %v, want finite >= 0", nn.name, nn.v)
		}
	}
	if p.MaxRetries < 0 {
		return bad("max_retries = %d, want >= 0", p.MaxRetries)
	}
	if p.BurstSize < 0 {
		return bad("burst_size = %d, want >= 0", p.BurstSize)
	}
	for i, s := range p.Scripted {
		if s.Round < 0 || s.Tour < 0 {
			return bad("scripted[%d] round/tour = %d/%d, want >= 0", i, s.Round, s.Tour)
		}
		if s.Frac < 0 || s.Frac > 1 || math.IsNaN(s.Frac) {
			return bad("scripted[%d] frac = %v, want in [0, 1]", i, s.Frac)
		}
	}
	return nil
}

// Load reads a JSON-encoded fault plan (the -fault-spec file of wrsn-sim)
// and validates it.
func Load(r io.Reader) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("fault: decode plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// ParseSpec parses the compact comma-separated key=value fault
// specification accepted by wrsn-sim's -faults flag, e.g.
//
//	mcv=0.2,transient=0.5,travel-noise=0.1,churn=2,bursts=12
//
// Keys: mcv (per-tour failure probability), transient (transient
// fraction), repair (seconds), repair-success, retries, travel-noise,
// charge-noise, churn (sensor failures per year), bursts (per year),
// burst-size, burst-drain, no-recovery (0/1). An empty spec yields an
// empty plan.
func ParseSpec(spec string) (*Plan, error) {
	p := &Plan{}
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("%w: %q is not key=value", ErrInvalidPlan, kv)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrInvalidPlan, key, err)
		}
		switch strings.TrimSpace(key) {
		case "mcv":
			p.MCVFailRate = f
		case "transient":
			p.TransientFrac = f
		case "repair":
			p.RepairTime = f
		case "repair-success":
			p.RepairSuccess = f
		case "retries":
			p.MaxRetries = int(f)
		case "travel-noise":
			p.TravelNoise = f
		case "charge-noise":
			p.ChargeNoise = f
		case "churn":
			p.SensorFailRate = f
		case "bursts":
			p.BurstRate = f
		case "burst-size":
			p.BurstSize = int(f)
		case "burst-drain":
			p.BurstDrain = f
		case "no-recovery":
			p.DisableRecovery = f != 0
		default:
			return nil, fmt.Errorf("%w: unknown key %q", ErrInvalidPlan, key)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
