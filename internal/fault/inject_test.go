package fault

import (
	"math"
	"testing"
)

func mustInjector(t *testing.T, p *Plan) *Injector {
	t.Helper()
	ij, err := New(p)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return ij
}

func TestNilInjectorIsInert(t *testing.T) {
	var ij *Injector
	if ij.Enabled() || ij.RecoveryDisabled() {
		t.Fatal("nil injector must be inactive")
	}
	if f := ij.TravelFactor(0, -1, 3); f != 1 {
		t.Fatalf("TravelFactor = %v, want 1", f)
	}
	if f := ij.ChargeFactor(0, 3); f != 1 {
		t.Fatalf("ChargeFactor = %v, want 1", f)
	}
	if _, ok := ij.TourFailure(0, 0, 1000); ok {
		t.Fatal("nil injector must not fail tours")
	}
	if ds := ij.SensorDeaths(1e6, 10); ds != nil {
		t.Fatalf("SensorDeaths = %v, want nil", ds)
	}
	if bs := ij.Bursts(1e6, 10); bs != nil {
		t.Fatalf("Bursts = %v, want nil", bs)
	}
	ijNil, err := New(nil)
	if err != nil || ijNil != nil {
		t.Fatalf("New(nil) = %v, %v, want nil, nil", ijNil, err)
	}
}

func TestDrawsAreDeterministicAndOrderFree(t *testing.T) {
	plan := &Plan{Seed: 11, MCVFailRate: 0.5, TransientFrac: 0.5,
		TravelNoise: 0.2, ChargeNoise: 0.2, SensorFailRate: 5, BurstRate: 10}
	a := mustInjector(t, plan)
	b := mustInjector(t, plan)

	// Query b in a different order than a; every answer must agree.
	bTravel := b.TravelFactor(3, 1, 2)
	bCharge := b.ChargeFactor(2, 7)
	if got := a.ChargeFactor(2, 7); got != bCharge {
		t.Fatalf("ChargeFactor differs across query orders: %v vs %v", got, bCharge)
	}
	if got := a.TravelFactor(3, 1, 2); got != bTravel {
		t.Fatalf("TravelFactor differs across query orders: %v vs %v", got, bTravel)
	}
	fa, oka := a.TourFailure(4, 1, 5000)
	fb, okb := b.TourFailure(4, 1, 5000)
	if oka != okb || fa != fb {
		t.Fatalf("TourFailure differs: %+v/%v vs %+v/%v", fa, oka, fb, okb)
	}
	da, db := a.SensorDeaths(1e7, 50), b.SensorDeaths(1e7, 50)
	if len(da) != len(db) {
		t.Fatalf("SensorDeaths length differs: %d vs %d", len(da), len(db))
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("SensorDeaths[%d] differs: %+v vs %+v", i, da[i], db[i])
		}
	}

	// A different seed must actually resample.
	other := mustInjector(t, &Plan{Seed: 12, TravelNoise: 0.2})
	if other.TravelFactor(3, 1, 2) == bTravel {
		t.Fatal("different seeds produced identical travel factor")
	}
}

func TestNoiseFactors(t *testing.T) {
	ij := mustInjector(t, &Plan{Seed: 3, TravelNoise: 0.3, ChargeNoise: 0.2})
	for r := 0; r < 20; r++ {
		if f := ij.TravelFactor(r, -1, r%5); f < 1 || math.IsInf(f, 0) || math.IsNaN(f) {
			t.Fatalf("TravelFactor(%d) = %v, want finite >= 1", r, f)
		}
		if f := ij.ChargeFactor(r, r%5); f < 1 || math.IsInf(f, 0) || math.IsNaN(f) {
			t.Fatalf("ChargeFactor(%d) = %v, want finite >= 1", r, f)
		}
	}
	// Zero sigma means exactly no noise.
	quiet := mustInjector(t, &Plan{Seed: 3, MCVFailRate: 0.1})
	if f := quiet.TravelFactor(0, 0, 1); f != 1 {
		t.Fatalf("TravelFactor without noise = %v, want exactly 1", f)
	}
}

func TestScriptedFailures(t *testing.T) {
	ij := mustInjector(t, &Plan{
		Seed:       1,
		RepairTime: 900,
		Scripted: []ScriptedFailure{
			{Round: 2, Tour: 1, Frac: 0.25},
			{Round: 3, Tour: 0, Transient: true, Frac: 0.5},
		},
	})
	f, ok := ij.TourFailure(2, 1, 4000)
	if !ok || f.Transient || f.At != 1000 {
		t.Fatalf("scripted permanent = %+v/%v, want At=1000 permanent", f, ok)
	}
	f, ok = ij.TourFailure(3, 0, 4000)
	if !ok || !f.Transient || f.At != 2000 || f.Delay != 900 || f.Retries != 1 {
		t.Fatalf("scripted transient = %+v/%v, want At=2000 Delay=900", f, ok)
	}
	if _, ok := ij.TourFailure(0, 0, 4000); ok {
		t.Fatal("unscripted round must not fail at zero rate")
	}
	if _, ok := ij.TourFailure(2, 1, 0); ok {
		t.Fatal("a zero-delay tour cannot fail")
	}
}

func TestRepairEscalation(t *testing.T) {
	// RepairSuccess so small every attempt fails: transient draws must
	// escalate to permanent with full backoff accounting.
	ij := mustInjector(t, &Plan{Seed: 5, MCVFailRate: 1, TransientFrac: 1,
		RepairTime: 100, RepairSuccess: 1e-12, MaxRetries: 3})
	f, ok := ij.TourFailure(0, 0, 1000)
	if !ok {
		t.Fatal("rate 1 must fail")
	}
	if f.Transient {
		t.Fatal("exhausted repairs must escalate to permanent")
	}
	if f.Retries != 3 {
		t.Fatalf("Retries = %d, want 3", f.Retries)
	}
	if want := 100.0 + 200 + 400; f.Delay != want {
		t.Fatalf("Delay = %v, want %v (exponential backoff)", f.Delay, want)
	}

	// RepairSuccess ~1: first attempt succeeds.
	ez := mustInjector(t, &Plan{Seed: 5, MCVFailRate: 1, TransientFrac: 1,
		RepairTime: 100, RepairSuccess: 1 - 1e-12, MaxRetries: 3})
	f, _ = ez.TourFailure(0, 0, 1000)
	if !f.Transient || f.Retries != 1 || f.Delay != 100 {
		t.Fatalf("easy repair = %+v, want transient after 1 attempt", f)
	}
}

func TestSensorDeathsAndBursts(t *testing.T) {
	ij := mustInjector(t, &Plan{Seed: 9, SensorFailRate: 1, BurstRate: 4, BurstSize: 3, BurstDrain: 0.25})
	horizon := year // rate 1/year over a year: each sensor fails with prob ~1
	deaths := ij.SensorDeaths(horizon, 40)
	if len(deaths) != 40 {
		t.Fatalf("expected every sensor to die at prob 1, got %d/40", len(deaths))
	}
	for i, d := range deaths {
		if d.At < 0 || d.At > horizon {
			t.Fatalf("death %d at %v outside horizon", i, d.At)
		}
		if i > 0 && deaths[i-1].At > d.At {
			t.Fatal("deaths must be sorted by time")
		}
	}

	bursts := ij.Bursts(horizon, 40)
	if len(bursts) != 4 {
		t.Fatalf("Bursts = %d events, want 4", len(bursts))
	}
	for _, b := range bursts {
		if b.At < 0 || b.At > horizon || b.Drain != 0.25 {
			t.Fatalf("burst %+v malformed", b)
		}
		if len(b.Victims) == 0 || len(b.Victims) > 3 {
			t.Fatalf("burst has %d victims, want 1..3", len(b.Victims))
		}
		seen := map[int]bool{}
		for _, v := range b.Victims {
			if v < 0 || v >= 40 || seen[v] {
				t.Fatalf("bad victim set %v", b.Victims)
			}
			seen[v] = true
		}
	}

	if ds := ij.SensorDeaths(0, 40); ds != nil {
		t.Fatalf("zero horizon must yield no deaths, got %v", ds)
	}
}
