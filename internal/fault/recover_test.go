package fault

import (
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

// recoverInstance builds a 4-request instance: r0 and r1 are a
// conflicting pair (overlapping coverage disks), r2 sits on the far side
// of the depot, r3 far beyond r0.
func recoverInstance() *core.Instance {
	return &core.Instance{
		Depot: geom.Pt(0, 0),
		Gamma: 1,
		Speed: 1,
		K:     2,
		Requests: []core.Request{
			{Pos: geom.Pt(10, 0), Duration: 100, Lifetime: 1e6},
			{Pos: geom.Pt(10, 0.5), Duration: 100, Lifetime: 1e6},
			{Pos: geom.Pt(-10, 0), Duration: 100, Lifetime: 1e6},
			{Pos: geom.Pt(30, 0), Duration: 100, Lifetime: 1e6},
		},
	}
}

// recoverSchedule pairs the instance with a 2-tour schedule: tour 0 (the
// one that will break) serves r0 then r3, tour 1 serves r1 then r2.
func recoverSchedule(in *core.Instance) *core.Schedule {
	s := &core.Schedule{Tours: []core.Tour{
		{Stops: []core.Stop{
			{Node: 0, Duration: 100, Covers: []int{0}},
			{Node: 3, Duration: 100, Covers: []int{3}},
		}},
		{Stops: []core.Stop{
			{Node: 1, Duration: 100, Covers: []int{1}},
			{Node: 2, Duration: 100, Covers: []int{2}},
		}},
	}}
	core.Finalize(in, s)
	return s
}

func coveredSet(s *core.Schedule) map[int]int {
	got := map[int]int{}
	for _, t := range s.Tours {
		for _, st := range t.Stops {
			for _, c := range st.Covers {
				got[c]++
			}
		}
	}
	return got
}

func TestTruncate(t *testing.T) {
	in := recoverInstance()
	s := recoverSchedule(in)
	tour := &s.Tours[0]
	firstFinish := tour.Stops[0].Finish()

	// Cut after the first stop finished: one orphan.
	orphans := Truncate(tour, firstFinish+1)
	if len(orphans) != 1 || orphans[0].Node != 3 {
		t.Fatalf("orphans = %+v, want just node 3", orphans)
	}
	if len(tour.Stops) != 1 || tour.Stops[0].Node != 0 {
		t.Fatalf("kept stops = %+v, want just node 0", tour.Stops)
	}

	// Cut before anything finished: everything orphaned.
	s2 := recoverSchedule(in)
	orphans = Truncate(&s2.Tours[0], 1)
	if len(orphans) != 2 || len(s2.Tours[0].Stops) != 0 {
		t.Fatalf("early cut: orphans=%d kept=%d, want 2/0", len(orphans), len(s2.Tours[0].Stops))
	}

	// Cut after the whole tour: nothing orphaned.
	s3 := recoverSchedule(in)
	if orphans = Truncate(&s3.Tours[0], 1e9); orphans != nil {
		t.Fatalf("late cut: orphans = %+v, want nil", orphans)
	}
}

func TestRedistributeCases(t *testing.T) {
	in := recoverInstance()
	s := recoverSchedule(in)
	dead := map[int]bool{0: true}
	orphans := Truncate(&s.Tours[0], 1) // both stops orphaned

	n := Redistribute(in, s, dead, nil, orphans)
	if n != 2 {
		t.Fatalf("Redistribute = %d, want 2", n)
	}
	// Every request is still covered exactly once.
	got := coveredSet(s)
	for r := 0; r < 4; r++ {
		if got[r] != 1 {
			t.Fatalf("request %d covered %d times after redistribution: %+v", r, got[r], got)
		}
	}
	// The dead tour received nothing.
	if len(s.Tours[0].Stops) != 0 {
		t.Fatalf("dead tour grew stops: %+v", s.Tours[0].Stops)
	}
	// Case (i): r0 conflicts with r1, so it lands directly after r1's stop.
	surv := s.Tours[1].Stops
	for i, st := range surv {
		if st.Node == 0 {
			if i == 0 || surv[i-1].Node != 1 {
				t.Fatalf("conflicting orphan r0 not after r1: tour order %+v", nodeOrder(surv))
			}
		}
	}
	// Times were refreshed: strictly increasing arrivals, positive delay.
	for i := 1; i < len(surv); i++ {
		if surv[i].Arrive < surv[i-1].Finish() {
			t.Fatalf("stale times after redistribution: %+v", surv)
		}
	}
	if s.Longest <= 0 || s.Tours[1].Delay != s.Longest {
		t.Fatalf("Longest not refreshed: longest=%v tours=%+v", s.Longest, s.Tours)
	}
	// The repaired schedule passes the feasibility verifier (one dead
	// empty tour is fine: Verify checks coverage and timing, and the
	// conflicting pair was serialized onto one charger).
	if vs := core.Verify(in, s); len(vs) != 0 {
		t.Fatalf("verifier rejects repaired schedule: %v", vs)
	}
}

func TestRedistributeRespectsFrozenPrefix(t *testing.T) {
	in := recoverInstance()
	s := recoverSchedule(in)
	dead := map[int]bool{0: true}
	orphans := Truncate(&s.Tours[0], 1)

	// Freeze the surviving tour entirely: orphans may only append.
	frozen := []int{0, 2}
	before := nodeOrder(s.Tours[1].Stops)
	Redistribute(in, s, dead, frozen, orphans)
	after := nodeOrder(s.Tours[1].Stops)
	for i, n := range before {
		if after[i] != n {
			t.Fatalf("frozen prefix reordered: %v -> %v", before, after)
		}
	}
	if len(after) != 4 {
		t.Fatalf("appended stops missing: %v", after)
	}
}

func TestRedistributeNoSurvivors(t *testing.T) {
	in := recoverInstance()
	s := recoverSchedule(in)
	dead := map[int]bool{0: true, 1: true}
	orphans := Truncate(&s.Tours[0], 1)
	if n := Redistribute(in, s, dead, nil, orphans); n != 0 {
		t.Fatalf("Redistribute with no survivors = %d, want 0", n)
	}
	if n := Redistribute(in, s, map[int]bool{0: true}, nil, nil); n != 0 {
		t.Fatalf("Redistribute with no orphans = %d, want 0", n)
	}
}

func nodeOrder(stops []core.Stop) []int {
	out := make([]int, len(stops))
	for i, st := range stops {
		out[i] = st.Node
	}
	return out
}
