package fault

import "math"

// This file exports the package's deterministic draw keying so other
// subsystems that need same-seed-same-run stochastic decisions — notably
// the HTTP-layer chaos transport in internal/resilience — share one
// keying discipline with the simulator's injectors instead of inventing
// a second RNG scheme. Every draw is a pure hash of (seed, kind,
// coordinates): independent of call order, wall clock and goroutine
// interleaving.

// Mix64 is the SplitMix64 finalizer — a full-avalanche 64-bit mixer.
// It is the hash at the bottom of every deterministic draw in this
// package.
func Mix64(x uint64) uint64 { return mix64(x) }

// U01 returns a uniform draw in [0, 1) determined purely by the seed,
// the draw kind and up to three coordinates. Distinct kinds decorrelate
// draws that share coordinates; distinct coordinates decorrelate draws
// of one kind. Callers outside this package should allocate kind values
// well away from the injector's own (which occupy small integers).
func U01(seed int64, kind, a, b, c uint64) float64 {
	h := mix64(uint64(seed) ^ kind*0x9e3779b97f4a7c15)
	h = mix64(h ^ a*0xff51afd7ed558ccd)
	h = mix64(h ^ b*0xc4ceb9fe1a85ec53)
	h = mix64(h ^ c*0x2545f4914f6cdd1d)
	return float64(h>>11) / float64(1<<53)
}

// Excess converts a uniform draw into a unit-exponential excess — the
// standard shape for multiplicative delay noise: factor = 1 + sigma *
// Excess(u).
func Excess(u float64) float64 { return -math.Log(1 - u) }
