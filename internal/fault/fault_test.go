package fault

import (
	"errors"
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"zero plan", Plan{}, true},
		{"full plan", Plan{MCVFailRate: 0.2, TransientFrac: 0.5, RepairTime: 600,
			RepairSuccess: 0.9, MaxRetries: 2, TravelNoise: 0.1, ChargeNoise: 0.1,
			SensorFailRate: 2, BurstRate: 12, BurstSize: 5, BurstDrain: 0.4}, true},
		{"rate above one", Plan{MCVFailRate: 1.5}, false},
		{"negative rate", Plan{MCVFailRate: -0.1}, false},
		{"negative noise", Plan{TravelNoise: -1}, false},
		{"negative churn", Plan{SensorFailRate: -2}, false},
		{"negative retries", Plan{MaxRetries: -1}, false},
		{"scripted bad frac", Plan{Scripted: []ScriptedFailure{{Round: 0, Tour: 0, Frac: 2}}}, false},
		{"scripted bad tour", Plan{Scripted: []ScriptedFailure{{Round: 0, Tour: -1, Frac: 0.5}}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("Validate() = nil, want error")
				}
				if !errors.Is(err, ErrInvalidPlan) {
					t.Fatalf("Validate() = %v, want ErrInvalidPlan", err)
				}
			}
		})
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("mcv=0.2, transient=0.5, travel-noise=0.1, churn=2, bursts=12, no-recovery=1")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if p.MCVFailRate != 0.2 || p.TransientFrac != 0.5 || p.TravelNoise != 0.1 ||
		p.SensorFailRate != 2 || p.BurstRate != 12 || !p.DisableRecovery {
		t.Fatalf("ParseSpec parsed %+v", p)
	}
	if !p.Enabled() {
		t.Fatal("parsed plan should be enabled")
	}

	empty, err := ParseSpec("  ")
	if err != nil {
		t.Fatalf("ParseSpec(blank): %v", err)
	}
	if empty.Enabled() {
		t.Fatal("blank spec should be disabled")
	}

	for _, bad := range []string{"mcv", "mcv=abc", "unknown=1", "mcv=2"} {
		if _, err := ParseSpec(bad); !errors.Is(err, ErrInvalidPlan) {
			t.Errorf("ParseSpec(%q) = %v, want ErrInvalidPlan", bad, err)
		}
	}
}

func TestLoad(t *testing.T) {
	p, err := Load(strings.NewReader(`{"seed": 7, "mcv_fail_rate": 0.1, "scripted": [{"round": 0, "tour": 1, "frac": 0.5}]}`))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if p.Seed != 7 || p.MCVFailRate != 0.1 || len(p.Scripted) != 1 || p.Scripted[0].Tour != 1 {
		t.Fatalf("Load parsed %+v", p)
	}
	if _, err := Load(strings.NewReader(`{"bogus_key": 1}`)); err == nil {
		t.Fatal("Load should reject unknown fields")
	}
	if _, err := Load(strings.NewReader(`{"mcv_fail_rate": -1}`)); !errors.Is(err, ErrInvalidPlan) {
		t.Fatalf("Load(bad rate) = %v, want ErrInvalidPlan", err)
	}
}

func TestEnabled(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Enabled() {
		t.Fatal("nil plan must be disabled")
	}
	if (&Plan{Seed: 42}).Enabled() {
		t.Fatal("seed alone must not enable injection")
	}
	if !(&Plan{ChargeNoise: 0.1}).Enabled() {
		t.Fatal("charge noise must enable injection")
	}
	if !(&Plan{Scripted: []ScriptedFailure{{}}}).Enabled() {
		t.Fatal("scripted failures must enable injection")
	}
}
