package fault

import (
	"sort"
)

// Draw kinds. Every stochastic decision hashes (seed, kind, coordinates),
// so draws are independent of one another and of query order — the
// foundation of the package's same-seed-same-run guarantee.
const (
	kindFail uint64 = iota + 1
	kindFailAt
	kindTransient
	kindRepair
	kindTravel
	kindCharge
	kindSensorFail
	kindSensorFailAt
	kindBurstAt
	kindBurstPick
)

// Injector answers the simulator's fault queries for one Plan. A nil
// *Injector is valid and injects nothing; every method is a no-op (or
// identity) on a nil receiver.
type Injector struct {
	plan Plan
	// scripted indexes Plan.Scripted by (round, tour); built once so
	// per-round lookups don't rescan the list.
	scripted map[[2]int]ScriptedFailure
}

// New validates the plan and returns an injector for it. A nil plan
// yields a nil (inactive) injector.
func New(p *Plan) (*Injector, error) {
	if p == nil {
		return nil, nil
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ij := &Injector{plan: p.withDefaults()}
	if len(p.Scripted) > 0 {
		ij.scripted = make(map[[2]int]ScriptedFailure, len(p.Scripted))
		for _, s := range p.Scripted {
			ij.scripted[[2]int{s.Round, s.Tour}] = s
		}
	}
	return ij, nil
}

// Enabled reports whether the injector can inject any fault.
func (ij *Injector) Enabled() bool {
	if ij == nil {
		return false
	}
	return ij.plan.Enabled()
}

// RecoveryDisabled reports whether redistribution after permanent
// breakdowns is turned off (the degradation-study baseline).
func (ij *Injector) RecoveryDisabled() bool {
	return ij != nil && ij.plan.DisableRecovery
}

// mix64 is the SplitMix64 finalizer — a full-avalanche 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// u01 returns a uniform draw in [0, 1) determined purely by the seed, the
// draw kind and up to three integer coordinates.
func (ij *Injector) u01(kind uint64, a, b, c int) float64 {
	return U01(ij.plan.Seed, kind, uint64(int64(a)), uint64(int64(b)), uint64(int64(c)))
}

// excess converts a uniform draw into a unit-exponential excess, used for
// the multiplicative delay noise: factor = 1 + sigma * excess.
func excess(u float64) float64 { return Excess(u) }

// TravelFactor returns the multiplicative slowdown (>= 1) of the travel
// leg between the two request nodes in the given round; use -1 for the
// depot. Keyed by endpoints rather than position in the tour, the factor
// survives stop reinsertion unchanged.
func (ij *Injector) TravelFactor(round, from, to int) float64 {
	if ij == nil || ij.plan.TravelNoise <= 0 {
		return 1
	}
	return 1 + ij.plan.TravelNoise*excess(ij.u01(kindTravel, round, from, to))
}

// ChargeFactor returns the multiplicative slowdown (>= 1) of the charging
// sojourn at the given request node in the given round.
func (ij *Injector) ChargeFactor(round, node int) float64 {
	if ij == nil || ij.plan.ChargeNoise <= 0 {
		return 1
	}
	return 1 + ij.plan.ChargeNoise*excess(ij.u01(kindCharge, round, node, 0))
}

// Failure is one resolved MCV breakdown.
type Failure struct {
	// At is the failure time as an offset from the tour's dispatch, in
	// seconds.
	At float64
	// Transient reports a successful field repair: the MCV pauses for
	// Delay seconds at the failure point and resumes. False means the
	// MCV is permanently lost (either drawn permanent outright, or a
	// transient breakdown whose repairs all failed and escalated).
	Transient bool
	// Delay is the total repair time spent, including failed attempts.
	Delay float64
	// Retries is the number of repair attempts made.
	Retries int
}

// TourFailure decides whether the MCV driving the given tour breaks down
// this round, resolving transient repairs (bounded retry with exponential
// backoff) down to a final outcome. plannedDelay is the tour's planned
// total delay; the failure strikes at a uniform fraction of it.
func (ij *Injector) TourFailure(round, tour int, plannedDelay float64) (Failure, bool) {
	if ij == nil || plannedDelay <= 0 {
		return Failure{}, false
	}
	if s, ok := ij.scripted[[2]int{round, tour}]; ok {
		f := Failure{At: s.Frac * plannedDelay}
		if s.Transient {
			// Scripted transients repair deterministically in one
			// attempt, so tests control the exact recovery path.
			f.Transient, f.Delay, f.Retries = true, ij.plan.RepairTime, 1
		}
		return f, true
	}
	if ij.plan.MCVFailRate <= 0 || ij.u01(kindFail, round, tour, 0) >= ij.plan.MCVFailRate {
		return Failure{}, false
	}
	f := Failure{At: ij.u01(kindFailAt, round, tour, 0) * plannedDelay}
	if ij.u01(kindTransient, round, tour, 0) < ij.plan.TransientFrac {
		f.Delay, f.Retries, f.Transient = ij.resolveRepair(round, tour)
	}
	return f, true
}

// resolveRepair runs the bounded retry-with-backoff loop: attempt i costs
// RepairTime * 2^(i-1); the first success ends the outage, and exhausting
// MaxRetries escalates the breakdown to permanent.
func (ij *Injector) resolveRepair(round, tour int) (delay float64, retries int, repaired bool) {
	for attempt := 1; attempt <= ij.plan.MaxRetries; attempt++ {
		delay += ij.plan.RepairTime * float64(int64(1)<<uint(attempt-1))
		retries = attempt
		if ij.u01(kindRepair, round, tour, attempt) < ij.plan.RepairSuccess {
			return delay, retries, true
		}
	}
	return delay, retries, false
}

// SensorDeath is one permanent sensor hardware failure.
type SensorDeath struct {
	Sensor int
	At     float64
}

// SensorDeaths returns the hardware churn events over the horizon for n
// sensors, sorted by time. Each sensor independently fails with
// probability min(1, SensorFailRate * horizon/year) at a uniform time.
func (ij *Injector) SensorDeaths(horizon float64, n int) []SensorDeath {
	if ij == nil || ij.plan.SensorFailRate <= 0 || horizon <= 0 {
		return nil
	}
	prob := ij.plan.SensorFailRate * horizon / year
	if prob > 1 {
		prob = 1
	}
	var out []SensorDeath
	for i := 0; i < n; i++ {
		if ij.u01(kindSensorFail, i, 0, 0) < prob {
			out = append(out, SensorDeath{Sensor: i, At: ij.u01(kindSensorFailAt, i, 0, 0) * horizon})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Burst is one charge-request burst: Victims lose Drain of their capacity
// at time At.
type Burst struct {
	At      float64
	Victims []int
	Drain   float64
}

// Bursts returns the request bursts over the horizon for n sensors,
// sorted by time. The burst count is the rounded expectation
// BurstRate * horizon/year; victims are drawn without replacement.
func (ij *Injector) Bursts(horizon float64, n int) []Burst {
	if ij == nil || ij.plan.BurstRate <= 0 || horizon <= 0 || n == 0 {
		return nil
	}
	count := int(ij.plan.BurstRate*horizon/year + 0.5)
	out := make([]Burst, 0, count)
	for i := 0; i < count; i++ {
		b := Burst{At: ij.u01(kindBurstAt, i, 0, 0) * horizon, Drain: ij.plan.BurstDrain}
		seen := make(map[int]bool, ij.plan.BurstSize)
		for j := 0; len(b.Victims) < ij.plan.BurstSize && j < 4*ij.plan.BurstSize; j++ {
			v := int(ij.u01(kindBurstPick, i, j, 0) * float64(n))
			if v >= n {
				v = n - 1
			}
			if !seen[v] {
				seen[v] = true
				b.Victims = append(b.Victims, v)
			}
		}
		sort.Ints(b.Victims)
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
