package fault

import (
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
)

// Truncate cuts the tour at the breakdown time `at` (seconds from
// dispatch): stops whose charging finished by `at` stay served, and every
// later stop — including one interrupted mid-charge, whose sensors must
// be recharged from scratch — is removed and returned in visit order for
// redistribution. Stop times within a tour are non-decreasing, so the cut
// is a prefix split.
func Truncate(t *core.Tour, at float64) []core.Stop {
	kept := 0
	for _, st := range t.Stops {
		if st.Finish() > at {
			break
		}
		kept++
	}
	if kept == len(t.Stops) {
		return nil
	}
	orphans := append([]core.Stop(nil), t.Stops[kept:]...)
	t.Stops = t.Stops[:kept]
	return orphans
}

// Redistribute moves a broken-down MCV's orphaned stops into the
// surviving tours using the two insertion cases of the paper's
// Algorithm 1 (steps 11-23), preserving the no-simultaneous-charging
// invariant the original insertion rule establishes:
//
//   - Case (i): if a surviving stop's coverage disk conflicts with the
//     orphan's (a shared sensor within the charging radius — the same
//     test as Eq. (8)'s H-neighborhood), the orphan is inserted directly
//     after the conflicting stop with the latest charging finish time, so
//     the two charging intervals are serialized by the same charger.
//   - Case (ii): with no conflicting placed stop, the orphan is appended
//     to the surviving tour with the smallest delay, mirroring the
//     shortest-tour fallback.
//
// dead marks tour indices that may not receive stops; frozen[k] is the
// number of leading stops of tour k that already physically completed and
// must not move (insertion positions are clamped past them; pass nil to
// allow any position). Tour times are refreshed after every insertion so
// later orphans see up-to-date finish times. Returns the number of stops
// inserted: len(orphans), or 0 when no surviving tour exists.
//
// Residual cross-tour conflicts (an orphan conflicting with a stop in a
// different surviving tour) are left to the conflict-aware executor,
// exactly as in the plan-then-Execute division of labor of Appro itself.
func Redistribute(in *core.Instance, s *core.Schedule, dead map[int]bool, frozen []int, orphans []core.Stop) int {
	if len(orphans) == 0 {
		return 0
	}
	survivors := 0
	for k := range s.Tours {
		if !dead[k] {
			survivors++
		}
	}
	if survivors == 0 {
		return 0
	}

	// Coverage sets N_c+(v) over the instance, cached per node.
	grid := geom.NewGrid(in.Positions(), gridCell(in.Gamma))
	coverCache := make(map[int][]int)
	coverOf := func(node int) []int {
		if cs, ok := coverCache[node]; ok {
			return cs
		}
		cs := append([]int(nil), grid.Neighbors(in.Requests[node].Pos, in.Gamma, nil)...)
		sort.Ints(cs)
		coverCache[node] = cs
		return cs
	}
	conflicts := func(a, b int) bool {
		if geom.Dist(in.Requests[a].Pos, in.Requests[b].Pos) > 2*in.Gamma {
			return false
		}
		return intersectSorted(coverOf(a), coverOf(b))
	}
	frozenAt := func(k int) int {
		if frozen == nil {
			return 0
		}
		return frozen[k]
	}

	for _, orphan := range orphans {
		// Case (i): latest-finishing conflicting stop among survivors.
		bestTour, bestPos, bestFinish := -1, 0, 0.0
		for k := range s.Tours {
			if dead[k] {
				continue
			}
			for p, st := range s.Tours[k].Stops {
				if conflicts(st.Node, orphan.Node) && (bestTour < 0 || st.Finish() > bestFinish) {
					bestTour, bestPos, bestFinish = k, p+1, st.Finish()
				}
			}
		}
		if bestTour < 0 {
			// Case (ii): append to the shortest surviving tour.
			for k := range s.Tours {
				if dead[k] {
					continue
				}
				if bestTour < 0 || s.Tours[k].Delay < s.Tours[bestTour].Delay {
					bestTour = k
				}
			}
			bestPos = len(s.Tours[bestTour].Stops)
		}
		if min := frozenAt(bestTour); bestPos < min {
			bestPos = min
		}
		tour := &s.Tours[bestTour]
		tour.Stops = append(tour.Stops, core.Stop{})
		copy(tour.Stops[bestPos+1:], tour.Stops[bestPos:])
		tour.Stops[bestPos] = orphan
		core.FinalizeTour(in, tour)
	}
	core.Finalize(in, s)
	return len(orphans)
}

// gridCell clamps grid cell sizes away from zero for degenerate gammas.
func gridCell(gamma float64) float64 {
	if gamma <= 0 {
		return 1
	}
	return gamma
}

func intersectSorted(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}
