package graph

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/obs"
)

// MISOrder selects the vertex-selection strategy for maximal independent
// set construction. All strategies produce a set that is independent and
// maximal; they differ in which maximal set they find, which affects the
// number of sojourn locations Algorithm Appro considers.
type MISOrder int

const (
	// MISLexicographic greedily scans vertices 0..n-1. Deterministic.
	MISLexicographic MISOrder = iota + 1
	// MISMinDegree repeatedly picks a remaining vertex of minimum residual
	// degree. Tends to produce larger independent sets, i.e. denser
	// candidate sojourn coverage. Deterministic.
	MISMinDegree
	// MISMaxDegree repeatedly picks a remaining vertex of maximum residual
	// degree. Tends to produce smaller independent sets, i.e. fewer stops
	// each covering many sensors. Deterministic.
	MISMaxDegree
	// MISRandom scans vertices in an order drawn from the provided source.
	MISRandom
	// MISLuby runs Luby's distributed algorithm (see LubyMIS) with a seed
	// drawn from the provided source. Rounds are goroutine-parallel, so this
	// is the strategy of choice at large n; for a fixed seed the result is
	// deterministic regardless of worker count.
	MISLuby
)

// String implements fmt.Stringer.
func (o MISOrder) String() string {
	switch o {
	case MISLexicographic:
		return "lexicographic"
	case MISMinDegree:
		return "min-degree"
	case MISMaxDegree:
		return "max-degree"
	case MISRandom:
		return "random"
	case MISLuby:
		return "luby"
	default:
		return "unknown"
	}
}

// MISConfig carries the optional knobs of MaximalIndependentSetWith. The
// zero value is valid and means: no randomness source, the incremental
// bucket-queue selection for the degree orders, no tracing.
type MISConfig struct {
	// Rng drives the seeded orders MISRandom and MISLuby; it is ignored
	// by the deterministic orders and may be nil (a fixed seed-1 source
	// substitutes).
	Rng *rand.Rand
	// Rescan forces the degree orders (MISMinDegree, MISMaxDegree)
	// through the retained quadratic reference selection loop instead of
	// the incremental bucket queue. The two pick the identical vertex
	// sequence on every graph (TestMISDegreeOrderOracle,
	// FuzzMISDegreeOrder), so the switch never changes a result; it
	// exists for CI byte-identity drills and A/B measurement
	// (wrsn-plan/-bench -mis-rescan).
	Rescan bool
	// Tracer, when non-nil, receives the nested mis/select and
	// mis/update spans plus a mis.degree.bucket or mis.degree.rescan
	// counter tick naming the selection engine that ran.
	Tracer *obs.Tracer
}

// MaximalIndependentSet returns a maximal independent set of g using the
// given strategy, as an ascending slice of vertex indices. rng is used only
// by the seeded strategies and may be nil otherwise. The result is never
// nil for a non-empty graph: every vertex set has a maximal independent
// set.
func MaximalIndependentSet(g *Undirected, order MISOrder, rng *rand.Rand) []int {
	return MaximalIndependentSetWith(g, order, MISConfig{Rng: rng})
}

// MaximalIndependentSetWith is MaximalIndependentSet with the full knob
// set: a randomness source for the seeded strategies, the reference-rescan
// switch for the degree strategies, and an optional tracer.
func MaximalIndependentSetWith(g *Undirected, order MISOrder, cfg MISConfig) []int {
	n := g.Len()
	if n == 0 {
		return nil
	}
	switch order {
	case MISMinDegree, MISMaxDegree:
		return misByDegree(g, order == MISMinDegree, cfg)
	case MISRandom:
		// Each branch computes only its own permutation: the fixed-seed
		// fallback is for a nil source only, never thrown-away work.
		var perm []int
		if cfg.Rng != nil {
			perm = cfg.Rng.Perm(n)
		} else {
			perm = rand.New(rand.NewSource(1)).Perm(n)
		}
		return misScan(g, perm)
	case MISLuby:
		seed := int64(1)
		if cfg.Rng != nil {
			seed = cfg.Rng.Int63()
		}
		return LubyMIS(g, seed)
	default: // MISLexicographic and any unknown value
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return misScan(g, idx)
	}
}

// misScan greedily adds vertices in the given scan order, skipping any
// vertex adjacent to an already-selected one.
func misScan(g *Undirected, scan []int) []int {
	blocked := make([]bool, g.Len())
	var out []int
	for _, v := range scan {
		if blocked[v] {
			continue
		}
		out = append(out, v)
		blocked[v] = true
		for _, w := range g.Neighbors(v) {
			blocked[w] = true
		}
	}
	sort.Ints(out)
	return out
}

// misByDegree repeatedly selects the remaining vertex with minimum (or
// maximum) residual degree, lowest vertex index among ties, removing it
// and its neighbors. The selection runs on the incremental bucket queue
// (bucket.go) — or, when cfg.Rescan asks for it, on the retained quadratic
// reference — and returns the selected vertices sorted ascending. The two
// engines pick the identical vertex sequence; the counters record which
// one ran.
func misByDegree(g *Undirected, wantMin bool, cfg MISConfig) []int {
	var out []int
	if cfg.Rescan {
		cfg.Tracer.Add("mis.degree.rescan", 1)
		out = misByDegreeRescan(g, wantMin, cfg.Tracer)
	} else {
		cfg.Tracer.Add("mis.degree.bucket", 1)
		out = misByDegreeBucket(g, wantMin, cfg.Tracer)
	}
	sort.Ints(out)
	return out
}

// misByDegreeRescan is the reference selection loop: per selection it
// rescans every alive vertex for the extreme residual degree (Θ(n) per
// pick, Θ(n · selections) overall — quadratic on graphs whose MIS grows
// with n). It is retained as the executable specification the bucket
// queue is proven against: the oracle suite and FuzzMISDegreeOrder assert
// sequence equality, and -mis-rescan routes production plans through it
// for CI byte-identity diffs. Returns vertices in selection order.
func misByDegreeRescan(g *Undirected, wantMin bool, tr *obs.Tracer) []int {
	n := g.Len()
	deg := make([]int, n)
	alive := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		alive[v] = true
	}
	remaining := n
	var out []int
	remove := make([]int, 0, 16) // scratch, reused across selections
	var selectD, updateD time.Duration
	for remaining > 0 {
		var t0 time.Time
		if tr != nil {
			t0 = time.Now()
		}
		best := -1
		for v := 0; v < n; v++ {
			if !alive[v] {
				continue
			}
			if best < 0 ||
				(wantMin && deg[v] < deg[best]) ||
				(!wantMin && deg[v] > deg[best]) {
				best = v
			}
		}
		if tr != nil {
			t1 := time.Now()
			selectD += t1.Sub(t0)
			t0 = t1
		}
		out = append(out, best)
		// Remove best and its alive neighbors; fix residual degrees.
		remove = append(remove[:0], best)
		for _, w := range g.Neighbors(best) {
			if alive[w] {
				remove = append(remove, int(w))
			}
		}
		for _, v := range remove {
			alive[v] = false
			remaining--
		}
		for _, v := range remove {
			for _, w := range g.Neighbors(v) {
				if alive[w] {
					deg[w]--
				}
			}
		}
		if tr != nil {
			updateD += time.Since(t0)
		}
	}
	if tr != nil {
		tr.Observe(obs.StageMISSelect, selectD)
		tr.Observe(obs.StageMISUpdate, updateD)
	}
	return out
}

// IsIndependentSet reports whether no two vertices of set are adjacent in g.
func IsIndependentSet(g *Undirected, set []int) bool {
	in := make(map[int]bool, len(set))
	for _, v := range set {
		if v < 0 || v >= g.Len() || in[v] {
			return false
		}
		in[v] = true
	}
	for _, v := range set {
		for _, w := range g.Neighbors(v) {
			if in[int(w)] {
				return false
			}
		}
	}
	return true
}

// IsMaximalIndependentSet reports whether set is independent and no further
// vertex of g can be added to it, i.e. every vertex outside the set has a
// neighbor inside it.
func IsMaximalIndependentSet(g *Undirected, set []int) bool {
	if !IsIndependentSet(g, set) {
		return false
	}
	in := make([]bool, g.Len())
	for _, v := range set {
		in[v] = true
	}
	for v := 0; v < g.Len(); v++ {
		if in[v] {
			continue
		}
		dominated := false
		for _, w := range g.Neighbors(v) {
			if in[w] {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	return true
}
