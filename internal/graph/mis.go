package graph

import (
	"math/rand"
	"sort"
)

// MISOrder selects the vertex-selection strategy for maximal independent
// set construction. All strategies produce a set that is independent and
// maximal; they differ in which maximal set they find, which affects the
// number of sojourn locations Algorithm Appro considers.
type MISOrder int

const (
	// MISLexicographic greedily scans vertices 0..n-1. Deterministic.
	MISLexicographic MISOrder = iota + 1
	// MISMinDegree repeatedly picks a remaining vertex of minimum residual
	// degree. Tends to produce larger independent sets, i.e. denser
	// candidate sojourn coverage. Deterministic.
	MISMinDegree
	// MISMaxDegree repeatedly picks a remaining vertex of maximum residual
	// degree. Tends to produce smaller independent sets, i.e. fewer stops
	// each covering many sensors. Deterministic.
	MISMaxDegree
	// MISRandom scans vertices in an order drawn from the provided source.
	MISRandom
	// MISLuby runs Luby's distributed algorithm (see LubyMIS) with a seed
	// drawn from the provided source. Rounds are goroutine-parallel, so this
	// is the strategy of choice at large n; for a fixed seed the result is
	// deterministic regardless of worker count.
	MISLuby
)

// String implements fmt.Stringer.
func (o MISOrder) String() string {
	switch o {
	case MISLexicographic:
		return "lexicographic"
	case MISMinDegree:
		return "min-degree"
	case MISMaxDegree:
		return "max-degree"
	case MISRandom:
		return "random"
	case MISLuby:
		return "luby"
	default:
		return "unknown"
	}
}

// MaximalIndependentSet returns a maximal independent set of g using the
// given strategy, as an ascending slice of vertex indices. rng is used only
// by MISRandom and may be nil otherwise. The result is never nil for a
// non-empty graph: every vertex set has a maximal independent set.
func MaximalIndependentSet(g *Undirected, order MISOrder, rng *rand.Rand) []int {
	n := g.Len()
	if n == 0 {
		return nil
	}
	switch order {
	case MISMinDegree, MISMaxDegree:
		return misByDegree(g, order == MISMinDegree)
	case MISRandom:
		perm := rand.New(rand.NewSource(1)).Perm(n)
		if rng != nil {
			perm = rng.Perm(n)
		}
		return misScan(g, perm)
	case MISLuby:
		seed := int64(1)
		if rng != nil {
			seed = rng.Int63()
		}
		return LubyMIS(g, seed)
	default: // MISLexicographic and any unknown value
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return misScan(g, idx)
	}
}

// misScan greedily adds vertices in the given scan order, skipping any
// vertex adjacent to an already-selected one.
func misScan(g *Undirected, scan []int) []int {
	blocked := make([]bool, g.Len())
	var out []int
	for _, v := range scan {
		if blocked[v] {
			continue
		}
		out = append(out, v)
		blocked[v] = true
		for _, w := range g.Neighbors(v) {
			blocked[w] = true
		}
	}
	sort.Ints(out)
	return out
}

// misByDegree repeatedly selects a remaining vertex with minimum (or
// maximum) residual degree, removing it and its neighbors. Residual degrees
// are maintained lazily via a bucket scan, giving O(n + m) overall.
func misByDegree(g *Undirected, wantMin bool) []int {
	n := g.Len()
	deg := make([]int, n)
	alive := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		alive[v] = true
	}
	remaining := n
	var out []int
	remove := make([]int, 0, 16) // scratch, reused across selections
	for remaining > 0 {
		best := -1
		for v := 0; v < n; v++ {
			if !alive[v] {
				continue
			}
			if best < 0 ||
				(wantMin && deg[v] < deg[best]) ||
				(!wantMin && deg[v] > deg[best]) {
				best = v
			}
		}
		out = append(out, best)
		// Remove best and its alive neighbors; fix residual degrees.
		remove = append(remove[:0], best)
		for _, w := range g.Neighbors(best) {
			if alive[w] {
				remove = append(remove, int(w))
			}
		}
		for _, v := range remove {
			alive[v] = false
			remaining--
		}
		for _, v := range remove {
			for _, w := range g.Neighbors(v) {
				if alive[w] {
					deg[w]--
				}
			}
		}
	}
	sort.Ints(out)
	return out
}

// IsIndependentSet reports whether no two vertices of set are adjacent in g.
func IsIndependentSet(g *Undirected, set []int) bool {
	in := make(map[int]bool, len(set))
	for _, v := range set {
		if v < 0 || v >= g.Len() || in[v] {
			return false
		}
		in[v] = true
	}
	for _, v := range set {
		for _, w := range g.Neighbors(v) {
			if in[int(w)] {
				return false
			}
		}
	}
	return true
}

// IsMaximalIndependentSet reports whether set is independent and no further
// vertex of g can be added to it, i.e. every vertex outside the set has a
// neighbor inside it.
func IsMaximalIndependentSet(g *Undirected, set []int) bool {
	if !IsIndependentSet(g, set) {
		return false
	}
	in := make([]bool, g.Len())
	for _, v := range set {
		in[v] = true
	}
	for v := 0; v < g.Len(); v++ {
		if in[v] {
			continue
		}
		dominated := false
		for _, w := range g.Neighbors(v) {
			if in[w] {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	return true
}
