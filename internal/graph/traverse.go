package graph

// BFS visits all vertices reachable from src in breadth-first order,
// invoking visit with each vertex and its hop distance from src. It returns
// the number of vertices visited. Visit may be nil.
func BFS(g *Undirected, src int, visit func(v, depth int)) int {
	if src < 0 || src >= g.Len() {
		return 0
	}
	seen := make([]bool, g.Len())
	type item struct{ v, d int }
	queue := []item{{src, 0}}
	seen[src] = true
	count := 0
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		count++
		if visit != nil {
			visit(it.v, it.d)
		}
		for _, w := range g.Neighbors(it.v) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, item{int(w), it.d + 1})
			}
		}
	}
	return count
}

// ConnectedComponents returns, for each vertex, the index of its component
// (components numbered 0..k-1 in order of first appearance), plus the number
// of components.
func ConnectedComponents(g *Undirected) ([]int, int) {
	comp := make([]int, g.Len())
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for v := 0; v < g.Len(); v++ {
		if comp[v] >= 0 {
			continue
		}
		id := next
		next++
		stack := []int{v}
		comp[v] = id
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(u) {
				if comp[w] < 0 {
					comp[w] = id
					stack = append(stack, int(w))
				}
			}
		}
	}
	return comp, next
}

// IsConnected reports whether g has at most one connected component.
func IsConnected(g *Undirected) bool {
	if g.Len() <= 1 {
		return true
	}
	return BFS(g, 0, nil) == g.Len()
}
