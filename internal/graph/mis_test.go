package graph

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randomGraph(rng *rand.Rand, n int, p float64) *Undirected {
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return FromEdges(n, edges)
}

func completeGraph(n int) *Undirected {
	var edges [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, [2]int{u, v})
		}
	}
	return FromEdges(n, edges)
}

func TestMISAllOrdersValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orders := []MISOrder{MISLexicographic, MISMinDegree, MISMaxDegree, MISRandom, MISLuby}
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(60)
		g := randomGraph(rng, n, rng.Float64()*0.5)
		for _, ord := range orders {
			set := MaximalIndependentSet(g, ord, rng)
			if n > 0 && len(set) == 0 {
				t.Fatalf("%v: empty MIS on non-empty graph", ord)
			}
			if !IsIndependentSet(g, set) {
				t.Fatalf("%v: not independent: %v", ord, set)
			}
			if !IsMaximalIndependentSet(g, set) {
				t.Fatalf("%v: not maximal: %v", ord, set)
			}
		}
	}
}

func TestMISEmptyGraph(t *testing.T) {
	g := FromEdges(0, nil)
	if set := MaximalIndependentSet(g, MISLexicographic, nil); set != nil {
		t.Errorf("empty graph: MIS = %v, want nil", set)
	}
}

func TestMISNoEdges(t *testing.T) {
	g := FromEdges(5, nil)
	set := MaximalIndependentSet(g, MISMinDegree, nil)
	if len(set) != 5 {
		t.Errorf("edgeless graph: |MIS| = %d, want 5", len(set))
	}
}

func TestMISCompleteGraph(t *testing.T) {
	g := completeGraph(6)
	for _, ord := range []MISOrder{MISLexicographic, MISMinDegree, MISMaxDegree, MISRandom, MISLuby} {
		set := MaximalIndependentSet(g, ord, rand.New(rand.NewSource(9)))
		if len(set) != 1 {
			t.Errorf("%v: complete graph |MIS| = %d, want 1", ord, len(set))
		}
	}
}

func TestMISStar(t *testing.T) {
	// Star K_{1,5}: min-degree picks leaves (size 5), max-degree picks the
	// hub (size 1).
	g := FromEdges(6, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}})
	if set := MaximalIndependentSet(g, MISMinDegree, nil); len(set) != 5 {
		t.Errorf("min-degree star: |MIS| = %d, want 5", len(set))
	}
	if set := MaximalIndependentSet(g, MISMaxDegree, nil); len(set) != 1 || set[0] != 0 {
		t.Errorf("max-degree star: MIS = %v, want [0]", set)
	}
}

func TestMISUnitDiskPairwiseDistance(t *testing.T) {
	// The defining property Appro relies on: any two nodes of an MIS of
	// the charging graph are more than gamma apart.
	rng := rand.New(rand.NewSource(21))
	const gamma = 2.7
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(200)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		g := UnitDisk(pts, gamma)
		set := MaximalIndependentSet(g, MISMinDegree, nil)
		for i := 0; i < len(set); i++ {
			for j := i + 1; j < len(set); j++ {
				if d := geom.Dist(pts[set[i]], pts[set[j]]); d <= gamma {
					t.Fatalf("MIS nodes %d,%d at distance %v <= gamma", set[i], set[j], d)
				}
			}
		}
	}
}

func TestIsIndependentSetRejectsBadInput(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}})
	if IsIndependentSet(g, []int{0, 1}) {
		t.Error("adjacent pair accepted")
	}
	if IsIndependentSet(g, []int{0, 0}) {
		t.Error("duplicate vertex accepted")
	}
	if IsIndependentSet(g, []int{-1}) || IsIndependentSet(g, []int{7}) {
		t.Error("out-of-range vertex accepted")
	}
	if !IsIndependentSet(g, []int{0, 2}) {
		t.Error("valid set rejected")
	}
	if IsMaximalIndependentSet(g, []int{2}) {
		t.Error("{2} is not maximal: 0 or 1 could be added")
	}
	if !IsMaximalIndependentSet(g, []int{0, 2}) {
		t.Error("{0,2} should be maximal")
	}
}

func TestMISOrderString(t *testing.T) {
	for _, tc := range []struct {
		o    MISOrder
		want string
	}{
		{MISLexicographic, "lexicographic"},
		{MISMinDegree, "min-degree"},
		{MISMaxDegree, "max-degree"},
		{MISRandom, "random"},
		{MISLuby, "luby"},
		{MISOrder(99), "unknown"},
	} {
		if got := tc.o.String(); got != tc.want {
			t.Errorf("String(%d) = %q, want %q", tc.o, got, tc.want)
		}
	}
}

func TestBFSAndComponents(t *testing.T) {
	g := FromEdges(7, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	// 5, 6 isolated.
	depths := map[int]int{}
	n := BFS(g, 0, func(v, d int) { depths[v] = d })
	if n != 3 {
		t.Errorf("BFS visited %d, want 3", n)
	}
	if depths[0] != 0 || depths[1] != 1 || depths[2] != 2 {
		t.Errorf("BFS depths = %v", depths)
	}
	if BFS(g, -1, nil) != 0 || BFS(g, 99, nil) != 0 {
		t.Error("BFS out-of-range src should visit 0")
	}
	comp, k := ConnectedComponents(g)
	if k != 4 {
		t.Errorf("components = %d, want 4", k)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("0,1,2 should share a component")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Error("3,4 should share a distinct component")
	}
	if comp[5] == comp[6] {
		t.Error("isolated vertices should be distinct components")
	}
	if IsConnected(g) {
		t.Error("g is not connected")
	}
	g2 := FromEdges(1, nil)
	if !IsConnected(g2) {
		t.Error("single vertex is connected")
	}
}
