package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/obs"
)

// The oracle contract: the bucket queue must pick the IDENTICAL vertex
// sequence as the retained rescan reference — not merely the same final
// set — for both degree orders, on every graph. Sequence equality is the
// strongest possible statement: it implies every downstream schedule,
// golden objective and plan-cache entry is byte-identical across the two
// engines.

// degreeSequences returns the bucket and rescan selection sequences.
func degreeSequences(g *Undirected, wantMin bool) (bucket, rescan []int) {
	return misByDegreeBucket(g, wantMin, nil), misByDegreeRescan(g, wantMin, nil)
}

func assertSameSequence(t *testing.T, g *Undirected, label string) {
	t.Helper()
	for _, wantMin := range []bool{true, false} {
		order := "max"
		if wantMin {
			order = "min"
		}
		bucket, rescan := degreeSequences(g, wantMin)
		if len(bucket) != len(rescan) {
			t.Fatalf("%s/%s-degree: bucket picked %d vertices, rescan %d",
				label, order, len(bucket), len(rescan))
		}
		for i := range bucket {
			if bucket[i] != rescan[i] {
				t.Fatalf("%s/%s-degree: selection %d diverges: bucket picked %d, rescan %d\nbucket: %v\nrescan: %v",
					label, order, i, bucket[i], rescan[i], bucket, rescan)
			}
		}
		// And the public entry point still returns a valid MIS either way.
		misOrder := MISMaxDegree
		if wantMin {
			misOrder = MISMinDegree
		}
		set := MaximalIndependentSetWith(g, misOrder, MISConfig{})
		if g.Len() > 0 && !IsMaximalIndependentSet(g, set) {
			t.Fatalf("%s/%s-degree: bucket result is not a maximal independent set: %v", label, order, set)
		}
	}
}

// cycleGraph returns the n-cycle (2-regular: every selection is a mass tie).
func cycleGraph(n int) *Undirected {
	edges := make([][2]int, 0, n)
	for v := 0; v < n; v++ {
		edges = append(edges, [2]int{v, (v + 1) % n})
	}
	return FromEdges(n, edges)
}

// matchingGraph returns n/2 disjoint edges (1-regular, maximal degree ties,
// the adversary where a naive per-pop bucket scan degrades to quadratic).
func matchingGraph(n int) *Undirected {
	var edges [][2]int
	for v := 0; v+1 < n; v += 2 {
		edges = append(edges, [2]int{v, v + 1})
	}
	return FromEdges(n, edges)
}

func TestMISDegreeOrderOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))

	t.Run("adversaries", func(t *testing.T) {
		cases := map[string]*Undirected{
			"empty":             FromEdges(0, nil),
			"single-vertex":     FromEdges(1, nil),
			"edgeless-ties":     FromEdges(23, nil), // every vertex isolated: one big degree-0 tie
			"star":              FromEdges(10, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7}, {0, 8}, {0, 9}}),
			"reverse-star":      FromEdges(10, [][2]int{{9, 0}, {9, 1}, {9, 2}, {9, 3}, {9, 4}, {9, 5}, {9, 6}, {9, 7}, {9, 8}}),
			"double-star":       FromEdges(9, [][2]int{{0, 2}, {0, 3}, {0, 4}, {1, 5}, {1, 6}, {1, 7}, {0, 1}, {1, 8}}),
			"complete":          completeGraph(9),
			"cycle-regular":     cycleGraph(40),
			"matching-ties":     matchingGraph(60),
			"path":              FromEdges(12, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9}, {9, 10}, {10, 11}}),
			"isolated-vertices": FromEdges(14, [][2]int{{3, 5}, {5, 9}, {9, 3}, {10, 11}}), // triangles + edge + isolates
		}
		for label, g := range cases {
			assertSameSequence(t, g, label)
		}
	})

	t.Run("random-gnp", func(t *testing.T) {
		for trial := 0; trial < 40; trial++ {
			n := rng.Intn(90)
			g := randomGraph(rng, n, rng.Float64())
			assertSameSequence(t, g, fmt.Sprintf("gnp-trial-%d-n%d", trial, n))
		}
	})

	t.Run("random-geometric", func(t *testing.T) {
		// The production shape: unit-disk charging graphs over uniform
		// deployments at the paper's density, including radii that make
		// the graph dense (mass ties) and nearly edgeless.
		for trial := 0; trial < 20; trial++ {
			n := 30 + rng.Intn(300)
			pts := make([]geom.Point, n)
			for i := range pts {
				pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
			}
			radius := []float64{1, 2.7, 8, 30}[trial%4]
			g := UnitDisk(pts, radius)
			assertSameSequence(t, g, fmt.Sprintf("geo-trial-%d-n%d-r%.1f", trial, n, radius))
		}
	})
}

// TestMISDegreeRescanSwitch proves the public switch routes to the
// reference engine and that both spellings return identical ascending
// sets, with the decision counters naming the engine that ran.
func TestMISDegreeRescanSwitch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 70, 0.1)
	for _, order := range []MISOrder{MISMinDegree, MISMaxDegree} {
		trBucket, trRescan := obs.New(), obs.New()
		bucket := MaximalIndependentSetWith(g, order, MISConfig{Tracer: trBucket})
		rescan := MaximalIndependentSetWith(g, order, MISConfig{Rescan: true, Tracer: trRescan})
		if len(bucket) != len(rescan) {
			t.Fatalf("%v: set sizes differ: %d vs %d", order, len(bucket), len(rescan))
		}
		for i := range bucket {
			if bucket[i] != rescan[i] {
				t.Fatalf("%v: sets differ at %d: %v vs %v", order, i, bucket, rescan)
			}
		}
		if c := trBucket.Report().Counters; c["mis.degree.bucket"] != 1 || c["mis.degree.rescan"] != 0 {
			t.Errorf("%v: bucket run counters = %v", order, c)
		}
		if c := trRescan.Report().Counters; c["mis.degree.rescan"] != 1 || c["mis.degree.bucket"] != 0 {
			t.Errorf("%v: rescan run counters = %v", order, c)
		}
		// Both engines record the nested sub-spans.
		for _, tr := range []*obs.Tracer{trBucket, trRescan} {
			r := tr.Report()
			seen := map[string]bool{}
			for _, st := range r.Stages {
				seen[st.Name] = true
			}
			if !seen[obs.StageMISSelect] || !seen[obs.StageMISUpdate] {
				t.Errorf("%v: missing nested mis spans in %v", order, r.Stages)
			}
		}
	}
}

// TestMISRandomComputesPermOncePerBranch is the regression test for the
// MISRandom double-perm bug: the fixed-seed fallback permutation used to
// be computed unconditionally and thrown away whenever a source was
// supplied. The fix computes each permutation only on its own branch; the
// output contract is unchanged on both branches.
func TestMISRandomComputesPermOncePerBranch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 10+rng.Intn(50), rng.Float64()*0.4)
		seed := rng.Int63()

		// Seeded branch: identical to scanning the supplied source's perm.
		got := MaximalIndependentSet(g, MISRandom, rand.New(rand.NewSource(seed)))
		want := misScan(g, rand.New(rand.NewSource(seed)).Perm(g.Len()))
		if !equalInts(got, want) {
			t.Fatalf("seed %d: MISRandom = %v, want misScan over the source's perm %v", seed, got, want)
		}

		// Nil-source branch: identical to the documented seed-1 fallback.
		got = MaximalIndependentSet(g, MISRandom, nil)
		want = misScan(g, rand.New(rand.NewSource(1)).Perm(g.Len()))
		if !equalInts(got, want) {
			t.Fatalf("nil rng: MISRandom = %v, want seed-1 fallback %v", got, want)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzMISDegreeOrder fuzzes arbitrary graphs against the sequence-equality
// oracle: the bucket queue and the rescan reference must agree pick for
// pick under both degree orders. Run in CI as a 10s smoke.
func FuzzMISDegreeOrder(f *testing.F) {
	f.Add(uint8(0), []byte{})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(7), []byte{0, 1, 1, 2, 2, 3})
	f.Add(uint8(12), []byte{0, 1, 0, 2, 0, 3, 0, 4, 0, 5})
	f.Add(uint8(40), bytes.Repeat([]byte{3, 9, 17, 4}, 20))
	f.Add(uint8(64), []byte{255, 254, 253, 252, 1, 2, 3, 4, 9, 9, 8, 8})
	f.Fuzz(func(t *testing.T, n uint8, data []byte) {
		nv := int(n) % 64
		var edges [][2]int
		for i := 0; i+1 < len(data); i += 2 {
			u, v := int(data[i])%max(nv, 1), int(data[i+1])%max(nv, 1)
			if u != v && nv > 0 {
				edges = append(edges, [2]int{u, v})
			}
		}
		g := FromEdges(nv, edges) // dedups both orientations
		for _, wantMin := range []bool{true, false} {
			bucket, rescan := degreeSequences(g, wantMin)
			if !equalInts(bucket, rescan) {
				t.Fatalf("wantMin=%v: sequences diverge on n=%d edges=%v\nbucket: %v\nrescan: %v",
					wantMin, nv, edges, bucket, rescan)
			}
		}
	})
}

// BenchmarkMISDegree pits the two selection engines on a production-shaped
// unit-disk graph (the paper's density). The rescan is Θ(n·|MIS|); the
// bucket queue is near-linear.
func BenchmarkMISDegree(b *testing.B) {
	for _, n := range []int{1200, 10000} {
		rng := rand.New(rand.NewSource(1))
		side := 0.0
		for side*side*0.12 < float64(n) {
			side += 1
		}
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
		}
		g := UnitDisk(pts, 2.7)
		for _, engine := range []string{"bucket", "rescan"} {
			b.Run(fmt.Sprintf("%s/n=%d", engine, n), func(b *testing.B) {
				rescan := engine == "rescan"
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = MaximalIndependentSetWith(g, MISMaxDegree, MISConfig{Rescan: rescan})
				}
			})
		}
	}
}
