// Package graph provides the undirected-graph machinery the scheduling
// algorithms are built on: adjacency-list graphs, unit-disk graph
// construction over point sets, maximal independent sets (the heart of
// Algorithm Appro's steps 2 and 4), and basic traversal utilities.
package graph

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// Undirected is a simple undirected graph on vertices 0..n-1 with
// adjacency lists. Self-loops and parallel edges are rejected.
type Undirected struct {
	adj   [][]int32
	edges int
}

// NewUndirected returns an empty graph on n vertices.
func NewUndirected(n int) *Undirected {
	if n < 0 {
		n = 0
	}
	return &Undirected{adj: make([][]int32, n)}
}

// Len returns the number of vertices.
func (g *Undirected) Len() int { return len(g.adj) }

// NumEdges returns the number of edges.
func (g *Undirected) NumEdges() int { return g.edges }

// AddEdge inserts the undirected edge {u, v}. It panics on out-of-range
// vertices or self-loops, and is a no-op if the edge already exists.
func (g *Undirected) AddEdge(u, v int) {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.adj)))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	if g.HasEdge(u, v) {
		return
	}
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
	g.edges++
}

// HasEdge reports whether the edge {u, v} exists.
func (g *Undirected) HasEdge(u, v int) bool {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return false
	}
	a := g.adj[u]
	if len(g.adj[v]) < len(a) {
		a, u, v = g.adj[v], v, u
	}
	for _, w := range a {
		if int(w) == v {
			return true
		}
	}
	return false
}

// Degree returns the degree of vertex u.
func (g *Undirected) Degree(u int) int { return len(g.adj[u]) }

// MaxDegree returns the maximum vertex degree, or 0 for an empty graph.
func (g *Undirected) MaxDegree() int {
	max := 0
	for _, a := range g.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// Neighbors returns the adjacency list of u. The returned slice is owned by
// the graph and must not be modified.
func (g *Undirected) Neighbors(u int) []int32 { return g.adj[u] }

// NeighborsSorted returns a sorted copy of u's adjacency list.
func (g *Undirected) NeighborsSorted(u int) []int {
	out := make([]int, len(g.adj[u]))
	for i, w := range g.adj[u] {
		out[i] = int(w)
	}
	sort.Ints(out)
	return out
}

// UnitDisk builds the graph on pts with an edge between every pair at
// Euclidean distance <= radius. This is the paper's charging graph G_c when
// radius is the charging range gamma, and (with the transmission range) the
// communication graph G_s. Construction uses a spatial grid and costs
// O(n + m) expected time.
func UnitDisk(pts []geom.Point, radius float64) *Undirected {
	g := NewUndirected(len(pts))
	if radius < 0 || len(pts) == 0 {
		return g
	}
	cell := radius
	if cell <= 0 {
		cell = 1
	}
	grid := geom.NewGrid(pts, cell)
	var buf []int
	for u := range pts {
		buf = grid.NeighborsOf(u, radius, buf)
		for _, v := range buf {
			if v > u { // each pair once
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// IntersectionGraph builds the paper's auxiliary graph H over the points
// indexed by nodes: there is an edge between two nodes iff their disks of
// the given radius intersect a common point of pts, i.e. the closed
// neighborhoods N_c+(u) and N_c+(v) (taken over pts) share a sensor. For
// points in general position this is implied by distance < 2*radius, but
// the definition used here is the paper's exact set-intersection condition.
//
// nodes are indices into pts. The resulting graph has len(nodes) vertices,
// vertex i standing for pts[nodes[i]].
func IntersectionGraph(pts []geom.Point, nodes []int, radius float64) *Undirected {
	h := NewUndirected(len(nodes))
	if radius < 0 || len(nodes) == 0 {
		return h
	}
	// coverSets[i] = sorted sensor indices within radius of nodes[i].
	grid := geom.NewGrid(pts, radius)
	coverSets := make([][]int, len(nodes))
	var buf []int
	for i, nd := range nodes {
		buf = grid.Neighbors(pts[nd], radius, buf)
		cs := make([]int, len(buf))
		copy(cs, buf)
		sort.Ints(cs)
		coverSets[i] = cs
	}
	// Candidate pairs are nodes within 2*radius of each other; check the
	// exact intersection condition on each candidate.
	nodePts := make([]geom.Point, len(nodes))
	for i, nd := range nodes {
		nodePts[i] = pts[nd]
	}
	ngrid := geom.NewGrid(nodePts, 2*radius)
	for i := range nodes {
		buf = ngrid.NeighborsOf(i, 2*radius, buf)
		for _, j := range buf {
			if j <= i {
				continue
			}
			if sortedIntersect(coverSets[i], coverSets[j]) {
				h.AddEdge(i, j)
			}
		}
	}
	return h
}

// sortedIntersect reports whether two ascending int slices share an element.
func sortedIntersect(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}
