// Package graph provides the undirected-graph machinery the scheduling
// algorithms are built on: frozen CSR adjacency graphs, unit-disk graph
// construction over point sets, maximal independent sets (the heart of
// Algorithm Appro's steps 2 and 4), and basic traversal utilities.
package graph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Undirected is a simple undirected graph on vertices 0..n-1, stored as a
// frozen compressed-sparse-row (CSR) adjacency: one flat arc array plus
// per-vertex offsets. Graphs are immutable once built — construct them with
// UnitDisk, IntersectionGraph, or FromEdges. The flat layout halves memory
// versus per-vertex slices (no slice headers, no growth slack) and makes
// neighbor scans a single contiguous read.
type Undirected struct {
	off   []int32 // len n+1; vertex u's arcs live in adj[off[u]:off[u+1]]
	adj   []int32 // len 2*edges; both directions of every edge
	edges int
}

// emptyGraph returns a graph on n vertices with no edges.
func emptyGraph(n int) *Undirected {
	if n < 0 {
		n = 0
	}
	return &Undirected{off: make([]int32, n+1)}
}

// FromEdges builds the graph on n vertices containing the given edges.
// Duplicate edges (in either orientation) are collapsed. It panics on
// out-of-range vertices or self-loops. Adjacency lists come out ascending.
func FromEdges(n int, edges [][2]int) *Undirected {
	if n < 0 {
		n = 0
	}
	// Materialize both directed arcs per edge, then sort+dedup: the CSR
	// fill becomes a single linear sweep and rows come out sorted.
	arcs := make([]int64, 0, 2*len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || u >= n || v < 0 || v >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, n))
		}
		if u == v {
			panic(fmt.Sprintf("graph: self-loop at %d", u))
		}
		arcs = append(arcs, int64(u)<<32|int64(v), int64(v)<<32|int64(u))
	}
	sort.Slice(arcs, func(i, j int) bool { return arcs[i] < arcs[j] })
	g := &Undirected{off: make([]int32, n+1), adj: make([]int32, 0, len(arcs))}
	var prev int64 = -1
	for _, a := range arcs {
		if a == prev {
			continue
		}
		prev = a
		g.adj = append(g.adj, int32(a&0xffffffff))
		g.off[a>>32+1]++
	}
	for i := 0; i < n; i++ {
		g.off[i+1] += g.off[i]
	}
	g.edges = len(g.adj) / 2
	return g
}

// Len returns the number of vertices.
func (g *Undirected) Len() int { return len(g.off) - 1 }

// NumEdges returns the number of edges.
func (g *Undirected) NumEdges() int { return g.edges }

// HasEdge reports whether the edge {u, v} exists.
func (g *Undirected) HasEdge(u, v int) bool {
	n := g.Len()
	if u < 0 || u >= n || v < 0 || v >= n {
		return false
	}
	if g.Degree(v) < g.Degree(u) {
		u, v = v, u
	}
	for _, w := range g.Neighbors(u) {
		if int(w) == v {
			return true
		}
	}
	return false
}

// Degree returns the degree of vertex u.
func (g *Undirected) Degree(u int) int { return int(g.off[u+1] - g.off[u]) }

// MaxDegree returns the maximum vertex degree, or 0 for an empty graph.
func (g *Undirected) MaxDegree() int {
	max := 0
	for u := 0; u < g.Len(); u++ {
		if d := g.Degree(u); d > max {
			max = d
		}
	}
	return max
}

// Neighbors returns the adjacency list of u. The returned slice is owned by
// the graph and must not be modified.
func (g *Undirected) Neighbors(u int) []int32 { return g.adj[g.off[u]:g.off[u+1]] }

// NeighborsSorted returns a sorted copy of u's adjacency list.
func (g *Undirected) NeighborsSorted(u int) []int {
	ns := g.Neighbors(u)
	out := make([]int, len(ns))
	for i, w := range ns {
		out[i] = int(w)
	}
	sort.Ints(out)
	return out
}

// fromArcs freezes a CSR graph from per-vertex degrees and an emit callback.
// emit is invoked once and must call put(u, v) for each directed arc exactly
// as counted in deg; put writes v into u's row at the next free cursor, so
// arc emission order fixes the row order.
func fromArcs(n int, deg []int32, emit func(put func(u, v int))) *Undirected {
	total := int64(0)
	for _, d := range deg {
		total += int64(d)
	}
	if total > math.MaxInt32 {
		panic(fmt.Sprintf("graph: %d arcs overflow int32 offsets", total))
	}
	off := make([]int32, n+1)
	for i, d := range deg {
		off[i+1] = off[i] + d
	}
	adj := make([]int32, total)
	cur := append([]int32(nil), off[:n]...)
	emit(func(u, v int) {
		adj[cur[u]] = int32(v)
		cur[u]++
	})
	return &Undirected{off: off, adj: adj, edges: int(total) / 2}
}

// UnitDisk builds the graph on pts with an edge between every pair at
// Euclidean distance <= radius. This is the paper's charging graph G_c when
// radius is the charging range gamma, and (with the transmission range) the
// communication graph G_s. Construction makes two spatial-grid passes —
// count degrees, then fill the frozen CSR rows — and costs O(n + m)
// expected time with no per-edge dedup scans.
func UnitDisk(pts []geom.Point, radius float64) *Undirected {
	n := len(pts)
	if radius < 0 || n == 0 {
		return emptyGraph(n)
	}
	cell := radius
	if cell <= 0 {
		cell = 1
	}
	grid := geom.NewGrid(pts, cell)
	deg := make([]int32, n)
	var buf []int
	for u := range pts {
		buf = grid.NeighborsOf(u, radius, buf)
		for _, v := range buf {
			if v > u { // each pair once
				deg[u]++
				deg[v]++
			}
		}
	}
	return fromArcs(n, deg, func(put func(u, v int)) {
		// Same query order as the count pass: for each u ascending, the
		// neighbors v > u in grid order. Row u therefore holds its lower
		// neighbors ascending, then its upper neighbors in grid order —
		// identical to the append order of incremental construction.
		for u := range pts {
			buf = grid.NeighborsOf(u, radius, buf)
			for _, v := range buf {
				if v > u {
					put(u, v)
					put(v, u)
				}
			}
		}
	})
}

// IntersectionGraph builds the paper's auxiliary graph H over the points
// indexed by nodes: there is an edge between two nodes iff their disks of
// the given radius intersect a common point of pts, i.e. the closed
// neighborhoods N_c+(u) and N_c+(v) (taken over pts) share a sensor. For
// points in general position this is implied by distance < 2*radius, but
// the definition used here is the paper's exact set-intersection condition.
//
// nodes are indices into pts. The resulting graph has len(nodes) vertices,
// vertex i standing for pts[nodes[i]].
func IntersectionGraph(pts []geom.Point, nodes []int, radius float64) *Undirected {
	n := len(nodes)
	if radius < 0 || n == 0 {
		return emptyGraph(n)
	}
	// Cover sets live in one flat arena: covArena[covOff[i]:covOff[i+1]] =
	// sorted sensor indices within radius of nodes[i].
	grid := geom.NewGrid(pts, radius)
	covOff := make([]int32, n+1)
	var covArena []int
	var buf []int
	for i, nd := range nodes {
		buf = grid.Neighbors(pts[nd], radius, buf)
		covArena = append(covArena, buf...)
		covOff[i+1] = int32(len(covArena))
		sort.Ints(covArena[covOff[i]:])
	}
	cover := func(i int) []int { return covArena[covOff[i]:covOff[i+1]] }
	// Candidate pairs are nodes within 2*radius of each other; check the
	// exact intersection condition on each candidate. The expensive set
	// intersection runs once per pair: accepted pairs are buffered in
	// discovery order, then counted and filled into the CSR rows.
	nodePts := make([]geom.Point, n)
	for i, nd := range nodes {
		nodePts[i] = pts[nd]
	}
	ngrid := geom.NewGrid(nodePts, 2*radius)
	var pairs [][2]int32
	deg := make([]int32, n)
	for i := range nodes {
		buf = ngrid.NeighborsOf(i, 2*radius, buf)
		for _, j := range buf {
			if j <= i {
				continue
			}
			if sortedIntersect(cover(i), cover(j)) {
				pairs = append(pairs, [2]int32{int32(i), int32(j)})
				deg[i]++
				deg[j]++
			}
		}
	}
	return fromArcs(n, deg, func(put func(u, v int)) {
		// Discovery order reproduces incremental append order (lower
		// neighbors ascending, then upper neighbors in grid order).
		for _, p := range pairs {
			put(int(p[0]), int(p[1]))
			put(int(p[1]), int(p[0]))
		}
	})
}

// sortedIntersect reports whether two ascending int slices share an element.
func sortedIntersect(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}
