package graph

import (
	"runtime"
	"sort"
	"sync"
)

// LubyMIS computes a maximal independent set with Luby's classic
// distributed algorithm: in each round every remaining vertex draws a
// priority, joins the set iff its priority beats all remaining neighbors',
// and winners' neighborhoods drop out. Rounds are data-parallel and run
// across min(GOMAXPROCS, 8) goroutines, mirroring how the computation
// would be sharded across machines; with high probability the algorithm
// finishes in O(log n) rounds.
//
// Priorities are derived by hashing (seed, round, vertex), so the result
// is deterministic for a fixed seed regardless of goroutine interleaving.
// The returned set is ascending and satisfies IsMaximalIndependentSet.
func LubyMIS(g *Undirected, seed int64) []int {
	n := g.Len()
	if n == 0 {
		return nil
	}
	const (
		stateAlive = iota
		stateInSet
		stateRemoved
	)
	state := make([]int8, n)
	alive := n
	var out []int

	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	if workers < 1 {
		workers = 1
	}

	priority := func(round, v int) uint64 {
		return splitmix64(uint64(seed) ^ uint64(round)*0x9e3779b97f4a7c15 ^ uint64(v)*0xbf58476d1ce4e5b9)
	}

	// parallelFor runs fn over [0, n) sharded across the workers and
	// waits for completion.
	parallelFor := func(fn func(lo, hi int)) {
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if lo >= n {
				break
			}
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				fn(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}

	winners := make([]bool, n)
	for round := 0; alive > 0; round++ {
		// Phase 1 (parallel, read-only on state): local minima win.
		// Ties break toward the lower vertex index, so two adjacent
		// vertices can never both win.
		parallelFor(func(lo, hi int) {
			for v := lo; v < hi; v++ {
				winners[v] = false
				if state[v] != stateAlive {
					continue
				}
				pv := priority(round, v)
				win := true
				for _, w := range g.Neighbors(v) {
					if state[w] != stateAlive {
						continue
					}
					pw := priority(round, int(w))
					if pw < pv || (pw == pv && int(w) < v) {
						win = false
						break
					}
				}
				winners[v] = win
			}
		})
		// Phase 2 (sequential, cheap): commit winners, drop neighbors.
		for v := 0; v < n; v++ {
			if !winners[v] || state[v] != stateAlive {
				continue
			}
			state[v] = stateInSet
			alive--
			out = append(out, v)
			for _, w := range g.Neighbors(v) {
				if state[w] == stateAlive {
					state[w] = stateRemoved
					alive--
				}
			}
		}
	}
	sort.Ints(out)
	return out
}

// splitmix64 is the SplitMix64 finalizer, a strong 64-bit mixing function.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
