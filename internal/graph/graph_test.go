package graph

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func TestUndirectedBasics(t *testing.T) {
	if g := FromEdges(4, nil); g.Len() != 4 || g.NumEdges() != 0 {
		t.Fatalf("empty graph: Len=%d NumEdges=%d", g.Len(), g.NumEdges())
	}
	// Duplicate edges (either orientation) collapse.
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {0, 1}, {1, 0}})
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge(0,1) should be true both directions")
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge(0,2) should be false")
	}
	if g.HasEdge(-1, 2) || g.HasEdge(0, 99) {
		t.Error("HasEdge out of range should be false")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Errorf("degrees wrong: deg(1)=%d deg(3)=%d", g.Degree(1), g.Degree(3))
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d, want 2", g.MaxDegree())
	}
	ns := g.NeighborsSorted(1)
	if len(ns) != 2 || ns[0] != 0 || ns[1] != 2 {
		t.Errorf("NeighborsSorted(1) = %v", ns)
	}
}

func TestFromEdgesPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		u, v int
	}{
		{"self loop", 0, 0},
		{"u out of range", -1, 1},
		{"v out of range", 0, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("FromEdges with (%d,%d) did not panic", tc.u, tc.v)
				}
			}()
			FromEdges(2, [][2]int{{tc.u, tc.v}})
		})
	}
}

// referenceAdjacency builds per-vertex adjacency lists by incremental
// append — the representation the CSR builders replaced — running the
// same pair-once grid loops, so both the edge sets and the within-row
// neighbor order of the frozen builders can be checked exactly.
func referenceAdjacency(n int, pairs func(emit func(u, v int))) [][]int32 {
	adj := make([][]int32, n)
	pairs(func(u, v int) {
		adj[u] = append(adj[u], int32(v))
		adj[v] = append(adj[v], int32(u))
	})
	return adj
}

func checkAgainstReference(t *testing.T, g *Undirected, ref [][]int32) {
	t.Helper()
	if g.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", g.Len(), len(ref))
	}
	for u := range ref {
		got := g.Neighbors(u)
		if len(got) != len(ref[u]) {
			t.Fatalf("vertex %d: %d neighbors, want %d", u, len(got), len(ref[u]))
		}
		for i := range got {
			if got[i] != ref[u][i] {
				t.Fatalf("vertex %d: neighbor order diverged at %d: got %v, want %v",
					u, i, got, ref[u])
			}
		}
	}
}

// TestUnitDiskCSRMatchesReferenceOrder property-tests that the two-pass
// CSR UnitDisk reproduces the incremental builder's adjacency byte for
// byte — including within-row neighbor order, which downstream tiebreaks
// (latestNeighborFinish in core) observe.
func TestUnitDiskCSRMatchesReferenceOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(300)
		side := 5 + rng.Float64()*60
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
		}
		r := 0.5 + rng.Float64()*6
		g := UnitDisk(pts, r)
		cell := r
		grid := geom.NewGrid(pts, cell)
		var buf []int
		ref := referenceAdjacency(n, func(emit func(u, v int)) {
			for u := range pts {
				buf = grid.NeighborsOf(u, r, buf)
				for _, v := range buf {
					if v > u {
						emit(u, v)
					}
				}
			}
		})
		checkAgainstReference(t, g, ref)
	}
}

// TestIntersectionGraphCSRMatchesReferenceOrder does the same for the
// auxiliary graph H: candidate pairs in grid order, accepted by the exact
// cover-set intersection condition, appended incrementally.
func TestIntersectionGraphCSRMatchesReferenceOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(250)
		side := 5 + rng.Float64()*50
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*side, rng.Float64()*side)
		}
		r := 0.5 + rng.Float64()*4
		var nodes []int
		for i := range pts {
			if rng.Float64() < 0.4 {
				nodes = append(nodes, i)
			}
		}
		h := IntersectionGraph(pts, nodes, r)
		grid := geom.NewGrid(pts, r)
		coverSets := make([][]int, len(nodes))
		var buf []int
		for i, nd := range nodes {
			buf = grid.Neighbors(pts[nd], r, buf)
			cs := make([]int, len(buf))
			copy(cs, buf)
			sort.Ints(cs)
			coverSets[i] = cs
		}
		nodePts := make([]geom.Point, len(nodes))
		for i, nd := range nodes {
			nodePts[i] = pts[nd]
		}
		var ref [][]int32
		if len(nodes) > 0 {
			ngrid := geom.NewGrid(nodePts, 2*r)
			ref = referenceAdjacency(len(nodes), func(emit func(u, v int)) {
				for i := range nodes {
					buf = ngrid.NeighborsOf(i, 2*r, buf)
					for _, j := range buf {
						if j > i && sortedIntersect(coverSets[i], coverSets[j]) {
							emit(i, j)
						}
					}
				}
			})
		}
		checkAgainstReference(t, h, ref)
	}
}

func TestUnitDisk(t *testing.T) {
	// Four points on a line spaced 1 apart; radius 1 connects only
	// consecutive pairs, radius 2 also skips one.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0)}
	g1 := UnitDisk(pts, 1)
	if g1.NumEdges() != 3 {
		t.Errorf("radius 1: NumEdges = %d, want 3", g1.NumEdges())
	}
	g2 := UnitDisk(pts, 2)
	if g2.NumEdges() != 5 {
		t.Errorf("radius 2: NumEdges = %d, want 5", g2.NumEdges())
	}
	if g := UnitDisk(nil, 1); g.Len() != 0 {
		t.Error("UnitDisk(nil) should be empty")
	}
	if g := UnitDisk(pts, -1); g.NumEdges() != 0 {
		t.Error("negative radius should give no edges")
	}
}

func TestUnitDiskMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(200)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*50, rng.Float64()*50)
		}
		r := 0.5 + rng.Float64()*8
		g := UnitDisk(pts, r)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				want := geom.Within(pts[u], pts[v], r)
				if got := g.HasEdge(u, v); got != want {
					t.Fatalf("trial %d: edge (%d,%d) = %v, want %v (d=%v r=%v)",
						trial, u, v, got, want, geom.Dist(pts[u], pts[v]), r)
				}
			}
		}
	}
}

func TestIntersectionGraph(t *testing.T) {
	// Sensors: two clusters. Nodes u=0 at (0,0) and v=3 at (1.8,0) with
	// radius 1: disks overlap geometrically, and sensor 1 at (0.9,0) is in
	// both coverage sets, so H must have the edge. Node w=4 at (5,0) shares
	// nothing.
	pts := []geom.Point{
		geom.Pt(0, 0),   // 0: node u
		geom.Pt(0.9, 0), // 1: shared sensor
		geom.Pt(2.2, 0), // 2: only near v
		geom.Pt(1.8, 0), // 3: node v
		geom.Pt(5, 0),   // 4: node w
	}
	h := IntersectionGraph(pts, []int{0, 3, 4}, 1)
	if h.Len() != 3 {
		t.Fatalf("H.Len = %d", h.Len())
	}
	if !h.HasEdge(0, 1) {
		t.Error("expected edge between nodes 0 and 3 (shared sensor)")
	}
	if h.HasEdge(0, 2) || h.HasEdge(1, 2) {
		t.Error("node at (5,0) should be isolated in H")
	}
}

func TestIntersectionGraphNoSharedSensor(t *testing.T) {
	// Two nodes whose disks geometrically overlap but with NO sensor in
	// the shared lens: the paper's condition N_c+(u) ∩ N_c+(v) ≠ ∅ is on
	// sensor sets, so there must be no edge.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1.9, 0)}
	h := IntersectionGraph(pts, []int{0, 1}, 1)
	if h.HasEdge(0, 1) {
		t.Error("no shared sensor: H should have no edge")
	}
}

func TestIntersectionGraphEmpty(t *testing.T) {
	if h := IntersectionGraph(nil, nil, 1); h.Len() != 0 {
		t.Error("empty inputs should give empty graph")
	}
}
