package graph

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestUndirectedBasics(t *testing.T) {
	g := NewUndirected(4)
	if g.Len() != 4 || g.NumEdges() != 0 {
		t.Fatalf("empty graph: Len=%d NumEdges=%d", g.Len(), g.NumEdges())
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1) // duplicate ignored
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge(0,1) should be true both directions")
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge(0,2) should be false")
	}
	if g.HasEdge(-1, 2) || g.HasEdge(0, 99) {
		t.Error("HasEdge out of range should be false")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Errorf("degrees wrong: deg(1)=%d deg(3)=%d", g.Degree(1), g.Degree(3))
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d, want 2", g.MaxDegree())
	}
	ns := g.NeighborsSorted(1)
	if len(ns) != 2 || ns[0] != 0 || ns[1] != 2 {
		t.Errorf("NeighborsSorted(1) = %v", ns)
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := NewUndirected(2)
	for _, tc := range []struct {
		name string
		u, v int
	}{
		{"self loop", 0, 0},
		{"u out of range", -1, 1},
		{"v out of range", 0, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("AddEdge(%d,%d) did not panic", tc.u, tc.v)
				}
			}()
			g.AddEdge(tc.u, tc.v)
		})
	}
}

func TestUnitDisk(t *testing.T) {
	// Four points on a line spaced 1 apart; radius 1 connects only
	// consecutive pairs, radius 2 also skips one.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0)}
	g1 := UnitDisk(pts, 1)
	if g1.NumEdges() != 3 {
		t.Errorf("radius 1: NumEdges = %d, want 3", g1.NumEdges())
	}
	g2 := UnitDisk(pts, 2)
	if g2.NumEdges() != 5 {
		t.Errorf("radius 2: NumEdges = %d, want 5", g2.NumEdges())
	}
	if g := UnitDisk(nil, 1); g.Len() != 0 {
		t.Error("UnitDisk(nil) should be empty")
	}
	if g := UnitDisk(pts, -1); g.NumEdges() != 0 {
		t.Error("negative radius should give no edges")
	}
}

func TestUnitDiskMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(200)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*50, rng.Float64()*50)
		}
		r := 0.5 + rng.Float64()*8
		g := UnitDisk(pts, r)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				want := geom.Within(pts[u], pts[v], r)
				if got := g.HasEdge(u, v); got != want {
					t.Fatalf("trial %d: edge (%d,%d) = %v, want %v (d=%v r=%v)",
						trial, u, v, got, want, geom.Dist(pts[u], pts[v]), r)
				}
			}
		}
	}
}

func TestIntersectionGraph(t *testing.T) {
	// Sensors: two clusters. Nodes u=0 at (0,0) and v=3 at (1.8,0) with
	// radius 1: disks overlap geometrically, and sensor 1 at (0.9,0) is in
	// both coverage sets, so H must have the edge. Node w=4 at (5,0) shares
	// nothing.
	pts := []geom.Point{
		geom.Pt(0, 0),   // 0: node u
		geom.Pt(0.9, 0), // 1: shared sensor
		geom.Pt(2.2, 0), // 2: only near v
		geom.Pt(1.8, 0), // 3: node v
		geom.Pt(5, 0),   // 4: node w
	}
	h := IntersectionGraph(pts, []int{0, 3, 4}, 1)
	if h.Len() != 3 {
		t.Fatalf("H.Len = %d", h.Len())
	}
	if !h.HasEdge(0, 1) {
		t.Error("expected edge between nodes 0 and 3 (shared sensor)")
	}
	if h.HasEdge(0, 2) || h.HasEdge(1, 2) {
		t.Error("node at (5,0) should be isolated in H")
	}
}

func TestIntersectionGraphNoSharedSensor(t *testing.T) {
	// Two nodes whose disks geometrically overlap but with NO sensor in
	// the shared lens: the paper's condition N_c+(u) ∩ N_c+(v) ≠ ∅ is on
	// sensor sets, so there must be no edge.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1.9, 0)}
	h := IntersectionGraph(pts, []int{0, 1}, 1)
	if h.HasEdge(0, 1) {
		t.Error("no shared sensor: H should have no edge")
	}
}

func TestIntersectionGraphEmpty(t *testing.T) {
	if h := IntersectionGraph(nil, nil, 1); h.Len() != 0 {
		t.Error("empty inputs should give empty graph")
	}
}
