package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestLubyMISValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(200)
		g := randomGraph(rng, n, rng.Float64()*0.3)
		set := LubyMIS(g, int64(trial))
		if !IsMaximalIndependentSet(g, set) {
			t.Fatalf("trial %d: Luby set not a maximal independent set", trial)
		}
	}
}

func TestLubyMISEmptyAndEdgeless(t *testing.T) {
	if set := LubyMIS(FromEdges(0, nil), 1); set != nil {
		t.Errorf("empty graph: %v", set)
	}
	set := LubyMIS(FromEdges(7, nil), 1)
	if len(set) != 7 {
		t.Errorf("edgeless: |set| = %d, want 7", len(set))
	}
}

func TestLubyMISCompleteGraph(t *testing.T) {
	g := completeGraph(10)
	if set := LubyMIS(g, 3); len(set) != 1 {
		t.Errorf("complete graph: |set| = %d, want 1", len(set))
	}
}

func TestLubyMISDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 150, 0.1)
	a := LubyMIS(g, 42)
	for rerun := 0; rerun < 5; rerun++ {
		b := LubyMIS(g, 42)
		if len(a) != len(b) {
			t.Fatal("same seed, different sizes")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("same seed, different sets (parallel nondeterminism)")
			}
		}
	}
	// Different seeds usually differ on a graph this size.
	c := LubyMIS(g, 43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Log("seeds 42 and 43 coincided (possible but unlikely)")
	}
}

func TestLubyMISQuickProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 80)
		p := float64(pRaw) / 255 * 0.5
		g := randomGraph(rng, n, p)
		return IsMaximalIndependentSet(g, LubyMIS(g, seed))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLubyMISOnUnitDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := make([]geom.Point, 500)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	g := UnitDisk(pts, 2.7)
	set := LubyMIS(g, 5)
	if !IsMaximalIndependentSet(g, set) {
		t.Fatal("Luby on unit-disk graph invalid")
	}
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if geom.Dist(pts[set[i]], pts[set[j]]) <= 2.7 {
				t.Fatal("two Luby MIS nodes within gamma")
			}
		}
	}
}

func BenchmarkLubyMIS(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 1200)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	g := UnitDisk(pts, 2.7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = LubyMIS(g, int64(i))
	}
}

func BenchmarkGreedyMIS(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 1200)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	g := UnitDisk(pts, 2.7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MaximalIndependentSet(g, MISMaxDegree, nil)
	}
}
