package graph

import (
	"time"

	"repro/internal/obs"
)

// degreeBucketQueue indexes the alive vertices of a shrinking graph by
// residual degree, supporting the exact selection rule of the degree-ordered
// MIS strategies: "the alive vertex of minimum (or maximum) residual degree,
// lowest vertex index among ties". It replaces misByDegreeRescan's
// per-selection argmin/argmax sweep over all n vertices with incremental
// bookkeeping:
//
//   - buckets[d] holds candidate entries for residual degree d, kept as a
//     binary min-heap ON VERTEX INDEX, so the bucket's top is always its
//     lowest-index member — exactly the rescan's tie-break.
//   - Entries are filed lazily: when a vertex's residual degree drops from
//     d to d-1 it is pushed onto buckets[d-1] and its old entries are left
//     behind as stale. An entry (v, d) is live iff alive[v] && deg[v] == d;
//     stale entries are discarded the first time they surface at a top.
//     Residual degrees only ever decrease, so a vertex enters each bucket
//     at most once and the total entry count is bounded by n + #decrements
//     <= n + 2m.
//   - cursor tracks the extreme nonempty bucket. For max-degree orders it
//     is monotone: while the cursor sits at d no alive vertex can reach
//     degree > d (degrees never grow), and decrements file entries strictly
//     below their old degree, so the cursor only walks down — O(maxDeg)
//     cursor movement total. For min-degree orders a decrement can create
//     a new minimum below the cursor; decrement pulls the cursor back down,
//     and the total up-walk is bounded by maxDeg plus the number of
//     pull-downs, i.e. O(maxDeg + m).
//
// Each of the O(n + m) entries is pushed and popped at most once, at
// O(log bucketSize) per heap operation — near-linear overall, versus the
// rescan's Θ(n · selections). The selection sequence is byte-identical to
// the rescan's by construction (see DESIGN.md §16 for the full invariant
// argument and TestMISDegreeOrderOracle / FuzzMISDegreeOrder for the
// machine-checked version).
type degreeBucketQueue struct {
	deg     []int32   // residual degree = #alive neighbors, for alive vertices
	alive   []bool    // false once removed from the graph
	buckets [][]int32 // buckets[d]: min-heap on vertex index, may hold stale entries
	cursor  int       // the extreme candidate bucket (min or max end)
	wantMin bool
}

// newDegreeBucketQueue builds the queue over g's full vertex set. Initial
// buckets are filled in ascending vertex order; an ascending slice is
// already a valid min-heap, so construction is O(n).
func newDegreeBucketQueue(g *Undirected, wantMin bool) *degreeBucketQueue {
	n := g.Len()
	q := &degreeBucketQueue{
		deg:     make([]int32, n),
		alive:   make([]bool, n),
		wantMin: wantMin,
	}
	maxDeg := 0
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		q.deg[v] = int32(d)
		q.alive[v] = true
		if d > maxDeg {
			maxDeg = d
		}
	}
	counts := make([]int32, maxDeg+1)
	for v := 0; v < n; v++ {
		counts[q.deg[v]]++
	}
	q.buckets = make([][]int32, maxDeg+1)
	for d := range q.buckets {
		q.buckets[d] = make([]int32, 0, counts[d])
	}
	for v := 0; v < n; v++ {
		q.buckets[q.deg[v]] = append(q.buckets[q.deg[v]], int32(v))
	}
	if !wantMin {
		q.cursor = maxDeg
	}
	return q
}

// pop returns the alive vertex with extreme residual degree (lowest index
// among ties) and removes its live bucket entry, or false when no alive
// vertex remains. Stale entries surfacing at bucket tops are discarded on
// the way.
func (q *degreeBucketQueue) pop() (int, bool) {
	for q.cursor >= 0 && q.cursor < len(q.buckets) {
		b := q.buckets[q.cursor]
		for len(b) > 0 {
			v := b[0]
			b = heapPopMin(b)
			if q.alive[v] && q.deg[v] == int32(q.cursor) {
				q.buckets[q.cursor] = b
				return int(v), true
			}
		}
		q.buckets[q.cursor] = b
		if q.wantMin {
			q.cursor++
		} else {
			q.cursor--
		}
	}
	return -1, false
}

// kill marks v dead. Its remaining bucket entries go stale and are skipped
// lazily.
func (q *degreeBucketQueue) kill(v int32) { q.alive[v] = false }

// decrement lowers alive w's residual degree by one and files it under the
// new bucket. The old entry goes stale. For min orders the new degree may
// undercut the cursor; pull it back so the next pop starts low enough.
func (q *degreeBucketQueue) decrement(w int32) {
	d := q.deg[w] - 1
	q.deg[w] = d
	q.buckets[d] = heapPushMin(q.buckets[d], w)
	if q.wantMin && int(d) < q.cursor {
		q.cursor = int(d)
	}
}

// misByDegreeBucket runs the degree-ordered greedy MIS selection on the
// bucket queue and returns the vertices in selection order (not sorted).
// When tr is non-nil the loop's two phases are accumulated into the nested
// mis/select and mis/update spans.
func misByDegreeBucket(g *Undirected, wantMin bool, tr *obs.Tracer) []int {
	n := g.Len()
	q := newDegreeBucketQueue(g, wantMin)
	remaining := n
	var out []int
	remove := make([]int32, 0, 16) // scratch, reused across selections
	var selectD, updateD time.Duration
	for remaining > 0 {
		var t0 time.Time
		if tr != nil {
			t0 = time.Now()
		}
		best, ok := q.pop()
		if tr != nil {
			t1 := time.Now()
			selectD += t1.Sub(t0)
			t0 = t1
		}
		if !ok {
			break // unreachable: every alive vertex keeps a live entry
		}
		out = append(out, best)
		// Remove best and its alive neighbors, then fix the residual
		// degrees of the survivors' neighborhoods — the same two-phase
		// batch as the rescan reference, so deg always counts alive
		// neighbors only.
		remove = append(remove[:0], int32(best))
		for _, w := range g.Neighbors(best) {
			if q.alive[w] {
				remove = append(remove, w)
			}
		}
		for _, v := range remove {
			q.kill(v)
			remaining--
		}
		for _, v := range remove {
			for _, w := range g.Neighbors(int(v)) {
				if q.alive[w] {
					q.decrement(w)
				}
			}
		}
		if tr != nil {
			updateD += time.Since(t0)
		}
	}
	if tr != nil {
		tr.Observe(obs.StageMISSelect, selectD)
		tr.Observe(obs.StageMISUpdate, updateD)
	}
	return out
}

// heapPushMin pushes v onto the min-heap h and returns the grown heap.
func heapPushMin(h []int32, v int32) []int32 {
	h = append(h, v)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p] <= h[i] {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	return h
}

// heapPopMin removes the top of the min-heap h and returns the shrunk heap.
func heapPopMin(h []int32) []int32 {
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= len(h) {
			break
		}
		m := l
		if r := l + 1; r < len(h) && h[r] < h[l] {
			m = r
		}
		if h[i] <= h[m] {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return h
}
