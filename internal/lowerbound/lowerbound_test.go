package lowerbound

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/geom"
	"repro/internal/ktour"
)

func TestComputeEmptyAndInvalid(t *testing.T) {
	if b := Compute(&core.Instance{Depot: geom.Pt(0, 0), Gamma: 2.7, Speed: 1, K: 1}); b.Value != 0 {
		t.Errorf("empty instance bound = %+v", b)
	}
	if b := Compute(&core.Instance{K: 0}); b.Value != 0 {
		t.Errorf("invalid instance bound = %+v", b)
	}
}

func TestFarthestBoundHandComputed(t *testing.T) {
	in := &core.Instance{
		Depot: geom.Pt(0, 0),
		Requests: []core.Request{
			{Pos: geom.Pt(100, 0), Duration: 500},
			{Pos: geom.Pt(10, 0), Duration: 10},
		},
		Gamma: 2.7, Speed: 2, K: 3,
	}
	b := Compute(in)
	want := 2*(100-2.7)/2 + 500
	if math.Abs(b.Farthest-want) > 1e-9 {
		t.Errorf("Farthest = %v, want %v", b.Farthest, want)
	}
	if b.Value < b.Farthest {
		t.Error("Value below Farthest")
	}
}

func TestPackingIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := &core.Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: 2}
	for i := 0; i < 300; i++ {
		in.Requests = append(in.Requests, core.Request{
			Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
			Duration: rng.Float64() * 5400,
		})
	}
	b := Compute(in)
	if b.PackingSize < 1 || b.PackingSize > len(in.Requests) {
		t.Fatalf("packing size %d", b.PackingSize)
	}
	if b.PackingWork <= 0 || b.PackingTravel <= 0 {
		t.Errorf("packing bounds not positive: %+v", b)
	}
}

// TestBoundBelowAllSchedules is the defining property: every feasible
// schedule any of our algorithms produces must cost at least the bound.
func TestBoundBelowAllSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	planners := []core.Planner{core.ApproPlanner{}, baselines.KMinMax{}, baselines.NETWRAP{}}
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(120)
		k := 1 + rng.Intn(4)
		in := &core.Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: k}
		for i := 0; i < n; i++ {
			in.Requests = append(in.Requests, core.Request{
				Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
				Duration: (0.5 + rng.Float64()) * 3600,
			})
		}
		lb := Compute(in)
		for _, p := range planners {
			s, err := p.Plan(context.Background(), in)
			if err != nil {
				t.Fatal(err)
			}
			if s.Longest < lb.Value-1e-6 {
				t.Fatalf("trial %d: %s longest %v below lower bound %v",
					trial, p.Name(), s.Longest, lb.Value)
			}
		}
	}
}

// TestBoundBelowExactOptimum checks validity against the true optimum on
// tiny one-to-one instances (gamma = 0 makes multi-node and one-to-one
// coincide, and the exact solver optimizes exactly that problem).
func TestBoundBelowExactOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(7)
		k := 1 + rng.Intn(3)
		in := &core.Instance{Depot: geom.Pt(5, 5), Gamma: 0, Speed: 1, K: k}
		kin := ktour.Input{Depot: in.Depot, Speed: 1, K: k}
		for i := 0; i < n; i++ {
			pos := geom.Pt(rng.Float64()*10, rng.Float64()*10)
			dur := rng.Float64() * 100
			in.Requests = append(in.Requests, core.Request{Pos: pos, Duration: dur})
			kin.Nodes = append(kin.Nodes, pos)
			kin.Service = append(kin.Service, dur)
		}
		res, err := exact.MinMax(context.Background(), kin)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact {
			t.Fatalf("trial %d: exact solver fell back without cancellation", trial)
		}
		lb := Compute(in)
		if lb.Value > res.Value+1e-6 {
			t.Fatalf("trial %d: lower bound %v exceeds optimum %v", trial, lb.Value, res.Value)
		}
	}
}

// TestApproEmpiricalQuality records the empirical approximation factor of
// Appro against the lower bound on realistic dense instances; it must stay
// far below the theoretical guarantee.
func TestApproEmpiricalQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	worst := 0.0
	for trial := 0; trial < 6; trial++ {
		n := 200 + rng.Intn(600)
		in := &core.Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: 2}
		for i := 0; i < n; i++ {
			in.Requests = append(in.Requests, core.Request{
				Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
				Duration: (1.2 + 0.3*rng.Float64()) * 3600,
			})
		}
		s, err := core.ApproPlanner{}.Plan(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		lb := Compute(in)
		if lb.Value <= 0 {
			t.Fatal("zero lower bound on non-trivial instance")
		}
		ratio := s.Longest / lb.Value
		if ratio > worst {
			worst = ratio
		}
		ana, err := core.Analyze(context.Background(), in, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ratio > ana.Ratio {
			t.Fatalf("trial %d: empirical factor %.2f exceeds theoretical guarantee %.2f",
				trial, ratio, ana.Ratio)
		}
	}
	t.Logf("worst empirical Appro/lower-bound factor: %.3f", worst)
	if worst > 6 {
		t.Errorf("empirical factor %.2f unexpectedly high (regression?)", worst)
	}
}
