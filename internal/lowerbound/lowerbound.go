// Package lowerbound computes provable lower bounds on the optimal longest
// charge delay L_OPT of an instance. The bounds make the approximation
// quality of Algorithm Appro measurable without solving the NP-hard
// problem: for any schedule S, S.Longest / Compute(in).Value is an upper
// bound on S's true approximation factor.
//
// Three bounds are combined:
//
//  1. Farthest request: some charger must come within gamma of the
//     farthest request v and charge it, so
//     L_OPT >= 2*max(0, d(depot,v)-gamma)/s + t_v.
//  2. Packing work: for any set P of requests with pairwise distance
//     > 2*gamma, no single stop charges two members of P, so their
//     charging durations occupy distinct charger time; spread over K
//     chargers, L_OPT >= sum_{v in P} t_v / K.
//  3. Packing travel: the K closed tours all pass through the depot, so
//     their union is a connected subgraph spanning, for each v in P, some
//     point within gamma of v. An MST over {depot} union P with edge
//     weights max(0, d - 2*gamma) is therefore a lower bound on the total
//     tour length, and the longest tour is at least a 1/K share.
//
// Bounds 2 and 3 charge the same K tours with disjoint quantities (service
// time vs travel time), so they add before dividing by K.
package lowerbound

import (
	"math"

	"sort"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/mst"
)

// Bound holds the individual and combined lower bounds, in seconds.
type Bound struct {
	// Farthest is bound 1.
	Farthest float64
	// PackingWork is bound 2 for the chosen packing.
	PackingWork float64
	// PackingTravel is bound 3 for the same packing.
	PackingTravel float64
	// PackingSize is |P|.
	PackingSize int
	// Value is the best combined bound:
	// max(Farthest, PackingWork + PackingTravel).
	Value float64
}

// Compute returns lower bounds for the instance. It returns the zero Bound
// for an empty or invalid instance.
func Compute(in *core.Instance) Bound {
	var b Bound
	if in.Validate() != nil || len(in.Requests) == 0 {
		return b
	}
	// Bound 1: farthest request.
	for _, r := range in.Requests {
		reach := geom.Dist(in.Depot, r.Pos) - in.Gamma
		if reach < 0 {
			reach = 0
		}
		if v := 2*reach/in.Speed + r.Duration; v > b.Farthest {
			b.Farthest = v
		}
	}

	// Greedy max-weight 2*gamma packing: scan requests by decreasing
	// duration, keep those farther than 2*gamma from everything kept.
	order := make([]int, len(in.Requests))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, c int) bool {
		return in.Requests[order[a]].Duration > in.Requests[order[c]].Duration
	})
	var packed []int
	for _, i := range order {
		ok := true
		for _, j := range packed {
			if geom.Dist(in.Requests[i].Pos, in.Requests[j].Pos) <= 2*in.Gamma {
				ok = false
				break
			}
		}
		if ok {
			packed = append(packed, i)
		}
	}
	b.PackingSize = len(packed)

	// Bound 2: packed charging work per charger.
	work := 0.0
	for _, i := range packed {
		work += in.Requests[i].Duration
	}
	b.PackingWork = work / float64(in.K)

	// Bound 3: travel over {depot} union P, per charger. Two valid
	// shrunken travel bounds are combined: (a) the MST with every edge
	// reduced by 2*gamma (tours may stop up to gamma away from both
	// endpoints), and (b) the convex-hull perimeter reduced by
	// 2*pi*gamma (a closed curve meeting every gamma-disk, inflated by
	// gamma, must enclose all the centers).
	pts := make([]geom.Point, 0, len(packed)+1)
	pts = append(pts, in.Depot)
	for _, i := range packed {
		pts = append(pts, in.Requests[i].Pos)
	}
	var edges []mst.Edge
	for u := 0; u < len(pts); u++ {
		for v := u + 1; v < len(pts); v++ {
			w := geom.Dist(pts[u], pts[v]) - 2*in.Gamma
			if w < 0 {
				w = 0
			}
			edges = append(edges, mst.Edge{U: u, V: v, W: w})
		}
	}
	travel := 0.0
	if tree := mst.FromEdges(len(pts), edges, 0); tree != nil {
		travel = tree.Weight
	}
	if hull := geom.HullPerimeter(pts) - 2*math.Pi*in.Gamma; hull > travel {
		travel = hull
	}
	b.PackingTravel = travel / in.Speed / float64(in.K)

	b.Value = b.Farthest
	if combined := b.PackingWork + b.PackingTravel; combined > b.Value {
		b.Value = combined
	}
	return b
}
