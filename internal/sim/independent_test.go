package sim

import (
	"context"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
)

func independentCfg() Config {
	return Config{
		Duration:    40 * 86400,
		BatchWindow: DefaultBatchWindow,
		Dispatch:    DispatchIndependent,
		Verify:      true,
	}
}

func TestIndependentAllPlanners(t *testing.T) {
	nw := smallNetwork(t, 80, 12)
	planners := append([]core.Planner{core.ApproPlanner{}}, baselines.All()...)
	for _, p := range planners {
		res, err := Run(context.Background(), nw, 2, p, independentCfg())
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Violations != 0 {
			t.Errorf("%s: %d violations (global interval audit)", p.Name(), res.Violations)
		}
		if res.Charges == 0 {
			t.Errorf("%s: nothing charged", p.Name())
		}
		if len(res.Rounds) == 0 {
			t.Errorf("%s: no dispatches", p.Name())
		}
	}
}

func TestIndependentDeterministic(t *testing.T) {
	nw := smallNetwork(t, 60, 13)
	a, err := Run(context.Background(), nw, 3, core.ApproPlanner{}, independentCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), nw, 3, core.ApproPlanner{}, independentCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Charges != b.Charges || len(a.Rounds) != len(b.Rounds) || a.AvgLongest != b.AvgLongest {
		t.Error("independent mode is not deterministic")
	}
}

func TestIndependentDispatchesInterleave(t *testing.T) {
	// With two chargers and a steady request stream, dispatches must
	// interleave: some dispatch happens while another charger is still
	// out (its return time is after the later dispatch's start).
	nw := smallNetwork(t, 200, 14)
	res, err := Run(context.Background(), nw, 2, core.ApproPlanner{}, independentCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) < 3 {
		t.Skipf("only %d dispatches; cannot check interleaving", len(res.Rounds))
	}
	interleaved := false
	for i := 1; i < len(res.Rounds); i++ {
		prev := res.Rounds[i-1]
		if res.Rounds[i].Start < prev.Start+prev.Longest {
			interleaved = true
			break
		}
	}
	if !interleaved {
		t.Error("no overlapping dispatches; independent mode behaves synchronized")
	}
}

func TestIndependentDispatchOrderIsChronological(t *testing.T) {
	nw := smallNetwork(t, 150, 15)
	res, err := Run(context.Background(), nw, 3, core.ApproPlanner{}, independentCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rounds); i++ {
		if res.Rounds[i].Start < res.Rounds[i-1].Start-1e-9 {
			t.Fatalf("dispatch %d at %v before dispatch %d at %v",
				i, res.Rounds[i].Start, i-1, res.Rounds[i-1].Start)
		}
	}
}

func TestIndependentRespectsMaxRounds(t *testing.T) {
	nw := smallNetwork(t, 100, 16)
	cfg := independentCfg()
	cfg.MaxRounds = 4
	res, err := Run(context.Background(), nw, 2, core.ApproPlanner{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) > 4 {
		t.Errorf("rounds = %d, want <= 4", len(res.Rounds))
	}
}

func TestIndependentVsSynchronizedBothFeasible(t *testing.T) {
	// The two dispatch modes must both keep the fleet feasible; under
	// load, independent dispatch usually shortens waiting because a
	// returned charger doesn't idle while its peer finishes.
	nw := smallNetwork(t, 250, 17)
	sync := independentCfg()
	sync.Dispatch = DispatchSynchronized
	a, err := Run(context.Background(), nw, 2, core.ApproPlanner{}, sync)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), nw, 2, core.ApproPlanner{}, independentCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.Violations != 0 || b.Violations != 0 {
		t.Errorf("violations: sync %d, independent %d", a.Violations, b.Violations)
	}
	t.Logf("sync: dead %.1f min, %d dispatches; independent: dead %.1f min, %d dispatches",
		a.AvgDeadPerSensor/60, len(a.Rounds), b.AvgDeadPerSensor/60, len(b.Rounds))
}

func TestDispatchModeString(t *testing.T) {
	if DispatchSynchronized.String() != "synchronized" ||
		DispatchIndependent.String() != "independent" ||
		DispatchMode(9).String() != "unknown" {
		t.Error("DispatchMode.String wrong")
	}
}
