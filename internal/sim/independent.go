package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/wrsn"
)

// DispatchMode selects how charging rounds are triggered.
type DispatchMode int

const (
	// DispatchSynchronized is the paper's round-based protocol: all K
	// chargers leave the depot together with a jointly planned set of K
	// tours, and the next round starts when the last charger returns.
	DispatchSynchronized DispatchMode = iota
	// DispatchIndependent lets each charger redispatch on its own: the
	// moment a charger is back at the depot (and its own batching window
	// has elapsed), it claims every pending request and runs a
	// single-vehicle tour over them, while the other chargers are still
	// out. Multi-node charging stays safe: a newly planned tour is
	// time-shifted around the already-committed charging intervals of
	// in-flight tours so no sensor is ever inside two active ranges.
	DispatchIndependent
)

// String implements fmt.Stringer.
func (m DispatchMode) String() string {
	switch m {
	case DispatchSynchronized:
		return "synchronized"
	case DispatchIndependent:
		return "independent"
	default:
		return "unknown"
	}
}

// interval is a committed absolute-time charging interval of some stop.
type interval struct {
	node       int // request position owner (sensor the charger parks at)
	pos        geom.Point
	cover      []int // sensor IDs within gamma (network-global)
	start, end float64
	tour       int // dispatch index, for the audit: same tour never conflicts with itself
}

// runIndependent is the DispatchIndependent main loop. It mirrors Run's
// bookkeeping — including the partial-result-on-cancellation contract —
// but drives each charger separately. Under a fault plan each dispatch
// draws its own breakdown and delay noise: a transient breakdown pauses
// the charger in place for the repair time, while a permanent one kills
// it mid-tour — its remaining requests simply stay pending and are picked
// up by the next free charger (independent dispatch's natural form of
// redistribution).
func runIndependent(ctx context.Context, nw *wrsn.Network, k int, planner core.Planner, cfg Config,
	states []sensorState, targets []float64, inj *fault.Injector, world *faultWorld, fstats *FaultStats) (*Result, error) {
	res := &Result{Planner: planner.Name(), Faults: fstats}
	tr := obs.FromContext(ctx)
	var longestAcc stats.Accumulator
	var runErr error
	cancelledAt := 0.0

	free := make([]float64, k)         // when each charger is next at the depot
	lastDispatch := make([]float64, k) // when each charger last left
	alive := make([]bool, k)           // false once permanently broken down
	aliveCount := k
	for i := range lastDispatch {
		lastDispatch[i] = math.Inf(-1)
		alive[i] = true
	}
	var committed []interval
	// Under Verify, every interval ever committed is retained for a
	// global pairwise no-overlap audit at the end.
	var audit []interval
	grid := geom.NewGrid(networkPositions(nw), gridCell(nw.Gamma))

	coverOf := func(sensorID int) []int {
		found := grid.Neighbors(nw.Sensors[sensorID].Pos, nw.Gamma, nil)
		cs := append([]int(nil), found...)
		sort.Ints(cs)
		return cs
	}

	for {
		if err := ctx.Err(); err != nil {
			runErr = fmt.Errorf("sim: cancelled at t=%.0f: %w", cancelledAt, err)
			break
		}
		if cfg.MaxRounds > 0 && len(res.Rounds) >= cfg.MaxRounds {
			break
		}
		if aliveCount == 0 {
			// Every MCV is permanently lost; dead time accrues to the
			// configured horizon when the books close below.
			runErr = fmt.Errorf("sim: t=%.0f: %w", cancelledAt, fault.ErrFleetLost)
			break
		}
		// The next charger to act, by effective dispatch time (return
		// time or its own batching-window gate, whichever is later).
		// Selecting by effective time keeps dispatches in chronological
		// order, which is what lets a new tour treat all previously
		// committed intervals as final. Dead chargers never act.
		effective := func(j int) float64 {
			if !alive[j] {
				return math.Inf(1)
			}
			e := free[j]
			if gate := lastDispatch[j] + cfg.BatchWindow; gate > e {
				e = gate
			}
			return e
		}
		ch := 0
		for j := 1; j < k; j++ {
			if effective(j) < effective(ch) {
				ch = j
			}
		}
		now := effective(ch)
		cancelledAt = now
		if now >= cfg.Duration {
			break
		}
		world.advance(now, states, targets)
		pending := pendingRequests(states, targets, now)
		if len(pending) == 0 {
			next := nextRequestTime(states, targets, now)
			if wn := world.next(); wn+1e-6 < next {
				next = wn + 1e-6
			}
			if math.IsInf(next, 1) || next >= cfg.Duration {
				break
			}
			if next < now {
				next = now
			}
			free[ch] = next
			continue
		}
		// Claim a spatially coherent share of the backlog rather than
		// everything: a charger that swallowed the whole backlog would
		// tour for days while its peers idle, and spatially interleaved
		// claims would serialize the chargers through the
		// no-simultaneous-charging rule. Each charger statically owns
		// the angular sector [2*pi*ch/k, 2*pi*(ch+1)/k) around the
		// depot, so concurrent tours only meet near the depot; when a
		// charger's own sector is empty it helps out with the whole
		// backlog (conflict waits then handle the rare encounters).
		if aliveCount > 1 {
			// Sectors are carved among the surviving chargers only, so a
			// breakdown's territory is inherited instead of orphaned.
			aliveIdx := 0
			for j := 0; j < ch; j++ {
				if alive[j] {
					aliveIdx++
				}
			}
			var mine []int
			for _, id := range pending {
				if sectorOf(nw.Depot, nw.Sensors[id].Pos, aliveCount) == aliveIdx {
					mine = append(mine, id)
				}
			}
			if len(mine) > 0 {
				pending = mine
			}
		}

		// Plan a single-vehicle tour over the claimed set.
		inst := buildInstance(nw, states, pending, 1, cfg.ChargeLevel)
		sched, err := planner.Plan(ctx, inst)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				runErr = fmt.Errorf("sim: cancelled at t=%.0f: %w", now, cerr)
				break
			}
			return nil, fmt.Errorf("sim: planner %s at t=%.0f: %w", planner.Name(), now, err)
		}
		if cfg.Verify {
			sp := tr.Start(obs.StageVerify)
			vs := verifySchedule(inst, sched)
			res.Violations += len(vs)
			if res.FirstViolation == "" && len(vs) > 0 {
				res.FirstViolation = vs[0].String()
			}
			sp.End()
		}
		tour := flattenTours(sched)
		if len(tour) == 0 {
			return nil, fmt.Errorf("sim: planner %s returned no stops for %d requests", planner.Name(), len(pending))
		}

		// Draw this dispatch's breakdown, if any, against the planned
		// tour delay. Rounds are globally ordered, so (round, charger)
		// uniquely keys the draw.
		round := len(res.Rounds)
		var brk fault.Failure
		broken := false
		if inj != nil {
			brk, broken = inj.TourFailure(round, ch, sched.Longest)
			if broken {
				fstats.MCVFailures++
				fstats.Retries += brk.Retries
				fstats.RepairSeconds += brk.Delay
				tr.Add("fault.mcv_failures", 1)
				if brk.Transient {
					fstats.Transient++
				} else {
					fstats.Permanent++
					tr.Add("fault.mcv_lost", 1)
				}
			}
			fstats.PlannedLongestSum += sched.Longest
		}

		// Commit the tour against in-flight intervals: each stop starts
		// after physical arrival and after every conflicting committed
		// interval ends. In-flight tours are never delayed by a later
		// dispatch, so one forward pass suffices. Travel and charging
		// stretch by the injector's noise factors; a transient breakdown
		// pauses the charger once, and a permanent one ends the tour at
		// the first stop it can no longer finish.
		clock := now
		pos := nw.Depot
		prevID := -1
		wait := 0.0
		servedCount := 0
		stopsDone := 0
		paused := false
		lost := false
		for _, st := range tour {
			sensorID := pending[st.Node]
			stopPos := nw.Sensors[sensorID].Pos
			clock += geom.Dist(pos, stopPos) / nw.Speed * inj.TravelFactor(round, prevID, sensorID)
			if broken && brk.Transient && !paused && clock >= now+brk.At {
				clock += brk.Delay
				paused = true
			}
			cover := coverOf(sensorID)
			start := clock
			for _, iv := range committed {
				if iv.end > start && geom.Dist(iv.pos, stopPos) <= 2*nw.Gamma &&
					intersectSorted(iv.cover, cover) {
					start = iv.end
				}
			}
			dur := st.Duration * inj.ChargeFactor(round, sensorID)
			if broken && brk.Transient && !paused && start < now+brk.At && now+brk.At < start+dur {
				dur += brk.Delay
				paused = true
			}
			if broken && !brk.Transient && start+dur > now+brk.At {
				// The charger dies before finishing this stop; its covered
				// sensors stay pending and the survivors inherit them.
				lost = true
				break
			}
			wait += start - clock
			clock = start + dur
			pos = stopPos
			prevID = sensorID
			iv := interval{
				node:  sensorID,
				pos:   stopPos,
				cover: cover,
				start: start,
				end:   clock,
				tour:  round,
			}
			committed = append(committed, iv)
			if cfg.Verify {
				audit = append(audit, iv)
			}
			// Refill the covered sensors at the stop's finish.
			for _, ri := range st.Covers {
				delivered := states[pending[ri]].chargeAt(clock, cfg.ChargeLevel)
				res.EnergyDelivered += delivered
				res.Charges++
				servedCount++
			}
			stopsDone++
		}
		if lost {
			alive[ch] = false
			aliveCount--
			if fstats != nil {
				fstats.SurvivingMCVs = aliveCount
			}
		} else {
			clock += geom.Dist(pos, nw.Depot) / nw.Speed * inj.TravelFactor(round, prevID, -1)
			if broken && brk.Transient && !paused {
				clock += brk.Delay
			}
		}
		delay := clock - now
		if fstats != nil {
			fstats.ActualLongestSum += delay
		}

		// Prune committed intervals no surviving charger can conflict
		// with anymore.
		if len(committed) > 4*len(tour)+64 {
			minFree := math.Inf(1)
			for j, f := range free {
				if alive[j] && f < minFree {
					minFree = f
				}
			}
			if !math.IsInf(minFree, 1) {
				kept := committed[:0]
				for _, iv := range committed {
					if iv.end > minFree {
						kept = append(kept, iv)
					}
				}
				committed = kept
			}
		}

		res.Rounds = append(res.Rounds, Round{
			Start:   now,
			Batch:   servedCount,
			Stops:   stopsDone,
			Longest: delay,
			Wait:    wait,
		})
		tr.Add("sim.rounds", 1)
		tr.Add("sim.charges", int64(servedCount))
		longestAcc.Add(delay)
		if delay > res.MaxLongest {
			res.MaxLongest = delay
		}
		lastDispatch[ch] = now
		free[ch] = clock
	}

	// Global audit: no two charging intervals from different dispatches
	// may overlap in time while sharing a covered sensor.
	if cfg.Verify {
		sort.Slice(audit, func(i, j int) bool { return audit[i].start < audit[j].start })
		for i := range audit {
			for j := i + 1; j < len(audit); j++ {
				if audit[j].start >= audit[i].end-1e-9 {
					break // sorted by start: no later interval overlaps i
				}
				if audit[i].tour == audit[j].tour {
					continue
				}
				if geom.Dist(audit[i].pos, audit[j].pos) <= 2*nw.Gamma &&
					intersectSorted(audit[i].cover, audit[j].cover) {
					res.Violations++
					if res.FirstViolation == "" {
						res.FirstViolation = fmt.Sprintf(
							"simultaneous-charge: intervals at nodes %d and %d overlap at t=%.0f",
							audit[i].node, audit[j].node, audit[j].start)
					}
				}
			}
		}
	}

	// Close the books. A cancelled run still closes at the committed
	// horizon — charges were applied at their absolute future times when
	// each tour was committed, so the books cannot close earlier than the
	// last in-flight tour's return.
	res.End = cfg.Duration
	if runErr != nil && !errors.Is(runErr, fault.ErrFleetLost) {
		// A lost fleet still closes at the horizon — the outage's dead
		// time is the result — while a cancellation closes early.
		res.End = cancelledAt
	}
	for j, f := range free {
		if alive[j] && f > res.End {
			res.End = f
		}
	}
	world.advance(res.End, states, targets)
	totalDead := 0.0
	for i := range states {
		states[i].advanceTo(res.End)
		totalDead += states[i].dead
		if states[i].died {
			res.DeadSensors++
		}
	}
	if len(states) > 0 {
		res.AvgDeadPerSensor = totalDead / float64(len(states))
	}
	res.AvgLongest = longestAcc.Mean()
	return res, runErr
}

// flattenTours concatenates a (K=1) schedule's stops in time order.
func flattenTours(s *core.Schedule) []core.Stop {
	var out []core.Stop
	for _, tour := range s.Tours {
		out = append(out, tour.Stops...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Arrive < out[j].Arrive })
	return out
}

func networkPositions(nw *wrsn.Network) []geom.Point {
	pts := make([]geom.Point, len(nw.Sensors))
	for i := range nw.Sensors {
		pts[i] = nw.Sensors[i].Pos
	}
	return pts
}

func gridCell(gamma float64) float64 {
	if gamma <= 0 {
		return 1
	}
	return gamma
}

// sectorOf returns which of k equal angular sectors around the depot the
// point falls in.
func sectorOf(depot, p geom.Point, k int) int {
	ang := math.Atan2(p.Y-depot.Y, p.X-depot.X) // [-pi, pi]
	frac := (ang + math.Pi) / (2 * math.Pi)     // [0, 1]
	s := int(frac * float64(k))
	if s >= k {
		s = k - 1
	}
	if s < 0 {
		s = 0
	}
	return s
}

func intersectSorted(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}
