package sim

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
)

// cancellingPlanner wraps an inner planner and fires cancel after a given
// number of Plan calls, producing a deterministic mid-run cancellation.
type cancellingPlanner struct {
	inner  core.Planner
	after  int
	calls  int
	cancel context.CancelFunc
}

func (p *cancellingPlanner) Name() string { return p.inner.Name() }

func (p *cancellingPlanner) Plan(ctx context.Context, in *core.Instance) (*core.Schedule, error) {
	p.calls++
	if p.calls > p.after {
		p.cancel()
	}
	return p.inner.Plan(ctx, in)
}

// TestRunHonorsContext is the table-driven cancellation contract test for
// both dispatch protocols: a cancelled run must return promptly with an
// error wrapping the context sentinel AND a partial result whose books are
// closed at the cancellation time.
func TestRunHonorsContext(t *testing.T) {
	nw := smallNetwork(t, 40, 3)
	cfg := Config{Duration: Year}

	tests := []struct {
		name     string
		dispatch DispatchMode
		preOnly  bool // cancel before the run instead of mid-run
		want     error
	}{
		{"synchronized pre-cancelled", DispatchSynchronized, true, context.Canceled},
		{"independent pre-cancelled", DispatchIndependent, true, context.Canceled},
		{"synchronized mid-run", DispatchSynchronized, false, context.Canceled},
		{"independent mid-run", DispatchIndependent, false, context.Canceled},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var planner core.Planner = core.ApproPlanner{}
			if tt.preOnly {
				cancel()
			} else {
				planner = &cancellingPlanner{inner: core.ApproPlanner{}, after: 2, cancel: cancel}
			}
			c := cfg
			c.Dispatch = tt.dispatch
			res, err := Run(ctx, nw, 2, planner, c)
			if !errors.Is(err, tt.want) {
				t.Fatalf("err = %v, want errors.Is(..., %v)", err, tt.want)
			}
			if res == nil {
				t.Fatal("cancelled run returned no partial result")
			}
			if res.End >= cfg.Duration {
				t.Fatalf("partial result End = %v, want < full duration %v", res.End, cfg.Duration)
			}
			if tt.preOnly && len(res.Rounds) != 0 {
				t.Fatalf("pre-cancelled run executed %d rounds", len(res.Rounds))
			}
			if !tt.preOnly && len(res.Rounds) == 0 {
				t.Fatal("mid-run cancellation recorded no completed rounds")
			}
		})
	}
}

// TestRunDeadlineExceeded checks that a deadline (rather than an explicit
// cancel) surfaces as context.DeadlineExceeded through the same path.
func TestRunDeadlineExceeded(t *testing.T) {
	nw := smallNetwork(t, 20, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()
	res, err := Run(ctx, nw, 2, core.ApproPlanner{}, Config{Duration: Year})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res == nil {
		t.Fatal("no partial result")
	}
}
