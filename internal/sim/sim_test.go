package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/workload"
	"repro/internal/wrsn"
)

func smallNetwork(t *testing.T, n int, seed int64) *wrsn.Network {
	t.Helper()
	nw, err := workload.Generate(workload.NewParams(n), seed)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestRunValidation(t *testing.T) {
	nw := smallNetwork(t, 10, 1)
	if _, err := Run(context.Background(), nw, 0, core.ApproPlanner{}, Config{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Run(context.Background(), nw, 2, nil, Config{}); err == nil {
		t.Error("nil planner accepted")
	}
	bad := *nw
	bad.Speed = 0
	if _, err := Run(context.Background(), &bad, 2, core.ApproPlanner{}, Config{}); err == nil {
		t.Error("invalid network accepted")
	}
}

func TestRunShortHorizonAllPlanners(t *testing.T) {
	nw := smallNetwork(t, 60, 2)
	cfg := Config{Duration: 30 * 86400, Verify: true}
	planners := append([]core.Planner{core.ApproPlanner{}}, baselines.All()...)
	for _, p := range planners {
		res, err := Run(context.Background(), nw, 2, p, cfg)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.Violations != 0 {
			t.Errorf("%s: %d feasibility violations", p.Name(), res.Violations)
		}
		if len(res.Rounds) == 0 {
			t.Errorf("%s: no rounds in 30 days", p.Name())
		}
		if res.Charges == 0 || res.EnergyDelivered <= 0 {
			t.Errorf("%s: no charging happened: %+v", p.Name(), res)
		}
		if res.AvgLongest <= 0 || res.MaxLongest < res.AvgLongest {
			t.Errorf("%s: inconsistent longest stats: avg %v max %v", p.Name(), res.AvgLongest, res.MaxLongest)
		}
		if res.End < cfg.Duration {
			t.Errorf("%s: simulation ended early at %v", p.Name(), res.End)
		}
	}
}

func TestRunDoesNotMutateNetwork(t *testing.T) {
	nw := smallNetwork(t, 40, 3)
	before := make([]float64, len(nw.Sensors))
	for i := range nw.Sensors {
		before[i] = nw.Sensors[i].Battery.Residual
	}
	if _, err := Run(context.Background(), nw, 2, core.ApproPlanner{}, Config{Duration: 20 * 86400}); err != nil {
		t.Fatal(err)
	}
	for i := range nw.Sensors {
		if nw.Sensors[i].Battery.Residual != before[i] {
			t.Fatal("Run mutated the input network")
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	nw := smallNetwork(t, 50, 4)
	a, err := Run(context.Background(), nw, 2, core.ApproPlanner{}, Config{Duration: 30 * 86400})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), nw, 2, core.ApproPlanner{}, Config{Duration: 30 * 86400})
	if err != nil {
		t.Fatal(err)
	}
	if a.Charges != b.Charges || a.AvgLongest != b.AvgLongest || len(a.Rounds) != len(b.Rounds) {
		t.Error("simulation is not deterministic")
	}
}

func TestRunMaxRounds(t *testing.T) {
	nw := smallNetwork(t, 60, 5)
	res, err := Run(context.Background(), nw, 2, core.ApproPlanner{}, Config{Duration: Year, MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) > 3 {
		t.Errorf("rounds = %d, want <= 3", len(res.Rounds))
	}
}

func TestRunNoDrawNoRounds(t *testing.T) {
	nw := smallNetwork(t, 10, 6)
	for i := range nw.Sensors {
		nw.Sensors[i].Draw = 0
	}
	res, err := Run(context.Background(), nw, 1, core.ApproPlanner{}, Config{Duration: 86400})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 0 || res.AvgDeadPerSensor != 0 {
		t.Errorf("zero-draw network should idle: %+v", res)
	}
}

func TestRoundBatchesGrowWithBacklog(t *testing.T) {
	// Sanity: batches should track request accumulation — over a longer
	// horizon at least one round serves more than one sensor.
	nw := smallNetwork(t, 150, 7)
	res, err := Run(context.Background(), nw, 2, core.ApproPlanner{}, Config{Duration: 60 * 86400})
	if err != nil {
		t.Fatal(err)
	}
	maxBatch := 0
	for _, r := range res.Rounds {
		if r.Batch > maxBatch {
			maxBatch = r.Batch
		}
	}
	if maxBatch < 2 {
		t.Errorf("max batch = %d; expected batching under load", maxBatch)
	}
}

func TestSensorStateDeadAccounting(t *testing.T) {
	s := sensorState{residual: 100, draw: 1, capacity: 1000, deadAt: -1}
	s.advanceTo(50)
	if s.residual != 50 || s.dead != 0 {
		t.Fatalf("state after 50 s: %+v", s)
	}
	s.advanceTo(200) // dies at t=100
	if s.residual != 0 || math.Abs(s.dead-100) > 1e-9 || !s.died {
		t.Fatalf("state after death: %+v", s)
	}
	delivered := s.chargeAt(250, 1) // 50 more dead seconds
	if math.Abs(s.dead-150) > 1e-9 {
		t.Errorf("dead = %v, want 150", s.dead)
	}
	if delivered != 1000 || s.residual != 1000 {
		t.Errorf("charge: delivered %v residual %v", delivered, s.residual)
	}
	// Time never goes backwards.
	s.advanceTo(100)
	if s.residual != 1000 {
		t.Error("advanceTo into the past changed state")
	}
}

func TestAvgDeadZeroWhenKeptAlive(t *testing.T) {
	// Tiny, lightly loaded network: nothing should ever die.
	nw := smallNetwork(t, 20, 8)
	res, err := Run(context.Background(), nw, 2, core.ApproPlanner{}, Config{Duration: 90 * 86400})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgDeadPerSensor != 0 || res.DeadSensors != 0 {
		t.Errorf("light load should keep all sensors alive: %+v", res)
	}
}

func TestIsOneToOne(t *testing.T) {
	one := &core.Schedule{Tours: []core.Tour{
		{Stops: []core.Stop{{Node: 3, Covers: []int{3}}}},
	}}
	if !isOneToOne(one) {
		t.Error("one-to-one schedule misclassified")
	}
	multi := &core.Schedule{Tours: []core.Tour{
		{Stops: []core.Stop{{Node: 3, Covers: []int{3, 4}}}},
	}}
	if isOneToOne(multi) {
		t.Error("multi-node schedule misclassified")
	}
}

func TestPartialCharging(t *testing.T) {
	nw := smallNetwork(t, 120, 19)
	full, err := Run(context.Background(), nw, 2, core.ApproPlanner{}, Config{Duration: 60 * 86400, BatchWindow: DefaultBatchWindow})
	if err != nil {
		t.Fatal(err)
	}
	partial, err := Run(context.Background(), nw, 2, core.ApproPlanner{}, Config{
		Duration:    60 * 86400,
		BatchWindow: DefaultBatchWindow,
		ChargeLevel: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Partial charging delivers less energy per visit, so sensors come
	// back more often: more charges, less energy per charge.
	if partial.Charges <= full.Charges {
		t.Errorf("partial charges %d <= full charges %d", partial.Charges, full.Charges)
	}
	if partial.EnergyDelivered/float64(partial.Charges) >=
		full.EnergyDelivered/float64(full.Charges) {
		t.Error("partial charging should deliver less energy per charge")
	}
	// And per-round tours are shorter.
	if partial.AvgLongest >= full.AvgLongest {
		t.Errorf("partial avg longest %v >= full %v", partial.AvgLongest, full.AvgLongest)
	}
}

func TestChargeLevelDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.ChargeLevel != 1 {
		t.Errorf("default ChargeLevel = %v, want 1", cfg.ChargeLevel)
	}
	cfg = Config{ChargeLevel: 1.7}.withDefaults()
	if cfg.ChargeLevel != 1 {
		t.Errorf("out-of-range ChargeLevel = %v, want clamped to 1", cfg.ChargeLevel)
	}
	cfg = Config{ChargeLevel: 0.5}.withDefaults()
	if cfg.ChargeLevel != 0.5 {
		t.Errorf("ChargeLevel = %v, want 0.5", cfg.ChargeLevel)
	}
}

func TestChargeAtPartialLevels(t *testing.T) {
	s := sensorState{residual: 100, draw: 1, capacity: 1000, deadAt: -1}
	if got := s.chargeAt(10, 0.5); got != 410 {
		t.Errorf("delivered = %v, want 410 (to 500 from 90)", got)
	}
	if s.residual != 500 {
		t.Errorf("residual = %v, want 500", s.residual)
	}
	// Charging to a level below the current residual delivers nothing.
	if got := s.chargeAt(20, 0.1); got != 0 {
		t.Errorf("downward charge delivered %v, want 0", got)
	}
	if s.residual >= 500 {
		// advanceTo(20) drained 10 J first.
		t.Errorf("residual = %v, expected slight drain", s.residual)
	}
}

func TestTraceStream(t *testing.T) {
	nw := smallNetwork(t, 60, 21)
	var buf bytes.Buffer
	res, err := Run(context.Background(), nw, 2, core.ApproPlanner{}, Config{
		Duration:    30 * 86400,
		BatchWindow: DefaultBatchWindow,
		Trace:       &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	dispatches, charges := 0, 0
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var ev TraceEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("trace line does not parse: %v", err)
		}
		switch ev.Kind {
		case "dispatch":
			dispatches++
			if ev.Batch <= 0 || ev.Stops <= 0 || ev.Delay <= 0 {
				t.Fatalf("malformed dispatch event: %+v", ev)
			}
		case "charge":
			charges++
			if ev.Sensor < 0 || ev.Sensor >= len(nw.Sensors) {
				t.Fatalf("charge for unknown sensor: %+v", ev)
			}
		case "dead":
		default:
			t.Fatalf("unknown event kind %q", ev.Kind)
		}
	}
	if dispatches != len(res.Rounds) {
		t.Errorf("trace dispatches = %d, rounds = %d", dispatches, len(res.Rounds))
	}
	if charges != res.Charges {
		t.Errorf("trace charges = %d, result charges = %d", charges, res.Charges)
	}
}

func TestTraceNilWriterIsFine(t *testing.T) {
	nw := smallNetwork(t, 20, 22)
	if _, err := Run(context.Background(), nw, 1, core.ApproPlanner{}, Config{Duration: 10 * 86400}); err != nil {
		t.Fatal(err)
	}
}

// errWriter fails after the first write, for trace error propagation.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestTraceWriteErrorSurfaces(t *testing.T) {
	nw := smallNetwork(t, 60, 23)
	_, err := Run(context.Background(), nw, 2, core.ApproPlanner{}, Config{
		Duration: 30 * 86400,
		Trace:    &errWriter{},
	})
	if err == nil {
		t.Error("trace write error was swallowed")
	}
}

func TestResultSummaryHelpers(t *testing.T) {
	r := &Result{Rounds: []Round{
		{Batch: 10, Stops: 4, Wait: 2},
		{Batch: 6, Stops: 4, Wait: 0},
	}}
	if got := r.MeanBatch(); got != 8 {
		t.Errorf("MeanBatch = %v, want 8", got)
	}
	if got := r.MeanStops(); got != 4 {
		t.Errorf("MeanStops = %v, want 4", got)
	}
	if got := r.ConsolidationFactor(); got != 2 {
		t.Errorf("ConsolidationFactor = %v, want 2", got)
	}
	if got := r.TotalWait(); got != 2 {
		t.Errorf("TotalWait = %v, want 2", got)
	}
	empty := &Result{}
	if empty.MeanBatch() != 0 || empty.MeanStops() != 0 || empty.ConsolidationFactor() != 0 {
		t.Error("empty result helpers should be zero")
	}
}

func TestResultSummaryDegenerateCases(t *testing.T) {
	cases := []struct {
		name                                  string
		res                                   *Result
		meanBatch, meanStops, consol, totWait float64
	}{
		{"empty result", &Result{}, 0, 0, 0, 0},
		{"nil rounds slice", &Result{Rounds: nil}, 0, 0, 0, 0},
		{
			// A fleet-lost round can serve nothing at all.
			"zero-batch zero-stop rounds",
			&Result{Rounds: []Round{{Batch: 0, Stops: 0}, {Batch: 0, Stops: 0}}},
			0, 0, 0, 0,
		},
		{
			"stops without batch",
			&Result{Rounds: []Round{{Batch: 0, Stops: 3}}},
			0, 3, 0, 0,
		},
		{
			"single round",
			&Result{Rounds: []Round{{Batch: 5, Stops: 2, Wait: 7.5}}},
			5, 2, 2.5, 7.5,
		},
		{
			"wait without stops",
			&Result{Rounds: []Round{{Wait: 1}, {Wait: 2}}},
			0, 0, 0, 3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.res.MeanBatch(); got != tc.meanBatch {
				t.Errorf("MeanBatch = %v, want %v", got, tc.meanBatch)
			}
			if got := tc.res.MeanStops(); got != tc.meanStops {
				t.Errorf("MeanStops = %v, want %v", got, tc.meanStops)
			}
			if got := tc.res.ConsolidationFactor(); got != tc.consol {
				t.Errorf("ConsolidationFactor = %v, want %v", got, tc.consol)
			}
			if got := tc.res.TotalWait(); got != tc.totWait {
				t.Errorf("TotalWait = %v, want %v", got, tc.totWait)
			}
		})
	}
}

func TestConsolidationFactorAboveOneForAppro(t *testing.T) {
	// Dense network: Appro must consolidate (>1 sensors per stop), while
	// the one-to-one K-minMax baseline sits exactly at 1.
	nw := smallNetwork(t, 400, 31)
	appro, err := Run(context.Background(), nw, 2, core.ApproPlanner{}, Config{Duration: 120 * 86400, BatchWindow: DefaultBatchWindow})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(context.Background(), nw, 2, baselines.KMinMax{}, Config{Duration: 120 * 86400, BatchWindow: DefaultBatchWindow})
	if err != nil {
		t.Fatal(err)
	}
	if got := one.ConsolidationFactor(); got != 1 {
		t.Errorf("one-to-one consolidation = %v, want exactly 1", got)
	}
	if got := appro.ConsolidationFactor(); got <= 1 {
		t.Errorf("Appro consolidation = %v, want > 1", got)
	}
}
