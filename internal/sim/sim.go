// Package sim runs the paper's evaluation protocol: a WRSN monitored for a
// period T_M (one year) during which sensors deplete according to their
// routing-derived power draw, send charging requests when their residual
// energy falls below a threshold, and are served round-by-round by K mobile
// chargers driving the tours a core.Planner produces.
//
// A round begins when all chargers are at the depot and at least one
// request is pending: the base station snapshots the pending set V_s, the
// planner builds K closed tours, the chargers execute them, and every
// served sensor is refilled at its attributed stop's charging finish time.
// Sensors keep depleting (and possibly dying) while they wait; per-sensor
// dead time is the paper's Fig. 3(b)/4(b)/5(b) metric, and the per-round
// longest tour duration is the Fig. 3(a)/4(a)/5(a) metric.
package sim

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/wrsn"
)

// Year is the paper's monitoring period T_M in seconds.
const Year = 365 * 24 * 3600.0

// DefaultBatchWindow is the dispatch batching window the figure harness
// uses: 24 hours. Sensors request at 20% residual capacity, which leaves
// them about a week of slack at typical draws, so accumulating requests
// for up to a day before dispatching the chargers is safe and matches the
// round-based dispatch the paper describes (the base station identifies a
// *set* V_s of lifetime-critical sensors per round).
const DefaultBatchWindow = 24 * 3600.0

// Config controls one simulation run.
type Config struct {
	// Duration is the monitored period in seconds; 0 means one year.
	Duration float64
	// Threshold is the request threshold as a fraction of battery
	// capacity; 0 means the paper's 20%.
	Threshold float64
	// BatchWindow is the minimum time between consecutive dispatches:
	// after a round starts, the next round starts no earlier than
	// BatchWindow later (and in any case not before all chargers are
	// back). 0 disables batching — chargers redispatch as soon as they
	// are home and a request is pending.
	BatchWindow float64
	// Dispatch selects the dispatch protocol: DispatchSynchronized (the
	// paper's round-based protocol, the default) or DispatchIndependent
	// (each charger redispatches on its own).
	Dispatch DispatchMode
	// ChargeLevel is the partial-charging target as a fraction of battery
	// capacity: chargers top sensors up to ChargeLevel * capacity rather
	// than full (the partial charging model of Liang et al., IEEE/ACM ToN
	// 2017 — the paper's reference [15]). 0 means 1.0 (full charging,
	// the paper's model). Must exceed Threshold or sensors would request
	// again immediately.
	ChargeLevel float64
	// MinSlack makes the request rule lifetime-aware, as in the paper's
	// notion of "lifetime-critical" sensors: a sensor requests charging
	// when its residual energy falls below Threshold OR its residual
	// lifetime falls below MinSlack seconds. Relay-heavy sensors near
	// the base station drain far faster than the fleet average (the
	// energy-hole effect), and a pure energy threshold would let them
	// die before the next dispatch. 0 means the default of 48 hours;
	// negative disables the rule.
	MinSlack float64
	// MaxRounds caps the number of charging rounds as a safety valve;
	// 0 means no cap.
	MaxRounds int
	// Trace, when non-nil, receives a JSONL stream of TraceEvent lines:
	// one "dispatch" per round, one "charge" per sensor refill, one
	// "dead" per battery depletion.
	Trace io.Writer
	// Verify runs the feasibility verifier on every round's schedule and
	// records violations in the result. One-to-one schedules (every stop
	// covering exactly its own sensor) are verified under point-charging
	// semantics, where the multi-node overlap constraint does not apply.
	// Under a fault plan the verifier sees the realized (post-fault)
	// schedule; requests the fault model left unserved are exempt from
	// the coverage check.
	Verify bool
	// Faults configures deterministic fault injection: MCV breakdowns
	// with online tour repair, travel/charging delay noise, sensor churn
	// and request bursts. nil (or a zero plan) runs fault-free; see
	// fault.Plan. Runs with an identical plan are identical.
	Faults *fault.Plan
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = Year
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.2
	}
	switch {
	case c.MinSlack == 0:
		c.MinSlack = 48 * 3600
	case c.MinSlack < 0:
		c.MinSlack = 0
	}
	if c.ChargeLevel <= 0 || c.ChargeLevel > 1 {
		c.ChargeLevel = 1
	}
	return c
}

// Round records one charging round.
type Round struct {
	// Start is the dispatch time in seconds since the simulation began.
	Start float64
	// Batch is |V_s|, the number of requests served.
	Batch int
	// Stops is the number of sojourn stops across the K tours.
	Stops int
	// Longest is the round's longest tour duration in seconds.
	Longest float64
	// Wait is the chargers' total conflict-avoidance wait time.
	Wait float64
}

// Result aggregates one simulation run.
type Result struct {
	// Planner is the algorithm's display name.
	Planner string
	// Rounds holds per-round records in time order.
	Rounds []Round
	// AvgLongest is the mean over rounds of the longest tour duration,
	// in seconds — the paper's "average longest tour duration".
	AvgLongest float64
	// MaxLongest is the worst round's longest tour duration in seconds.
	MaxLongest float64
	// AvgDeadPerSensor is the mean over sensors of total dead time during
	// the monitored period, in seconds — the paper's "average dead
	// duration per sensor".
	AvgDeadPerSensor float64
	// DeadSensRounds counts sensors that died at least once.
	DeadSensors int
	// Charges is the number of sensor charges delivered.
	Charges int
	// EnergyDelivered is the total energy charged into sensors in joules.
	EnergyDelivered float64
	// Violations counts feasibility violations across all rounds when
	// Config.Verify is set. It should always be zero.
	Violations int
	// FirstViolation is the first verifier violation encountered, in
	// Kind: Detail form, or empty. It pins down what went wrong without
	// re-running the verifier.
	FirstViolation string
	// Faults aggregates fault-injection and recovery activity; nil when
	// the run had no fault plan.
	Faults *FaultStats
	// End is the actual simulation end time (the last round may overrun
	// the configured duration; metrics are normalized by End).
	End float64
}

// sensorState tracks one sensor's continuous energy trajectory.
type sensorState struct {
	residual float64
	draw     float64
	capacity float64
	last     float64 // time of last update
	deadAt   float64 // time residual hit zero, or -1 while alive
	dead     float64 // accumulated dead seconds
	died     bool
}

// advanceTo moves the sensor's state forward to time t, accumulating dead
// time while the battery is empty.
func (s *sensorState) advanceTo(t float64) {
	if t <= s.last {
		return
	}
	if s.deadAt >= 0 {
		s.dead += t - s.last
		s.last = t
		return
	}
	dt := t - s.last
	need := s.residual
	if s.draw > 0 && s.draw*dt >= need {
		// Dies partway through the interval.
		tDead := s.last + need/s.draw
		s.residual = 0
		s.deadAt = tDead
		s.died = true
		s.dead += t - tDead
	} else {
		s.residual -= s.draw * dt
	}
	s.last = t
}

// chargeAt refills the sensor to level*capacity at absolute time t and
// returns the energy delivered (zero if the sensor already holds more).
func (s *sensorState) chargeAt(t, level float64) float64 {
	s.advanceTo(t)
	target := level * s.capacity
	if target < s.residual {
		return 0
	}
	delivered := target - s.residual
	s.residual = target
	s.deadAt = -1
	return delivered
}

// Run simulates the network under the given planner and configuration.
// The input network is not modified. K is the number of chargers.
//
// Run honors ctx: it checks for cancellation before every charging round
// and passes ctx to the planner, so a deadline aborts even a mid-plan
// round promptly. On cancellation it returns BOTH a partial Result —
// rounds completed so far, books closed at the cancellation time — and an
// error wrapping ctx.Err(); callers that want the partial data check the
// error with errors.Is and still read the result. When ctx carries an
// obs.Tracer, per-round verification is recorded under the verify span
// and the planner records its own stages.
func Run(ctx context.Context, nw *wrsn.Network, k int, planner core.Planner, cfg Config) (*Result, error) {
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("sim: k = %d, want >= 1", k)
	}
	if planner == nil {
		return nil, fmt.Errorf("sim: nil planner")
	}
	cfg = cfg.withDefaults()
	inj, err := fault.New(cfg.Faults)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if !inj.Enabled() {
		inj = nil
	}

	states := make([]sensorState, len(nw.Sensors))
	for i := range nw.Sensors {
		s := &nw.Sensors[i]
		states[i] = sensorState{
			residual: s.Battery.Residual,
			draw:     s.Draw,
			capacity: s.Battery.Capacity,
			deadAt:   -1,
		}
	}
	res := &Result{Planner: planner.Name()}
	// Per-sensor request trigger: residual energy below the fraction
	// threshold, or residual lifetime below MinSlack.
	targets := make([]float64, len(states))
	for i := range states {
		targets[i] = cfg.Threshold * states[i].capacity
		if t := cfg.MinSlack * states[i].draw; t > targets[i] {
			targets[i] = t
		}
		// A sensor whose trigger exceeds its charge target would
		// request forever; cap just below the target so it requests at
		// every dispatch instead of deadlocking the clock-advance logic.
		if cap := cfg.ChargeLevel * states[i].capacity; targets[i] >= cap {
			targets[i] = 0.99 * cap
		}
	}
	trace := newTracer(cfg.Trace)
	tr := obs.FromContext(ctx)
	var fstats *FaultStats
	if inj != nil {
		fstats = &FaultStats{SurvivingMCVs: k}
	}
	world := newFaultWorld(inj, cfg.Duration, len(states), fstats, trace, tr)
	if cfg.Dispatch == DispatchIndependent {
		return runIndependent(ctx, nw, k, planner, cfg, states, targets, inj, world, fstats)
	}
	res.Faults = fstats

	now := 0.0
	fleet := k
	var longestAcc stats.Accumulator
	var runErr error

	for now < cfg.Duration {
		if err := ctx.Err(); err != nil {
			runErr = fmt.Errorf("sim: cancelled at t=%.0f: %w", now, err)
			break
		}
		if cfg.MaxRounds > 0 && len(res.Rounds) >= cfg.MaxRounds {
			break
		}
		// Apply world-level fault events (sensor churn, request bursts)
		// up to the current time, then collect pending requests.
		world.advance(now, states, targets)
		pending := pendingRequests(states, targets, now)
		if len(pending) == 0 {
			// Jump to the next threshold crossing — but never over a
			// pending world event, which can spawn requests of its own.
			next := nextRequestTime(states, targets, now)
			if wn := world.next(); wn+1e-6 < next {
				next = wn + 1e-6
			}
			if math.IsInf(next, 1) || next >= cfg.Duration {
				break
			}
			now = next
			continue
		}
		// Snapshot batteries into the network view for instance building.
		inst := buildInstance(nw, states, pending, fleet, cfg.ChargeLevel)
		sched, err := planner.Plan(ctx, inst)
		if err != nil {
			// A cancelled planner aborts the round but not the
			// bookkeeping: close the books and hand back the partial
			// result alongside the context error.
			if cerr := ctx.Err(); cerr != nil {
				runErr = fmt.Errorf("sim: cancelled at t=%.0f: %w", now, cerr)
				break
			}
			return nil, fmt.Errorf("sim: planner %s at t=%.0f: %w", planner.Name(), now, err)
		}
		// Realize this round under the fault model: breakdown draws,
		// online tour repair, delay noise. sched becomes the realized
		// schedule; unserved lists the requests no surviving MCV could
		// take (they stay pending for later rounds).
		var unserved []int
		if world != nil {
			exec, rf := applyRoundFaults(world, len(res.Rounds), now, inst, sched)
			fleet -= rf.newDead
			fstats.SurvivingMCVs = fleet
			sched = exec
			unserved = rf.unserved
		}
		if cfg.Verify {
			sp := tr.Start(obs.StageVerify)
			vs := verifySchedule(inst, sched)
			if len(unserved) > 0 {
				vs = dropUncovered(vs)
			}
			res.Violations += len(vs)
			if res.FirstViolation == "" && len(vs) > 0 {
				res.FirstViolation = vs[0].String()
			}
			sp.End()
		}
		// Apply charges at their absolute finish times, in time order so
		// dead-time accounting is exact.
		type chargeEvent struct {
			sensor int
			at     float64
		}
		var events []chargeEvent
		for _, tour := range sched.Tours {
			for _, stop := range tour.Stops {
				for _, ri := range stop.Covers {
					events = append(events, chargeEvent{
						sensor: pending[ri],
						at:     now + stop.Finish(),
					})
				}
			}
		}
		sort.Slice(events, func(i, j int) bool { return events[i].at < events[j].at })
		served := len(pending) - len(unserved)
		if len(events) != served {
			return nil, fmt.Errorf("sim: planner %s served %d of %d requests", planner.Name(), len(events), served)
		}
		for _, ev := range events {
			// A sensor may have died while waiting; its death time is
			// only discovered lazily, so the "dead" line may carry an
			// earlier T than preceding lines — T is authoritative.
			states[ev.sensor].advanceTo(ev.at)
			if deadAt := states[ev.sensor].deadAt; deadAt >= 0 {
				trace.emit(TraceEvent{Kind: "dead", T: deadAt, Sensor: ev.sensor})
			}
			delivered := states[ev.sensor].chargeAt(ev.at, cfg.ChargeLevel)
			res.EnergyDelivered += delivered
			res.Charges++
			trace.emit(TraceEvent{Kind: "charge", T: ev.at, Sensor: ev.sensor, Energy: delivered})
		}
		res.Rounds = append(res.Rounds, Round{
			Start:   now,
			Batch:   served,
			Stops:   sched.NumStops(),
			Longest: sched.Longest,
			Wait:    sched.WaitTime,
		})
		trace.emit(TraceEvent{
			Kind: "dispatch", T: now, Charger: -1,
			Batch: served, Stops: sched.NumStops(), Delay: sched.Longest,
		})
		tr.Add("sim.rounds", 1)
		tr.Add("sim.charges", int64(served))
		longestAcc.Add(sched.Longest)
		if sched.Longest > res.MaxLongest {
			res.MaxLongest = sched.Longest
		}
		// The next round starts once all chargers are back at the depot
		// and the batching window has elapsed.
		nextDispatch := now + sched.Longest
		if withWindow := now + cfg.BatchWindow; withWindow > nextDispatch {
			nextDispatch = withWindow
		}
		if sched.Longest <= 0 {
			if world == nil {
				// Defensive: a zero-delay schedule with pending requests
				// would spin forever.
				return nil, fmt.Errorf("sim: planner %s returned a zero-delay schedule for %d requests", planner.Name(), len(pending))
			}
			// Under faults a round can legitimately serve nothing (full
			// fleet loss); keep the clock moving.
			if min := now + 3600; nextDispatch < min {
				nextDispatch = min
			}
		}
		now = nextDispatch
		if fleet <= 0 {
			// Every MCV is permanently lost: no further rounds can run.
			// The books stay open to the configured horizon so the
			// sensors' dead time accrues honestly against the outage.
			runErr = fmt.Errorf("sim: t=%.0f: %w", res.Rounds[len(res.Rounds)-1].Start, fault.ErrFleetLost)
			now = cfg.Duration
			break
		}
	}

	// Close out the books at the end time. A cancelled run closes at the
	// cancellation time instead of the configured horizon, so the partial
	// metrics describe only the simulated span.
	res.End = now
	if runErr == nil && res.End < cfg.Duration {
		res.End = cfg.Duration
	}
	world.advance(res.End, states, targets)
	totalDead := 0.0
	for i := range states {
		states[i].advanceTo(res.End)
		totalDead += states[i].dead
		if states[i].died {
			res.DeadSensors++
		}
	}
	if len(states) > 0 {
		res.AvgDeadPerSensor = totalDead / float64(len(states))
	}
	res.AvgLongest = longestAcc.Mean()
	if err := trace.Err(); err != nil {
		return nil, fmt.Errorf("sim: trace: %w", err)
	}
	return res, runErr
}

// pendingRequests returns sensor IDs below their request trigger at time
// now, after advancing their states.
func pendingRequests(states []sensorState, targets []float64, now float64) []int {
	var out []int
	for i := range states {
		states[i].advanceTo(now)
		if states[i].residual < targets[i] {
			out = append(out, i)
		}
	}
	return out
}

// nextRequestTime returns the earliest future time any sensor crosses its
// request trigger, or +Inf.
func nextRequestTime(states []sensorState, targets []float64, now float64) float64 {
	next := math.Inf(1)
	for i := range states {
		s := &states[i]
		if s.draw <= 0 {
			continue
		}
		if s.residual < targets[i] {
			return now
		}
		t := now + (s.residual-targets[i])/s.draw
		if t < next {
			next = t
		}
	}
	// Nudge past the exact crossing so the strict < comparison fires.
	return next + 1e-6
}

// buildInstance converts the pending sensors into a core.Instance with
// up-to-date residuals and lifetimes; stop durations target
// level * capacity (level 1 = the paper's full charging).
func buildInstance(nw *wrsn.Network, states []sensorState, pending []int, k int, level float64) *core.Instance {
	in := &core.Instance{
		Depot: nw.Depot,
		Gamma: nw.Gamma,
		Speed: nw.Speed,
		K:     k,
	}
	for _, id := range pending {
		st := &states[id]
		life := 0.0
		if st.draw > 0 {
			life = st.residual / st.draw
		}
		need := level*st.capacity - st.residual
		if need < 0 {
			need = 0
		}
		in.Requests = append(in.Requests, core.Request{
			Pos:      nw.Sensors[id].Pos,
			Duration: need / nw.ChargeRate,
			Lifetime: life,
		})
	}
	return in
}

// verifySchedule applies the right feasibility semantics: one-to-one
// schedules are checked under point charging (gamma = 0) with the overlap
// constraint dropped — directional one-to-one charging cannot interfere,
// even between coincident sensors — while multi-node schedules are checked
// under the instance's gamma including the overlap constraint.
func verifySchedule(in *core.Instance, s *core.Schedule) []core.Violation {
	if isOneToOne(s) {
		point := *in
		point.Gamma = 0
		vs := core.Verify(&point, s)
		kept := vs[:0]
		for _, v := range vs {
			if v.Kind != "simultaneous-charge" {
				kept = append(kept, v)
			}
		}
		return kept
	}
	return core.Verify(in, s)
}

// isOneToOne reports whether every stop covers exactly the sensor it parks
// at.
func isOneToOne(s *core.Schedule) bool {
	for _, tour := range s.Tours {
		for _, stop := range tour.Stops {
			if len(stop.Covers) != 1 || stop.Covers[0] != stop.Node {
				return false
			}
		}
	}
	return true
}
