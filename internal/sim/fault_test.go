package sim

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/wrsn"
)

// faultNetwork hand-builds a tiny two-cluster network whose geometry the
// degradation tests can reason about exactly: six sensors in two tight
// clusters on opposite sides of the depot, all starting below the request
// threshold (residual 150 of 1000, threshold 20%), each with a manually
// pinned draw giving ~15000 s of remaining lifetime. An unserved cluster
// therefore dies well inside a one-day horizon; a served one survives it.
func faultNetwork(t *testing.T) *wrsn.Network {
	t.Helper()
	nw := &wrsn.Network{
		Field:      geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)},
		Base:       geom.Pt(50, 50),
		Depot:      geom.Pt(50, 50),
		TxRange:    200,
		Gamma:      2.7,
		ChargeRate: 2,
		Speed:      10,
		Radio:      energy.DefaultRadio(),
	}
	positions := []geom.Point{
		geom.Pt(10, 50), geom.Pt(11, 50), geom.Pt(10, 51),
		geom.Pt(90, 50), geom.Pt(89, 50), geom.Pt(90, 49),
	}
	for i, p := range positions {
		nw.Sensors = append(nw.Sensors, wrsn.Sensor{
			ID: i, Pos: p, Parent: -1, Draw: 0.01,
			Battery: energy.Battery{Capacity: 1000, Residual: 150},
		})
	}
	if err := nw.Validate(); err != nil {
		t.Fatalf("hand-built network invalid: %v", err)
	}
	return nw
}

// oneRound is the degradation scenario: a single round over one day, the
// MCV driving tour 0 breaking down almost immediately (5% into its tour).
func oneRound(disableRecovery bool) Config {
	return Config{
		Duration:  86400,
		MaxRounds: 1,
		MinSlack:  -1,
		Verify:    true,
		Faults: &fault.Plan{
			Seed:            1,
			Scripted:        []fault.ScriptedFailure{{Round: 0, Tour: 0, Frac: 0.05}},
			DisableRecovery: disableRecovery,
		},
	}
}

func TestRecoveryBeatsNoRecovery(t *testing.T) {
	rec, err := Run(context.Background(), faultNetwork(t), 2, core.ApproPlanner{}, oneRound(false))
	if err != nil {
		t.Fatalf("recovery run: %v", err)
	}
	if rec.Faults == nil {
		t.Fatal("fault stats missing from fault run")
	}
	if rec.Faults.Permanent != 1 || rec.Faults.SurvivingMCVs != 1 {
		t.Fatalf("expected one permanent loss leaving one MCV: %+v", rec.Faults)
	}
	if rec.Faults.Redistributed == 0 {
		t.Fatalf("recovery run redistributed nothing: %+v", rec.Faults)
	}
	if rec.Violations != 0 {
		t.Fatalf("repaired schedule has %d violations, first: %s", rec.Violations, rec.FirstViolation)
	}
	if rec.DeadSensors != 0 {
		t.Fatalf("recovery run lost %d sensors, want 0", rec.DeadSensors)
	}

	bare, err := Run(context.Background(), faultNetwork(t), 2, core.ApproPlanner{}, oneRound(true))
	if err != nil {
		t.Fatalf("no-recovery run: %v", err)
	}
	if bare.Faults.Unserved == 0 {
		t.Fatalf("no-recovery run dropped nothing: %+v", bare.Faults)
	}
	if bare.DeadSensors == 0 {
		t.Fatal("no-recovery baseline lost no sensors; scenario is not discriminating")
	}
	if rec.DeadSensors >= bare.DeadSensors {
		t.Fatalf("recovery (%d dead) not strictly better than baseline (%d dead)",
			rec.DeadSensors, bare.DeadSensors)
	}
	if rec.Charges <= bare.Charges {
		t.Fatalf("recovery served %d charges, baseline %d; expected more under recovery",
			rec.Charges, bare.Charges)
	}
}

func TestFleetLossDegradesGracefully(t *testing.T) {
	cfg := oneRound(false)
	res, err := Run(context.Background(), faultNetwork(t), 1, core.ApproPlanner{}, cfg)
	if !errors.Is(err, fault.ErrFleetLost) {
		t.Fatalf("err = %v, want ErrFleetLost", err)
	}
	if res == nil {
		t.Fatal("fleet loss must still return the partial result")
	}
	if res.Faults.SurvivingMCVs != 0 {
		t.Fatalf("SurvivingMCVs = %d, want 0", res.Faults.SurvivingMCVs)
	}
	if res.End != cfg.Duration {
		t.Fatalf("books closed at %v, want the full horizon %v", res.End, cfg.Duration)
	}
	if res.DeadSensors == 0 {
		t.Fatal("a lost fleet over a day should strand sensors")
	}
}

func TestFaultRunsAreDeterministic(t *testing.T) {
	nw := smallNetwork(t, 40, 9)
	plan := &fault.Plan{
		Seed: 77, MCVFailRate: 0.3, TransientFrac: 0.5,
		TravelNoise: 0.1, ChargeNoise: 0.1,
		SensorFailRate: 1, BurstRate: 12, BurstSize: 4,
	}
	run := func() []byte {
		res, err := Run(context.Background(), smallNetwork(t, 40, 9), 2, core.ApproPlanner{},
			Config{Duration: 60 * 86400, BatchWindow: DefaultBatchWindow, Verify: true, Faults: plan})
		if err != nil && !errors.Is(err, fault.ErrFleetLost) {
			t.Fatalf("fault run: %v", err)
		}
		if res.Violations != 0 {
			t.Fatalf("fault run has %d violations, first: %s", res.Violations, res.FirstViolation)
		}
		b, merr := json.Marshal(res)
		if merr != nil {
			t.Fatal(merr)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("same seed produced different results:\n%s\n%s", a, b)
	}

	// A different seed must resample the fault trajectory.
	plan2 := *plan
	plan2.Seed = 78
	res2, err := Run(context.Background(), nw, 2, core.ApproPlanner{},
		Config{Duration: 60 * 86400, BatchWindow: DefaultBatchWindow, Verify: true, Faults: &plan2})
	if err != nil && !errors.Is(err, fault.ErrFleetLost) {
		t.Fatalf("fault run: %v", err)
	}
	b2, _ := json.Marshal(res2)
	if string(a) == string(b2) {
		t.Fatal("different fault seeds produced identical results")
	}
}

func TestDelayNoiseInflatesButStaysFeasible(t *testing.T) {
	nw := smallNetwork(t, 60, 10)
	quiet, err := Run(context.Background(), nw, 2, core.ApproPlanner{},
		Config{Duration: 30 * 86400, BatchWindow: DefaultBatchWindow, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := Run(context.Background(), smallNetwork(t, 60, 10), 2, core.ApproPlanner{},
		Config{Duration: 30 * 86400, BatchWindow: DefaultBatchWindow, Verify: true,
			Faults: &fault.Plan{Seed: 5, TravelNoise: 0.2, ChargeNoise: 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Violations != 0 {
		t.Fatalf("noisy run has %d violations, first: %s", noisy.Violations, noisy.FirstViolation)
	}
	if got := noisy.Faults.DelayInflation(); got <= 1 {
		t.Fatalf("DelayInflation = %v, want > 1 under positive noise", got)
	}
	if noisy.AvgLongest <= quiet.AvgLongest {
		t.Fatalf("noisy AvgLongest %v <= quiet %v", noisy.AvgLongest, quiet.AvgLongest)
	}
	// Fault-free twin accounting: the planned sums track the noise-free run.
	if noisy.Faults.PlannedLongestSum <= 0 || noisy.Faults.ActualLongestSum < noisy.Faults.PlannedLongestSum {
		t.Fatalf("inconsistent twin sums: %+v", noisy.Faults)
	}
}

func TestIndependentDispatchUnderFaults(t *testing.T) {
	plan := &fault.Plan{
		Seed: 21, MCVFailRate: 0.2, TransientFrac: 0.5,
		TravelNoise: 0.1, ChargeNoise: 0.1,
	}
	run := func() *Result {
		res, err := Run(context.Background(), smallNetwork(t, 60, 11), 3, core.ApproPlanner{},
			Config{Duration: 60 * 86400, BatchWindow: DefaultBatchWindow,
				Dispatch: DispatchIndependent, Verify: true, Faults: plan})
		if err != nil && !errors.Is(err, fault.ErrFleetLost) {
			t.Fatalf("independent fault run: %v", err)
		}
		return res
	}
	res := run()
	if res.Violations != 0 {
		t.Fatalf("independent fault run has %d violations, first: %s", res.Violations, res.FirstViolation)
	}
	if res.Faults == nil || res.Faults.MCVFailures == 0 {
		t.Fatalf("expected breakdowns at rate 0.2 over 60 days: %+v", res.Faults)
	}
	if res.Faults.SurvivingMCVs+res.Faults.Permanent != 3 {
		t.Fatalf("fleet bookkeeping inconsistent: %+v", res.Faults)
	}
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(run())
	if string(a) != string(b) {
		t.Fatal("independent fault runs are not deterministic")
	}
}

func TestWorldEventsReachTheBooks(t *testing.T) {
	res, err := Run(context.Background(), smallNetwork(t, 50, 12), 2, core.ApproPlanner{},
		Config{Duration: 90 * 86400, BatchWindow: DefaultBatchWindow, Verify: true,
			Faults: &fault.Plan{Seed: 33, SensorFailRate: 2, BurstRate: 20, BurstSize: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.SensorFailures == 0 {
		t.Fatalf("churn at 2/year over 90 days injected nothing: %+v", res.Faults)
	}
	if res.Faults.Bursts == 0 {
		t.Fatalf("bursts at 20/year over 90 days injected nothing: %+v", res.Faults)
	}
	if res.Violations != 0 {
		t.Fatalf("world-event run has %d violations, first: %s", res.Violations, res.FirstViolation)
	}
}

func TestFaultStatsNilSafety(t *testing.T) {
	var fs *FaultStats
	if got := fs.DelayInflation(); got != 1 {
		t.Fatalf("nil DelayInflation = %v, want 1", got)
	}
	if got := (&FaultStats{}).DelayInflation(); got != 1 {
		t.Fatalf("zero DelayInflation = %v, want 1", got)
	}
	if got := (&FaultStats{PlannedLongestSum: 100, ActualLongestSum: 150}).DelayInflation(); got != 1.5 {
		t.Fatalf("DelayInflation = %v, want 1.5", got)
	}
}

func TestInvalidFaultPlanRejected(t *testing.T) {
	nw := smallNetwork(t, 10, 13)
	_, err := Run(context.Background(), nw, 1, core.ApproPlanner{},
		Config{Duration: 86400, Faults: &fault.Plan{MCVFailRate: 2}})
	if !errors.Is(err, fault.ErrInvalidPlan) {
		t.Fatalf("err = %v, want ErrInvalidPlan", err)
	}
}
