package sim

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/obs"
)

// FaultStats aggregates fault-injection and recovery activity over one
// simulation run. Result.Faults is nil unless the run had a fault plan.
type FaultStats struct {
	// MCVFailures counts breakdowns of any kind; Transient of them were
	// repaired in the field and Permanent removed the MCV from the fleet
	// for the rest of the run.
	MCVFailures int `json:"mcv_failures"`
	Transient   int `json:"transient"`
	Permanent   int `json:"permanent"`
	// Retries counts field-repair attempts (including failed ones) and
	// RepairSeconds the total time spent repairing.
	Retries       int     `json:"retries"`
	RepairSeconds float64 `json:"repair_seconds"`
	// Redistributed counts stops moved from broken MCVs into surviving
	// tours by the online recovery engine.
	Redistributed int `json:"redistributed"`
	// Unserved counts requests dropped in-round because no surviving MCV
	// could take them (full-fleet loss, or recovery disabled); they stay
	// pending for later rounds.
	Unserved int `json:"unserved"`
	// SensorFailures counts permanent sensor hardware deaths (churn) and
	// Bursts the charge-request burst events.
	SensorFailures int `json:"sensor_failures"`
	Bursts         int `json:"bursts"`
	// SurvivingMCVs is the fleet size at the end of the run.
	SurvivingMCVs int `json:"surviving_mcvs"`
	// PlannedLongestSum and ActualLongestSum compare each round's
	// fault-free planned schedule (the round's twin) against the realized
	// one; their ratio is the run's delay inflation.
	PlannedLongestSum float64 `json:"planned_longest_sum"`
	ActualLongestSum  float64 `json:"actual_longest_sum"`
}

// DelayInflation returns the ratio of realized to planned longest tour
// duration across the run — 1 means faults added no delay. Safe on nil
// (returns 1).
func (f *FaultStats) DelayInflation() float64 {
	if f == nil || f.PlannedLongestSum <= 0 {
		return 1
	}
	return f.ActualLongestSum / f.PlannedLongestSum
}

// faultWorld carries one run's precomputed world-level fault events
// (sensor churn, request bursts) and the accounting sinks. A nil
// *faultWorld is valid and inert, so the simulator's hot loops stay
// branch-light when no faults are configured.
type faultWorld struct {
	inj    *fault.Injector
	stats  *FaultStats
	trace  *tracer
	tr     *obs.Tracer
	deaths []fault.SensorDeath
	bursts []fault.Burst
	di, bi int // applied prefixes
}

func newFaultWorld(inj *fault.Injector, horizon float64, n int, stats *FaultStats, trace *tracer, tr *obs.Tracer) *faultWorld {
	if inj == nil {
		return nil
	}
	return &faultWorld{
		inj:    inj,
		stats:  stats,
		trace:  trace,
		tr:     tr,
		deaths: inj.SensorDeaths(horizon, n),
		bursts: inj.Bursts(horizon, n),
	}
}

// advance applies every sensor hardware death and request burst up to
// time now. A hardware-dead sensor is frozen (no draw, no further dead
// time, never requests: its target drops below any residual); a burst
// drains each victim immediately, possibly killing its battery.
func (w *faultWorld) advance(now float64, states []sensorState, targets []float64) {
	if w == nil {
		return
	}
	for w.di < len(w.deaths) && w.deaths[w.di].At <= now {
		d := w.deaths[w.di]
		w.di++
		if targets[d.Sensor] < 0 {
			continue
		}
		s := &states[d.Sensor]
		s.advanceTo(d.At)
		s.draw, s.deadAt = 0, -1
		targets[d.Sensor] = -1
		w.stats.SensorFailures++
		w.tr.Add("fault.sensor_failures", 1)
		w.trace.emit(TraceEvent{Kind: "sensor-fail", T: d.At, Sensor: d.Sensor})
	}
	for w.bi < len(w.bursts) && w.bursts[w.bi].At <= now {
		b := w.bursts[w.bi]
		w.bi++
		w.stats.Bursts++
		w.tr.Add("fault.bursts", 1)
		w.trace.emit(TraceEvent{Kind: "burst", T: b.At, Batch: len(b.Victims)})
		for _, id := range b.Victims {
			if id >= len(states) || targets[id] < 0 {
				continue
			}
			s := &states[id]
			s.advanceTo(b.At)
			if s.deadAt >= 0 {
				continue
			}
			s.residual -= b.Drain * s.capacity
			if s.residual <= 0 {
				s.residual = 0
				s.deadAt = s.last
				s.died = true
				w.trace.emit(TraceEvent{Kind: "dead", T: s.last, Sensor: id})
			}
		}
	}
}

// next returns the earliest unapplied world event time, or +Inf. The
// simulator's clock jumps must not leap over it: a burst can create
// pending requests out of thin air.
func (w *faultWorld) next() float64 {
	if w == nil {
		return math.Inf(1)
	}
	next := math.Inf(1)
	if w.di < len(w.deaths) {
		next = w.deaths[w.di].At
	}
	if w.bi < len(w.bursts) && w.bursts[w.bi].At < next {
		next = w.bursts[w.bi].At
	}
	return next
}

// roundFaults is the outcome of one round's fault resolution.
type roundFaults struct {
	// unserved lists request indices (into the round's instance) dropped
	// because no surviving MCV could take them.
	unserved []int
	// newDead counts MCVs permanently lost this round.
	newDead int
}

// applyRoundFaults realizes one synchronized round under the fault model:
// it draws per-tour breakdowns, truncates permanently failed tours and
// redistributes their unserved stops among the survivors (the online
// recovery engine), schedules transient repair pauses, and re-executes
// the schedule with travel/charging delay noise while enforcing the
// no-simultaneous-charging constraint. planned is mutated; the returned
// schedule carries the realized times.
func applyRoundFaults(w *faultWorld, round int, start float64, in *core.Instance, planned *core.Schedule) (*core.Schedule, roundFaults) {
	var rf roundFaults
	w.stats.PlannedLongestSum += planned.Longest

	type pause struct{ at, delay float64 }
	pauses := make([]pause, len(planned.Tours))
	dead := make(map[int]bool)
	var orphans []core.Stop
	earliestFail := math.Inf(1)
	for k := range planned.Tours {
		if len(planned.Tours[k].Stops) == 0 {
			continue
		}
		f, ok := w.inj.TourFailure(round, k, planned.Tours[k].Delay)
		if !ok {
			continue
		}
		w.stats.MCVFailures++
		w.stats.Retries += f.Retries
		w.stats.RepairSeconds += f.Delay
		w.tr.Add("fault.mcv_failures", 1)
		w.trace.emit(TraceEvent{Kind: "mcv-fail", T: start + f.At, Charger: k})
		if f.Transient {
			w.stats.Transient++
			pauses[k] = pause{at: f.At, delay: f.Delay}
			continue
		}
		w.stats.Permanent++
		w.tr.Add("fault.mcv_lost", 1)
		dead[k] = true
		rf.newDead++
		if f.At < earliestFail {
			earliestFail = f.At
		}
		orphans = append(orphans, fault.Truncate(&planned.Tours[k], f.At)...)
	}

	if len(orphans) > 0 {
		survivors := 0
		for k := range planned.Tours {
			if !dead[k] {
				survivors++
			}
		}
		if survivors > 0 && !w.inj.RecoveryDisabled() {
			// Stops that physically completed before the first breakdown
			// must not move; later orphans may only land after them.
			frozen := make([]int, len(planned.Tours))
			for k := range planned.Tours {
				if dead[k] {
					continue
				}
				for _, st := range planned.Tours[k].Stops {
					if st.Finish() > earliestFail {
						break
					}
					frozen[k]++
				}
			}
			n := fault.Redistribute(in, planned, dead, frozen, orphans)
			w.stats.Redistributed += n
			w.tr.Add("fault.redistributed", int64(n))
			w.trace.emit(TraceEvent{Kind: "redistribute", T: start + earliestFail, Stops: n})
		} else {
			for _, st := range orphans {
				rf.unserved = append(rf.unserved, st.Covers...)
			}
			sort.Ints(rf.unserved)
			w.stats.Unserved += len(rf.unserved)
			w.tr.Add("fault.unserved", int64(len(rf.unserved)))
		}
	}

	tourPauses := make([]tourPause, len(planned.Tours))
	for k, p := range pauses {
		tourPauses[k] = tourPause{at: p.at, delay: p.delay}
	}
	exec := executeFaulty(w.inj, round, in, planned, tourPauses)
	w.stats.ActualLongestSum += exec.Longest
	return exec, rf
}

// tourPause is one transient-repair outage: the charger's timeline stops
// for delay seconds at offset at.
type tourPause struct{ at, delay float64 }

// executeFaulty mirrors core.Execute — chargers drive their tours in
// global time order and wait out any conflicting committed charging
// interval before starting a stop — but realizes the stochastic fault
// model while doing so: every travel leg is stretched by the injector's
// travel factor, every sojourn by its charge factor, and a transient
// repair pause delays (or interrupts and extends) the charging it
// overlaps. The returned schedule carries realized times and the
// conflict-wait total, and satisfies the no-simultaneous-charging
// constraint by construction.
func executeFaulty(inj *fault.Injector, round int, in *core.Instance, planned *core.Schedule, pauses []tourPause) *core.Schedule {
	out := &core.Schedule{Tours: make([]core.Tour, len(planned.Tours))}
	type cursor struct {
		idx     int
		arrive  float64
		node    int // last visited node, -1 for depot
		done    bool
		paused  bool // transient pause already applied
		elapsed float64
	}
	curs := make([]*cursor, len(planned.Tours))
	for k := range planned.Tours {
		c := &cursor{node: -1}
		if len(planned.Tours[k].Stops) == 0 {
			c.done = true
		} else {
			first := planned.Tours[k].Stops[0]
			c.arrive = in.Travel(in.Depot, in.Requests[first.Node].Pos) *
				inj.TravelFactor(round, -1, first.Node)
		}
		curs[k] = c
		out.Tours[k].Stops = make([]core.Stop, 0, len(planned.Tours[k].Stops))
	}

	type interval struct {
		node       int
		start, end float64
	}
	var committed []interval
	grid := geom.NewGrid(in.Positions(), gridCell(in.Gamma))
	coverCache := make(map[int][]int)
	coverOf := func(node int) []int {
		if cs, ok := coverCache[node]; ok {
			return cs
		}
		cs := append([]int(nil), grid.Neighbors(in.Requests[node].Pos, in.Gamma, nil)...)
		sort.Ints(cs)
		coverCache[node] = cs
		return cs
	}
	conflicts := func(a, b int) bool {
		if geom.Dist(in.Requests[a].Pos, in.Requests[b].Pos) > 2*in.Gamma {
			return false
		}
		return intersectSorted(coverOf(a), coverOf(b))
	}

	// evaluate resolves charger k's next stop to its realized charging
	// window without committing: the repair pause shifts the physical
	// arrival (or, striking mid-charge, extends the duration), then the
	// conflict rule delays the start past committed conflicting
	// intervals. raw is the post-pause physical arrival, so start - raw
	// is pure conflict wait.
	evaluate := func(k int) (start, dur, raw float64, consumed bool) {
		c := curs[k]
		st := planned.Tours[k].Stops[c.idx]
		raw = c.arrive
		p := pauses[k]
		if !c.paused && p.delay > 0 && raw >= p.at {
			raw += p.delay
			consumed = true
		}
		start = raw
		for _, iv := range committed {
			if iv.end > start && conflicts(iv.node, st.Node) {
				start = iv.end
			}
		}
		dur = st.Duration * inj.ChargeFactor(round, st.Node)
		if !c.paused && !consumed && p.delay > 0 && start < p.at && p.at < start+dur {
			dur += p.delay
			consumed = true
		}
		return start, dur, raw, consumed
	}

	for {
		pick := -1
		var pickStart, pickDur, pickRaw float64
		var pickConsumed bool
		for k, c := range curs {
			if c.done {
				continue
			}
			start, dur, raw, consumed := evaluate(k)
			if pick < 0 || start < pickStart {
				pick, pickStart, pickDur, pickRaw, pickConsumed = k, start, dur, raw, consumed
			}
		}
		if pick < 0 {
			break
		}
		c := curs[pick]
		plan := planned.Tours[pick].Stops[c.idx]
		if pickConsumed {
			c.paused = true
		}
		out.WaitTime += pickStart - pickRaw
		committed = append(committed, interval{node: plan.Node, start: pickStart, end: pickStart + pickDur})
		out.Tours[pick].Stops = append(out.Tours[pick].Stops, core.Stop{
			Node:     plan.Node,
			Arrive:   pickStart,
			Duration: pickDur,
			Covers:   append([]int(nil), plan.Covers...),
		})
		c.node = plan.Node
		c.elapsed = pickStart + pickDur
		c.idx++
		if c.idx >= len(planned.Tours[pick].Stops) {
			c.done = true
			out.Tours[pick].Delay = c.elapsed +
				in.Travel(in.Requests[c.node].Pos, in.Depot)*inj.TravelFactor(round, c.node, -1)
		} else {
			next := planned.Tours[pick].Stops[c.idx]
			c.arrive = c.elapsed +
				in.Travel(in.Requests[c.node].Pos, in.Requests[next.Node].Pos)*
					inj.TravelFactor(round, c.node, next.Node)
		}
		if len(committed) > 64 {
			minArrive := pickStart
			for _, cc := range curs {
				if !cc.done && cc.arrive < minArrive {
					minArrive = cc.arrive
				}
			}
			kept := committed[:0]
			for _, iv := range committed {
				if iv.end > minArrive {
					kept = append(kept, iv)
				}
			}
			committed = kept
		}
	}
	// Longest comes from the realized tour delays; core.Finalize would
	// rewrite the realized times back to nominal ones.
	for _, t := range out.Tours {
		if t.Delay > out.Longest {
			out.Longest = t.Delay
		}
	}
	return out
}

// dropUncovered filters "uncovered" violations out of a degraded round's
// verification: requests the fault model left unserved are uncovered by
// design, not by a scheduling bug. Only called when unserved is non-empty.
func dropUncovered(vs []core.Violation) []core.Violation {
	kept := vs[:0]
	for _, v := range vs {
		if v.Kind != "uncovered" {
			kept = append(kept, v)
		}
	}
	return kept
}
