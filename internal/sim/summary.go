package sim

// MeanBatch returns the mean number of requests served per round, or 0
// when no rounds ran.
func (r *Result) MeanBatch() float64 {
	if len(r.Rounds) == 0 {
		return 0
	}
	total := 0
	for _, rd := range r.Rounds {
		total += rd.Batch
	}
	return float64(total) / float64(len(r.Rounds))
}

// MeanStops returns the mean number of sojourn stops per round, or 0 when
// no rounds ran. The ratio MeanBatch/MeanStops is the multi-node
// consolidation factor (1 for one-to-one charging).
func (r *Result) MeanStops() float64 {
	if len(r.Rounds) == 0 {
		return 0
	}
	total := 0
	for _, rd := range r.Rounds {
		total += rd.Stops
	}
	return float64(total) / float64(len(r.Rounds))
}

// ConsolidationFactor returns the mean sensors-charged-per-stop across the
// run (1 means no multi-node benefit), or 0 when nothing was charged.
func (r *Result) ConsolidationFactor() float64 {
	stops := 0
	batch := 0
	for _, rd := range r.Rounds {
		stops += rd.Stops
		batch += rd.Batch
	}
	if stops == 0 {
		return 0
	}
	return float64(batch) / float64(stops)
}

// TotalWait returns the total conflict-avoidance wait time across rounds.
func (r *Result) TotalWait() float64 {
	total := 0.0
	for _, rd := range r.Rounds {
		total += rd.Wait
	}
	return total
}
