package sim

import (
	"encoding/json"
	"io"
)

// TraceEvent is one line of the simulator's structured JSONL trace. Kind
// is one of "dispatch", "charge" or "dead"; the remaining fields are
// populated as applicable. Times are seconds since the simulation start.
type TraceEvent struct {
	// Kind discriminates the event type.
	Kind string `json:"kind"`
	// T is the event time.
	T float64 `json:"t"`
	// Charger is the charger index for dispatch events (-1 otherwise).
	Charger int `json:"charger,omitempty"`
	// Batch is the request count for dispatch events.
	Batch int `json:"batch,omitempty"`
	// Stops is the stop count for dispatch events.
	Stops int `json:"stops,omitempty"`
	// Delay is the longest tour delay for dispatch events.
	Delay float64 `json:"delay,omitempty"`
	// Sensor is the sensor ID for charge/dead events.
	Sensor int `json:"sensor,omitempty"`
	// Energy is the delivered energy for charge events, in joules.
	Energy float64 `json:"energy,omitempty"`
}

// tracer serializes trace events to a writer; a nil tracer drops them.
type tracer struct {
	enc *json.Encoder
	err error
}

func newTracer(w io.Writer) *tracer {
	if w == nil {
		return nil
	}
	return &tracer{enc: json.NewEncoder(w)}
}

func (t *tracer) emit(ev TraceEvent) {
	if t == nil || t.err != nil {
		return
	}
	t.err = t.enc.Encode(ev)
}

// Err returns the first write error, if any.
func (t *tracer) Err() error {
	if t == nil {
		return nil
	}
	return t.err
}
