// Package capacitated extends the paper's model with finite charger
// batteries. The paper assumes "a mobile charger has sufficient energy for
// traveling and sensor charging per charging tour" (Section III-B); its own
// references [13], [14] study the capacitated variant. This package
// post-processes a planned schedule: each charger's tour is split into
// consecutive depot-returning trips such that no trip spends more energy —
// travel plus wireless energy transferred — than the charger battery holds,
// with a configurable depot turnaround for the charger to replenish itself.
package capacitated

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
)

// Params describes the charger's energy model.
type Params struct {
	// CapacityJ is the charger's battery capacity in joules.
	CapacityJ float64
	// MoveJPerM is the travel energy cost in joules per meter
	// (electric cart scale: ~20-50 J/m).
	MoveJPerM float64
	// TransferEfficiency is the wall-to-sensor efficiency of wireless
	// transfer in (0, 1]: delivering E joules into batteries drains
	// E / TransferEfficiency from the charger.
	TransferEfficiency float64
	// TurnaroundS is the time a charger spends at the depot between
	// trips replenishing its own battery, in seconds.
	TurnaroundS float64
}

// Validate reports the first problem with the parameters, or nil.
func (p Params) Validate() error {
	if p.CapacityJ <= 0 || math.IsNaN(p.CapacityJ) {
		return fmt.Errorf("capacitated: capacity = %v, want > 0", p.CapacityJ)
	}
	if p.MoveJPerM < 0 || math.IsNaN(p.MoveJPerM) {
		return fmt.Errorf("capacitated: move cost = %v, want >= 0", p.MoveJPerM)
	}
	if p.TransferEfficiency <= 0 || p.TransferEfficiency > 1 || math.IsNaN(p.TransferEfficiency) {
		return fmt.Errorf("capacitated: transfer efficiency = %v, want in (0, 1]", p.TransferEfficiency)
	}
	if p.TurnaroundS < 0 || math.IsNaN(p.TurnaroundS) {
		return fmt.Errorf("capacitated: turnaround = %v, want >= 0", p.TurnaroundS)
	}
	return nil
}

// Trip is one depot-to-depot leg of a charger's workload.
type Trip struct {
	// Tour holds the stops with times relative to the trip's own start.
	Tour core.Tour
	// Start is when the trip begins, relative to the charger's dispatch.
	Start float64
	// EnergyJ is the charger energy the trip consumes.
	EnergyJ float64
}

// Plan is a capacitated schedule: each charger runs its trips in sequence,
// returning to the depot to replenish between them.
type Plan struct {
	// Chargers[k] lists charger k's trips in execution order.
	Chargers [][]Trip
	// Longest is the maximum, over chargers, of the completion time of
	// the last trip (including turnarounds), in seconds.
	Longest float64
	// TotalEnergyJ is the total charger energy consumed by all trips.
	TotalEnergyJ float64
	// Trips is the total number of trips.
	Trips int
}

// stopEnergy returns the charger energy one stop consumes: the energy
// transferred into every sensor the stop charges, scaled by the transfer
// efficiency. Instance charge durations encode needed energy via the
// network charging rate eta; the caller supplies eta to convert back.
func stopEnergy(in *core.Instance, st core.Stop, eta float64, p Params) float64 {
	total := 0.0
	for _, u := range st.Covers {
		total += in.Requests[u].Duration * eta
	}
	return total / p.TransferEfficiency
}

// Split converts a planned schedule into a capacitated plan for chargers
// with the given parameters. eta is the charging rate in watts (the same
// rate the instance's durations were computed with). It fails if any
// single stop alone exceeds the charger capacity — no trip structure can
// fix that; the caller must raise CapacityJ or lower eta.
func Split(ctx context.Context, in *core.Instance, s *core.Schedule, eta float64, p Params) (*Plan, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if eta <= 0 || math.IsNaN(eta) {
		return nil, fmt.Errorf("capacitated: eta = %v, want > 0", eta)
	}
	plan := &Plan{Chargers: make([][]Trip, len(s.Tours))}
	for k, tour := range s.Tours {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("capacitated: %w", err)
		}
		trips, err := splitTour(in, tour, eta, p)
		if err != nil {
			return nil, fmt.Errorf("capacitated: charger %d: %w", k, err)
		}
		// Lay the trips out in time.
		clock := 0.0
		for i := range trips {
			trips[i].Start = clock
			clock += trips[i].Tour.Delay
			if i < len(trips)-1 {
				clock += p.TurnaroundS
			}
			plan.TotalEnergyJ += trips[i].EnergyJ
			plan.Trips++
		}
		if clock > plan.Longest {
			plan.Longest = clock
		}
		plan.Chargers[k] = trips
	}
	return plan, nil
}

// splitTour greedily packs consecutive stops into trips whose energy —
// travel out, between stops, and back, plus transfer — fits the capacity.
func splitTour(in *core.Instance, tour core.Tour, eta float64, p Params) ([]Trip, error) {
	if len(tour.Stops) == 0 {
		return nil, nil
	}
	var trips []Trip
	var cur []core.Stop
	curEnergy := 0.0 // travel-so-far + transfer, excluding the return leg
	pos := in.Depot
	returnCost := func(from geom.Point) float64 {
		return geom.Dist(from, in.Depot) * p.MoveJPerM
	}
	flush := func() {
		if len(cur) == 0 {
			return
		}
		t := core.Tour{Stops: cur}
		core.FinalizeTour(in, &t)
		trips = append(trips, Trip{Tour: t, EnergyJ: curEnergy + returnCost(pos)})
		cur = nil
		curEnergy = 0
		pos = in.Depot
	}
	for _, st := range tour.Stops {
		stPos := in.Requests[st.Node].Pos
		hop := geom.Dist(pos, stPos) * p.MoveJPerM
		transfer := stopEnergy(in, st, eta, p)
		// Can this stop alone ever fit?
		solo := geom.Dist(in.Depot, stPos)*2*p.MoveJPerM + transfer
		if solo > p.CapacityJ {
			return nil, fmt.Errorf("stop at node %d needs %.0f J alone, capacity %.0f J",
				st.Node, solo, p.CapacityJ)
		}
		if curEnergy+hop+transfer+returnCost(stPos) > p.CapacityJ {
			flush()
			hop = geom.Dist(in.Depot, stPos) * p.MoveJPerM
		}
		// Reset the per-trip times; FinalizeTour recomputes them.
		st.Arrive = 0
		cur = append(cur, st)
		curEnergy += hop + transfer
		pos = stPos
	}
	flush()
	return trips, nil
}
