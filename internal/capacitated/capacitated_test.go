package capacitated

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

func params() Params {
	return Params{
		CapacityJ:          2e6, // 2 MJ charger battery
		MoveJPerM:          30,
		TransferEfficiency: 0.5,
		TurnaroundS:        1800,
	}
}

func planned(t *testing.T, rng *rand.Rand, n, k int) (*core.Instance, *core.Schedule) {
	t.Helper()
	in := &core.Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: k}
	for i := 0; i < n; i++ {
		in.Requests = append(in.Requests, core.Request{
			Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
			Duration: (1.2 + 0.3*rng.Float64()) * 3600,
		})
	}
	s, err := core.ApproPlanner{}.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	return in, s
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero capacity", func(p *Params) { p.CapacityJ = 0 }},
		{"negative move", func(p *Params) { p.MoveJPerM = -1 }},
		{"zero efficiency", func(p *Params) { p.TransferEfficiency = 0 }},
		{"efficiency above 1", func(p *Params) { p.TransferEfficiency = 1.5 }},
		{"negative turnaround", func(p *Params) { p.TurnaroundS = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := params()
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("expected error")
			}
		})
	}
	if err := params().Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestSplitPreservesStops(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in, s := planned(t, rng, 150, 2)
	plan, err := Split(context.Background(), in, s, 2, params())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Chargers) != 2 {
		t.Fatalf("chargers = %d", len(plan.Chargers))
	}
	// Stops per charger must be preserved in order across its trips.
	for k, tour := range s.Tours {
		var got []int
		for _, trip := range plan.Chargers[k] {
			for _, st := range trip.Tour.Stops {
				got = append(got, st.Node)
			}
		}
		if len(got) != len(tour.Stops) {
			t.Fatalf("charger %d: %d stops after split, want %d", k, len(got), len(tour.Stops))
		}
		for i := range got {
			if got[i] != tour.Stops[i].Node {
				t.Fatalf("charger %d: stop order changed at %d", k, i)
			}
		}
	}
}

func TestSplitRespectsCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in, s := planned(t, rng, 200, 2)
	p := params()
	plan, err := Split(context.Background(), in, s, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Trips < 3 {
		t.Errorf("expected multiple trips under a 2 MJ budget, got %d", plan.Trips)
	}
	for k, trips := range plan.Chargers {
		for i, trip := range trips {
			if trip.EnergyJ > p.CapacityJ+1e-6 {
				t.Errorf("charger %d trip %d uses %.0f J > capacity", k, i, trip.EnergyJ)
			}
			if trip.EnergyJ <= 0 {
				t.Errorf("charger %d trip %d has no energy use", k, i)
			}
		}
	}
}

func TestSplitTimeLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in, s := planned(t, rng, 120, 2)
	p := params()
	plan, err := Split(context.Background(), in, s, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	for k, trips := range plan.Chargers {
		clock := 0.0
		for i, trip := range trips {
			if math.Abs(trip.Start-clock) > 1e-6 {
				t.Fatalf("charger %d trip %d starts at %v, want %v", k, i, trip.Start, clock)
			}
			clock += trip.Tour.Delay
			if i < len(trips)-1 {
				clock += p.TurnaroundS
			}
		}
		if clock > plan.Longest+1e-6 {
			t.Fatalf("charger %d finishes at %v after Longest %v", k, clock, plan.Longest)
		}
	}
	// Capacitated plan can only be slower than the uncapacitated one.
	if plan.Longest < s.Longest-1e-6 {
		t.Errorf("capacitated longest %v below planned %v", plan.Longest, s.Longest)
	}
}

func TestSplitInfiniteCapacityIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in, s := planned(t, rng, 100, 2)
	p := params()
	p.CapacityJ = 1e12
	plan, err := Split(context.Background(), in, s, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Trips != countNonEmpty(s) {
		t.Errorf("huge capacity should give one trip per non-empty tour: %d vs %d",
			plan.Trips, countNonEmpty(s))
	}
	if math.Abs(plan.Longest-s.Longest) > 1e-6 {
		t.Errorf("huge capacity Longest = %v, want %v", plan.Longest, s.Longest)
	}
}

func countNonEmpty(s *core.Schedule) int {
	n := 0
	for _, tour := range s.Tours {
		if len(tour.Stops) > 0 {
			n++
		}
	}
	return n
}

func TestSplitRejectsImpossibleStop(t *testing.T) {
	in := &core.Instance{
		Depot:    geom.Pt(0, 0),
		Requests: []core.Request{{Pos: geom.Pt(10, 0), Duration: 1e6}}, // 2 GJ at eta=2
		Gamma:    2.7, Speed: 1, K: 1,
	}
	s, err := core.ApproPlanner{}.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Split(context.Background(), in, s, 2, params()); err == nil {
		t.Error("oversized single stop should be rejected")
	}
}

func TestSplitValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in, s := planned(t, rng, 10, 1)
	if _, err := Split(context.Background(), in, s, 0, params()); err == nil {
		t.Error("eta=0 accepted")
	}
	bad := params()
	bad.CapacityJ = -1
	if _, err := Split(context.Background(), in, s, 2, bad); err == nil {
		t.Error("bad params accepted")
	}
	badIn := *in
	badIn.Speed = 0
	if _, err := Split(context.Background(), &badIn, s, 2, params()); err == nil {
		t.Error("bad instance accepted")
	}
}

func TestSplitEmptySchedule(t *testing.T) {
	in := &core.Instance{Depot: geom.Pt(0, 0), Gamma: 2.7, Speed: 1, K: 2}
	s := &core.Schedule{Tours: make([]core.Tour, 2)}
	plan, err := Split(context.Background(), in, s, 2, params())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Trips != 0 || plan.Longest != 0 {
		t.Errorf("empty schedule plan: %+v", plan)
	}
}
