// Package par is the planning engine's deterministic parallelism layer: a
// bounded, context-aware worker pool whose results are byte-identical to a
// sequential run at any worker count.
//
// The determinism contract has three legs, and every caller in this
// repository leans on all of them:
//
//   - Work is identified by index. Do runs fn(ctx, i) for i in [0, tasks);
//     Map additionally collects fn's results into a slice slot i. Workers
//     race over *which goroutine* runs an index, never over *where its
//     result lands*, so the assembled output is independent of scheduling.
//   - Errors are reported by lowest index, not by arrival time. A run that
//     fails on tasks 7 and 3 always reports task 3's error, at any worker
//     count.
//   - Seeding is the caller's job: derive per-task seeds from the task
//     index (never from shared mutable state) and equal inputs give equal
//     outputs regardless of interleaving.
//
// Cancellation: once ctx is done, no new task starts; already-running
// tasks finish on their own (they receive the same ctx and are expected to
// honor it). Do and Map then report ctx.Err() unless an earlier task error
// takes precedence. Callers that aggregate partial results should track
// completion per index themselves (see internal/experiments).
//
// When ctx carries an *obs.Tracer, each call records par.batches (one per
// Do/Map call), par.tasks (tasks submitted) and par.workers (goroutines
// used, after clamping); these land next to the cache.* counters in
// -trace-json output.
package par

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/obs"
)

// Size resolves a requested worker count: values <= 0 mean
// runtime.GOMAXPROCS(0), anything else is returned unchanged.
func Size(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Do runs fn(ctx, i) for every i in [0, tasks) on at most Size(workers)
// concurrent goroutines and waits for all of them.
//
// All tasks are attempted even when some fail — a planning sweep should
// not lose cell 900 because cell 3 hit a bad seed — and the returned error
// is the failing task with the lowest index (deterministic at any worker
// count). When ctx is cancelled, not-yet-started tasks are skipped and the
// context error is returned instead, unless a task error (lowest index)
// already occurred.
//
// With workers resolving to 1 the tasks run inline on the calling
// goroutine in index order, with no channel or goroutine overhead — the
// sequential seed behavior, byte for byte.
func Do(ctx context.Context, tasks, workers int, fn func(ctx context.Context, i int) error) error {
	if tasks <= 0 {
		return ctx.Err()
	}
	w := Size(workers)
	if w > tasks {
		w = tasks
	}
	tr := obs.FromContext(ctx)
	tr.Add("par.batches", 1)
	tr.Add("par.tasks", int64(tasks))
	tr.Add("par.workers", int64(w))

	var errs []error
	if w == 1 {
		for i := 0; i < tasks; i++ {
			if ctx.Err() != nil {
				break
			}
			if err := fn(ctx, i); err != nil {
				if errs == nil {
					errs = make([]error, tasks)
				}
				errs[i] = err
			}
		}
		return firstError(ctx, errs)
	}

	errs = make([]error, tasks)
	work := make(chan int)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if ctx.Err() != nil {
					continue // drain remaining indices without running them
				}
				errs[i] = fn(ctx, i)
			}
		}()
	}
dispatch:
	for i := 0; i < tasks; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(work)
	wg.Wait()
	return firstError(ctx, errs)
}

// Map runs fn(ctx, i) for every i in [0, tasks) on at most Size(workers)
// goroutines and returns the results indexed by task. Slots whose task
// failed or was skipped by cancellation hold the zero value; the error
// follows Do's contract (lowest-index task error, else ctx.Err()).
func Map[T any](ctx context.Context, tasks, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, tasks)
	err := Do(ctx, tasks, workers, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}

// firstError returns the lowest-index task error, else ctx.Err(), else nil.
func firstError(ctx context.Context, errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}
