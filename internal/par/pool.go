package par

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/obs"
)

// ErrSaturated is returned by Pool.Run when every worker slot is busy and
// every queue slot is taken. Callers doing admission control (the planning
// service) map it to a retryable rejection — HTTP 429 — rather than
// letting load build up unbounded.
var ErrSaturated = errors.New("par: pool saturated: all workers busy and queue full")

// Pool is the persistent counterpart to Do/Map: a bounded worker pool with
// an explicit admission queue, built for request-serving workloads where
// tasks arrive one at a time and overload must be rejected, not buffered.
//
// Run executes the task on the submitting goroutine once it holds one of
// the pool's worker slots, so the pool adds no goroutine hops and the
// task inherits the caller's context (deadline, tracer) unchanged. At
// most Workers tasks run at once; at most QueueDepth callers wait for a
// slot; any caller beyond that is turned away immediately with
// ErrSaturated. This gives a hard bound on both concurrency and queueing
// delay: admitted work is at most QueueDepth tasks from starting.
//
// A Pool is safe for concurrent use. When a caller's ctx carries an
// *obs.Tracer, Run records par.pool.runs, par.pool.queued and
// par.pool.rejected on it, next to Do/Map's par.* counters.
type Pool struct {
	workers chan struct{} // worker-slot semaphore, capacity = worker count
	queue   chan struct{} // waiter semaphore, capacity = queue depth

	submitted atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
}

// NewPool returns a pool with Size(workers) worker slots and queueDepth
// waiting slots (negative means 0: overflow is rejected as soon as all
// workers are busy).
func NewPool(workers, queueDepth int) *Pool {
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &Pool{
		workers: make(chan struct{}, Size(workers)),
		queue:   make(chan struct{}, queueDepth),
	}
}

// Run executes fn on the calling goroutine under a worker slot and
// returns fn's error. When all workers are busy it waits in the admission
// queue for a slot — unless the queue is full too, in which case it
// returns ErrSaturated without running fn. A caller whose ctx is
// cancelled while it waits leaves the queue and returns ctx.Err(); fn is
// never started with an already-cancelled admission.
func (p *Pool) Run(ctx context.Context, fn func(context.Context) error) error {
	p.submitted.Add(1)
	tr := obs.FromContext(ctx)
	select {
	case p.workers <- struct{}{}:
	default:
		// Every worker is busy; try to take a waiting slot.
		select {
		case p.queue <- struct{}{}:
		default:
			p.rejected.Add(1)
			tr.Add("par.pool.rejected", 1)
			return ErrSaturated
		}
		tr.Add("par.pool.queued", 1)
		select {
		case p.workers <- struct{}{}:
			<-p.queue
		case <-ctx.Done():
			<-p.queue
			return ctx.Err()
		}
	}
	defer func() {
		<-p.workers
		p.completed.Add(1)
	}()
	tr.Add("par.pool.runs", 1)
	return fn(ctx)
}

// PoolStats is a point-in-time pool snapshot.
type PoolStats struct {
	// Workers and QueueDepth are the configured bounds.
	Workers, QueueDepth int
	// Active is the number of worker slots currently held; Queued the
	// number of callers currently waiting for one.
	Active, Queued int
	// Submitted counts Run calls, Rejected those turned away with
	// ErrSaturated, and Completed tasks that ran to the end (successfully
	// or not).
	Submitted, Rejected, Completed int64
}

// Stats snapshots the pool counters. Active and Queued are instantaneous
// channel lengths, so concurrent Runs may move them between reads.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:    cap(p.workers),
		QueueDepth: cap(p.queue),
		Active:     len(p.workers),
		Queued:     len(p.queue),
		Submitted:  p.submitted.Load(),
		Rejected:   p.rejected.Load(),
		Completed:  p.completed.Load(),
	}
}
