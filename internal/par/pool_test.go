package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// fillPool occupies every worker slot with a task blocked on release and
// returns once all of them are running.
func fillPool(t *testing.T, p *Pool, workers int) (release chan struct{}, done *sync.WaitGroup) {
	t.Helper()
	release = make(chan struct{})
	running := make(chan struct{}, workers)
	done = &sync.WaitGroup{}
	for i := 0; i < workers; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			err := p.Run(context.Background(), func(context.Context) error {
				running <- struct{}{}
				<-release
				return nil
			})
			if err != nil {
				t.Errorf("blocked worker task failed: %v", err)
			}
		}()
	}
	for i := 0; i < workers; i++ {
		select {
		case <-running:
		case <-time.After(5 * time.Second):
			t.Fatal("worker tasks did not start")
		}
	}
	return release, done
}

func TestPoolRunsInline(t *testing.T) {
	p := NewPool(2, 4)
	var ran bool
	if err := p.Run(context.Background(), func(context.Context) error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("fn did not run")
	}
	wantErr := errors.New("task failed")
	if err := p.Run(context.Background(), func(context.Context) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want the task's error", err)
	}
	st := p.Stats()
	if st.Submitted != 2 || st.Completed != 2 || st.Rejected != 0 || st.Active != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolSaturationRejects(t *testing.T) {
	const workers, depth = 2, 1
	p := NewPool(workers, depth)
	release, done := fillPool(t, p, workers)

	// One caller fits the queue and blocks waiting for a slot.
	queuedErr := make(chan error, 1)
	go func() {
		queuedErr <- p.Run(context.Background(), func(context.Context) error { return nil })
	}()
	waitFor(t, func() bool { return p.Stats().Queued == depth })

	// The next caller is beyond workers+depth: rejected immediately.
	if err := p.Run(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, ErrSaturated) {
		t.Fatalf("overflow Run = %v, want ErrSaturated", err)
	}

	close(release)
	done.Wait()
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued task should run after a slot frees: %v", err)
	}
	st := p.Stats()
	if st.Rejected != 1 || st.Completed != workers+1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolQueuedCallerHonorsCancellation(t *testing.T) {
	p := NewPool(1, 2)
	release, done := fillPool(t, p, 1)

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	started := atomic.Bool{}
	go func() {
		errCh <- p.Run(ctx, func(context.Context) error { started.Store(true); return nil })
	}()
	waitFor(t, func() bool { return p.Stats().Queued == 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v", err)
	}
	if started.Load() {
		t.Fatal("fn ran despite cancelled admission")
	}
	if st := p.Stats(); st.Queued != 0 {
		t.Fatalf("queue slot leaked: %+v", st)
	}
	close(release)
	done.Wait()
}

func TestPoolCounters(t *testing.T) {
	tr := obs.New()
	ctx := obs.WithTracer(context.Background(), tr)
	p := NewPool(1, 0)
	release, done := fillPool(t, p, 1)
	if err := p.Run(ctx, func(context.Context) error { return nil }); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v", err)
	}
	close(release)
	done.Wait()
	if err := p.Run(ctx, func(context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	got := tr.Report().Counters
	if got["par.pool.rejected"] != 1 || got["par.pool.runs"] != 1 {
		t.Fatalf("tracer counters = %v", got)
	}
}

func TestPoolConcurrencyNeverExceedsWorkers(t *testing.T) {
	const workers = 3
	p := NewPool(workers, 64)
	var active, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.Run(context.Background(), func(context.Context) error {
				n := active.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				active.Add(-1)
				return nil
			})
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", got, workers)
	}
	st := p.Stats()
	if st.Completed+st.Rejected != 100 || st.Active != 0 || st.Queued != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
