package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestSize(t *testing.T) {
	if got := Size(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Size(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Size(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Size(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Size(7); got != 7 {
		t.Errorf("Size(7) = %d, want 7", got)
	}
}

func TestDoRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const tasks = 100
			counts := make([]int32, tasks)
			err := Do(context.Background(), tasks, workers, func(_ context.Context, i int) error {
				atomic.AddInt32(&counts[i], 1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("task %d ran %d times", i, c)
				}
			}
		})
	}
}

func TestDoZeroTasks(t *testing.T) {
	if err := Do(context.Background(), 0, 4, func(context.Context, int) error {
		t.Fatal("fn called for zero tasks")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDoLowestIndexError pins the deterministic error contract: the error
// of the lowest failing index wins, at every worker count, even though a
// higher index may fail first in wall-clock time.
func TestDoLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			err := Do(context.Background(), 50, workers, func(_ context.Context, i int) error {
				switch i {
				case 3, 7, 41:
					return fmt.Errorf("task %d failed", i)
				}
				return nil
			})
			if err == nil || err.Error() != "task 3 failed" {
				t.Fatalf("got error %v, want task 3's", err)
			}
		})
	}
}

// TestDoContinuesPastErrors verifies a failing task does not abort its
// siblings: every other task still runs.
func TestDoContinuesPastErrors(t *testing.T) {
	const tasks = 40
	var ran int32
	err := Do(context.Background(), tasks, 4, func(_ context.Context, i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if ran != tasks {
		t.Fatalf("ran %d of %d tasks", ran, tasks)
	}
}

func TestDoCancellationSkipsRemaining(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	err := Do(ctx, 1000, 2, func(_ context.Context, i int) error {
		if atomic.AddInt32(&ran, 1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&ran); n >= 1000 {
		t.Fatalf("cancellation did not skip any of the %d tasks", n)
	}
}

// TestDoTaskErrorBeatsCancellation: when a task fails and the context is
// later cancelled, the deterministic task error is still reported.
func TestDoTaskErrorBeatsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	err := Do(ctx, 10, 2, func(_ context.Context, i int) error {
		if i == 0 {
			return boom
		}
		if i == 9 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want task 0's error", err)
	}
}

// TestMapDeterministicAcrossWorkerCounts is the headline guarantee: the
// assembled result slice is byte-identical at any worker count.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	compute := func(workers int) []string {
		out, err := Map(context.Background(), 64, workers, func(_ context.Context, i int) (string, error) {
			// Sleep jitter makes completion order differ from index order.
			time.Sleep(time.Duration((i*37)%5) * time.Millisecond)
			return fmt.Sprintf("task-%d", i*i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := compute(1)
	for _, workers := range []int{2, 8} {
		got := compute(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d diverged at %d: %q vs %q", workers, i, got[i], want[i])
			}
		}
	}
}

func TestDoCounters(t *testing.T) {
	tr := obs.New()
	ctx := obs.WithTracer(context.Background(), tr)
	if err := Do(ctx, 10, 4, func(context.Context, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	r := tr.Report()
	if r.Counters["par.batches"] != 1 || r.Counters["par.tasks"] != 10 || r.Counters["par.workers"] != 4 {
		t.Fatalf("counters = %v", r.Counters)
	}
	// Worker clamp: more workers than tasks records the clamped count.
	if err := Do(ctx, 2, 16, func(context.Context, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := tr.Report().Counters["par.workers"]; got != 4+2 {
		t.Fatalf("par.workers after clamped batch = %d, want 6", got)
	}
}
