package workload

import (
	"testing"

	"repro/internal/energy"
)

func TestNewParamsMatchPaper(t *testing.T) {
	p := NewParams(1000)
	if p.N != 1000 || p.FieldSide != 100 || p.BatteryJ != 10800 ||
		p.Gamma != 2.7 || p.Speed != 1 || p.ChargeRate != 2 ||
		p.BMinBps != 1e3 || p.BMaxBps != 50e3 {
		t.Errorf("paper defaults wrong: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"negative N", func(p *Params) { p.N = -1 }},
		{"zero field", func(p *Params) { p.FieldSide = 0 }},
		{"zero battery", func(p *Params) { p.BatteryJ = 0 }},
		{"rate bounds inverted", func(p *Params) { p.BMaxBps = p.BMinBps - 1 }},
		{"negative rate", func(p *Params) { p.BMinBps = -1 }},
		{"residual bounds inverted", func(p *Params) { p.InitialResidualLow = 0.9; p.InitialResidualHigh = 0.5 }},
		{"residual above one", func(p *Params) { p.InitialResidualHigh = 1.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := NewParams(100)
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := NewParams(200)
	a, err := Generate(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sensors {
		if a.Sensors[i].Pos != b.Sensors[i].Pos || a.Sensors[i].DataRate != b.Sensors[i].DataRate {
			t.Fatal("same seed produced different networks")
		}
	}
	c, err := Generate(p, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sensors[0].Pos == c.Sensors[0].Pos {
		t.Error("different seeds produced identical first sensor (suspicious)")
	}
}

func TestGenerateProperties(t *testing.T) {
	p := NewParams(500)
	nw, err := Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Sensors) != 500 {
		t.Fatalf("sensors = %d", len(nw.Sensors))
	}
	if nw.Base != nw.Field.Center() || nw.Depot != nw.Base {
		t.Error("base/depot should be at field center")
	}
	for i, s := range nw.Sensors {
		if !nw.Field.Contains(s.Pos) {
			t.Fatalf("sensor %d outside field: %v", i, s.Pos)
		}
		if s.DataRate < p.BMinBps || s.DataRate > p.BMaxBps {
			t.Fatalf("sensor %d data rate %v outside bounds", i, s.DataRate)
		}
		frac := s.Battery.Fraction()
		if frac < p.InitialResidualLow-1e-9 || frac > p.InitialResidualHigh+1e-9 {
			t.Fatalf("sensor %d residual fraction %v outside bounds", i, frac)
		}
		if s.Draw <= 0 {
			t.Fatalf("sensor %d has non-positive draw", i)
		}
	}
}

func TestGenerateClustered(t *testing.T) {
	p := NewParams(300)
	p.Clusters = 4
	nw, err := Generate(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Sensors) != 300 {
		t.Fatalf("sensors = %d", len(nw.Sensors))
	}
	for _, s := range nw.Sensors {
		if !nw.Field.Contains(s.Pos) {
			t.Fatal("clustered sensor outside field (clamp failed)")
		}
	}
}

func TestGenerateZeroSensors(t *testing.T) {
	nw, err := Generate(NewParams(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Sensors) != 0 {
		t.Error("expected empty network")
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	p := NewParams(10)
	p.BatteryJ = -1
	if _, err := Generate(p, 1); err == nil {
		t.Error("expected error")
	}
}

// TestCalibration documents the load regime the evaluation depends on: at
// n = 1000 with paper parameters, the aggregate network draw should be in
// the same ballpark as (and somewhat above) the 4 W that K = 2 chargers
// can deliver one-to-one, so that multi-node charging is the difference
// between keeping up and falling behind.
func TestCalibration(t *testing.T) {
	nw, err := Generate(NewParams(1000), 3)
	if err != nil {
		t.Fatal(err)
	}
	total := nw.TotalDraw()
	if total < 1 || total > 20 {
		t.Errorf("total draw at n=1000 is %.2f W; calibration regression (want ~1-20 W)", total)
	}
	// And average per-sensor lifetime should be days, not minutes/years.
	avgDraw := total / 1000
	days := energy.Lifetime(10800, avgDraw) / 86400
	if days < 1 || days > 200 {
		t.Errorf("avg sensor lifetime %.1f days; calibration regression", days)
	}
	t.Logf("n=1000: total draw %.2f W, avg lifetime %.1f days", total, days)
}
