// Package workload generates WRSN instances matching the paper's
// experimental environment (Section VI-A): n sensors uniformly random in a
// 100 x 100 m^2 field, base station and depot at the center, 10.8 kJ
// batteries, data rates uniform in [b_min, b_max], charging radius 2.7 m,
// charger speed 1 m/s and charging rate 2 W. It also provides a clustered
// deployment variant for the example scenarios.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/wrsn"
)

// Params describes one generated WRSN. NewParams fills the paper defaults.
type Params struct {
	// N is the number of sensors (paper: 200..1200).
	N int
	// FieldSide is the square field side in meters (paper: 100).
	FieldSide float64
	// BatteryJ is the sensor battery capacity in joules (paper: 10800).
	BatteryJ float64
	// BMinBps and BMaxBps bound the sensing data rate in bits/s
	// (paper: 1 kbps and 50 kbps).
	BMinBps, BMaxBps float64
	// Gamma is the charging radius in meters (paper: 2.7).
	Gamma float64
	// Speed is the charger travel speed in m/s (paper: 1).
	Speed float64
	// ChargeRate is eta in watts (paper: 2).
	ChargeRate float64
	// TxRange is the sensor transmission range in meters.
	TxRange float64
	// Radio is the consumption model.
	Radio energy.RadioModel
	// Clusters > 0 places sensors in that many Gaussian clusters instead
	// of uniformly.
	Clusters int
	// ClusterStd is the cluster standard deviation in meters (default 8).
	ClusterStd float64
	// InitialResidualLow/High bound the initial residual battery fraction
	// drawn uniformly per sensor; defaults [0.25, 1.0] so that requests
	// de-synchronize at simulation start.
	InitialResidualLow, InitialResidualHigh float64
}

// NewParams returns the paper's default parameters for n sensors.
func NewParams(n int) Params {
	return Params{
		N:                   n,
		FieldSide:           100,
		BatteryJ:            10800,
		BMinBps:             1e3,
		BMaxBps:             50e3,
		Gamma:               2.7,
		Speed:               1,
		ChargeRate:          2,
		TxRange:             20,
		Radio:               energy.DefaultRadio(),
		InitialResidualLow:  0.25,
		InitialResidualHigh: 1.0,
	}
}

// Validate reports the first problem with the parameters, or nil.
func (p Params) Validate() error {
	if p.N < 0 {
		return fmt.Errorf("workload: N = %d, want >= 0", p.N)
	}
	if p.FieldSide <= 0 {
		return fmt.Errorf("workload: field side = %v, want > 0", p.FieldSide)
	}
	if p.BatteryJ <= 0 {
		return fmt.Errorf("workload: battery = %v J, want > 0", p.BatteryJ)
	}
	if p.BMinBps < 0 || p.BMaxBps < p.BMinBps {
		return fmt.Errorf("workload: data rate bounds [%v, %v] invalid", p.BMinBps, p.BMaxBps)
	}
	if p.InitialResidualLow < 0 || p.InitialResidualHigh > 1 ||
		p.InitialResidualHigh < p.InitialResidualLow {
		return fmt.Errorf("workload: initial residual bounds [%v, %v] invalid",
			p.InitialResidualLow, p.InitialResidualHigh)
	}
	return nil
}

// Generate builds a routed WRSN from the parameters using the given seed.
// The same seed always yields the same network.
func Generate(p Params, seed int64) (*wrsn.Network, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	field := geom.Square(p.FieldSide)
	center := field.Center()
	nw := &wrsn.Network{
		Field:      field,
		Base:       center,
		Depot:      center,
		TxRange:    p.TxRange,
		Gamma:      p.Gamma,
		ChargeRate: p.ChargeRate,
		Speed:      p.Speed,
		Radio:      p.Radio,
	}
	var centers []geom.Point
	if p.Clusters > 0 {
		centers = make([]geom.Point, p.Clusters)
		for i := range centers {
			centers[i] = geom.Pt(rng.Float64()*p.FieldSide, rng.Float64()*p.FieldSide)
		}
	}
	std := p.ClusterStd
	if std <= 0 {
		std = 8
	}
	for i := 0; i < p.N; i++ {
		var pos geom.Point
		if len(centers) > 0 {
			c := centers[i%len(centers)]
			pos = field.Clamp(geom.Pt(c.X+rng.NormFloat64()*std, c.Y+rng.NormFloat64()*std))
		} else {
			pos = geom.Pt(rng.Float64()*p.FieldSide, rng.Float64()*p.FieldSide)
		}
		frac := p.InitialResidualLow +
			rng.Float64()*(p.InitialResidualHigh-p.InitialResidualLow)
		nw.Sensors = append(nw.Sensors, wrsn.Sensor{
			ID:       i,
			Pos:      pos,
			DataRate: p.BMinBps + rng.Float64()*(p.BMaxBps-p.BMinBps),
			Battery:  energy.Battery{Capacity: p.BatteryJ, Residual: frac * p.BatteryJ},
			Parent:   -1,
		})
	}
	nw.BuildRouting()
	if err := nw.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated network invalid: %w", err)
	}
	return nw, nil
}
