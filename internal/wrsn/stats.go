package wrsn

import (
	"math"

	"repro/internal/geom"
	"repro/internal/stats"
)

// Stats summarizes a routed network's load profile; the calibration notes
// in DESIGN.md and the wrsn-gen tool use it.
type Stats struct {
	// Sensors is the population size.
	Sensors int
	// TotalDrawW is the aggregate power draw in watts.
	TotalDrawW float64
	// MeanDrawW / MaxDrawW summarize per-sensor draw.
	MeanDrawW, MaxDrawW float64
	// MeanHops is the mean routing-tree hop count to the base station.
	MeanHops float64
	// MaxHops is the deepest routing path.
	MaxHops int
	// DirectUplinks counts sensors whose routing parent is the base
	// station itself.
	DirectUplinks int
	// MeanLifetimeDays is the mean full-battery lifetime in days.
	MeanLifetimeDays float64
	// MinLifetimeHours is the hottest sensor's full-battery lifetime in
	// hours (the relay-heavy energy-hole sensors).
	MinLifetimeHours float64
	// MeanNeighbors is the mean charging-graph degree at radius gamma —
	// how many sensors a single sojourn can co-charge.
	MeanNeighbors float64
}

// ComputeStats derives summary statistics from a routed network.
func (nw *Network) ComputeStats() Stats {
	st := Stats{Sensors: len(nw.Sensors)}
	if len(nw.Sensors) == 0 {
		return st
	}
	var draw, life stats.Accumulator
	hops := make([]int, len(nw.Sensors))
	for i := range hops {
		hops[i] = -1
	}
	var hopOf func(i int) int
	hopOf = func(i int) int {
		if hops[i] >= 0 {
			return hops[i]
		}
		p := nw.Sensors[i].Parent
		if p < 0 {
			hops[i] = 1
		} else {
			hops[i] = hopOf(p) + 1
		}
		return hops[i]
	}
	var hopAcc stats.Accumulator
	for i := range nw.Sensors {
		s := &nw.Sensors[i]
		draw.Add(s.Draw)
		if s.Draw > 0 {
			life.Add(s.Battery.Capacity / s.Draw)
		}
		h := hopOf(i)
		hopAcc.Add(float64(h))
		if h > st.MaxHops {
			st.MaxHops = h
		}
		if s.Parent < 0 {
			st.DirectUplinks++
		}
	}
	st.TotalDrawW = draw.Mean() * float64(draw.N())
	st.MeanDrawW = draw.Mean()
	st.MaxDrawW = draw.Max()
	st.MeanHops = hopAcc.Mean()
	st.MeanLifetimeDays = life.Mean() / 86400
	if life.N() > 0 {
		st.MinLifetimeHours = life.Min() / 3600
	} else {
		st.MinLifetimeHours = math.Inf(1)
	}
	// Charging-graph degree at radius gamma.
	grid := geom.NewGrid(nw.Positions(), cell(nw.Gamma))
	var deg stats.Accumulator
	var buf []int
	for i := range nw.Sensors {
		buf = grid.NeighborsOf(i, nw.Gamma, buf)
		deg.Add(float64(len(buf)))
	}
	st.MeanNeighbors = deg.Mean()
	return st
}

func cell(gamma float64) float64 {
	if gamma <= 0 {
		return 1
	}
	return gamma
}
