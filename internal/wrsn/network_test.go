package wrsn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/energy"
	"repro/internal/geom"
)

func lineNetwork() *Network {
	// Base at origin; sensors in a chain at x = 10, 20, 30 with TxRange
	// 12: routing must be 0 <- 1 <- 2 with sensor 0 uplinking directly.
	nw := &Network{
		Field:      geom.Square(100),
		Base:       geom.Pt(0, 0),
		Depot:      geom.Pt(0, 0),
		TxRange:    12,
		Gamma:      2.7,
		ChargeRate: 2,
		Speed:      1,
		Radio:      energy.DefaultRadio(),
	}
	for i := 0; i < 3; i++ {
		nw.Sensors = append(nw.Sensors, Sensor{
			ID:       i,
			Pos:      geom.Pt(float64(10*(i+1)), 0),
			DataRate: 10e3,
			Battery:  energy.NewBattery(10800),
			Parent:   -1,
		})
	}
	return nw
}

func TestBuildRoutingChain(t *testing.T) {
	nw := lineNetwork()
	nw.BuildRouting()
	if nw.Sensors[0].Parent != -1 {
		t.Errorf("sensor 0 parent = %d, want -1 (direct uplink)", nw.Sensors[0].Parent)
	}
	if nw.Sensors[1].Parent != 0 || nw.Sensors[2].Parent != 1 {
		t.Errorf("chain parents = %d, %d, want 0, 1", nw.Sensors[1].Parent, nw.Sensors[2].Parent)
	}
	// Relay loads: sensor 0 relays traffic of 1 and 2; sensor 1 relays 2.
	if math.Abs(nw.Sensors[0].RelayBps-20e3) > 1e-9 {
		t.Errorf("sensor 0 relay = %v, want 20k", nw.Sensors[0].RelayBps)
	}
	if math.Abs(nw.Sensors[1].RelayBps-10e3) > 1e-9 {
		t.Errorf("sensor 1 relay = %v, want 10k", nw.Sensors[1].RelayBps)
	}
	if nw.Sensors[2].RelayBps != 0 {
		t.Errorf("leaf relay = %v, want 0", nw.Sensors[2].RelayBps)
	}
	// Energy hole: the sensor closest to the base draws the most.
	if !(nw.Sensors[0].Draw > nw.Sensors[1].Draw && nw.Sensors[1].Draw > nw.Sensors[2].Draw) {
		t.Errorf("draws not decreasing toward leaves: %v, %v, %v",
			nw.Sensors[0].Draw, nw.Sensors[1].Draw, nw.Sensors[2].Draw)
	}
}

func TestBuildRoutingDisconnectedFallback(t *testing.T) {
	nw := lineNetwork()
	// Move sensor 2 far out of everyone's range.
	nw.Sensors[2].Pos = geom.Pt(90, 90)
	nw.BuildRouting()
	if nw.Sensors[2].Parent != -1 {
		t.Errorf("disconnected sensor parent = %d, want -1", nw.Sensors[2].Parent)
	}
	if nw.Sensors[2].Draw <= 0 {
		t.Error("disconnected sensor should still have positive draw")
	}
}

func TestBuildRoutingEmpty(t *testing.T) {
	nw := &Network{TxRange: 10, ChargeRate: 2, Speed: 1, Radio: energy.DefaultRadio()}
	nw.BuildRouting() // must not panic
	if nw.TotalDraw() != 0 {
		t.Error("empty network draw should be 0")
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Network)
	}{
		{"zero tx range", func(nw *Network) { nw.TxRange = 0 }},
		{"negative gamma", func(nw *Network) { nw.Gamma = -1 }},
		{"zero charge rate", func(nw *Network) { nw.ChargeRate = 0 }},
		{"zero speed", func(nw *Network) { nw.Speed = 0 }},
		{"bad radio", func(nw *Network) { nw.Radio.DutyCycle = 2 }},
		{"bad sensor ID", func(nw *Network) { nw.Sensors[1].ID = 7 }},
		{"duplicate sensor IDs", func(nw *Network) { nw.Sensors[1].ID = 0; nw.Sensors[2].ID = 0 }},
		{"negative data rate", func(nw *Network) { nw.Sensors[0].DataRate = -1 }},
		{"bad battery", func(nw *Network) { nw.Sensors[0].Battery.Residual = -5 }},
		{"NaN sensor position", func(nw *Network) { nw.Sensors[1].Pos.X = math.NaN() }},
		{"Inf sensor position", func(nw *Network) { nw.Sensors[2].Pos.Y = math.Inf(1) }},
		{"NaN base", func(nw *Network) { nw.Base.Y = math.NaN() }},
		{"Inf depot", func(nw *Network) { nw.Depot.X = math.Inf(-1) }},
		{"NaN field", func(nw *Network) { nw.Field.Max.X = math.NaN() }},
		{"NaN gamma", func(nw *Network) { nw.Gamma = math.NaN() }},
		{"Inf speed", func(nw *Network) { nw.Speed = math.Inf(1) }},
		{"NaN charge rate", func(nw *Network) { nw.ChargeRate = math.NaN() }},
		{"Inf tx range", func(nw *Network) { nw.TxRange = math.Inf(1) }},
		{"NaN data rate", func(nw *Network) { nw.Sensors[0].DataRate = math.NaN() }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			nw := lineNetwork()
			tt.mutate(nw)
			err := nw.Validate()
			if err == nil {
				t.Fatal("expected error")
			}
			if !errors.Is(err, ErrInvalidNetwork) {
				t.Errorf("error %v does not wrap ErrInvalidNetwork", err)
			}
		})
	}
	if err := lineNetwork().Validate(); err != nil {
		t.Errorf("valid network rejected: %v", err)
	}
}

func TestRequestsAndInstance(t *testing.T) {
	nw := lineNetwork()
	nw.Sensors[1].Battery.Residual = 0.1 * 10800 // below 20%
	nw.Sensors[2].Battery.Residual = 0.19 * 10800
	reqs := nw.Requests(0.2)
	if len(reqs) != 2 || reqs[0] != 1 || reqs[1] != 2 {
		t.Fatalf("Requests = %v, want [1 2]", reqs)
	}
	in := nw.Instance(reqs, 2)
	if err := in.Validate(); err != nil {
		t.Fatalf("instance invalid: %v", err)
	}
	if in.K != 2 || in.Gamma != 2.7 || in.Speed != 1 {
		t.Errorf("instance params wrong: %+v", in)
	}
	// t_v for sensor 1: 0.9 * 10800 / 2 = 4860 s.
	if math.Abs(in.Requests[0].Duration-4860) > 1e-6 {
		t.Errorf("duration = %v, want 4860", in.Requests[0].Duration)
	}
	if in.Requests[0].Pos != nw.Sensors[1].Pos {
		t.Error("request position mismatch")
	}
}

func TestResidualLifetime(t *testing.T) {
	nw := lineNetwork()
	nw.BuildRouting()
	life := nw.ResidualLifetime(2)
	want := nw.Sensors[2].Battery.Residual / nw.Sensors[2].Draw
	if math.Abs(life-want) > 1e-6 {
		t.Errorf("ResidualLifetime = %v, want %v", life, want)
	}
}

func TestTotalDraw(t *testing.T) {
	nw := lineNetwork()
	nw.BuildRouting()
	sum := 0.0
	for i := range nw.Sensors {
		sum += nw.Sensors[i].Draw
	}
	if math.Abs(nw.TotalDraw()-sum) > 1e-12 {
		t.Error("TotalDraw mismatch")
	}
}
