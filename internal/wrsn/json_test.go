package wrsn

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	nw := lineNetwork()
	nw.BuildRouting()
	var buf bytes.Buffer
	if err := nw.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sensors) != len(nw.Sensors) {
		t.Fatalf("sensors = %d, want %d", len(got.Sensors), len(nw.Sensors))
	}
	for i := range nw.Sensors {
		a, b := nw.Sensors[i], got.Sensors[i]
		if a.Pos != b.Pos || a.DataRate != b.DataRate || a.Battery != b.Battery {
			t.Fatalf("sensor %d changed across round trip: %+v vs %+v", i, a, b)
		}
		if a.Parent != b.Parent || a.Draw != b.Draw {
			t.Fatalf("sensor %d derived state not rebuilt: %+v vs %+v", i, a, b)
		}
	}
	if got.Gamma != nw.Gamma || got.ChargeRate != nw.ChargeRate {
		t.Error("network parameters changed across round trip")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"unknown_field": 1}`)); err == nil {
		t.Error("unknown fields accepted")
	}
	// Structurally valid JSON but an invalid network (zero tx range).
	if _, err := Load(strings.NewReader(`{"field":{"min":{"x":0,"y":0},"max":{"x":10,"y":10}}}`)); err == nil {
		t.Error("invalid network accepted")
	}
}

func TestLoadRebuildsRouting(t *testing.T) {
	nw := lineNetwork()
	nw.BuildRouting()
	var buf bytes.Buffer
	if err := nw.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the serialized parents; Load must fix them.
	s := strings.ReplaceAll(buf.String(), `"parent": 0`, `"parent": 2`)
	got, err := Load(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.Sensors[1].Parent != 0 {
		t.Errorf("routing not rebuilt: parent = %d, want 0", got.Sensors[1].Parent)
	}
}
