package wrsn

import (
	"math"
	"testing"
)

func TestComputeStatsChain(t *testing.T) {
	nw := lineNetwork()
	nw.BuildRouting()
	st := nw.ComputeStats()
	if st.Sensors != 3 {
		t.Fatalf("Sensors = %d", st.Sensors)
	}
	if math.Abs(st.TotalDrawW-nw.TotalDraw()) > 1e-9 {
		t.Errorf("TotalDrawW = %v, want %v", st.TotalDrawW, nw.TotalDraw())
	}
	// Chain 0 <- 1 <- 2 with 0 uplinking directly: hops 1, 2, 3.
	if st.MaxHops != 3 || math.Abs(st.MeanHops-2) > 1e-9 {
		t.Errorf("hops: max=%d mean=%v", st.MaxHops, st.MeanHops)
	}
	if st.DirectUplinks != 1 {
		t.Errorf("DirectUplinks = %d, want 1", st.DirectUplinks)
	}
	if st.MaxDrawW <= st.MeanDrawW {
		t.Error("hot relay sensor should exceed the mean draw")
	}
	if st.MeanLifetimeDays <= 0 || st.MinLifetimeHours <= 0 {
		t.Errorf("lifetimes not positive: %+v", st)
	}
	// Sensors 10 m apart with gamma 2.7: nobody co-covers anybody.
	if st.MeanNeighbors != 0 {
		t.Errorf("MeanNeighbors = %v, want 0", st.MeanNeighbors)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	nw := &Network{}
	st := nw.ComputeStats()
	if st.Sensors != 0 || st.TotalDrawW != 0 {
		t.Errorf("empty stats: %+v", st)
	}
}
