package wrsn

import (
	"encoding/json"
	"fmt"
	"io"
)

// Load reads a JSON-encoded network (as written by cmd/wrsn-gen or by
// Save), validates it, and recomputes the derived routing state — parents,
// relay loads and power draws — so that edits to positions or data rates in
// the JSON are reflected consistently.
func Load(r io.Reader) (*Network, error) {
	var nw Network
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&nw); err != nil {
		return nil, fmt.Errorf("wrsn: decode network: %w", err)
	}
	if err := nw.Validate(); err != nil {
		return nil, err
	}
	nw.BuildRouting()
	return &nw, nil
}

// Save writes the network as indented JSON.
func (nw *Network) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(nw); err != nil {
		return fmt.Errorf("wrsn: encode network: %w", err)
	}
	return nil
}
