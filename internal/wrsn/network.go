// Package wrsn models the wireless rechargeable sensor network itself:
// sensors with positions, data rates and batteries, the base station and
// charger depot, the multi-hop routing tree toward the base station, and
// the per-sensor power draw derived from it. It is the glue between the
// energy model and the scheduling algorithms: it identifies
// lifetime-critical sensors and converts them into core.Instance values.
package wrsn

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geom"
)

// ErrInvalidNetwork tags every Validate failure, so callers loading
// untrusted network files can test with errors.Is and distinguish
// malformed input from other failures.
var ErrInvalidNetwork = errors.New("wrsn: invalid network")

// Sensor is one stationary rechargeable sensor.
type Sensor struct {
	// ID is the sensor's index in Network.Sensors.
	ID int `json:"id"`
	// Pos is the sensor's location in the field.
	Pos geom.Point `json:"pos"`
	// DataRate is b_i, the sensing data rate in bits/s.
	DataRate float64 `json:"data_rate"`
	// Battery is the sensor's rechargeable battery.
	Battery energy.Battery `json:"battery"`
	// Parent is the routing parent's sensor ID, or -1 when the sensor
	// uplinks directly to the base station. Set by BuildRouting.
	Parent int `json:"parent"`
	// RelayBps is the descendant traffic this sensor forwards, in bits/s.
	// Set by BuildRouting.
	RelayBps float64 `json:"relay_bps"`
	// Draw is the sensor's total power draw in watts. Set by BuildRouting.
	Draw float64 `json:"draw"`
}

// Network is a complete WRSN: field geometry, base station, charger depot,
// charger characteristics and the sensor population.
type Network struct {
	// Field is the monitoring area (paper: 100 x 100 m^2).
	Field geom.Rect `json:"field"`
	// Base is the base station position (paper: field center).
	Base geom.Point `json:"base"`
	// Depot is the MCV depot position (paper: co-located with the base).
	Depot geom.Point `json:"depot"`
	// TxRange is the sensor radio transmission range in meters.
	TxRange float64 `json:"tx_range"`
	// Gamma is the chargers' wireless charging radius (paper: 2.7 m).
	Gamma float64 `json:"gamma"`
	// ChargeRate is eta, the charging rate in watts (paper: 2 W).
	ChargeRate float64 `json:"charge_rate"`
	// Speed is the charger travel speed in m/s (paper: 1 m/s).
	Speed float64 `json:"speed"`
	// Radio is the sensor energy consumption model.
	Radio energy.RadioModel `json:"radio"`
	// Sensors is the sensor population; Sensors[i].ID == i.
	Sensors []Sensor `json:"sensors"`
}

// Validate reports the first structural problem with the network, or nil.
// Every failure wraps ErrInvalidNetwork. Beyond range checks it rejects
// NaN/Inf geometry (positions, gamma, speed, rates) outright: a single NaN
// coordinate silently poisons every distance downstream and produces
// nonsense tours instead of an error.
func (nw *Network) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidNetwork, fmt.Sprintf(format, args...))
	}
	if !finitePoint(nw.Base) {
		return bad("base position %v is not finite", nw.Base)
	}
	if !finitePoint(nw.Depot) {
		return bad("depot position %v is not finite", nw.Depot)
	}
	if !finitePoint(nw.Field.Min) || !finitePoint(nw.Field.Max) {
		return bad("field %v is not finite", nw.Field)
	}
	if nw.TxRange <= 0 || !finite(nw.TxRange) {
		return bad("tx range = %v, want finite > 0", nw.TxRange)
	}
	if nw.Gamma < 0 || !finite(nw.Gamma) {
		return bad("gamma = %v, want finite >= 0", nw.Gamma)
	}
	if nw.ChargeRate <= 0 || !finite(nw.ChargeRate) {
		return bad("charge rate = %v, want finite > 0", nw.ChargeRate)
	}
	if nw.Speed <= 0 || !finite(nw.Speed) {
		return bad("speed = %v, want finite > 0", nw.Speed)
	}
	if err := nw.Radio.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidNetwork, err)
	}
	seen := make(map[int]bool, len(nw.Sensors))
	for i := range nw.Sensors {
		s := &nw.Sensors[i]
		if seen[s.ID] {
			return bad("duplicate sensor ID %d at index %d", s.ID, i)
		}
		seen[s.ID] = true
		if s.ID != i {
			return bad("sensor %d has ID %d, want IDs to match indices", i, s.ID)
		}
		if !finitePoint(s.Pos) {
			return bad("sensor %d position %v is not finite", i, s.Pos)
		}
		if s.DataRate < 0 || !finite(s.DataRate) {
			return bad("sensor %d data rate = %v, want finite >= 0", i, s.DataRate)
		}
		if err := s.Battery.Validate(); err != nil {
			return fmt.Errorf("%w: sensor %d: %v", ErrInvalidNetwork, i, err)
		}
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func finitePoint(p geom.Point) bool { return finite(p.X) && finite(p.Y) }

// Positions returns all sensor locations in ID order.
func (nw *Network) Positions() []geom.Point {
	pts := make([]geom.Point, len(nw.Sensors))
	for i := range nw.Sensors {
		pts[i] = nw.Sensors[i].Pos
	}
	return pts
}

// BuildRouting computes the shortest-path routing tree toward the base
// station over the communication graph (sensors within TxRange of each
// other; sensors within TxRange of the base station uplink directly) and
// derives each sensor's relay load and power draw. Sensors disconnected
// from the base station fall back to a direct (long-range, expensive)
// uplink, so every sensor always has a defined draw.
func (nw *Network) BuildRouting() {
	n := len(nw.Sensors)
	if n == 0 {
		return
	}
	pts := nw.Positions()
	grid := geom.NewGrid(pts, nw.TxRange)

	// Dijkstra from the (virtual) base station. dist[i] is the shortest
	// path length from sensor i to the base.
	dist := make([]float64, n)
	parent := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -2 // unreached
	}
	pq := &distHeap{}
	var seedBuf []int
	seedBuf = grid.Neighbors(nw.Base, nw.TxRange, seedBuf)
	for _, i := range seedBuf {
		d := geom.Dist(nw.Base, pts[i])
		dist[i] = d
		parent[i] = -1
		heap.Push(pq, distItem{v: i, d: d})
	}
	settled := make([]bool, n)
	var buf []int
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if settled[it.v] {
			continue
		}
		settled[it.v] = true
		buf = grid.NeighborsOf(it.v, nw.TxRange, buf)
		for _, w := range buf {
			if settled[w] {
				continue
			}
			nd := it.d + geom.Dist(pts[it.v], pts[w])
			if nd < dist[w] {
				dist[w] = nd
				parent[w] = it.v
				heap.Push(pq, distItem{v: w, d: nd})
			}
		}
	}
	// Disconnected sensors: direct uplink to the base.
	for i := range nw.Sensors {
		if parent[i] == -2 {
			parent[i] = -1
		}
		nw.Sensors[i].Parent = parent[i]
	}

	// Relay loads: process sensors in decreasing distance so children are
	// accumulated before parents. Direct-uplink sensors have dist set to
	// their base distance for ordering purposes.
	order := make([]int, n)
	for i := range order {
		order[i] = i
		if math.IsInf(dist[i], 1) {
			dist[i] = geom.Dist(pts[i], nw.Base)
		}
	}
	sortByDistDesc(order, dist)
	relay := make([]float64, n)
	for _, v := range order {
		total := nw.Sensors[v].DataRate + relay[v]
		if p := nw.Sensors[v].Parent; p >= 0 {
			relay[p] += total
		}
	}
	for i := range nw.Sensors {
		s := &nw.Sensors[i]
		s.RelayBps = relay[i]
		pd := nw.parentDist(i)
		s.Draw = nw.Radio.Draw(s.DataRate, s.RelayBps, pd)
	}
}

// parentDist returns the distance from sensor i to its routing parent (the
// base station when Parent is -1).
func (nw *Network) parentDist(i int) float64 {
	s := nw.Sensors[i]
	if s.Parent < 0 {
		return geom.Dist(s.Pos, nw.Base)
	}
	return geom.Dist(s.Pos, nw.Sensors[s.Parent].Pos)
}

// TotalDraw returns the network's aggregate power draw in watts.
func (nw *Network) TotalDraw() float64 {
	total := 0.0
	for i := range nw.Sensors {
		total += nw.Sensors[i].Draw
	}
	return total
}

// Requests returns the IDs of sensors whose residual energy is strictly
// below threshold (a fraction of capacity) — the lifetime-critical set V_s.
func (nw *Network) Requests(threshold float64) []int {
	var out []int
	for i := range nw.Sensors {
		if nw.Sensors[i].Battery.Fraction() < threshold {
			out = append(out, i)
		}
	}
	return out
}

// Instance converts a request set (sensor IDs) into a scheduling instance
// for the given number of chargers. Charge durations use the sensors'
// current residual energies and the network charging rate (Eq. (1)).
func (nw *Network) Instance(requests []int, k int) *core.Instance {
	in := &core.Instance{
		Depot: nw.Depot,
		Gamma: nw.Gamma,
		Speed: nw.Speed,
		K:     k,
	}
	for _, id := range requests {
		s := nw.Sensors[id]
		life := nw.ResidualLifetime(id)
		if math.IsInf(life, 1) {
			life = 0 // unknown; planners fall back to depletion order
		}
		in.Requests = append(in.Requests, core.Request{
			Pos:      s.Pos,
			Duration: s.Battery.ChargeDuration(nw.ChargeRate),
			Lifetime: life,
		})
	}
	return in
}

// ResidualLifetime returns how long sensor i lasts until empty at its
// current draw, in seconds (+Inf for zero draw).
func (nw *Network) ResidualLifetime(i int) float64 {
	s := nw.Sensors[i]
	return s.Battery.TimeToFraction(0, s.Draw)
}

// sortByDistDesc sorts idx in place by decreasing dist value.
func sortByDistDesc(idx []int, dist []float64) {
	sort.Slice(idx, func(a, b int) bool { return dist[idx[a]] > dist[idx[b]] })
}

type distItem struct {
	v int
	d float64
}

type distHeap struct{ items []distItem }

func (h *distHeap) Len() int           { return len(h.items) }
func (h *distHeap) Less(i, j int) bool { return h.items[i].d < h.items[j].d }
func (h *distHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *distHeap) Push(x interface{}) { h.items = append(h.items, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
