package exact

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestMinMaxDeadlineFallsBack checks the best-effort contract: with an
// already-expired deadline the solver must not fail — it returns the
// heuristic solution flagged Exact=false, and the result is still a valid
// partition of the nodes whose value is no better than the true optimum.
func TestMinMaxDeadlineFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 5; trial++ {
		in := randInput(rng, 2+rng.Intn(6), 1+rng.Intn(3))

		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		res, err := MinMax(ctx, in)
		cancel()
		if err != nil {
			t.Fatalf("trial %d: fallback errored: %v", trial, err)
		}
		if res.Exact {
			t.Fatalf("trial %d: expired deadline still reported Exact=true", trial)
		}
		var all []int
		for _, tour := range res.Tours {
			all = append(all, tour...)
		}
		sort.Ints(all)
		for i, v := range all {
			if v != i {
				t.Fatalf("trial %d: fallback tours not a partition: %v", trial, res.Tours)
			}
		}

		opt, err := MinMax(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if !opt.Exact {
			t.Fatalf("trial %d: uncancelled solve reported Exact=false", trial)
		}
		if res.Value < opt.Value-1e-9 {
			t.Fatalf("trial %d: heuristic fallback %v beat optimum %v", trial, res.Value, opt.Value)
		}
	}
}

// TestMinMaxPreCancelledStillValidates ensures validation errors win over
// the fallback: garbage input fails even under a cancelled context.
func TestMinMaxPreCancelledStillValidates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MinMax(ctx, randInput(rand.New(rand.NewSource(1)), 3, 0)); err == nil {
		t.Error("K=0 accepted under cancelled context")
	}
}
