// Package exact solves tiny instances of the K-optimal closed tour problem
// (the paper's Definition 2) to optimality, via Held-Karp dynamic
// programming per subset plus a min-max partition DP. It is exponential —
// O(3^n) over at most ~16 nodes — and exists purely as a test oracle for
// the approximation algorithms: ktour.MinMax and, through lower bounds,
// Algorithm Appro.
//
// The solver is deadline-aware: MinMax polls its context inside the DP
// loops, and when the context is cancelled (or its deadline passes) it
// abandons the exponential search and falls back to the polynomial
// ktour.MinMax heuristic, returning a best-effort solution flagged
// Exact=false instead of running unboundedly or failing.
package exact

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/geom"
	"repro/internal/ktour"
)

// MaxNodes bounds the instance size the solver accepts.
const MaxNodes = 16

// Result is the solver's outcome.
type Result struct {
	// Value is the longest-delay objective of the returned tours: the
	// proven optimum when Exact, the heuristic's value otherwise.
	Value float64
	// Tours holds at most K closed tours as node index slices in visit
	// order (depot implicit), aligned with the input semantics of
	// ktour.MinMax.
	Tours [][]int
	// Exact reports whether the exponential search ran to completion.
	// False means the context expired mid-search and the result is the
	// ktour.MinMax 5-approximation instead.
	Exact bool
}

// MinMax computes the optimal longest-delay value and an optimal set of at
// most K closed tours for the given instance. When ctx is cancelled or
// times out before the search completes, it returns the ktour.MinMax
// heuristic solution with Exact=false rather than an error — the solver
// degrades to a 5-approximation at its deadline instead of running
// unboundedly.
func MinMax(ctx context.Context, in ktour.Input) (*Result, error) {
	n := len(in.Nodes)
	if n > MaxNodes {
		return nil, fmt.Errorf("exact: %d nodes exceeds limit %d", n, MaxNodes)
	}
	if in.K < 1 {
		return nil, fmt.Errorf("exact: K = %d, want >= 1", in.K)
	}
	if in.Speed <= 0 {
		return nil, fmt.Errorf("exact: speed = %v, want > 0", in.Speed)
	}
	if n == 0 {
		tours := make([][]int, in.K)
		for i := range tours {
			tours[i] = []int{}
		}
		return &Result{Value: 0, Tours: tours, Exact: true}, nil
	}
	if ctx.Err() != nil {
		return fallback(ctx, in)
	}

	// Pairwise travel times; index n is the depot.
	travel := make([][]float64, n+1)
	pos := func(i int) geom.Point {
		if i == n {
			return in.Depot
		}
		return in.Nodes[i]
	}
	for i := range travel {
		travel[i] = make([]float64, n+1)
		for j := range travel[i] {
			travel[i][j] = geom.Dist(pos(i), pos(j)) / in.Speed
		}
	}
	service := func(i int) float64 {
		if in.Service == nil {
			return 0
		}
		return in.Service[i]
	}

	// Held-Karp: dp[S][j] = min travel of a path depot -> ... -> j
	// visiting exactly the nodes of S (j in S). Service times are added
	// afterwards since every node in S is served exactly once.
	full := 1 << n
	dp := make([][]float64, full)
	parent := make([][]int8, full)
	for S := 1; S < full; S++ {
		dp[S] = make([]float64, n)
		parent[S] = make([]int8, n)
		for j := range dp[S] {
			dp[S][j] = math.Inf(1)
			parent[S][j] = -1
		}
	}
	for j := 0; j < n; j++ {
		dp[1<<j][j] = travel[n][j]
	}
	for S := 1; S < full; S++ {
		// The subset loops are the exponential part; poll the deadline
		// every 256 masks so expiry is noticed within microseconds.
		if S%256 == 0 && ctx.Err() != nil {
			return fallback(ctx, in)
		}
		for j := 0; j < n; j++ {
			if S&(1<<j) == 0 || math.IsInf(dp[S][j], 1) {
				continue
			}
			for m := 0; m < n; m++ {
				if S&(1<<m) != 0 {
					continue
				}
				nS := S | 1<<m
				if c := dp[S][j] + travel[j][m]; c < dp[nS][m] {
					dp[nS][m] = c
					parent[nS][m] = int8(j)
				}
			}
		}
	}
	// tourCost[S] = optimal closed-tour delay serving exactly S.
	tourCost := make([]float64, full)
	tourEnd := make([]int8, full)
	serviceSum := make([]float64, full)
	for S := 1; S < full; S++ {
		if S%256 == 0 && ctx.Err() != nil {
			return fallback(ctx, in)
		}
		lsb := bits.TrailingZeros(uint(S))
		serviceSum[S] = serviceSum[S&(S-1)] + service(lsb)
		best, bestJ := math.Inf(1), int8(-1)
		for j := 0; j < n; j++ {
			if S&(1<<j) == 0 {
				continue
			}
			if c := dp[S][j] + travel[j][n]; c < best {
				best, bestJ = c, int8(j)
			}
		}
		tourCost[S] = best + serviceSum[S]
		tourEnd[S] = bestJ
	}

	// Partition DP: f[k][S] = min possible max tour cost covering S with
	// at most k tours.
	k := in.K
	if k > n {
		k = n // extra vehicles stay at the depot
	}
	f := make([][]float64, k+1)
	choice := make([][]int, k+1)
	for i := range f {
		f[i] = make([]float64, full)
		choice[i] = make([]int, full)
		for S := range f[i] {
			f[i][S] = math.Inf(1)
		}
		f[i][0] = 0
	}
	for S := 1; S < full; S++ {
		f[1][S] = tourCost[S]
		choice[1][S] = S
	}
	for kk := 2; kk <= k; kk++ {
		for S := 1; S < full; S++ {
			if S%256 == 0 && ctx.Err() != nil {
				return fallback(ctx, in)
			}
			// Enumerate non-empty subsets T of S as the last tour.
			for T := S; T > 0; T = (T - 1) & S {
				c := tourCost[T]
				if rest := f[kk-1][S&^T]; rest > c {
					c = rest
				}
				if c < f[kk][S] {
					f[kk][S] = c
					choice[kk][S] = T
				}
			}
		}
	}

	// Reconstruct tours.
	tours := make([][]int, in.K)
	for i := range tours {
		tours[i] = []int{}
	}
	S := full - 1
	for kk := k; kk >= 1 && S != 0; kk-- {
		T := choice[kk][S]
		if kk == 1 {
			T = S
		}
		tours[kk-1] = reconstructPath(dp, parent, tourEnd[T], T)
		S &^= T
	}
	return &Result{Value: f[k][full-1], Tours: tours, Exact: true}, nil
}

// fallback returns the polynomial-time heuristic solution when the exact
// search's context has expired. The heuristic runs detached from the
// expired context — at <= MaxNodes nodes it finishes in microseconds, and
// returning nothing at the deadline would defeat the best-effort
// contract.
func fallback(ctx context.Context, in ktour.Input) (*Result, error) {
	sol, err := ktour.MinMax(context.WithoutCancel(ctx), in)
	if err != nil {
		return nil, fmt.Errorf("exact: deadline fallback: %w", err)
	}
	return &Result{Value: sol.Longest, Tours: sol.Tours, Exact: false}, nil
}

// reconstructPath walks the Held-Karp parents back from end over set S.
func reconstructPath(dp [][]float64, parent [][]int8, end int8, S int) []int {
	var rev []int
	j := end
	for S != 0 && j >= 0 {
		rev = append(rev, int(j))
		pj := parent[S][j]
		S &^= 1 << j
		j = pj
	}
	for i, jj := 0, len(rev)-1; i < jj; i, jj = i+1, jj-1 {
		rev[i], rev[jj] = rev[jj], rev[i]
	}
	return rev
}
