package exact

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/ktour"
)

func randInput(rng *rand.Rand, n, k int) ktour.Input {
	in := ktour.Input{
		Depot:   geom.Pt(5, 5),
		Nodes:   make([]geom.Point, n),
		Service: make([]float64, n),
		Speed:   1,
		K:       k,
	}
	for i := range in.Nodes {
		in.Nodes[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
		in.Service[i] = rng.Float64() * 5
	}
	return in
}

func TestMinMaxValidation(t *testing.T) {
	if _, err := MinMax(context.Background(), ktour.Input{K: 1, Speed: 1, Nodes: make([]geom.Point, MaxNodes+1)}); err == nil {
		t.Error("oversized instance accepted")
	}
	if _, err := MinMax(context.Background(), ktour.Input{K: 0, Speed: 1}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := MinMax(context.Background(), ktour.Input{K: 1, Speed: 0}); err == nil {
		t.Error("speed=0 accepted")
	}
}

func TestMinMaxEmpty(t *testing.T) {
	res, err := MinMax(context.Background(), ktour.Input{Depot: geom.Pt(0, 0), K: 3, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 || len(res.Tours) != 3 || !res.Exact {
		t.Errorf("res = %+v", res)
	}
}

func TestMinMaxSingleNode(t *testing.T) {
	in := ktour.Input{
		Depot:   geom.Pt(0, 0),
		Nodes:   []geom.Point{geom.Pt(3, 4)},
		Service: []float64{7},
		Speed:   1,
		K:       2,
	}
	res, err := MinMax(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-17) > 1e-9 {
		t.Errorf("v = %v, want 17", res.Value)
	}
	if !res.Exact {
		t.Error("uncancelled solve reported Exact=false")
	}
	total := 0
	for _, tour := range res.Tours {
		total += len(tour)
	}
	if total != 1 {
		t.Errorf("tours = %v", res.Tours)
	}
}

func TestMinMaxKnownGeometry(t *testing.T) {
	// Two opposite nodes, K=2: optimal is one vehicle each, max delay
	// 2*10 + service 3.
	in := ktour.Input{
		Depot:   geom.Pt(0, 0),
		Nodes:   []geom.Point{geom.Pt(10, 0), geom.Pt(-10, 0)},
		Service: []float64{3, 3},
		Speed:   1,
		K:       2,
	}
	res, err := MinMax(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-23) > 1e-9 {
		t.Errorf("v = %v, want 23", res.Value)
	}
	// With K=1 the vehicle must do both: 10 + 20 + 10 travel + 6 service.
	in.K = 1
	res1, err := MinMax(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res1.Value-46) > 1e-9 {
		t.Errorf("K=1 v = %v, want 46", res1.Value)
	}
}

// TestMatchesBruteForcePermutations cross-checks the DP against naive
// enumeration of all assignments and orders on very small instances.
func TestMatchesBruteForcePermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 12; trial++ {
		n := 1 + rng.Intn(5)
		k := 1 + rng.Intn(3)
		in := randInput(rng, n, k)
		res, err := MinMax(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		got, tours := res.Value, res.Tours
		want := bruteForce(in)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d k=%d): DP %v, brute force %v", trial, n, k, got, want)
		}
		// Reconstructed tours must cover all nodes once and achieve got.
		var all []int
		longest := 0.0
		for _, tour := range tours {
			all = append(all, tour...)
			if d := ktour.TourDelay(in, tour); d > longest {
				longest = d
			}
		}
		sort.Ints(all)
		for i, v := range all {
			if v != i {
				t.Fatalf("trial %d: tours not a partition: %v", trial, tours)
			}
		}
		if math.Abs(longest-got) > 1e-9 {
			t.Fatalf("trial %d: reconstructed longest %v != reported %v", trial, longest, got)
		}
	}
}

// bruteForce enumerates every assignment of nodes to vehicles and every
// visiting order.
func bruteForce(in ktour.Input) float64 {
	n := len(in.Nodes)
	assign := make([]int, n)
	best := math.Inf(1)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			worst := 0.0
			for k := 0; k < in.K; k++ {
				var group []int
				for v, a := range assign {
					if a == k {
						group = append(group, v)
					}
				}
				if d := bestOrderDelay(in, group); d > worst {
					worst = d
				}
			}
			if worst < best {
				best = worst
			}
			return
		}
		for k := 0; k < in.K; k++ {
			assign[i] = k
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func bestOrderDelay(in ktour.Input, group []int) float64 {
	if len(group) == 0 {
		return 0
	}
	perm := append([]int(nil), group...)
	best := math.Inf(1)
	var rec func(i int)
	rec = func(i int) {
		if i == len(perm) {
			if d := ktour.TourDelay(in, perm); d < best {
				best = d
			}
			return
		}
		for j := i; j < len(perm); j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
	return best
}

// TestKtourWithinFactorOfOptimal is the approximation-quality oracle test:
// the heuristic ktour.MinMax must stay within a small constant of the true
// optimum on random instances.
func TestKtourWithinFactorOfOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	worst := 1.0
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(9) // up to 10 nodes
		k := 1 + rng.Intn(3)
		in := randInput(rng, n, k)
		optRes, err := MinMax(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		opt := optRes.Value
		heur, err := ktour.MinMax(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if opt <= 0 {
			continue
		}
		ratio := heur.Longest / opt
		if ratio < 1-1e-9 {
			t.Fatalf("trial %d: heuristic %v beat optimum %v", trial, heur.Longest, opt)
		}
		if ratio > worst {
			worst = ratio
		}
		if ratio > 5+1e-9 {
			t.Fatalf("trial %d (n=%d k=%d): ratio %.3f exceeds published bound 5", trial, n, k, ratio)
		}
	}
	t.Logf("worst heuristic/optimal ratio observed: %.3f", worst)
}
