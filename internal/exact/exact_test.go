package exact

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/ktour"
)

func randInput(rng *rand.Rand, n, k int) ktour.Input {
	in := ktour.Input{
		Depot:   geom.Pt(5, 5),
		Nodes:   make([]geom.Point, n),
		Service: make([]float64, n),
		Speed:   1,
		K:       k,
	}
	for i := range in.Nodes {
		in.Nodes[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
		in.Service[i] = rng.Float64() * 5
	}
	return in
}

func TestMinMaxValidation(t *testing.T) {
	if _, _, err := MinMax(ktour.Input{K: 1, Speed: 1, Nodes: make([]geom.Point, MaxNodes+1)}); err == nil {
		t.Error("oversized instance accepted")
	}
	if _, _, err := MinMax(ktour.Input{K: 0, Speed: 1}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, _, err := MinMax(ktour.Input{K: 1, Speed: 0}); err == nil {
		t.Error("speed=0 accepted")
	}
}

func TestMinMaxEmpty(t *testing.T) {
	v, tours, err := MinMax(ktour.Input{Depot: geom.Pt(0, 0), K: 3, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 || len(tours) != 3 {
		t.Errorf("v=%v tours=%v", v, tours)
	}
}

func TestMinMaxSingleNode(t *testing.T) {
	in := ktour.Input{
		Depot:   geom.Pt(0, 0),
		Nodes:   []geom.Point{geom.Pt(3, 4)},
		Service: []float64{7},
		Speed:   1,
		K:       2,
	}
	v, tours, err := MinMax(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-17) > 1e-9 {
		t.Errorf("v = %v, want 17", v)
	}
	total := 0
	for _, tour := range tours {
		total += len(tour)
	}
	if total != 1 {
		t.Errorf("tours = %v", tours)
	}
}

func TestMinMaxKnownGeometry(t *testing.T) {
	// Two opposite nodes, K=2: optimal is one vehicle each, max delay
	// 2*10 + service 3.
	in := ktour.Input{
		Depot:   geom.Pt(0, 0),
		Nodes:   []geom.Point{geom.Pt(10, 0), geom.Pt(-10, 0)},
		Service: []float64{3, 3},
		Speed:   1,
		K:       2,
	}
	v, _, err := MinMax(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-23) > 1e-9 {
		t.Errorf("v = %v, want 23", v)
	}
	// With K=1 the vehicle must do both: 10 + 20 + 10 travel + 6 service.
	in.K = 1
	v1, _, err := MinMax(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v1-46) > 1e-9 {
		t.Errorf("K=1 v = %v, want 46", v1)
	}
}

// TestMatchesBruteForcePermutations cross-checks the DP against naive
// enumeration of all assignments and orders on very small instances.
func TestMatchesBruteForcePermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 12; trial++ {
		n := 1 + rng.Intn(5)
		k := 1 + rng.Intn(3)
		in := randInput(rng, n, k)
		got, tours, err := MinMax(in)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(in)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d k=%d): DP %v, brute force %v", trial, n, k, got, want)
		}
		// Reconstructed tours must cover all nodes once and achieve got.
		var all []int
		longest := 0.0
		for _, tour := range tours {
			all = append(all, tour...)
			if d := ktour.TourDelay(in, tour); d > longest {
				longest = d
			}
		}
		sort.Ints(all)
		for i, v := range all {
			if v != i {
				t.Fatalf("trial %d: tours not a partition: %v", trial, tours)
			}
		}
		if math.Abs(longest-got) > 1e-9 {
			t.Fatalf("trial %d: reconstructed longest %v != reported %v", trial, longest, got)
		}
	}
}

// bruteForce enumerates every assignment of nodes to vehicles and every
// visiting order.
func bruteForce(in ktour.Input) float64 {
	n := len(in.Nodes)
	assign := make([]int, n)
	best := math.Inf(1)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			worst := 0.0
			for k := 0; k < in.K; k++ {
				var group []int
				for v, a := range assign {
					if a == k {
						group = append(group, v)
					}
				}
				if d := bestOrderDelay(in, group); d > worst {
					worst = d
				}
			}
			if worst < best {
				best = worst
			}
			return
		}
		for k := 0; k < in.K; k++ {
			assign[i] = k
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func bestOrderDelay(in ktour.Input, group []int) float64 {
	if len(group) == 0 {
		return 0
	}
	perm := append([]int(nil), group...)
	best := math.Inf(1)
	var rec func(i int)
	rec = func(i int) {
		if i == len(perm) {
			if d := ktour.TourDelay(in, perm); d < best {
				best = d
			}
			return
		}
		for j := i; j < len(perm); j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
	return best
}

// TestKtourWithinFactorOfOptimal is the approximation-quality oracle test:
// the heuristic ktour.MinMax must stay within a small constant of the true
// optimum on random instances.
func TestKtourWithinFactorOfOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	worst := 1.0
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(9) // up to 10 nodes
		k := 1 + rng.Intn(3)
		in := randInput(rng, n, k)
		opt, _, err := MinMax(in)
		if err != nil {
			t.Fatal(err)
		}
		heur, err := ktour.MinMax(in)
		if err != nil {
			t.Fatal(err)
		}
		if opt <= 0 {
			continue
		}
		ratio := heur.Longest / opt
		if ratio < 1-1e-9 {
			t.Fatalf("trial %d: heuristic %v beat optimum %v", trial, heur.Longest, opt)
		}
		if ratio > worst {
			worst = ratio
		}
		if ratio > 5+1e-9 {
			t.Fatalf("trial %d (n=%d k=%d): ratio %.3f exceeds published bound 5", trial, n, k, ratio)
		}
	}
	t.Logf("worst heuristic/optimal ratio observed: %.3f", worst)
}
