// Package export renders the benchmark harness's results as aligned text
// tables and CSV, matching the rows/series the paper's figures report.
package export

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple column-oriented table.
type Table struct {
	// Title is printed above the table when non-empty.
	Title string
	// Header holds the column names.
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column names.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells beyond the header width are dropped and
// missing cells are left empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(strconv.Quote(c))
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// F formats a float with the given number of decimals — the cell helper
// used by the harness.
func F(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// I formats an int.
func I(v int) string { return strconv.Itoa(v) }

// Sprintf is a convenience alias so callers need only this package for
// cell formatting.
func Sprintf(format string, args ...interface{}) string {
	return fmt.Sprintf(format, args...)
}
