package export

import (
	"strings"
	"testing"
)

func TestWriteText(t *testing.T) {
	tb := NewTable("My Title", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("longer-name", "22")
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "My Title\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns aligned: "value" column starts at the same offset in each
	// data row.
	h := strings.Index(lines[1], "value")
	if h < 0 || !strings.HasPrefix(lines[3][h:], "1") || !strings.HasPrefix(lines[4][h:], "22") {
		t.Errorf("columns not aligned:\n%s", out)
	}
}

func TestWriteTextNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(sb.String(), "\n") {
		t.Error("empty title should not emit a blank line")
	}
}

func TestAddRowShapes(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "dropped")
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nonly-one,\nx,y\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}

func TestWriteCSVQuoting(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("has,comma", `has"quote`)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"has,comma"`) {
		t.Errorf("comma cell not quoted: %q", out)
	}
	if !strings.Contains(out, `\"`) && !strings.Contains(out, `""`) {
		t.Errorf("quote cell not escaped: %q", out)
	}
}

func TestFormatters(t *testing.T) {
	if got := F(3.14159, 2); got != "3.14" {
		t.Errorf("F = %q", got)
	}
	if got := I(42); got != "42" {
		t.Errorf("I = %q", got)
	}
	if got := Sprintf("%s-%d", "x", 7); got != "x-7" {
		t.Errorf("Sprintf = %q", got)
	}
}
