package export

import (
	"encoding/json"
	"io"

	"repro/internal/core"
)

// WriteSchedule writes the schedule as indented JSON followed by a
// newline. This is the one canonical schedule encoding: both
// `wrsn-plan -json` and the planning service's /v1/plan response body go
// through it, which is what makes the two byte-identical for the same
// instance (the serve golden test and the CI serve-smoke job diff them).
func WriteSchedule(w io.Writer, s *core.Schedule) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteInstance writes the instance as indented JSON followed by a
// newline, in exactly the shape /v1/plan accepts as a bare-instance
// request body (`wrsn-plan -dump-instance` uses it to hand an instance
// to the service).
func WriteInstance(w io.Writer, in *core.Instance) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(in)
}
