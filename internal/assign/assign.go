// Package assign solves the linear assignment problem (minimum-cost
// bipartite perfect matching) with the Hungarian algorithm in O(n^3).
// The K-EDF baseline uses it to assign each group of K sensors to the K
// chargers with minimum total travel; it replaces the exhaustive O(K!)
// search and removes any practical limit on K.
package assign

import (
	"fmt"
	"math"
)

// Hungarian solves min-cost assignment on an r x c cost matrix, r <= c:
// every row is assigned a distinct column. It returns the column chosen
// for each row and the total cost. Costs must be finite; use Forbidden for
// disallowed pairs.
func Hungarian(cost [][]float64) ([]int, float64, error) {
	r := len(cost)
	if r == 0 {
		return nil, 0, nil
	}
	c := len(cost[0])
	if c < r {
		return nil, 0, fmt.Errorf("assign: %d rows > %d columns", r, c)
	}
	for i := range cost {
		if len(cost[i]) != c {
			return nil, 0, fmt.Errorf("assign: ragged cost matrix at row %d", i)
		}
		for j, v := range cost[i] {
			if math.IsNaN(v) {
				return nil, 0, fmt.Errorf("assign: NaN cost at (%d,%d)", i, j)
			}
		}
	}

	// Classic O(n^3) Hungarian with potentials, 1-indexed internals.
	// u[i], v[j] are dual potentials; way[j] is the augmenting-path
	// predecessor; matchCol[j] is the row matched to column j.
	u := make([]float64, r+1)
	v := make([]float64, c+1)
	matchCol := make([]int, c+1)
	way := make([]int, c+1)
	for i := 1; i <= r; i++ {
		matchCol[0] = i
		j0 := 0
		minv := make([]float64, c+1)
		used := make([]bool, c+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := matchCol[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= c; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= c; j++ {
				if used[j] {
					u[matchCol[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if matchCol[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			matchCol[j0] = matchCol[j1]
			j0 = j1
		}
	}

	out := make([]int, r)
	total := 0.0
	for j := 1; j <= c; j++ {
		if matchCol[j] > 0 {
			out[matchCol[j]-1] = j - 1
			total += cost[matchCol[j]-1][j-1]
		}
	}
	return out, total, nil
}
