package assign

import (
	"math"
	"math/rand"
	"testing"
)

func TestHungarianEmpty(t *testing.T) {
	got, total, err := Hungarian(nil)
	if err != nil || got != nil || total != 0 {
		t.Errorf("empty: %v %v %v", got, total, err)
	}
}

func TestHungarianRejectsBadInput(t *testing.T) {
	if _, _, err := Hungarian([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, _, err := Hungarian([][]float64{{1}, {2}}); err == nil {
		t.Error("rows > cols accepted")
	}
	if _, _, err := Hungarian([][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestHungarianKnownCases(t *testing.T) {
	tests := []struct {
		name string
		cost [][]float64
		want float64
	}{
		{"identity 1x1", [][]float64{{7}}, 7},
		{"2x2 swap better", [][]float64{{10, 1}, {1, 10}}, 2},
		{"2x2 diagonal better", [][]float64{{1, 10}, {10, 1}}, 2},
		{"3x3 classic", [][]float64{
			{4, 1, 3},
			{2, 0, 5},
			{3, 2, 2},
		}, 5},
		{"rectangular 2x3", [][]float64{
			{5, 9, 1},
			{10, 3, 2},
		}, 4},
		{"negative costs", [][]float64{{-5, 0}, {0, -5}}, -10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			assign, total, err := Hungarian(tt.cost)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(total-tt.want) > 1e-9 {
				t.Errorf("total = %v, want %v (assign %v)", total, tt.want, assign)
			}
			seen := map[int]bool{}
			sum := 0.0
			for i, j := range assign {
				if j < 0 || j >= len(tt.cost[0]) || seen[j] {
					t.Fatalf("invalid assignment %v", assign)
				}
				seen[j] = true
				sum += tt.cost[i][j]
			}
			if math.Abs(sum-total) > 1e-9 {
				t.Errorf("reported total %v != recomputed %v", total, sum)
			}
		})
	}
}

// TestHungarianMatchesBruteForce verifies optimality against exhaustive
// search on random matrices.
func TestHungarianMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		r := 1 + rng.Intn(6)
		c := r + rng.Intn(3)
		cost := make([][]float64, r)
		for i := range cost {
			cost[i] = make([]float64, c)
			for j := range cost[i] {
				cost[i][j] = math.Round(rng.Float64()*200-50) / 2
			}
		}
		_, got, err := Hungarian(cost)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(cost)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (%dx%d): Hungarian %v, brute force %v", trial, r, c, got, want)
		}
	}
}

func bruteForce(cost [][]float64) float64 {
	r, c := len(cost), len(cost[0])
	used := make([]bool, c)
	best := math.Inf(1)
	var rec func(i int, sum float64)
	rec = func(i int, sum float64) {
		if i == r {
			if sum < best {
				best = sum
			}
			return
		}
		for j := 0; j < c; j++ {
			if !used[j] {
				used[j] = true
				rec(i+1, sum+cost[i][j])
				used[j] = false
			}
		}
	}
	rec(0, 0)
	return best
}

func BenchmarkHungarian50(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cost := make([][]float64, 50)
	for i := range cost {
		cost[i] = make([]float64, 50)
		for j := range cost[i] {
			cost[i][j] = rng.Float64() * 100
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Hungarian(cost); err != nil {
			b.Fatal(err)
		}
	}
}
