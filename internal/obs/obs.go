// Package obs is the planning engine's lightweight observability layer: a
// stage tracer and metrics registry carried through context.Context.
//
// A *Tracer aggregates named stage spans (count + total duration) and
// monotonic counters. It is attached to a context with WithTracer and
// recovered with FromContext; every recording method is safe on a nil
// receiver, so instrumented hot paths pay only a nil check — no
// allocation, no clock read — when tracing is disabled. Span handles are
// plain values, so an enabled span costs two time.Now calls and one
// mutex-guarded map update, with no per-span heap allocation.
//
// The planning stack records a small, stable span vocabulary (see the
// Stage* constants): the paper's Algorithm Appro records charging-graph,
// mis, kminmax and insertion; the conflict-aware executor records execute;
// the simulator records verify around its per-round feasibility checks.
// Stage timings therefore partition a plan's runtime: summed, they account
// for approximately the total planning time.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Canonical stage names recorded by the planning stack. Downstream
// consumers (wrsn-bench -trace-json, DESIGN.md) rely on these being
// stable.
const (
	// StageChargingGraph covers building the charging graph G_c, the
	// auxiliary graph H, and the coverage sets N_c+(v).
	StageChargingGraph = "charging-graph"
	// StageMIS covers the maximal-independent-set computations on G_c
	// and H.
	StageMIS = "mis"
	// The mis/* spans are sub-stages nested INSIDE the mis span when a
	// degree-ordered strategy runs — they attribute its time to the
	// extreme-degree vertex selection (bucket-queue pops or reference
	// rescans) versus the residual-degree bookkeeping after each removal,
	// and must not be added to the top-level stages when summing a plan's
	// runtime. A mis.degree.bucket / mis.degree.rescan counter tick
	// records which selection engine ran (see internal/graph's
	// MISConfig.Rescan).
	StageMISSelect = "mis/select"
	StageMISUpdate = "mis/update"
	// StageKMinMax covers the K-minMax closed-tour subroutine.
	StageKMinMax = "kminmax"
	// StageInsertion covers Algorithm 1's pending-candidate insertion
	// loop (steps 6-24).
	StageInsertion = "insertion"
	// The kminmax/* spans are per-kernel sub-stages nested INSIDE the
	// kminmax span — they attribute its time to the MST construction, the
	// Christofides odd-vertex matching, the 2-opt refinement and the
	// tour-splitting search, and therefore must not be added to the
	// top-level stages when summing a plan's runtime. Each kernel span
	// comes with a tsp.<kernel>.dense / tsp.<kernel>.sparse (or
	// tsp.2opt.full / tsp.2opt.neighbor) counter tick recording which
	// implementation ran (see internal/tsp's Thresholds).
	StageKMinMaxMST    = "kminmax/mst"
	StageKMinMaxMatch  = "kminmax/match"
	StageKMinMaxTwoOpt = "kminmax/2opt"
	StageKMinMaxSplit  = "kminmax/split"
	// StageExecute covers the conflict-aware schedule executor.
	StageExecute = "execute"
	// StageVerify covers the independent feasibility verifier.
	StageVerify = "verify"
)

// KnownStages returns the canonical span vocabulary above — top-level
// stages followed by the nested mis/* and kminmax/* sub-spans — in display
// order. Consumers that accept stage names from users (wrsn-bench's
// -budget assertions) validate against this list so a typo'd stage fails
// loudly instead of silently never matching a recorded span.
func KnownStages() []string {
	return []string{
		StageChargingGraph,
		StageMIS, StageMISSelect, StageMISUpdate,
		StageKMinMax, StageKMinMaxMST, StageKMinMaxMatch, StageKMinMaxTwoOpt, StageKMinMaxSplit,
		StageInsertion,
		StageExecute,
		StageVerify,
	}
}

type ctxKey struct{}

// WithTracer returns a context carrying the tracer. A nil tracer returns
// ctx unchanged.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the tracer carried by ctx, or nil when tracing is
// disabled. The nil result is directly usable: every Tracer method is a
// no-op on a nil receiver.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(ctxKey{}).(*Tracer)
	return t
}

// stage aggregates one span name's recordings.
type stage struct {
	count int64
	total time.Duration
}

// Tracer aggregates stage spans and counters. It is safe for concurrent
// use; all methods are no-ops on a nil receiver.
type Tracer struct {
	mu       sync.Mutex
	started  time.Time
	stages   map[string]*stage
	order    []string // stage names in first-recorded order
	counters map[string]int64
	corder   []string // counter names in first-recorded order
}

// New returns an empty tracer; its Report total runs from this moment.
func New() *Tracer {
	return &Tracer{
		started:  time.Now(),
		stages:   make(map[string]*stage),
		counters: make(map[string]int64),
	}
}

// Span is an in-flight stage recording. The zero value (from a nil
// tracer) is a no-op.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
}

// Start opens a span. End it with Span.End; un-ended spans record
// nothing.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: time.Now()}
}

// End closes the span, folding its duration into the tracer's aggregate
// for the span's name.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.Observe(s.name, time.Since(s.start))
}

// Observe folds an externally measured duration into the named stage.
func (t *Tracer) Observe(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	st := t.stages[name]
	if st == nil {
		st = &stage{}
		t.stages[name] = st
		t.order = append(t.order, name)
	}
	st.count++
	st.total += d
	t.mu.Unlock()
}

// Add increments the named counter by delta.
func (t *Tracer) Add(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if _, ok := t.counters[name]; !ok {
		t.corder = append(t.corder, name)
	}
	t.counters[name] += delta
	t.mu.Unlock()
}

// StageTiming is one stage's aggregate in a Report.
type StageTiming struct {
	// Name is the span name, e.g. "insertion".
	Name string `json:"name"`
	// Count is how many spans were recorded under the name.
	Count int64 `json:"count"`
	// Seconds is the total recorded duration.
	Seconds float64 `json:"seconds"`
}

// Report is a tracer snapshot, shaped for JSON export (the -trace-json
// output of wrsn-bench and wrsn-plan).
type Report struct {
	// TotalSeconds is the wall time since the tracer was created.
	TotalSeconds float64 `json:"total_seconds"`
	// Stages lists per-stage aggregates in first-recorded order. On a
	// single sequential plan they sum to approximately TotalSeconds;
	// under concurrent workers they sum to total CPU-side stage time,
	// which can exceed the wall total.
	Stages []StageTiming `json:"stages"`
	// Counters holds the monotonic counters.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Report snapshots the tracer. Safe on a nil receiver (returns a zero
// report).
func (t *Tracer) Report() Report {
	if t == nil {
		return Report{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := Report{TotalSeconds: time.Since(t.started).Seconds()}
	for _, name := range t.order {
		st := t.stages[name]
		r.Stages = append(r.Stages, StageTiming{Name: name, Count: st.count, Seconds: st.total.Seconds()})
	}
	if len(t.counters) > 0 {
		r.Counters = make(map[string]int64, len(t.counters))
		for _, name := range t.corder {
			r.Counters[name] = t.counters[name]
		}
	}
	return r
}

// StageSeconds returns the named stage's total recorded seconds (zero if
// never recorded or the tracer is nil).
func (t *Tracer) StageSeconds(name string) float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if st := t.stages[name]; st != nil {
		return st.total.Seconds()
	}
	return 0
}

// WriteJSON writes the report as indented JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Report())
}

// Progress is a serialized progress sink: concurrent workers call Emit
// and the wrapped function observes the calls one at a time, in some
// order. A nil *Progress and a nil wrapped function are both valid and
// drop every message.
type Progress struct {
	mu sync.Mutex
	fn func(string)
}

// NewProgress wraps fn; nil fn yields a sink that drops messages.
func NewProgress(fn func(string)) *Progress {
	return &Progress{fn: fn}
}

// Emit formats and forwards one progress line under the sink's lock.
func (p *Progress) Emit(format string, args ...any) {
	if p == nil || p.fn == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	p.mu.Lock()
	p.fn(msg)
	p.mu.Unlock()
}
