package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	sp.End()
	tr.Observe("x", time.Second)
	tr.Add("c", 3)
	if got := tr.Report(); len(got.Stages) != 0 || got.TotalSeconds != 0 {
		t.Errorf("nil tracer report = %+v, want zero", got)
	}
	if s := tr.StageSeconds("x"); s != 0 {
		t.Errorf("nil StageSeconds = %v", s)
	}
}

func TestNilSafetyTable(t *testing.T) {
	// Every tracer entry point must be callable through a nil receiver:
	// the simulator and planners trace unconditionally and rely on the
	// nil tracer being free.
	var tr *Tracer
	cases := []struct {
		name string
		call func(t *testing.T)
	}{
		{"Start/End", func(t *testing.T) { tr.Start("x").End() }},
		{"zero Span End", func(t *testing.T) { Span{}.End() }},
		{"Observe", func(t *testing.T) { tr.Observe("x", time.Second) }},
		{"Add", func(t *testing.T) { tr.Add("c", 3) }},
		{"Add negative", func(t *testing.T) { tr.Add("c", -1) }},
		{"Report", func(t *testing.T) {
			if got := tr.Report(); len(got.Stages) != 0 || got.Counters != nil {
				t.Errorf("nil Report = %+v, want zero", got)
			}
		}},
		{"StageSeconds", func(t *testing.T) {
			if s := tr.StageSeconds("x"); s != 0 {
				t.Errorf("nil StageSeconds = %v, want 0", s)
			}
		}},
		{"WriteJSON", func(t *testing.T) {
			var buf bytes.Buffer
			if err := tr.WriteJSON(&buf); err != nil {
				t.Errorf("nil WriteJSON: %v", err)
			}
			var r Report
			if err := json.Unmarshal(buf.Bytes(), &r); err != nil {
				t.Errorf("nil WriteJSON output invalid: %v", err)
			}
		}},
		{"nil Progress Emit", func(t *testing.T) {
			var p *Progress
			p.Emit("dropped %d", 1)
		}},
		{"nil fn Progress Emit", func(t *testing.T) { NewProgress(nil).Emit("dropped") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.call) // any panic fails the subtest
	}
}

func TestFromContextDefaultsToNil(t *testing.T) {
	if tr := FromContext(context.Background()); tr != nil {
		t.Fatalf("FromContext(background) = %v, want nil", tr)
	}
}

func TestWithTracerRoundTrip(t *testing.T) {
	tr := New()
	ctx := WithTracer(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
	if ctx2 := WithTracer(context.Background(), nil); FromContext(ctx2) != nil {
		t.Fatal("WithTracer(nil) should carry no tracer")
	}
}

func TestSpanAggregation(t *testing.T) {
	tr := New()
	tr.Observe(StageMIS, 10*time.Millisecond)
	tr.Observe(StageMIS, 30*time.Millisecond)
	tr.Observe(StageInsertion, 5*time.Millisecond)
	tr.Add("plans", 1)
	tr.Add("plans", 1)

	r := tr.Report()
	if len(r.Stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(r.Stages))
	}
	if r.Stages[0].Name != StageMIS || r.Stages[0].Count != 2 {
		t.Errorf("stage[0] = %+v, want mis count 2", r.Stages[0])
	}
	if got, want := r.Stages[0].Seconds, 0.04; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("mis seconds = %v, want %v", got, want)
	}
	if r.Counters["plans"] != 2 {
		t.Errorf("plans counter = %d, want 2", r.Counters["plans"])
	}
	if s := tr.StageSeconds(StageInsertion); s < 0.005-1e-9 {
		t.Errorf("StageSeconds(insertion) = %v", s)
	}
}

func TestSpanStartEndRecords(t *testing.T) {
	tr := New()
	sp := tr.Start("work")
	time.Sleep(time.Millisecond)
	sp.End()
	if s := tr.StageSeconds("work"); s <= 0 {
		t.Fatalf("span recorded %v seconds, want > 0", s)
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.Start("s")
				sp.End()
				tr.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	r := tr.Report()
	if r.Stages[0].Count != 800 {
		t.Errorf("span count = %d, want 800", r.Stages[0].Count)
	}
	if r.Counters["n"] != 800 {
		t.Errorf("counter = %d, want 800", r.Counters["n"])
	}
}

func TestWriteJSON(t *testing.T) {
	tr := New()
	tr.Observe(StageExecute, 2*time.Second)
	tr.Add("rounds", 7)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := json.Unmarshal(buf.Bytes(), &r); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(r.Stages) != 1 || r.Stages[0].Name != StageExecute || r.Stages[0].Seconds != 2 {
		t.Errorf("decoded stages = %+v", r.Stages)
	}
	if r.Counters["rounds"] != 7 {
		t.Errorf("decoded counters = %+v", r.Counters)
	}
	if !strings.Contains(buf.String(), "total_seconds") {
		t.Error("JSON missing total_seconds field")
	}
}

func TestProgressSerializesAndIsNilSafe(t *testing.T) {
	var nilP *Progress
	nilP.Emit("dropped %d", 1) // must not panic
	NewProgress(nil).Emit("also dropped")

	// Concurrent emitters against an intentionally racy sink: the
	// Progress lock is what keeps the data race away, which `go test
	// -race` checks.
	var lines []string
	p := NewProgress(func(msg string) { lines = append(lines, msg) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.Emit("worker %d line %d", g, i)
			}
		}(g)
	}
	wg.Wait()
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
}
