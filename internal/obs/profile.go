package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts pprof profiling for a CLI run: a CPU profile
// streamed to cpuPath and/or an allocation profile written to memPath at
// stop time (either may be empty to skip it). It returns a stop function
// that must be called exactly once, on every exit path, before the
// process terminates — os.Exit skips deferred calls, so callers that exit
// with a status code need to stop explicitly first.
//
// The memory profile is the "allocs" profile (every allocation since
// program start, plus in-use data after a forced GC), which is the view
// the planner's allocs/op acceptance numbers come from.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				first = fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("mem profile: %w", err)
				}
				return first
			}
			runtime.GC() // settle in-use stats before the snapshot
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil && first == nil {
				first = fmt.Errorf("mem profile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("mem profile: %w", err)
			}
		}
		return first
	}, nil
}
