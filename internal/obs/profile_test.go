package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartProfilesWritesBoth(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have samples to encode.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i % 7
	}
	_ = sink
	buf := make([]byte, 1<<20)
	_ = buf
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("second stop must be a no-op, got %v", err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s: empty profile", p)
		}
	}
}

func TestStartProfilesEmptyPathsNoop(t *testing.T) {
	stop, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartProfilesBadPath(t *testing.T) {
	if _, err := StartProfiles(filepath.Join(t.TempDir(), "no", "such", "dir", "x.prof"), ""); err == nil {
		t.Fatal("expected error for uncreatable cpu profile path")
	}
}
