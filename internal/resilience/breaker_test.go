package resilience

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable breaker clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

// TestBreakerStateMachine drives the breaker through scripted
// allow/report/advance sequences and checks every transition of the
// closed -> open -> half-open state machine.
func TestBreakerStateMachine(t *testing.T) {
	type step struct {
		op        string // "allow", "report-ok", "report-fail", "advance"
		d         time.Duration
		wantAllow bool
		wantState BreakerState
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{"closed passes and resets on success", []step{
			{op: "allow", wantAllow: true, wantState: Closed},
			{op: "report-fail", wantState: Closed},
			{op: "report-fail", wantState: Closed},
			{op: "report-ok", wantState: Closed}, // streak broken
			{op: "report-fail", wantState: Closed},
			{op: "report-fail", wantState: Closed},
			{op: "allow", wantAllow: true, wantState: Closed},
		}},
		{"threshold consecutive failures trip it open", []step{
			{op: "report-fail", wantState: Closed},
			{op: "report-fail", wantState: Closed},
			{op: "report-fail", wantState: Open},
			{op: "allow", wantAllow: false, wantState: Open},
		}},
		{"open refuses until cooldown, then admits one probe", []step{
			{op: "report-fail"}, {op: "report-fail"}, {op: "report-fail", wantState: Open},
			{op: "advance", d: time.Second},
			{op: "allow", wantAllow: false, wantState: Open},
			{op: "advance", d: time.Second},
			{op: "allow", wantAllow: true, wantState: HalfOpen},  // the probe
			{op: "allow", wantAllow: false, wantState: HalfOpen}, // probe in flight
		}},
		{"half-open probe success closes", []step{
			{op: "report-fail"}, {op: "report-fail"}, {op: "report-fail", wantState: Open},
			{op: "advance", d: 2 * time.Second},
			{op: "allow", wantAllow: true, wantState: HalfOpen},
			{op: "report-ok", wantState: Closed},
			{op: "allow", wantAllow: true, wantState: Closed},
		}},
		{"half-open probe failure re-opens for a fresh cooldown", []step{
			{op: "report-fail"}, {op: "report-fail"}, {op: "report-fail", wantState: Open},
			{op: "advance", d: 2 * time.Second},
			{op: "allow", wantAllow: true, wantState: HalfOpen},
			{op: "report-fail", wantState: Open},
			{op: "advance", d: time.Second},
			{op: "allow", wantAllow: false, wantState: Open}, // cooldown restarted
			{op: "advance", d: time.Second},
			{op: "allow", wantAllow: true, wantState: HalfOpen},
			{op: "report-ok", wantState: Closed},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, clk := testBreaker(3, 2*time.Second)
			for i, st := range tc.steps {
				switch st.op {
				case "allow":
					if got := b.Allow(); got != st.wantAllow {
						t.Fatalf("step %d: Allow() = %v, want %v", i, got, st.wantAllow)
					}
				case "report-ok":
					b.Report(true)
				case "report-fail":
					b.Report(false)
				case "advance":
					clk.advance(st.d)
				default:
					t.Fatalf("step %d: bad op %q", i, st.op)
				}
				if st.op != "advance" && b.State() != st.wantState {
					t.Fatalf("step %d (%s): state = %v, want %v", i, st.op, b.State(), st.wantState)
				}
			}
		})
	}
}

// TestBreakerOpensCounter counts trips, including half-open re-trips.
func TestBreakerOpensCounter(t *testing.T) {
	b, clk := testBreaker(2, time.Second)
	b.Report(false)
	b.Report(false) // trip 1
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused after cooldown")
	}
	b.Report(false) // trip 2 (probe failed)
	if got := b.Opens(); got != 2 {
		t.Fatalf("Opens() = %d, want 2", got)
	}
}

// TestBreakerConcurrentTrips hammers one breaker from many goroutines
// under -race: Allow/Report pairs must stay balanced, at most one
// half-open probe may be admitted per cooldown lapse, and the final
// state must be a legal one.
func TestBreakerConcurrentTrips(t *testing.T) {
	b, clk := testBreaker(5, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if b.Allow() {
					// 7 consecutive failures between successes: trips
					// even if the goroutines never interleave.
					b.Report(i%8 == 0)
				}
				if i%100 == 0 {
					clk.advance(2 * time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	if s := b.State(); s != Closed && s != Open && s != HalfOpen {
		t.Fatalf("final state invalid: %v", s)
	}
	if b.Opens() == 0 {
		t.Fatal("no trips despite a failing majority")
	}
}

// TestBreakerHalfOpenSingleProbe checks that concurrent callers racing
// into a just-cooled-down breaker admit exactly one probe.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := testBreaker(1, time.Second)
	b.Report(false) // open
	clk.advance(time.Second)

	var allowed sync.Map
	var n int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if b.Allow() {
				mu.Lock()
				n++
				mu.Unlock()
				allowed.Store(g, true)
			}
		}(g)
	}
	wg.Wait()
	if n != 1 {
		t.Fatalf("half-open admitted %d probes, want exactly 1", n)
	}
}
