package resilience

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: log-linear ("HDR-style") with subBits bits
// of resolution inside every power-of-two range, recording in
// microseconds. Values below subCount land in exact unit buckets; above,
// bucket width doubles with each octave, bounding relative error by
// 2^-(subBits-1) (~3%) — plenty for p50/p99/p999 while keeping the whole
// histogram a fixed 15 KiB of atomics.
const (
	subBits   = 6
	subCount  = 1 << subBits // 64
	halfCount = subCount / 2 // 32
	// numBuckets covers every uint64 microsecond value: the largest
	// shift is 64-subBits = 58, so indexes stay below 58*32+64.
	numBuckets = 59*halfCount + subCount
)

// Histogram is a fixed-size log-linear latency histogram. The zero value
// is ready to use; Observe is lock-free (one atomic add plus a max CAS),
// so request paths can record into a shared instance without contention.
// Quantile readers see a live snapshot that is approximately consistent
// under concurrent writes — fine for metrics, which is all it is for.
type Histogram struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // microseconds
	max    atomic.Int64 // microseconds
}

// bucketIndex maps a microsecond value to its bucket.
func bucketIndex(v uint64) int {
	if v < subCount {
		return int(v)
	}
	shift := bits.Len64(v) - subBits
	idx := shift*halfCount + int(v>>shift)
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

// bucketValue returns the representative (midpoint) microsecond value of
// a bucket — the inverse of bucketIndex up to bucket width.
func bucketValue(idx int) uint64 {
	if idx < subCount {
		return uint64(idx)
	}
	shift := idx/halfCount - 1
	m := uint64(idx - shift*halfCount)
	return m<<shift + 1<<shift>>1
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := int64(d / time.Microsecond)
	h.counts[bucketIndex(uint64(us))].Add(1)
	h.count.Add(1)
	h.sum.Add(us)
	for {
		cur := h.max.Load()
		if us <= cur || h.max.CompareAndSwap(cur, us) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Max returns the largest observed latency.
func (h *Histogram) Max() time.Duration {
	return time.Duration(h.max.Load()) * time.Microsecond
}

// Mean returns the average observed latency.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load()/n) * time.Microsecond
}

// Quantile returns the latency at quantile q in [0, 1]: the bucket
// midpoint at the smallest rank covering q of the observations, except
// q = 1 which returns the exact Max. Zero observations return 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max()
	}
	if q < 0 {
		q = 0
	}
	rank := int64(q*float64(total)) + 1
	if rank > total {
		rank = total
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			return time.Duration(bucketValue(i)) * time.Microsecond
		}
	}
	return h.Max()
}
