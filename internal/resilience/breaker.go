package resilience

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// Closed passes requests through, counting consecutive failures.
	Closed BreakerState = iota
	// Open fails fast: no request may proceed until Cooldown elapses.
	Open
	// HalfOpen admits exactly one probe request; its outcome decides
	// between Closed (success) and Open again (failure).
	HalfOpen
)

// String implements fmt.Stringer for metrics labels and test failures.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "invalid"
}

// Breaker is a per-backend circuit breaker. Closed until Threshold
// consecutive failures, then Open for Cooldown, then HalfOpen: one probe
// is admitted, and its outcome either closes the circuit or re-opens it
// for another Cooldown. All methods are safe for concurrent use.
//
// Callers must pair every Allow() == true with exactly one Report: the
// half-open probe slot is held by the allowed caller and only its Report
// resolves the probe. An Allow() == false costs nothing and holds
// nothing — route around and move on.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for deterministic tests

	state    BreakerState
	failures int       // consecutive failures while Closed
	openedAt time.Time // when state last became Open
	probing  bool      // a half-open probe is in flight
	opens    int64     // transitions to Open, cumulative
}

// NewBreaker returns a Closed breaker tripping after threshold
// consecutive failures (<= 0 means 3) and cooling down for cooldown
// (<= 0 means 2 s) before probing.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a request may proceed. In Open state it flips to
// HalfOpen once the cooldown has elapsed and admits the caller as the
// probe; while a probe is in flight every other caller is refused.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = HalfOpen
		b.probing = true
		return true
	default: // HalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Report records the outcome of a request previously admitted by Allow.
func (b *Breaker) Report(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if ok {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	case HalfOpen:
		b.probing = false
		if ok {
			b.state = Closed
			b.failures = 0
		} else {
			b.trip()
		}
	case Open:
		// A straggler from before the trip; its outcome is stale.
	}
}

// trip moves to Open; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.now()
	b.failures = 0
	b.probing = false
	b.opens++
}

// State returns the current position (Open reads as Open until an Allow
// observes the elapsed cooldown; the flip to HalfOpen happens on demand,
// not on a timer).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens returns the cumulative number of transitions to Open.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
