package resilience

import "sync"

// Group collapses concurrent calls with the same key into one execution:
// the first caller runs fn, the rest block and share its result. The
// serve router keys a Group by the 128-bit plancache key, so a thundering
// herd of identical plan requests costs one upstream fetch instead of
// one per caller. Distinct keys proceed independently.
//
// Unlike golang.org/x/sync/singleflight (not vendored here — the repo is
// stdlib-only), results are typed, and the duplicate callers run no code
// at all: they wake with the leader's exact result values.
type Group[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*flight[V]
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
	dups int
}

// Do executes fn once per concurrent set of callers sharing key and
// returns its result to all of them. shared reports whether the result
// was produced by (or delivered to) more than one caller. Once the
// leader returns, the key is forgotten: a later Do with the same key
// runs fn again — collapsing is concurrency deduplication, not caching.
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (v V, err error, shared bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[K]*flight[V])
	}
	if f, ok := g.calls[key]; ok {
		f.dups++
		g.mu.Unlock()
		<-f.done
		return f.val, f.err, true
	}
	f := &flight[V]{done: make(chan struct{})}
	g.calls[key] = f
	g.mu.Unlock()

	f.val, f.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	dups := f.dups
	g.mu.Unlock()
	close(f.done)
	return f.val, f.err, dups > 0
}
