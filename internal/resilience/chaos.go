package resilience

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
)

// ErrChaosReset is the transport error returned for an injected
// connection reset; test with errors.Is.
var ErrChaosReset = errors.New("resilience: chaos injected connection reset")

// ErrChaosBlackhole is the transport error returned for a request to an
// administratively blackholed backend; test with errors.Is.
var ErrChaosBlackhole = errors.New("resilience: chaos blackholed backend")

// ChaosKeyHeader, when set on a request (the serve router stamps it with
// the plan request's folded plancache key), identifies the request for
// chaos draws. Requests without it are keyed by a hash of method + URL.
const ChaosKeyHeader = "X-Chaos-Key"

// ChaosPlan configures a ChaosTripper. The zero value injects nothing.
// All rates are probabilities in [0, 1], drawn per attempt.
type ChaosPlan struct {
	// Seed drives every draw; same plan + same request sequence =
	// identical injected faults.
	Seed int64
	// LatencyRate is the probability an attempt is delayed by
	// LatencyBase * (1 + Exp(1)) before proceeding.
	LatencyRate float64
	// LatencyBase is the injected delay scale; 0 means 20 ms.
	LatencyBase time.Duration
	// ResetRate is the probability an attempt fails with
	// ErrChaosReset, modeling a connection reset mid-flight.
	ResetRate float64
	// Err5xxRate is the probability an attempt is answered by a
	// synthetic 503 burst without reaching the backend.
	Err5xxRate float64
}

// ChaosEvent is one injected fault, identified by the deterministic
// coordinates of its draw, not by when it happened — so sorting events
// canonically yields an identical sequence across replays regardless of
// goroutine interleaving.
type ChaosEvent struct {
	// Key identifies the logical request (ChaosKeyHeader or URL hash).
	Key uint64 `json:"key"`
	// Attempt is the per-key attempt ordinal (0-based).
	Attempt int `json:"attempt"`
	// Host is the backend the attempt addressed.
	Host string `json:"host"`
	// Kind is "latency", "reset", "503" or "blackhole".
	Kind string `json:"kind"`
}

// ChaosTripper is an http.RoundTripper that injects faults in front of a
// real transport: added latency, connection resets, 5xx bursts, and
// administratively blackholed backends. It is the internal/fault
// philosophy lifted to the network layer: every probabilistic decision is
// fault.U01(seed, kind, requestKey, attempt), so a drill at a fixed seed
// injects the identical fault set on every run over the same request
// sequence.
//
// Blackholing is not probabilistic: Blackhole(host, true) makes every
// attempt to host stall briefly (modeling dropped packets bounded by the
// caller's patience) and fail with ErrChaosBlackhole, until revived.
type ChaosTripper struct {
	next http.RoundTripper
	plan ChaosPlan

	mu         sync.Mutex
	attempts   map[uint64]int
	events     []ChaosEvent
	counts     map[string]int64
	blackholed map[string]bool
}

// NewChaosTripper wraps next (nil means http.DefaultTransport) with the
// plan's fault injection.
func NewChaosTripper(next http.RoundTripper, plan ChaosPlan) *ChaosTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	if plan.LatencyBase <= 0 {
		plan.LatencyBase = 20 * time.Millisecond
	}
	return &ChaosTripper{
		next:       next,
		plan:       plan,
		attempts:   make(map[uint64]int),
		counts:     make(map[string]int64),
		blackholed: make(map[string]bool),
	}
}

// Blackhole sets or clears the blackhole on a backend host (the
// host:port of the request URL).
func (t *ChaosTripper) Blackhole(host string, on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.blackholed[host] = on
}

// RoundTrip implements http.RoundTripper.
func (t *ChaosTripper) RoundTrip(r *http.Request) (*http.Response, error) {
	key := chaosKey(r)
	host := r.URL.Host

	t.mu.Lock()
	attempt := t.attempts[key]
	t.attempts[key]++
	holed := t.blackholed[host]
	t.mu.Unlock()

	if holed {
		t.record(ChaosEvent{Key: key, Attempt: attempt, Host: host, Kind: "blackhole"})
		select {
		case <-time.After(t.plan.LatencyBase):
		case <-r.Context().Done():
			return nil, r.Context().Err()
		}
		return nil, fmt.Errorf("%w: %s", ErrChaosBlackhole, host)
	}
	a, b := key, uint64(int64(attempt))
	if fault.U01(t.plan.Seed, kindChaosLatency, a, b, 0) < t.plan.LatencyRate {
		t.record(ChaosEvent{Key: key, Attempt: attempt, Host: host, Kind: "latency"})
		d := time.Duration(float64(t.plan.LatencyBase) *
			(1 + fault.Excess(fault.U01(t.plan.Seed, kindChaosLatencyAmount, a, b, 0))))
		select {
		case <-time.After(d):
		case <-r.Context().Done():
			return nil, r.Context().Err()
		}
	}
	if fault.U01(t.plan.Seed, kindChaosReset, a, b, 0) < t.plan.ResetRate {
		t.record(ChaosEvent{Key: key, Attempt: attempt, Host: host, Kind: "reset"})
		return nil, fmt.Errorf("%w: %s attempt %d", ErrChaosReset, host, attempt)
	}
	if fault.U01(t.plan.Seed, kindChaos5xx, a, b, 0) < t.plan.Err5xxRate {
		t.record(ChaosEvent{Key: key, Attempt: attempt, Host: host, Kind: "503"})
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:    io.NopCloser(strings.NewReader("chaos injected 503\n")),
			Request: r,
		}, nil
	}
	return t.next.RoundTrip(r)
}

// record appends an event and bumps its kind counter.
func (t *ChaosTripper) record(e ChaosEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.counts[e.Kind]++
	t.mu.Unlock()
}

// Events returns the injected faults sorted canonically by (Key,
// Attempt, Kind): byte-identical across replays of one request sequence
// at one seed, whatever the goroutine interleaving was.
func (t *ChaosTripper) Events() []ChaosEvent {
	t.mu.Lock()
	out := append([]ChaosEvent(nil), t.events...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		if out[i].Attempt != out[j].Attempt {
			return out[i].Attempt < out[j].Attempt
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Counts returns the injected-fault totals by kind.
func (t *ChaosTripper) Counts() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counts))
	for k, v := range t.counts {
		out[k] = v
	}
	return out
}

// chaosKey identifies the logical request: the ChaosKeyHeader when the
// caller stamped one, else an FNV-1a hash of method and URL.
func chaosKey(r *http.Request) uint64 {
	if h := r.Header.Get(ChaosKeyHeader); h != "" {
		if v, err := strconv.ParseUint(h, 16, 64); err == nil {
			return v
		}
	}
	f := fnv.New64a()
	io.WriteString(f, r.Method)
	io.WriteString(f, r.URL.String())
	return f.Sum64()
}
