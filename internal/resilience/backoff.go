// Package resilience is the client-side survival kit for the serving
// tier: retry with capped exponential backoff and deterministic seeded
// jitter, per-backend circuit breakers with half-open probing, hedged
// second requests after a quantile-derived delay, singleflight
// collapsing of concurrent identical requests, an HDR-style latency
// histogram, and a seed-deterministic chaos http.RoundTripper for
// drilling all of the above.
//
// The simulator's internal/fault package injects MCV breakdowns with
// retry-with-backoff *inside* the simulation; this package is the same
// philosophy applied to the HTTP path in front of it. It shares fault's
// keying discipline: every stochastic decision — a jitter fraction, an
// injected latency, a synthetic 5xx — is a pure hash of (seed, kind,
// coordinates) via fault.U01, never of call order or wall clock, so a
// chaos drill at a fixed seed replays the identical fault sequence no
// matter how goroutines interleave.
package resilience

import (
	"time"

	"repro/internal/fault"
)

// Draw kinds for this package's deterministic decisions. They live far
// from the fault injector's own kinds (small integers) so a seed shared
// between a simulation and a chaos drill can never correlate draws.
const (
	kindBackoff uint64 = 0x7265730000000001 + iota // "res\0..."
	kindChaosLatency
	kindChaosLatencyAmount
	kindChaosReset
	kindChaos5xx
)

// Backoff computes retry delays: capped exponential growth with
// deterministic jitter. The zero value is usable (50 ms base, 2 s cap,
// seed 0). Jitter is a pure hash of (Seed, key, attempt) — two processes
// with one seed retrying the same request agree on every delay, which is
// what makes the chaos drill's retry counts replayable.
type Backoff struct {
	// Base is the attempt-0 delay; 0 means 50 ms.
	Base time.Duration
	// Max caps the grown delay before jitter; 0 means 2 s.
	Max time.Duration
	// Seed drives the jitter draws.
	Seed int64
}

// Delay returns the pause before retry number attempt (0-based: the
// delay between the first failure and the second try) of the request
// identified by key. The grown delay Base<<attempt is capped at Max and
// then jittered into [0.5, 1.0) of itself, so synchronized clients
// spread out instead of retrying in lockstep.
func (b Backoff) Delay(key uint64, attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	u := fault.U01(b.Seed, kindBackoff, key, uint64(int64(attempt)), 0)
	return time.Duration(float64(d) * (0.5 + 0.5*u))
}
