package resilience

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBackoffDeterministicAndCapped checks the delay schedule: grows
// exponentially, honors the cap, jitters inside [d/2, d), and replays
// identically for equal (seed, key, attempt).
func TestBackoffDeterministicAndCapped(t *testing.T) {
	b := Backoff{Base: 50 * time.Millisecond, Max: 400 * time.Millisecond, Seed: 7}
	for attempt := 0; attempt < 8; attempt++ {
		grown := 50 * time.Millisecond << attempt
		if grown > 400*time.Millisecond {
			grown = 400 * time.Millisecond
		}
		d := b.Delay(0xdead, attempt)
		if d < grown/2 || d >= grown {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", attempt, d, grown/2, grown)
		}
		if d2 := b.Delay(0xdead, attempt); d2 != d {
			t.Errorf("attempt %d: non-deterministic delay %v vs %v", attempt, d, d2)
		}
	}
	if b.Delay(1, 2) == b.Delay(2, 2) {
		t.Error("distinct keys produced equal jitter (suspicious)")
	}
	if (Backoff{}).Delay(1, 0) <= 0 {
		t.Error("zero-value Backoff returned a non-positive delay")
	}
}

// TestSingleflightCollapses runs many concurrent Do calls on one key and
// checks fn executed once with everyone sharing the result, while a
// distinct key proceeds independently.
func TestSingleflightCollapses(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int32
	gate := make(chan struct{})

	const dup = 16
	var wg sync.WaitGroup
	results := make([]int, dup)
	shareds := make([]bool, dup)
	for i := 0; i < dup; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.Do("hot", func() (int, error) {
				calls.Add(1)
				<-gate
				return 42, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i], shareds[i] = v, shared
		}(i)
	}
	// Let the herd pile up behind the leader, then release it.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
	sharedCount := 0
	for i := range results {
		if results[i] != 42 {
			t.Fatalf("caller %d got %d, want 42", i, results[i])
		}
		if shareds[i] {
			sharedCount++
		}
	}
	if sharedCount == 0 {
		t.Fatal("no caller observed shared=true despite duplicates")
	}

	// After the flight lands the key is forgotten: Do runs fn again.
	_, _, _ = g.Do("hot", func() (int, error) { calls.Add(1); return 0, nil })
	if calls.Load() != 2 {
		t.Fatalf("second Do did not re-run fn (calls=%d)", calls.Load())
	}

	// Errors propagate to every sharer.
	boom := errors.New("boom")
	if _, err, _ := g.Do("err", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

// TestHistogramQuantiles feeds a known distribution and checks the
// quantiles land within the documented ~3% bucket resolution.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must read 0")
	}
	// 1..1000 ms, uniform.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
		{0.999, 999 * time.Millisecond},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		lo := time.Duration(float64(c.want) * 0.95)
		hi := time.Duration(float64(c.want) * 1.05)
		if got < lo || got > hi {
			t.Errorf("Quantile(%g) = %v, want within 5%% of %v", c.q, got, c.want)
		}
	}
	if h.Max() != 1000*time.Millisecond {
		t.Errorf("Max = %v, want 1s", h.Max())
	}
	if h.Quantile(1) != h.Max() {
		t.Errorf("Quantile(1) = %v, want Max %v", h.Quantile(1), h.Max())
	}
	if m := h.Mean(); m < 480*time.Millisecond || m > 520*time.Millisecond {
		t.Errorf("Mean = %v, want ~500ms", m)
	}
}

// TestHistogramBucketRoundTrip checks index/value inversion across the
// whole range: the representative value must re-index to its own bucket.
func TestHistogramBucketRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<40 + 12345} {
		idx := bucketIndex(v)
		rep := bucketValue(idx)
		if back := bucketIndex(rep); back != idx {
			t.Errorf("v=%d: idx=%d rep=%d re-idx=%d", v, idx, rep, back)
		}
	}
	// Monotone non-decreasing index.
	prev := -1
	for v := uint64(0); v < 100000; v += 37 {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d", v)
		}
		prev = idx
	}
}

// TestHistogramConcurrentObserve exercises the lock-free path under
// -race.
func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(g*1000+i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
}

// TestChaosTripperDeterminism replays one request sequence through two
// trippers at the same seed and requires identical event sequences and
// counters; a different seed must diverge.
func TestChaosTripperDeterminism(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer backend.Close()

	run := func(seed int64) ([]ChaosEvent, map[string]int64) {
		tr := NewChaosTripper(nil, ChaosPlan{
			Seed: seed, LatencyRate: 0.3, LatencyBase: time.Microsecond,
			ResetRate: 0.3, Err5xxRate: 0.3,
		})
		client := &http.Client{Transport: tr}
		for i := 0; i < 50; i++ {
			req, _ := http.NewRequest("GET", backend.URL, nil)
			req.Header.Set(ChaosKeyHeader, fmt.Sprintf("%x", i))
			// Two attempts per key, mirroring a retry loop.
			for a := 0; a < 2; a++ {
				resp, err := client.Do(req.Clone(req.Context()))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
		return tr.Events(), tr.Counts()
	}

	e1, c1 := run(7)
	e2, c2 := run(7)
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("same seed diverged:\n%v\nvs\n%v", e1, e2)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatalf("same-seed counters diverged: %v vs %v", c1, c2)
	}
	if len(e1) == 0 {
		t.Fatal("no faults injected at 0.3 rates over 100 attempts")
	}
	e3, _ := run(8)
	if reflect.DeepEqual(e1, e3) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

// TestChaosTripperBlackhole checks the administrative blackhole fails
// fast with ErrChaosBlackhole and clears on revive.
func TestChaosTripperBlackhole(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer backend.Close()
	host := backend.Listener.Addr().String()

	tr := NewChaosTripper(nil, ChaosPlan{Seed: 1, LatencyBase: time.Microsecond})
	client := &http.Client{Transport: tr}

	tr.Blackhole(host, true)
	_, err := client.Get(backend.URL)
	if !errors.Is(err, ErrChaosBlackhole) {
		t.Fatalf("blackholed request: err = %v, want ErrChaosBlackhole", err)
	}
	tr.Blackhole(host, false)
	resp, err := client.Get(backend.URL)
	if err != nil {
		t.Fatalf("revived request failed: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("revived status = %d", resp.StatusCode)
	}
	if n := tr.Counts()["blackhole"]; n != 1 {
		t.Fatalf("blackhole count = %d, want 1", n)
	}
}
