// Package stats provides the small set of descriptive statistics the
// evaluation harness needs: means, standard deviations, percentiles, and
// running accumulators for aggregating results across simulation instances.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator), or
// 0 when fewer than two values are present.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Accumulator collects values incrementally, tracking count, mean (via
// Welford's algorithm), variance, min and max without storing the values.
// The zero value is ready to use.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add incorporates x.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of values added.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean, or 0 when empty.
func (a *Accumulator) Mean() float64 { return a.mean }

// StdDev returns the running sample standard deviation, or 0 when fewer
// than two values were added.
func (a *Accumulator) StdDev() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n-1))
}

// Min returns the smallest value added, or +Inf when empty.
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return math.Inf(1)
	}
	return a.min
}

// Max returns the largest value added, or -Inf when empty.
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return math.Inf(-1)
	}
	return a.max
}
