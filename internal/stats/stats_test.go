package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Mean = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev(nil); got != 0 {
		t.Errorf("StdDev(nil) = %v", got)
	}
	if got := StdDev([]float64{7}); got != 0 {
		t.Errorf("StdDev(single) = %v", got)
	}
	// Known sample: {2,4,4,4,5,5,7,9} has sample stddev ~2.138.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(xs); math.Abs(got-2.1380899353) > 1e-6 {
		t.Errorf("StdDev = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be +/-Inf")
	}
	xs := []float64{3, -2, 8, 0}
	if Min(xs) != -2 || Max(xs) != 8 {
		t.Errorf("Min=%v Max=%v", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		p, want float64
	}{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {-5, 10}, {150, 50}, {10, 14},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
	// Must not mutate input.
	unsorted := []float64{5, 1, 3}
	Percentile(unsorted, 50)
	if unsorted[0] != 5 || unsorted[1] != 1 || unsorted[2] != 3 {
		t.Error("Percentile mutated input")
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		xs := make([]float64, n)
		var acc Accumulator
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			acc.Add(xs[i])
		}
		tol := 1e-6
		return acc.N() == n &&
			math.Abs(acc.Mean()-Mean(xs)) < tol &&
			math.Abs(acc.StdDev()-StdDev(xs)) < tol &&
			acc.Min() == Min(xs) &&
			acc.Max() == Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var acc Accumulator
	if acc.N() != 0 || acc.Mean() != 0 || acc.StdDev() != 0 {
		t.Error("empty accumulator should be zeroed")
	}
	if !math.IsInf(acc.Min(), 1) || !math.IsInf(acc.Max(), -1) {
		t.Error("empty accumulator Min/Max should be +/-Inf")
	}
}
