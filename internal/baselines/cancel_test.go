package baselines

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

// TestBaselinesHonorContext checks every baseline planner against the
// shared cancellation contract: a pre-cancelled context yields an error
// satisfying errors.Is(err, context.Canceled) and no schedule.
func TestBaselinesHonorContext(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	in := &core.Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: 2}
	for i := 0; i < 60; i++ {
		in.Requests = append(in.Requests, core.Request{
			Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
			Duration: (1.2 + 0.3*rng.Float64()) * 3600,
			Lifetime: float64(1+i%7) * 86400,
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, p := range All() {
		t.Run(p.Name(), func(t *testing.T) {
			s, err := p.Plan(ctx, in)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if s != nil {
				t.Fatal("schedule returned alongside cancellation error")
			}
		})
	}
}
