// Package baselines implements the four benchmark algorithms the paper
// compares Appro against (Section VI-A). All four schedule under the
// classical one-to-one charging scheme — each stop charges exactly the
// sensor the charger parks at — which is why Appro's multi-node
// consolidation beats them on dense request sets:
//
//   - K-EDF: earliest-deadline-first dispatch in groups of K, each group
//     assigned to the K chargers to minimize total travel.
//   - NETWRAP (Wang et al., IEEE TC 2016): each free charger greedily picks
//     the pending sensor minimizing a weighted sum of travel time and
//     residual lifetime.
//   - AA (Wang et al., IEEE TC 2016): k-means partitions the sensors into K
//     groups, one charger tours each group. (The original additionally
//     drops a fraction of each group under the charger's energy budget; we
//     charge whole groups, which only helps this baseline.)
//   - K-minMax (Liang et al., ACM TOSN 2016): K node-disjoint closed tours
//     over all sensors minimizing the longest tour delay — the strongest
//     one-to-one baseline, with a published 5-approximation.
package baselines

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/assign"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/kmeans"
	"repro/internal/ktour"
	"repro/internal/tsp"

	"math/rand"
)

// urgency returns the sort key for deadline-driven baselines: residual
// lifetime when known, otherwise the negated charge duration so that the
// most-depleted sensors come first.
func urgency(r core.Request) float64 {
	if r.Lifetime > 0 {
		return r.Lifetime
	}
	return -r.Duration
}

// singleStop builds the one-to-one stop for request u.
func singleStop(u int) core.Stop {
	return core.Stop{Node: u, Covers: []int{u}}
}

// KEDF is the Earliest Deadline First baseline with K chargers.
type KEDF struct{}

// Name implements core.Planner.
func (KEDF) Name() string { return "K-EDF" }

// Plan implements core.Planner. Sensors are sorted by increasing residual
// lifetime and split into consecutive groups of K; within each group the
// assignment of its sensors to the K chargers minimizes the total travel
// distance from the chargers' current locations (an exact Hungarian
// assignment, O(K^3) per group).
func (KEDF) Plan(ctx context.Context, in *core.Instance) (*core.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("baselines: K-EDF: %w", err)
	}
	order := make([]int, len(in.Requests))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return urgency(in.Requests[order[a]]) < urgency(in.Requests[order[b]])
	})

	s := &core.Schedule{Tours: make([]core.Tour, in.K)}
	pos := make([]geom.Point, in.K)
	for k := range pos {
		pos[k] = in.Depot
	}
	for start := 0; start < len(order); start += in.K {
		if (start/in.K)%16 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("baselines: K-EDF: %w", err)
			}
		}
		end := start + in.K
		if end > len(order) {
			end = len(order)
		}
		group := order[start:end]
		assignment, err := bestAssignment(in, pos, group)
		if err != nil {
			return nil, fmt.Errorf("baselines: K-EDF group assignment: %w", err)
		}
		for k, u := range assignment {
			if u < 0 {
				continue
			}
			s.Tours[k].Stops = append(s.Tours[k].Stops, withDuration(in, singleStop(u)))
			pos[k] = in.Requests[u].Pos
		}
	}
	core.Finalize(in, s)
	return s, nil
}

// bestAssignment maps chargers to the group's sensors (at most one each),
// minimizing total travel distance from the chargers' current positions,
// via a Hungarian assignment with sensors as rows and chargers as columns.
// The result has one entry per charger, -1 when the charger gets nothing
// (only possible when the group is smaller than K).
func bestAssignment(in *core.Instance, pos []geom.Point, group []int) ([]int, error) {
	k := len(pos)
	cost := make([][]float64, len(group))
	for gi, u := range group {
		cost[gi] = make([]float64, k)
		for c := range pos {
			cost[gi][c] = geom.Dist(pos[c], in.Requests[u].Pos)
		}
	}
	rowToCol, _, err := assign.Hungarian(cost)
	if err != nil {
		return nil, err
	}
	out := make([]int, k)
	for i := range out {
		out[i] = -1
	}
	for gi, c := range rowToCol {
		out[c] = group[gi]
	}
	return out, nil
}

// withDuration fills the stop's charging duration from its request.
func withDuration(in *core.Instance, st core.Stop) core.Stop {
	st.Duration = in.Requests[st.Node].Duration
	return st
}

// NETWRAP is the greedy on-demand baseline of Wang et al.: whenever a
// charger becomes free it travels to the pending sensor minimizing
// WTravel*travelTime + WLife*residualLifetime.
type NETWRAP struct {
	// WTravel and WLife weight the two criteria; both default to 1 when
	// zero (the units already agree: seconds).
	WTravel, WLife float64
}

// Name implements core.Planner.
func (NETWRAP) Name() string { return "NETWRAP" }

// Plan implements core.Planner with an event-driven greedy simulation of
// the K chargers.
func (p NETWRAP) Plan(ctx context.Context, in *core.Instance) (*core.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	wt, wl := p.WTravel, p.WLife
	if wt == 0 {
		wt = 1
	}
	if wl == 0 {
		wl = 1
	}
	s := &core.Schedule{Tours: make([]core.Tour, in.K)}
	pos := make([]geom.Point, in.K)
	busyUntil := make([]float64, in.K)
	for k := range pos {
		pos[k] = in.Depot
	}
	remaining := make(map[int]bool, len(in.Requests))
	for u := range in.Requests {
		remaining[u] = true
	}
	for iter := 0; len(remaining) > 0; iter++ {
		if iter%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("baselines: NETWRAP: %w", err)
			}
		}
		// Earliest-free charger; ties by index.
		k := 0
		for j := 1; j < in.K; j++ {
			if busyUntil[j] < busyUntil[k] {
				k = j
			}
		}
		// Its best next sensor.
		bestU, bestScore := -1, math.Inf(1)
		for u := range remaining {
			r := in.Requests[u]
			life := r.Lifetime
			if life <= 0 {
				life = -r.Duration
			}
			score := wt*in.Travel(pos[k], r.Pos) + wl*life
			if score < bestScore || (score == bestScore && u < bestU) {
				bestU, bestScore = u, score
			}
		}
		delete(remaining, bestU)
		travel := in.Travel(pos[k], in.Requests[bestU].Pos)
		busyUntil[k] += travel + in.Requests[bestU].Duration
		pos[k] = in.Requests[bestU].Pos
		s.Tours[k].Stops = append(s.Tours[k].Stops, withDuration(in, singleStop(bestU)))
	}
	core.Finalize(in, s)
	return s, nil
}

// AA is the k-means partition baseline of Wang et al.: the sensors are
// split into K spatial groups, and charger k serves group k along a TSP
// tour of the group.
type AA struct {
	// Seed drives the k-means++ seeding.
	Seed int64
}

// Name implements core.Planner.
func (AA) Name() string { return "AA" }

// Plan implements core.Planner.
func (p AA) Plan(ctx context.Context, in *core.Instance) (*core.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	s := &core.Schedule{Tours: make([]core.Tour, in.K)}
	if len(in.Requests) == 0 {
		core.Finalize(in, s)
		return s, nil
	}
	res, err := kmeans.Cluster(in.Positions(), in.K, rand.New(rand.NewSource(p.Seed)), 0)
	if err != nil {
		return nil, fmt.Errorf("baselines: AA clustering: %w", err)
	}
	for k, group := range res.Groups() {
		if len(group) == 0 {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("baselines: AA: %w", err)
		}
		ordered := tourOrder(in, group)
		for _, u := range ordered {
			s.Tours[k].Stops = append(s.Tours[k].Stops, withDuration(in, singleStop(u)))
		}
	}
	core.Finalize(in, s)
	return s, nil
}

// tourOrder returns the group's sensors in a short closed-tour order from
// the depot (Christofides-style + 2-opt).
func tourOrder(in *core.Instance, group []int) []int {
	pts := make([]geom.Point, 0, len(group)+1)
	pts = append(pts, in.Depot)
	for _, u := range group {
		pts = append(pts, in.Requests[u].Pos)
	}
	t := tsp.Christofides(pts, 0)
	tsp.TwoOpt(&t, pts, 0)
	t.RotateToStart(0)
	out := make([]int, 0, len(group))
	for _, v := range t.Order {
		if v != 0 {
			out = append(out, group[v-1])
		}
	}
	return out
}

// KMinMax is the strongest one-to-one baseline: K node-disjoint closed
// tours over all sensors with minimized longest delay (Liang et al.).
type KMinMax struct{}

// Name implements core.Planner.
func (KMinMax) Name() string { return "K-minMax" }

// Plan implements core.Planner by delegating to the ktour solver with
// per-sensor service times t_v.
func (KMinMax) Plan(ctx context.Context, in *core.Instance) (*core.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	service := make([]float64, len(in.Requests))
	for i, r := range in.Requests {
		service[i] = r.Duration
	}
	sol, err := ktour.MinMax(ctx, ktour.Input{
		Depot:   in.Depot,
		Nodes:   in.Positions(),
		Service: service,
		Speed:   in.Speed,
		K:       in.K,
	})
	if err != nil {
		return nil, fmt.Errorf("baselines: k-minmax: %w", err)
	}
	s := &core.Schedule{Tours: make([]core.Tour, in.K)}
	for k, tour := range sol.Tours {
		for _, u := range tour {
			s.Tours[k].Stops = append(s.Tours[k].Stops, withDuration(in, singleStop(u)))
		}
	}
	core.Finalize(in, s)
	return s, nil
}

// All returns one instance of every baseline planner, in the order the
// paper lists them.
func All() []core.Planner {
	return []core.Planner{KEDF{}, NETWRAP{}, AA{}, KMinMax{}}
}
