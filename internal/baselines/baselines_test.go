package baselines

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

func randInstance(rng *rand.Rand, n, k int) *core.Instance {
	in := &core.Instance{
		Depot: geom.Pt(50, 50),
		Gamma: 2.7,
		Speed: 1,
		K:     k,
	}
	for i := 0; i < n; i++ {
		dur := (1.2 + 0.3*rng.Float64()) * 3600
		in.Requests = append(in.Requests, core.Request{
			Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
			Duration: dur,
			Lifetime: rng.Float64() * 7 * 86400,
		})
	}
	return in
}

// checkOneToOne verifies the structural invariants every one-to-one
// baseline must satisfy: each request is its own stop exactly once, tours
// are node-disjoint, times are physically consistent.
func checkOneToOne(t *testing.T, name string, in *core.Instance, s *core.Schedule) {
	t.Helper()
	if len(s.Tours) != in.K {
		t.Fatalf("%s: %d tours, want %d", name, len(s.Tours), in.K)
	}
	var seen []int
	for _, tour := range s.Tours {
		for _, st := range tour.Stops {
			if len(st.Covers) != 1 || st.Covers[0] != st.Node {
				t.Fatalf("%s: one-to-one stop must cover exactly its node, got %v at node %d",
					name, st.Covers, st.Node)
			}
			if math.Abs(st.Duration-in.Requests[st.Node].Duration) > 1e-9 {
				t.Fatalf("%s: stop duration %v != request duration", name, st.Duration)
			}
			seen = append(seen, st.Node)
		}
	}
	sort.Ints(seen)
	if len(seen) != len(in.Requests) {
		t.Fatalf("%s: %d stops for %d requests", name, len(seen), len(in.Requests))
	}
	for i, u := range seen {
		if u != i {
			t.Fatalf("%s: coverage is not a partition", name)
		}
	}
	// Verify time consistency with the point-charging view (gamma=0):
	// coincident-position overlaps aside, the core verifier checks
	// coverage radius, travel times and durations.
	point := *in
	point.Gamma = 0
	if vs := core.Verify(&point, s); len(vs) != 0 {
		t.Fatalf("%s: verifier violations: %v", name, vs[0])
	}
}

func TestAllBaselinesStructurallySound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		n := rng.Intn(80)
		k := 1 + rng.Intn(5)
		in := randInstance(rng, n, k)
		for _, p := range All() {
			s, err := p.Plan(context.Background(), in)
			if err != nil {
				t.Fatalf("%s: %v", p.Name(), err)
			}
			checkOneToOne(t, p.Name(), in, s)
		}
	}
}

func TestBaselinesEmptyInstance(t *testing.T) {
	in := &core.Instance{Depot: geom.Pt(0, 0), Gamma: 2.7, Speed: 1, K: 2}
	for _, p := range All() {
		s, err := p.Plan(context.Background(), in)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if s.Longest != 0 || s.NumStops() != 0 {
			t.Errorf("%s: empty instance gave %+v", p.Name(), s)
		}
	}
}

func TestBaselinesRejectInvalid(t *testing.T) {
	in := &core.Instance{Depot: geom.Pt(0, 0), Gamma: 2.7, Speed: 0, K: 2}
	for _, p := range All() {
		if _, err := p.Plan(context.Background(), in); err == nil {
			t.Errorf("%s: invalid instance accepted", p.Name())
		}
	}
}

func TestKEDFOrdersByDeadline(t *testing.T) {
	// Three sensors, K=1: the most urgent (shortest lifetime) must be
	// visited first regardless of distance.
	in := &core.Instance{
		Depot: geom.Pt(0, 0),
		Requests: []core.Request{
			{Pos: geom.Pt(1, 0), Duration: 10, Lifetime: 9000},
			{Pos: geom.Pt(90, 0), Duration: 10, Lifetime: 100},
			{Pos: geom.Pt(2, 0), Duration: 10, Lifetime: 5000},
		},
		Gamma: 2.7, Speed: 1, K: 1,
	}
	s, err := KEDF{}.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	got := []int{s.Tours[0].Stops[0].Node, s.Tours[0].Stops[1].Node, s.Tours[0].Stops[2].Node}
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("visit order = %v, want %v", got, want)
		}
	}
}

func TestKEDFAssignmentMinimizesTravel(t *testing.T) {
	// Two sensors with equal lifetimes, two chargers at the depot: each
	// charger should take the sensor on its own side... both start at the
	// depot, so the optimal assignment is the identity or swap — both
	// cost the same here; instead test a second group where positions
	// differ: after group 1, chargers sit at (10,0) and (-10,0); group 2
	// sensors at (12,0) and (-12,0) must go to the nearer charger.
	in := &core.Instance{
		Depot: geom.Pt(0, 0),
		Requests: []core.Request{
			{Pos: geom.Pt(10, 0), Duration: 10, Lifetime: 1},
			{Pos: geom.Pt(-10, 0), Duration: 10, Lifetime: 2},
			{Pos: geom.Pt(12, 0), Duration: 10, Lifetime: 3},
			{Pos: geom.Pt(-12, 0), Duration: 10, Lifetime: 4},
		},
		Gamma: 2.7, Speed: 1, K: 2,
	}
	s, err := KEDF{}.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	// Whichever charger got sensor 0 must also get sensor 2.
	for _, tour := range s.Tours {
		has := map[int]bool{}
		for _, st := range tour.Stops {
			has[st.Node] = true
		}
		if has[0] && !has[2] || has[2] && !has[0] {
			t.Fatalf("travel-minimizing assignment violated: %+v", s.Tours)
		}
	}
}

func TestKEDFLargeK(t *testing.T) {
	// The Hungarian assignment has no practical K limit; a fleet larger
	// than the request set must still produce a valid partition.
	in := randInstance(rand.New(rand.NewSource(1)), 30, 2)
	in.K = 12
	s, err := KEDF{}.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	checkOneToOne(t, "K-EDF", in, s)
}

func TestNETWRAPPrefersCloseAndUrgent(t *testing.T) {
	// One charger; sensor A is near with long lifetime, sensor B far with
	// short lifetime. With heavy lifetime weight, B goes first; with
	// heavy travel weight, A goes first.
	in := &core.Instance{
		Depot: geom.Pt(0, 0),
		Requests: []core.Request{
			{Pos: geom.Pt(5, 0), Duration: 10, Lifetime: 3000},
			{Pos: geom.Pt(80, 0), Duration: 10, Lifetime: 10},
		},
		Gamma: 2.7, Speed: 1, K: 1,
	}
	s, err := NETWRAP{WTravel: 0.001, WLife: 1}.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Tours[0].Stops[0].Node != 1 {
		t.Error("lifetime-weighted NETWRAP should pick the urgent sensor first")
	}
	s, err = NETWRAP{WTravel: 1, WLife: 0.001}.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Tours[0].Stops[0].Node != 0 {
		t.Error("travel-weighted NETWRAP should pick the near sensor first")
	}
}

func TestAAGroupsAreSpatial(t *testing.T) {
	// Two far-apart clusters, K=2: AA must not mix them in one tour.
	rng := rand.New(rand.NewSource(9))
	in := &core.Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: 2}
	for i := 0; i < 20; i++ {
		base := geom.Pt(5, 5)
		if i >= 10 {
			base = geom.Pt(95, 95)
		}
		in.Requests = append(in.Requests, core.Request{
			Pos:      geom.Pt(base.X+rng.Float64(), base.Y+rng.Float64()),
			Duration: 100,
		})
	}
	s, err := AA{Seed: 1}.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	for k, tour := range s.Tours {
		lowCluster := 0
		for _, st := range tour.Stops {
			if st.Node < 10 {
				lowCluster++
			}
		}
		if lowCluster != 0 && lowCluster != len(tour.Stops) {
			t.Fatalf("tour %d mixes clusters: %d of %d", k, lowCluster, len(tour.Stops))
		}
	}
}

func TestKMinMaxBeatsAAOnUnbalancedClusters(t *testing.T) {
	// One dense far cluster and one sparse near cluster: AA assigns one
	// charger per cluster regardless of load; K-minMax balances delays.
	in := &core.Instance{Depot: geom.Pt(50, 50), Gamma: 2.7, Speed: 1, K: 2}
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 30; i++ { // heavy cluster
		in.Requests = append(in.Requests, core.Request{
			Pos:      geom.Pt(90+rng.Float64()*2, 90+rng.Float64()*2),
			Duration: 3600,
		})
	}
	for i := 0; i < 3; i++ { // light cluster
		in.Requests = append(in.Requests, core.Request{
			Pos:      geom.Pt(10+rng.Float64()*2, 10+rng.Float64()*2),
			Duration: 3600,
		})
	}
	aa, err := AA{}.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	km, err := KMinMax{}.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if km.Longest >= aa.Longest {
		t.Errorf("K-minMax longest %v should beat AA %v on unbalanced clusters", km.Longest, aa.Longest)
	}
}

func TestPlannerNames(t *testing.T) {
	want := map[string]bool{"K-EDF": true, "NETWRAP": true, "AA": true, "K-minMax": true}
	for _, p := range All() {
		if !want[p.Name()] {
			t.Errorf("unexpected planner name %q", p.Name())
		}
		delete(want, p.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing planners: %v", want)
	}
}

func TestApproPlannerSatisfiesInterface(t *testing.T) {
	var p core.Planner = core.ApproPlanner{}
	if p.Name() != "Appro" {
		t.Errorf("Name = %q", p.Name())
	}
	in := randInstance(rand.New(rand.NewSource(2)), 40, 2)
	s, err := p.Plan(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if vs := core.Verify(in, s); len(vs) != 0 {
		t.Fatalf("Appro planner violations: %v", vs[0])
	}
}
