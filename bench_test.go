// Benchmarks mirroring the paper's evaluation, one per figure panel.
//
// Each BenchmarkFigNx runs a scaled-down version of the corresponding
// sweep (fewer instances, shorter horizon) so `go test -bench .` finishes
// in minutes; the full one-year, multi-instance harness behind
// EXPERIMENTS.md is `go run ./cmd/wrsn-bench`. Microbenchmarks for the
// planning algorithms themselves follow the figure benches.
package repro_test

import (
	"context"
	"math/rand"
	"strconv"
	"testing"

	"repro"
	"repro/internal/geom"
)

// benchOpts is the scaled-down figure configuration for testing.B runs.
func benchOpts() repro.ExperimentOptions {
	return repro.ExperimentOptions{
		Instances: 1,
		Duration:  30 * 86400, // 30 days instead of a year
	}
}

func runFigure(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, bb, err := repro.RunFigure(context.Background(), id, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(a.Series) != 5 || len(bb.Series) != 5 {
			b.Fatalf("figure %s: wrong series count", id)
		}
	}
}

// BenchmarkFig3a reproduces Fig. 3(a): average longest tour duration while
// varying the network size n from 200 to 1200 with K = 2 chargers.
func BenchmarkFig3a(b *testing.B) { runFigure(b, "3") }

// BenchmarkFig3b reproduces Fig. 3(b): average dead duration per sensor
// over the monitoring period while varying n. It shares the sweep with
// Fig. 3(a) — the harness produces both panels from one set of runs, as
// the paper does.
func BenchmarkFig3b(b *testing.B) { runFigure(b, "3") }

// BenchmarkFig4a reproduces Fig. 4(a): average longest tour duration while
// varying b_max from 10 to 50 kbps at n = 1000, K = 2.
func BenchmarkFig4a(b *testing.B) { runFigure(b, "4") }

// BenchmarkFig4b reproduces Fig. 4(b): average dead duration per sensor
// for the same sweep.
func BenchmarkFig4b(b *testing.B) { runFigure(b, "4") }

// BenchmarkFig5a reproduces Fig. 5(a): average longest tour duration while
// varying the number of chargers K from 1 to 5 at n = 1000.
func BenchmarkFig5a(b *testing.B) { runFigure(b, "5") }

// BenchmarkFig5b reproduces Fig. 5(b): average dead duration per sensor
// for the same sweep.
func BenchmarkFig5b(b *testing.B) { runFigure(b, "5") }

// benchInstance builds one planning instance with the paper's parameters.
func benchInstance(n, k int) *repro.Instance {
	rng := rand.New(rand.NewSource(7))
	in := &repro.Instance{
		Depot: geom.Pt(50, 50),
		Gamma: 2.7,
		Speed: 1,
		K:     k,
	}
	for i := 0; i < n; i++ {
		in.Requests = append(in.Requests, repro.Request{
			Pos:      geom.Pt(rng.Float64()*100, rng.Float64()*100),
			Duration: (1.2 + 0.3*rng.Float64()) * 3600,
			Lifetime: rng.Float64() * 7 * 86400,
		})
	}
	return in
}

// BenchmarkPlanners measures one planning round per algorithm on a dense
// V_s of 400 requests with K = 2 — the per-round cost inside the
// simulator.
func BenchmarkPlanners(b *testing.B) {
	in := benchInstance(400, 2)
	for _, p := range repro.Planners() {
		b.Run(p.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := p.Plan(context.Background(), in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkApproScaling measures Algorithm Appro alone across request-set
// sizes, exercising its O(|V_s|^2)-ish behavior.
func BenchmarkApproScaling(b *testing.B) {
	for _, n := range []int{100, 200, 400, 800, 1200} {
		in := benchInstance(n, 2)
		b.Run("n="+strconv.Itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := repro.Appro(context.Background(), in, repro.ApproOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVerify measures the independent feasibility verifier.
func BenchmarkVerify(b *testing.B) {
	in := benchInstance(400, 2)
	s, err := repro.PlanAppro(context.Background(), in, repro.ApproOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vs := repro.Verify(in, s); len(vs) != 0 {
			b.Fatalf("violations: %v", vs)
		}
	}
}

// BenchmarkParallelFig3a measures the figure-3(a) sweep at explicit worker
// counts — the tentpole speedup target. The tables are byte-identical at
// both counts (see internal/experiments determinism tests); only the wall
// clock should move, and only on multi-core hardware.
func BenchmarkParallelFig3a(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			opt := benchOpts()
			opt.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := repro.RunFigure(context.Background(), "3", opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlanCacheHit measures a warm plan-cache lookup (key hash plus
// schedule deep copy) against the cold planning cost it saves.
func BenchmarkPlanCacheHit(b *testing.B) {
	in := benchInstance(400, 2)
	cache := repro.NewPlanCache(0)
	planner := repro.CachedPlanner(repro.NewApproPlanner(repro.ApproOptions{}), cache)
	if _, err := planner.Plan(context.Background(), in); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.Plan(context.Background(), in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateYear measures one full one-year simulation at n = 400,
// K = 2 under Appro — the unit of work behind every figure cell.
func BenchmarkSimulateYear(b *testing.B) {
	nw, err := repro.GenerateNetwork(repro.NewNetworkParams(400), 1)
	if err != nil {
		b.Fatal(err)
	}
	planner, err := repro.NewPlanner("Appro")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Simulate(context.Background(), nw, 2, planner, repro.SimConfig{
			BatchWindow: repro.DefaultBatchWindow,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
