package repro_test

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/geom"
)

// ExamplePlanAppro plans one batch of charging requests with the paper's
// algorithm and verifies the schedule.
func ExamplePlanAppro() {
	in := &repro.Instance{
		Depot: geom.Pt(0, 0),
		Gamma: 2.7,
		Speed: 1,
		K:     2,
		Requests: []repro.Request{
			{Pos: geom.Pt(10, 0), Duration: 100},
			{Pos: geom.Pt(11, 0), Duration: 150}, // within gamma of the first
			{Pos: geom.Pt(-10, 0), Duration: 120},
		},
	}
	sched, err := repro.PlanAppro(context.Background(), in, repro.ApproOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stops: %d (multi-node consolidation covered 2 sensors at once)\n", sched.NumStops())
	fmt.Printf("feasible: %v\n", len(repro.Verify(in, sched)) == 0)
	// Output:
	// stops: 2 (multi-node consolidation covered 2 sensors at once)
	// feasible: true
}

// ExampleNewPlanner shows how to select algorithms by their paper names.
func ExampleNewPlanner() {
	for _, name := range []string{"Appro", "K-minMax"} {
		p, err := repro.NewPlanner(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(p.Name())
	}
	// Output:
	// Appro
	// K-minMax
}

// ExampleComputeLowerBound bounds a schedule's approximation factor.
func ExampleComputeLowerBound() {
	in := &repro.Instance{
		Depot: geom.Pt(0, 0),
		Gamma: 2.7,
		Speed: 1,
		K:     1,
		Requests: []repro.Request{
			{Pos: geom.Pt(30, 40), Duration: 600},
		},
	}
	sched, err := repro.PlanAppro(context.Background(), in, repro.ApproOptions{})
	if err != nil {
		log.Fatal(err)
	}
	lb := repro.ComputeLowerBound(in)
	fmt.Printf("factor <= %.2f\n", sched.Longest/lb.Value)
	// Output:
	// factor <= 1.01
}

// ExampleGenerateNetwork builds a paper-parameter WRSN and reads its
// aggregate charging demand.
func ExampleGenerateNetwork() {
	nw, err := repro.GenerateNetwork(repro.NewNetworkParams(100), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensors: %d, base at field center: %v\n",
		len(nw.Sensors), nw.Base == nw.Field.Center())
	// Output:
	// sensors: 100, base at field center: true
}
